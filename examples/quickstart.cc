/**
 * @file
 * Quickstart: the smallest complete SSP program.
 *
 * Builds an SSP system, runs a failure-atomic transaction against the
 * persistent heap, simulates a power failure, recovers, and shows that
 * committed data survived while an interrupted transaction vanished.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/recovery.hh"
#include "core/ssp_system.hh"

using namespace ssp;

int
main()
{
    setVerbose(false);

    // 1. Configure the machine (Table 2 defaults; small heap for demo).
    SspConfig cfg;
    cfg.heapPages = 1024;        // 4 MiB persistent heap
    cfg.shadowPoolPages = 1024;  // shadow pages for SSP
    cfg.logPages = 256;
    SspSystem sys(cfg);

    // 2. A failure-atomic transaction: move "money" between two
    //    accounts that live on different persistent pages.
    const Addr alice = 0x1000;
    const Addr bob = 0x2000;
    std::uint64_t v;

    sys.begin(0);
    v = 900;
    sys.store(0, alice, &v, sizeof(v));
    v = 100;
    sys.store(0, bob, &v, sizeof(v));
    sys.commit(0); // durable from here on

    // 3. Start another transfer but crash before committing.
    sys.begin(0);
    v = 0;
    sys.store(0, alice, &v, sizeof(v));
    std::printf("power failure mid-transaction...\n");
    sys.crash();
    sys.recover();

    // 4. The committed state survived; the torn transfer did not.
    std::uint64_t a = 0, b = 0;
    sys.loadRaw(alice, &a, sizeof(a));
    sys.loadRaw(bob, &b, sizeof(b));
    std::printf("after recovery: alice=%llu bob=%llu (expected 900/100)\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));

    RecoveryReport report = verifyRecoveredState(sys);
    std::printf("recovery invariants: %s\n", report.ok ? "OK" : "VIOLATED");

    // 5. A peek at the cost model.
    std::printf("simulated cycles: %llu | NVRAM writes: %llu "
                "(journal: %llu)\n",
                static_cast<unsigned long long>(sys.machine().maxClock()),
                static_cast<unsigned long long>(
                    sys.machine().bus().nvramWrites()),
                static_cast<unsigned long long>(sys.loggingWrites()));
    return report.ok && a == 900 && b == 100 ? 0 : 1;
}
