/**
 * @file
 * Persistent key/value cache scenario — the paper's Memcached use case.
 *
 * Runs a memcached-like store over SSP, injects a power failure in the
 * middle of a SET burst, recovers, and verifies that the store is
 * exactly the committed prefix.  Then compares the same scenario on the
 * undo-logging baseline to show the write-traffic difference.
 */

#include <cstdio>

#include "baselines/backend_factory.hh"
#include "common/logging.hh"
#include "workloads/kvstore.hh"
#include "workloads/persist_alloc.hh"

using namespace ssp;

namespace
{

SspConfig
demoConfig()
{
    SspConfig cfg;
    cfg.heapPages = 8192;
    cfg.shadowPoolPages = 2048;
    cfg.logPages = 2048;
    return cfg;
}

std::uint64_t
runScenario(BackendKind kind)
{
    auto be = makeBackend(kind, demoConfig());
    PersistAlloc alloc(kPageSize, 8192ull * kPageSize);
    KvStoreParams params;
    params.buckets = 1024;
    params.keySpace = 4000;
    params.capacity = 2048;
    KvStoreWorkload kv(*be, alloc, params, 7);
    kv.setup();

    // A burst of SETs...
    for (unsigned i = 0; i < 2000; ++i)
        kv.runOp(0);

    // ...then the power fails mid-burst.
    be->crash();
    be->recover();

    const bool ok = kv.verify();
    std::printf("  %-9s resident=%llu evictions=%llu post-crash image: "
                "%s | NVRAM writes=%llu (logging=%llu)\n",
                be->name(),
                static_cast<unsigned long long>(kv.residentItems()),
                static_cast<unsigned long long>(kv.evictions()),
                ok ? "consistent" : "CORRUPT",
                static_cast<unsigned long long>(
                    be->machine().bus().nvramWrites()),
                static_cast<unsigned long long>(be->loggingWrites()));
    return be->machine().bus().nvramWrites();
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("persistent KV cache: 2000 memslap-style ops, power "
                "failure, recovery, verification\n");
    const std::uint64_t ssp_writes = runScenario(BackendKind::Ssp);
    const std::uint64_t undo_writes = runScenario(BackendKind::UndoLog);
    std::printf("SSP wrote %.1f%% less NVRAM than undo logging for the "
                "same durable work\n",
                100.0 * (1.0 - static_cast<double>(ssp_writes) /
                                   static_cast<double>(undo_writes)));
    return 0;
}
