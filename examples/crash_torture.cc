/**
 * @file
 * Crash-torture scenario: a persistent B+-tree index under repeated
 * power failures.
 *
 * Round after round, the example runs a batch of insert/delete
 * transactions, pulls the plug at a pseudo-random point (sometimes with
 * a transaction still open), recovers, checks the SSP structural
 * invariants, and functionally verifies the tree against its reference
 * model.  This is the paper's recovery story (section 4.4) made
 * executable.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/recovery.hh"
#include "core/ssp_system.hh"
#include "workloads/btree.hh"
#include "workloads/persist_alloc.hh"

using namespace ssp;

int
main()
{
    setVerbose(false);
    SspConfig cfg;
    cfg.heapPages = 8192;
    cfg.shadowPoolPages = 2048;
    cfg.logPages = 1024;
    SspSystem sys(cfg);
    PersistAlloc alloc(kPageSize, 8192ull * kPageSize);
    BTreeWorkload tree(sys, alloc, 2048, KeyDist::Uniform, 99);
    tree.setup();

    Rng rng(123);
    unsigned crashes = 0;
    unsigned dangling = 0;
    std::uint64_t total_txs = 0;

    for (unsigned round = 0; round < 20; ++round) {
        const unsigned batch = 20 + static_cast<unsigned>(
                                        rng.nextBounded(200));
        for (unsigned i = 0; i < batch; ++i)
            tree.runOp(0);
        total_txs += batch;

        // Half the time, crash with a transaction torn mid-flight.
        if (rng.nextBool(0.5)) {
            sys.begin(0);
            std::uint64_t garbage = rng.next();
            sys.store(0, 0x400000 + (rng.next() % 64) * 64, &garbage, 8);
            ++dangling;
        }
        sys.crash();
        sys.recover();
        ++crashes;

        RecoveryReport report = verifyRecoveredState(sys);
        const bool functional = tree.verify();
        if (!report.ok || !functional) {
            std::printf("round %u: CORRUPTION DETECTED (%s)\n", round,
                        !report.ok ? report.violations[0].c_str()
                                   : "tree mismatch");
            return 1;
        }
        std::printf("round %2u: %3u txs, crash%s -> recovered, tree of "
                    "%llu keys verified\n",
                    round, batch, dangling > 0 ? " (torn tx)" : "",
                    static_cast<unsigned long long>(tree.size()));
    }

    std::printf("\nsurvived %u power failures (%u with torn "
                "transactions) across %llu committed transactions; "
                "every recovery produced a consistent image\n",
                crashes, dangling,
                static_cast<unsigned long long>(total_txs));
    return 0;
}
