/**
 * @file
 * Design-space explorer: run any workload under any failure-atomicity
 * design and print the cost metrics side by side.
 *
 *   ./design_explorer [workload] [txs]
 *   ./design_explorer RBTree-Zipf 8000
 *
 * Workload names follow the paper's Table 3 ("BTree-Rand",
 * "RBTree-Zipf", "Hash-Rand", "SPS", "Memcached", "Vacation", ...).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "sim/driver.hh"
#include "sim/report.hh"
#include "sim/system_builder.hh"

using namespace ssp;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string workload_name =
        argc > 1 ? argv[1] : "BTree-Rand";
    const std::uint64_t txs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4000;

    const WorkloadKind workload = parseWorkloadKind(workload_name);
    SspConfig cfg;
    cfg.heapPages = 1 << 15;
    cfg.shadowPoolPages = 2048;
    cfg.logPages = 8192;
    WorkloadScale scale;
    scale.keySpace = 16384;

    std::printf("%s", banner("design explorer: " + workload_name + ", " +
                             std::to_string(txs) + " transactions")
                          .c_str());

    TextTable table({"design", "TPS (K)", "cycles/tx", "NVRAM wr/tx",
                     "logging wr/tx", "avg lines/tx", "avg pages/tx"});
    for (BackendKind kind :
         {BackendKind::UndoLog, BackendKind::RedoLog, BackendKind::Ssp,
          BackendKind::Shadow}) {
        auto exp = buildExperiment(kind, workload, cfg, scale);
        RunResult res = runExperiment(exp, txs, 1);
        if (!exp.workload->verify()) {
            std::printf("!! %s failed functional verification\n",
                        backendKindName(kind));
            return 1;
        }
        table.addRow(
            {res.backend, fmtDouble(res.tps() / 1000.0, 1),
             fmtDouble(static_cast<double>(res.cycles) /
                           static_cast<double>(res.committedTxs),
                       0),
             fmtDouble(res.writesPerTx(), 1),
             fmtDouble(static_cast<double>(res.loggingWrites) /
                           static_cast<double>(res.committedTxs),
                       1),
             fmtDouble(res.avgLinesPerTx, 1),
             fmtDouble(res.avgPagesPerTx, 1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(all four designs produced functionally identical "
                "persistent images)\n");
    return 0;
}
