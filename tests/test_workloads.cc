/**
 * @file
 * Unit tests for the workloads themselves: structural invariants of the
 * persistent data structures, allocator behavior, and key generators,
 * all exercised over the SSP backend.
 */

#include <gtest/gtest.h>

#include "core/ssp_system.hh"
#include "tests/test_helpers.hh"
#include "workloads/btree.hh"
#include "workloads/hashtable.hh"
#include "workloads/kvstore.hh"
#include "workloads/rbtree.hh"
#include "workloads/sps.hh"
#include "workloads/vacation.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

class WorkloadTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SspConfig cfg = smallConfig();
        cfg.heapPages = 4096;
        cfg.shadowPoolPages = 4096;
        sys = std::make_unique<SspSystem>(cfg);
        alloc = std::make_unique<PersistAlloc>(kPageSize,
                                               4096ull * kPageSize);
    }

    std::unique_ptr<SspSystem> sys;
    std::unique_ptr<PersistAlloc> alloc;
};

TEST_F(WorkloadTest, AllocatorAlignsAndSeparates)
{
    PersistAlloc &a = *alloc;
    Addr x = a.allocate(24, 8);
    Addr y = a.allocate(24, 8);
    EXPECT_NE(x, y);
    EXPECT_EQ(x % 8, 0u);
    // Sub-line objects never straddle lines.
    EXPECT_EQ(lineOf(x), lineOf(x + 23));
    EXPECT_EQ(lineOf(y), lineOf(y + 23));
    // Line-aligned request.
    Addr z = a.allocate(256, kLineSize);
    EXPECT_EQ(z % kLineSize, 0u);
    // Sub-page objects never straddle pages.
    EXPECT_EQ(pageOf(z), pageOf(z + 255));
}

TEST_F(WorkloadTest, AllocatorFreeListReuses)
{
    Addr x = alloc->allocate(40, 8);
    alloc->free(x, 40);
    Addr y = alloc->allocate(40, 8);
    EXPECT_EQ(x, y);
}

TEST_F(WorkloadTest, BTreeInsertLookupDelete)
{
    BTreeWorkload tree(*sys, *alloc, 256, KeyDist::Uniform, 1);
    tree.setup();
    EXPECT_TRUE(tree.verify());

    // Force-insert a few known keys (upsertOrDelete toggles).
    std::uint64_t probe = 0;
    const bool was_present = tree.lookup(0, 7, &probe);
    tree.upsertOrDelete(0, 7);
    EXPECT_EQ(tree.lookup(0, 7, &probe), !was_present);
    EXPECT_TRUE(tree.verify());
}

TEST_F(WorkloadTest, BTreeSplitsKeepOrder)
{
    BTreeWorkload tree(*sys, *alloc, 4096, KeyDist::Uniform, 2);
    tree.setup();
    for (unsigned i = 0; i < 2000; ++i)
        tree.runOp(0);
    EXPECT_TRUE(tree.verify());
    EXPECT_GT(tree.size(), 100u);
}

TEST_F(WorkloadTest, BTreeScanReturnsSortedRange)
{
    BTreeWorkload tree(*sys, *alloc, 512, KeyDist::Uniform, 3);
    tree.setup();
    auto range = tree.scan(0, 100, 10);
    for (std::size_t i = 1; i < range.size(); ++i)
        EXPECT_LT(range[i - 1].first, range[i].first);
    for (const auto &kv : range)
        EXPECT_GE(kv.first, 100u);
}

TEST_F(WorkloadTest, RbTreeInvariantsUnderChurn)
{
    RbTreeWorkload tree(*sys, *alloc, 512, KeyDist::Uniform, 4);
    tree.setup();
    for (unsigned i = 0; i < 1500; ++i) {
        tree.runOp(0);
        if (i % 300 == 0) {
            EXPECT_TRUE(tree.invariantsHold()) << "at op " << i;
        }
    }
    EXPECT_TRUE(tree.verify());
}

TEST_F(WorkloadTest, RbTreeZipfSkewsWriteSet)
{
    RbTreeWorkload tree(*sys, *alloc, 512, KeyDist::Zipf, 5);
    tree.setup();
    for (unsigned i = 0; i < 500; ++i)
        tree.runOp(0);
    EXPECT_TRUE(tree.verify());
}

TEST_F(WorkloadTest, HashChainsStayConsistent)
{
    HashWorkload hash(*sys, *alloc, 256, 512, KeyDist::Uniform, 6);
    hash.setup();
    for (unsigned i = 0; i < 1000; ++i)
        hash.runOp(0);
    EXPECT_TRUE(hash.verify());
}

TEST_F(WorkloadTest, HashLookupMatchesToggleState)
{
    HashWorkload hash(*sys, *alloc, 64, 128, KeyDist::Uniform, 7);
    hash.setup();
    const bool before = hash.lookup(0, 42, nullptr);
    hash.upsertOrDelete(0, 42);
    EXPECT_EQ(hash.lookup(0, 42, nullptr), !before);
    hash.upsertOrDelete(0, 42);
    EXPECT_EQ(hash.lookup(0, 42, nullptr), before);
}

TEST_F(WorkloadTest, SpsPreservesPermutation)
{
    SpsWorkload sps(*sys, *alloc, 1024, 8);
    sps.setup();
    for (unsigned i = 0; i < 500; ++i)
        sps.runOp(0);
    EXPECT_TRUE(sps.verify());
    // The array must still be a permutation of 0..n-1.
    std::vector<bool> seen(1024, false);
    for (std::uint64_t i = 0; i < 1024; ++i) {
        std::uint64_t v = 0;
        sys->loadRaw(kPageSize + i * 8, &v, sizeof(v));
        // Base address is allocator-dependent; use verify() as the
        // real check and only sanity-bound values here.
        (void)v;
    }
}

TEST_F(WorkloadTest, KvStoreEvictsAtCapacity)
{
    KvStoreParams params;
    params.buckets = 256;
    params.keySpace = 2000;
    params.capacity = 128;
    params.valueBytes = 64;
    KvStoreWorkload kv(*sys, *alloc, params, 9);
    kv.setup();
    for (unsigned i = 0; i < 600; ++i)
        kv.runOp(0);
    EXPECT_LE(kv.residentItems(), params.capacity);
    EXPECT_GT(kv.evictions(), 0u);
    EXPECT_TRUE(kv.verify());
}

TEST_F(WorkloadTest, KvStoreGetAfterSet)
{
    KvStoreParams params;
    params.buckets = 64;
    params.keySpace = 100;
    params.capacity = 64;
    KvStoreWorkload kv(*sys, *alloc, params, 10);
    kv.setup();
    kv.set(0, 5);
    EXPECT_TRUE(kv.get(0, 5));
    EXPECT_TRUE(kv.verify());
}

TEST_F(WorkloadTest, VacationConservesSeatsAndBills)
{
    VacationParams params;
    params.relations = 256;
    params.customers = 128;
    params.buckets = 128;
    VacationWorkload vac(*sys, *alloc, params, 11);
    vac.setup();
    EXPECT_TRUE(vac.verify());
    for (unsigned i = 0; i < 400; ++i)
        vac.runOp(0);
    EXPECT_GT(vac.reservationsMade(), 0u);
    EXPECT_TRUE(vac.verify());
}

TEST_F(WorkloadTest, KeyGeneratorsRespectRange)
{
    KeyGenerator uni(KeyDist::Uniform, 100, 1);
    KeyGenerator zipf(KeyDist::Zipf, 100, 1);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_LT(uni.next(), 100u);
        EXPECT_LT(zipf.next(), 100u);
    }
}

} // namespace
