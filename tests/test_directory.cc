/**
 * @file
 * Directory coherence on the 2D mesh: the wide CoreBitmap, the mesh
 * geometry, the directory cost model, the snoop filter's eviction /
 * back-invalidation semantics, and the sharer-index cross-checks at
 * core counts past one 64-bit word (65/128/256).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/bitmap64.hh"
#include "common/rng.hh"
#include "core/machine.hh"
#include "interconnect/directory.hh"
#include "interconnect/mesh.hh"
#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"
#include "tests/test_helpers.hh"

namespace ssp::test
{
namespace
{

// ---- CoreBitmap past the first word ---------------------------------------

TEST(CoreBitmapWide, SingleBitOpsCrossWordBoundaries)
{
    const std::vector<CoreId> bits = {0, 63, 64, 65, 127, 128, 191, 255};
    CoreBitmap b;
    EXPECT_TRUE(b.none());
    for (CoreId c : bits)
        b.set(c);
    EXPECT_EQ(b.count(), bits.size());
    for (CoreId c : bits)
        EXPECT_TRUE(b.test(c)) << "core " << c;
    EXPECT_FALSE(b.test(66));
    EXPECT_FALSE(b.test(254));

    // forEachSet visits in ascending core order — the iteration order
    // every deterministic charge path depends on.
    std::vector<CoreId> seen;
    b.forEachSet([&](CoreId c) { seen.push_back(c); });
    EXPECT_EQ(seen, bits);

    b.reset(64);
    b.reset(255);
    EXPECT_FALSE(b.test(64));
    EXPECT_TRUE(b.test(65));
    EXPECT_EQ(b.count(), bits.size() - 2);

    EXPECT_EQ(CoreBitmap::ofCore(200).word(3), std::uint64_t{1} << 8);
    EXPECT_EQ(CoreBitmap::fromMask(0xff).word(0), 0xffu);
    EXPECT_EQ(CoreBitmap::fromMask(0xff).word(1), 0u);
}

TEST(CoreBitmapWide, RandomizedSetAlgebraMatchesBruteForce)
{
    // The mask is the sharer set the directory charges by; cross-check
    // every operation the charge paths use against a plain bool vector
    // over the full 256-core width.
    Rng rng(2024);
    CoreBitmap a, b;
    std::vector<bool> ra(kMaxCores, false), rb(kMaxCores, false);
    for (unsigned step = 0; step < 4000; ++step) {
        const CoreId c = static_cast<CoreId>(rng.nextBounded(kMaxCores));
        switch (rng.nextBounded(4)) {
          case 0:
            a.set(c);
            ra[c] = true;
            break;
          case 1:
            a.reset(c);
            ra[c] = false;
            break;
          case 2:
            b.set(c);
            rb[c] = true;
            break;
          case 3:
            b.reset(c);
            rb[c] = false;
            break;
        }
        if (step % 64 != 0)
            continue;
        unsigned expect_count = 0;
        const CoreBitmap uni = a | b;
        const CoreBitmap both = a & b;
        for (unsigned i = 0; i < kMaxCores; ++i) {
            EXPECT_EQ(a.test(i), static_cast<bool>(ra[i])) << "bit " << i;
            EXPECT_EQ(uni.test(i), ra[i] || rb[i]) << "bit " << i;
            EXPECT_EQ(both.test(i), ra[i] && rb[i]) << "bit " << i;
            expect_count += ra[i] ? 1 : 0;
        }
        EXPECT_EQ(a.count(), expect_count);
        EXPECT_EQ(a.none(), expect_count == 0);
    }
}

TEST(CoreBitmapWide, ToStringListsSetCores)
{
    CoreBitmap b;
    b.set(0);
    b.set(3);
    b.set(65);
    EXPECT_EQ(b.toString(), "{0, 3, 65}");
    EXPECT_EQ(CoreBitmap{}.toString(), "{}");
}

// ---- mesh geometry --------------------------------------------------------

TEST(Mesh, DerivedDimensionsCoverPowerOfTwoCoreCounts)
{
    const struct
    {
        unsigned cores, width, height;
    } expect[] = {
        {1, 1, 1},   {2, 2, 1},   {4, 2, 2},    {8, 4, 2},
        {16, 4, 4},  {64, 8, 8},  {128, 16, 8}, {256, 16, 16},
    };
    for (const auto &e : expect) {
        const MeshGeometry m = MeshGeometry::forCores(e.cores);
        EXPECT_EQ(m.width, e.width) << e.cores << " cores";
        EXPECT_EQ(m.height, e.height) << e.cores << " cores";
        EXPECT_GE(m.tiles(), e.cores);
    }
    // Non-power-of-two counts still get seated (with spare tiles).
    const MeshGeometry odd = MeshGeometry::forCores(65);
    EXPECT_GE(odd.tiles(), 65u);
}

TEST(Mesh, ManhattanDistanceAndPageGranularHomes)
{
    const MeshGeometry m = MeshGeometry::forCores(16); // 4x4
    EXPECT_EQ(m.distance(0, 15), 6u); // (0,0) -> (3,3)
    EXPECT_EQ(m.distance(15, 0), 6u);
    EXPECT_EQ(m.distance(5, 6), 1u);
    for (unsigned t = 0; t < m.tiles(); ++t)
        EXPECT_EQ(m.distance(t, t), 0u);

    // Page-granular homing: every line of a page shares one home node,
    // so a sub-page shootdown is one directory transaction.
    for (Ppn p = 0; p < 32; ++p) {
        const Addr page = pageBase(p);
        EXPECT_EQ(m.homeTile(page), p % m.tiles());
        for (unsigned l = 1; l < kPageSize / kLineSize; ++l) {
            EXPECT_EQ(m.homeTile(page + l * kLineSize), m.homeTile(page));
        }
    }
}

TEST(Mesh, ExplicitDimensionsMustSeatTheCores)
{
    const MeshGeometry m = MeshGeometry::forCores(4, 2, 2);
    EXPECT_EQ(m.width, 2u);
    EXPECT_EQ(m.height, 2u);
    EXPECT_THROW(MeshGeometry::forCores(5, 2, 2), std::logic_error);
}

// ---- directory cost model -------------------------------------------------

CoherenceParams
directoryParams(unsigned snoop_filter_entries = 0)
{
    CoherenceParams p;
    p.mode = CoherenceMode::Directory;
    p.snoopFilterEntries = snoop_filter_entries;
    return p;
}

TEST(DirectoryCost, SingleCoreEventsAreFree)
{
    // Parity with the broadcast model: one core has no peers and no
    // mesh to cross, so flips cost nothing and move no messages.
    DirectoryCoherence dir(1, directoryParams());
    EXPECT_EQ(dir.flipCurrentBit(0, pageBase(3), CoreBitmap{}, 1000), 1000u);
    EXPECT_EQ(dir.messages(), 0u);
    EXPECT_EQ(dir.directoryLookups(), 0u);
    EXPECT_EQ(dir.hopTraversalCycles(), 0u);
    EXPECT_EQ(dir.flipMessages(), 1u); // the event itself is counted
}

TEST(DirectoryCost, PricesRequestLookupAndFarthestSharer)
{
    const CoherenceParams p = directoryParams();
    DirectoryCoherence dir(16, p); // 4x4 mesh
    // Home of page 10 is tile 10 = (2,2); sender 0 = (0,0) is 4 hops
    // away, sharer 15 = (3,3) is 2 hops from the home.  Every hop is
    // traversed twice (request/ack, invalidation/ack).
    const Addr line = pageBase(10);
    const unsigned request_hops = 2 * 4;
    const unsigned sharer_hops = 2 * 2;

    const Cycles done =
        dir.invalidate(0, line, CoreBitmap::ofCore(15), 500);
    EXPECT_EQ(done, 500 + p.hopCycles * (request_hops + sharer_hops) +
                        p.directoryLookupCycles);
    EXPECT_EQ(dir.directoryLookups(), 1u);
    // One request/ack pair plus one invalidation/ack pair.
    EXPECT_EQ(dir.messages(), 4u);
    EXPECT_EQ(dir.hopTraversalCycles(),
              p.hopCycles * (request_hops + sharer_hops));

    // A flip with no cached peers still crosses to the home and back.
    const Cycles flip_done = dir.flipCurrentBit(0, line, CoreBitmap{}, 500);
    EXPECT_EQ(flip_done,
              500 + p.hopCycles * request_hops + p.directoryLookupCycles);

    // Receiver charge scales with the home -> sharer distance; a sharer
    // co-located with the home pays nothing extra.
    EXPECT_EQ(dir.shootdownReceiverCost(15, line), p.hopCycles * 2);
    EXPECT_EQ(dir.shootdownReceiverCost(10, line), 0u);
}

TEST(DirectoryCost, SenderIsNeverItsOwnInvalidationTarget)
{
    DirectoryCoherence dir(16, directoryParams());
    const Addr line = pageBase(10);
    CoreBitmap with_self = CoreBitmap::ofCore(15);
    with_self.set(0);
    const Cycles a = dir.invalidate(0, line, CoreBitmap::ofCore(15), 0);
    const Cycles b = dir.invalidate(0, line, with_self, 0);
    EXPECT_EQ(a, b);
}

// ---- snoop filter ---------------------------------------------------------

/** Hierarchy + directory wired the way Machine wires them. */
class SnoopFilterTest : public ::testing::Test
{
  protected:
    static constexpr unsigned kCores = 8;

    explicit SnoopFilterTest(unsigned filter_entries = 1)
        : mem(64, 16),
          bus(mem, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
              MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4}),
          hier(kCores, smallParams(), bus),
          dir(kCores, directoryParams(filter_entries))
    {
        hier.attachCoherence(&dir);
        dir.attachBackInvalidator([this](Addr line, Cycles now) {
            return hier.backInvalidateLine(line, now);
        });
    }

    static HierarchyParams
    smallParams()
    {
        HierarchyParams p;
        p.l1 = CacheParams{"l1", 1024, 2, 4};
        p.l2 = CacheParams{"l2", 4096, 4, 6};
        p.l3 = CacheParams{"l3", 16384, 4, 27};
        return p;
    }

    std::size_t
    totalFilterSize() const
    {
        std::size_t n = 0;
        for (unsigned t = 0; t < dir.mesh().tiles(); ++t)
            n += dir.filterSize(t);
        return n;
    }

    PhysMem mem;
    MemoryBus bus;
    CacheHierarchy hier;
    DirectoryCoherence dir;
};

TEST_F(SnoopFilterTest, EvictionForcesBackInvalidationOfCleanCopies)
{
    // Two lines of one page share a home tile whose filter holds one
    // entry: filling the second must evict the first, and inclusion
    // demands the evicted line's cached copies be dropped.
    const Addr a = 0, b = kLineSize;
    hier.read(0, a, 0);
    ASSERT_TRUE(hier.l1(0).probe(a));
    EXPECT_EQ(dir.filterSize(0), 1u);

    hier.read(0, b, 100);
    EXPECT_FALSE(hier.l1(0).probe(a));
    EXPECT_FALSE(hier.l2(0).probe(a));
    EXPECT_TRUE(hier.l1(0).probe(b));
    EXPECT_EQ(dir.snoopFilterEvictions(), 1u);
    EXPECT_EQ(dir.backInvalidations(), 1u);
    EXPECT_TRUE(hier.sharerIndex().sharers(a).none());
    EXPECT_EQ(dir.filterSize(0), 1u);
}

TEST_F(SnoopFilterTest, DirtyVictimFallsIntoSharedL3NotDropped)
{
    // A back-invalidated dirty pre-commit line must not lose its write:
    // the copy falls into the shared L3 as a normal dirty victim, so
    // its commit-time flush still finds it.
    const Addr a = 0, b = kLineSize;
    hier.write(0, a, 0);
    ASSERT_TRUE(hier.isDirty(0, a));

    const std::uint64_t mem_writes = bus.nvramWrites();
    hier.read(0, b, 100);
    EXPECT_FALSE(hier.l1(0).probe(a));
    EXPECT_FALSE(hier.l2(0).probe(a));
    EXPECT_TRUE(hier.l3().probe(a));
    EXPECT_TRUE(hier.l3().isDirty(a));
    // No premature write-back: the data went sideways, not to memory.
    EXPECT_EQ(bus.nvramWrites(), mem_writes);
}

TEST_F(SnoopFilterTest, PowerFailClearsFiltersButKeepsCounters)
{
    hier.read(0, 0, 0);
    hier.read(0, kLineSize, 10); // forces one eviction
    ASSERT_EQ(dir.snoopFilterEvictions(), 1u);
    ASSERT_GT(totalFilterSize(), 0u);

    hier.invalidateAll();
    dir.powerFail();
    EXPECT_EQ(totalFilterSize(), 0u);
    // Counters are measurement state; they survive the failure.
    EXPECT_EQ(dir.snoopFilterEvictions(), 1u);
}

class SnoopFilterLruTest : public SnoopFilterTest
{
  protected:
    SnoopFilterLruTest() : SnoopFilterTest(2) {}
};

TEST_F(SnoopFilterLruTest, TouchKeepsRecentlyUsedLinesTracked)
{
    // The filter LRU is fill-ordered: a second core's fill of an
    // already-tracked line touches it to most-recently-used, so the
    // next capacity eviction picks the other line.
    const Addr a = 0, b = kLineSize, c = 2 * kLineSize;
    hier.read(0, a, 0);
    hier.read(0, b, 10);
    hier.read(1, a, 20); // core 1 fills a: touch to MRU
    hier.read(0, c, 30); // evicts b, not a
    EXPECT_TRUE(hier.l1(0).probe(a));
    EXPECT_TRUE(hier.l1(1).probe(a));
    EXPECT_FALSE(hier.l1(0).probe(b));
    EXPECT_TRUE(hier.l1(0).probe(c));
    EXPECT_EQ(dir.snoopFilterEvictions(), 1u);
    EXPECT_EQ(dir.filterSize(0), 2u);
}

// ---- sharer masks past 64 cores -------------------------------------------

/**
 * The directory's invalidation targets are exactly the sharer index's
 * masks, so the index must stay brute-force-exact through every
 * mutation path at core counts past one bitmap word — with the
 * directory listener attached, since its filter bookkeeping rides the
 * same add/remove hooks.
 */
void
expectMasksMatchBruteForce(unsigned cores, unsigned steps,
                           std::uint64_t seed)
{
    PhysMem mem(64, 16);
    MemoryBus bus(mem, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
                  MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4});
    HierarchyParams params;
    params.l1 = CacheParams{"l1", 1024, 2, 4};
    params.l2 = CacheParams{"l2", 4096, 4, 6};
    params.l3 = CacheParams{"l3", 16384, 4, 27};
    CacheHierarchy hier(cores, params, bus);
    DirectoryCoherence dir(cores, directoryParams(/*unbounded*/ 0));
    hier.attachCoherence(&dir);
    dir.attachBackInvalidator([&hier](Addr line, Cycles now) {
        return hier.backInvalidateLine(line, now);
    });

    std::vector<Addr> lines;
    for (unsigned i = 0; i < 48; ++i)
        lines.push_back(i * kLineSize * 3);

    auto probe_mask = [&](Addr line) {
        CoreBitmap mask;
        for (CoreId c = 0; c < cores; ++c) {
            if (hier.l1(c).probe(line) || hier.l2(c).probe(line))
                mask.set(c);
        }
        return mask;
    };
    auto check = [&]() {
        for (Addr line : lines) {
            EXPECT_EQ(hier.sharerIndex().sharers(line), probe_mask(line))
                << cores << " cores, line 0x" << std::hex << line;
        }
        // The unbounded filter mirrors the index: it tracks exactly the
        // lines with at least one private copy.
        std::size_t filter_lines = 0;
        for (unsigned t = 0; t < dir.mesh().tiles(); ++t)
            filter_lines += dir.filterSize(t);
        EXPECT_EQ(filter_lines, hier.sharerIndex().trackedLines());
    };

    Rng rng(seed);
    for (unsigned step = 0; step < steps; ++step) {
        const CoreId core = static_cast<CoreId>(rng.nextBounded(cores));
        const Addr line = lines[rng.nextBounded(lines.size())];
        switch (rng.nextBounded(6)) {
          case 0:
            hier.read(core, line, step);
            break;
          case 1:
            hier.write(core, line, step);
            break;
          case 2:
            hier.invalidateLine(line);
            break;
          case 3:
            hier.invalidateLineRemote(core, line);
            break;
          case 4:
            hier.remapLine(core, line,
                           lines[rng.nextBounded(lines.size())], step);
            break;
          case 5:
            if (rng.nextBool(0.02)) {
                // Simulated power failure, machine-style: the caches
                // and the volatile filter state die together.
                hier.invalidateAll();
                dir.powerFail();
            } else {
                hier.read(core, line + kLineSize, step);
            }
            break;
        }
        if (step % 64 == 0)
            check();
    }
    check();
}

TEST(SharerMaskWide, MatchesBruteForceAt65Cores)
{
    expectMasksMatchBruteForce(65, 3000, 777);
}

TEST(SharerMaskWide, MatchesBruteForceAt128Cores)
{
    expectMasksMatchBruteForce(128, 1500, 778);
}

TEST(SharerMaskWide, MatchesBruteForceAt256Cores)
{
    expectMasksMatchBruteForce(256, 1000, 779);
}

// ---- full machine in directory mode ---------------------------------------

SspConfig
directoryConfig(unsigned cores)
{
    SspConfig cfg = smallConfig(cores);
    cfg.coherence.mode = CoherenceMode::Directory;
    return cfg;
}

TEST(DirectoryMachine, CowRemapShootdownDropsPeerStaleLines)
{
    // The flip-current-bit shootdown contract, under the directory
    // model: the peer's stale copy is dropped, the peer is charged for
    // the message, and subsequent reads see the remapped line.
    SspSystem sys(directoryConfig(2));
    // Directory machines keep the sharer index at any core count (the
    // snoop filter is fed by it); 2 cores is below the broadcast
    // machines' cutover.
    EXPECT_TRUE(sys.machine().caches().sharerIndexed());

    const Addr addr = pageBase(1) + 8;
    txWrite64(sys, 0, addr, 111);
    EXPECT_EQ(timed64(sys, 1, addr), 111u);
    const Addr stale = lineBase(sys.committedLocation(addr));
    ASSERT_TRUE(sys.machine().caches().l1(1).probe(stale));

    const std::uint64_t received_before =
        sys.machine().coherence().messagesReceived(1);
    const std::uint64_t lookups_before =
        sys.machine().coherence().directoryLookups();
    txWrite64(sys, 0, addr, 222);
    EXPECT_FALSE(sys.machine().caches().l1(1).probe(stale));
    EXPECT_FALSE(sys.machine().caches().l2(1).probe(stale));
    EXPECT_GT(sys.machine().coherence().messagesReceived(1),
              received_before);
    EXPECT_GT(sys.machine().coherence().directoryLookups(), lookups_before);
    EXPECT_EQ(timed64(sys, 1, addr), 222u);
}

TEST(DirectoryMachine, PowerFailClearsFilterStateWithTheCaches)
{
    Machine m(directoryConfig(4));
    auto &dir = dynamic_cast<DirectoryCoherence &>(m.coherence());
    m.caches().read(0, lineAddr(2, 0), 0);
    m.caches().read(1, lineAddr(3, 1), 0);
    std::size_t tracked = 0;
    for (unsigned t = 0; t < dir.mesh().tiles(); ++t)
        tracked += dir.filterSize(t);
    ASSERT_GT(tracked, 0u);

    m.powerFail();
    tracked = 0;
    for (unsigned t = 0; t < dir.mesh().tiles(); ++t)
        tracked += dir.filterSize(t);
    EXPECT_EQ(tracked, 0u);
    EXPECT_EQ(m.caches().sharerIndex().trackedLines(), 0u);
}

} // namespace
} // namespace ssp::test
