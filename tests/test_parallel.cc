/**
 * @file
 * Within-cell host-parallelism tests: the ghost speculation engine's
 * bit-identity guarantee (any --cell-threads value reproduces the
 * sequential result exactly), replay of the checked-in BENCH grids
 * under ghost threads, the ghost read primitives, and the
 * --cell-threads CLI contract.
 *
 * Every test that spawns ghosts sets SSP_FORCE_GHOSTS: the CI machines
 * (and this container) may expose a single hardware thread, where the
 * engine would otherwise disable itself.  Forcing only costs host
 * time — determinism never depends on the thread count.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mem/phys_mem.hh"
#include "sim/driver.hh"
#include "sim/ghost.hh"
#include "sim/system_builder.hh"
#include "sweep/sweep_grid.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"
#include "vm/page_table.hh"

namespace ssp
{
namespace
{

using sweep::buildFigureGrid;
using sweep::CellResult;
using sweep::parseCellThreads;
using sweep::runSweep;
using sweep::SweepCell;
using sweep::SweepGridOptions;

void
forceGhosts()
{
    ::setenv("SSP_FORCE_GHOSTS", "1", 1);
}

/** Every metric a run produces; two runs are "identical" iff all match. */
void
expectIdenticalRuns(const RunResult &a, const RunResult &b,
                    const std::string &what)
{
    EXPECT_EQ(a.committedTxs, b.committedTxs) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.nvramWrites, b.nvramWrites) << what;
    EXPECT_EQ(a.loggingWrites, b.loggingWrites) << what;
    EXPECT_EQ(a.dataWrites, b.dataWrites) << what;
    EXPECT_EQ(a.consolidationWrites, b.consolidationWrites) << what;
    EXPECT_EQ(a.checkpointWrites, b.checkpointWrites) << what;
    EXPECT_EQ(a.coherenceFlips, b.coherenceFlips) << what;
    EXPECT_EQ(a.coherenceInvalidations, b.coherenceInvalidations) << what;
    EXPECT_EQ(a.coherenceShootdowns, b.coherenceShootdowns) << what;
    EXPECT_EQ(a.txAborts, b.txAborts) << what;
    EXPECT_EQ(a.txRetries, b.txRetries) << what;
    EXPECT_EQ(a.backoffCycles, b.backoffCycles) << what;
    EXPECT_EQ(a.coreBusyCycles, b.coreBusyCycles) << what;
    EXPECT_EQ(a.coreTxs, b.coreTxs) << what;
}

RunResult
runWith(BackendKind backend, WorkloadKind workload, unsigned cores,
        std::uint64_t txs, unsigned cell_threads)
{
    WorkloadScale scale;
    scale.keySpace = 256;
    scale.spsElements = 1024;
    scale.seed = 7;
    Experiment exp = buildExperiment(backend, workload,
                                     ssp::test::smallConfig(cores), scale);
    return runExperiment(exp, txs, cores, ScheduleMode::Rounds,
                         cell_threads);
}

// ---- bit-identity at any thread count --------------------------------------

TEST(ThreadInvariance, EveryThreadCountMatchesSequential)
{
    forceGhosts();
    const WorkloadKind workloads[] = {
        WorkloadKind::Sps,
        WorkloadKind::BTreeZipf,
        WorkloadKind::HashRand,
        WorkloadKind::RbTreeZipf,
    };
    for (WorkloadKind wl : workloads) {
        const RunResult sequential =
            runWith(BackendKind::Ssp, wl, 4, 400, 1);
        for (unsigned threads : {2u, 4u, 8u}) {
            const RunResult ghosted =
                runWith(BackendKind::Ssp, wl, 4, 400, threads);
            expectIdenticalRuns(
                sequential, ghosted,
                "workload " + std::to_string(static_cast<int>(wl)) +
                    " cell_threads " + std::to_string(threads));
        }
    }
}

TEST(ThreadInvariance, BaselineBackendsIgnoreGhostsSafely)
{
    // Baseline backends share the same machine substrate the ghosts
    // read; their runs must be equally invariant.
    forceGhosts();
    for (BackendKind backend :
         {BackendKind::UndoLog, BackendKind::RedoLog}) {
        const RunResult sequential =
            runWith(backend, WorkloadKind::HashZipf, 2, 300, 1);
        const RunResult ghosted =
            runWith(backend, WorkloadKind::HashZipf, 2, 300, 8);
        expectIdenticalRuns(sequential, ghosted, "baseline backend");
    }
}

// ---- replay of the checked-in BENCH grids under ghosts ---------------------

Json
loadCheckedIn(const std::string &name)
{
    std::ifstream in(std::string(SSP_SOURCE_DIR) + "/" + name);
    EXPECT_TRUE(in) << "checked-in " << name << " missing";
    std::stringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
}

/** Match @p run against the metrics of @p label in @p checked_in. */
void
expectReplaysCell(const Json &checked_in, const std::string &label,
                  const RunResult &run, std::size_t *matched)
{
    for (std::size_t j = 0; j < checked_in["cells"].size(); ++j) {
        const Json &want = checked_in["cells"].at(j);
        if (want["label"].asString() != label)
            continue;
        const Json &m = want["metrics"];
        EXPECT_EQ(run.committedTxs, m["committed_txs"].asUint()) << label;
        EXPECT_EQ(run.cycles, m["cycles"].asUint()) << label;
        EXPECT_EQ(run.nvramWrites, m["nvram_writes"].asUint()) << label;
        EXPECT_EQ(run.loggingWrites, m["logging_writes"].asUint())
            << label;
        ++*matched;
    }
}

TEST(GhostReplay, ScaleCellsAreByteIdenticalUnderGhosts)
{
    forceGhosts();
    const Json checked_in = loadCheckedIn("BENCH_scale.json");

    SweepGridOptions opts;
    opts.workloads = {WorkloadKind::BTreeZipf};
    opts.coreCounts = {4};
    const auto cells = buildFigureGrid("scale", opts);
    ASSERT_EQ(cells.size(), 3u); // one workload x 3 backends

    std::size_t matched = 0;
    for (const SweepCell &cell : cells) {
        Experiment exp = buildExperiment(cell.backend, cell.workload,
                                         cell.config(), cell.scale);
        const RunResult run = runExperiment(
            exp, cell.txs, cell.cores, ScheduleMode::Rounds, 8);
        expectReplaysCell(checked_in, cell.label(), run, &matched);
    }
    EXPECT_EQ(matched, 3u);
}

TEST(GhostReplay, Scale64CellsAreByteIdenticalUnderGhosts)
{
    forceGhosts();
    const Json checked_in = loadCheckedIn("BENCH_scale64.json");

    SweepGridOptions opts;
    opts.workloads = {WorkloadKind::HashZipf};
    opts.coreCounts = {16};
    const auto cells = buildFigureGrid("scale64", opts);
    ASSERT_EQ(cells.size(), 3u);

    std::size_t matched = 0;
    for (const SweepCell &cell : cells) {
        Experiment exp = buildExperiment(cell.backend, cell.workload,
                                         cell.config(), cell.scale);
        const RunResult run = runExperiment(
            exp, cell.txs, cell.cores, ScheduleMode::Rounds, 4);
        expectReplaysCell(checked_in, cell.label(), run, &matched);
    }
    EXPECT_EQ(matched, 3u);
}

TEST(GhostReplay, QueueCellsAreUnaffectedByCellThreads)
{
    // Open-loop serve cells ignore the cell-thread budget (ghosts are
    // Rounds-only); a sweep with --cell-threads 8 must still reproduce
    // the checked-in open-loop metrics exactly.
    forceGhosts();
    const Json checked_in = loadCheckedIn("BENCH_queue.json");

    SweepGridOptions opts;
    opts.workloads = {WorkloadKind::Sps};
    opts.coreCounts = {4};
    opts.loads = {0.6};
    const auto cells = buildFigureGrid("queue", opts);
    ASSERT_EQ(cells.size(), 3u);

    const std::vector<CellResult> results = runSweep(cells, 1, {}, 8);
    std::size_t matched = 0;
    for (const CellResult &r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        expectReplaysCell(checked_in, r.cell.label(), r.run, &matched);
    }
    EXPECT_EQ(matched, 3u);
}

TEST(GhostReplay, SweepIsJobsInvariantWithCellThreads)
{
    // The worker pool and ghost engines must compose: more sweep
    // workers with ghosts per cell produce the same per-cell results
    // in the same slot order.
    forceGhosts();
    SweepGridOptions opts;
    opts.workloads = {WorkloadKind::Sps, WorkloadKind::HashRand};
    opts.coreCounts = {2};
    opts.txs = 300;
    const auto cells = buildFigureGrid("scale", opts);
    ASSERT_GE(cells.size(), 4u);

    const std::vector<CellResult> serial = runSweep(cells, 1);
    const std::vector<CellResult> threaded = runSweep(cells, 4, {}, 2);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok && threaded[i].ok);
        expectIdenticalRuns(serial[i].run, threaded[i].run,
                            serial[i].cell.label());
    }
}

// ---- ghost read primitives -------------------------------------------------

TEST(GhostPrimitives, GhostTranslateSeesDenseMappingsOnly)
{
    PageTable pt(0, 8);
    pt.map(3, 42);
    EXPECT_EQ(pt.ghostTranslate(3), 42u);
    EXPECT_EQ(pt.ghostTranslate(4), kInvalidPpn); // dense, unmapped
    pt.map(100, 7); // overflow region
    EXPECT_EQ(pt.translate(100), 7u);
    EXPECT_EQ(pt.ghostTranslate(100), kInvalidPpn); // ghosts skip overflow
    EXPECT_EQ(pt.ghostTranslate(0), kInvalidPpn);
    pt.map(0, 0); // ppn 0 is a valid mapping, distinct from "unmapped"
    EXPECT_EQ(pt.ghostTranslate(0), 0u);
    pt.unmap(0);
    EXPECT_EQ(pt.ghostTranslate(0), kInvalidPpn);
}

TEST(GhostPrimitives, GhostRead64MatchesAuthoritativeWrites)
{
    PhysMem mem(4, 2);
    mem.write64(0x100, 0xdeadbeefcafe0123ull);
    EXPECT_EQ(mem.ghostRead64(0x100), 0xdeadbeefcafe0123ull);
    EXPECT_EQ(mem.read64(0x100), 0xdeadbeefcafe0123ull);
    // Never-written pages read as zero, without allocating.
    const std::uint64_t allocated = mem.allocatedPages();
    EXPECT_EQ(mem.ghostRead64(2 * kPageSize + 8), 0u);
    EXPECT_EQ(mem.allocatedPages(), allocated);
    // Misaligned and out-of-range ghost reads are hints, not faults.
    EXPECT_EQ(mem.ghostRead64(0x101), 0u);
    EXPECT_EQ(mem.ghostRead64(100 * kPageSize), 0u);
    mem.ghostPrefetchLine(0x100);            // allocated: prefetches
    mem.ghostPrefetchLine(3 * kPageSize);    // unallocated: no-op
    mem.ghostPrefetchLine(1000 * kPageSize); // out of range: no-op
}

TEST(GhostPrimitives, GhostReaderTranslatesThroughTheMachine)
{
    Machine machine(ssp::test::smallConfig(1));
    // The heap is identity-mapped at construction.
    machine.mem().write64(5 * kPageSize + 64, 77);
    const GhostReader reader(machine);
    EXPECT_EQ(reader.read64(5 * kPageSize + 64), 77u);
    // Beyond the dense heap: unmapped reads as zero.
    EXPECT_EQ(reader.read64((machine.cfg().heapPages + 3) * kPageSize),
              0u);
    reader.prefetch(0, 5 * kPageSize + 64);
    reader.prefetch(0, (machine.cfg().heapPages + 3) * kPageSize);
}

TEST(GhostPrimitives, EngineStopsCleanlyMidRun)
{
    // An engine torn down while ghosts are mid-claim must join without
    // hanging — the driver destroys it right after the last operation.
    forceGhosts();
    WorkloadScale scale;
    scale.keySpace = 128;
    scale.seed = 11;
    Experiment exp =
        buildExperiment(BackendKind::Ssp, WorkloadKind::HashRand,
                        ssp::test::smallConfig(2), scale);
    auto spec = exp.workload->makeGhostSpeculator();
    ASSERT_NE(spec, nullptr);
    Machine &machine = exp.backend->machine();
    GhostEngine engine(machine, std::move(spec), 3, 2, 1'000'000);
    engine.advance(10);
    engine.stop();
    engine.stop(); // idempotent
}

// ---- --cell-threads CLI contract -------------------------------------------

TEST(CellThreadsFlag, RejectsInvalidValues)
{
    // ssp_fatal throws std::runtime_error; sweep_main turns it into
    // exit code 2, the same contract as parseCountList.
    EXPECT_THROW(parseCellThreads("0"), std::runtime_error);
    EXPECT_THROW(parseCellThreads("65"), std::runtime_error);
    EXPECT_THROW(parseCellThreads("4x"), std::runtime_error);
    EXPECT_THROW(parseCellThreads(""), std::runtime_error);
    EXPECT_THROW(parseCellThreads("-2"), std::runtime_error);
    EXPECT_THROW(parseCellThreads("ghosts"), std::runtime_error);
}

TEST(CellThreadsFlag, AcceptsForcedValuesBeyondHardware)
{
    forceGhosts();
    EXPECT_EQ(parseCellThreads("1"), 1u);
    EXPECT_EQ(parseCellThreads("8"), 8u);
    EXPECT_EQ(parseCellThreads("64"), 64u);
}

} // namespace
} // namespace ssp
