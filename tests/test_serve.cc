/**
 * @file
 * Request-serving subsystem tests: histogram bucket math and exact-rank
 * percentiles, arrival-process determinism and long-run rates, the
 * open-loop server's accounting invariants and overload behavior, and
 * the event-driven scheduler's equivalence/replay guarantees against
 * the bulk-synchronous rounds model.
 */

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/arrival.hh"
#include "serve/latency_histogram.hh"
#include "serve/server.hh"
#include "sim/system_builder.hh"
#include "sweep/sweep_grid.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"

namespace ssp::serve::test
{
namespace
{

using ssp::sweep::buildFigureGrid;
using ssp::sweep::SweepCell;
using ssp::sweep::SweepGridOptions;

/** A small serving experiment on the tiny test machine. */
Experiment
smallServeExperiment(unsigned cores)
{
    WorkloadScale scale;
    scale.keySpace = 256;
    scale.spsElements = 1024;
    scale.seed = 7;
    return buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                           ssp::test::smallConfig(cores), scale);
}

// ---- latency histogram -----------------------------------------------------

TEST(LatencyHistogram, UnitRangeValuesAreRecordedExactly)
{
    for (std::uint64_t v = 0; v < 64; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketLowerBound(
                      LatencyHistogram::bucketIndex(v)),
                  v);
    }
}

TEST(LatencyHistogram, BucketBoundsRoundTripAndAreMonotone)
{
    // Every bucket's lower bound maps back to that bucket, and bounds
    // strictly increase — together: buckets tile the value range.
    std::uint64_t prev = 0;
    for (unsigned i = 0; i < LatencyHistogram::kBucketCount; ++i) {
        const std::uint64_t lb = LatencyHistogram::bucketLowerBound(i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(lb), i);
        if (i > 0) {
            EXPECT_GT(lb, prev);
        }
        prev = lb;
    }
}

TEST(LatencyHistogram, QuantizationErrorIsBoundedPerOctave)
{
    // Above the unit range a value maps to a bucket whose lower bound is
    // within 1/2^kSubBucketBits (~3.1%) below it.
    const std::vector<std::uint64_t> values = {
        64, 65, 96, 1000, 123456, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 40) + 12345};
    for (std::uint64_t v : values) {
        const std::uint64_t lb = LatencyHistogram::bucketLowerBound(
            LatencyHistogram::bucketIndex(v));
        EXPECT_LE(lb, v);
        EXPECT_LT(v - lb, v / LatencyHistogram::kSubBuckets + 1);
    }
}

TEST(LatencyHistogram, ExactRankPercentilesOnSmallSamples)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentile(0.5), 0u); // empty
    for (std::uint64_t v : {10ull, 20ull, 30ull, 40ull})
        h.record(v);
    ASSERT_EQ(h.count(), 4u);
    // Exact rank: p(q) is the ceil(q * 4)-th smallest sample.
    EXPECT_EQ(h.percentile(0.25), 10u);
    EXPECT_EQ(h.percentile(0.50), 20u);
    EXPECT_EQ(h.percentile(0.51), 30u);
    EXPECT_EQ(h.percentile(0.75), 30u);
    EXPECT_EQ(h.percentile(0.99), 40u);
    EXPECT_EQ(h.percentile(1.0), 40u);
    EXPECT_EQ(h.maxValue(), 40u);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram combined;
    for (std::uint64_t v = 1; v < 400; v += 7) {
        (v % 2 == 0 ? a : b).record(v * v);
        combined.record(v * v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.maxValue(), combined.maxValue());
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(a.percentile(q), combined.percentile(q));
}

// ---- arrival processes -----------------------------------------------------

TEST(ArrivalProcess, SequencesAreDeterministicPerSeed)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        ArrivalProcess a(kind, 100.0, 42);
        ArrivalProcess b(kind, 100.0, 42);
        ArrivalProcess c(kind, 100.0, 43);
        bool any_differs = false;
        Cycles prev = 0;
        for (int i = 0; i < 1000; ++i) {
            const Cycles t = a.next();
            EXPECT_EQ(t, b.next());
            any_differs |= (t != c.next());
            // Arrival times never run backwards.
            EXPECT_GE(t, prev);
            prev = t;
        }
        EXPECT_TRUE(any_differs) << arrivalKindName(kind);
    }
}

TEST(ArrivalProcess, LongRunRateMatchesTheConfiguredMean)
{
    // All three processes are calibrated so the long-run mean interval
    // is the configured one — bursty alternates 0.6x/3x states whose
    // rates average to 1, diurnal's sinusoid is rate-symmetric.
    constexpr int kDraws = 20000;
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        ArrivalProcess p(kind, 100.0, 1234);
        Cycles last = 0;
        for (int i = 0; i < kDraws; ++i)
            last = p.next();
        const double mean = static_cast<double>(last) / kDraws;
        EXPECT_GT(mean, 80.0) << arrivalKindName(kind);
        EXPECT_LT(mean, 125.0) << arrivalKindName(kind);
    }
}

TEST(ArrivalProcess, UnknownNameIsFatalAndNamesRoundTrip)
{
    EXPECT_THROW(parseArrivalKind("weekly"), std::runtime_error);
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal})
        EXPECT_EQ(parseArrivalKind(arrivalKindName(kind)), kind);
}

// ---- open-loop server ------------------------------------------------------

TEST(ServeExperiment, EveryRequestIsAckedOrRejected)
{
    Experiment exp = smallServeExperiment(2);
    ServeParams params;
    params.offeredLoad = 0.9;
    const RunResult res = runServeExperiment(exp, 300, 2, params);
    EXPECT_EQ(res.committedTxs + res.rejectedTxs, 300u);
    EXPECT_EQ(res.offeredLoad, 0.9);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.p50Cycles, 0u);
    EXPECT_GE(res.p99Cycles, res.p50Cycles);
    EXPECT_GE(res.p999Cycles, res.p99Cycles);
}

TEST(ServeExperiment, RunsAreDeterministic)
{
    ServeParams params;
    params.offeredLoad = 1.1;
    params.arrival = ArrivalKind::Bursty;
    Experiment a = smallServeExperiment(2);
    Experiment b = smallServeExperiment(2);
    const RunResult ra = runServeExperiment(a, 300, 2, params);
    const RunResult rb = runServeExperiment(b, 300, 2, params);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.committedTxs, rb.committedTxs);
    EXPECT_EQ(ra.rejectedTxs, rb.rejectedTxs);
    EXPECT_EQ(ra.p50Cycles, rb.p50Cycles);
    EXPECT_EQ(ra.p99Cycles, rb.p99Cycles);
    EXPECT_EQ(ra.p999Cycles, rb.p999Cycles);
    EXPECT_EQ(ra.meanQueueDepth, rb.meanQueueDepth);
    EXPECT_EQ(ra.nvramWrites, rb.nvramWrites);
}

TEST(ServeExperiment, OverloadRaisesTailLatencyAndQueueDepth)
{
    ServeParams light;
    light.offeredLoad = 0.3;
    ServeParams heavy;
    heavy.offeredLoad = 1.5;
    Experiment a = smallServeExperiment(2);
    Experiment b = smallServeExperiment(2);
    const RunResult lo = runServeExperiment(a, 400, 2, light);
    const RunResult hi = runServeExperiment(b, 400, 2, heavy);
    // Past saturation the queues fill: waiting dominates latency, so
    // the tail and the time-averaged depth must both rise.
    EXPECT_GT(hi.p99Cycles, lo.p99Cycles);
    EXPECT_GT(hi.meanQueueDepth, lo.meanQueueDepth);
}

TEST(ServeExperiment, AdmissionControlShedsAtFullQueues)
{
    ServeParams params;
    params.offeredLoad = 4.0; // far past capacity...
    params.queueDepth = 2;    // ...with almost no buffer
    Experiment exp = smallServeExperiment(2);
    const RunResult res = runServeExperiment(exp, 300, 2, params);
    EXPECT_GT(res.rejectedTxs, 0u);
    EXPECT_EQ(res.committedTxs + res.rejectedTxs, 300u);
}

// ---- scheduler equivalence and replay --------------------------------------

TEST(Scheduler, EventDrivenMatchesRoundsOnOneCore)
{
    // With one core there are no barriers to skip and no peers to
    // outrun: the two schedulers must be cycle-identical.
    Experiment a = smallServeExperiment(1);
    Experiment b = smallServeExperiment(1);
    const RunResult rounds =
        runExperiment(a, 200, 1, ScheduleMode::Rounds);
    const RunResult event =
        runExperiment(b, 200, 1, ScheduleMode::EventDriven);
    EXPECT_EQ(rounds.cycles, event.cycles);
    EXPECT_EQ(rounds.committedTxs, event.committedTxs);
    EXPECT_EQ(rounds.nvramWrites, event.nvramWrites);
    EXPECT_EQ(rounds.loggingWrites, event.loggingWrites);
    EXPECT_EQ(rounds.coreBusyCycles, event.coreBusyCycles);
}

TEST(Scheduler, RoundsModeReplaysTheCheckedInScaleCells)
{
    // The scheduler refactor's bit-identity bar: explicitly requesting
    // ScheduleMode::Rounds through the driver must reproduce the
    // checked-in BENCH_scale.json contended 4-core cells exactly — the
    // rounds model is an API option now, not just the default path.
    std::ifstream in(std::string(SSP_SOURCE_DIR) + "/BENCH_scale.json");
    ASSERT_TRUE(in) << "checked-in BENCH_scale.json missing";
    std::stringstream buf;
    buf << in.rdbuf();
    const Json checked_in = Json::parse(buf.str());

    SweepGridOptions opts;
    opts.workloads = {WorkloadKind::BTreeZipf};
    opts.coreCounts = {4};
    const auto cells = buildFigureGrid("scale", opts);
    ASSERT_EQ(cells.size(), 3u); // one workload x 3 backends

    std::size_t matched = 0;
    for (const SweepCell &cell : cells) {
        Experiment exp = buildExperiment(cell.backend, cell.workload,
                                         cell.config(), cell.scale);
        const RunResult run = runExperiment(exp, cell.txs, cell.cores,
                                            ScheduleMode::Rounds);
        for (std::size_t j = 0; j < checked_in["cells"].size(); ++j) {
            const Json &want = checked_in["cells"].at(j);
            if (want["label"].asString() != cell.label())
                continue;
            const Json &m = want["metrics"];
            EXPECT_EQ(run.committedTxs, m["committed_txs"].asUint())
                << cell.label();
            EXPECT_EQ(run.cycles, m["cycles"].asUint()) << cell.label();
            EXPECT_EQ(run.nvramWrites, m["nvram_writes"].asUint())
                << cell.label();
            EXPECT_EQ(run.loggingWrites, m["logging_writes"].asUint())
                << cell.label();
            EXPECT_EQ(run.txAborts, m["tx_aborts"].asUint())
                << cell.label();
            ++matched;
        }
    }
    EXPECT_EQ(matched, 3u);
}

} // namespace
} // namespace ssp::serve::test
