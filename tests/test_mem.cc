/**
 * @file
 * Unit tests for physical memory and the DRAM/NVRAM timing models.
 */

#include <gtest/gtest.h>

#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"
#include "mem/timing_model.hh"

using namespace ssp;

namespace
{

TEST(PhysMem, ZeroFilledByDefault)
{
    PhysMem mem(16, 4);
    EXPECT_EQ(mem.read64(0x123), 0u);
}

TEST(PhysMem, ReadBackWrites)
{
    PhysMem mem(16, 4);
    mem.write64(0x100, 0xabcdef);
    EXPECT_EQ(mem.read64(0x100), 0xabcdefu);
}

TEST(PhysMem, CrossPageAccess)
{
    PhysMem mem(16, 4);
    std::uint8_t in[100];
    for (unsigned i = 0; i < 100; ++i)
        in[i] = static_cast<std::uint8_t>(i * 3);
    const Addr addr = kPageSize - 50; // straddles pages 0 and 1
    mem.write(addr, in, sizeof(in));
    std::uint8_t out[100] = {};
    mem.read(addr, out, sizeof(out));
    EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(PhysMem, CopyLine)
{
    PhysMem mem(16, 4);
    mem.write64(0x40, 77);
    mem.copyLine(0x80, 0x40);
    EXPECT_EQ(mem.read64(0x80), 77u);
}

TEST(PhysMem, RegionClassification)
{
    PhysMem mem(16, 4);
    EXPECT_TRUE(mem.isNvramPage(0));
    EXPECT_TRUE(mem.isNvramPage(15));
    EXPECT_FALSE(mem.isNvramPage(16));
    EXPECT_TRUE(mem.isNvramAddr(15 * kPageSize));
    EXPECT_FALSE(mem.isNvramAddr(16 * kPageSize));
}

TEST(PhysMem, PowerFailClearsDramOnly)
{
    PhysMem mem(4, 4);
    mem.write64(0x0, 11);                      // NVRAM
    mem.write64(4 * kPageSize + 0x10, 22);     // DRAM
    mem.powerFail();
    EXPECT_EQ(mem.read64(0x0), 11u);
    EXPECT_EQ(mem.read64(4 * kPageSize + 0x10), 0u);
}

TEST(PhysMem, SnapshotCapturesNvram)
{
    PhysMem mem(4, 2);
    mem.write64(0x40, 5);
    auto snap = mem.snapshotNvram();
    ASSERT_TRUE(snap.contains(0));
    std::uint64_t v;
    std::memcpy(&v, snap[0].data() + 0x40, sizeof(v));
    EXPECT_EQ(v, 5u);
}

TEST(TimingModel, RowHitIsCheaper)
{
    MemTimingParams p;
    p.banks = 4;
    p.rowBufferBytes = 1024;
    p.readLatency = 100;
    p.writeLatency = 400;
    p.rowHitFraction = 0.4;
    MemTimingModel model(p);

    const Cycles t1 = model.access(0, false, 0);
    EXPECT_EQ(t1, 100u); // cold: row miss
    // Same row, after the bank frees: row hit.
    const Cycles t2 = model.access(64, false, t1);
    EXPECT_EQ(t2 - t1, 40u);
    EXPECT_EQ(model.rowHits(), 1u);
    EXPECT_EQ(model.rowMisses(), 1u);
}

TEST(TimingModel, BusyBankQueues)
{
    MemTimingParams p;
    p.banks = 2;
    p.rowBufferBytes = 1024;
    p.readLatency = 100;
    p.writeLatency = 100;
    MemTimingModel model(p);

    const Cycles t1 = model.access(0, false, 0);
    // Second access to the same bank issued at time 0 waits for t1.
    const Cycles t2 = model.access(0, false, 0);
    EXPECT_GE(t2, t1);
}

TEST(TimingModel, BanksOperateInParallel)
{
    MemTimingParams p;
    p.banks = 8;
    p.rowBufferBytes = 1024;
    p.readLatency = 100;
    p.writeLatency = 100;
    MemTimingModel model(p);

    // Different banks at the same time complete independently.
    const Cycles t1 = model.access(0, false, 0);
    const Cycles t2 = model.access(1024, false, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 100u);
}

TEST(TimingModel, WritesSlowerThanReads)
{
    MemTimingParams p;
    p.readLatency = 185;
    p.writeLatency = 740;
    MemTimingModel model(p);
    const Cycles r = model.access(0, false, 0);
    MemTimingModel model2(p);
    const Cycles w = model2.access(0, true, 0);
    EXPECT_GT(w, r);
}

TEST(MemoryBus, RoutesByRegionAndCounts)
{
    PhysMem mem(8, 8);
    MemTimingParams dram{"dram", 4, 1024, 100, 100, 0.4};
    MemTimingParams nvram{"nvram", 4, 1024, 200, 800, 0.4};
    MemoryBus bus(mem, dram, nvram);

    bus.issueRead(0, 0);                                   // NVRAM
    bus.issueWrite(0x40, WriteCategory::Data, 0);          // NVRAM
    bus.issueWrite(0x80, WriteCategory::UndoLog, 0);       // NVRAM
    bus.issueWrite(8 * kPageSize, WriteCategory::Data, 0); // DRAM

    EXPECT_EQ(bus.nvramReads(), 1u);
    EXPECT_EQ(bus.nvramWrites(), 2u);
    EXPECT_EQ(bus.nvramWrites(WriteCategory::Data), 1u);
    EXPECT_EQ(bus.nvramWrites(WriteCategory::UndoLog), 1u);
    EXPECT_EQ(bus.dramWrites(), 1u);
}

TEST(MemoryBus, ResetStatsKeepsTiming)
{
    PhysMem mem(8, 2);
    MemTimingParams p{"x", 4, 1024, 100, 100, 0.4};
    MemoryBus bus(mem, p, p);
    bus.issueWrite(0, WriteCategory::Data, 0);
    bus.resetStats();
    EXPECT_EQ(bus.nvramWrites(), 0u);
}

TEST(MemoryBus, CategoryNames)
{
    EXPECT_STREQ(writeCategoryName(WriteCategory::Data), "data");
    EXPECT_STREQ(writeCategoryName(WriteCategory::MetaJournal),
                 "meta-journal");
    EXPECT_STREQ(writeCategoryName(WriteCategory::Consolidation),
                 "consolidation");
}

} // namespace
