/**
 * @file
 * Parameterized configuration sweeps: the SSP correctness properties
 * must hold across TLB sizes, cache geometries, sub-page granularities,
 * checkpoint thresholds, core counts, and consolidation policies.
 * These are the property-style tests that catch interactions no single
 * fixed configuration would.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "core/recovery.hh"
#include "core/ssp_system.hh"
#include "sim/driver.hh"
#include "sim/system_builder.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

/** One swept configuration. */
struct SweepPoint
{
    unsigned tlbEntries;
    unsigned subPageLines;
    unsigned cores;
    bool lazy;
    std::uint64_t checkpointThreshold;
};

std::string
sweepName(const ::testing::TestParamInfo<SweepPoint> &info)
{
    const SweepPoint &p = info.param;
    return "tlb" + std::to_string(p.tlbEntries) + "_sub" +
           std::to_string(p.subPageLines) + "_c" +
           std::to_string(p.cores) + (p.lazy ? "_lazy" : "_eager") +
           "_ckpt" + std::to_string(p.checkpointThreshold);
}

SspConfig
configFor(const SweepPoint &p)
{
    SspConfig cfg = smallConfig(p.cores);
    cfg.tlbEntries = p.tlbEntries;
    cfg.subPageLines = p.subPageLines;
    cfg.consolidationPolicy =
        p.lazy ? SspConfig::ConsolidationPolicy::Lazy
               : SspConfig::ConsolidationPolicy::Eager;
    cfg.checkpointThresholdBytes = p.checkpointThreshold;
    cfg.shadowPoolPages =
        p.cores * p.tlbEntries + cfg.sspCacheOverprovision + 256;
    return cfg;
}

class SspSweepTest : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(SspSweepTest, OracleChurnCrashRecover)
{
    SspSystem sys(configFor(GetParam()));
    const unsigned cores = GetParam().cores;
    Rng rng(GetParam().tlbEntries * 131 + GetParam().subPageLines);
    std::map<Addr, std::uint64_t> oracle;

    for (unsigned round = 0; round < 3; ++round) {
        // A burst of committed transactions across all cores.
        for (unsigned t = 0; t < 40; ++t) {
            const CoreId core = t % cores;
            sys.begin(core);
            std::vector<std::pair<Addr, std::uint64_t>> pending;
            const unsigned writes = 1 + rng.nextBounded(6);
            for (unsigned i = 0; i < writes; ++i) {
                // Cores write disjoint page ranges (lock-based isolation
                // at the data-structure level, as the paper assumes).
                const Addr addr =
                    pageBase(1 + core * 60 + rng.nextBounded(50)) +
                    rng.nextBounded(64) * kLineSize;
                const std::uint64_t v = rng.next();
                sys.store(core, addr, &v, sizeof(v));
                pending.emplace_back(addr, v);
            }
            sys.commit(core);
            for (auto &[a, v] : pending)
                oracle[a] = v;
        }
        // Torn transaction on core 0, then power failure.
        sys.begin(0);
        std::uint64_t junk = rng.next();
        sys.store(0, pageBase(1) + 8, &junk, sizeof(junk));
        sys.crash();
        sys.recover();

        RecoveryReport report = verifyRecoveredState(sys);
        ASSERT_TRUE(report.ok)
            << (report.violations.empty() ? std::string("?")
                                          : report.violations[0]);
        for (auto &[a, v] : oracle) {
            std::uint64_t got = 0;
            sys.loadRaw(a, &got, sizeof(got));
            ASSERT_EQ(got, v) << "round " << round;
        }
    }
}

std::vector<SweepPoint>
sweepPoints()
{
    std::vector<SweepPoint> points;
    for (unsigned tlb : {8u, 16u, 64u}) {
        for (unsigned sub : {1u, 4u}) {
            for (unsigned cores : {1u, 2u}) {
                points.push_back({tlb, sub, cores, false, 16384});
            }
        }
    }
    // Lazy policy and tiny checkpoint threshold corners.
    points.push_back({16, 1, 1, true, 16384});
    points.push_back({64, 4, 2, true, 16384});
    points.push_back({64, 1, 1, false, 2048}); // checkpoint-heavy
    points.push_back({8, 4, 1, true, 2048});
    return points;
}

INSTANTIATE_TEST_SUITE_P(Configs, SspSweepTest,
                         ::testing::ValuesIn(sweepPoints()), sweepName);

// ---- TLB-size monotonicity property ---------------------------------------

TEST(SweepProperties, SmallerTlbMeansMoreConsolidation)
{
    std::uint64_t prev = ~std::uint64_t{0};
    for (unsigned tlb : {8u, 32u, 128u}) {
        SspConfig cfg = smallConfig();
        cfg.tlbEntries = tlb;
        cfg.shadowPoolPages = tlb + cfg.sspCacheOverprovision + 256;
        SspSystem sys(cfg);
        // Round-robin writes over 160 pages.
        for (unsigned i = 0; i < 800; ++i)
            txWrite64(sys, 0, pageBase(1 + (i % 160)) + 8, i);
        const std::uint64_t copies = sys.machine().bus().nvramWrites(
            WriteCategory::Consolidation);
        EXPECT_LE(copies, prev) << "tlb=" << tlb;
        prev = copies;
    }
}

TEST(SweepProperties, CheckpointThresholdBoundsJournal)
{
    for (std::uint64_t threshold : {2048ull, 8192ull, 65536ull}) {
        SspConfig cfg = smallConfig();
        cfg.checkpointThresholdBytes = threshold;
        SspSystem sys(cfg);
        for (unsigned i = 0; i < 2000; ++i)
            txWrite64(sys, 0, pageBase(1 + (i % 30)) + (i % 64) * 64, i);
        EXPECT_LE(sys.controller().journal().appendedBytes(),
                  threshold + 4096)
            << "journal did not stay near its threshold";
    }
}

TEST(SweepProperties, CoarserSubPagesWriteMoreDataButLessMetadata)
{
    auto run = [](unsigned sub) {
        SspConfig cfg = smallConfig();
        cfg.subPageLines = sub;
        SspSystem sys(cfg);
        Rng rng(5);
        for (unsigned i = 0; i < 500; ++i) {
            txWrite64(sys, 0,
                      pageBase(1 + rng.nextBounded(100)) +
                          rng.nextBounded(64) * kLineSize,
                      i);
        }
        return std::pair{sys.machine().bus().nvramWrites(
                             WriteCategory::Data) +
                             sys.machine().bus().nvramWrites(
                                 WriteCategory::Consolidation),
                         sys.machine().coherence().flipMessages()};
    };
    auto [fine_data, fine_flips] = run(1);
    auto [coarse_data, coarse_flips] = run(4);
    EXPECT_GT(coarse_data, fine_data);   // 4-line CoW/flush units
    EXPECT_LE(coarse_flips, fine_flips); // fewer tracking bits
}

TEST(SweepProperties, ThroughputScalesWithCores)
{
    // Embarrassingly parallel disjoint pages: 4 cores must complete the
    // same total work in less simulated time than 1 core.
    auto run = [](unsigned cores) {
        SspConfig cfg = smallConfig(cores);
        cfg.shadowPoolPages =
            cores * cfg.tlbEntries + cfg.sspCacheOverprovision + 256;
        SspSystem sys(cfg);
        for (unsigned i = 0; i < 400; ++i) {
            const CoreId c = i % cores;
            txWrite64(sys, c, pageBase(1 + c * 100 + (i % 50)) + 8, i);
        }
        return sys.machine().maxClock();
    };
    EXPECT_LT(run(4), run(1));
}

TEST(SweepProperties, NvramLatencyMultiplierMonotone)
{
    double prev_tps = 1e18;
    for (double mult : {1.0, 4.0, 8.0}) {
        SspConfig cfg = smallConfig();
        cfg.nvramLatencyMultiplier = mult;
        cfg.heapPages = 2048;
        cfg.shadowPoolPages = 2048;
        WorkloadScale scale;
        scale.keySpace = 256;
        auto exp = buildExperiment(BackendKind::Ssp,
                                   WorkloadKind::HashRand, cfg, scale);
        RunResult res = runExperiment(exp, 300, 1);
        EXPECT_LT(res.tps(), prev_tps) << "mult=" << mult;
        prev_tps = res.tps();
    }
}

TEST(SweepProperties, FixedSspCacheLatencyMonotone)
{
    Cycles prev_cycles = 0;
    for (Cycles lat : {20u, 100u, 180u}) {
        SspConfig cfg = smallConfig();
        cfg.sspCacheLatency.fixedLatency = lat;
        SspSystem sys(cfg);
        // TLB-thrashing access pattern maximizes SSP-cache accesses.
        for (unsigned i = 0; i < 500; ++i)
            txWrite64(sys, 0, pageBase(1 + (i % 150)) + 8, i);
        EXPECT_GE(sys.machine().maxClock(), prev_cycles);
        prev_cycles = sys.machine().maxClock();
    }
}

} // namespace
