/**
 * @file
 * Unit tests for the cache level and the hierarchy, including the SSP
 * extensions (TX bit, tag remap) and write-back accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"

using namespace ssp;

namespace
{

CacheParams
tinyCache(unsigned size_kib, unsigned ways, Cycles lat)
{
    return CacheParams{"t", size_kib * 1024ull, ways, lat};
}

HierarchyParams
smallHierParams()
{
    HierarchyParams p;
    p.l1 = CacheParams{"l1", 1024, 2, 4};
    p.l2 = CacheParams{"l2", 4096, 4, 6};
    p.l3 = CacheParams{"l3", 16384, 4, 27};
    return p;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache(4, 4, 1));
    auto r1 = c.access(0x1000, false);
    EXPECT_FALSE(r1.hit);
    auto r2 = c.access(0x1000, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, WriteMarksDirty)
{
    Cache c(tinyCache(4, 4, 1));
    c.access(0x40, true);
    EXPECT_TRUE(c.isDirty(0x40));
    c.cleanLine(0x40);
    EXPECT_FALSE(c.isDirty(0x40));
    EXPECT_TRUE(c.probe(0x40)); // clwb keeps the line
}

TEST(Cache, LruEvictsOldestAndReportsDirtyVictim)
{
    // 2 sets x 2 ways of 64B lines = 256B cache.
    Cache c(CacheParams{"t", 256, 2, 1});
    // Fill set 0 (addresses with even line index).
    c.access(0 * 64, true);  // set 0
    c.access(2 * 64, false); // set 0
    auto r = c.access(4 * 64, false); // set 0 -> evict line 0 (dirty)
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, LruKeepsRecentlyTouched)
{
    Cache c(CacheParams{"t", 256, 2, 1});
    c.access(0 * 64, false);
    c.access(2 * 64, false);
    c.access(0 * 64, false);       // touch line 0
    c.access(4 * 64, false);       // evicts line 2, not 0
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(2 * 64));
}

TEST(Cache, RemapMovesStateAndDirtiness)
{
    Cache c(tinyCache(4, 4, 1));
    c.access(0x100, true);
    c.setTxBit(0x100, true);
    auto r = c.remap(0x100, 0x2100);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x2100));
    EXPECT_TRUE(c.isDirty(0x2100));
    EXPECT_TRUE(c.txBit(0x2100));
}

TEST(Cache, RemapOfAbsentLineIsNoop)
{
    Cache c(tinyCache(4, 4, 1));
    auto r = c.remap(0x100, 0x200);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(c.probe(0x200));
}

TEST(Cache, InvalidateDropsWithoutWriteback)
{
    Cache c(tinyCache(4, 4, 1));
    c.access(0x40, true);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.invalidate(0x40));
}

TEST(Cache, InvalidateAll)
{
    Cache c(tinyCache(4, 4, 1));
    for (unsigned i = 0; i < 16; ++i)
        c.access(i * 64, true);
    EXPECT_GT(c.validLines(), 0u);
    c.invalidateAll();
    EXPECT_EQ(c.validLines(), 0u);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : mem(64, 16),
          bus(mem, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
              MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4}),
          hier(2, smallHierParams(), bus)
    {
    }

    PhysMem mem;
    MemoryBus bus;
    CacheHierarchy hier;
};

TEST_F(HierarchyTest, ColdReadGoesToMemory)
{
    const Cycles t = hier.read(0, 0x1000, 0);
    // L1 + L2 + L3 latencies plus NVRAM read.
    EXPECT_GE(t, 4u + 6u + 27u + 200u);
    EXPECT_EQ(bus.nvramReads(), 1u);
}

TEST_F(HierarchyTest, WarmReadHitsL1)
{
    hier.read(0, 0x1000, 0);
    const Cycles t0 = 1000;
    const Cycles t = hier.read(0, 0x1000, t0);
    EXPECT_EQ(t - t0, 4u);
}

TEST_F(HierarchyTest, FlushWritesBackDirtyLineOnce)
{
    hier.write(0, 0x2000, 0);
    EXPECT_TRUE(hier.isDirty(0, 0x2000));
    hier.flushLine(0, 0x2000, WriteCategory::Data, 100);
    EXPECT_FALSE(hier.isDirty(0, 0x2000));
    EXPECT_EQ(bus.nvramWrites(WriteCategory::Data), 1u);
    // Second flush: clean line, no extra write.
    hier.flushLine(0, 0x2000, WriteCategory::Data, 200);
    EXPECT_EQ(bus.nvramWrites(WriteCategory::Data), 1u);
}

TEST_F(HierarchyTest, PrivateCachesArePerCore)
{
    hier.read(0, 0x3000, 0);
    EXPECT_TRUE(hier.l1(0).probe(0x3000));
    EXPECT_FALSE(hier.l1(1).probe(0x3000));
    // But the shared L3 serves both.
    EXPECT_TRUE(hier.l3().probe(0x3000));
}

TEST_F(HierarchyTest, RemapAppliesEverywherePresent)
{
    hier.write(0, 0x4000, 0);
    hier.remapLine(0, 0x4000, 0x5000, 10);
    EXPECT_FALSE(hier.isCached(0, 0x4000));
    EXPECT_TRUE(hier.isCached(0, 0x5000));
    EXPECT_TRUE(hier.isDirty(0, 0x5000));
}

TEST_F(HierarchyTest, EvictionChainsReachMemory)
{
    // Write far more lines than the hierarchy holds; dirty victims must
    // eventually be written back to NVRAM as Data.
    for (unsigned i = 0; i < 2048; ++i)
        hier.write(0, i * kLineSize, i);
    EXPECT_GT(bus.nvramWrites(WriteCategory::Data), 0u);
}

TEST_F(HierarchyTest, InvalidateAllDropsEverything)
{
    hier.write(0, 0x6000, 0);
    hier.invalidateAll();
    EXPECT_FALSE(hier.isCached(0, 0x6000));
}

// ---- sharer index ---------------------------------------------------------

class SharerIndexTest : public ::testing::Test
{
  protected:
    static constexpr unsigned kCores = 8; // >= kSharerIndexMinCores

    SharerIndexTest()
        : mem(64, 16),
          bus(mem, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
              MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4}),
          hier(kCores, smallHierParams(), bus)
    {
    }

    /** Brute-force ground truth the index must match exactly. */
    CoreBitmap
    probeMask(Addr line) const
    {
        CoreBitmap mask;
        for (CoreId c = 0; c < kCores; ++c) {
            if (hier.l1(c).probe(line) || hier.l2(c).probe(line))
                mask.set(c);
        }
        return mask;
    }

    void
    expectIndexConsistent(const std::vector<Addr> &lines)
    {
        for (Addr line : lines) {
            EXPECT_EQ(hier.sharerIndex().sharers(line), probeMask(line))
                << "sharer mask diverged for line 0x" << std::hex << line;
        }
    }

    PhysMem mem;
    MemoryBus bus;
    mutable CacheHierarchy hier;
};

TEST_F(SharerIndexTest, IndexedOnlyAboveTheCutover)
{
    EXPECT_TRUE(hier.sharerIndexed());
    PhysMem m2(64, 16);
    MemoryBus b2(m2, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
                 MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4});
    CacheHierarchy small(CacheHierarchy::kSharerIndexMinCores - 1,
                         smallHierParams(), b2);
    EXPECT_FALSE(small.sharerIndexed());
}

TEST_F(SharerIndexTest, TracksAccessInsertInvalidateRemap)
{
    const Addr a = 0x1000, b = 0x2000;
    hier.read(0, a, 0);
    hier.read(3, a, 0);
    expectIndexConsistent({a});
    const CoreBitmap both = CoreBitmap::fromMask(0b1001u);
    EXPECT_EQ(hier.sharerIndex().sharers(a) & both, both);

    hier.remapLine(3, a, b, 10);
    expectIndexConsistent({a, b});

    hier.invalidateLine(a);
    hier.invalidateLine(b);
    expectIndexConsistent({a, b});
    EXPECT_TRUE(hier.sharerIndex().sharers(a).none());
    EXPECT_TRUE(hier.sharerIndex().sharers(b).none());
}

TEST_F(SharerIndexTest, RandomizedOpsKeepMaskExact)
{
    // The index must stay bit-exact through every mutation path the
    // hierarchy has: timed reads/writes (fills + LRU evictions), the
    // SSP remap, remote shootdowns, abort-path drops, and power
    // failure.  Any divergence would silently change which peers are
    // charged coherence traffic.
    Rng rng(12345);
    std::vector<Addr> lines;
    for (unsigned i = 0; i < 48; ++i)
        lines.push_back(i * kLineSize * 3); // collide across a few sets
    for (unsigned step = 0; step < 4000; ++step) {
        const CoreId core =
            static_cast<CoreId>(rng.nextBounded(kCores));
        const Addr line = lines[rng.nextBounded(lines.size())];
        switch (rng.nextBounded(6)) {
          case 0:
            hier.read(core, line, step);
            break;
          case 1:
            hier.write(core, line, step);
            break;
          case 2:
            hier.invalidateLine(line);
            break;
          case 3:
            hier.invalidateLineRemote(core, line);
            break;
          case 4:
            hier.remapLine(core, line,
                           lines[rng.nextBounded(lines.size())], step);
            break;
          case 5:
            if (rng.nextBool(0.02))
                hier.invalidateAll(); // simulated power failure
            else
                hier.read(core, line + kLineSize, step);
            break;
        }
        if (step % 64 == 0)
            expectIndexConsistent(lines);
    }
    expectIndexConsistent(lines);
    hier.invalidateAll();
    EXPECT_EQ(hier.sharerIndex().trackedLines(), 0u);
}

} // namespace
