/**
 * @file
 * Sharded-cluster tests: the network cost model, per-shard seed
 * derivation, the 1-machine identity (a cluster of one is the
 * single-machine model bit for bit, including against the checked-in
 * BENCH_scale.json), shard independence at cross-shard fraction 0, the
 * 2PC fault matrix (abort rollback, participant power failure between
 * prepare and commit, recovery while peers serve), and determinism of
 * the shard sweep grid across worker counts.
 */

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "shard/shard_driver.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"

namespace ssp::shard::test
{
namespace
{

/** The smoke/scale/shard machine at @p cores cores. */
SspConfig
shardConfig(unsigned cores)
{
    return ssp::test::smallConfig(cores);
}

/** A small workload scale matching the shard grid's capped streams. */
WorkloadScale
shardScale(std::uint64_t seed = 42)
{
    WorkloadScale scale;
    scale.keySpace = 1024;
    scale.spsElements = 4096;
    scale.seed = seed;
    return scale;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.committedTxs, b.committedTxs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nvramWrites, b.nvramWrites);
    EXPECT_EQ(a.loggingWrites, b.loggingWrites);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_EQ(a.consolidationWrites, b.consolidationWrites);
    EXPECT_EQ(a.checkpointWrites, b.checkpointWrites);
    EXPECT_EQ(a.journalWrites, b.journalWrites);
    EXPECT_EQ(a.txAborts, b.txAborts);
    EXPECT_EQ(a.txRetries, b.txRetries);
    EXPECT_EQ(a.avgLinesPerTx, b.avgLinesPerTx);
    EXPECT_EQ(a.avgPagesPerTx, b.avgPagesPerTx);
    EXPECT_EQ(a.maxPagesPerTx, b.maxPagesPerTx);
    EXPECT_EQ(a.coreBusyCycles, b.coreBusyCycles);
    EXPECT_EQ(a.coreTxs, b.coreTxs);
}

Json
loadCheckedIn(const std::string &name)
{
    std::ifstream in(std::string(SSP_SOURCE_DIR) + "/" + name);
    EXPECT_TRUE(in) << "checked-in " << name << " missing";
    std::stringstream buf;
    buf << in.rdbuf();
    return Json::parse(buf.str());
}

// ---- network model ---------------------------------------------------------

TEST(NetworkModel, SameMachineMessagesAreFreeAndUncounted)
{
    NetworkModel net;
    EXPECT_EQ(net.messageCost(0, 0, kPrepareBytes), 0u);
    EXPECT_EQ(net.messageCost(3, 3, 1 << 20), 0u);
    EXPECT_EQ(net.messages(), 0u);
    EXPECT_EQ(net.cyclesCharged(), 0u);
}

TEST(NetworkModel, CrossMachineCostIsLatencyPlusSerializationPlusWire)
{
    NetworkParams params;
    params.rpcLatency = 1000;
    params.serialization = 50;
    params.bytesPerCycle = 16;
    NetworkModel net(params);
    // 256 bytes at 16 B/cycle = 16 wire cycles.
    EXPECT_EQ(net.messageCost(0, 1, 256), 1000u + 50u + 16u);
    // Partial last beat rounds up: 17 bytes take 2 cycles.
    EXPECT_EQ(net.messageCost(1, 0, 17), 1000u + 50u + 2u);
    EXPECT_EQ(net.messages(), 2u);
    EXPECT_EQ(net.cyclesCharged(), (1000u + 50u + 16u) + (1000u + 50u + 2u));
}

// ---- cluster construction --------------------------------------------------

TEST(Cluster, ShardSeedKeepsShardZeroAndSeparatesTheRest)
{
    // Shard 0 replays the cell stream verbatim — the 1-machine identity
    // depends on it — and every other shard gets a distinct stream.
    EXPECT_EQ(Cluster::shardSeed(42, 0), 42u);
    std::set<std::uint64_t> seeds;
    for (unsigned m = 0; m < 8; ++m)
        seeds.insert(Cluster::shardSeed(42, m));
    EXPECT_EQ(seeds.size(), 8u);
    // Deterministic: same inputs, same stream.
    EXPECT_EQ(Cluster::shardSeed(42, 3), Cluster::shardSeed(42, 3));
    EXPECT_NE(Cluster::shardSeed(42, 3), Cluster::shardSeed(43, 3));
}

TEST(Cluster, HashPartitionCoversEveryMachine)
{
    Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps, shardConfig(1),
                    shardScale(), 4);
    std::set<unsigned> owners;
    for (std::uint64_t key = 0; key < 1024; ++key) {
        const unsigned m = cluster.shardOf(key);
        ASSERT_LT(m, 4u);
        owners.insert(m);
        // Ownership is a pure function of the key.
        EXPECT_EQ(cluster.shardOf(key), m);
    }
    EXPECT_EQ(owners.size(), 4u);
}

// ---- 1-machine identity ----------------------------------------------------

TEST(ShardDriver, OneMachineClusterMatchesTheSingleMachineDriver)
{
    Cluster cluster(BackendKind::Ssp, WorkloadKind::BTreeZipf,
                    shardConfig(4), shardScale(), 1);
    const ShardRunResult cluster_res =
        runClusterExperiment(cluster, 200, 4, 0, 12345);

    Experiment single = buildExperiment(BackendKind::Ssp,
                                        WorkloadKind::BTreeZipf,
                                        shardConfig(4), shardScale());
    const RunResult single_res = runExperiment(single, 200, 4);

    ASSERT_EQ(cluster_res.shards.size(), 1u);
    expectSameRun(cluster_res.aggregate, single_res);
    // No network, no 2PC state on the fast path.
    EXPECT_EQ(cluster_res.tx.crossShardTxs, 0u);
    EXPECT_EQ(cluster_res.networkMessages, 0u);
    EXPECT_EQ(cluster_res.networkCycles, 0u);
}

TEST(ShardGrid, OneMachineCellsReplayTheCheckedInScaleCells)
{
    // The fast-path acceptance bar: every 1-machine shard cell must
    // reproduce the checked-in BENCH_scale.json 4-core cell of the same
    // (backend, workload) bit for bit — same machine, same streams,
    // same driver.  scripts/check.sh enforces the same identity on the
    // checked-in BENCH_shard.json; this test catches it at ctest time.
    const Json scale = loadCheckedIn("BENCH_scale.json");
    std::map<std::string, const Json *> scale_cells;
    for (std::size_t i = 0; i < scale["cells"].size(); ++i) {
        const Json &c = scale["cells"].at(i);
        scale_cells[c["label"].asString()] = &c;
    }

    sweep::SweepGridOptions opts;
    opts.machines = {1};
    const auto cells = sweep::buildFigureGrid("shard", opts);
    ASSERT_EQ(cells.size(), 9u); // 3 workloads x 3 backends, frac 0 only
    const auto results = sweep::runSweep(cells, 2);
    for (const sweep::CellResult &r : results) {
        ASSERT_TRUE(r.ok) << r.cell.label() << ": " << r.error;
        // shard/SSP/SPS/c4/m1 -> scale/SSP/SPS/c4
        std::string label = r.cell.label();
        label.replace(0, 5, "scale");
        label.erase(label.rfind("/m1"));
        const auto it = scale_cells.find(label);
        ASSERT_NE(it, scale_cells.end()) << label;
        const Json &m = (*it->second)["metrics"];
        EXPECT_EQ(m["cycles"].asUint(), r.run.cycles) << label;
        EXPECT_EQ(m["committed_txs"].asUint(), r.run.committedTxs)
            << label;
        EXPECT_EQ(m["nvram_writes"].asUint(), r.run.nvramWrites) << label;
        EXPECT_EQ(m["logging_writes"].asUint(), r.run.loggingWrites)
            << label;
        EXPECT_EQ(m["tx_aborts"].asUint(), r.run.txAborts) << label;
    }
}

// ---- shard independence ----------------------------------------------------

TEST(ShardDriver, FractionZeroShardsMatchIndependentMachines)
{
    // With no cross-shard transactions the cluster is M independent
    // machines: each shard's metrics must equal a standalone
    // single-machine run with that shard's derived seed.
    Cluster cluster(BackendKind::UndoLog, WorkloadKind::Sps,
                    shardConfig(4), shardScale(), 2);
    const ShardRunResult res = runClusterExperiment(cluster, 150, 4, 0, 7);
    ASSERT_EQ(res.shards.size(), 2u);
    EXPECT_EQ(res.tx.singleShardTxs, 2u * 150u);
    EXPECT_EQ(res.tx.crossShardTxs, 0u);
    EXPECT_EQ(res.networkMessages, 0u);

    for (unsigned m = 0; m < 2; ++m) {
        Experiment single = buildExperiment(
            BackendKind::UndoLog, WorkloadKind::Sps, shardConfig(4),
            shardScale(Cluster::shardSeed(42, m)));
        expectSameRun(res.shards[m], runExperiment(single, 150, 4));
    }
}

// ---- 2PC fault matrix ------------------------------------------------------

TEST(TwoPhaseCommit, ContendedCrossShardRunAbortsRollBackAndVerify)
{
    // Zipf-contended cluster: cross-shard validation failures must roll
    // back both branches (no reference-model drift — verify() passes on
    // every shard) while committed work adds up exactly.
    Cluster cluster(BackendKind::Ssp, WorkloadKind::BTreeZipf,
                    shardConfig(4), shardScale(), 2);
    const std::uint64_t txs = 300;
    const ShardRunResult res =
        runClusterExperiment(cluster, txs, 4, 0.5, 99);

    EXPECT_EQ(res.tx.singleShardTxs + res.tx.crossShardTxs, 2 * txs);
    EXPECT_GT(res.tx.crossShardTxs, 0u);
    // The Zipf hotspot under 4 cores x 2 shards must produce at least
    // one cross-shard abort — otherwise the rollback path went untested.
    EXPECT_GT(res.tx.crossShardAborts, 0u);
    // Every commit sent exactly one prepare; aborted attempts sent one
    // iff they survived home validation (a home conflict aborts before
    // spending the network round).
    EXPECT_GE(res.tx.prepareRoundTrips, res.tx.crossShardTxs);
    EXPECT_LE(res.tx.prepareRoundTrips,
              res.tx.crossShardTxs + res.tx.crossShardAborts);
    EXPECT_GT(res.networkMessages, 0u);
    EXPECT_GT(res.networkCycles, 0u);

    for (unsigned m = 0; m < 2; ++m) {
        EXPECT_TRUE(cluster.shard(m).workload->verify())
            << "shard " << m << " diverged from its reference model";
    }
}

TEST(TwoPhaseCommit, ParticipantPowerFailureAfterPrepareKeepsTheOutcome)
{
    // The durable-prepare guarantee: once a participant voted yes (its
    // prepare record — the backend commit — persisted), a power failure
    // before the decision arrives must recover to the validated
    // outcome.  The prepared hook fires exactly in that window.
    Cluster cluster(BackendKind::Ssp, WorkloadKind::HashRand,
                    shardConfig(4), shardScale(), 2);
    TxCoordinator coord(cluster);
    unsigned failures = 0;
    coord.setPreparedHook([&](unsigned peer) {
        if (failures == 0) {
            ++failures;
            cluster.powerFail(peer);
        }
    });
    // Drive cross-shard transactions until the hook has fired.
    for (std::uint64_t i = 0; i < 20; ++i)
        coord.runCrossShard(0, 1, 0);
    ASSERT_EQ(failures, 1u);
    EXPECT_EQ(coord.stats().crossShardTxs, 20u);
    // Both shards — including the one that lost power mid-2PC — match
    // their reference models: the prepared transaction survived.
    EXPECT_TRUE(cluster.shard(0).workload->verify());
    EXPECT_TRUE(cluster.shard(1).workload->verify());
}

TEST(TwoPhaseCommit, PowerFailedShardRecoversWhilePeersKeepServing)
{
    // Mid-run power failure of one shard: the cluster keeps serving
    // (the failed shard recovers from its own durable state), and every
    // shard still verifies afterwards.
    Cluster cluster(BackendKind::RedoLog, WorkloadKind::Sps,
                    shardConfig(4), shardScale(), 4);
    const ShardRunResult before =
        runClusterExperiment(cluster, 50, 4, 0.1, 11);
    EXPECT_GT(before.aggregate.committedTxs, 0u);

    cluster.powerFail(2);
    for (unsigned m = 0; m < 4; ++m)
        EXPECT_TRUE(cluster.shard(m).workload->verify()) << m;

    const ShardRunResult after =
        runClusterExperiment(cluster, 50, 4, 0.1, 13);
    EXPECT_GT(after.aggregate.committedTxs, 0u);
    for (unsigned m = 0; m < 4; ++m)
        EXPECT_TRUE(cluster.shard(m).workload->verify()) << m;
}

// ---- sweep grid ------------------------------------------------------------

TEST(ShardGrid, ShapeCoversMachinesAndFractions)
{
    const auto cells = sweep::buildFigureGrid("shard");
    // m1: 9 fast-path cells (fraction 0 only); m2/m4/m8: 3 fractions
    // x 3 workloads x 3 backends each.
    ASSERT_EQ(cells.size(), 9u + 3u * 3u * 9u);
    std::set<std::string> labels;
    for (const sweep::SweepCell &cell : cells) {
        EXPECT_EQ(cell.figure, "shard");
        EXPECT_EQ(cell.cores, 4u);
        EXPECT_EQ(cell.txs, 400u);
        if (cell.machines == 1) {
            EXPECT_EQ(cell.crossShardFraction, 0.0);
        }
        // Partitioned scenario: Hash-Rand shards its keys per core.
        if (cell.workload == WorkloadKind::HashRand) {
            EXPECT_EQ(cell.keyShards, 4u);
        }
        labels.insert(cell.label());
    }
    EXPECT_EQ(labels.size(), cells.size());
    EXPECT_TRUE(labels.count("shard/SSP/SPS/c4/m1"));
    EXPECT_TRUE(labels.count("shard/SSP/Hash-Rand/c4/p4/m4/x10"));
    EXPECT_TRUE(labels.count("shard/REDO-LOG/BTree-Zipf/c4/m8/x50"));
}

TEST(ShardGrid, SeedsArePinnedToTheScalePlane)
{
    // A shard cell replays the scale grid's stream for the same
    // (workload, backend) at every machine count and fraction — the
    // cluster axes measure distribution effects, not reseeded noise.
    const auto shard_cells = sweep::buildFigureGrid("shard");
    const auto scale_cells = sweep::buildFigureGrid("scale");
    for (const sweep::SweepCell &s : shard_cells) {
        bool found = false;
        for (const sweep::SweepCell &ref : scale_cells) {
            if (ref.cores == 4 && ref.backend == s.backend &&
                ref.workload == s.workload) {
                EXPECT_EQ(ref.scale.seed, s.scale.seed) << s.label();
                found = true;
            }
        }
        EXPECT_TRUE(found) << s.label();
    }
}

TEST(ShardGrid, MachinesOptionIsRejectedElsewhere)
{
    sweep::SweepGridOptions opts;
    opts.machines = {2};
    EXPECT_THROW(sweep::buildFigureGrid("fig5", opts),
                 std::runtime_error);
    EXPECT_THROW(sweep::buildFigureGrid("scale", opts),
                 std::runtime_error);
    EXPECT_NO_THROW(sweep::buildFigureGrid("shard", opts));
}

TEST(ShardSweep, CellsAreDeterministicAcrossJobs)
{
    sweep::SweepGridOptions opts;
    opts.machines = {1, 2};
    opts.workloads = {WorkloadKind::Sps, WorkloadKind::BTreeZipf};
    opts.backends = {BackendKind::Ssp};
    opts.txs = 60;
    const auto cells = sweep::buildFigureGrid("shard", opts);
    ASSERT_EQ(cells.size(), 2u + 3u * 2u);
    const auto serial = sweep::runSweep(cells, 1);
    const auto parallel = sweep::runSweep(cells, 3);
    EXPECT_EQ(sweep::sweepReport("shard", serial).dump(2),
              sweep::sweepReport("shard", parallel).dump(2));
}

TEST(ShardSweep, ReportEmits2pcMetricsOnlyOnMultiMachineCells)
{
    sweep::SweepGridOptions opts;
    opts.machines = {1, 2};
    opts.workloads = {WorkloadKind::BTreeZipf};
    opts.backends = {BackendKind::Ssp};
    opts.txs = 60;
    const auto cells = sweep::buildFigureGrid("shard", opts);
    const auto results = sweep::runSweep(cells, 2);
    const Json report =
        Json::parse(sweep::sweepReport("shard", results).dump(2));
    ASSERT_EQ(report["cells"].size(), cells.size());
    for (std::size_t i = 0; i < report["cells"].size(); ++i) {
        const Json &c = report["cells"].at(i);
        ASSERT_TRUE(c["ok"].asBool()) << c["label"].asString();
        // Every shard cell names its machine count; the 2PC block
        // exists iff a network exists.
        const unsigned machines =
            static_cast<unsigned>(c["machines"].asUint());
        const Json &m = c["metrics"];
        EXPECT_EQ(c.has("cross_shard_pct"), machines > 1);
        EXPECT_EQ(m.has("single_shard_txs"), machines > 1);
        EXPECT_EQ(m.has("cross_shard_txs"), machines > 1);
        EXPECT_EQ(m.has("prepare_round_trips"), machines > 1);
        EXPECT_EQ(m.has("cross_shard_aborts"), machines > 1);
        EXPECT_EQ(m.has("network_messages"), machines > 1);
        EXPECT_EQ(m.has("network_cycles"), machines > 1);
        EXPECT_EQ(m.has("coordinator_stall_cycles"), machines > 1);
        EXPECT_EQ(m.has("shard_cycles"), machines > 1);
        EXPECT_EQ(m.has("shard_committed_txs"), machines > 1);
        if (machines > 1) {
            EXPECT_EQ(m["shard_cycles"].size(), machines);
            EXPECT_EQ(m["shard_committed_txs"].size(), machines);
            // Cross-shard cells must actually exercise the network.
            if (c["cross_shard_pct"].asUint() > 0) {
                EXPECT_GT(m["cross_shard_txs"].asUint(), 0u);
                EXPECT_GT(m["network_messages"].asUint(), 0u);
            }
        }
    }

    // Legacy grids carry neither the coordinate nor the metrics.
    const auto smoke = sweep::runSweep(sweep::buildFigureGrid("smoke"), 1);
    const Json smoke_report =
        Json::parse(sweep::sweepReport("smoke", smoke).dump(2));
    EXPECT_FALSE(smoke_report["cells"].at(0).has("machines"));
    EXPECT_FALSE(
        smoke_report["cells"].at(0)["metrics"].has("network_messages"));
}

} // namespace
} // namespace ssp::shard::test
