/**
 * @file
 * Tests for the paper's section-4.3 / future-work extension features:
 * 256-byte sub-page tracking granularity, the lazy consolidation
 * policy, and wear-leveling shadow-page rotation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/recovery.hh"
#include "core/ssp_system.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

// ---- sub-page granularity ------------------------------------------------

class SubPageTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    void
    SetUp() override
    {
        SspConfig cfg = smallConfig();
        cfg.subPageLines = GetParam();
        sys = std::make_unique<SspSystem>(cfg);
    }

    std::unique_ptr<SspSystem> sys;
};

TEST_P(SubPageTest, CommittedStoreReadable)
{
    txWrite64(*sys, 0, 0x1040, 0xabc);
    EXPECT_EQ(raw64(*sys, 0x1040), 0xabcu);
    EXPECT_EQ(timed64(*sys, 0, 0x1040), 0xabcu);
}

TEST_P(SubPageTest, NeighborLinesInSubPageSurviveCow)
{
    // Commit data in all lines of the first sub-page, then rewrite only
    // one line: the group CoW must carry the others along.
    const unsigned group = GetParam();
    sys->begin(0);
    for (unsigned li = 0; li < group; ++li) {
        std::uint64_t v = 100 + li;
        sys->store(0, 0x2000 + li * kLineSize, &v, sizeof(v));
    }
    sys->commit(0);

    txWrite64(*sys, 0, 0x2000, 999); // line 0 only
    EXPECT_EQ(raw64(*sys, 0x2000), 999u);
    for (unsigned li = 1; li < group; ++li)
        EXPECT_EQ(raw64(*sys, 0x2000 + li * kLineSize), 100u + li);
}

TEST_P(SubPageTest, AbortRestoresWholeSubPage)
{
    txWrite64(*sys, 0, 0x3000, 5);
    sys->begin(0);
    std::uint64_t v = 6;
    sys->store(0, 0x3000, &v, sizeof(v));
    sys->abort(0);
    EXPECT_EQ(raw64(*sys, 0x3000), 5u);
    EXPECT_EQ(timed64(*sys, 0, 0x3000), 5u);
}

TEST_P(SubPageTest, CrashRecoveryHolds)
{
    txWrite64(*sys, 0, 0x4000, 1);
    txWrite64(*sys, 0, 0x4100, 2); // a different sub-page at group=4
    sys->begin(0);
    std::uint64_t v = 99;
    sys->store(0, 0x4000, &v, sizeof(v));
    sys->crash();
    sys->recover();
    EXPECT_EQ(raw64(*sys, 0x4000), 1u);
    EXPECT_EQ(raw64(*sys, 0x4100), 2u);
    RecoveryReport report = verifyRecoveredState(*sys);
    EXPECT_TRUE(report.ok);
}

TEST_P(SubPageTest, RandomizedOracleChurn)
{
    Rng rng(GetParam() * 17 + 1);
    std::map<Addr, std::uint64_t> oracle;
    for (unsigned round = 0; round < 50; ++round) {
        sys->begin(0);
        std::vector<std::pair<Addr, std::uint64_t>> pending;
        const unsigned writes = 1 + rng.nextBounded(8);
        for (unsigned i = 0; i < writes; ++i) {
            const Addr addr = pageBase(5 + rng.nextBounded(10)) +
                              rng.nextBounded(64) * kLineSize;
            const std::uint64_t v = rng.next();
            sys->store(0, addr, &v, sizeof(v));
            pending.emplace_back(addr, v);
        }
        if (rng.nextBool(0.2)) {
            sys->abort(0);
        } else {
            sys->commit(0);
            for (auto &[a, v] : pending)
                oracle[a] = v;
        }
    }
    for (auto &[a, v] : oracle)
        EXPECT_EQ(raw64(*sys, a), v);
}

INSTANTIATE_TEST_SUITE_P(Granularity, SubPageTest,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<unsigned> &i) {
                             return "lines" + std::to_string(i.param);
                         });

TEST(SubPage, CoarserTrackingFlipsFewerBits)
{
    // Writing 4 adjacent lines flips 4 bits at line granularity but only
    // 1 bit (and broadcasts once) at 256-byte granularity.
    SspConfig fine = smallConfig(2);
    SspConfig coarse = smallConfig(2);
    coarse.subPageLines = 4;
    SspSystem fsys(fine), csys(coarse);
    for (SspSystem *sys : {&fsys, &csys}) {
        sys->begin(0);
        std::uint64_t v = 1;
        for (unsigned li = 0; li < 4; ++li)
            sys->store(0, 0x5000 + li * kLineSize, &v, sizeof(v));
        sys->commit(0);
    }
    EXPECT_EQ(fsys.machine().coherence().flipMessages(), 4u);
    EXPECT_EQ(csys.machine().coherence().flipMessages(), 1u);
}

// ---- lazy consolidation ----------------------------------------------------

class LazyConsolidationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SspConfig cfg = smallConfig();
        cfg.consolidationPolicy = SspConfig::ConsolidationPolicy::Lazy;
        cfg.lazyLowWatermark = 16;
        // A tight pool so slot growth can actually create pressure.
        cfg.shadowPoolPages = 160;
        sys = std::make_unique<SspSystem>(cfg);
    }

    void
    churnPages(Vpn base, unsigned count)
    {
        for (unsigned p = 0; p < count; ++p)
            txWrite64(*sys, 0, pageBase(base + p) + 8, p);
    }

    std::unique_ptr<SspSystem> sys;
};

TEST_F(LazyConsolidationTest, NoCopiesWhilePoolIsPlentiful)
{
    // More pages than the TLB holds: the eager policy would consolidate;
    // the lazy one only queues.
    churnPages(1, sys->cfg().tlbEntries + 16);
    EXPECT_EQ(sys->machine().bus().nvramWrites(
                  WriteCategory::Consolidation),
              0u);
    EXPECT_GT(sys->controller().pendingConsolidations(), 0u);
}

TEST_F(LazyConsolidationTest, RefetchCancelsPending)
{
    churnPages(1, sys->cfg().tlbEntries + 16);
    const auto pending_before = sys->controller().pendingConsolidations();
    ASSERT_GT(pending_before, 0u);
    // Touch an early page again: its pending entry must be canceled.
    txWrite64(*sys, 0, pageBase(1) + 8, 777);
    EXPECT_GT(sys->controller().canceledConsolidations(), 0u);
    EXPECT_EQ(raw64(*sys, pageBase(1) + 8), 777u);
}

TEST_F(LazyConsolidationTest, PoolPressureDrainsQueue)
{
    // Touch enough distinct pages that slot allocations exhaust the
    // shadow pool down to the watermark; the queue must drain.
    const auto pool_size = static_cast<unsigned>(
        std::min(sys->controller().pool().capacity() - 4,
                 sys->cfg().heapPages - 8));
    churnPages(1, pool_size);
    EXPECT_GE(sys->controller().pool().available(), 1u);
    // Draining happened: either consolidation copies were made or
    // consolidated entries were recycled.
    EXPECT_GT(sys->controller().consolidator().consolidations() +
                  sys->controller().canceledConsolidations(),
              0u);
    // And all data is still correct.
    for (unsigned p = 0; p < pool_size; ++p)
        EXPECT_EQ(raw64(*sys, pageBase(1 + p) + 8), p);
}

TEST_F(LazyConsolidationTest, CrashWithPendingQueueRecovers)
{
    churnPages(1, sys->cfg().tlbEntries + 16);
    sys->crash();
    sys->recover();
    RecoveryReport report = verifyRecoveredState(*sys);
    EXPECT_TRUE(report.ok);
    for (const auto &v : report.violations)
        ADD_FAILURE() << v;
    for (unsigned p = 0; p < sys->cfg().tlbEntries + 16; ++p)
        EXPECT_EQ(raw64(*sys, pageBase(1 + p) + 8), p);
}

TEST_F(LazyConsolidationTest, LazySavesCopiesVsEagerOnReuse)
{
    // A working set slightly larger than the TLB, revisited repeatedly:
    // eager consolidates on every eviction; lazy cancels on refetch.
    SspConfig eager_cfg = smallConfig();
    SspSystem eager(eager_cfg);
    const unsigned pages = eager_cfg.tlbEntries + 8;
    for (unsigned round = 0; round < 4; ++round) {
        for (unsigned p = 0; p < pages; ++p) {
            txWrite64(eager, 0, pageBase(1 + p) + 8, round);
            txWrite64(*sys, 0, pageBase(1 + p) + 8, round);
        }
    }
    EXPECT_LT(
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation),
        eager.machine().bus().nvramWrites(WriteCategory::Consolidation));
}

// ---- wear rotation ---------------------------------------------------------

TEST(WearRotation, RotatesAndStaysConsistent)
{
    SspConfig cfg = smallConfig();
    cfg.wearRotatePeriod = 2; // rotate aggressively for the test
    SspSystem sys(cfg);

    // Cause many consolidations via TLB churn.
    for (unsigned p = 0; p < cfg.tlbEntries + 64; ++p)
        txWrite64(sys, 0, pageBase(1 + p) + 8, p);
    EXPECT_GT(sys.controller().wearRotations(), 0u);

    // Data unaffected by rotation.
    for (unsigned p = 0; p < cfg.tlbEntries + 64; ++p)
        EXPECT_EQ(raw64(sys, pageBase(1 + p) + 8), p);

    // Crash/recovery with rotated pages stays sound.
    sys.crash();
    sys.recover();
    RecoveryReport report = verifyRecoveredState(sys);
    EXPECT_TRUE(report.ok);
    for (const auto &v : report.violations)
        ADD_FAILURE() << v;
    for (unsigned p = 0; p < cfg.tlbEntries + 64; ++p)
        EXPECT_EQ(raw64(sys, pageBase(1 + p) + 8), p);
}

TEST(WearRotation, DisabledByDefault)
{
    SspConfig cfg = smallConfig();
    SspSystem sys(cfg);
    for (unsigned p = 0; p < cfg.tlbEntries + 32; ++p)
        txWrite64(sys, 0, pageBase(1 + p) + 8, p);
    EXPECT_EQ(sys.controller().wearRotations(), 0u);
}

} // namespace
