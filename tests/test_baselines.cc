/**
 * @file
 * Unit tests for the baseline designs: UNDO-LOG, REDO-LOG (DHTM-style)
 * and conventional SHADOW paging — functional correctness, crash
 * semantics, and the write-traffic signatures each design must show.
 */

#include <gtest/gtest.h>

#include "baselines/backend_factory.hh"
#include "baselines/redo_log.hh"
#include "baselines/shadow_paging.hh"
#include "baselines/undo_log.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

// ---- shared conformance suite over all backends -------------------------

class BackendConformanceTest
    : public ::testing::TestWithParam<BackendKind>
{
  protected:
    void
    SetUp() override
    {
        be = makeBackend(GetParam(), smallConfig());
    }

    std::unique_ptr<AtomicityBackend> be;
};

TEST_P(BackendConformanceTest, CommitMakesDataVisible)
{
    txWrite64(*be, 0, 0x1008, 42);
    EXPECT_EQ(raw64(*be, 0x1008), 42u);
    EXPECT_EQ(timed64(*be, 0, 0x1008), 42u);
}

TEST_P(BackendConformanceTest, TxSeesOwnWrites)
{
    be->begin(0);
    std::uint64_t v = 5;
    be->store(0, 0x2000, &v, sizeof(v));
    EXPECT_EQ(timed64(*be, 0, 0x2000), 5u);
    v = 6;
    be->store(0, 0x2000, &v, sizeof(v));
    EXPECT_EQ(timed64(*be, 0, 0x2000), 6u);
    be->commit(0);
    EXPECT_EQ(raw64(*be, 0x2000), 6u);
}

TEST_P(BackendConformanceTest, AbortDiscardsWrites)
{
    txWrite64(*be, 0, 0x3000, 1);
    be->begin(0);
    std::uint64_t v = 2;
    be->store(0, 0x3000, &v, sizeof(v));
    be->abort(0);
    EXPECT_EQ(raw64(*be, 0x3000), 1u);
}

TEST_P(BackendConformanceTest, CrashMidTxRollsBack)
{
    txWrite64(*be, 0, 0x4000, 7);
    be->begin(0);
    std::uint64_t v = 8;
    be->store(0, 0x4000, &v, sizeof(v));
    be->store(0, 0x5000, &v, sizeof(v));
    be->crash();
    be->recover();
    EXPECT_EQ(raw64(*be, 0x4000), 7u);
    EXPECT_EQ(raw64(*be, 0x5000), 0u);
}

TEST_P(BackendConformanceTest, CommittedTxSurvivesCrash)
{
    txWrite64(*be, 0, 0x6000, 0xfe);
    txWrite64(*be, 0, 0x6040, 0xff);
    be->crash();
    be->recover();
    EXPECT_EQ(raw64(*be, 0x6000), 0xfeu);
    EXPECT_EQ(raw64(*be, 0x6040), 0xffu);
}

TEST_P(BackendConformanceTest, MultiLineStoreSplits)
{
    std::uint8_t buf[200];
    for (unsigned i = 0; i < sizeof(buf); ++i)
        buf[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    be->begin(0);
    be->store(0, 0x7020, buf, sizeof(buf)); // unaligned, spans 4 lines
    be->commit(0);
    std::uint8_t out[200] = {};
    be->loadRaw(0x7020, out, sizeof(out));
    EXPECT_EQ(std::memcmp(buf, out, sizeof(buf)), 0);
}

TEST_P(BackendConformanceTest, CharacterizationSampled)
{
    txWrite64(*be, 0, 0x8000, 1);
    EXPECT_EQ(be->characterization().linesPerTx.count(), 1u);
    EXPECT_EQ(be->characterization().pagesPerTx.count(), 1u);
    EXPECT_EQ(be->committedTxs(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformanceTest,
    ::testing::Values(BackendKind::Ssp, BackendKind::UndoLog,
                      BackendKind::RedoLog, BackendKind::Shadow),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        std::string n = backendKindName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

// ---- design-specific signatures -----------------------------------------

TEST(UndoLog, LogsOncePerLineNotPerStore)
{
    UndoLogBackend be(smallConfig());
    be.begin(0);
    std::uint64_t v = 1;
    // Ten stores to the same line: one undo record.
    for (int i = 0; i < 10; ++i)
        be.store(0, 0x1000, &v, sizeof(v));
    const std::uint64_t writes_one_line =
        be.machine().bus().nvramWrites(WriteCategory::UndoLog);
    be.commit(0);
    EXPECT_LE(writes_one_line, 2u); // one 80-byte record spans <= 2 lines
}

TEST(UndoLog, StoreStallsOnLogPersistence)
{
    UndoLogBackend be(smallConfig());
    const Cycles before = be.machine().clock(0);
    be.begin(0);
    std::uint64_t v = 1;
    be.store(0, 0x1000, &v, sizeof(v));
    // The store had to wait for an NVRAM write (>= write latency).
    EXPECT_GT(be.machine().clock(0) - before,
              be.machine().cfg().nvram.writeLatency / 2);
    be.commit(0);
}

TEST(RedoLog, StoresDoNotStallOnNvram)
{
    RedoLogBackend redo(smallConfig());
    UndoLogBackend undo(smallConfig());
    auto run = [](AtomicityBackend &be) {
        const Cycles start = be.machine().clock(0);
        be.begin(0);
        for (unsigned i = 0; i < 8; ++i) {
            std::uint64_t v = i;
            be.store(0, 0x1000 + i * kLineSize, &v, sizeof(v));
        }
        const Cycles stores_done = be.machine().clock(0) - start;
        be.commit(0);
        return stores_done;
    };
    // Redo's store phase must be much cheaper than undo's (no
    // log-before-data stall).
    EXPECT_LT(run(redo) * 2, run(undo));
}

TEST(RedoLog, CrashBetweenCommitPhasesReplaysLog)
{
    RedoLogBackend be(smallConfig());
    txWrite64(be, 0, 0x2000, 1);

    be.begin(0);
    std::uint64_t v = 2;
    be.store(0, 0x2000, &v, sizeof(v));
    v = 3;
    be.store(0, 0x2040, &v, sizeof(v));
    // Phase 1 persists the log + marker: the commit point.
    be.commitPhase1(0);
    // Crash before the in-place apply: recovery must replay.
    be.crash();
    be.recover();
    EXPECT_EQ(raw64(be, 0x2000), 2u);
    EXPECT_EQ(raw64(be, 0x2040), 3u);
}

TEST(RedoLog, OneLogRecordPerDistinctLine)
{
    RedoLogBackend be(smallConfig());
    be.begin(0);
    std::uint64_t v = 1;
    for (int i = 0; i < 20; ++i)
        be.store(0, 0x3000, &v, sizeof(v)); // same line repeatedly
    be.store(0, 0x3040, &v, sizeof(v));     // second line
    be.commit(0);
    // 2 data records (80 B each) + marker (8 B) = 168 B <= 3 lines.
    EXPECT_LE(be.machine().bus().nvramWrites(WriteCategory::RedoLog), 3u);
}

TEST(Shadow, WholePageFlushedPerTouchedPage)
{
    ShadowPagingBackend be(smallConfig());
    txWrite64(be, 0, pageBase(5) + 8, 1); // one 8-byte store
    // The commit persisted all 64 lines of the shadow page.
    EXPECT_GE(be.machine().bus().nvramWrites(WriteCategory::PageCopy), 64u);
}

TEST(Shadow, MappingSwitchesToShadowPage)
{
    auto cfg = smallConfig();
    ShadowPagingBackend be(cfg);
    const Ppn before = be.machine().pt().translate(6);
    txWrite64(be, 0, pageBase(6), 9);
    const Ppn after = be.machine().pt().translate(6);
    EXPECT_NE(before, after);
    EXPECT_EQ(raw64(be, pageBase(6)), 9u);
}

TEST(Shadow, RepeatedTxsRecyclePages)
{
    ShadowPagingBackend be(smallConfig());
    // Many transactions on the same page must not leak pool pages.
    for (unsigned i = 0; i < 100; ++i)
        txWrite64(be, 0, pageBase(7) + (i % 8) * 64, i);
    EXPECT_EQ(raw64(be, pageBase(7) + 7 * 64), 95u);
}

TEST(UndoLog, RecoveryRollsBackNewestFirst)
{
    UndoLogBackend be(smallConfig());
    // Two updates to the same line in ONE tx: only the first is logged,
    // and rollback must restore the pre-tx value.
    txWrite64(be, 0, 0x9000, 100);
    be.begin(0);
    std::uint64_t v = 200;
    be.store(0, 0x9000, &v, sizeof(v));
    v = 300;
    be.store(0, 0x9000, &v, sizeof(v));
    be.crash();
    be.recover();
    EXPECT_EQ(raw64(be, 0x9000), 100u);
}

} // namespace
