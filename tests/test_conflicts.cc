/**
 * @file
 * Concurrent-transaction conflict handling: first-committer-wins
 * window semantics, write-write vs read-write classification, the lazy
 * validation mode, rollback of conflicting transactions through each
 * backend's abort machinery, retry accounting in RunResult, sweep
 * determinism across worker counts, and single-core bit-identity
 * against the checked-in smoke report.
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "baselines/undo_log.hh"
#include "core/conflict_manager.hh"
#include "sim/driver.hh"
#include "sim/system_builder.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"

namespace ssp::test
{
namespace
{

using sweep::buildFigureGrid;
using sweep::CellResult;
using sweep::runSweep;
using sweep::SweepGridOptions;
using sweep::sweepReport;

// ---- LineSet unit tests ---------------------------------------------------

TEST(LineSet, SortedUniqueInsertAndContains)
{
    LineSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(0x1c0));
    EXPECT_TRUE(s.insert(0x040));
    EXPECT_TRUE(s.insert(0x100));
    EXPECT_FALSE(s.insert(0x100)); // duplicate
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(s.contains(0x040));
    EXPECT_TRUE(s.contains(0x1c0));
    EXPECT_FALSE(s.contains(0x080));
    // Iteration is address-sorted.
    std::vector<Addr> got(s.begin(), s.end());
    EXPECT_EQ(got, (std::vector<Addr>{0x040, 0x100, 0x1c0}));
}

TEST(LineSet, SpillsPastInlineCapacityAndStaysSorted)
{
    LineSet s;
    // Insert in descending order, past the inline capacity, with dups.
    const std::size_t n = LineSet::kInlineCapacity * 3;
    for (std::size_t i = n; i > 0; --i) {
        EXPECT_TRUE(s.insert(i * kLineSize));
        EXPECT_FALSE(s.insert(i * kLineSize));
    }
    EXPECT_EQ(s.size(), n);
    Addr prev = 0;
    for (Addr a : s) {
        EXPECT_GT(a, prev);
        prev = a;
    }
    for (std::size_t i = 1; i <= n; ++i)
        EXPECT_TRUE(s.contains(i * kLineSize));

    // clear() recycles the set back to inline storage.
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.insert(0x40));
    EXPECT_EQ(s.size(), 1u);
}

TEST(LineSet, IntersectsIsExactSetIntersection)
{
    LineSet a, b;
    EXPECT_FALSE(intersects(a, b)); // empty vs empty
    a.insert(0x100);
    a.insert(0x200);
    EXPECT_FALSE(intersects(a, b)); // vs empty
    b.insert(0x300);
    EXPECT_FALSE(intersects(a, b)); // disjoint ranges (min/max reject)
    b.insert(0x180);
    EXPECT_FALSE(intersects(a, b)); // overlapping ranges, no element
    b.insert(0x200);
    EXPECT_TRUE(intersects(a, b));
    EXPECT_TRUE(intersects(b, a)); // symmetric
}

TEST(LineSet, MoveLeavesSourceEmptyAndReusable)
{
    LineSet a;
    for (std::size_t i = 0; i < LineSet::kInlineCapacity * 2; ++i)
        a.insert((i + 1) * kLineSize);
    LineSet b = std::move(a);
    EXPECT_EQ(b.size(), LineSet::kInlineCapacity * 2);
    EXPECT_TRUE(a.empty());
    EXPECT_TRUE(a.insert(0x40));
    EXPECT_TRUE(a.contains(0x40));
    EXPECT_EQ(a.size(), 1u);
}

// ---- ConflictManager unit tests -----------------------------------------

TEST(ConflictManager, WriteWriteConflictInsideTheWindow)
{
    ConflictManager cm(2, ConflictParams{});
    const Addr x = lineAddr(3, 0);

    cm.beginTx(1, 0); // core 1 opens its window at cycle 0
    cm.recordWrite(1, x);

    cm.beginTx(0, 0);
    cm.recordWrite(0, x);
    EXPECT_TRUE(cm.validate(0, 10)); // nobody committed yet
    cm.commitTx(0, 10, 0);           // core 0 commits at cycle 10

    // Core 0's commit lands inside core 1's [0, 20] window and both
    // wrote line x: first committer wins, core 1 must abort.
    EXPECT_FALSE(cm.validate(1, 20));
    EXPECT_EQ(cm.stats().writeWriteConflicts, 1u);
    EXPECT_EQ(cm.stats().readWriteConflicts, 0u);
}

TEST(ConflictManager, ReadWriteConflictInsideTheWindow)
{
    ConflictManager cm(2, ConflictParams{});
    const Addr x = lineAddr(3, 0);

    cm.beginTx(1, 0);
    cm.recordRead(1, x + 8); // same line, different offset
    cm.recordWrite(1, lineAddr(4, 0));

    cm.beginTx(0, 0);
    cm.recordWrite(0, x);
    cm.commitTx(0, 10, 0);

    EXPECT_FALSE(cm.validate(1, 20));
    EXPECT_EQ(cm.stats().readWriteConflicts, 1u);
    EXPECT_EQ(cm.stats().writeWriteConflicts, 0u);
}

TEST(ConflictManager, CommitBeforeTheWindowDoesNotConflict)
{
    ConflictManager cm(2, ConflictParams{});
    const Addr x = lineAddr(3, 0);

    cm.beginTx(0, 0);
    cm.recordWrite(0, x);
    cm.commitTx(0, 10, 0);

    // Core 1 begins after core 0's commit completed: no overlap.
    cm.beginTx(1, 15);
    cm.recordWrite(1, x);
    EXPECT_TRUE(cm.validate(1, 30));
}

TEST(ConflictManager, LaterCommitLosesToTheEarlierValidator)
{
    ConflictManager cm(2, ConflictParams{});
    const Addr x = lineAddr(3, 0);

    cm.beginTx(1, 0);
    cm.recordWrite(1, x);

    cm.beginTx(0, 0);
    cm.recordWrite(0, x);
    cm.commitTx(0, 50, 0); // core 0 is slow: commits at cycle 50

    // Core 1 validates at cycle 20 < 50: in simulated time core 1 is
    // the first committer and wins.
    EXPECT_TRUE(cm.validate(1, 20));
}

TEST(ConflictManager, LazyModeIgnoresWriteWriteOverlap)
{
    ConflictParams params;
    params.validation = ConflictValidation::Lazy;
    ConflictManager cm(2, params);
    const Addr x = lineAddr(3, 0);
    const Addr y = lineAddr(4, 0);

    cm.beginTx(1, 0);
    cm.recordWrite(1, x); // blind write: no read of x

    cm.beginTx(0, 0);
    cm.recordWrite(0, x);
    cm.commitTx(0, 10, 0);

    // Write-write resolves by commit order under lazy versioning.
    EXPECT_TRUE(cm.validate(1, 20));

    // A read of the peer-written line still aborts.
    cm.commitTx(1, 20, 0);
    cm.beginTx(1, 20);
    cm.recordRead(1, y);
    cm.beginTx(0, 20);
    cm.recordWrite(0, y);
    cm.commitTx(0, 30, 0);
    EXPECT_FALSE(cm.validate(1, 40));
    EXPECT_EQ(cm.stats().readWriteConflicts, 1u);
}

TEST(ConflictManager, DisabledOnASingleCore)
{
    ConflictManager cm(1, ConflictParams{});
    EXPECT_FALSE(cm.enabled());
    cm.beginTx(0, 0);
    cm.recordWrite(0, lineAddr(3, 0));
    EXPECT_EQ(cm.writeSetSize(0), 0u); // recording is a no-op
    EXPECT_TRUE(cm.validate(0, 100));
    cm.commitTx(0, 100, 0);
    EXPECT_EQ(cm.logSize(), 0u);
}

TEST(ConflictManager, RetryPenaltyBacksOffExponentiallyWithACap)
{
    ConflictParams params;
    params.abortPenalty = 10;
    params.backoffBase = 4;
    params.backoffCapDoublings = 2;
    ConflictManager cm(2, params);

    EXPECT_EQ(cm.retryPenalty(0, 1), 10u + 4u);
    EXPECT_EQ(cm.retryPenalty(0, 2), 10u + 8u);
    EXPECT_EQ(cm.retryPenalty(0, 3), 10u + 16u);
    EXPECT_EQ(cm.retryPenalty(0, 4), 10u + 16u); // capped
    EXPECT_EQ(cm.stats().aborts, 4u);
    EXPECT_EQ(cm.stats().retries, 4u);
    EXPECT_EQ(cm.stats().backoffCycles, 4u + 8u + 16u + 16u);
}

TEST(ConflictManager, CommitLogIsPrunedBelowEveryReachableWindow)
{
    ConflictManager cm(2, ConflictParams{});
    cm.beginTx(0, 0);
    cm.recordWrite(0, lineAddr(3, 0));
    cm.commitTx(0, 10, 0); // min core clock 0: record must stay
    EXPECT_EQ(cm.logSize(), 1u);

    cm.beginTx(0, 20);
    cm.recordWrite(0, lineAddr(4, 0));
    // Every core clock is at 20 now: the cycle-10 record can never
    // fall inside a future window again.
    cm.commitTx(0, 25, 20);
    EXPECT_EQ(cm.logSize(), 1u); // only the cycle-25 record survives
}

TEST(ConflictManager, AbortClearsTheInFlightFootprint)
{
    ConflictManager cm(2, ConflictParams{});
    cm.beginTx(0, 0);
    cm.recordRead(0, lineAddr(3, 0));
    cm.recordWrite(0, lineAddr(4, 0));
    EXPECT_TRUE(cm.inTx(0));
    cm.abortTx(0);
    EXPECT_FALSE(cm.inTx(0));
    EXPECT_EQ(cm.readSetSize(0), 0u);
    EXPECT_EQ(cm.writeSetSize(0), 0u);
    cm.abortTx(0); // idempotent
    EXPECT_EQ(cm.logSize(), 0u);
}

// ---- rollback through the backend abort machinery -----------------------

/**
 * Drive the exact sequence Workload::runTx models, with explicit
 * validation times: core 1 opens a transaction, core 0 commits a
 * conflicting write inside core 1's window, and core 1 must abort,
 * restore the pre-transaction image, and succeed on retry.
 */
template <typename Backend>
void
conflictRollbackRoundTrip(Backend &be)
{
    Machine &m = be.machine();
    ConflictManager &cm = m.conflicts();
    const Addr addr = pageBase(2) + 16;
    txWrite64(be, 0, addr, 1); // committed pre-state

    be.begin(1); // core 1's window opens first
    txWrite64(be, 0, addr, 2); // peer commit lands inside the window
    std::uint64_t v = 3;
    be.store(1, addr, &v, sizeof(v));
    EXPECT_EQ(timed64(be, 1, addr), 3u); // sees its own speculation

    // Validation at a point after the peer commit: core 1 loses.
    ASSERT_FALSE(cm.validate(1, m.maxClock()));
    be.abort(1);
    m.clock(1) += cm.retryPenalty(1, 1);

    // The abort restored the last committed image.
    EXPECT_EQ(raw64(be, addr), 2u);

    // The retry re-executes and commits cleanly: its window starts
    // after the conflicting commit.
    m.syncClocks();
    be.begin(1);
    v = 3;
    be.store(1, addr, &v, sizeof(v));
    ASSERT_TRUE(cm.validate(1, m.clock(1)));
    be.commit(1);
    EXPECT_EQ(raw64(be, addr), 3u);
    EXPECT_EQ(cm.stats().aborts, 1u);
    EXPECT_EQ(cm.stats().retries, 1u);
}

TEST(ConflictRollback, SspCowFlipMachineryRestoresTheImage)
{
    SspSystem sys(smallConfig(2));
    conflictRollbackRoundTrip(sys);
}

TEST(ConflictRollback, UndoLogRollbackRestoresTheImage)
{
    UndoLogBackend be(smallConfig(2));
    conflictRollbackRoundTrip(be);
}

TEST(ConflictRollback, SspWriteSetMirrorsTheTxBitTaggedLines)
{
    // The conflict write set is the virtual-line view of exactly the
    // speculative lines the hierarchy tags with the TX bit.
    SspSystem sys(smallConfig(2));
    Machine &m = sys.machine();
    ConflictManager &cm = m.conflicts();
    const Addr addr = pageBase(3) + 24;
    txWrite64(sys, 0, addr, 7);

    sys.begin(1);
    std::uint64_t v = 8;
    sys.store(1, addr, &v, sizeof(v));
    EXPECT_EQ(cm.writeSetSize(1), 1u);

    SspCache &sc = sys.controller().cache();
    const SlotId sid = sc.findSlot(pageOf(addr));
    ASSERT_NE(sid, kInvalidSlot);
    const SspCacheEntry &e = sc.entry(sid);
    const unsigned li = lineIndexInPage(addr);
    const Addr spec = lineAddr(e.current.test(li) ? e.ppn1 : e.ppn0, li);
    EXPECT_TRUE(m.caches().txBitSet(1, spec));

    sys.abort(1);
    EXPECT_EQ(cm.writeSetSize(1), 0u);
    EXPECT_FALSE(m.caches().txBitSet(1, spec));
    EXPECT_EQ(raw64(sys, addr), 7u);
}

// ---- end-to-end: driver, counters, reports ------------------------------

/** A contended 2-core Zipf cell that deterministically conflicts. */
RunResult
contendedRun(sweep::ConflictMode mode)
{
    SweepGridOptions opts;
    opts.coreCounts = {2};
    opts.backends = {BackendKind::UndoLog};
    opts.workloads = {WorkloadKind::BTreeZipf};
    opts.conflictMode = mode;
    const auto cells = buildFigureGrid("scale", opts);
    const auto results = runSweep(cells, 1);
    EXPECT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    return results[0].run;
}

TEST(ConflictEndToEnd, ZipfContentionProducesAbortsAndRetries)
{
    const RunResult run = contendedRun(
        sweep::ConflictMode::FirstCommitterWins);
    EXPECT_GT(run.txAborts, 0u);
    EXPECT_EQ(run.txRetries, run.txAborts);
    EXPECT_EQ(run.conflictsWriteWrite + run.conflictsReadWrite,
              run.txAborts);
    EXPECT_GT(run.backoffCycles, 0u);
    // Every transaction still commits exactly once.
    EXPECT_EQ(run.committedTxs, 400u);
    EXPECT_EQ(run.backend, std::string("UNDO-LOG"));
}

TEST(ConflictEndToEnd, DisablingDetectionRemovesAbortsOnly)
{
    const RunResult off = contendedRun(sweep::ConflictMode::Off);
    EXPECT_EQ(off.txAborts, 0u);
    EXPECT_EQ(off.backoffCycles, 0u);
    EXPECT_EQ(off.committedTxs, 400u);

    // The functional work is identical; only abort/retry timing is
    // added by detection.
    const RunResult fcw = contendedRun(
        sweep::ConflictMode::FirstCommitterWins);
    EXPECT_EQ(fcw.committedTxs, off.committedTxs);
    EXPECT_GE(fcw.cycles, off.cycles);
}

TEST(ConflictEndToEnd, LazyValidationAbortsAtMostAsOftenAsEager)
{
    const RunResult fcw = contendedRun(
        sweep::ConflictMode::FirstCommitterWins);
    const RunResult lazy = contendedRun(sweep::ConflictMode::Lazy);
    EXPECT_LE(lazy.txAborts, fcw.txAborts);
    EXPECT_EQ(lazy.conflictsWriteWrite, 0u);
}

TEST(ConflictEndToEnd, ContendedRunStaysFunctionallyCorrect)
{
    WorkloadScale scale;
    scale.keySpace = 256;
    scale.seed = 11;
    Experiment exp = buildExperiment(BackendKind::Ssp,
                                     WorkloadKind::HashZipf,
                                     smallConfig(4), scale);
    RunResult res = runExperiment(exp, 240, 4);
    EXPECT_TRUE(exp.workload->verify());
    EXPECT_EQ(res.committedTxs, 240u);
}

TEST(ConflictEndToEnd, AbortCountersAreDeterministicAcrossJobs)
{
    SweepGridOptions opts;
    opts.coreCounts = {2, 4};
    opts.backends = {BackendKind::UndoLog, BackendKind::Ssp};
    opts.workloads = {WorkloadKind::BTreeZipf, WorkloadKind::HashZipf};
    const auto cells = buildFigureGrid("scale", opts);
    ASSERT_EQ(cells.size(), 2u * 2u * 2u);

    const std::vector<CellResult> serial = runSweep(cells, 1);
    const std::vector<CellResult> parallel = runSweep(cells, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    std::uint64_t total_aborts = 0;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        const RunResult &a = serial[i].run;
        const RunResult &b = parallel[i].run;
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.txAborts, b.txAborts);
        EXPECT_EQ(a.txRetries, b.txRetries);
        EXPECT_EQ(a.conflictsWriteWrite, b.conflictsWriteWrite);
        EXPECT_EQ(a.conflictsReadWrite, b.conflictsReadWrite);
        EXPECT_EQ(a.backoffCycles, b.backoffCycles);
        total_aborts += a.txAborts;
    }
    EXPECT_GT(total_aborts, 0u);
}

TEST(ConflictEndToEnd, SingleCoreCellsMatchTheCheckedInSmokeReport)
{
    // The acceptance bar: with conflict handling in the tree, the
    // single-core model must reproduce the checked-in smoke report bit
    // for bit (no recording, no validation, no timing drift).
    std::ifstream in(std::string(SSP_SOURCE_DIR) + "/BENCH_smoke.json");
    ASSERT_TRUE(in) << "checked-in BENCH_smoke.json missing";
    std::stringstream buf;
    buf << in.rdbuf();
    const Json checked_in = Json::parse(buf.str());

    const auto cells = buildFigureGrid("smoke");
    const auto results = runSweep(cells, 1);
    const Json report = sweepReport("smoke", results);

    ASSERT_EQ(report["cells"].size(), checked_in["cells"].size());
    const Json &want = checked_in["cells"].at(0);
    const Json &got = report["cells"].at(0);
    EXPECT_EQ(got["seed"].asString(), want["seed"].asString());
    EXPECT_EQ(got["metrics"].dump(2), want["metrics"].dump(2));
}

} // namespace
} // namespace ssp::test
