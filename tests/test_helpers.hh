/**
 * @file
 * Shared test fixtures: a small machine configuration that keeps tests
 * fast, and helpers for driving transactions by hand.
 *
 * Include convention: test sources include this header as
 * "tests/test_helpers.hh", i.e. relative to the repository root.  The
 * build adds both the repo root and src/ to the include path (see
 * target_include_directories in CMakeLists.txt), so src-internal
 * headers are spelled "common/types.hh" while test/bench headers are
 * spelled "tests/..." / "bench/...".  Do not rely on the compiler's
 * "relative to the including file" fallback — it breaks once sources
 * are compiled from a build directory.
 */

#ifndef SSP_TESTS_TEST_HELPERS_HH
#define SSP_TESTS_TEST_HELPERS_HH

#include <cstdint>
#include <cstring>

#include "core/config.hh"
#include "core/ssp_system.hh"

namespace ssp::test
{

/** A small, fast configuration (tiny heap, small TLB-friendly caches). */
inline SspConfig
smallConfig(unsigned cores = 1)
{
    SspConfig cfg;
    cfg.numCores = cores;
    cfg.heapPages = 512;
    cfg.shadowPoolPages = 600;
    cfg.journalPages = 64;
    cfg.logPages = 512;
    cfg.dramPages = 64;
    cfg.checkpointThresholdBytes = 16 * 1024;
    return cfg;
}

/** Write a uint64 at a persistent address inside a one-shot tx. */
inline void
txWrite64(AtomicityBackend &be, CoreId core, Addr addr, std::uint64_t v)
{
    be.begin(core);
    be.store(core, addr, &v, sizeof(v));
    be.commit(core);
}

/** Untimed functional read of a uint64. */
inline std::uint64_t
raw64(AtomicityBackend &be, Addr addr)
{
    std::uint64_t v = 0;
    be.loadRaw(addr, &v, sizeof(v));
    return v;
}

/** Timed read of a uint64. */
inline std::uint64_t
timed64(AtomicityBackend &be, CoreId core, Addr addr)
{
    std::uint64_t v = 0;
    be.load(core, addr, &v, sizeof(v));
    return v;
}

} // namespace ssp::test

#endif // SSP_TESTS_TEST_HELPERS_HH
