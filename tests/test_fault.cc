/**
 * @file
 * Fault-injection harness tests: deterministic fault plans, recovery and
 * failover pricing, the unreliable-network retry model, the logged 2PC
 * crash windows (coordinator crash in the blocking window resolves by
 * presumed abort; participant crash by vote timeout — and a crash swept
 * across every window never loses or duplicates an outcome), the
 * FaultInjector end to end on a cluster run, serve-path fault epochs,
 * and determinism of the fault sweep grid across worker counts and
 * cell-thread budgets.
 */

#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "serve/server.hh"
#include "shard/shard_driver.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"

namespace ssp::fault::test
{
namespace
{

/** The smoke/scale/shard/fault machine at @p cores cores. */
SspConfig
faultConfig(unsigned cores)
{
    return ssp::test::smallConfig(cores);
}

/** A small workload scale matching the fault grid's capped streams. */
WorkloadScale
faultScale(std::uint64_t seed = 42)
{
    WorkloadScale scale;
    scale.keySpace = 1024;
    scale.spsElements = 4096;
    scale.seed = seed;
    return scale;
}

/** Drain machine @p m's plan events up to @p horizon into a vector. */
std::vector<FaultEvent>
drain(FaultPlan &plan, unsigned m, Cycles horizon)
{
    std::vector<FaultEvent> events;
    while (plan.due(m, horizon)) {
        events.push_back(plan.peek(m));
        plan.advance(m);
    }
    return events;
}

// ---- fault plan ------------------------------------------------------------

TEST(FaultPlan, SameSeedReplaysTheSameSchedule)
{
    FaultParams params;
    params.ratePerMcycle = 20;
    params.seed = 12345;
    FaultPlan a(params, 4);
    FaultPlan b(params, 4);
    for (unsigned m = 0; m < 4; ++m) {
        const auto ea = drain(a, m, 10'000'000);
        const auto eb = drain(b, m, 10'000'000);
        ASSERT_EQ(ea.size(), eb.size());
        ASSERT_GT(ea.size(), 100u); // ~200 expected at rate 20
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].atCycle, eb[i].atCycle);
            EXPECT_EQ(ea[i].kind, eb[i].kind);
        }
    }
}

TEST(FaultPlan, MachinesGetDisjointStreamsAndRateZeroSchedulesNothing)
{
    FaultParams params;
    params.ratePerMcycle = 20;
    params.seed = 7;
    FaultPlan plan(params, 3);
    std::set<Cycles> firsts;
    for (unsigned m = 0; m < 3; ++m)
        firsts.insert(plan.peek(m).atCycle);
    EXPECT_EQ(firsts.size(), 3u);

    FaultParams quiet;
    quiet.ratePerMcycle = 0;
    quiet.seed = 7;
    FaultPlan none(quiet, 3);
    EXPECT_FALSE(none.due(0, Cycles{1} << 40));
}

TEST(FaultPlan, RateScalesTheScheduleDensity)
{
    FaultParams slow;
    slow.ratePerMcycle = 5;
    slow.seed = 99;
    FaultParams fast = slow;
    fast.ratePerMcycle = 20;
    FaultPlan a(slow, 1);
    FaultPlan b(fast, 1);
    const std::size_t na = drain(a, 0, 20'000'000).size();
    const std::size_t nb = drain(b, 0, 20'000'000).size();
    // ~100 vs ~400 expected; 2x leaves generous slack for the uniform
    // inter-arrival noise.
    EXPECT_GT(nb, 2 * na);
}

TEST(FaultPlan, AbsorbUntilDropsEventsInsideTheOutage)
{
    FaultParams params;
    params.ratePerMcycle = 100;
    params.seed = 3;
    FaultPlan plan(params, 1);
    const Cycles outage_end = 500000;
    plan.absorbUntil(0, outage_end);
    EXPECT_FALSE(plan.due(0, outage_end));
    EXPECT_GT(plan.peek(0).atCycle, outage_end);
}

// ---- recovery pricing ------------------------------------------------------

TEST(FaultPricing, RecoverInPlaceScalesWithThePersistentFootprint)
{
    const SspConfig cfg = faultConfig(4);
    const Cycles expected =
        kRecoveryBaseCycles + (Cycles{cfg.journalPages} +
                               Cycles{cfg.logPages}) *
                                  kRecoveryScanCyclesPerPage;
    EXPECT_EQ(recoverInPlaceCycles(cfg), expected);

    SspConfig bigger = cfg;
    bigger.logPages *= 4;
    EXPECT_GT(recoverInPlaceCycles(bigger), recoverInPlaceCycles(cfg));
}

TEST(FaultPricing, FailoverBeatsInPlaceRecovery)
{
    // The replication claim the fault grid measures: promotion costs
    // detection + handshake + bookkeeping, never a log scan, so it is
    // strictly cheaper than recovering in place on any real config.
    const shard::NetworkParams net;
    EXPECT_LT(failoverCycles(net), recoverInPlaceCycles(faultConfig(4)));
    EXPECT_GE(failoverCycles(net),
              kFailureDetectCycles + kPromotionCycles);
}

// ---- unreliable network ----------------------------------------------------

TEST(UnreliableNetwork, DisabledFaultsArePricedExactlyAsMessageCost)
{
    shard::NetworkModel reliable;
    shard::NetworkModel armed;
    // Arming with zero rates keeps the reliable path: no draws, no
    // losses, identical pricing (the zero-fault byte-identity bar).
    armed.enableFaults(shard::NetworkFaultParams{}, 42);
    for (std::uint64_t bytes : {64u, 256u, 4096u}) {
        EXPECT_EQ(armed.sendReliable(0, 1, bytes),
                  reliable.messageCost(0, 1, bytes));
    }
    EXPECT_EQ(armed.sendReliable(2, 2, 1024), 0u);
    EXPECT_EQ(armed.messagesLost(), 0u);
    EXPECT_EQ(armed.rpcRetries(), 0u);
    EXPECT_EQ(armed.timeoutStallCycles(), 0u);
}

TEST(UnreliableNetwork, CertainLossRetriesWithCappedBackoffThenDelivers)
{
    shard::NetworkFaultParams faults;
    faults.lossRate = 1.0; // every transmission drops...
    faults.maxRetries = 5; // ...until the forced delivery
    shard::NetworkModel net;
    net.enableFaults(faults, 7);
    const Cycles base = shard::NetworkModel().messageCost(0, 1, 256);
    // Timeouts: 20000 << {0,1,2,3,3} = 20k+40k+80k+160k+160k, then the
    // sixth attempt is forced through at plain messageCost.
    const Cycles stall = 20000 + 40000 + 80000 + 160000 + 160000;
    EXPECT_EQ(net.sendReliable(0, 1, 256), stall + base);
    EXPECT_EQ(net.messagesLost(), 5u);
    EXPECT_EQ(net.rpcRetries(), 5u);
    EXPECT_EQ(net.timeoutStallCycles(), stall);
}

TEST(UnreliableNetwork, LossAndDelayStallsAccumulateDeterministically)
{
    shard::NetworkFaultParams faults;
    faults.lossRate = 0.3;
    faults.delayRate = 0.3;
    shard::NetworkModel a;
    shard::NetworkModel b;
    a.enableFaults(faults, 1234);
    b.enableFaults(faults, 1234);
    Cycles total_a = 0;
    Cycles total_b = 0;
    for (int i = 0; i < 200; ++i) {
        total_a += a.sendReliable(0, 1, 256);
        total_b += b.sendReliable(0, 1, 256);
    }
    EXPECT_EQ(total_a, total_b);
    EXPECT_EQ(a.messagesLost(), b.messagesLost());
    EXPECT_GT(a.messagesLost(), 0u);
    EXPECT_GT(a.timeoutStallCycles(), 0u);
    // A delayed delivery costs more than the reliable price.
    EXPECT_GT(total_a, 200 * shard::NetworkModel().messageCost(0, 1, 256));
}

// ---- logged 2PC crash windows ----------------------------------------------

/**
 * Scripted fault hooks for the crash-window regressions: messages ride
 * the reliable network, and the two window crashes fire exactly when a
 * test arms them — a deterministic, single-shot FaultInjector stand-in.
 */
class ScriptedHooks : public shard::TxFaultHooks
{
  public:
    explicit ScriptedHooks(shard::Cluster &cluster) : cluster_(cluster)
    {
    }

    Cycles
    sendReliable(unsigned src, unsigned dst, std::uint64_t bytes) override
    {
        return cluster_.network().messageCost(src, dst, bytes);
    }

    Cycles
    persistDecision(unsigned, CoreId) override
    {
        ++decisions;
        return kDecisionPersistCycles;
    }

    Cycles
    shipCommit(unsigned, CoreId) override
    {
        return 0;
    }

    bool
    coordinatorCrashArmed(unsigned) override
    {
        return coordinatorCrashes > 0;
    }

    void
    failCoordinator(unsigned home, unsigned peer, CoreId core) override
    {
        --coordinatorCrashes;
        ++coordinatorFails;
        cluster_.powerFail(home);
        // The participant's decision-log query round trip.
        cluster_.machine(peer).clock(core) +=
            sendReliable(peer, home, kQueryBytes) +
            sendReliable(home, peer, shard::kDecisionBytes);
    }

    bool
    participantCrashArmed(unsigned) override
    {
        return participantCrashes > 0;
    }

    void
    failParticipant(unsigned peer, CoreId) override
    {
        --participantCrashes;
        ++participantFails;
        cluster_.powerFail(peer);
    }

    Cycles
    voteTimeout() override
    {
        ++voteTimeouts;
        return 20000;
    }

    unsigned coordinatorCrashes = 0; ///< armed window crashes left
    unsigned participantCrashes = 0;
    unsigned coordinatorFails = 0; ///< crashes actually fired
    unsigned participantFails = 0;
    unsigned voteTimeouts = 0;
    unsigned decisions = 0;

  private:
    shard::Cluster &cluster_;
};

TEST(LoggedTwoPhaseCommit, CommitPathPersistsOneDecisionPerTransaction)
{
    shard::Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps,
                           faultConfig(1), faultScale(), 2);
    shard::TxCoordinator coord(cluster);
    ScriptedHooks hooks(cluster);
    coord.setFaultHooks(&hooks);
    const std::uint64_t home_before =
        cluster.shard(0).backend->committedTxs();
    const std::uint64_t peer_before =
        cluster.shard(1).backend->committedTxs();
    for (int i = 0; i < 10; ++i)
        coord.runCrossShard(0, 1, 0);
    EXPECT_EQ(coord.stats().crossShardTxs, 10u);
    EXPECT_EQ(hooks.decisions, 10u);
    EXPECT_EQ(cluster.shard(0).backend->committedTxs(), home_before + 10);
    EXPECT_EQ(cluster.shard(1).backend->committedTxs(), peer_before + 10);
    EXPECT_TRUE(cluster.shard(0).workload->verify());
    EXPECT_TRUE(cluster.shard(1).workload->verify());
}

TEST(LoggedTwoPhaseCommit, CoordinatorCrashInBlockingWindowPresumesAbort)
{
    // The satellite-1 regression: the coordinator dies after collecting
    // votes but before the decision record persists.  Nothing is
    // durable anywhere, so recovery must resolve to a global abort —
    // neither shard may keep (or half-keep) the transaction.
    shard::Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps,
                           faultConfig(1), faultScale(), 2);
    shard::TxCoordinator coord(cluster);
    ScriptedHooks hooks(cluster);
    coord.setFaultHooks(&hooks);
    hooks.coordinatorCrashes = 1;
    const std::uint64_t home_before =
        cluster.shard(0).backend->committedTxs();
    const std::uint64_t peer_before =
        cluster.shard(1).backend->committedTxs();

    EXPECT_THROW(coord.tryCrossShard(0, 1, 0), shard::ShardTxAbort);
    EXPECT_EQ(hooks.coordinatorFails, 1u);
    EXPECT_EQ(hooks.decisions, 0u); // the window is before the record
    // Presumed abort: no commit survived on either shard, and both
    // reference models still match the persistent images.
    EXPECT_EQ(cluster.shard(0).backend->committedTxs(), home_before);
    EXPECT_EQ(cluster.shard(1).backend->committedTxs(), peer_before);
    EXPECT_TRUE(cluster.shard(0).workload->verify());
    EXPECT_TRUE(cluster.shard(1).workload->verify());

    // The retry (a fresh client request) commits exactly once.
    coord.runCrossShard(0, 1, 0);
    EXPECT_EQ(cluster.shard(0).backend->committedTxs(), home_before + 1);
    EXPECT_EQ(cluster.shard(1).backend->committedTxs(), peer_before + 1);
    EXPECT_TRUE(cluster.shard(0).workload->verify());
    EXPECT_TRUE(cluster.shard(1).workload->verify());
}

TEST(LoggedTwoPhaseCommit, ParticipantCrashTimesOutAndPresumesAbort)
{
    shard::Cluster cluster(BackendKind::RedoLog, WorkloadKind::HashRand,
                           faultConfig(1), faultScale(), 2);
    shard::TxCoordinator coord(cluster);
    ScriptedHooks hooks(cluster);
    coord.setFaultHooks(&hooks);
    hooks.participantCrashes = 1;
    const std::uint64_t home_before =
        cluster.shard(0).backend->committedTxs();
    const std::uint64_t peer_before =
        cluster.shard(1).backend->committedTxs();

    EXPECT_THROW(coord.tryCrossShard(0, 1, 0), shard::ShardTxAbort);
    EXPECT_EQ(hooks.participantFails, 1u);
    EXPECT_EQ(hooks.voteTimeouts, 1u); // the vote never departed
    EXPECT_EQ(cluster.shard(0).backend->committedTxs(), home_before);
    EXPECT_EQ(cluster.shard(1).backend->committedTxs(), peer_before);
    EXPECT_TRUE(cluster.shard(0).workload->verify());
    EXPECT_TRUE(cluster.shard(1).workload->verify());

    coord.runCrossShard(0, 1, 0);
    EXPECT_EQ(cluster.shard(0).backend->committedTxs(), home_before + 1);
    EXPECT_EQ(cluster.shard(1).backend->committedTxs(), peer_before + 1);
}

TEST(LoggedTwoPhaseCommit, CrashAtEveryWindowNeverLosesOrDuplicates)
{
    // Sweep one small 2PC transaction through every crash position the
    // protocol has: no crash, a power failure of either machine between
    // transactions, a participant crash inside the prepare window, and
    // a coordinator crash inside the blocking window.  In every case
    // the retried request must end with exactly one committed outcome
    // per shard — never zero (lost) and never two (duplicated).
    enum class Crash
    {
        None,
        HomeBetweenTxs,
        PeerBetweenTxs,
        Participant,
        Coordinator,
    };
    for (Crash crash : {Crash::None, Crash::HomeBetweenTxs,
                        Crash::PeerBetweenTxs, Crash::Participant,
                        Crash::Coordinator}) {
        // 4 cores: 1-core machines disable conflict detection, and the
        // cross-shard retry path charges its abort penalty through it.
        shard::Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps,
                               faultConfig(4), faultScale(), 2);
        shard::TxCoordinator coord(cluster);
        ScriptedHooks hooks(cluster);
        coord.setFaultHooks(&hooks);
        if (crash == Crash::HomeBetweenTxs)
            cluster.powerFail(0);
        if (crash == Crash::PeerBetweenTxs)
            cluster.powerFail(1);
        if (crash == Crash::Participant)
            hooks.participantCrashes = 1;
        if (crash == Crash::Coordinator)
            hooks.coordinatorCrashes = 1;
        const std::uint64_t home_before =
            cluster.shard(0).backend->committedTxs();
        const std::uint64_t peer_before =
            cluster.shard(1).backend->committedTxs();

        coord.runCrossShard(0, 1, 0);

        const int tag = static_cast<int>(crash);
        EXPECT_EQ(cluster.shard(0).backend->committedTxs(),
                  home_before + 1)
            << "crash position " << tag;
        EXPECT_EQ(cluster.shard(1).backend->committedTxs(),
                  peer_before + 1)
            << "crash position " << tag;
        EXPECT_EQ(coord.stats().crossShardTxs, 1u)
            << "crash position " << tag;
        EXPECT_TRUE(cluster.shard(0).workload->verify())
            << "crash position " << tag;
        EXPECT_TRUE(cluster.shard(1).workload->verify())
            << "crash position " << tag;
    }
}

// ---- fault injector on a cluster run ---------------------------------------

TEST(FaultInjector, InjectedClusterRunRecoversEveryFailure)
{
    shard::Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps,
                           faultConfig(4), faultScale(), 2);
    FaultParams params;
    params.ratePerMcycle = 20;
    params.seed = 1234;
    FaultInjector inj(cluster, params, 5678, 0.3);
    const shard::ShardRunResult res = shard::runClusterExperiment(
        cluster, 150, 4, 0.3, 777, &inj);

    const FaultStats &s = inj.stats();
    EXPECT_GT(s.powerFails, 0u);
    EXPECT_EQ(s.recoveries, s.powerFails); // unreplicated: all in-place
    EXPECT_EQ(s.failovers, 0u);
    EXPECT_EQ(s.recoveryStallCycles,
              s.recoveries * recoverInPlaceCycles(faultConfig(4)));
    // The unreliable fabric at rate 20 (10% loss) must have dropped and
    // retried something over hundreds of 2PC messages.
    EXPECT_GT(s.messagesLost, 0u);
    EXPECT_EQ(s.rpcRetries, s.messagesLost);
    EXPECT_GT(s.rpcTimeoutStallCycles, 0u);
    EXPECT_GT(s.committedDespiteFaults, 0u);

    // Conservation: every slot still committed exactly once — faults
    // delayed transactions but never lost or duplicated one.
    EXPECT_EQ(res.tx.singleShardTxs + res.tx.crossShardTxs, 2u * 150u);
    EXPECT_EQ(res.aggregate.committedTxs,
              2u * 150u + res.tx.crossShardTxs);
}

TEST(FaultInjector, ReplicationFailsOverInsteadOfRecoveringInPlace)
{
    shard::Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps,
                           faultConfig(4), faultScale(), 2);
    FaultParams params;
    params.ratePerMcycle = 20;
    params.replicate = true;
    params.seed = 1234;
    FaultInjector inj(cluster, params, 5678, 0.3);
    const shard::ShardRunResult res = shard::runClusterExperiment(
        cluster, 150, 4, 0.3, 777, &inj);

    const FaultStats &s = inj.stats();
    EXPECT_GT(s.powerFails, 0u);
    EXPECT_EQ(s.failovers, s.powerFails);
    EXPECT_EQ(s.recoveries, 0u);
    const Cycles per_failover =
        failoverCycles(cluster.network().params());
    EXPECT_EQ(s.failoverStallCycles, s.failovers * per_failover);
    EXPECT_LT(per_failover, recoverInPlaceCycles(faultConfig(4)));
    // Synchronous log shipping priced every commit: a ship + an ack.
    EXPECT_GT(s.logShipMessages, 0u);
    EXPECT_EQ(s.logShipMessages % 2, 0u);
    EXPECT_GT(s.logShipCycles, 0u);
    EXPECT_EQ(res.tx.singleShardTxs + res.tx.crossShardTxs, 2u * 150u);
}

TEST(FaultInjector, WindowKindsDegradeToPowerFailWithoutPeers)
{
    // One machine (or fraction 0) can never consume a coordinator or
    // participant crash; the plan's window draws must still fire as
    // plain power failures instead of silently vanishing.
    shard::Cluster cluster(BackendKind::Ssp, WorkloadKind::Sps,
                           faultConfig(4), faultScale(), 1);
    FaultParams params;
    params.ratePerMcycle = 20;
    params.seed = 1234;
    FaultInjector inj(cluster, params, 5678, 0);
    shard::runClusterExperiment(cluster, 150, 4, 0, 777, &inj);
    EXPECT_GT(inj.stats().powerFails, 0u);
    EXPECT_EQ(inj.stats().coordinatorCrashes, 0u);
    EXPECT_EQ(inj.stats().participantCrashes, 0u);
}

// ---- serve fault epochs ----------------------------------------------------

TEST(ServeFaults, EpochsBinTailLatencyAroundEachInjectedCrash)
{
    Experiment exp = buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                                     faultConfig(2), faultScale());
    serve::ServeParams params;
    params.offeredLoad = 0.9;
    // The second offset must land inside the run: the first fault's
    // stall alone pushes every clock past 300k cycles.
    params.faultAt = {1000, 300000};
    const RunResult res = serve::runServeExperiment(exp, 400, 2, params);
    EXPECT_EQ(res.faultEpochs, 2u);
    EXPECT_GT(res.faultEpochTxs, 0u);
    EXPECT_LE(res.faultEpochTxs, res.committedTxs);
    EXPECT_GT(res.p99FaultEpochCycles, 0u);
    // The epoch tail carries the outage stall, so it never undercuts
    // the run's median (ties happen: the log-scale histogram buckets
    // coarsen, and these early faults dominate the whole short run).
    EXPECT_GE(res.p99FaultEpochCycles, res.p50Cycles);
    EXPECT_TRUE(exp.workload->verify());
}

TEST(ServeFaults, NoFaultsMeansTheByteIdenticalBaseline)
{
    serve::ServeParams params;
    params.offeredLoad = 0.9;
    Experiment a = buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                                   faultConfig(2), faultScale());
    const RunResult base = serve::runServeExperiment(a, 300, 2, params);
    EXPECT_EQ(base.faultEpochs, 0u);
    EXPECT_EQ(base.faultEpochTxs, 0u);
    EXPECT_EQ(base.p99FaultEpochCycles, 0u);

    // An empty faultAt takes zero fault branches: same results.
    serve::ServeParams same = params;
    same.faultAt = {};
    Experiment b = buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                                   faultConfig(2), faultScale());
    const RunResult again = serve::runServeExperiment(b, 300, 2, same);
    EXPECT_EQ(base.cycles, again.cycles);
    EXPECT_EQ(base.p99Cycles, again.p99Cycles);
    EXPECT_EQ(base.committedTxs, again.committedTxs);
}

// ---- driver hooks ----------------------------------------------------------

TEST(RunHooks, BeforeOpFiresOncePerSlotInBothSchedulers)
{
    for (ScheduleMode mode :
         {ScheduleMode::Rounds, ScheduleMode::EventDriven}) {
        Experiment exp = buildExperiment(
            BackendKind::Ssp, WorkloadKind::Sps, faultConfig(2),
            faultScale());
        std::uint64_t calls = 0;
        RunHooks hooks;
        hooks.beforeOp = [&](std::uint64_t) { ++calls; };
        const RunResult res = runExperiment(exp, 120, 2, mode, 1, hooks);
        EXPECT_EQ(calls, 120u);
        EXPECT_EQ(res.committedTxs, 120u);
    }
}

TEST(RunHooks, MidRunCrashBetweenOpsKeepsEveryCommit)
{
    Experiment exp = buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                                     faultConfig(2), faultScale());
    RunHooks hooks;
    hooks.beforeOp = [&](std::uint64_t i) {
        if (i == 50) {
            exp.backend->crash();
            exp.backend->recover();
        }
    };
    const RunResult res = runExperiment(exp, 120, 2,
                                        ScheduleMode::Rounds, 1, hooks);
    EXPECT_EQ(res.committedTxs, 120u);
    EXPECT_TRUE(exp.workload->verify());
}

// ---- fault sweep grid ------------------------------------------------------

TEST(FaultGrid, ShapeCoversMachinesRatesAndReplication)
{
    const auto cells = sweep::buildFigureGrid("fault");
    // machines {1,2,4} x rates {0,5,20} x replication {off,on} x
    // 3 workloads x 3 backends.
    ASSERT_EQ(cells.size(), 3u * 3u * 2u * 9u);
    std::set<std::string> labels;
    for (const sweep::SweepCell &cell : cells) {
        EXPECT_EQ(cell.figure, "fault");
        EXPECT_EQ(cell.cores, 4u);
        EXPECT_EQ(cell.txs, 400u);
        // 2PC wherever peers exist; none on the 1-machine cells.
        EXPECT_EQ(cell.crossShardFraction, cell.machines > 1 ? 0.1 : 0.0);
        labels.insert(cell.label());
    }
    EXPECT_EQ(labels.size(), cells.size());
    EXPECT_TRUE(labels.count("fault/SSP/SPS/c4/m1/f0"));
    EXPECT_TRUE(labels.count("fault/SSP/SPS/c4/m2/x10/f50/rep"));
    EXPECT_TRUE(labels.count("fault/SSP/Hash-Rand/c4/p4/m4/x10/f200"));
    EXPECT_TRUE(
        labels.count("fault/REDO-LOG/BTree-Zipf/c4/m4/x10/f200/rep"));
}

TEST(FaultGrid, SeedsArePinnedToTheScalePlane)
{
    // Every fault axis perturbs the identical operation stream: cells
    // differing only in machines/rate/replication share the (workload,
    // backend) seed of the scale grid's 4-core plane.
    const auto fault_cells = sweep::buildFigureGrid("fault");
    const auto scale_cells = sweep::buildFigureGrid("scale");
    for (const sweep::SweepCell &f : fault_cells) {
        bool found = false;
        for (const sweep::SweepCell &ref : scale_cells) {
            if (ref.cores == 4 && ref.backend == f.backend &&
                ref.workload == f.workload) {
                EXPECT_EQ(ref.scale.seed, f.scale.seed) << f.label();
                found = true;
            }
        }
        EXPECT_TRUE(found) << f.label();
    }
}

TEST(FaultGrid, FaultOptionsAreRejectedElsewhere)
{
    sweep::SweepGridOptions rates;
    rates.faultRates = {5};
    EXPECT_THROW(sweep::buildFigureGrid("shard", rates),
                 std::runtime_error);
    EXPECT_THROW(sweep::buildFigureGrid("fig5", rates),
                 std::runtime_error);
    EXPECT_NO_THROW(sweep::buildFigureGrid("fault", rates));

    sweep::SweepGridOptions rep;
    rep.replicateModes = {true};
    EXPECT_THROW(sweep::buildFigureGrid("shard", rep),
                 std::runtime_error);
    EXPECT_NO_THROW(sweep::buildFigureGrid("fault", rep));

    sweep::SweepGridOptions machines;
    machines.machines = {2};
    EXPECT_NO_THROW(sweep::buildFigureGrid("fault", machines));
}

TEST(FaultGrid, RateListParserRejectsJunkAndAcceptsZero)
{
    EXPECT_EQ(sweep::parseFaultRateList("--fault-rate", "0,5,20"),
              (std::vector<double>{0, 5, 20}));
    EXPECT_THROW(sweep::parseFaultRateList("--fault-rate", "5x"),
                 std::runtime_error);
    EXPECT_THROW(sweep::parseFaultRateList("--fault-rate", "-1"),
                 std::runtime_error);
    EXPECT_THROW(sweep::parseFaultRateList("--fault-rate", "1001"),
                 std::runtime_error);
    EXPECT_THROW(sweep::parseFaultRateList("--fault-rate", ""),
                 std::runtime_error);
    EXPECT_EQ(sweep::parseReplicateModes("both"),
              (std::vector<bool>{false, true}));
    EXPECT_THROW(sweep::parseReplicateModes("maybe"),
                 std::runtime_error);
}

// ---- fault sweep runs ------------------------------------------------------

/** The small fault grid the sweep tests share. */
std::vector<sweep::SweepCell>
smallFaultGrid()
{
    sweep::SweepGridOptions opts;
    opts.machines = {1, 2};
    opts.faultRates = {0, 20};
    opts.workloads = {WorkloadKind::Sps};
    opts.backends = {BackendKind::Ssp};
    opts.txs = 60;
    return sweep::buildFigureGrid("fault", opts);
}

TEST(FaultSweep, CellsAreDeterministicAcrossJobsAndCellThreads)
{
    const auto cells = smallFaultGrid();
    ASSERT_EQ(cells.size(), 2u * 2u * 2u);
    const auto serial = sweep::runSweep(cells, 1);
    const auto parallel = sweep::runSweep(cells, 3);
    const auto threaded = sweep::runSweep(cells, 2, {}, 8);
    const std::string want =
        sweep::sweepReport("fault", serial).dump(2);
    EXPECT_EQ(want, sweep::sweepReport("fault", parallel).dump(2));
    EXPECT_EQ(want, sweep::sweepReport("fault", threaded).dump(2));
}

TEST(FaultSweep, ReportGatesFaultMetricsOnTheInjectingCells)
{
    const auto results = sweep::runSweep(smallFaultGrid(), 2);
    const Json report =
        Json::parse(sweep::sweepReport("fault", results).dump(2));
    for (std::size_t i = 0; i < report["cells"].size(); ++i) {
        const Json &c = report["cells"].at(i);
        ASSERT_TRUE(c["ok"].asBool()) << c["label"].asString();
        // Constant-schema coordinates across the whole grid.
        ASSERT_TRUE(c.has("machines"));
        ASSERT_TRUE(c.has("fault_rate_tenths"));
        ASSERT_TRUE(c.has("replicated"));
        const bool injecting = c["fault_rate_tenths"].asUint() > 0;
        const bool replicated = c["replicated"].asBool();
        const Json &m = c["metrics"];
        // Fault metrics exist iff faults could fire; replication
        // metrics iff shipping was priced.
        EXPECT_EQ(m.has("injected_power_fails"), injecting);
        EXPECT_EQ(m.has("recoveries"), injecting);
        EXPECT_EQ(m.has("failovers"), injecting);
        EXPECT_EQ(m.has("presumed_aborts"), injecting);
        EXPECT_EQ(m.has("rpc_retries"), injecting);
        EXPECT_EQ(m.has("committed_despite_faults"), injecting);
        EXPECT_EQ(m.has("log_ship_messages"), replicated);
        EXPECT_EQ(m.has("log_ship_cycles"), replicated);
        if (injecting) {
            // Every injecting cell must show recovery actually
            // happening — failures fired and were priced.
            EXPECT_GT(m["injected_power_fails"].asUint(), 0u)
                << c["label"].asString();
            EXPECT_EQ(m["recoveries"].asUint() + m["failovers"].asUint(),
                      m["injected_power_fails"].asUint())
                << c["label"].asString();
            if (replicated) {
                EXPECT_EQ(m["recoveries"].asUint(), 0u);
            } else {
                EXPECT_EQ(m["failovers"].asUint(), 0u);
            }
        }
    }
}

TEST(FaultSweep, ZeroFaultCellsReplayTheShardGridBitForBit)
{
    // The opt-in bar: a fault-grid cell at rate 0 without replication
    // runs the identical code path as its shard-grid twin — same seeds
    // (both pinned to the scale plane), same driver, no injector.
    sweep::SweepGridOptions fopts;
    fopts.machines = {2};
    fopts.faultRates = {0};
    fopts.replicateModes = {false};
    fopts.workloads = {WorkloadKind::Sps};
    fopts.backends = {BackendKind::Ssp};
    fopts.txs = 80;
    const auto fault_cells = sweep::buildFigureGrid("fault", fopts);
    ASSERT_EQ(fault_cells.size(), 1u);

    sweep::SweepGridOptions sopts;
    sopts.machines = {2};
    sopts.workloads = {WorkloadKind::Sps};
    sopts.backends = {BackendKind::Ssp};
    sopts.txs = 80;
    const auto shard_cells = sweep::buildFigureGrid("shard", sopts);
    const sweep::SweepCell *twin = nullptr;
    for (const sweep::SweepCell &s : shard_cells) {
        if (s.crossShardFraction == 0.1)
            twin = &s;
    }
    ASSERT_NE(twin, nullptr);
    ASSERT_EQ(twin->scale.seed, fault_cells[0].scale.seed);

    const auto fr = sweep::runSweep(fault_cells, 1);
    const auto sr = sweep::runSweep({*twin}, 1);
    ASSERT_TRUE(fr[0].ok && sr[0].ok);
    EXPECT_EQ(fr[0].run.cycles, sr[0].run.cycles);
    EXPECT_EQ(fr[0].run.committedTxs, sr[0].run.committedTxs);
    EXPECT_EQ(fr[0].run.nvramWrites, sr[0].run.nvramWrites);
    EXPECT_EQ(fr[0].run.loggingWrites, sr[0].run.loggingWrites);
    EXPECT_EQ(fr[0].shardTx.crossShardTxs, sr[0].shardTx.crossShardTxs);
    EXPECT_EQ(fr[0].shardTx.crossShardAborts,
              sr[0].shardTx.crossShardAborts);
    EXPECT_EQ(fr[0].networkMessages, sr[0].networkMessages);
    EXPECT_EQ(fr[0].networkCycles, sr[0].networkCycles);
}

TEST(FaultSweep, ReplicatedCellsShowFailoverBeatingRecovery)
{
    // The grid's headline claim on a contended plane: with the same
    // fault schedule, replication turns every outage into a failover
    // whose total stall is strictly below the in-place recovery stall.
    sweep::SweepGridOptions opts;
    opts.machines = {2};
    opts.faultRates = {20};
    opts.workloads = {WorkloadKind::BTreeZipf};
    opts.backends = {BackendKind::Ssp};
    opts.txs = 100;
    const auto cells = sweep::buildFigureGrid("fault", opts);
    ASSERT_EQ(cells.size(), 2u); // rep off + rep on
    const auto results = sweep::runSweep(cells, 2);
    const sweep::CellResult *plain = nullptr;
    const sweep::CellResult *replicated = nullptr;
    for (const sweep::CellResult &r : results) {
        ASSERT_TRUE(r.ok) << r.error;
        (r.cell.replicate ? replicated : plain) = &r;
    }
    ASSERT_NE(plain, nullptr);
    ASSERT_NE(replicated, nullptr);
    EXPECT_GT(plain->faultStats.recoveries, 0u);
    EXPECT_GT(replicated->faultStats.failovers, 0u);
    // Per-outage downtime: failover strictly beats the recovery scan.
    const Cycles per_recovery = plain->faultStats.recoveryStallCycles /
                                plain->faultStats.recoveries;
    const Cycles per_failover =
        replicated->faultStats.failoverStallCycles /
        replicated->faultStats.failovers;
    EXPECT_LT(per_failover, per_recovery);
}

} // namespace
} // namespace ssp::fault::test
