/**
 * @file
 * Unit tests for the common substrate: bitmaps, address arithmetic,
 * RNG/distributions, and statistics.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/bitmap64.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace ssp;

namespace
{

TEST(Bitmap64, StartsEmpty)
{
    Bitmap64 b;
    EXPECT_TRUE(b.none());
    EXPECT_EQ(b.popcount(), 0u);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_FALSE(b.test(i));
}

TEST(Bitmap64, SetResetFlip)
{
    Bitmap64 b;
    b.set(5);
    EXPECT_TRUE(b.test(5));
    b.flip(5);
    EXPECT_FALSE(b.test(5));
    b.flip(5);
    EXPECT_TRUE(b.test(5));
    b.reset(5);
    EXPECT_TRUE(b.none());
}

TEST(Bitmap64, XorIsCommitSemantics)
{
    Bitmap64 committed(0b1010);
    Bitmap64 updated(0b0110);
    Bitmap64 after = committed ^ updated;
    EXPECT_EQ(after.raw(), 0b1100u);
    // XOR twice restores (abort-equivalence at the bitmap level).
    EXPECT_EQ((after ^ updated).raw(), committed.raw());
}

TEST(Bitmap64, PopcountAndLowest)
{
    Bitmap64 b;
    b.set(3);
    b.set(17);
    b.set(63);
    EXPECT_EQ(b.popcount(), 3u);
    EXPECT_EQ(b.lowestSet(), 3u);
}

TEST(Bitmap64, BoundaryBits)
{
    Bitmap64 b;
    b.set(0);
    b.set(63);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(63));
    EXPECT_EQ(b.popcount(), 2u);
    EXPECT_EQ((~b).popcount(), 62u);
}

TEST(Bitmap64, ToStringRoundTrip)
{
    Bitmap64 b;
    b.set(1);
    std::string s = b.toString();
    EXPECT_EQ(s.size(), 64u);
    EXPECT_EQ(s[1], '1');
    EXPECT_EQ(s[0], '0');
}

class AddressMathTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>>
{
};

TEST_P(AddressMathTest, DecomposeRecompose)
{
    const auto [page, line] = GetParam();
    const Addr addr = pageBase(page) + line * kLineSize + 7;
    EXPECT_EQ(pageOf(addr), page);
    EXPECT_EQ(lineIndexInPage(addr), line);
    EXPECT_EQ(lineOffset(addr), 7u);
    EXPECT_EQ(lineBase(addr), lineAddr(page, line));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AddressMathTest,
    ::testing::Combine(::testing::Values(0ull, 1ull, 255ull, 1u << 20),
                       ::testing::Values(0u, 1u, 31u, 63u)));

TEST(AddressMath, FitsPredicates)
{
    EXPECT_TRUE(fitsInLine(0, 64));
    EXPECT_FALSE(fitsInLine(1, 64));
    EXPECT_TRUE(fitsInLine(63, 1));
    EXPECT_FALSE(fitsInLine(63, 2));
    EXPECT_TRUE(fitsInPage(0, kPageSize));
    EXPECT_FALSE(fitsInPage(8, kPageSize));
    EXPECT_FALSE(fitsInLine(0, 0));
}

TEST(Rng, Deterministic)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, HotspotConcentratesAccesses)
{
    // Paper's definition: 80% of accesses to 15% of keys.
    const std::uint64_t n = 1000;
    auto gen = ZipfGenerator::hotspot(n, 0.15, 0.80, 99);
    std::map<std::uint64_t, std::uint64_t> counts;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        counts[gen.next()]++;

    // Count accesses landing on the top 15% most popular keys.
    std::vector<std::uint64_t> freq;
    for (auto &kv : counts)
        freq.push_back(kv.second);
    std::sort(freq.rbegin(), freq.rend());
    std::uint64_t top = 0;
    for (std::size_t i = 0; i < 150 && i < freq.size(); ++i)
        top += freq[i];
    const double hot_share = static_cast<double>(top) / draws;
    // Hot keys get 80% plus their uniform share of the remaining 20%.
    EXPECT_NEAR(hot_share, 0.80 + 0.20 * 0.15, 0.03);
}

TEST(Zipf, ClassicSkewsTowardsLowRanks)
{
    auto gen = ZipfGenerator::classic(1000, 0.9, 7);
    std::uint64_t low = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        low += (gen.next() < 100) ? 1 : 0;
    // Rank 0-99 must dominate under theta=0.9.
    EXPECT_GT(static_cast<double>(low) / draws, 0.5);
}

TEST(Zipf, AllKeysInRange)
{
    auto gen = ZipfGenerator::hotspot(37, 0.15, 0.8, 1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(gen.next(), 37u);
}

TEST(Stats, GroupAccumulates)
{
    StatGroup g("test");
    g.add("x");
    g.add("x", 4);
    g.set("y", 9);
    EXPECT_EQ(g.get("x"), 5u);
    EXPECT_EQ(g.get("y"), 9u);
    EXPECT_EQ(g.get("absent"), 0u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
}

TEST(Stats, SummaryTracksMinMaxMean)
{
    StatSummary s;
    s.sample(4);
    s.sample(10);
    s.sample(1);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.min(), 1u);
    EXPECT_EQ(s.max(), 10u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

} // namespace
