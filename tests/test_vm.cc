/**
 * @file
 * Unit tests for the page table and the extended TLB.
 */

#include <gtest/gtest.h>

#include "vm/page_table.hh"
#include "vm/tlb.hh"

using namespace ssp;

namespace
{

TEST(PageTable, MapTranslateUnmap)
{
    PageTable pt(60);
    pt.map(5, 500);
    EXPECT_TRUE(pt.isMapped(5));
    EXPECT_EQ(pt.translate(5), 500u);
    EXPECT_TRUE(pt.unmap(5));
    EXPECT_FALSE(pt.isMapped(5));
    EXPECT_FALSE(pt.unmap(5));
}

TEST(PageTable, RemapOverwrites)
{
    PageTable pt(60);
    pt.map(7, 70);
    pt.map(7, 71);
    EXPECT_EQ(pt.translate(7), 71u);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, WalkCostsConfiguredCycles)
{
    PageTable pt(60);
    EXPECT_EQ(pt.walk(100), 160u);
}

TEST(PageTable, TranslateUnmappedPanics)
{
    PageTable pt(60);
    EXPECT_THROW(pt.translate(9), std::logic_error);
}

TlbEntry
entry(Vpn vpn, Ppn ppn0 = 0, SlotId slot = kInvalidSlot)
{
    TlbEntry e;
    e.valid = true;
    e.vpn = vpn;
    e.ppn0 = ppn0;
    e.slot = slot;
    return e;
}

TEST(Tlb, HitAfterInsert)
{
    Tlb tlb(4);
    tlb.insert(entry(3, 30));
    TlbEntry *hit = tlb.lookup(3);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->ppn0, 30u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, MissReturnsNull)
{
    Tlb tlb(4);
    EXPECT_EQ(tlb.lookup(9), nullptr);
}

TEST(Tlb, LruEvictionReturnsVictim)
{
    Tlb tlb(2);
    tlb.insert(entry(1));
    tlb.insert(entry(2));
    auto displaced = tlb.insert(entry(3));
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(displaced->vpn, 1u); // LRU
    EXPECT_EQ(tlb.lookup(1), nullptr);
    EXPECT_NE(tlb.lookup(2), nullptr);
}

TEST(Tlb, LookupRefreshesLru)
{
    Tlb tlb(2);
    tlb.insert(entry(1));
    tlb.insert(entry(2));
    tlb.lookup(1); // 2 becomes LRU
    auto displaced = tlb.insert(entry(3));
    ASSERT_TRUE(displaced.has_value());
    EXPECT_EQ(displaced->vpn, 2u);
}

TEST(Tlb, ExplicitEvict)
{
    Tlb tlb(4);
    tlb.insert(entry(5, 50, 7));
    auto out = tlb.evict(5);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->slot, 7u);
    EXPECT_EQ(tlb.lookup(5), nullptr);
    EXPECT_FALSE(tlb.evict(5).has_value());
}

TEST(Tlb, CapacityHonored)
{
    Tlb tlb(8);
    for (Vpn v = 0; v < 20; ++v)
        tlb.insert(entry(v));
    EXPECT_EQ(tlb.validEntries().size(), 8u);
    EXPECT_EQ(tlb.evictions(), 12u);
}

TEST(Tlb, FlushAllEmpties)
{
    Tlb tlb(4);
    tlb.insert(entry(1));
    tlb.insert(entry(2));
    tlb.flushAll();
    EXPECT_TRUE(tlb.validEntries().empty());
    EXPECT_EQ(tlb.lookup(1), nullptr);
}

TEST(Tlb, InsertReusesInvalidSlotsFirst)
{
    Tlb tlb(2);
    tlb.insert(entry(1));
    tlb.insert(entry(2));
    tlb.evict(1);
    auto displaced = tlb.insert(entry(3));
    EXPECT_FALSE(displaced.has_value()); // used the invalidated slot
    EXPECT_NE(tlb.lookup(2), nullptr);
}

} // namespace
