/**
 * @file
 * Recovery tests for SSP (paper section 4.4): committed data survives a
 * power failure, uncommitted data vanishes, journal replay skips
 * unfinished transactions, consolidation records recover correctly, and
 * the post-recovery structural invariants hold.
 */

#include <gtest/gtest.h>

#include "core/recovery.hh"
#include "core/ssp_system.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

class SspRecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys = std::make_unique<SspSystem>(smallConfig());
    }

    void
    crashAndRecover()
    {
        sys->crash();
        sys->recover();
        RecoveryReport report = verifyRecoveredState(*sys);
        EXPECT_TRUE(report.ok);
        for (const auto &v : report.violations)
            ADD_FAILURE() << v;
    }

    std::unique_ptr<SspSystem> sys;
};

TEST_F(SspRecoveryTest, CommittedDataSurvives)
{
    txWrite64(*sys, 0, 0x1000, 0x1111);
    txWrite64(*sys, 0, 0x2008, 0x2222);
    crashAndRecover();
    EXPECT_EQ(raw64(*sys, 0x1000), 0x1111u);
    EXPECT_EQ(raw64(*sys, 0x2008), 0x2222u);
    // Timed reads work again after recovery (TLBs refill).
    EXPECT_EQ(timed64(*sys, 0, 0x1000), 0x1111u);
}

TEST_F(SspRecoveryTest, UncommittedTransactionVanishes)
{
    txWrite64(*sys, 0, 0x3000, 1);
    sys->begin(0);
    std::uint64_t v = 999;
    sys->store(0, 0x3000, &v, sizeof(v));
    sys->store(0, 0x4000, &v, sizeof(v));
    // Crash mid-transaction (no commit).
    crashAndRecover();
    EXPECT_EQ(raw64(*sys, 0x3000), 1u);
    EXPECT_EQ(raw64(*sys, 0x4000), 0u);
}

TEST_F(SspRecoveryTest, MultiPageAtomicityAcrossCrash)
{
    // The Figure 2 scenario: a transaction spanning two pages must be
    // all-or-nothing even when the crash interrupts the metadata
    // updates.  Committed transactions have their marker persisted, so
    // recovery applies both pages' bitmaps.
    sys->begin(0);
    std::uint64_t v = 0xaa;
    sys->store(0, pageBase(10) + 0, &v, sizeof(v));
    sys->store(0, pageBase(10) + 64, &v, sizeof(v));
    v = 0xbb;
    sys->store(0, pageBase(11) + 128, &v, sizeof(v));
    sys->store(0, pageBase(11) + 192, &v, sizeof(v));
    sys->commit(0);

    crashAndRecover();
    EXPECT_EQ(raw64(*sys, pageBase(10) + 0), 0xaau);
    EXPECT_EQ(raw64(*sys, pageBase(10) + 64), 0xaau);
    EXPECT_EQ(raw64(*sys, pageBase(11) + 128), 0xbbu);
    EXPECT_EQ(raw64(*sys, pageBase(11) + 192), 0xbbu);
}

TEST_F(SspRecoveryTest, RepeatedCrashesAreIdempotent)
{
    txWrite64(*sys, 0, 0x5000, 77);
    for (int i = 0; i < 3; ++i)
        crashAndRecover();
    EXPECT_EQ(raw64(*sys, 0x5000), 77u);
}

TEST_F(SspRecoveryTest, WorkContinuesAfterRecovery)
{
    txWrite64(*sys, 0, 0x6000, 1);
    crashAndRecover();
    txWrite64(*sys, 0, 0x6000, 2);
    txWrite64(*sys, 0, 0x6040, 3);
    EXPECT_EQ(raw64(*sys, 0x6000), 2u);
    EXPECT_EQ(raw64(*sys, 0x6040), 3u);
    crashAndRecover();
    EXPECT_EQ(raw64(*sys, 0x6000), 2u);
    EXPECT_EQ(raw64(*sys, 0x6040), 3u);
}

TEST_F(SspRecoveryTest, CheckpointThenCrashRecovers)
{
    // Force enough journal traffic to trigger checkpoints, then crash.
    for (unsigned i = 0; i < 600; ++i)
        txWrite64(*sys, 0, pageBase(1 + (i % 20)) + (i % 64) * 64, i);
    EXPECT_GT(sys->controller().checkpoints(), 0u);
    crashAndRecover();
    // Spot-check the last value written to each page.
    for (unsigned p = 0; p < 20; ++p) {
        bool found = false;
        for (unsigned i = 0; i < 600 && !found; ++i) {
            if (1 + (i % 20) == 1 + p) {
                // compute the final write to this (page, line)
            }
        }
        (void)found;
    }
    // Full functional check: re-derive expected values.
    std::map<Addr, std::uint64_t> expected;
    for (unsigned i = 0; i < 600; ++i)
        expected[pageBase(1 + (i % 20)) + (i % 64) * 64] = i;
    for (const auto &[addr, value] : expected)
        EXPECT_EQ(raw64(*sys, addr), value);
}

TEST_F(SspRecoveryTest, ConsolidatedPagesRecover)
{
    // Write pages, force consolidation via TLB pressure, crash.
    for (Vpn p = 30; p < 30 + 100; ++p)
        txWrite64(*sys, 0, pageBase(p) + 8, p * 3);
    EXPECT_GT(sys->controller().consolidator().consolidations(), 0u);
    crashAndRecover();
    for (Vpn p = 30; p < 30 + 100; ++p)
        EXPECT_EQ(raw64(*sys, pageBase(p) + 8), p * 3);
}

TEST_F(SspRecoveryTest, PartialJournalFlushDiscardsTail)
{
    // Commit one tx (durable), then hand-append an Update record
    // without a commit marker and crash: the update must be ignored.
    txWrite64(*sys, 0, 0x7000, 5);
    MemController &mc = sys->controller();
    SlotId sid = mc.cache().findSlot(pageOf(0x7000));
    ASSERT_NE(sid, kInvalidSlot);

    // Forge an uncommitted metadata update claiming line 1 moved.
    Bitmap64 updated;
    updated.set(1);
    mc.metadataUpdate(9999, sid, updated, 0);
    // Flush the journal so the record itself is durable — but there is
    // no commit marker for tid 9999.
    mc.journal().flush(0);

    crashAndRecover();
    // The forged update must have been skipped: line 1 still reads 0.
    EXPECT_EQ(raw64(*sys, 0x7000 + 64), 0u);
    EXPECT_EQ(raw64(*sys, 0x7000), 5u);
}

TEST_F(SspRecoveryTest, RecoveryReportCatchesNoViolationsOnFreshSystem)
{
    crashAndRecover();
    RecoveryReport report = verifyRecoveredState(*sys);
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.violations.empty());
}

TEST_F(SspRecoveryTest, AbortThenCrashKeepsCommittedState)
{
    txWrite64(*sys, 0, 0x8000, 10);
    sys->begin(0);
    std::uint64_t v = 11;
    sys->store(0, 0x8000, &v, sizeof(v));
    sys->abort(0);
    crashAndRecover();
    EXPECT_EQ(raw64(*sys, 0x8000), 10u);
}

} // namespace
