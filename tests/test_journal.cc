/**
 * @file
 * Unit tests for the metadata journal and the generic persistent log:
 * line-granular durability watermarks, commit-marker semantics,
 * checkpoint thresholds, power-failure truncation.
 */

#include <gtest/gtest.h>

#include "baselines/persist_log.hh"
#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"
#include "nvram/journal.hh"

using namespace ssp;

namespace
{

class JournalTest : public ::testing::Test
{
  protected:
    JournalTest()
        : mem(64, 4),
          bus(mem, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
              MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4}),
          journal(bus, 0, 16 * kPageSize, 8 * kPageSize)
    {
    }

    JournalRecord
    update(TxId tid, SlotId sid, std::uint64_t committed)
    {
        JournalRecord rec;
        rec.kind = JournalKind::Update;
        rec.tid = tid;
        rec.sid = sid;
        rec.vpn = 100 + sid;
        rec.ppn0 = 200 + sid;
        rec.ppn1 = 300 + sid;
        rec.committed = Bitmap64(committed);
        return rec;
    }

    JournalRecord
    commitMarker(TxId tid)
    {
        JournalRecord rec;
        rec.kind = JournalKind::Commit;
        rec.tid = tid;
        return rec;
    }

    PhysMem mem;
    MemoryBus bus;
    MetadataJournal journal;
};

TEST_F(JournalTest, RecordSizes)
{
    EXPECT_EQ(update(1, 0, 0).sizeBytes(), 40u);
    EXPECT_EQ(commitMarker(1).sizeBytes(), 8u);
}

TEST_F(JournalTest, NothingPersistedBeforeFlush)
{
    journal.append(update(1, 0, 0xff), 0);
    // 40 bytes < one line: nothing streamed yet.
    EXPECT_EQ(journal.persistedBytes(), 0u);
    EXPECT_TRUE(journal.persistedRecords().empty());
}

TEST_F(JournalTest, FlushPersistsPartialLine)
{
    journal.append(update(1, 0, 0xff), 0);
    const Cycles done = journal.flush(0);
    EXPECT_GT(done, 0u);
    EXPECT_GE(journal.persistedBytes(), 40u);
    EXPECT_EQ(journal.persistedRecords().size(), 1u);
    EXPECT_EQ(bus.nvramWrites(WriteCategory::MetaJournal), 1u);
}

TEST_F(JournalTest, FullLinesStreamWithoutFlush)
{
    // Two 40-byte records cross the first 64-byte line boundary.
    journal.append(update(1, 0, 1), 0);
    journal.append(update(1, 1, 2), 0);
    EXPECT_EQ(journal.persistedBytes(), 64u);
    // Only the first record is fully inside the persisted line.
    EXPECT_EQ(journal.persistedRecords().size(), 1u);
}

TEST_F(JournalTest, PowerFailDropsUnpersistedTail)
{
    journal.append(update(1, 0, 1), 0);
    journal.flush(0);
    journal.append(update(2, 1, 2), 0);
    journal.powerFail();
    auto recs = journal.persistedRecords();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].tid, 1u);
}

TEST_F(JournalTest, CheckpointThreshold)
{
    EXPECT_FALSE(journal.needsCheckpoint());
    const std::uint64_t target = 8 * kPageSize;
    std::uint64_t appended = 0;
    TxId tid = 1;
    while (appended < target) {
        journal.append(update(tid++, 0, 1), 0);
        appended += 40;
    }
    EXPECT_TRUE(journal.needsCheckpoint());
    journal.truncate();
    EXPECT_FALSE(journal.needsCheckpoint());
    EXPECT_EQ(journal.appendedBytes(), 0u);
}

TEST_F(JournalTest, OverflowIsFatal)
{
    MetadataJournal tiny(bus, 0, 4 * kLineSize, 4 * kLineSize);
    tiny.append(update(1, 0, 1), 0);
    tiny.append(update(1, 1, 1), 0);
    tiny.append(update(1, 2, 1), 0);
    tiny.append(update(1, 3, 1), 0);
    tiny.append(update(1, 4, 1), 0);
    tiny.append(update(1, 5, 1), 0); // 240 bytes of 256
    EXPECT_THROW(tiny.append(update(1, 6, 1), 0), std::runtime_error);
}

TEST_F(JournalTest, RecordOrderPreserved)
{
    for (unsigned i = 0; i < 10; ++i)
        journal.append(update(i, i, i), 0);
    journal.append(commitMarker(99), 0);
    journal.flush(0);
    auto recs = journal.persistedRecords();
    ASSERT_EQ(recs.size(), 11u);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(recs[i].tid, i);
    EXPECT_EQ(recs[10].kind, JournalKind::Commit);
}

// ---- PersistLog (the baselines' log) ----------------------------------

class PersistLogTest : public ::testing::Test
{
  protected:
    PersistLogTest()
        : mem(64, 4),
          bus(mem, MemTimingParams{"dram", 4, 1024, 100, 100, 0.4},
              MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4}),
          log(bus, 0, 16 * kPageSize, WriteCategory::UndoLog)
    {
    }

    LogRecord
    dataRec(TxId tid, Addr addr)
    {
        LogRecord rec;
        rec.kind = LogRecord::Kind::Data;
        rec.tid = tid;
        rec.addr = addr;
        rec.data.assign(kLineSize, 0x5a);
        return rec;
    }

    PhysMem mem;
    MemoryBus bus;
    PersistLog log;
};

TEST_F(PersistLogTest, SynchronousAppendIsDurableImmediately)
{
    const Cycles done = log.append(dataRec(1, 0x40), 0, true);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(log.persistedRecords().size(), 1u);
    // An 80-byte record spans two lines.
    EXPECT_EQ(log.lineWrites(), 2u);
}

TEST_F(PersistLogTest, AsyncAppendDoesNotStall)
{
    const Cycles done = log.append(dataRec(1, 0x40), 500, false);
    EXPECT_EQ(done, 500u); // no stall for the caller
    EXPECT_TRUE(log.persistedRecords().size() <= 1);
    log.flush(500);
    EXPECT_EQ(log.persistedRecords().size(), 1u);
}

TEST_F(PersistLogTest, CommitMarkerSize)
{
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    EXPECT_EQ(marker.sizeBytes(), 8u);
}

TEST_F(PersistLogTest, TruncateResets)
{
    log.append(dataRec(1, 0), 0, true);
    log.truncate();
    EXPECT_EQ(log.appendedBytes(), 0u);
    EXPECT_EQ(log.persistedBytes(), 0u);
    EXPECT_TRUE(log.persistedRecords().empty());
}

TEST_F(PersistLogTest, PowerFailKeepsDurablePrefix)
{
    log.append(dataRec(1, 0x40), 0, true);
    log.append(dataRec(2, 0x80), 0, false); // tail, not yet durable
    log.powerFail();
    auto recs = log.persistedRecords();
    // Record 2 may be partially covered by record 1's line flushes; it
    // must NOT survive unless fully persisted.
    for (const auto &r : recs)
        EXPECT_EQ(r.tid, 1u);
}

TEST_F(PersistLogTest, MutableRecordUpdatesPending)
{
    log.append(dataRec(1, 0x40), 0, false);
    const std::size_t idx = log.lastIndex();
    if (!log.isPersisted(idx)) {
        log.mutableRecord(idx).data.assign(kLineSize, 0x77);
        log.flush(0);
        EXPECT_EQ(log.persistedRecords()[0].data[0], 0x77);
    }
}

} // namespace
