/**
 * @file
 * Unit tests for the MemSystem layer: channel interleaving, per-channel
 * row-buffer and bank behavior, background/foreground write isolation,
 * device presets, and end-to-end channel scaling through a real backend.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "mem/device_presets.hh"
#include "mem/mem_system.hh"
#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"
#include "sim/driver.hh"
#include "sim/system_builder.hh"
#include "tests/test_helpers.hh"

using namespace ssp;

namespace
{

MemTimingParams
testParams()
{
    return MemTimingParams{"test", 4, 1024, 100, 400, 0.4, 1.0};
}

TEST(MemChannelGroup, SingleChannelBitIdenticalToTimingModel)
{
    const MemTimingParams p = testParams();
    MemTimingModel model(p);
    MemChannelGroup group(p, 1, InterleaveGranularity::Line);

    // A deterministic pseudo-random mix of reads/writes, foreground and
    // background, exercising bank queues and the read/write buses.
    // Foreground reads advance `now` past their completion — they are
    // blocking in the machine (the core stalls on the fill), which is
    // exactly the regime where the group's read-bus arbitration is
    // provably idle and the two layers stay bit-identical.
    std::uint64_t x = 0x2545f4914f6cdd1dull;
    Cycles now = 0;
    for (int i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = (x % (1 << 20)) & ~(kLineSize - 1);
        const bool is_write = (x >> 21) & 1;
        const bool background = ((x >> 22) & 3) == 0;
        const Cycles a = model.access(addr, is_write, now, background);
        const Cycles b = group.access(addr, is_write, now, background);
        ASSERT_EQ(a, b) << "access " << i;
        now += (x >> 24) % 200;
        if (!is_write && !background)
            now = std::max(now, a);
    }
    EXPECT_EQ(model.rowHits(), group.rowHits());
    EXPECT_EQ(model.rowMisses(), group.rowMisses());
    EXPECT_EQ(model.reads(), group.reads());
    EXPECT_EQ(model.writes(), group.writes());
}

TEST(MemChannelGroup, ConcurrentForegroundReadsArbitrateTheChannelBus)
{
    const MemTimingParams p = testParams();
    MemChannelGroup group(p, 1, InterleaveGranularity::Line);
    // Two same-cycle reads to different banks are bank-parallel in the
    // array but queue for one burst slot each on the channel bus —
    // concurrent cores no longer overlap for free.
    const Cycles t1 = group.access(0, false, 0);
    const Cycles t2 = group.access(1024, false, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 124u); // one 24-cycle burst slot behind the first

    // Background reads drain in idle slots and skip the arbitration.
    MemChannelGroup quiet(p, 1, InterleaveGranularity::Line);
    EXPECT_EQ(quiet.access(0, false, 0, true), 100u);
    EXPECT_EQ(quiet.access(1024, false, 0, true), 100u);
}

TEST(MemChannelGroup, LineInterleaveMapping)
{
    MemChannelGroup group(testParams(), 4, InterleaveGranularity::Line);
    // Consecutive lines rotate across the four channels.
    EXPECT_EQ(group.channelOf(0 * kLineSize), 0u);
    EXPECT_EQ(group.channelOf(1 * kLineSize), 1u);
    EXPECT_EQ(group.channelOf(2 * kLineSize), 2u);
    EXPECT_EQ(group.channelOf(3 * kLineSize), 3u);
    EXPECT_EQ(group.channelOf(4 * kLineSize), 0u);
    // The channel-local space is dense: line 4 is the owning channel's
    // line 1, and the offset within the line is preserved.
    EXPECT_EQ(group.channelLocalAddr(4 * kLineSize), kLineSize);
    EXPECT_EQ(group.channelLocalAddr(4 * kLineSize + 17), kLineSize + 17);
}

TEST(MemChannelGroup, PageInterleaveMapping)
{
    MemChannelGroup group(testParams(), 2, InterleaveGranularity::Page);
    // A whole page lives on one channel; pages alternate.
    for (Addr off = 0; off < kPageSize; off += kLineSize) {
        EXPECT_EQ(group.channelOf(off), 0u);
        EXPECT_EQ(group.channelOf(kPageSize + off), 1u);
    }
    EXPECT_EQ(group.channelOf(2 * kPageSize), 0u);
    // Page 2 is channel 0's page 1, intra-page layout untouched.
    EXPECT_EQ(group.channelLocalAddr(2 * kPageSize + 300),
              kPageSize + 300);
}

TEST(MemChannelGroup, ChannelsOperateInParallel)
{
    // Two lines that collide on one channel (same bank, same issue time)
    // complete independently once they land on different channels.
    const MemTimingParams p = testParams();
    MemChannelGroup one(p, 1, InterleaveGranularity::Line);
    const Cycles a1 = one.access(0, false, 0);
    const Cycles a2 = one.access(kLineSize, false, 0);
    EXPECT_EQ(a1, 100u);
    // Same 1 KiB row buffer on the single channel: queues behind a1.
    EXPECT_GT(a2, a1);

    MemChannelGroup two(p, 2, InterleaveGranularity::Line);
    EXPECT_EQ(two.access(0, false, 0), 100u);
    EXPECT_EQ(two.access(kLineSize, false, 0), 100u);
}

TEST(MemChannelGroup, PerChannelRowBufferHitMiss)
{
    // Page interleave: each channel keeps its own open rows, so row
    // locality inside a page survives multi-channel operation.
    MemChannelGroup group(testParams(), 2, InterleaveGranularity::Page);
    const Cycles t1 = group.access(0, false, 0); // ch0: row miss
    EXPECT_EQ(t1, 100u);
    const Cycles t2 = group.access(kLineSize, false, t1); // ch0: row hit
    EXPECT_EQ(t2 - t1, 40u);
    // An access on the other channel is a cold miss and does not
    // disturb channel 0's open row.
    EXPECT_EQ(group.access(kPageSize, false, 0), 100u);
    const Cycles t3 = group.access(2 * kLineSize, false, t2);
    EXPECT_EQ(t3 - t2, 40u); // still a hit on channel 0
    EXPECT_EQ(group.channel(0).rowHits(), 2u);
    EXPECT_EQ(group.channel(1).rowHits(), 0u);
    EXPECT_EQ(group.rowHits(), 2u);
    EXPECT_EQ(group.rowMisses(), 2u);
}

TEST(MemChannelGroup, BankConflictQueuesWithinChannel)
{
    // 4 banks x 1 KiB rows: channel-local addresses 0 and 4 KiB share
    // bank 0.  Under page interleave with 2 channels, global pages 0
    // and 2 both live on channel 0 at local pages 0 and 1 — the second
    // access must queue behind the first, and the conflict must not
    // leak onto channel 1.
    MemChannelGroup group(testParams(), 2, InterleaveGranularity::Page);
    const Cycles t1 = group.access(0, false, 0);
    const Cycles t2 = group.access(2 * kPageSize, false, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_GE(t2, t1 + 100u); // queued behind the busy bank
    EXPECT_EQ(group.access(kPageSize, false, 0), 100u); // ch1 untouched
}

TEST(MemChannelGroup, BackgroundWritesDoNotBlockForeground)
{
    // Background traffic (consolidation, checkpoints) may not occupy a
    // bank or a write-bus slot on any channel.
    const MemTimingParams p = testParams();
    MemChannelGroup quiet(p, 2, InterleaveGranularity::Line);
    MemChannelGroup busy(p, 2, InterleaveGranularity::Line);
    for (Addr line = 0; line < 64; ++line)
        busy.access(line * kLineSize, true, 0, true);

    // Foreground timing is identical with and without the background
    // barrage, on both channels.
    for (Addr line = 0; line < 8; ++line) {
        EXPECT_EQ(quiet.access(line * kLineSize, true, 5000),
                  busy.access(line * kLineSize, true, 5000))
            << "line " << line;
    }
    // ... while the background writes were still billed in the stats.
    EXPECT_EQ(busy.writes(), 64u + 8u);
}

TEST(MemChannelGroup, WriteBurstsSplitAcrossChannels)
{
    // A batch of foreground writes serializes on the single channel's
    // write bus; across channels the bursts drain in parallel, so the
    // batch completion time is monotone non-increasing in channels.
    const MemTimingParams p = testParams();
    auto batch_done = [&p](unsigned channels) {
        MemChannelGroup g(p, channels, InterleaveGranularity::Line);
        Cycles done = 0;
        for (Addr line = 0; line < 16; ++line)
            done = std::max(done,
                            g.access(line * kLineSize, true, 0));
        return done;
    };
    const Cycles d1 = batch_done(1);
    const Cycles d2 = batch_done(2);
    const Cycles d4 = batch_done(4);
    EXPECT_LE(d2, d1);
    EXPECT_LE(d4, d2);
    EXPECT_LT(d4, d1); // strictly faster with real parallelism
}

TEST(MemChannelGroup, ResetClearsEveryChannel)
{
    MemChannelGroup group(testParams(), 2, InterleaveGranularity::Line);
    group.access(0, false, 0);
    group.access(kLineSize, false, 0);
    group.reset();
    // Bank state forgotten: the same accesses are cold misses again.
    EXPECT_EQ(group.access(0, false, 0), 100u);
    EXPECT_EQ(group.access(kLineSize, false, 0), 100u);
}

TEST(MemoryBus, MultiChannelRoutingKeepsCategoryAccounting)
{
    PhysMem mem(8, 8);
    MemSystemParams params;
    params.dram = MemTimingParams{"dram", 4, 1024, 100, 100, 0.4, 0.4};
    params.nvram = MemTimingParams{"nvram", 4, 1024, 200, 800, 0.4, 1.0};
    params.nvramChannels = 4;
    params.interleave = InterleaveGranularity::Line;
    MemoryBus bus(mem, params);

    EXPECT_EQ(bus.nvramGroup().channelCount(), 4u);
    EXPECT_EQ(bus.dramGroup().channelCount(), 1u);

    bus.issueRead(0, 0);
    bus.issueWrite(0x40, WriteCategory::Data, 0);
    bus.issueWrite(0x80, WriteCategory::UndoLog, 0);
    bus.issueWrite(8 * kPageSize, WriteCategory::Data, 0);

    // The Figure 6/7 accounting is independent of the channel layout.
    EXPECT_EQ(bus.nvramReads(), 1u);
    EXPECT_EQ(bus.nvramWrites(), 2u);
    EXPECT_EQ(bus.nvramWrites(WriteCategory::Data), 1u);
    EXPECT_EQ(bus.nvramWrites(WriteCategory::UndoLog), 1u);
    EXPECT_EQ(bus.dramWrites(), 1u);
    EXPECT_EQ(bus.nvramGroup().writes(), 2u);
}

TEST(DevicePresets, PaperPcmIsTheConfigDefault)
{
    const SspConfig cfg;
    const MemTimingParams preset = nvramDevicePreset(NvramDevice::PaperPcm);
    EXPECT_EQ(cfg.nvram.name, preset.name);
    EXPECT_EQ(cfg.nvram.banks, preset.banks);
    EXPECT_EQ(cfg.nvram.readLatency, nsToCycles(50));
    EXPECT_EQ(cfg.nvram.writeLatency, nsToCycles(200));
    EXPECT_EQ(cfg.dram.readLatency, dramDevicePreset().readLatency);
}

TEST(DevicePresets, DramOnlyTimesNvramLikeDram)
{
    const MemTimingParams dram = dramDevicePreset();
    const MemTimingParams p = nvramDevicePreset(NvramDevice::DramOnly);
    EXPECT_EQ(p.readLatency, dram.readLatency);
    EXPECT_EQ(p.writeLatency, dram.writeLatency);
    EXPECT_EQ(p.writeHitFraction, dram.writeHitFraction);
}

TEST(DevicePresets, NamesRoundTripAndUnknownIsFatal)
{
    for (NvramDevice d : knownNvramDevices())
        EXPECT_EQ(parseNvramDevice(nvramDeviceName(d)), d);
    EXPECT_THROW(parseNvramDevice("optane-9000"), std::runtime_error);
}

TEST(DevicePresets, OrderingFastToSlow)
{
    const Cycles stt =
        nvramDevicePreset(NvramDevice::SttMramFast).writeLatency;
    const Cycles pcm =
        nvramDevicePreset(NvramDevice::PaperPcm).writeLatency;
    const Cycles flash =
        nvramDevicePreset(NvramDevice::FlashSlow).writeLatency;
    EXPECT_LT(nvramDevicePreset(NvramDevice::DramOnly).writeLatency, pcm);
    EXPECT_LT(stt, pcm);
    EXPECT_LT(pcm, flash);
}

/** End-to-end: run one workload cell at a given NVRAM channel count. */
RunResult
runChannelCell(WorkloadKind workload, unsigned channels)
{
    SspConfig cfg = ssp::test::smallConfig();
    cfg.nvramChannels = channels;
    cfg.interleaveGranularity = InterleaveGranularity::Page;
    WorkloadScale scale;
    scale.keySpace = 512;
    scale.spsElements = 2048;
    scale.seed = 42;
    Experiment exp =
        buildExperiment(BackendKind::Ssp, workload, cfg, scale);
    return runExperiment(exp, 300, 1);
}

TEST(ChannelScaling, WriteBoundWorkloadsSpeedUpWithChannels)
{
    // The acceptance property behind the chan grid: for write-bound
    // workloads, simulated time is monotone non-increasing as NVRAM
    // channels grow, on the identical operation stream.
    for (WorkloadKind w : {WorkloadKind::Sps, WorkloadKind::HashRand}) {
        Cycles prev = ~Cycles{0};
        for (unsigned channels : {1u, 2u, 4u, 8u}) {
            const RunResult r = runChannelCell(w, channels);
            EXPECT_GT(r.committedTxs, 0u);
            EXPECT_LE(r.cycles, prev)
                << workloadKindName(w) << " at " << channels
                << " channel(s)";
            prev = r.cycles;
        }
    }
}

TEST(ChannelScaling, ChannelLayoutDoesNotChangeWriteCounts)
{
    // Channels change timing, never traffic: the Figure 6/7 write
    // accounting must be identical at any channel count.
    const RunResult one = runChannelCell(WorkloadKind::Sps, 1);
    const RunResult eight = runChannelCell(WorkloadKind::Sps, 8);
    EXPECT_EQ(one.committedTxs, eight.committedTxs);
    EXPECT_EQ(one.nvramWrites, eight.nvramWrites);
    EXPECT_EQ(one.loggingWrites, eight.loggingWrites);
    EXPECT_EQ(one.dataWrites, eight.dataWrites);
    EXPECT_EQ(one.avgLinesPerTx, eight.avgLinesPerTx);
}

} // namespace
