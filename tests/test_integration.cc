/**
 * @file
 * Integration tests: every workload runs against every backend and the
 * persistent image must match the workload's reference model; the
 * driver's metrics must be sane; multi-core runs must stay correct.
 */

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/system_builder.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

SspConfig
integrationConfig(unsigned cores)
{
    SspConfig cfg = smallConfig(cores);
    cfg.heapPages = 4096;
    cfg.shadowPoolPages = 4096;
    cfg.logPages = 2048;
    return cfg;
}

WorkloadScale
smallScale()
{
    WorkloadScale scale;
    scale.keySpace = 512;
    scale.spsElements = 65536; // 128 pages: same-page swaps are rare
    return scale;
}

struct Combo
{
    BackendKind backend;
    WorkloadKind workload;
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name =
        std::string(backendKindName(info.param.backend)) + "_" +
        workloadKindName(info.param.workload);
    for (auto &ch : name) {
        if (ch == '-')
            ch = '_';
    }
    return name;
}

class BackendWorkloadTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(BackendWorkloadTest, RunsAndVerifies)
{
    const Combo combo = GetParam();
    auto exp = buildExperiment(combo.backend, combo.workload,
                               integrationConfig(1), smallScale());
    RunResult res = runExperiment(exp, 300, 1);

    EXPECT_TRUE(exp.workload->verify())
        << backendKindName(combo.backend) << " image mismatch on "
        << workloadKindName(combo.workload);
    EXPECT_GT(res.cycles, 0u);
    // Read-only transactions (Vacation with no availability, Memcached
    // GET) still commit, so commits can exceed 0 but not 300 for
    // microbenchmarks.
    EXPECT_GT(res.committedTxs, 0u);
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    const std::vector<BackendKind> backends = {
        BackendKind::Ssp, BackendKind::UndoLog, BackendKind::RedoLog,
        BackendKind::Shadow};
    std::vector<WorkloadKind> workloads = microbenchmarks();
    for (WorkloadKind w : realWorkloads())
        workloads.push_back(w);
    for (BackendKind b : backends) {
        for (WorkloadKind w : workloads)
            out.push_back({b, w});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(AllBackendsAllWorkloads, BackendWorkloadTest,
                         ::testing::ValuesIn(allCombos()), comboName);

TEST(IntegrationMultiCore, FourCoreRunVerifies)
{
    for (BackendKind b :
         {BackendKind::Ssp, BackendKind::UndoLog, BackendKind::RedoLog}) {
        auto exp = buildExperiment(b, WorkloadKind::BTreeRand,
                                   integrationConfig(4), smallScale());
        RunResult res = runExperiment(exp, 400, 4);
        EXPECT_TRUE(exp.workload->verify()) << backendKindName(b);
        EXPECT_EQ(res.committedTxs, 400u);
    }
}

TEST(IntegrationMetrics, SspWritesLessLoggingTrafficThanUndo)
{
    auto scale = smallScale();
    auto ssp_exp = buildExperiment(BackendKind::Ssp, WorkloadKind::BTreeRand,
                                   integrationConfig(1), scale);
    auto undo_exp =
        buildExperiment(BackendKind::UndoLog, WorkloadKind::BTreeRand,
                        integrationConfig(1), scale);
    RunResult ssp_res = runExperiment(ssp_exp, 500, 1);
    RunResult undo_res = runExperiment(undo_exp, 500, 1);

    // The headline claim: metadata journaling writes far less than
    // data logging (paper: 7.6x less than undo on average).
    EXPECT_LT(ssp_res.loggingWrites * 2, undo_res.loggingWrites);
    // And SSP's total traffic is lower too.
    EXPECT_LT(ssp_res.nvramWrites, undo_res.nvramWrites);
}

TEST(IntegrationMetrics, SspFasterThanUndoLog)
{
    auto scale = smallScale();
    auto ssp_exp = buildExperiment(BackendKind::Ssp, WorkloadKind::BTreeRand,
                                   integrationConfig(1), scale);
    auto undo_exp =
        buildExperiment(BackendKind::UndoLog, WorkloadKind::BTreeRand,
                        integrationConfig(1), scale);
    RunResult ssp_res = runExperiment(ssp_exp, 500, 1);
    RunResult undo_res = runExperiment(undo_exp, 500, 1);
    EXPECT_GT(ssp_res.tps(), undo_res.tps());
}

TEST(IntegrationMetrics, CharacterizationMatchesTable3Shape)
{
    // SPS modifies exactly 2 lines on 2 pages per transaction.
    auto exp = buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                               integrationConfig(1), smallScale());
    RunResult res = runExperiment(exp, 200, 1);
    EXPECT_NEAR(res.avgLinesPerTx, 2.0, 0.1);
    EXPECT_NEAR(res.avgPagesPerTx, 2.0, 0.1);
}

TEST(IntegrationMetrics, ShadowPagingAmplifiesWrites)
{
    auto scale = smallScale();
    auto ssp_exp = buildExperiment(BackendKind::Ssp, WorkloadKind::HashRand,
                                   integrationConfig(1), scale);
    auto shadow_exp =
        buildExperiment(BackendKind::Shadow, WorkloadKind::HashRand,
                        integrationConfig(1), scale);
    RunResult ssp_res = runExperiment(ssp_exp, 200, 1);
    RunResult shadow_res = runExperiment(shadow_exp, 200, 1);
    // Conventional shadow paging writes whole pages: at least several
    // times SSP's traffic (the paper says up to 64x more lines).
    EXPECT_GT(shadow_res.nvramWrites, 4 * ssp_res.nvramWrites);
}

} // namespace
