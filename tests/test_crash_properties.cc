/**
 * @file
 * Property-based crash-injection tests.
 *
 * The driver runs a workload for a while, crashes at a pseudo-random
 * transaction boundary, recovers, and checks that the persistent image
 * matches the all-committed-transactions oracle — for every backend and
 * several workloads and seeds (parameterized sweep).  This validates the
 * paper's central correctness claim: atomicity + durability under power
 * failure, for SSP and for the baselines it is compared against.
 */

#include <gtest/gtest.h>

#include "baselines/backend_factory.hh"
#include "common/rng.hh"
#include "core/recovery.hh"
#include "core/ssp_system.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

/**
 * A raw transaction generator with an explicit oracle: each transaction
 * writes a pseudo-random set of (address, value) pairs; the oracle map
 * is updated only when commit() returns.  This bypasses the data
 * structures so every byte can be checked exactly.
 */
class OracleDriver
{
  public:
    OracleDriver(AtomicityBackend &be, std::uint64_t seed)
        : be_(be), rng_(seed)
    {
    }

    /** Run one committed transaction of 1..12 line-sized writes. */
    void
    runCommittedTx()
    {
        const unsigned writes = 1 + rng_.nextBounded(12);
        std::vector<std::pair<Addr, std::uint64_t>> pending;
        be_.begin(0);
        for (unsigned i = 0; i < writes; ++i) {
            const Addr addr = randomAddr();
            const std::uint64_t value = rng_.next();
            be_.store(0, addr, &value, sizeof(value));
            pending.emplace_back(addr, value);
        }
        be_.commit(0);
        for (auto &[addr, value] : pending)
            oracle_[addr] = value;
    }

    /** Open a transaction and leave it unfinished (to be crashed). */
    void
    openDanglingTx()
    {
        const unsigned writes = 1 + rng_.nextBounded(12);
        be_.begin(0);
        for (unsigned i = 0; i < writes; ++i) {
            const std::uint64_t value = rng_.next();
            be_.store(0, randomAddr(), &value, sizeof(value));
        }
        // no commit — the crash will hit this transaction
    }

    /** Check every oracle byte and that untouched cells read zero. */
    bool
    checkOracle()
    {
        for (const auto &[addr, value] : oracle_) {
            std::uint64_t v = 0;
            be_.loadRaw(addr, &v, sizeof(v));
            if (v != value)
                return false;
        }
        return true;
    }

  private:
    Addr
    randomAddr()
    {
        // 40 pages x 64 lines, 8-byte aligned slot at line start.
        const Vpn page = 1 + rng_.nextBounded(40);
        const unsigned line = static_cast<unsigned>(rng_.nextBounded(64));
        return pageBase(page) + line * kLineSize;
    }

    AtomicityBackend &be_;
    Rng rng_;
    std::map<Addr, std::uint64_t> oracle_;
};

struct CrashCase
{
    BackendKind backend;
    std::uint64_t seed;
    unsigned txsBeforeCrash;
    bool danglingTx;
};

std::string
crashCaseName(const ::testing::TestParamInfo<CrashCase> &info)
{
    std::string n = backendKindName(info.param.backend);
    for (auto &ch : n)
        if (ch == '-')
            ch = '_';
    return n + "_s" + std::to_string(info.param.seed) + "_t" +
           std::to_string(info.param.txsBeforeCrash) +
           (info.param.danglingTx ? "_dangling" : "_clean");
}

class CrashPropertyTest : public ::testing::TestWithParam<CrashCase>
{
};

TEST_P(CrashPropertyTest, CommittedPrefixSurvivesCrash)
{
    const CrashCase c = GetParam();
    auto be = makeBackend(c.backend, smallConfig());
    OracleDriver driver(*be, c.seed);

    for (unsigned i = 0; i < c.txsBeforeCrash; ++i)
        driver.runCommittedTx();
    if (c.danglingTx)
        driver.openDanglingTx();

    be->crash();
    be->recover();
    EXPECT_TRUE(driver.checkOracle());

    // The system must remain usable: run more transactions and check
    // again.
    for (unsigned i = 0; i < 5; ++i)
        driver.runCommittedTx();
    EXPECT_TRUE(driver.checkOracle());
}

std::vector<CrashCase>
crashCases()
{
    std::vector<CrashCase> cases;
    for (BackendKind b : {BackendKind::Ssp, BackendKind::UndoLog,
                          BackendKind::RedoLog, BackendKind::Shadow}) {
        for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
            for (unsigned txs : {0u, 7u, 40u}) {
                cases.push_back({b, seed, txs, false});
                cases.push_back({b, seed, txs, true});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashPropertyTest,
                         ::testing::ValuesIn(crashCases()), crashCaseName);

// ---- SSP-specific deep crash sweep: crash after every k-th tx -----------

class SspCrashSweepTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SspCrashSweepTest, CrashEveryKTransactions)
{
    const unsigned k = GetParam();
    auto sys = std::make_unique<SspSystem>(smallConfig());
    OracleDriver driver(*sys, 1000 + k);

    for (unsigned round = 0; round < 6; ++round) {
        for (unsigned i = 0; i < k; ++i)
            driver.runCommittedTx();
        driver.openDanglingTx();
        sys->crash();
        sys->recover();
        RecoveryReport report = verifyRecoveredState(*sys);
        EXPECT_TRUE(report.ok);
        for (const auto &v : report.violations)
            ADD_FAILURE() << "round " << round << ": " << v;
        ASSERT_TRUE(driver.checkOracle()) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(K, SspCrashSweepTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

} // namespace
