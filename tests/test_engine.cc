/**
 * @file
 * Unit tests of the SSP engine: the atomic-update path (Figure 4),
 * commit and abort semantics, bitmap invariants, TLB-driven metadata
 * fetches, write-set overflow, and multi-page transactions.
 */

#include <gtest/gtest.h>

#include "core/recovery.hh"
#include "core/ssp_system.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

class SspEngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys = std::make_unique<SspSystem>(smallConfig());
    }

    SspCacheEntry &
    entryFor(Addr vaddr)
    {
        SlotId sid = sys->controller().cache().findSlot(pageOf(vaddr));
        EXPECT_NE(sid, kInvalidSlot);
        return sys->controller().cache().entry(sid);
    }

    std::unique_ptr<SspSystem> sys;
};

TEST_F(SspEngineTest, CommittedStoreIsReadable)
{
    const Addr addr = 0x1040;
    txWrite64(*sys, 0, addr, 0xdeadbeef);
    EXPECT_EQ(raw64(*sys, addr), 0xdeadbeefu);
    EXPECT_EQ(timed64(*sys, 0, addr), 0xdeadbeefu);
}

TEST_F(SspEngineTest, FirstWriteFlipsCurrentBitOnly)
{
    const Addr addr = 0x2000; // page 2, line 0
    sys->begin(0);
    std::uint64_t v = 7;
    sys->store(0, addr, &v, sizeof(v));

    SspCacheEntry &e = entryFor(addr);
    EXPECT_TRUE(e.current.test(0));    // flipped to P1
    EXPECT_FALSE(e.committed.test(0)); // durable state unchanged
    EXPECT_EQ(e.coreRefCount, 1u);

    sys->commit(0);
    EXPECT_TRUE(e.committed.test(0)); // commit XORs updated in
    EXPECT_TRUE(e.current.test(0));
    EXPECT_EQ(e.coreRefCount, 0u);
}

TEST_F(SspEngineTest, SecondWriteToSameLineDoesNotFlipAgain)
{
    const Addr addr = 0x3000;
    sys->begin(0);
    std::uint64_t v = 1;
    sys->store(0, addr, &v, sizeof(v));
    SspCacheEntry &e = entryFor(addr);
    const Bitmap64 current_after_first = e.current;

    v = 2;
    sys->store(0, addr, &v, sizeof(v));
    EXPECT_EQ(e.current.raw(), current_after_first.raw());
    sys->commit(0);
    EXPECT_EQ(raw64(*sys, addr), 2u);
}

TEST_F(SspEngineTest, WritesAlternateBetweenPhysicalPages)
{
    const Addr addr = 0x4000;
    txWrite64(*sys, 0, addr, 10);
    SspCacheEntry &e = entryFor(addr);
    EXPECT_TRUE(e.committed.test(0)); // first commit landed in P1

    txWrite64(*sys, 0, addr, 20);
    EXPECT_FALSE(e.committed.test(0)); // second commit back in P0
    EXPECT_EQ(raw64(*sys, addr), 20u);

    // Both physical copies exist; the stale one holds the old value.
    PhysMem &mem = sys->machine().mem();
    EXPECT_EQ(mem.read64(lineAddr(e.ppn0, 0)), 20u);
    EXPECT_EQ(mem.read64(lineAddr(e.ppn1, 0)), 10u);
}

TEST_F(SspEngineTest, AbortRestoresCommittedView)
{
    const Addr addr = 0x5000;
    txWrite64(*sys, 0, addr, 111);

    sys->begin(0);
    std::uint64_t v = 222;
    sys->store(0, addr, &v, sizeof(v));
    // Speculative value visible inside the transaction...
    EXPECT_EQ(timed64(*sys, 0, addr), 222u);
    sys->abort(0);

    // ...but the committed value is restored after abort.
    EXPECT_EQ(raw64(*sys, addr), 111u);
    EXPECT_EQ(timed64(*sys, 0, addr), 111u);
    SspCacheEntry &e = entryFor(addr);
    EXPECT_EQ(e.current.raw(), e.committed.raw());
    EXPECT_EQ(e.coreRefCount, 0u);
}

TEST_F(SspEngineTest, PartialLineWritePreservesRestOfLine)
{
    const Addr line = 0x6000;
    // Commit a full-line pattern first.
    sys->begin(0);
    std::uint8_t pattern[kLineSize];
    for (unsigned i = 0; i < kLineSize; ++i)
        pattern[i] = static_cast<std::uint8_t>(i);
    sys->store(0, line, pattern, sizeof(pattern));
    sys->commit(0);

    // Overwrite bytes 8..15 only; line-level CoW must carry the rest.
    txWrite64(*sys, 0, line + 8, 0xffffffffffffffffull);

    std::uint8_t out[kLineSize];
    sys->loadRaw(line, out, sizeof(out));
    for (unsigned i = 0; i < kLineSize; ++i) {
        if (i >= 8 && i < 16)
            EXPECT_EQ(out[i], 0xff);
        else
            EXPECT_EQ(out[i], static_cast<std::uint8_t>(i));
    }
}

TEST_F(SspEngineTest, MultiPageTransactionIsAtomic)
{
    sys->begin(0);
    for (unsigned p = 0; p < 8; ++p) {
        std::uint64_t v = 100 + p;
        sys->store(0, pageBase(10 + p), &v, sizeof(v));
    }
    sys->commit(0);
    for (unsigned p = 0; p < 8; ++p)
        EXPECT_EQ(raw64(*sys, pageBase(10 + p)), 100u + p);
    EXPECT_EQ(sys->engine(0).stats().commits, 1u);
}

TEST_F(SspEngineTest, TransactionSeesOwnWritesAcrossLines)
{
    sys->begin(0);
    for (unsigned i = 0; i < 16; ++i) {
        std::uint64_t v = i * 3;
        sys->store(0, 0x7000 + i * kLineSize, &v, sizeof(v));
    }
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(timed64(*sys, 0, 0x7000 + i * kLineSize), i * 3);
    sys->commit(0);
}

TEST_F(SspEngineTest, WriteSetOverflowThrowsAndRollsBack)
{
    sys->begin(0);
    std::uint64_t v = 5;
    bool overflowed = false;
    try {
        // Touch more pages than the write-set buffer holds (64).
        for (unsigned p = 0; p < 100; ++p)
            sys->store(0, pageBase(100 + p), &v, sizeof(v));
    } catch (const TxOverflow &) {
        overflowed = true;
    }
    EXPECT_TRUE(overflowed);
    EXPECT_FALSE(sys->inTx(0));
    // Nothing leaked into the committed state.
    for (unsigned p = 0; p < 100; ++p)
        EXPECT_EQ(raw64(*sys, pageBase(100 + p)), 0u);
    EXPECT_EQ(sys->engine(0).stats().overflows, 1u);
}

TEST_F(SspEngineTest, CommitIsBitwiseXorOfUpdatedIntoCommitted)
{
    const Addr page = pageBase(30);
    txWrite64(*sys, 0, page + 0 * kLineSize, 1);

    sys->begin(0);
    std::uint64_t v = 2;
    sys->store(0, page + 0 * kLineSize, &v, sizeof(v)); // line 0 again
    sys->store(0, page + 5 * kLineSize, &v, sizeof(v)); // line 5 fresh
    SspCacheEntry &e = entryFor(page);
    const Bitmap64 before = e.committed;
    const Bitmap64 updated = sys->engine(0).writeSet().entries()[0].updated;
    sys->commit(0);
    EXPECT_EQ(e.committed.raw(), (before ^ updated).raw());
}

TEST_F(SspEngineTest, FlipBroadcastsAreCounted)
{
    auto cfg = smallConfig(2);
    SspSystem two(cfg);
    two.begin(1);
    std::uint64_t v = 9;
    two.store(1, 0x8000, &v, sizeof(v));
    two.store(1, 0x8000, &v, sizeof(v)); // no second broadcast
    two.store(1, 0x8040, &v, sizeof(v)); // second line -> broadcast
    two.commit(1);
    EXPECT_EQ(two.machine().coherence().flipMessages(), 2u);
}

TEST_F(SspEngineTest, TlbMissFetchesMetadataAndRefcounts)
{
    const Addr addr = 0x9000;
    txWrite64(*sys, 0, addr, 1);
    SspCacheEntry &e = entryFor(addr);
    EXPECT_EQ(e.tlbRefCount, 1u);
    EXPECT_GE(sys->engine(0).stats().tlbMisses, 1u);
}

TEST_F(SspEngineTest, TlbEvictionTriggersConsolidation)
{
    // Touch more pages than the TLB holds; early pages must consolidate
    // (their committed bitmaps return to zero and data merges into P0).
    const unsigned tlb_entries = sys->cfg().tlbEntries;
    for (unsigned p = 0; p < tlb_entries + 8; ++p)
        txWrite64(*sys, 0, pageBase(p + 1) + 8, p);

    EXPECT_GT(sys->controller().consolidator().consolidations(), 0u);
    // All data still readable.
    for (unsigned p = 0; p < tlb_entries + 8; ++p)
        EXPECT_EQ(raw64(*sys, pageBase(p + 1) + 8), p);
}

TEST_F(SspEngineTest, StatsAccumulate)
{
    txWrite64(*sys, 0, 0xa000, 1);
    txWrite64(*sys, 0, 0xa040, 2);
    const EngineStats &s = sys->engine(0).stats();
    EXPECT_EQ(s.commits, 2u);
    EXPECT_EQ(s.atomicStores, 2u);
    EXPECT_EQ(s.firstWrites, 2u);
    EXPECT_EQ(s.aborts, 0u);
}

TEST_F(SspEngineTest, ClockAdvancesOnCommit)
{
    const Cycles before = sys->machine().clock(0);
    txWrite64(*sys, 0, 0xb000, 1);
    EXPECT_GT(sys->machine().clock(0), before);
}

TEST_F(SspEngineTest, JournalReceivesUpdateAndCommitRecords)
{
    txWrite64(*sys, 0, 0xc000, 1);
    // One Update + one Commit record per transaction.
    const auto &journal = sys->controller().journal();
    EXPECT_GE(journal.persistedBytes(), 48u);
    EXPECT_GT(journal.lineWrites(), 0u);
}

} // namespace
