/**
 * @file
 * Unit tests for the simulation layer: configuration layout math,
 * factories, the experiment builder, run metrics, and report
 * formatting.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "sim/driver.hh"
#include "sim/report.hh"
#include "sim/system_builder.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

TEST(Config, LayoutIsDisjointAndOrdered)
{
    SspConfig cfg;
    EXPECT_EQ(cfg.shadowPoolBase(), cfg.heapPages);
    EXPECT_EQ(cfg.journalBase(),
              pageBase(cfg.heapPages + cfg.shadowPoolPages));
    EXPECT_EQ(cfg.logBase(), cfg.journalBase() + cfg.journalBytes());
    EXPECT_EQ(cfg.nvramPages(), cfg.heapPages + cfg.shadowPoolPages +
                                    cfg.journalPages + cfg.logPages);
    // Journal and log regions do not overlap.
    EXPECT_GE(cfg.logBase(), cfg.journalBase() + cfg.journalBytes());
}

TEST(Config, EffectiveSlotsFollowPaperFormula)
{
    SspConfig cfg;
    cfg.numCores = 4;
    cfg.tlbEntries = 64;
    cfg.sspCacheOverprovision = 32;
    EXPECT_EQ(cfg.effectiveSspSlots(), 4u * 64 + 32);
    cfg.sspCacheSlots = 100; // explicit override wins
    EXPECT_EQ(cfg.effectiveSspSlots(), 100u);
}

TEST(Config, NvramLatencyMultiplierAppliesToBoth)
{
    SspConfig cfg;
    cfg.nvramLatencyMultiplier = 3.0;
    const MemTimingParams p = cfg.effectiveNvram();
    EXPECT_EQ(p.readLatency, static_cast<Cycles>(185 * 3));
    EXPECT_EQ(p.writeLatency, static_cast<Cycles>(185 * 3));
    cfg.nvramLatencyMultiplier = 0;
    EXPECT_EQ(cfg.effectiveNvram().writeLatency, nsToCycles(200));
}

TEST(Config, NsToCycles)
{
    EXPECT_EQ(nsToCycles(50), 185u);
    EXPECT_EQ(nsToCycles(200), 740u);
}

TEST(Factories, BackendNamesRoundTrip)
{
    for (BackendKind kind :
         {BackendKind::Ssp, BackendKind::UndoLog, BackendKind::RedoLog,
          BackendKind::Shadow}) {
        EXPECT_EQ(parseBackendKind(backendKindName(kind)), kind);
    }
    EXPECT_EQ(parseBackendKind("undo"), BackendKind::UndoLog);
    EXPECT_THROW(parseBackendKind("bogus"), std::runtime_error);
}

TEST(Factories, WorkloadNamesRoundTrip)
{
    std::vector<WorkloadKind> all = microbenchmarks();
    for (WorkloadKind w : realWorkloads())
        all.push_back(w);
    EXPECT_EQ(all.size(), 9u);
    for (WorkloadKind w : all)
        EXPECT_EQ(parseWorkloadKind(workloadKindName(w)), w);
    EXPECT_THROW(parseWorkloadKind("nope"), std::runtime_error);
}

TEST(Factories, PaperBackendsInPlotOrder)
{
    auto order = paperBackends();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], BackendKind::UndoLog);
    EXPECT_EQ(order[1], BackendKind::RedoLog);
    EXPECT_EQ(order[2], BackendKind::Ssp);
}

TEST(Driver, MetricsAreDeltasOverSetup)
{
    SspConfig cfg = smallConfig();
    cfg.heapPages = 2048;
    cfg.shadowPoolPages = 2048;
    WorkloadScale scale;
    scale.keySpace = 128;
    auto exp = buildExperiment(BackendKind::Ssp, WorkloadKind::HashRand,
                               cfg, scale);
    // Setup already committed transactions and wrote NVRAM...
    EXPECT_GT(exp.baseCommits, 0u);
    EXPECT_GT(exp.baseNvramWrites, 0u);
    // ...but the run result reports only the measured phase.
    RunResult res = runExperiment(exp, 50, 1);
    EXPECT_EQ(res.committedTxs, 50u);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.nvramWrites, 0u);
    EXPECT_LT(res.nvramWrites, exp.baseNvramWrites);
}

TEST(Driver, TpsMatchesCyclesAndFrequency)
{
    RunResult res;
    res.committedTxs = 1000;
    res.cycles = static_cast<Cycles>(kCoreGHz * 1e9); // one second
    EXPECT_NEAR(res.tps(), 1000.0, 1e-6);
    res.cycles = 0;
    EXPECT_EQ(res.tps(), 0.0);
}

TEST(Driver, WritesPerTx)
{
    RunResult res;
    res.committedTxs = 4;
    res.nvramWrites = 10;
    EXPECT_DOUBLE_EQ(res.writesPerTx(), 2.5);
    res.committedTxs = 0;
    EXPECT_EQ(res.writesPerTx(), 0.0);
}

TEST(Report, TableAlignsColumns)
{
    TextTable table({"a", "workload"});
    table.addRow({"x", "BTree"});
    table.addRow({"longer", "y"});
    std::string out = table.render();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("workload"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Report, RowWidthMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), std::logic_error);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
    EXPECT_EQ(fmtNormalized(3.0, 2.0, 2), "1.50");
    EXPECT_EQ(fmtNormalized(3.0, 0.0), "n/a");
    EXPECT_NE(banner("hi").find("= hi ="), std::string::npos);
}

TEST(Builder, HeapGuardPageStaysUnmapped)
{
    SspConfig cfg = smallConfig();
    cfg.heapPages = 2048;
    cfg.shadowPoolPages = 2048;
    WorkloadScale scale;
    scale.keySpace = 64;
    auto exp = buildExperiment(BackendKind::Ssp, WorkloadKind::HashRand,
                               cfg, scale);
    // The allocator starts at page 1; address 0 is the null guard.
    EXPECT_GE(exp.alloc->base(), kPageSize);
}

TEST(Builder, WorksForEveryBackend)
{
    SspConfig cfg = smallConfig();
    cfg.heapPages = 2048;
    cfg.shadowPoolPages = 2048;
    WorkloadScale scale;
    scale.keySpace = 64;
    for (BackendKind kind :
         {BackendKind::Ssp, BackendKind::UndoLog, BackendKind::RedoLog,
          BackendKind::Shadow}) {
        auto exp =
            buildExperiment(kind, WorkloadKind::Sps, cfg, scale);
        EXPECT_TRUE(exp.workload->verify()) << backendKindName(kind);
    }
}

TEST(Machine, SyncClocksAligns)
{
    Machine m(smallConfig(4));
    m.clock(0) = 100;
    m.clock(2) = 500;
    EXPECT_EQ(m.maxClock(), 500u);
    m.syncClocks();
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(m.clock(c), 500u);
}

TEST(Machine, PowerFailClearsVolatileState)
{
    Machine m(smallConfig(1));
    m.caches().write(0, 0x1000, 0);
    TlbEntry e;
    e.valid = true;
    e.vpn = 3;
    m.tlb(0).insert(e);
    m.powerFail();
    EXPECT_FALSE(m.caches().isCached(0, 0x1000));
    EXPECT_EQ(m.tlb(0).lookup(3), nullptr);
}

} // namespace
