/**
 * @file
 * Unit tests for the SSP cache: slot allocation/eviction, reference
 * counting behavior, the L3-partition latency model, and the
 * persistent half.
 */

#include <gtest/gtest.h>

#include "nvram/ssp_cache.hh"

using namespace ssp;

namespace
{

SspCacheLatencyParams
lat(unsigned hot_entries = 4, Cycles hit = 27, Cycles miss = 185,
    Cycles fixed = 0)
{
    return SspCacheLatencyParams{hot_entries, hit, miss, fixed};
}

TEST(SspCache, AllocateAndFind)
{
    SspCache cache(8, lat());
    EXPECT_EQ(cache.findSlot(5), kInvalidSlot);
    SlotId sid = cache.allocateSlot(5);
    EXPECT_EQ(cache.findSlot(5), sid);
    EXPECT_TRUE(cache.entry(sid).valid);
    EXPECT_EQ(cache.entry(sid).vpn, 5u);
    EXPECT_EQ(cache.validEntries(), 1u);
}

TEST(SspCache, FreeSlotClears)
{
    SspCache cache(8, lat());
    SlotId sid = cache.allocateSlot(5);
    cache.freeSlot(sid);
    EXPECT_EQ(cache.findSlot(5), kInvalidSlot);
    EXPECT_EQ(cache.validEntries(), 0u);
}

TEST(SspCache, EvictsConsolidatedUnreferencedWhenFull)
{
    SspCache cache(2, lat());
    SlotId a = cache.allocateSlot(1);
    SlotId b = cache.allocateSlot(2);
    // Slot a is consolidated (committed zero) and unreferenced; slot b
    // is TLB-referenced.
    cache.entry(b).tlbRefCount = 1;

    SspCacheEntry displaced;
    SlotId c = cache.allocateSlot(3, &displaced);
    EXPECT_TRUE(displaced.valid);
    EXPECT_EQ(displaced.vpn, 1u);
    EXPECT_EQ(c, a); // reused the evicted slot
    EXPECT_EQ(cache.findSlot(1), kInvalidSlot);
    EXPECT_EQ(cache.findSlot(2), b);
}

TEST(SspCache, GrowsWhenNoEntryIsEvictable)
{
    SspCache cache(2, lat());
    SlotId a = cache.allocateSlot(1);
    SlotId b = cache.allocateSlot(2);
    cache.entry(a).tlbRefCount = 1;
    cache.entry(b).coreRefCount = 1;
    SlotId c = cache.allocateSlot(3);
    EXPECT_NE(c, kInvalidSlot);
    EXPECT_EQ(cache.numSlots(), 3u);
}

TEST(SspCache, ReferencedDirtyEntriesNotEvicted)
{
    SspCache cache(2, lat());
    SlotId a = cache.allocateSlot(1);
    cache.entry(a).committed.set(3); // not consolidated
    cache.allocateSlot(2);
    SspCacheEntry displaced;
    cache.allocateSlot(3, &displaced);
    // Only vpn 2 (consolidated) may have been displaced.
    if (displaced.valid) {
        EXPECT_EQ(displaced.vpn, 2u);
    }
    EXPECT_NE(cache.findSlot(1), kInvalidSlot);
}

TEST(SspCache, HotSetLatencyModel)
{
    SspCache cache(8, lat(2, 27, 185));
    SlotId a = cache.allocateSlot(1);
    SlotId b = cache.allocateSlot(2);
    SlotId c = cache.allocateSlot(3);

    EXPECT_EQ(cache.access(a, 0), 185u); // cold
    EXPECT_EQ(cache.access(a, 0), 27u);  // hot
    cache.access(b, 0);                  // hot set now {a,b} -> {b,a}
    cache.access(c, 0);                  // evicts a from the hot set
    EXPECT_EQ(cache.access(a, 0), 185u); // cold again
    EXPECT_GT(cache.hotMisses(), 0u);
    EXPECT_GT(cache.hotHits(), 0u);
}

TEST(SspCache, FixedLatencyOverride)
{
    SspCache cache(8, lat(2, 27, 185, 60));
    SlotId a = cache.allocateSlot(1);
    EXPECT_EQ(cache.access(a, 100), 160u);
    EXPECT_EQ(cache.access(a, 100), 160u);
}

TEST(SspCache, PersistentHalfSurvivesPowerFail)
{
    SspCache cache(4, lat());
    SlotId sid = cache.allocateSlot(7);
    cache.entry(sid).ppn0 = 70;
    cache.entry(sid).ppn1 = 71;
    cache.entry(sid).committed = Bitmap64(0xf0);

    PersistentSlot &p = cache.persistentSlot(sid);
    p.valid = true;
    p.vpn = 7;
    p.ppn0 = 70;
    p.ppn1 = 71;
    p.committed = Bitmap64(0xf0);

    cache.powerFail();
    EXPECT_EQ(cache.validEntries(), 0u);
    EXPECT_EQ(cache.findSlot(7), kInvalidSlot);

    cache.reloadFromPersistent(sid);
    const SspCacheEntry &e = cache.entry(sid);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.vpn, 7u);
    EXPECT_EQ(e.ppn0, 70u);
    EXPECT_EQ(e.committed.raw(), 0xf0u);
    // Section 4.4: current is initialized from committed.
    EXPECT_EQ(e.current.raw(), 0xf0u);
    EXPECT_EQ(e.tlbRefCount, 0u);
    EXPECT_EQ(cache.findSlot(7), sid);
}

TEST(SspCache, ValidSlotsEnumerates)
{
    SspCache cache(4, lat());
    cache.allocateSlot(1);
    cache.allocateSlot(2);
    EXPECT_EQ(cache.validSlots().size(), 2u);
}

} // namespace
