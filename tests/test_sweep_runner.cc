/**
 * @file
 * Sweep subsystem tests: grid construction, determinism of the parallel
 * runner (identical results for any worker count), and JSON round-trip
 * of the emitted BENCH_*.json report.
 */

#include <cstdio>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sweep/sweep_grid.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"

namespace ssp::sweep::test
{
namespace
{

/** A tiny fig5 grid that keeps the suite fast on one core. */
SweepGridOptions
tinyOptions()
{
    SweepGridOptions opts;
    opts.backends = {BackendKind::UndoLog, BackendKind::Ssp};
    opts.workloads = {WorkloadKind::BTreeRand, WorkloadKind::Sps};
    opts.txs = 80;
    opts.scale.keySpace = 256;
    opts.scale.spsElements = 1024;
    opts.scale.seed = 7;
    return opts;
}

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.committedTxs, b.committedTxs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nvramWrites, b.nvramWrites);
    EXPECT_EQ(a.loggingWrites, b.loggingWrites);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_EQ(a.consolidationWrites, b.consolidationWrites);
    EXPECT_EQ(a.checkpointWrites, b.checkpointWrites);
    EXPECT_EQ(a.journalWrites, b.journalWrites);
    EXPECT_EQ(a.avgLinesPerTx, b.avgLinesPerTx);
    EXPECT_EQ(a.avgPagesPerTx, b.avgPagesPerTx);
    EXPECT_EQ(a.maxPagesPerTx, b.maxPagesPerTx);
}

TEST(SweepGrid, KnownFiguresBuildNonEmptyGrids)
{
    for (const std::string &figure : knownFigures()) {
        const auto cells = buildFigureGrid(figure);
        ASSERT_FALSE(cells.empty()) << figure;
        for (const SweepCell &cell : cells) {
            EXPECT_EQ(cell.figure, figure);
            EXPECT_GT(cell.txs, 0u);
        }
    }
    EXPECT_THROW(buildFigureGrid("fig42"), std::runtime_error);
}

TEST(SweepGrid, UnknownFigureErrorListsEveryKnownGrid)
{
    // A typo'd --figure must be a one-round-trip fix: the error names
    // all the grids the caller could have meant.
    try {
        buildFigureGrid("fig42");
        FAIL() << "unknown figure did not throw";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("fig42"), std::string::npos);
        EXPECT_NE(msg.find("known grids:"), std::string::npos);
        for (const std::string &figure : knownFigures())
            EXPECT_NE(msg.find(figure), std::string::npos) << figure;
    }
}

TEST(SweepGrid, FigureShapesMatchTheBenches)
{
    // fig5: 2 thread counts x 7 microbenchmarks x 3 designs.
    EXPECT_EQ(buildFigureGrid("fig5").size(), 2u * 7u * 3u);
    // fig8: 2 workloads x 5 latency multipliers x 3 designs.
    EXPECT_EQ(buildFigureGrid("fig8").size(), 2u * 5u * 3u);
    // fig9: 7 REDO-LOG baselines + 5 latencies x 7 workloads of SSP.
    EXPECT_EQ(buildFigureGrid("fig9").size(), 7u + 5u * 7u);
    // table3: SSP across all nine workloads.
    EXPECT_EQ(buildFigureGrid("table3").size(), 9u);
    // scale: 4 core counts x 6 workloads x 3 designs.
    EXPECT_EQ(buildFigureGrid("scale").size(), 4u * 6u * 3u);
    EXPECT_EQ(buildFigureGrid("smoke").size(), 1u);
}

TEST(SweepGrid, FiltersApply)
{
    SweepGridOptions opts;
    opts.backends = {BackendKind::Ssp};
    for (const SweepCell &cell : buildFigureGrid("fig5", opts))
        EXPECT_EQ(cell.backend, BackendKind::Ssp);

    opts.workloads = {WorkloadKind::Sps};
    for (const SweepCell &cell : buildFigureGrid("fig6", opts)) {
        EXPECT_EQ(cell.backend, BackendKind::Ssp);
        EXPECT_EQ(cell.workload, WorkloadKind::Sps);
    }
}

TEST(SweepGrid, SeedsAreStableUnderFiltering)
{
    // A cell's private RNG stream must not depend on which other cells
    // were filtered out of the grid.
    const auto full = buildFigureGrid("fig5");
    SweepGridOptions opts;
    opts.backends = {BackendKind::Ssp};
    const auto filtered = buildFigureGrid("fig5", opts);
    for (const SweepCell &f : filtered) {
        bool matched = false;
        for (const SweepCell &cell : full) {
            if (cell.backend == f.backend &&
                cell.workload == f.workload && cell.cores == f.cores) {
                EXPECT_EQ(cell.scale.seed, f.scale.seed);
                matched = true;
            }
        }
        EXPECT_TRUE(matched);
    }
}

TEST(SweepGrid, ChanGridSweepsChannelCounts)
{
    // Default: 4 channel counts x 7 microbenchmarks x 3 designs.
    EXPECT_EQ(buildFigureGrid("chan").size(), 4u * 7u * 3u);

    SweepGridOptions opts;
    opts.channels = {1, 16};
    const auto cells = buildFigureGrid("chan", opts);
    EXPECT_EQ(cells.size(), 2u * 7u * 3u);
    for (const SweepCell &cell : cells) {
        EXPECT_TRUE(cell.nvramChannels == 1 || cell.nvramChannels == 16);
        const SspConfig cfg = cell.config();
        EXPECT_EQ(cfg.nvramChannels, cell.nvramChannels);
        EXPECT_EQ(cfg.interleaveGranularity, InterleaveGranularity::Page);
    }
}

TEST(SweepGrid, ChanGridSharesSeedsAcrossChannelCounts)
{
    // Cells differing only in channel count must replay the identical
    // operation stream, so channel scaling is measured on the same work.
    const auto cells = buildFigureGrid("chan");
    for (const SweepCell &a : cells) {
        for (const SweepCell &b : cells) {
            if (a.backend == b.backend && a.workload == b.workload) {
                EXPECT_EQ(a.scale.seed, b.scale.seed);
            }
        }
    }
}

TEST(SweepGrid, DevicePresetAppliesToEveryCell)
{
    SweepGridOptions opts = tinyOptions();
    opts.nvramDevice = NvramDevice::SttMramFast;
    const auto cells = buildFigureGrid("fig5", opts);
    ASSERT_FALSE(cells.empty());
    const MemTimingParams preset =
        nvramDevicePreset(NvramDevice::SttMramFast);
    for (const SweepCell &cell : cells) {
        const SspConfig cfg = cell.config();
        EXPECT_EQ(cfg.nvram.name, preset.name);
        EXPECT_EQ(cfg.nvram.writeLatency, preset.writeLatency);
        EXPECT_NE(cell.label().find("stt-mram"), std::string::npos);
    }
}

TEST(SweepRunner, ChanGridIsBitIdenticalForAnyJobCount)
{
    // The determinism guarantee must hold across the channel dimension:
    // N-channel results may not depend on sweep worker scheduling.
    SweepGridOptions opts = tinyOptions();
    opts.channels = {1, 2, 4};
    const auto cells = buildFigureGrid("chan", opts);
    ASSERT_EQ(cells.size(), 3u * 2u * 2u);

    const auto serial = runSweep(cells, 1);
    const auto parallel = runSweep(cells, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        expectSameRun(serial[i].run, parallel[i].run);
    }
    EXPECT_EQ(sweepReport("chan", serial).dump(2),
              sweepReport("chan", parallel).dump(2));
}

TEST(SweepReport, ChanCellsCarryChannelCoordinates)
{
    SweepGridOptions opts = tinyOptions();
    opts.channels = {2};
    const auto cells = buildFigureGrid("chan", opts);
    const auto results = runSweep(cells, 2);
    const Json parsed = Json::parse(sweepReport("chan", results).dump(2));
    ASSERT_EQ(parsed["cells"].size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(parsed["cells"].at(i)["nvram_channels"].asUint(), 2u);
}

TEST(SweepRunner, ParallelRunIsBitIdenticalToSerial)
{
    const auto cells = buildFigureGrid("fig5", tinyOptions());
    ASSERT_EQ(cells.size(), 2u * 2u * 2u);

    const auto serial = runSweep(cells, 1);
    const auto parallel = runSweep(cells, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        expectSameRun(serial[i].run, parallel[i].run);
    }

    // The strongest form of the guarantee: the emitted JSON documents
    // are byte-identical.
    EXPECT_EQ(sweepReport("fig5", serial).dump(2),
              sweepReport("fig5", parallel).dump(2));
}

TEST(SweepRunner, FailingCellIsCapturedNotFatal)
{
    SweepCell cell;
    cell.figure = "fig5";
    cell.backend = BackendKind::Ssp;
    cell.workload = WorkloadKind::Sps;
    cell.base = ssp::test::smallConfig();
    cell.txs = 10;
    // An SPS array far larger than the 2 MiB heap: setup must fail.
    cell.scale.spsElements = std::uint64_t{1} << 24;
    const auto results = runSweep({cell}, 2);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[0].error.empty());
}

TEST(SweepReport, JsonRoundTripsThroughputWritesAndLatency)
{
    const auto cells = buildFigureGrid("fig5", tinyOptions());
    const auto results = runSweep(cells, 2);

    const Json report = sweepReport("fig5", results);
    const Json parsed = Json::parse(report.dump(2));

    EXPECT_EQ(parsed["schema"].asString(), "ssp-bench-report-v1");
    EXPECT_EQ(parsed["figure"].asString(), "fig5");
    ASSERT_EQ(parsed["cells"].size(), results.size());

    for (std::size_t i = 0; i < results.size(); ++i) {
        const Json &c = parsed["cells"].at(i);
        const CellResult &r = results[i];
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(c["backend"].asString(),
                  backendKindName(r.cell.backend));
        EXPECT_EQ(c["workload"].asString(),
                  workloadKindName(r.cell.workload));
        EXPECT_EQ(c["cores"].asUint(), r.cell.cores);
        char seed_hex[32];
        std::snprintf(seed_hex, sizeof(seed_hex), "0x%016llx",
                      static_cast<unsigned long long>(r.cell.scale.seed));
        EXPECT_EQ(c["seed"].asString(), seed_hex);

        const Json &m = c["metrics"];
        // Throughput, NVRAM-write and latency fields must round-trip
        // exactly (shortest-round-trip double formatting).
        EXPECT_EQ(m["tps"].asDouble(), r.run.tps());
        EXPECT_EQ(m["committed_txs"].asUint(), r.run.committedTxs);
        EXPECT_EQ(m["nvram_writes"].asUint(), r.run.nvramWrites);
        EXPECT_EQ(m["logging_writes"].asUint(), r.run.loggingWrites);
        EXPECT_EQ(m["cycles"].asUint(), r.run.cycles);
        EXPECT_EQ(m["avg_cycles_per_tx"].asDouble(),
                  static_cast<double>(r.run.cycles) /
                      static_cast<double>(r.run.committedTxs));
        EXPECT_EQ(m["avg_lines_per_tx"].asDouble(), r.run.avgLinesPerTx);
    }
}

TEST(SweepReport, JsonParserHandlesEscapesAndNesting)
{
    const Json j = Json::parse(
        "{\"a\": [1, 2.5, -3e2, true, false, null],"
        " \"s\": \"line\\nbreak \\\"q\\\" \\u0041\","
        " \"nested\": {\"empty_arr\": [], \"empty_obj\": {}}}");
    EXPECT_EQ(j["a"].size(), 6u);
    EXPECT_EQ(j["a"].at(0).asUint(), 1u);
    EXPECT_EQ(j["a"].at(1).asDouble(), 2.5);
    EXPECT_EQ(j["a"].at(2).asDouble(), -300.0);
    EXPECT_TRUE(j["a"].at(3).asBool());
    EXPECT_FALSE(j["a"].at(4).asBool());
    EXPECT_TRUE(j["a"].at(5).isNull());
    EXPECT_EQ(j["s"].asString(), "line\nbreak \"q\" A");
    EXPECT_EQ(j["nested"]["empty_arr"].size(), 0u);
    EXPECT_EQ(j["nested"]["empty_obj"].size(), 0u);

    // dump -> parse -> dump is the identity.
    EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
    EXPECT_EQ(Json::parse(j.dump(2)).dump(2), j.dump(2));

    EXPECT_THROW(Json::parse("{\"unterminated\": "), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,] trailing"), std::runtime_error);
    EXPECT_THROW(Json::parse("nope"), std::runtime_error);
    // strtod-isms that are not JSON must fail as parse errors too.
    EXPECT_THROW(Json::parse("[1e999]"), std::runtime_error);
    EXPECT_THROW(Json::parse("[inf]"), std::runtime_error);
    EXPECT_THROW(Json::parse("[nan]"), std::runtime_error);
    EXPECT_THROW(Json::parse("[+1]"), std::runtime_error);
    EXPECT_THROW(Json::parse("[0x10]"), std::runtime_error);
}

TEST(SweepReport, NumberFormattingIsAShortestRoundTripFixedPoint)
{
    // emit -> parse -> emit must be the identity for any double, and
    // integers must keep their plain form (no ".0", no exponent) so
    // checked-in reports stay byte-stable.
    const std::vector<double> tricky = {
        0.0,       0.1,     0.3,           1.0 / 3.0,
        2.5e-7,    1e-9,    12345.6789,    0.30000000000000004,
        1e20,      -42.125, 9007199254740992.0,
        5096.887692307692, // a real tps value from BENCH_smoke.json
    };
    for (double v : tricky) {
        const std::string s = jsonNumberToString(v);
        const double parsed = Json::parse("[" + s + "]").at(0).asDouble();
        EXPECT_EQ(parsed, v) << s;
        EXPECT_EQ(jsonNumberToString(parsed), s) << s;
    }
    EXPECT_EQ(jsonNumberToString(4000.0), "4000");
    EXPECT_EQ(jsonNumberToString(0.0), "0");
    EXPECT_EQ(jsonNumberToString(-1.0), "-1");
    EXPECT_EQ(jsonNumberToString(0.5), "0.5");
}

TEST(SweepCli, CountListParsesValidInput)
{
    EXPECT_EQ(parseCountList("--cores", "1,2,4,8"),
              (std::vector<unsigned>{1, 2, 4, 8}));
    EXPECT_EQ(parseCountList("--channels", "64"),
              (std::vector<unsigned>{64}));
}

TEST(SweepCli, EmptyOrInvalidCountListIsFatalNotASilentDefault)
{
    // An empty list must never fall back to the grid default: the
    // sweep CLI exits non-zero instead of "succeeding" on a grid the
    // caller did not ask for.
    EXPECT_THROW(parseCountList("--cores", ""), std::runtime_error);
    EXPECT_THROW(parseCountList("--cores", ",,,"), std::runtime_error);
    EXPECT_THROW(parseCountList("--cores", "0"), std::runtime_error);
    EXPECT_THROW(parseCountList("--cores", "65"), std::runtime_error);
    EXPECT_THROW(parseCountList("--cores", "4x"), std::runtime_error);
    EXPECT_THROW(parseCountList("--channels", "two"),
                 std::runtime_error);
    EXPECT_THROW(parseCountList("--channels", "1,,x"),
                 std::runtime_error);
}

// ---- host wall-clock harness ---------------------------------------------

TEST(SweepReport, HostTimeIsOptInAndKeepsDefaultReportsByteStable)
{
    auto cells = buildFigureGrid("smoke");
    cells[0].txs = 20;
    const auto results = runSweep(cells, 1);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    // The runner always measures; only the report opts in.
    EXPECT_GE(results[0].hostMillis, 0.0);

    const Json plain = sweepReport("smoke", results);
    EXPECT_FALSE(plain.has("host_ms_total"));
    EXPECT_FALSE(plain["cells"].at(0).has("host_ms"));

    const Json timed = sweepReport("smoke", results, true);
    ASSERT_TRUE(timed.has("host_ms_total"));
    ASSERT_TRUE(timed["cells"].at(0).has("host_ms"));
    EXPECT_GE(timed["cells"].at(0)["host_ms"].asDouble(), 0.0);
    EXPECT_GE(timed["host_ms_total"].asDouble(),
              timed["cells"].at(0)["host_ms"].asDouble());

    // Everything except the host-time fields is identical, so --time
    // cannot perturb the simulated metrics it annotates.
    EXPECT_EQ(plain["cells"].at(0)["metrics"].dump(2),
              timed["cells"].at(0)["metrics"].dump(2));
}

// ---- scale64 grid ---------------------------------------------------------

TEST(SweepGrid, Scale64GridCoversTheBigMachineTo64Cores)
{
    const auto cells = buildFigureGrid("scale64");
    // 7 core counts x 6 workloads x 3 backends.
    ASSERT_EQ(cells.size(), 126u);
    std::set<unsigned> cores;
    for (const auto &cell : cells) {
        cores.insert(cell.cores);
        EXPECT_EQ(cell.figure, "scale64");
        // The big machine: SSP cache and journal sized for 64 cores,
        // identical at every core count so the axis measures cores.
        EXPECT_EQ(cell.base.sspCacheSlots, 8192u);
        EXPECT_GE(cell.base.caches.l3.sizeBytes, 64u * 1024 * 1024);
        EXPECT_EQ(cell.txs, 2000u);
    }
    EXPECT_EQ(cores, (std::set<unsigned>{1, 2, 4, 8, 16, 32, 64}));
}

TEST(SweepGrid, Scale64SeedsArePinnedPerWorkloadBackend)
{
    SweepGridOptions all;
    const auto full = buildFigureGrid("scale64", all);
    SweepGridOptions one;
    one.coreCounts = {64};
    const auto only64 = buildFigureGrid("scale64", one);
    ASSERT_EQ(only64.size(), 18u);
    // A 64-core cell replays the same stream whether or not the other
    // core counts were generated (the ordinal is pinned, not
    // positional).
    for (const auto &cell : only64) {
        bool found = false;
        for (const auto &ref : full) {
            if (ref.cores == 64 && ref.backend == cell.backend &&
                ref.workload == cell.workload) {
                EXPECT_EQ(ref.scale.seed, cell.scale.seed);
                found = true;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(SweepReport, Scale64EmitsPerCoreCountersAtEveryCoreCount)
{
    SweepGridOptions opts;
    opts.coreCounts = {1};
    opts.workloads = {WorkloadKind::Sps};
    opts.txs = 20;
    auto cells = buildFigureGrid("scale64", opts);
    ASSERT_EQ(cells.size(), 3u);
    const auto results = runSweep(cells, 1);
    const Json report = sweepReport("scale64", results);
    for (std::size_t i = 0; i < report["cells"].size(); ++i) {
        const Json &m = report["cells"].at(i)["metrics"];
        // Unlike the older grids (whose single-core reports must stay
        // byte-identical to the 1-core model), scale64 keeps one
        // schema across the whole 1..64-core axis.
        EXPECT_TRUE(m.has("core_busy_cycles"));
        EXPECT_TRUE(m.has("coherence_flips"));
        EXPECT_TRUE(m.has("tx_aborts"));
    }
}

// ---- queue grid ------------------------------------------------------------

TEST(SweepGrid, QueueGridCoversLoadsCoresAndSharingScenarios)
{
    const auto cells = buildFigureGrid("queue");
    // 2 core counts x 4 loads x 3 workloads x 3 backends.
    ASSERT_EQ(cells.size(), 2u * 4u * 3u * 3u);
    std::set<unsigned> cores;
    std::set<std::string> labels;
    for (const SweepCell &cell : cells) {
        cores.insert(cell.cores);
        EXPECT_GT(cell.offeredLoad, 0.0);
        EXPECT_EQ(cell.arrival, serve::ArrivalKind::Poisson);
        EXPECT_EQ(cell.txs, 2000u);
        // Big machine at every cell, like scale64.
        EXPECT_EQ(cell.base.sspCacheSlots, 8192u);
        // Partitioned scenario: Hash-Rand shards its keys per core.
        if (cell.workload == WorkloadKind::HashRand)
            EXPECT_EQ(cell.keyShards, cell.cores);
        else
            EXPECT_EQ(cell.keyShards, 1u);
        labels.insert(cell.label());
    }
    EXPECT_EQ(cores, (std::set<unsigned>{4, 16}));
    // Labels carry the open-loop coordinates and stay unique.
    EXPECT_EQ(labels.size(), cells.size());
    EXPECT_TRUE(labels.count("queue/SSP/SPS/c4/poisson/load30"));
    EXPECT_TRUE(labels.count("queue/REDO-LOG/Hash-Rand/c16/p16/"
                             "poisson/load120"));
}

TEST(SweepGrid, QueueSeedsArePinnedAcrossLoadsAndCores)
{
    // Cells differing only in offered load or core count replay the
    // identical key stream — the load axis measures queueing delay on
    // the same work.
    const auto cells = buildFigureGrid("queue");
    for (const SweepCell &a : cells) {
        for (const SweepCell &b : cells) {
            if (a.backend == b.backend && a.workload == b.workload) {
                EXPECT_EQ(a.scale.seed, b.scale.seed);
            }
        }
    }
}

TEST(SweepGrid, QueueOnlyOptionsAreRejectedElsewhere)
{
    SweepGridOptions opts;
    opts.loads = {0.5};
    EXPECT_THROW(buildFigureGrid("fig5", opts), std::runtime_error);
    EXPECT_THROW(buildFigureGrid("scale", opts), std::runtime_error);
    opts.loads.clear();
    opts.coreCounts = {4};
    EXPECT_NO_THROW(buildFigureGrid("queue", opts));
}

TEST(SweepCli, LoadListParsesValidInputAndRejectsGarbage)
{
    EXPECT_EQ(parseLoadList("--load", "0.3,0.6,1.2"),
              (std::vector<double>{0.3, 0.6, 1.2}));
    EXPECT_EQ(parseLoadList("--load", "2"), (std::vector<double>{2.0}));
    EXPECT_THROW(parseLoadList("--load", ""), std::runtime_error);
    EXPECT_THROW(parseLoadList("--load", "0"), std::runtime_error);
    EXPECT_THROW(parseLoadList("--load", "-0.5"), std::runtime_error);
    EXPECT_THROW(parseLoadList("--load", "0.6x"), std::runtime_error);
    EXPECT_THROW(parseLoadList("--load", "eleven"), std::runtime_error);
    EXPECT_THROW(parseLoadList("--load", "12"), std::runtime_error);
}

TEST(SweepReport, QueueCellsCarryTailLatencyMetricsAndCoordinates)
{
    SweepGridOptions opts;
    opts.coreCounts = {2};
    opts.loads = {1.0};
    opts.workloads = {WorkloadKind::Sps};
    opts.backends = {BackendKind::Ssp};
    opts.txs = 120;
    opts.arrival = serve::ArrivalKind::Bursty;
    const auto cells = buildFigureGrid("queue", opts);
    ASSERT_EQ(cells.size(), 1u);
    const auto results = runSweep(cells, 1);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    const Json report =
        Json::parse(sweepReport("queue", results).dump(2));
    const Json &c = report["cells"].at(0);
    EXPECT_EQ(c["arrival"].asString(), "bursty");
    const Json &m = c["metrics"];
    EXPECT_TRUE(m.has("p50_cycles"));
    EXPECT_TRUE(m.has("p99_cycles"));
    EXPECT_TRUE(m.has("p999_cycles"));
    EXPECT_TRUE(m.has("mean_queue_depth"));
    EXPECT_TRUE(m.has("rejected_txs"));
    EXPECT_EQ(m["offered_load"].asDouble(), 1.0);
    EXPECT_GT(m["p50_cycles"].asUint(), 0u);
    EXPECT_GE(m["p99_cycles"].asUint(), m["p50_cycles"].asUint());
    // Every request is accounted for: acked + shed == generated.
    EXPECT_EQ(m["committed_txs"].asUint() + m["rejected_txs"].asUint(),
              120u);

    // Closed-loop reports must not grow the serve fields.
    const auto smoke_cells = buildFigureGrid("smoke");
    const auto smoke = runSweep(smoke_cells, 1);
    const Json smoke_report =
        Json::parse(sweepReport("smoke", smoke).dump(2));
    EXPECT_FALSE(smoke_report["cells"].at(0).has("arrival"));
    EXPECT_FALSE(
        smoke_report["cells"].at(0)["metrics"].has("p99_cycles"));
}

// ---- scale256 grid --------------------------------------------------------

TEST(SweepCli, CountListHonorsTheCallerProvidedCeiling)
{
    // --cores parses up to kMaxCores (the per-figure machine ceiling is
    // buildFigureGrid's job); --channels keeps the historical 64.
    EXPECT_EQ(parseCountList("--cores", "128,256", kMaxCores),
              (std::vector<unsigned>{128, 256}));
    EXPECT_EQ(parseCountList("--cores", "65", kMaxCores),
              (std::vector<unsigned>{65}));
    EXPECT_THROW(parseCountList("--cores", "257", kMaxCores),
                 std::runtime_error);
}

TEST(SweepGrid, CoreCeilingIsPerFigureMachine)
{
    // A core count beyond the figure's machine provisioning must fail
    // in grid construction with a clear message, never as a Machine
    // assert deep inside a sweep worker.
    SweepGridOptions opts;
    opts.coreCounts = {128};
    EXPECT_THROW(buildFigureGrid("scale64", opts), std::runtime_error);
    EXPECT_THROW(buildFigureGrid("scale", opts), std::runtime_error);
    EXPECT_THROW(buildFigureGrid("queue", opts), std::runtime_error);
    try {
        buildFigureGrid("scale64", opts);
        FAIL() << "over-provisioned core count did not throw";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("128"), std::string::npos);
        EXPECT_NE(msg.find("scale256"), std::string::npos); // the fix
    }
    opts.coreCounts = {256};
    EXPECT_FALSE(buildFigureGrid("scale256", opts).empty());
}

TEST(SweepGrid, Scale256PairsBroadcastAndDirectoryAtEveryCoreCount)
{
    const auto cells = buildFigureGrid("scale256");
    // 6 core counts x 2 coherence models x 3 workloads x 3 backends.
    ASSERT_EQ(cells.size(), 6u * 2u * 3u * 3u);
    std::set<unsigned> cores;
    std::set<std::string> labels;
    std::size_t directory_cells = 0;
    for (const SweepCell &cell : cells) {
        cores.insert(cell.cores);
        EXPECT_EQ(cell.figure, "scale256");
        EXPECT_EQ(cell.txs, 1000u);
        // The mesh machine: provisioned for 256 cores at every cell so
        // the axes measure cores and interconnect, not capacity.
        EXPECT_EQ(cell.base.sspCacheSlots, 16384u);
        EXPECT_GE(cell.base.caches.l3.sizeBytes, 96u * 1024 * 1024);
        if (cell.coherenceMode == CoherenceMode::Directory)
            ++directory_cells;
        // Partitioned scenario: Hash-Rand shards its keys per core.
        if (cell.workload == WorkloadKind::HashRand && cell.cores > 1) {
            EXPECT_EQ(cell.keyShards, cell.cores);
        }
        labels.insert(cell.label());
    }
    EXPECT_EQ(cores, (std::set<unsigned>{1, 4, 16, 64, 128, 256}));
    EXPECT_EQ(directory_cells, cells.size() / 2);
    // The coherence model is a label coordinate, so labels stay unique.
    EXPECT_EQ(labels.size(), cells.size());
}

TEST(SweepGrid, Scale256SeedsArePinnedAcrossCoherenceModesAndCores)
{
    // A broadcast cell and its directory twin (and every core count)
    // replay the identical operation stream: any traffic or cycle
    // difference between them is the interconnect, not reseeded noise.
    const auto cells = buildFigureGrid("scale256");
    for (const SweepCell &a : cells) {
        for (const SweepCell &b : cells) {
            if (a.backend == b.backend && a.workload == b.workload) {
                EXPECT_EQ(a.scale.seed, b.scale.seed);
            }
        }
    }
}

TEST(SweepReport, Scale256EmitsDirectoryCountersOnlyInDirectoryMode)
{
    SweepGridOptions opts;
    opts.coreCounts = {1};
    opts.workloads = {WorkloadKind::Sps};
    opts.txs = 20;
    const auto cells = buildFigureGrid("scale256", opts);
    ASSERT_EQ(cells.size(), 6u); // 2 modes x 3 backends
    const auto results = runSweep(cells, 1);
    const Json report =
        Json::parse(sweepReport("scale256", results).dump(2));
    for (std::size_t i = 0; i < report["cells"].size(); ++i) {
        const Json &c = report["cells"].at(i);
        ASSERT_TRUE(c["ok"].asBool()) << c["label"].asString();
        // Every scale256 cell names its interconnect and reports the
        // message count — the broadcast-vs-directory comparison axis.
        ASSERT_TRUE(c.has("coherence"));
        const bool directory = c["coherence"].asString() == "directory";
        const Json &m = c["metrics"];
        EXPECT_TRUE(m.has("coherence_messages"));
        // Directory-only counters exist iff the cell ran the directory.
        EXPECT_EQ(m.has("directory_lookups"), directory);
        EXPECT_EQ(m.has("hop_traversal_cycles"), directory);
        EXPECT_EQ(m.has("snoop_filter_evictions"), directory);
        EXPECT_EQ(m.has("back_invalidations"), directory);
    }

    // Legacy broadcast grids carry neither the coordinate nor the
    // counters, keeping their checked-in reports byte-identical.
    const auto smoke = runSweep(buildFigureGrid("smoke"), 1);
    const Json smoke_report =
        Json::parse(sweepReport("smoke", smoke).dump(2));
    EXPECT_FALSE(smoke_report["cells"].at(0).has("coherence"));
    EXPECT_FALSE(
        smoke_report["cells"].at(0)["metrics"].has("coherence_messages"));
}

TEST(SweepRunner, Scale256CellsAreDeterministicAcrossJobs)
{
    SweepGridOptions opts;
    opts.coreCounts = {1, 4};
    opts.workloads = {WorkloadKind::Sps};
    opts.backends = {BackendKind::Ssp};
    opts.txs = 40;
    const auto cells = buildFigureGrid("scale256", opts);
    ASSERT_EQ(cells.size(), 4u); // 2 core counts x 2 modes
    const auto serial = runSweep(cells, 1);
    const auto parallel = runSweep(cells, 3);
    const Json a = sweepReport("scale256", serial);
    const Json b = sweepReport("scale256", parallel);
    EXPECT_EQ(a.dump(2), b.dump(2));
}

} // namespace
} // namespace ssp::sweep::test
