/**
 * @file
 * Multi-core correctness: flip-current-bit shootdown of stale peer
 * lines on CoW remap, bulk-synchronous clock alignment after partial
 * rounds, determinism of the scale grid under the parallel sweep
 * runner, contention monotonicity on a Zipf-shared workload, the
 * TX-bit-aware categorization of L3 victim write-backs, and the
 * replay of contended scale cells against the checked-in report (the
 * sharer-index/hot-path work must not move a simulated cycle).
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/driver.hh"
#include "sim/system_builder.hh"
#include "sweep/sweep_runner.hh"
#include "tests/test_helpers.hh"

namespace ssp::test
{
namespace
{

using sweep::buildFigureGrid;
using sweep::CellResult;
using sweep::runSweep;
using sweep::SweepGridOptions;
using sweep::sweepReport;

TEST(Multicore, CowRemapShootsDownPeerStaleLines)
{
    SspSystem sys(smallConfig(2));
    const Addr addr = pageBase(1) + 8;
    txWrite64(sys, 0, addr, 111);

    // Core 1 reads the committed line into its private caches.
    EXPECT_EQ(timed64(sys, 1, addr), 111u);
    const Addr stale = lineBase(sys.committedLocation(addr));
    ASSERT_TRUE(sys.machine().caches().l1(1).probe(stale));

    // Core 0's next transactional write CoW-remaps the committed copy
    // to the other physical page; the flip broadcast must drop core 1's
    // now-stale copy and charge it for processing the message.
    const std::uint64_t delivered_before =
        sys.machine().coherence().messagesReceived(1);
    txWrite64(sys, 0, addr, 222);
    EXPECT_FALSE(sys.machine().caches().l1(1).probe(stale));
    EXPECT_FALSE(sys.machine().caches().l2(1).probe(stale));
    EXPECT_GT(sys.machine().coherence().messagesReceived(1),
              delivered_before);

    // The peer read sees the remapped line, not the stale copy.
    EXPECT_EQ(timed64(sys, 1, addr), 222u);
}

TEST(Multicore, StaleLineCannotWriteBackToOldPpn)
{
    // Hierarchy-level guarantee behind the shootdown: once a peer copy
    // of a remapped-away line is dropped, no flush or eviction can ever
    // write it back to the old physical location.
    Machine m(smallConfig(2));
    const Addr x = lineAddr(2, 0);
    m.caches().write(1, x, 0);
    ASSERT_TRUE(m.caches().isDirty(1, x));

    const std::uint64_t writes_before = m.bus().nvramWrites();
    const CoreBitmap peers = m.caches().invalidateLineRemote(0, x);
    EXPECT_EQ(peers, CoreBitmap::ofCore(1));
    EXPECT_FALSE(m.caches().l1(1).probe(x));
    EXPECT_FALSE(m.caches().l2(1).probe(x));

    // Dropping is write-back-free, and a subsequent flush finds nothing
    // dirty: a stale-line write to the remapped-away PPN is impossible.
    EXPECT_EQ(m.bus().nvramWrites(), writes_before);
    EXPECT_EQ(m.caches().flushLine(1, x, WriteCategory::Data, 1000), 1000u);
    EXPECT_EQ(m.bus().nvramWrites(), writes_before);
}

TEST(Multicore, WriteInvalidatesPeerCopiesAndCountsMessages)
{
    // The ordinary (non-flip) store path rides the same network: a
    // store to a line a peer has cached invalidates the peer copy and
    // bumps the invalidation counters.
    Machine m(smallConfig(2));
    const Addr x = lineAddr(3, 5);
    m.caches().read(1, x, 0);
    ASSERT_TRUE(m.caches().l1(1).probe(x));
    ASSERT_EQ(m.coherence().invalidations(), 0u);

    const Cycles quiet = m.caches().write(0, lineAddr(4, 0), 0);
    EXPECT_EQ(m.coherence().invalidations(), 0u); // no peer copy, free

    const Cycles noisy_start = quiet;
    const Cycles done = m.caches().write(0, x, noisy_start);
    EXPECT_FALSE(m.caches().l1(1).probe(x));
    EXPECT_EQ(m.coherence().invalidations(), 1u);
    EXPECT_EQ(m.coherence().invalidationsSent(0), 1u);
    EXPECT_EQ(m.coherence().messagesReceived(1), 1u);
    EXPECT_GE(done, noisy_start + m.cfg().broadcastLatency);
}

TEST(Multicore, PartialRoundsLeaveClocksSynced)
{
    WorkloadScale scale;
    scale.keySpace = 256;
    scale.spsElements = 1024;
    scale.seed = 7;
    Experiment exp = buildExperiment(BackendKind::Ssp, WorkloadKind::Sps,
                                     smallConfig(4), scale);
    // 10 % 3 != 0: the run ends on a partial round.
    RunResult res = runExperiment(exp, 10, 3);
    Machine &m = exp.backend->machine();
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_EQ(m.clock(c), m.maxClock()) << "core " << c;
    ASSERT_EQ(res.coreTxs.size(), 3u);
    EXPECT_EQ(res.coreTxs[0], 4u);
    EXPECT_EQ(res.coreTxs[1], 3u);
    EXPECT_EQ(res.coreTxs[2], 3u);
}

TEST(Multicore, ScaleSweepDeterministicAcrossJobs)
{
    SweepGridOptions opts;
    opts.coreCounts = {2, 4};
    opts.backends = {BackendKind::Ssp};
    opts.workloads = {WorkloadKind::Sps, WorkloadKind::HashZipf};
    opts.txs = 60;
    opts.scale.keySpace = 256;
    opts.scale.spsElements = 1024;
    const auto cells = buildFigureGrid("scale", opts);
    ASSERT_EQ(cells.size(), 2u * 2u);

    const std::vector<CellResult> serial = runSweep(cells, 1);
    const std::vector<CellResult> parallel = runSweep(cells, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_TRUE(serial[i].ok) << serial[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        const RunResult &a = serial[i].run;
        const RunResult &b = parallel[i].run;
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.nvramWrites, b.nvramWrites);
        EXPECT_EQ(a.coreBusyCycles, b.coreBusyCycles);
        EXPECT_EQ(a.coreTxs, b.coreTxs);
        EXPECT_EQ(a.coherenceFlips, b.coherenceFlips);
        EXPECT_EQ(a.coherenceInvalidations, b.coherenceInvalidations);
        EXPECT_EQ(a.coherenceShootdowns, b.coherenceShootdowns);
    }
}

TEST(Multicore, ContentionMonotoneOnZipfShared)
{
    // A shared Zipf hotspot makes every added core fight for the same
    // lines (invalidations, shootdowns, channel arbitration), so the
    // total busy time to complete the same work must not shrink.
    auto total_busy = [](unsigned cores) {
        WorkloadScale scale;
        scale.keySpace = 512;
        scale.seed = 11;
        Experiment exp = buildExperiment(BackendKind::Ssp,
                                         WorkloadKind::HashZipf,
                                         smallConfig(cores), scale);
        RunResult res = runExperiment(exp, 240, cores);
        std::uint64_t busy = 0;
        for (std::uint64_t b : res.coreBusyCycles)
            busy += b;
        return busy;
    };
    const std::uint64_t busy1 = total_busy(1);
    const std::uint64_t busy2 = total_busy(2);
    const std::uint64_t busy4 = total_busy(4);
    EXPECT_LE(busy1, busy2);
    EXPECT_LE(busy2, busy4);
}

TEST(Multicore, PartitionedShardsStayFunctionallyCorrect)
{
    WorkloadScale scale;
    scale.keySpace = 256;
    scale.seed = 9;
    scale.keyShards = 2;
    Experiment exp = buildExperiment(BackendKind::Ssp,
                                     WorkloadKind::HashRand,
                                     smallConfig(2), scale);
    runExperiment(exp, 100, 2);
    EXPECT_TRUE(exp.workload->verify());
}

TEST(Multicore, ScaleGridSpsSspCellReplaysTheSmokeStream)
{
    const auto smoke = buildFigureGrid("smoke");
    ASSERT_EQ(smoke.size(), 1u);
    const auto scale = buildFigureGrid("scale");
    ASSERT_EQ(scale.size(), 4u * 6u * 3u);

    // Ordinal 0 of every core count is (SPS, SSP); at one core it is
    // the smoke cell — same machine, seed, scale and transaction count.
    EXPECT_EQ(scale[0].backend, BackendKind::Ssp);
    EXPECT_EQ(scale[0].workload, WorkloadKind::Sps);
    EXPECT_EQ(scale[0].cores, 1u);
    EXPECT_EQ(scale[0].scale.seed, smoke[0].scale.seed);
    EXPECT_EQ(scale[0].scale.spsElements, smoke[0].scale.spsElements);
    EXPECT_EQ(scale[0].txs, smoke[0].txs);

    // Partitioned cells exist only for multi-core -Rand workloads.
    for (const auto &cell : scale) {
        const bool rand_workload =
            cell.workload == WorkloadKind::BTreeRand ||
            cell.workload == WorkloadKind::HashRand;
        if (cell.keyShards > 1) {
            EXPECT_TRUE(rand_workload);
            EXPECT_EQ(cell.keyShards, cell.cores);
        } else {
            EXPECT_TRUE(!rand_workload || cell.cores == 1);
        }
    }
}

TEST(Multicore, SingleCoreScaleCellBitIdenticalToSmokeCell)
{
    // The acceptance bar for the scale grid: single-core cells replay
    // the exact pre-PR single-core model.  The (SPS, SSP, 1 core) cell
    // must reproduce the smoke cell result bit for bit.
    const auto smoke_cells = buildFigureGrid("smoke");
    sweep::SweepGridOptions one_core;
    one_core.coreCounts = {1};
    one_core.backends = {BackendKind::Ssp};
    one_core.workloads = {WorkloadKind::Sps};
    const auto scale_cells = buildFigureGrid("scale", one_core);
    ASSERT_EQ(scale_cells.size(), 1u);

    const auto smoke_res = runSweep(smoke_cells, 1);
    const auto scale_res = runSweep(scale_cells, 1);
    ASSERT_TRUE(smoke_res[0].ok);
    ASSERT_TRUE(scale_res[0].ok);
    const RunResult &a = smoke_res[0].run;
    const RunResult &b = scale_res[0].run;
    EXPECT_EQ(a.committedTxs, b.committedTxs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.nvramWrites, b.nvramWrites);
    EXPECT_EQ(a.loggingWrites, b.loggingWrites);
    EXPECT_EQ(a.dataWrites, b.dataWrites);
    EXPECT_EQ(a.checkpointWrites, b.checkpointWrites);
    EXPECT_EQ(a.journalWrites, b.journalWrites);
    EXPECT_EQ(a.avgLinesPerTx, b.avgLinesPerTx);
    EXPECT_EQ(a.avgPagesPerTx, b.avgPagesPerTx);
}

TEST(Multicore, L3VictimWritebackCarriesTheTxBit)
{
    // Regression: transactional (TX-bit) victims must not be folded
    // into the committed-data Figure 6/7 category.
    SspConfig cfg = smallConfig(1);
    cfg.caches.l1 = CacheParams{"l1d", 4 * kLineSize, 1, 1};
    cfg.caches.l2 = CacheParams{"l2", 4 * kLineSize, 1, 1};
    cfg.caches.l3 = CacheParams{"l3", 4 * kLineSize, 1, 1};
    Machine m(cfg);

    const Addr tx_line = lineAddr(2, 0);
    m.caches().write(0, tx_line, 0);
    m.caches().setTxBit(0, tx_line, true);
    ASSERT_EQ(m.bus().nvramWrites(WriteCategory::Other), 0u);

    // A same-set write cascades the 1-way victim out of every level.
    m.caches().write(0, tx_line + 4 * kLineSize, 100);
    EXPECT_EQ(m.bus().nvramWrites(WriteCategory::Other), 1u);
    EXPECT_EQ(m.bus().nvramWrites(WriteCategory::Data), 0u);

    // The same eviction without the TX bit stays committed data.
    const Addr data_line = lineAddr(8, 1);
    m.caches().write(0, data_line, 200);
    m.caches().write(0, data_line + 4 * kLineSize, 300);
    EXPECT_EQ(m.bus().nvramWrites(WriteCategory::Data), 1u);
    EXPECT_EQ(m.bus().nvramWrites(WriteCategory::Other), 1u);
}

TEST(Multicore, ContendedZipfCellsMatchTheCheckedInScaleReport)
{
    // Bit-identity bar for the host-side hot-path work (sharer index,
    // posting-indexed validation, flat PhysMem, line sets): replaying
    // the checked-in scale grid's contended 8-core Zipf cells must
    // reproduce every simulated metric exactly.  These are the cells
    // where peer invalidations, shootdowns, and conflict validation
    // all fire at once — if an optimization moved a single cycle or
    // reclassified a single conflict, this is where it would show.
    std::ifstream in(std::string(SSP_SOURCE_DIR) + "/BENCH_scale.json");
    ASSERT_TRUE(in) << "checked-in BENCH_scale.json missing";
    std::stringstream buf;
    buf << in.rdbuf();
    const Json checked_in = Json::parse(buf.str());

    SweepGridOptions opts;
    opts.workloads = {WorkloadKind::BTreeZipf, WorkloadKind::HashZipf,
                      WorkloadKind::RbTreeZipf};
    opts.coreCounts = {8};
    const auto cells = buildFigureGrid("scale", opts);
    ASSERT_EQ(cells.size(), 9u); // 3 workloads x 3 backends
    const auto results = runSweep(cells, 1);
    const Json report = sweepReport("scale", results);

    std::size_t matched = 0;
    for (std::size_t i = 0; i < report["cells"].size(); ++i) {
        const Json &got = report["cells"].at(i);
        for (std::size_t j = 0; j < checked_in["cells"].size(); ++j) {
            const Json &want = checked_in["cells"].at(j);
            if (want["label"].asString() != got["label"].asString())
                continue;
            EXPECT_EQ(got["seed"].asString(), want["seed"].asString());
            EXPECT_EQ(got["metrics"].dump(2), want["metrics"].dump(2))
                << "cell " << got["label"].asString()
                << " diverged from the checked-in report";
            ++matched;
        }
    }
    EXPECT_EQ(matched, 9u);
    // These cells must actually exercise the conflict machinery.
    std::uint64_t aborts = 0;
    for (const CellResult &r : results)
        aborts += r.run.txAborts;
    EXPECT_GT(aborts, 0u);
}

} // namespace
} // namespace ssp::test
