/**
 * @file
 * Unit tests for page consolidation: minority-side selection, the
 * P0/P1 role swap, journal records, page-table retargeting, and the
 * write accounting that feeds Figure 7b.
 */

#include <gtest/gtest.h>

#include "core/ssp_system.hh"
#include "tests/test_helpers.hh"

using namespace ssp;
using namespace ssp::test;

namespace
{

class ConsolidationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys = std::make_unique<SspSystem>(smallConfig());
    }

    /** Commit one tx touching the given lines of the given page. */
    void
    touchLines(Vpn vpn, std::initializer_list<unsigned> lines,
               std::uint64_t value)
    {
        sys->begin(0);
        for (unsigned li : lines) {
            std::uint64_t v = value + li;
            sys->store(0, pageBase(vpn) + li * kLineSize, &v, sizeof(v));
        }
        sys->commit(0);
    }

    /** Force the page out of the (single-core) TLB by touching others.
     *  Fillers are only read, so they consolidate for free and do not
     *  perturb the consolidation-write accounting. */
    void
    evictFromTlb(Vpn vpn)
    {
        const unsigned entries = sys->cfg().tlbEntries;
        Vpn filler = 300;
        unsigned filled = 0;
        while (filled <= entries) {
            if (filler != vpn) {
                std::uint64_t v = 0;
                sys->load(0, pageBase(filler), &v, sizeof(v));
                ++filled;
            }
            ++filler;
        }
    }

    std::unique_ptr<SspSystem> sys;
};

TEST_F(ConsolidationTest, MinorityInP1CopiesIntoP0)
{
    // 3 lines committed to P1 (first commit flips them 0->1).
    touchLines(20, {1, 2, 3}, 100);
    SlotId sid = sys->controller().cache().findSlot(20);
    ASSERT_NE(sid, kInvalidSlot);
    const Ppn orig_p0 = sys->controller().cache().entry(sid).ppn0;

    const std::uint64_t before =
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation);
    evictFromTlb(20);

    // The slot may have been recycled; the durable content must have
    // merged into the page the page table maps.
    EXPECT_EQ(sys->machine().pt().translate(20), orig_p0);
    for (unsigned li : {1u, 2u, 3u})
        EXPECT_EQ(raw64(*sys, pageBase(20) + li * kLineSize), 100u + li);
    const std::uint64_t after =
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation);
    EXPECT_EQ(after - before, 3u); // exactly the minority lines
}

TEST_F(ConsolidationTest, MajorityInP1SwapsRoles)
{
    // Commit 40 lines into P1: majority side is P1, so consolidation
    // copies the remaining 24 committed-in-P0 lines and swaps roles.
    std::vector<unsigned> lines;
    for (unsigned i = 0; i < 40; ++i)
        lines.push_back(i);
    sys->begin(0);
    for (unsigned li : lines) {
        std::uint64_t v = 500 + li;
        sys->store(0, pageBase(21) + li * kLineSize, &v, sizeof(v));
    }
    sys->commit(0);

    SlotId sid = sys->controller().cache().findSlot(21);
    ASSERT_NE(sid, kInvalidSlot);
    const Ppn p0 = sys->controller().cache().entry(sid).ppn0;
    const Ppn p1 = sys->controller().cache().entry(sid).ppn1;

    const std::uint64_t before =
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation);
    evictFromTlb(21);
    const std::uint64_t after =
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation);

    // 64 - 40 = 24 lines copied, and the mapping now points at old P1.
    EXPECT_EQ(after - before, 24u);
    EXPECT_EQ(sys->machine().pt().translate(21), p1);
    (void)p0;
    for (unsigned li : lines)
        EXPECT_EQ(raw64(*sys, pageBase(21) + li * kLineSize), 500u + li);
}

TEST_F(ConsolidationTest, CleanPageConsolidatesForFree)
{
    // A page only read (never written) has committed == 0; losing TLB
    // residency must not copy anything.
    sys->begin(0);
    std::uint64_t v = 0;
    sys->load(0, pageBase(22), &v, sizeof(v));
    sys->commit(0);

    const std::uint64_t before =
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation);
    evictFromTlb(22);
    EXPECT_EQ(sys->machine().bus().nvramWrites(WriteCategory::Consolidation),
              before);
}

TEST_F(ConsolidationTest, HotPageNotPrematurelyConsolidated)
{
    // A page kept hot in the TLB accumulates many commits with zero
    // consolidation traffic — the batching effect of section 5.2.
    const std::uint64_t before =
        sys->machine().bus().nvramWrites(WriteCategory::Consolidation);
    for (unsigned i = 0; i < 200; ++i)
        touchLines(23, {i % 8}, i);
    EXPECT_EQ(sys->machine().bus().nvramWrites(WriteCategory::Consolidation),
              before);
}

TEST_F(ConsolidationTest, ConsolidationJournalsTheMappingChange)
{
    touchLines(24, {0}, 7);
    const auto &journal = sys->controller().journal();
    const std::uint64_t before_bytes = journal.appendedBytes();
    evictFromTlb(24);
    // At least one Consolidate record was appended (40 bytes each).
    EXPECT_GT(journal.appendedBytes() + 1, before_bytes);
}

TEST_F(ConsolidationTest, DataIntactAfterManyConsolidationCycles)
{
    // Alternate between writing a page and forcing it out of the TLB.
    for (unsigned round = 0; round < 5; ++round) {
        touchLines(25, {0, 5, 9}, round * 1000);
        evictFromTlb(25);
    }
    for (unsigned li : {0u, 5u, 9u})
        EXPECT_EQ(raw64(*sys, pageBase(25) + li * kLineSize), 4000u + li);
}

TEST_F(ConsolidationTest, CopiedLineStatsTracked)
{
    touchLines(26, {0, 1}, 9);
    evictFromTlb(26);
    const auto &summary = sys->controller().consolidator().copiedLines();
    EXPECT_GT(summary.count(), 0u);
}

TEST_F(ConsolidationTest, PageWrittenByOpenTxNotConsolidated)
{
    // Begin a tx on page 27, then cause TLB pressure; the core refcount
    // must protect the page from consolidation.
    sys->begin(0);
    std::uint64_t v = 42;
    sys->store(0, pageBase(27), &v, sizeof(v));

    SlotId sid = sys->controller().cache().findSlot(27);
    ASSERT_NE(sid, kInvalidSlot);

    // Touch many other pages with plain loads inside the same tx — the
    // write set stays small but the TLB churns.
    for (Vpn filler = 400; filler < 400 + 80; ++filler) {
        std::uint64_t tmp = 0;
        sys->load(0, pageBase(filler), &tmp, sizeof(tmp));
    }

    // The page's entry must still be live and unconsolidated (its
    // current bitmap still differs from committed).
    const SspCacheEntry &e = sys->controller().cache().entry(sid);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.coreRefCount, 1u);
    EXPECT_NE(e.current.raw(), e.committed.raw());

    sys->commit(0);
    EXPECT_EQ(raw64(*sys, pageBase(27)), 42u);
}

} // namespace
