#!/usr/bin/env python3
"""Compare two BENCH_*.json sweep reports cell by cell.

Usage: perf_compare.py BASELINE.json CANDIDATE.json
           [--threshold X] [--warn-only]

Cells are matched by label (the intersection of the two reports, so a
grown grid can still be compared against an older baseline).  Two
independent checks run over the matched cells:

 1. Simulated metrics: `cycles` (and committed_txs) must be identical —
    a host-side optimization must not move a single simulated cycle.
    A mismatch is always an error, as is a cell that ran in the
    baseline but failed (`ok: false`) in the candidate.

 2. Host wall-clock: when both sides carry `host_ms` (reports written
    with `sweep_main --time`), per-cell and total speedups are printed
    and any cell slower than `--threshold` x baseline (default 1.25)
    is flagged as a regression.  Cells faster than 50 ms on both sides
    are reported but never flagged: at that scale the numbers are
    timer noise, not trajectory.

Exit status: 1 on simulated-metric mismatches or (without --warn-only)
host-time regressions; 0 otherwise.
"""

import argparse
import json
import sys

# Below this many milliseconds on both sides a cell's host time is
# dominated by allocator/timer noise; report it but never flag it.
NOISE_FLOOR_MS = 50.0


def load_cells(path):
    """Returns (ok cells by label, all cells by label)."""
    with open(path) as f:
        doc = json.load(f)
    ok, everything = {}, {}
    for cell in doc.get("cells", []):
        everything[cell["label"]] = cell
        if cell.get("ok"):
            ok[cell["label"]] = cell
    return ok, everything


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="flag cells slower than this factor x baseline "
                         "(default 1.25)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report host-time regressions but exit 0")
    args = ap.parse_args()

    base_cells, _ = load_cells(args.baseline)
    cand_cells, cand_all = load_cells(args.candidate)
    common = sorted(set(base_cells) & set(cand_cells))
    if not common:
        # Zero overlap is a hard error with a diagnostic: it almost
        # always means the wrong figure or filter was compared (e.g. a
        # --machines subset against the full grid), and a silent "no
        # common cells" would let CI pass while gating on nothing.
        print("perf_compare: no common ok cells between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        for name, cells in ((args.baseline, base_cells),
                            (args.candidate, cand_cells)):
            labels = sorted(cells)
            shown = ", ".join(labels[:8])
            if len(labels) > 8:
                shown += f", ... ({len(labels)} total)"
            print(f"  {name} ok labels: {shown or '(none)'}",
                  file=sys.stderr)
        return 1

    metric_errors = []
    # A cell that ran in the baseline but *failed* in the candidate is
    # the worst kind of regression — it must not silently vanish from
    # the intersection.  (Cells absent from the candidate entirely are
    # fine: comparing a subset run against a full baseline is the
    # normal CI usage.)
    for label in sorted(set(base_cells) & set(cand_all)):
        if label not in cand_cells:
            metric_errors.append(
                f"{label}: ok in baseline but FAILED in candidate: "
                f"{cand_all[label].get('error', 'unknown error')}")
    for label in common:
        bm = base_cells[label].get("metrics", {})
        cm = cand_cells[label].get("metrics", {})
        for key in ("cycles", "committed_txs"):
            if bm.get(key) != cm.get(key):
                metric_errors.append(
                    f"{label}: {key} {bm.get(key)} -> {cm.get(key)}")
    if metric_errors:
        print(f"SIMULATED-METRIC MISMATCH ({len(metric_errors)} cells):")
        for err in metric_errors:
            print(f"  {err}")
    else:
        print(f"simulated metrics identical across {len(common)} "
              "common cells")

    timed = [label for label in common
             if "host_ms" in base_cells[label]
             and "host_ms" in cand_cells[label]]
    regressions = []
    if timed:
        base_total = sum(base_cells[l]["host_ms"] for l in timed)
        cand_total = sum(cand_cells[l]["host_ms"] for l in timed)
        print(f"\n{'cell':<44} {'base ms':>10} {'cand ms':>10} "
              f"{'speedup':>8}")
        for label in timed:
            b = base_cells[label]["host_ms"]
            c = cand_cells[label]["host_ms"]
            speedup = b / c if c > 0 else float("inf")
            mark = ""
            if (c > args.threshold * b
                    and (b >= NOISE_FLOOR_MS or c >= NOISE_FLOOR_MS)):
                regressions.append(label)
                mark = "  <-- REGRESSION"
            print(f"{label:<44} {b:>10.2f} {c:>10.2f} "
                  f"{speedup:>7.2f}x{mark}")
        total_speedup = (base_total / cand_total
                         if cand_total > 0 else float("inf"))
        print(f"{'TOTAL':<44} {base_total:>10.2f} {cand_total:>10.2f} "
              f"{total_speedup:>7.2f}x")
        if regressions:
            print(f"\n{len(regressions)} host-time regression(s) beyond "
                  f"{args.threshold}x:")
            for label in regressions:
                print(f"  {label}")
    else:
        print("\nno common host_ms data (run sweep_main with --time on "
              "both sides to compare host wall-clock)")

    if metric_errors:
        return 1
    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
