#!/usr/bin/env bash
#
# Full local CI pipeline: configure, build, run the test suite, then
# prove the sweep/JSON pipeline end to end with one smoke cell.
#
# Usage: scripts/check.sh [--lint] [--tsan] [build-dir]  (default: build)
#
#   --lint   also run clang-format --dry-run --Werror over every
#            tracked C++ source (mirrors the CI format-lint job).
#   --tsan   configure a separate Debug build with -fsanitize=thread
#            and run ctest only (mirrors the CI gcc-debug-tsan leg);
#            the sweep/JSON pipeline steps are skipped.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

run_lint=0
run_tsan=0
while [ $# -gt 0 ]; do
    case "$1" in
        --lint) run_lint=1; shift ;;
        --tsan) run_tsan=1; shift ;;
        *) break ;;
    esac
done
if [ "$run_tsan" = 1 ]; then
    build_dir="${1:-$repo_root/build-tsan}"
else
    build_dir="${1:-$repo_root/build}"
fi
jobs="$(nproc 2>/dev/null || echo 2)"

if [ "$run_lint" = 1 ]; then
    echo "== clang-format lint =="
    if ! command -v clang-format >/dev/null; then
        echo "error: --lint needs clang-format on PATH" >&2
        exit 1
    fi
    (cd "$repo_root" &&
        git ls-files '*.cc' '*.hh' | xargs clang-format --dry-run --Werror)
fi

echo "== configure =="
if [ "$run_tsan" = 1 ]; then
    cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread"
else
    cmake -B "$build_dir" -S "$repo_root"
fi

echo "== build (-j$jobs) =="
cmake --build "$build_dir" -j "$jobs"

echo "== ctest =="
if [ "$run_tsan" = 1 ]; then
    # Any TSan report fails the run; the suite forces ghost threads on
    # via SSP_FORCE_GHOSTS so even single-CPU hosts race-test them.
    TSAN_OPTIONS=halt_on_error=1 \
        ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
    echo "OK (tsan)"
    exit 0
fi
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "== smoke sweep =="
"$build_dir/sweep_main" --figure smoke --jobs 2 \
    --json "$repo_root/BENCH_smoke.json"

echo "== scale sweep (single-core cells) =="
"$build_dir/sweep_main" --figure scale --cores 1 --jobs 2 --quiet \
    --json "$build_dir/BENCH_scale_c1.json"

echo "== scale vs smoke timing cross-check =="
python3 "$repo_root/scripts/diff_scale_smoke.py" \
    "$repo_root/BENCH_smoke.json" "$build_dir/BENCH_scale_c1.json"

echo "== --time harness validation =="
# A timed run must carry host_ms on every cell and host_ms_total on
# the document, while leaving every simulated metric untouched —
# perf_compare hard-fails on cycle drift and, with both sides timed,
# would flag regressions (the untimed side here skips that leg).
"$build_dir/sweep_main" --figure smoke --jobs 1 --quiet --time \
    --json "$build_dir/BENCH_smoke_timed.json"
python3 - "$build_dir/BENCH_smoke_timed.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert "host_ms_total" in doc, "--time must emit host_ms_total"
assert all("host_ms" in c for c in doc["cells"]), \
    "--time must emit host_ms per cell"
print("host_ms present; total %.1f ms" % doc["host_ms_total"])
EOF
python3 "$repo_root/scripts/perf_compare.py" \
    "$repo_root/BENCH_smoke.json" "$build_dir/BENCH_smoke_timed.json"

echo "== queue report schema validation =="
# The checked-in open-loop grid must carry the serve schema on every
# cell: the arrival coordinate plus tail-latency/queueing metrics, with
# every generated request either acked or shed.
python3 - "$repo_root/BENCH_queue.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["figure"] == "queue", "BENCH_queue.json is not a queue report"
assert doc["cells"], "queue report has no cells"
fields = ("p50_cycles", "p99_cycles", "p999_cycles",
          "mean_queue_depth", "rejected_txs", "offered_load")
for c in doc["cells"]:
    assert c.get("ok"), "cell %s failed" % c["label"]
    assert "arrival" in c, "cell %s lacks the arrival coordinate" % \
        c["label"]
    m = c["metrics"]
    for f in fields:
        assert f in m, "cell %s lacks %s" % (c["label"], f)
    assert m["p50_cycles"] <= m["p99_cycles"] <= m["p999_cycles"], \
        "cell %s has unordered percentiles" % c["label"]
    assert m["committed_txs"] + m["rejected_txs"] == c["txs"], \
        "cell %s lost requests" % c["label"]
print("queue schema ok across %d cells" % len(doc["cells"]))
EOF

echo "== scale256 report schema validation =="
# The checked-in interconnect grid must pair every cell with its
# coherence coordinate and message count; the directory-only counters
# exist exactly on directory-mode cells, and on every contended
# (Zipf, >= 128 cores) pair the directory must move strictly less
# traffic than the broadcast bus — the grid's headline claim.  Legacy
# broadcast reports must stay free of the new fields.
python3 - "$repo_root/BENCH_scale256.json" "$repo_root/BENCH_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["figure"] == "scale256", \
    "BENCH_scale256.json is not a scale256 report"
assert doc["cells"], "scale256 report has no cells"
dir_fields = ("directory_lookups", "hop_traversal_cycles",
              "snoop_filter_evictions", "back_invalidations")
messages = {}
for c in doc["cells"]:
    assert c.get("ok"), "cell %s failed" % c["label"]
    assert c.get("coherence") in ("broadcast", "directory"), \
        "cell %s lacks the coherence coordinate" % c["label"]
    m = c["metrics"]
    assert "coherence_messages" in m, \
        "cell %s lacks coherence_messages" % c["label"]
    directory = c["coherence"] == "directory"
    for f in dir_fields:
        assert (f in m) == directory, \
            "cell %s %s %s" % (c["label"],
                               "lacks" if directory else "leaks", f)
    key = (c["workload"], c["backend"], c["cores"])
    messages.setdefault(key, {})[c["coherence"]] = \
        m["coherence_messages"]
contended = 0
for (workload, backend, cores), by_mode in messages.items():
    assert len(by_mode) == 2, \
        "unpaired coherence modes for %s/%s/c%d" % (workload, backend,
                                                    cores)
    if "Zipf" in workload and cores >= 128:
        contended += 1
        assert by_mode["directory"] < by_mode["broadcast"], \
            "directory traffic not below broadcast for %s/%s/c%d" % \
            (workload, backend, cores)
assert contended > 0, "no contended (Zipf, >=128 cores) cells found"
smoke = json.load(open(sys.argv[2]))
for c in smoke["cells"]:
    assert "coherence" not in c, "legacy report grew a coherence key"
    assert "coherence_messages" not in c.get("metrics", {}), \
        "legacy report grew coherence_messages"
print("scale256 schema ok across %d cells "
      "(%d contended pairs checked)" % (len(doc["cells"]), contended))
EOF

echo "== shard report schema validation =="
# The checked-in cluster grid must carry the machines coordinate on
# every cell; the 2PC counters (and the cross-shard fraction) exist
# exactly on multi-machine cells, cells with a cross-shard fraction
# actually exercised the network, and every 1-machine cell's metrics
# are byte-identical to the scale grid's 4-core cell of the same
# (backend, workload) — the single-shard fast-path guarantee.
python3 - "$repo_root/BENCH_shard.json" "$repo_root/BENCH_scale.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["figure"] == "shard", "BENCH_shard.json is not a shard report"
assert doc["cells"], "shard report has no cells"
tpc_fields = ("single_shard_txs", "cross_shard_txs",
              "prepare_round_trips", "cross_shard_aborts",
              "coordinator_stall_cycles", "network_messages",
              "network_cycles", "shard_cycles", "shard_committed_txs")
scale = json.load(open(sys.argv[2]))
scale_cells = {c["label"]: c for c in scale["cells"]}
single, multi = 0, 0
for c in doc["cells"]:
    assert c.get("ok"), "cell %s failed" % c["label"]
    assert "machines" in c, "cell %s lacks the machines coordinate" % \
        c["label"]
    m = c["metrics"]
    clustered = c["machines"] > 1
    assert ("cross_shard_pct" in c) == clustered, \
        "cell %s cross_shard_pct presence" % c["label"]
    for f in tpc_fields:
        assert (f in m) == clustered, \
            "cell %s %s %s" % (c["label"],
                               "lacks" if clustered else "leaks", f)
    if clustered:
        multi += 1
        assert len(m["shard_cycles"]) == c["machines"], \
            "cell %s shard_cycles length" % c["label"]
        if c["cross_shard_pct"] > 0:
            assert m["cross_shard_txs"] > 0 and m["network_cycles"] > 0, \
                "cell %s priced no 2PC traffic" % c["label"]
    else:
        single += 1
        ref_label = c["label"].replace("shard/", "scale/", 1)
        assert ref_label.endswith("/m1"), c["label"]
        ref = scale_cells.get(ref_label[:-len("/m1")])
        assert ref is not None, "no scale twin for %s" % c["label"]
        assert m == ref["metrics"], \
            "1-machine cell %s is not byte-identical to its scale twin" \
            % c["label"]
assert single and multi, "shard grid lost a machine-count class"
print("shard schema ok across %d cells "
      "(%d single-machine identities checked)" % (len(doc["cells"]),
                                                  single))
EOF

echo "== fault report schema validation =="
# The checked-in fault grid must carry the machines / fault_rate_tenths
# / replicated coordinates on every cell (constant-schema axes); the
# fault-harness counters exist exactly on injecting cells (rate > 0)
# and the log-shipping counters exactly on replicated cells; every
# injected failure was either recovered in place or failed over
# (replication decides which, exclusively); and every zero-fault
# non-replicated cell is byte-identical to its shard-grid (clustered)
# or scale-grid (single-machine) twin — faults are strictly opt-in.
python3 - "$repo_root/BENCH_fault.json" "$repo_root/BENCH_shard.json" \
    "$repo_root/BENCH_scale.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["figure"] == "fault", "BENCH_fault.json is not a fault report"
assert doc["cells"], "fault report has no cells"
fault_fields = ("injected_power_fails", "coordinator_crashes",
                "participant_crashes", "recoveries", "failovers",
                "recovery_stall_cycles", "failover_stall_cycles",
                "presumed_aborts", "decision_records", "messages_lost",
                "rpc_retries", "rpc_timeout_stall_cycles",
                "committed_despite_faults")
ship_fields = ("log_ship_messages", "log_ship_cycles")
shard_cells = {c["label"]: c
               for c in json.load(open(sys.argv[2]))["cells"]}
scale_cells = {c["label"]: c
               for c in json.load(open(sys.argv[3]))["cells"]}
injecting, quiet, twins = 0, 0, 0
for c in doc["cells"]:
    assert c.get("ok"), "cell %s failed" % c["label"]
    for coord in ("machines", "fault_rate_tenths", "replicated"):
        assert coord in c, "cell %s lacks the %s coordinate" % \
            (c["label"], coord)
    m = c["metrics"]
    injects = c["fault_rate_tenths"] > 0
    for f in fault_fields:
        assert (f in m) == injects, \
            "cell %s %s %s" % (c["label"],
                               "lacks" if injects else "leaks", f)
    for f in ship_fields:
        assert (f in m) == c["replicated"], \
            "cell %s %s %s" % (c["label"],
                               "lacks" if c["replicated"] else "leaks",
                               f)
    if injects:
        injecting += 1
        assert m["injected_power_fails"] > 0, \
            "cell %s injected nothing at a nonzero rate" % c["label"]
        assert (m["recoveries"] + m["failovers"]
                == m["injected_power_fails"]), \
            "cell %s lost a failure (power fails != recoveries " \
            "+ failovers)" % c["label"]
        # Replication converts every in-place recovery into a failover.
        if c["replicated"]:
            assert m["recoveries"] == 0, \
                "replicated cell %s recovered in place" % c["label"]
        else:
            assert m["failovers"] == 0, \
                "unreplicated cell %s failed over" % c["label"]
    elif not c["replicated"]:
        # Zero-fault, unreplicated: the harness must not have run at
        # all.  Clustered cells replay the shard grid's matching
        # (machines, x10) cell; single-machine cells replay the scale
        # grid's 4-core cell — both metrics-dict byte-identity.
        quiet += 1
        label = c["label"]
        assert label.endswith("/f0"), label
        base = label[:-len("/f0")]
        if c["machines"] > 1:
            ref = shard_cells.get(base.replace("fault/", "shard/", 1))
        else:
            assert base.endswith("/m1"), label
            ref = scale_cells.get(
                base[:-len("/m1")].replace("fault/", "scale/", 1))
        assert ref is not None, "no twin for %s" % label
        twins += 1
        assert m == ref["metrics"], \
            "zero-fault cell %s is not byte-identical to its twin" \
            % label
assert injecting and quiet, "fault grid lost a rate class"
assert twins == quiet, "fault grid quiet/twin mismatch"
print("fault schema ok across %d cells (%d injecting, "
      "%d zero-fault twins checked)" % (len(doc["cells"]), injecting,
                                        twins))
EOF

echo "OK"
