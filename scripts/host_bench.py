#!/usr/bin/env python3
"""Maintain BENCH_host.json: host wall-clock trajectory per grid per PR.

The checked-in sweep reports are untimed by design (byte-stable), so
host-time history needs its own ledger.  Each entry records the
host_ms_total of one timed sweep (`sweep_main --time`) at one PR:

    {"schema": "ssp-host-bench-v1",
     "entries": [{"pr": 7, "figure": "scale64", "cells": 54,
                  "host_ms_total": 15200.0}, ...]}

Subcommands:

  append LEDGER --pr N TIMED.json [TIMED.json ...]
      Record each timed report's host_ms_total under PR N, replacing
      any existing (pr, figure) entry so re-runs are idempotent.

  compare LEDGER TIMED.json [--threshold X] [--warn-only]
      Compare a fresh timed run against the most recent ledger entry
      for the same figure, and print that figure's full trajectory.
      Entries whose cell count differs (a subset or grown grid) are
      reported but never compared.  Exit 1 if the fresh run is slower
      than --threshold x the last recorded total (default 1.5 — host
      ledgers span different machines, so the bar is loose), unless
      --warn-only.  Shared CI runners are noisy: CI passes --warn-only
      and the ledger is only appended to deliberately, from a dev box.
"""

import argparse
import json
import sys

SCHEMA = "ssp-host-bench-v1"


def load_ledger(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        return {"schema": SCHEMA, "entries": []}
    if doc.get("schema") != SCHEMA:
        sys.exit(f"host_bench: {path} has schema {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
    return doc


def load_timed(path):
    with open(path) as f:
        doc = json.load(f)
    if "host_ms_total" not in doc:
        sys.exit(f"host_bench: {path} has no host_ms_total "
                 "(re-run sweep_main with --time)")
    bad = [c["label"] for c in doc.get("cells", []) if not c.get("ok")]
    if bad:
        sys.exit(f"host_bench: {path} has {len(bad)} failed cell(s) "
                 f"(e.g. {bad[0]}); refusing to record a partial total")
    return {
        "figure": doc["figure"],
        "cells": len(doc.get("cells", [])),
        "host_ms_total": doc["host_ms_total"],
    }


def cmd_append(args):
    ledger = load_ledger(args.ledger)
    for path in args.timed:
        timed = load_timed(path)
        entry = {"pr": args.pr, **timed}
        ledger["entries"] = [
            e for e in ledger["entries"]
            if not (e["pr"] == args.pr and e["figure"] == timed["figure"])
        ] + [entry]
        print(f"recorded pr {args.pr} {timed['figure']} "
              f"({timed['cells']} cells): "
              f"{timed['host_ms_total']:.1f} ms")
    ledger["entries"].sort(key=lambda e: (e["figure"], e["pr"]))
    with open(args.ledger, "w") as f:
        json.dump(ledger, f, indent=2)
        f.write("\n")
    return 0


def cmd_compare(args):
    ledger = load_ledger(args.ledger)
    timed = load_timed(args.timed)
    history = [e for e in ledger["entries"]
               if e["figure"] == timed["figure"]]
    if not history:
        print(f"host_bench: no ledger history for figure "
              f"'{timed['figure']}'; nothing to compare")
        return 0

    print(f"{'pr':>4} {'cells':>6} {'host_ms_total':>14}")
    for e in history:
        print(f"{e['pr']:>4} {e['cells']:>6} {e['host_ms_total']:>14.1f}")
    print(f"{'now':>4} {timed['cells']:>6} "
          f"{timed['host_ms_total']:>14.1f}")

    last = history[-1]
    if last["cells"] != timed["cells"]:
        print(f"cell count changed ({last['cells']} -> {timed['cells']}); "
              "totals are not comparable, skipping the gate")
        return 0
    ratio = (timed["host_ms_total"] / last["host_ms_total"]
             if last["host_ms_total"] > 0 else float("inf"))
    print(f"vs pr {last['pr']}: {ratio:.2f}x")
    if ratio > args.threshold:
        print(f"host-time regression beyond {args.threshold}x"
              + (" (warn-only)" if args.warn_only else ""))
        return 0 if args.warn_only else 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="command", required=True)

    ap_append = sub.add_parser("append", help="record timed totals")
    ap_append.add_argument("ledger")
    ap_append.add_argument("--pr", type=int, required=True)
    ap_append.add_argument("timed", nargs="+")
    ap_append.set_defaults(func=cmd_append)

    ap_compare = sub.add_parser("compare",
                                help="gate a fresh timed run")
    ap_compare.add_argument("ledger")
    ap_compare.add_argument("timed")
    ap_compare.add_argument("--threshold", type=float, default=1.5)
    ap_compare.add_argument("--warn-only", action="store_true")
    ap_compare.set_defaults(func=cmd_compare)

    args = ap.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
