#!/usr/bin/env python3
"""Cross-check the scale grid against the smoke grid.

The scale grid's (SPS, SSP, 1 core) cell runs the exact smoke-cell
configuration and RNG stream, so its metrics must be bit-identical to
BENCH_smoke.json.  Any drift means a change perturbed single-core
timing — the regression this script exists to catch.

Usage: diff_scale_smoke.py BENCH_smoke.json BENCH_scale.json
"""

import json
import sys


def find_cell(report, backend, workload, cores):
    for cell in report["cells"]:
        if (cell["backend"] == backend and cell["workload"] == workload
                and cell["cores"] == cores):
            return cell
    return None


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        smoke = json.load(f)
    with open(sys.argv[2]) as f:
        scale = json.load(f)

    smoke_cell = find_cell(smoke, "SSP", "SPS", 1)
    scale_cell = find_cell(scale, "SSP", "SPS", 1)
    if smoke_cell is None or scale_cell is None:
        sys.exit("missing the (SSP, SPS, 1 core) cell in one report")
    for cell, name in ((smoke_cell, sys.argv[1]), (scale_cell, sys.argv[2])):
        if not cell.get("ok"):
            sys.exit(f"{name}: cell failed: {cell.get('error')}")

    if smoke_cell["seed"] != scale_cell["seed"]:
        sys.exit(f"seed mismatch: smoke {smoke_cell['seed']} vs "
                 f"scale {scale_cell['seed']}")

    mismatches = []
    for key, want in smoke_cell["metrics"].items():
        got = scale_cell["metrics"].get(key)
        if got != want:
            mismatches.append(f"  {key}: smoke={want} scale={got}")
    if mismatches:
        sys.exit("single-core scale cell drifted from the smoke cell:\n" +
                 "\n".join(mismatches))
    print("scale (SPS, SSP, 1 core) cell matches BENCH_smoke.json")


if __name__ == "__main__":
    main()
