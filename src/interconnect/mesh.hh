/**
 * @file
 * 2D-mesh interconnect geometry.
 *
 * The directory coherence model prices every message by Manhattan hop
 * distance on a width x height tile grid: core c sits on tile c, and
 * each physical page has a home tile (page number modulo tile count)
 * whose directory tracks the page's lines.  Homing at page granularity
 * — not line granularity — keeps every line of one sub-page under a
 * single home node, so a flip-current-bit shootdown that accumulates
 * sharer copies across a sub-page's lines is one directory transaction,
 * matching how Machine::chargeShootdown charges each peer once.
 */

#ifndef SSP_INTERCONNECT_MESH_HH
#define SSP_INTERCONNECT_MESH_HH

#include <bit>

#include "common/logging.hh"
#include "common/types.hh"

namespace ssp
{

/** Tile grid of the mesh; see file doc for the core/home mapping. */
struct MeshGeometry
{
    unsigned width = 1;
    unsigned height = 1;

    /**
     * Geometry for @p cores tiles.  Explicit dimensions are validated
     * to cover the core count; width = height = 0 derives a square-ish
     * power-of-two grid (2x2 at 4 cores, 8x8 at 64, 16x8 at 128,
     * 16x16 at 256) — the shape real tiled parts use, and one that
     * keeps the bisection growing with sqrt(cores).
     */
    static MeshGeometry
    forCores(unsigned cores, unsigned width = 0, unsigned height = 0)
    {
        ssp_assert(cores >= 1 && cores <= kMaxCores,
                   "mesh supports 1..%u cores, got %u", kMaxCores, cores);
        if (width == 0 && height == 0) {
            const unsigned lg =
                static_cast<unsigned>(std::bit_width(cores - 1));
            width = 1u << ((lg + 1) / 2);
            height = (cores + width - 1) / width;
        }
        ssp_assert(width >= 1 && height >= 1 &&
                       width * height >= cores,
                   "a %ux%u mesh cannot seat %u cores", width, height,
                   cores);
        return MeshGeometry{width, height};
    }

    /** Number of tiles (and of directory home nodes). */
    unsigned tiles() const { return width * height; }

    /** The tile core @p core sits on (identity placement). */
    unsigned tileOf(CoreId core) const { return core; }

    /** The home tile whose directory tracks @p addr's page. */
    unsigned
    homeTile(Addr addr) const
    {
        return static_cast<unsigned>(pageOf(addr) % tiles());
    }

    /** Manhattan hop distance between tiles @p a and @p b. */
    unsigned
    distance(unsigned a, unsigned b) const
    {
        const unsigned ax = a % width, ay = a / width;
        const unsigned bx = b % width, by = b / width;
        return (ax > bx ? ax - bx : bx - ax) +
               (ay > by ? ay - by : by - ay);
    }
};

} // namespace ssp

#endif // SSP_INTERCONNECT_MESH_HH
