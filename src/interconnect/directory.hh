/**
 * @file
 * Home-node directory coherence on a 2D mesh.
 *
 * Every coherence event is a directory transaction at the home tile of
 * the target line's page: the request crosses the mesh to the home,
 * one directory lookup resolves the sharer set from the hierarchy's
 * exact SharerIndex bitmap, invalidations multicast to the actual
 * sharers (not to every core, the broadcast model's flat assumption),
 * and the acks return.  The sender stalls for the request round trip,
 * the lookup, and the farthest sharer's invalidation round trip; every
 * traversed hop is also accumulated into hopTraversalCycles so tile
 * placement shows up in the counters, not just in the stall.
 *
 * Sharer tracking is bounded the way real directories bound it: each
 * home tile owns a capacity-limited snoop filter (an LRU over tracked
 * lines, fed by the SharerIndex listener hook).  Filling a new line
 * into a full filter evicts the LRU line, and the eviction forces a
 * back-invalidation of the victim's live sharer copies — the inclusion
 * property that lets the filter stay authoritative (JETTY, HPCA '01;
 * the SGI Origin's directory plays the same role, ISCA '97).  Because
 * the listener fires mid-fill, evictions are queued and drained by the
 * hierarchy after the access completes (drainMaintenance), never
 * re-entering the cache arrays.
 */

#ifndef SSP_INTERCONNECT_DIRECTORY_HH
#define SSP_INTERCONNECT_DIRECTORY_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/coherence.hh"
#include "cache/sharer_index.hh"
#include "interconnect/mesh.hh"

namespace ssp
{

/** Mesh directory cost model (see file doc). */
class DirectoryCoherence final : public CoherenceModel,
                                 public SharerListener
{
  public:
    DirectoryCoherence(unsigned num_cores, const CoherenceParams &params);

    // ---- CoherenceModel ------------------------------------------------
    Cycles flipCurrentBit(CoreId sender, Addr line, const CoreBitmap &peers,
                          Cycles now) override;
    Cycles invalidate(CoreId sender, Addr line, const CoreBitmap &peers,
                      Cycles now) override;
    Cycles shootdownReceiverCost(CoreId receiver, Addr line) const override;

    SharerListener *sharerListener() override { return this; }
    void
    attachBackInvalidator(BackInvalidateFn fn) override
    {
        backInvalidate_ = std::move(fn);
    }
    bool needsMaintenance() const override { return true; }
    void drainMaintenance(Cycles now) override;
    void powerFail() override;

    std::uint64_t directoryLookups() const override { return lookups_; }
    std::uint64_t
    hopTraversalCycles() const override
    {
        return hopTraversalCycles_;
    }
    std::uint64_t
    snoopFilterEvictions() const override
    {
        return filterEvictions_;
    }
    std::uint64_t backInvalidations() const override { return backInvals_; }

    // ---- SharerListener ------------------------------------------------
    void lineCached(Addr line) override;
    void lineUncached(Addr line) override;

    const MeshGeometry &mesh() const { return mesh_; }

    /** Lines currently tracked by @p tile's snoop filter. */
    std::size_t
    filterSize(unsigned tile) const
    {
        return filters_[tile].map.size();
    }

  private:
    /**
     * Per-home-tile snoop filter: LRU list of tracked lines, most
     * recently touched at the front, plus the line -> list-node map.
     */
    struct TileFilter
    {
        std::list<Addr> lru;
        std::unordered_map<Addr, std::list<Addr>::iterator> map;
    };

    /**
     * Price one directory transaction from @p sender for @p line with
     * invalidations multicast to @p peers; returns the sender's
     * completion time and accumulates messages and hop cycles.
     */
    Cycles transact(CoreId sender, Addr line, const CoreBitmap &peers,
                    Cycles now);

    MeshGeometry mesh_;
    Cycles hopCycles_;
    Cycles lookupCycles_;
    unsigned filterCapacity_; ///< tracked lines per tile; 0 = unbounded

    std::vector<TileFilter> filters_;
    /** Evicted lines awaiting back-invalidation at the next drain. */
    std::vector<Addr> pendingBackInvals_;
    BackInvalidateFn backInvalidate_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hopTraversalCycles_ = 0;
    std::uint64_t filterEvictions_ = 0;
    std::uint64_t backInvals_ = 0;
};

} // namespace ssp

#endif // SSP_INTERCONNECT_DIRECTORY_HH
