#include "interconnect/directory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ssp
{

DirectoryCoherence::DirectoryCoherence(unsigned num_cores,
                                       const CoherenceParams &params)
    : CoherenceModel(num_cores),
      mesh_(MeshGeometry::forCores(num_cores, params.meshWidth,
                                   params.meshHeight)),
      hopCycles_(params.hopCycles),
      lookupCycles_(params.directoryLookupCycles),
      filterCapacity_(params.snoopFilterEntries), filters_(mesh_.tiles())
{
}

Cycles
DirectoryCoherence::transact(CoreId sender, Addr line,
                             const CoreBitmap &peers, Cycles now)
{
    const unsigned home = mesh_.homeTile(line);
    // Request to the home plus the final ack back to the sender.
    const unsigned request_hops = 2 * mesh_.distance(mesh_.tileOf(sender),
                                                     home);
    // The home multicasts invalidations to the actual sharers and
    // collects their acks; the sender stalls for the farthest one.
    unsigned worst_sharer_hops = 0;
    std::uint64_t sharer_hops = 0;
    std::uint64_t sharer_count = 0;
    peers.forEachSet([&](CoreId peer) {
        const unsigned d = 2 * mesh_.distance(home, mesh_.tileOf(peer));
        worst_sharer_hops = std::max(worst_sharer_hops, d);
        sharer_hops += d;
        ++sharer_count;
    });
    ++lookups_;
    // One request + one ack, plus an invalidation/ack pair per sharer —
    // against the broadcast model's unconditional numCores-1 fan-out.
    countMessages(2 + 2 * sharer_count);
    hopTraversalCycles_ +=
        hopCycles_ * (request_hops + sharer_hops);
    return now + hopCycles_ * (request_hops + worst_sharer_hops) +
           lookupCycles_;
}

Cycles
DirectoryCoherence::flipCurrentBit(CoreId sender, Addr line,
                                   const CoreBitmap &peers, Cycles now)
{
    countFlip(sender);
    // Single-core machines have no peers and no mesh to cross; keep
    // parity with the broadcast model's free single-core flips.
    if (numCores() <= 1)
        return now;
    CoreBitmap targets = peers;
    targets.reset(sender);
    return transact(sender, line, targets, now);
}

Cycles
DirectoryCoherence::invalidate(CoreId sender, Addr line,
                               const CoreBitmap &peers, Cycles now)
{
    countInvalidation(sender);
    if (numCores() <= 1)
        return now;
    CoreBitmap targets = peers;
    targets.reset(sender);
    return transact(sender, line, targets, now);
}

Cycles
DirectoryCoherence::shootdownReceiverCost(CoreId receiver, Addr line) const
{
    // The receiver stalls for the invalidation's trip from the line's
    // home tile; a sharer co-located with the home processes it in the
    // directory pipeline itself.
    return hopCycles_ *
           mesh_.distance(mesh_.homeTile(line), mesh_.tileOf(receiver));
}

void
DirectoryCoherence::lineCached(Addr line)
{
    TileFilter &f = filters_[mesh_.homeTile(line)];
    auto it = f.map.find(line);
    if (it != f.map.end()) {
        // Already tracked: touch to most-recently-used.
        f.lru.splice(f.lru.begin(), f.lru, it->second);
        return;
    }
    f.lru.push_front(line);
    f.map.emplace(line, f.lru.begin());
    if (filterCapacity_ == 0 || f.map.size() <= filterCapacity_)
        return;
    // Capacity exceeded: evict the LRU line.  Inclusion demands its
    // live sharer copies be dropped, but this callback runs inside a
    // cache fill — queue the back-invalidation for the post-access
    // drain instead of re-entering the tag arrays here.
    const Addr victim = f.lru.back();
    f.map.erase(victim);
    f.lru.pop_back();
    ++filterEvictions_;
    pendingBackInvals_.push_back(victim);
}

void
DirectoryCoherence::lineUncached(Addr line)
{
    TileFilter &f = filters_[mesh_.homeTile(line)];
    auto it = f.map.find(line);
    if (it == f.map.end())
        return;
    f.lru.erase(it->second);
    f.map.erase(it);
}

void
DirectoryCoherence::drainMaintenance(Cycles now)
{
    while (!pendingBackInvals_.empty()) {
        const Addr victim = pendingBackInvals_.back();
        pendingBackInvals_.pop_back();
        ssp_assert(backInvalidate_,
                   "directory snoop filter evicted a line with no "
                   "back-invalidator attached");
        // Dropping the copies fires lineUncached (the filter entry is
        // already gone) and may write back dirty data — both safe here,
        // outside any in-flight access.
        const CoreBitmap dropped = backInvalidate_(victim, now);
        const unsigned home = mesh_.homeTile(victim);
        std::uint64_t dropped_hops = 0;
        std::uint64_t dropped_count = 0;
        dropped.forEachSet([&](CoreId core) {
            dropped_hops += 2 * mesh_.distance(home, mesh_.tileOf(core));
            ++dropped_count;
        });
        backInvals_ += dropped_count;
        countMessages(2 * dropped_count);
        hopTraversalCycles_ += hopCycles_ * dropped_hops;
    }
}

void
DirectoryCoherence::powerFail()
{
    // The filters are home-tile SRAM: volatile, like the caches whose
    // contents they mirror.  Pending evictions die with the copies they
    // would have dropped.
    for (TileFilter &f : filters_) {
        f.lru.clear();
        f.map.clear();
    }
    pendingBackInvals_.clear();
}

} // namespace ssp
