/**
 * @file
 * SHADOW: conventional page-granularity shadow paging, the ablation the
 * paper dismisses analytically ("conventional shadow paging degrades
 * performance by writing up to 64x more cache lines", section 5.1).
 *
 * Semantics: the first atomic store to a page inside a transaction
 * allocates a shadow page and copies the whole source page into it
 * (copy-on-write); reads and writes of touched pages are redirected to
 * the shadow.  Commit persists every line of every shadow page, journals
 * the mapping switches with a commit marker, and retargets the page
 * table; the old pages return to the pool.  Recovery replays mapping
 * records of committed transactions.
 */

#ifndef SSP_BASELINES_SHADOW_PAGING_HH
#define SSP_BASELINES_SHADOW_PAGING_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/baseline_base.hh"
#include "baselines/persist_log.hh"
#include "nvram/free_pages.hh"

namespace ssp
{

/** Conventional full-page shadow paging. */
class ShadowPagingBackend : public BaselineBase
{
  public:
    explicit ShadowPagingBackend(const SspConfig &cfg);

    const char *name() const override { return "SHADOW"; }
    void store(CoreId core, Addr vaddr, const void *buf,
               std::uint64_t size) override;
    void load(CoreId core, Addr vaddr, void *buf,
              std::uint64_t size) override;
    void commit(CoreId core) override;
    void abort(CoreId core) override;
    void recover() override;
    std::uint64_t loggingWrites() const override;

  protected:
    void onCrash() override;

  private:
    void storeLine(CoreId core, Addr vaddr, const void *buf,
                   std::uint64_t size);

    /** Shadow page for a touched vpn, or the committed translation. */
    Ppn activePpn(CoreId core, Vpn vpn);

    /** Per-core: vpn -> shadow ppn for pages touched by the open tx. */
    std::vector<std::unordered_map<Vpn, Ppn>> shadow_;
    /** Mapping journal (shared; one per-commit flush). */
    std::unique_ptr<PersistLog> mapJournal_;
    FreePagePool pool_;
};

} // namespace ssp

#endif // SSP_BASELINES_SHADOW_PAGING_HH
