/**
 * @file
 * Factory for the evaluated failure-atomicity designs.
 */

#ifndef SSP_BASELINES_BACKEND_FACTORY_HH
#define SSP_BASELINES_BACKEND_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/config.hh"

namespace ssp
{

/** The designs the evaluation compares. */
enum class BackendKind
{
    Ssp,       ///< the paper's contribution
    UndoLog,   ///< naive hardware undo logging
    RedoLog,   ///< DHTM-style hardware redo logging
    Shadow,    ///< conventional page-granularity shadow paging (ablation)
};

/** Printable design name ("SSP", "UNDO-LOG", ...). */
const char *backendKindName(BackendKind kind);

/** Parse a design name; fatal on unknown names. */
BackendKind parseBackendKind(const std::string &name);

/** Build a design over a freshly constructed machine. */
std::unique_ptr<AtomicityBackend> makeBackend(BackendKind kind,
                                              const SspConfig &cfg);

/** The three designs the paper's figures compare, in plot order. */
std::vector<BackendKind> paperBackends();

} // namespace ssp

#endif // SSP_BASELINES_BACKEND_FACTORY_HH
