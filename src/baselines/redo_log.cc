#include "baselines/redo_log.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace ssp
{

RedoLogBackend::RedoLogBackend(const SspConfig &cfg)
    : BaselineBase(cfg), writeBuf_(cfg.numCores),
      phase1Done_(cfg.numCores, false)
{
    // Line-align the per-core carve: at non-power-of-two core counts a
    // plain division would misalign every region past the first.
    const std::uint64_t per_core = lineBase(cfg.logBytes() / cfg.numCores);
    ssp_assert(per_core > cfg.numCores * cfg.nvram.rowBufferBytes,
               "log area too small for %u staggered per-core regions; "
               "raise logPages",
               cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        // Stagger per-core regions across banks (see UndoLogBackend).
        const Addr base =
            cfg.logBase() + c * per_core + c * cfg.nvram.rowBufferBytes;
        logs_.push_back(std::make_unique<PersistLog>(
            machine_->bus(), base,
            per_core - cfg.numCores * cfg.nvram.rowBufferBytes,
            WriteCategory::RedoLog));
    }
}

bool
RedoLogBackend::redirectLoad(CoreId core, Addr line_vaddr,
                             std::uint64_t offset, void *buf,
                             std::uint64_t size)
{
    auto it = writeBuf_[core].find(line_vaddr);
    if (it == writeBuf_[core].end())
        return false;
    std::memcpy(buf, it->second.data() + offset, size);
    return true;
}

void
RedoLogBackend::store(CoreId core, Addr vaddr, const void *buf,
                      std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        storeLine(core, vaddr, in, in_line);
        vaddr += in_line;
        in += in_line;
        size -= in_line;
    }
}

void
RedoLogBackend::storeLine(CoreId core, Addr vaddr, const void *buf,
                          std::uint64_t size)
{
    ssp_assert(tx_[core].inTx, "atomic store outside a transaction");
    ssp_assert(fitsInLine(vaddr, size));
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];

    const Ppn ppn = translate(core, pageOf(vaddr));
    const Addr line_paddr = lineAddr(ppn, lineIndexInPage(vaddr));
    const Addr line_vaddr = lineBase(vaddr);
    machine_->conflicts().recordWrite(core, vaddr);

    auto it = writeBuf_[core].find(line_vaddr);
    if (it == writeBuf_[core].end()) {
        // First store to this line: seed the speculative image with the
        // committed contents, then apply the store.
        LineImage image;
        now = machine_->caches().read(core, line_paddr, now);
        machine_->mem().read(line_paddr, image.data(), kLineSize);
        it = writeBuf_[core].emplace(line_vaddr, image).first;
        tx.lines.insert(line_vaddr);
        tx.pages.insert(pageOf(vaddr));
    }
    std::memcpy(it->second.data() + lineOffset(vaddr), buf, size);

    // The speculative version lives in the L1 (DHTM); the store is a
    // normal cache write, and the redo record streams out asynchronously
    // without stalling the store.
    now = machine_->caches().write(core, line_paddr, now);
    now += machine_->cfg().opCost;
}

void
RedoLogBackend::commitPhase1(CoreId core)
{
    ssp_assert(tx_[core].inTx, "commit outside a transaction");
    ssp_assert(!phase1Done_[core], "phase 1 already ran");
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];

    // The log buffer predicted the final state of each modified line:
    // exactly one redo record per distinct line, written at commit time
    // but overlapped with the commit pipeline (async appends, one final
    // flush that the commit does stall on).
    for (Addr line_vaddr : tx.lines) {
        const auto &image = writeBuf_[core].at(line_vaddr);
        const Ppn ppn = machine_->pt().translate(pageOf(line_vaddr));
        LogRecord rec;
        rec.kind = LogRecord::Kind::Data;
        rec.tid = tx.tid;
        rec.addr = lineAddr(ppn, lineIndexInPage(line_vaddr));
        rec.data.assign(image.begin(), image.end());
        logs_[core]->append(std::move(rec), now, false);
    }
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = tx.tid;
    logs_[core]->append(std::move(marker), now, false);
    // Commit is acknowledged when the log (including the marker) is
    // durable — this is the only persistence stall in DHTM's pipeline.
    now = logs_[core]->flush(now);
    phase1Done_[core] = true;
}

void
RedoLogBackend::commitPhase2(CoreId core)
{
    ssp_assert(phase1Done_[core], "phase 2 before phase 1");
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];

    // Post-commit in-place write-back: overlaps with subsequent
    // execution (background, no stall), but the writes are real NVRAM
    // traffic — DHTM still pays the "write twice" cost.
    for (Addr line_vaddr : tx.lines) {
        const auto &image = writeBuf_[core].at(line_vaddr);
        const Ppn ppn = machine_->pt().translate(pageOf(line_vaddr));
        const Addr loc = lineAddr(ppn, lineIndexInPage(line_vaddr));
        machine_->mem().write(loc, image.data(), kLineSize);
        machine_->caches().flushLine(core, loc, WriteCategory::Data, now,
                                     true);
    }
    logs_[core]->truncate();
    writeBuf_[core].clear();
    phase1Done_[core] = false;

    noteCommit(core);
    tx.clear();
}

void
RedoLogBackend::commit(CoreId core)
{
    commitPhase1(core);
    // The ack point: the redo log (with its marker) is durable, so the
    // write set is published for peer conflict windows here.
    machine_->conflicts().commitTx(core, machine_->clock(core),
                                   machine_->minClock());
    commitPhase2(core);
}

void
RedoLogBackend::abort(CoreId core)
{
    ssp_assert(tx_[core].inTx, "abort outside a transaction");
    ssp_assert(!phase1Done_[core], "abort after the commit point");
    for (Addr line_vaddr : tx_[core].lines) {
        const Ppn ppn = machine_->pt().translate(pageOf(line_vaddr));
        machine_->caches().invalidateLine(
            lineAddr(ppn, lineIndexInPage(line_vaddr)));
    }
    writeBuf_[core].clear();
    logs_[core]->truncate();
    machine_->conflicts().abortTx(core);
    tx_[core].clear();
}

void
RedoLogBackend::onCrash()
{
    for (auto &buf : writeBuf_)
        buf.clear();
    for (auto &log : logs_)
        log->powerFail();
    std::fill(phase1Done_.begin(), phase1Done_.end(), false);
}

void
RedoLogBackend::recover()
{
    for (auto &log : logs_) {
        auto records = log->persistedRecords();
        std::unordered_set<TxId> committed;
        for (const auto &rec : records) {
            if (rec.kind == LogRecord::Kind::Commit)
                committed.insert(rec.tid);
        }
        // Replay committed transactions' redo records in order (the
        // in-place data write may not have finished before the crash).
        for (const auto &rec : records) {
            if (rec.kind != LogRecord::Kind::Data ||
                !committed.contains(rec.tid)) {
                continue;
            }
            machine_->mem().write(rec.addr, rec.data.data(),
                                  rec.data.size());
        }
        log->truncate();
    }
}

std::uint64_t
RedoLogBackend::loggingWrites() const
{
    return machine_->bus().nvramWrites(WriteCategory::RedoLog);
}

} // namespace ssp
