/**
 * @file
 * UNDO-LOG: the naive hardware undo-logging baseline of the paper's
 * evaluation (section 5.1).
 *
 * Semantics: the first atomic store to a cache line in a transaction
 * reads the old line, writes an undo record (old data + address) to the
 * per-core log, and *blocks until the record reaches NVRAM* — undo
 * logging requires log-before-data ordering.  Data is then updated in
 * place.  A log buffer dedups repeated updates to the same line.  Commit
 * flushes the write-set lines (critical path), persists a commit marker
 * and truncates the log.  Recovery rolls back transactions without a
 * commit marker by re-applying the logged old values, newest first.
 */

#ifndef SSP_BASELINES_UNDO_LOG_HH
#define SSP_BASELINES_UNDO_LOG_HH

#include <memory>
#include <vector>

#include "baselines/baseline_base.hh"
#include "baselines/persist_log.hh"

namespace ssp
{

/** The hardware undo-logging design. */
class UndoLogBackend : public BaselineBase
{
  public:
    explicit UndoLogBackend(const SspConfig &cfg);

    const char *name() const override { return "UNDO-LOG"; }
    void store(CoreId core, Addr vaddr, const void *buf,
               std::uint64_t size) override;
    void commit(CoreId core) override;
    void abort(CoreId core) override;
    void recover() override;
    std::uint64_t loggingWrites() const override;

    PersistLog &log(CoreId core) { return *logs_[core]; }

  protected:
    void onCrash() override {}

  private:
    void storeLine(CoreId core, Addr vaddr, const void *buf,
                   std::uint64_t size);

    /** Functional rollback of one core's unfinished transaction. */
    void rollback(PersistLog &log);

    std::vector<std::unique_ptr<PersistLog>> logs_;
};

} // namespace ssp

#endif // SSP_BASELINES_UNDO_LOG_HH
