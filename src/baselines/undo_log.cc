#include "baselines/undo_log.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace ssp
{

UndoLogBackend::UndoLogBackend(const SspConfig &cfg) : BaselineBase(cfg)
{
    // Line-align the per-core carve: at non-power-of-two core counts a
    // plain division would misalign every region past the first.
    const std::uint64_t per_core = lineBase(cfg.logBytes() / cfg.numCores);
    ssp_assert(per_core > cfg.numCores * cfg.nvram.rowBufferBytes,
               "log area too small for %u staggered per-core regions; "
               "raise logPages",
               cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        // Per-core log regions are staggered by one row so they map to
        // different NVRAM banks (a real controller interleaves them).
        const Addr base =
            cfg.logBase() + c * per_core + c * cfg.nvram.rowBufferBytes;
        // Synchronous undo logging: every entry persists by itself
        // before the data store may proceed, so entries are line-padded
        // (no packing across entries).
        logs_.push_back(std::make_unique<PersistLog>(
            machine_->bus(), base,
            per_core - cfg.numCores * cfg.nvram.rowBufferBytes,
            WriteCategory::UndoLog, true));
    }
}

void
UndoLogBackend::store(CoreId core, Addr vaddr, const void *buf,
                      std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        storeLine(core, vaddr, in, in_line);
        vaddr += in_line;
        in += in_line;
        size -= in_line;
    }
}

void
UndoLogBackend::storeLine(CoreId core, Addr vaddr, const void *buf,
                          std::uint64_t size)
{
    ssp_assert(tx_[core].inTx, "atomic store outside a transaction");
    ssp_assert(fitsInLine(vaddr, size));
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];

    const Ppn ppn = translate(core, pageOf(vaddr));
    const Addr line_paddr = lineAddr(ppn, lineIndexInPage(vaddr));
    const Addr line_vaddr = lineBase(vaddr);
    machine_->conflicts().recordWrite(core, vaddr);

    if (!tx.lines.contains(line_vaddr)) {
        // First update of the line in this transaction: log the old
        // value and stall until the record is durable (log-before-data).
        LogRecord rec;
        rec.kind = LogRecord::Kind::Data;
        rec.tid = tx.tid;
        rec.addr = line_paddr;
        rec.data.resize(kLineSize);
        now = machine_->caches().read(core, line_paddr, now);
        machine_->mem().read(line_paddr, rec.data.data(), kLineSize);
        now = logs_[core]->append(std::move(rec), now, true);
        tx.lines.insert(line_vaddr);
        tx.pages.insert(pageOf(vaddr));
    }

    machine_->mem().write(line_paddr + lineOffset(vaddr), buf, size);
    now = machine_->caches().write(core, line_paddr, now);
    now += machine_->cfg().opCost;
}

void
UndoLogBackend::commit(CoreId core)
{
    ssp_assert(tx_[core].inTx, "commit outside a transaction");
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];

    // Data persistence: flush every write-set line; the undo records
    // make any ordering among them safe, but commit cannot be
    // acknowledged until all of them are durable.
    Cycles flushed = now;
    for (Addr line_vaddr : tx.lines) {
        const Ppn ppn = machine_->pt().translate(pageOf(line_vaddr));
        const Addr loc = lineAddr(ppn, lineIndexInPage(line_vaddr));
        Cycles t = machine_->caches().flushLine(core, loc,
                                                WriteCategory::Data, now);
        flushed = std::max(flushed, t);
    }

    // Commit marker, then the log space is reusable.
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = tx.tid;
    now = logs_[core]->append(std::move(marker), flushed, true);
    logs_[core]->truncate();

    machine_->conflicts().commitTx(core, now, machine_->minClock());
    noteCommit(core);
    tx.clear();
}

void
UndoLogBackend::abort(CoreId core)
{
    ssp_assert(tx_[core].inTx, "abort outside a transaction");
    // Roll back in place from the (fully persisted) undo records.
    rollback(*logs_[core]);
    for (Addr line_vaddr : tx_[core].lines) {
        const Ppn ppn = machine_->pt().translate(pageOf(line_vaddr));
        machine_->caches().invalidateLine(
            lineAddr(ppn, lineIndexInPage(line_vaddr)));
    }
    logs_[core]->truncate();
    machine_->conflicts().abortTx(core);
    tx_[core].clear();
}

void
UndoLogBackend::rollback(PersistLog &log)
{
    auto records = log.persistedRecords();
    // Newest-first restore of old values.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        if (it->kind != LogRecord::Kind::Data)
            continue;
        machine_->mem().write(it->addr, it->data.data(), kLineSize);
    }
}

void
UndoLogBackend::recover()
{
    // Any log content at recovery belongs to an unfinished transaction
    // (committed transactions truncate their log): roll it back.
    for (auto &log : logs_) {
        auto records = log->persistedRecords();
        bool committed = false;
        for (const auto &rec : records) {
            if (rec.kind == LogRecord::Kind::Commit)
                committed = true;
        }
        if (!committed)
            rollback(*log);
        log->truncate();
    }
}

std::uint64_t
UndoLogBackend::loggingWrites() const
{
    return machine_->bus().nvramWrites(WriteCategory::UndoLog);
}

} // namespace ssp
