/**
 * @file
 * A generic persistent log with a durability watermark, shared by the
 * hardware undo-logging and redo-logging baselines (and the shadow-
 * paging ablation's mapping journal).
 *
 * Records are kept structured for the simulator's benefit, while sizes
 * and line-granular write-back are byte-accurate so the log-write counts
 * of Figure 6 are faithful.  A record is durable when the log line that
 * contains its last byte has been written to NVRAM.
 */

#ifndef SSP_BASELINES_PERSIST_LOG_HH
#define SSP_BASELINES_PERSIST_LOG_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "mem/memory_bus.hh"

namespace ssp
{

/** One log record. */
struct LogRecord
{
    enum class Kind : std::uint8_t
    {
        Data,   ///< address + one cache line of (old or new) data
        Commit, ///< transaction commit marker
        Map,    ///< page-mapping change (shadow-paging ablation)
    };

    Kind kind = Kind::Data;
    TxId tid = 0;
    Addr addr = 0;            ///< target line address (Data) / vpn (Map)
    Ppn mapPpn = kInvalidPpn; ///< new mapping (Map records)
    std::vector<std::uint8_t> data; ///< line payload (Data records)

    /** Serialized size: 16-byte header plus the payload. */
    std::uint64_t
    sizeBytes() const
    {
        return kind == Kind::Commit ? 8 : 16 + data.size();
    }

    /** Size including line padding (synchronous logging cannot pack
     *  across entries that persist at different times). */
    std::uint64_t
    paddedSizeBytes() const
    {
        const std::uint64_t raw = sizeBytes();
        return (raw + kLineSize - 1) / kLineSize * kLineSize;
    }
};

/** Append-only log over an NVRAM region. */
class PersistLog
{
  public:
    /**
     * @param bus Memory bus for write-back accounting/timing.
     * @param base_addr NVRAM byte address of this log's region.
     * @param capacity_bytes Region size.
     * @param category Write category the log's traffic is charged to.
     * @param line_padded When true, each record occupies whole lines of
     *        its own (synchronous hardware logging: every entry persists
     *        by itself, so entries cannot share lines).  When false,
     *        records pack back-to-back (asynchronous streaming).
     */
    PersistLog(MemoryBus &bus, Addr base_addr, std::uint64_t capacity_bytes,
               WriteCategory category, bool line_padded = false);

    /**
     * Append a record.
     * @param persist_now Synchronous logging (undo): stall until the
     *        record's lines are in NVRAM.  Asynchronous logging (redo):
     *        stream full lines in the background.
     * @return completion time the caller must stall to (== @p now for
     *         asynchronous appends).
     */
    Cycles append(LogRecord rec, Cycles now, bool persist_now);

    /** Force everything appended so far to NVRAM; returns completion. */
    Cycles flush(Cycles now);

    /** Index of the most recently appended record. */
    std::size_t
    lastIndex() const
    {
        return records_.size() - 1;
    }

    /** True once record @p idx is durable (its last byte persisted). */
    bool
    isPersisted(std::size_t idx) const
    {
        return recordEnds_[idx] <= persistedBytes_;
    }

    /**
     * In-buffer record update (the redo baseline's log buffer predicts a
     * line's final value).  Only legal while the record is unpersisted.
     */
    LogRecord &mutableRecord(std::size_t idx);

    /** Records that would survive a crash right now. */
    std::vector<LogRecord> persistedRecords() const;

    /** Drop all records and reset the head (post-commit truncation). */
    void truncate();

    /** Power failure: the unpersisted tail is lost. */
    void powerFail();

    std::uint64_t appendedBytes() const { return headBytes_; }
    std::uint64_t persistedBytes() const { return persistedBytes_; }
    std::uint64_t lineWrites() const { return lineWrites_; }

  private:
    Cycles persistUpTo(std::uint64_t upto, Cycles now, bool partial);

    MemoryBus &bus_;
    Addr baseAddr_;
    std::uint64_t capacityBytes_;
    WriteCategory category_;
    bool linePadded_;

    std::deque<LogRecord> records_;
    std::vector<std::uint64_t> recordEnds_;
    std::uint64_t headBytes_ = 0;
    std::uint64_t persistedBytes_ = 0;
    std::uint64_t lineWrites_ = 0;
    /** Next line index not yet written to the NVRAM array.  The tail
     *  line combines in the controller's persistent write queue, so a
     *  partially-filled line is written to the array only once. */
    std::uint64_t countedLines_ = 0;
    /** Completion time of the latest background line write. */
    Cycles backgroundDoneAt_ = 0;
};

} // namespace ssp

#endif // SSP_BASELINES_PERSIST_LOG_HH
