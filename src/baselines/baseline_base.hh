/**
 * @file
 * Shared infrastructure for the logging baselines and the shadow-paging
 * ablation: TLB-timed address translation over the identity-mapped
 * persistent heap, per-core transaction bookkeeping (write set of lines
 * and pages), and the common crash plumbing.
 */

#ifndef SSP_BASELINES_BASELINE_BASE_HH
#define SSP_BASELINES_BASELINE_BASE_HH

#include <memory>
#include <set>
#include <vector>

#include "core/backend.hh"
#include "core/config.hh"
#include "core/machine.hh"

namespace ssp
{

/** Per-core transaction state common to all baselines. */
struct BaselineTxState
{
    bool inTx = false;
    TxId tid = 0;
    /** Distinct line addresses written by the ongoing transaction. */
    std::set<Addr> lines;
    /** Distinct pages written by the ongoing transaction. */
    std::set<Vpn> pages;

    void
    clear()
    {
        inTx = false;
        lines.clear();
        pages.clear();
    }
};

/** Base class for UNDO-LOG, REDO-LOG and SHADOW. */
class BaselineBase : public AtomicityBackend
{
  public:
    explicit BaselineBase(const SspConfig &cfg);

    void begin(CoreId core) override;
    bool inTx(CoreId core) const override;
    void load(CoreId core, Addr vaddr, void *buf,
              std::uint64_t size) override;
    void storeRaw(Addr vaddr, const void *buf, std::uint64_t size) override;
    void loadRaw(Addr vaddr, void *buf, std::uint64_t size) override;
    void crash() override;
    Machine &machine() override { return *machine_; }
    std::uint64_t committedTxs() const override { return committedTxs_; }
    const TxCharacterization &characterization() const override
    {
        return charz_;
    }

    const SspConfig &cfg() const { return machine_->cfg(); }

  protected:
    /**
     * Timed translation through the TLB (page walk on a miss); baselines
     * have no SSP metadata to fetch.
     */
    Ppn translate(CoreId core, Vpn vpn);

    /**
     * Where a load should read line @p line_vaddr from.  The redo
     * baseline redirects reads of lines in the ongoing transaction to
     * its write buffer; others read in place.
     * @return true when the backend supplied the data itself.
     */
    virtual bool redirectLoad(CoreId /*core*/, Addr /*line_vaddr*/,
                              std::uint64_t /*offset*/, void * /*buf*/,
                              std::uint64_t /*size*/)
    {
        return false;
    }

    /** Subclass volatile-state reset on power failure. */
    virtual void onCrash() = 0;

    /** Record a committed transaction's characterization. */
    void noteCommit(CoreId core);

    std::unique_ptr<Machine> machine_;
    std::vector<BaselineTxState> tx_;
    TxId nextTid_ = 1;
    std::uint64_t committedTxs_ = 0;
    TxCharacterization charz_;
};

} // namespace ssp

#endif // SSP_BASELINES_BASELINE_BASE_HH
