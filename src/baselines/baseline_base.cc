#include "baselines/baseline_base.hh"

#include "common/logging.hh"

namespace ssp
{

BaselineBase::BaselineBase(const SspConfig &cfg)
    : machine_(std::make_unique<Machine>(cfg)), tx_(cfg.numCores)
{
}

void
BaselineBase::begin(CoreId core)
{
    ssp_assert(!tx_[core].inTx, "nested failure-atomic sections");
    tx_[core].inTx = true;
    tx_[core].tid = nextTid_++;
    machine_->clock(core) += machine_->cfg().opCost;
    machine_->conflicts().beginTx(core, machine_->clock(core));
}

bool
BaselineBase::inTx(CoreId core) const
{
    return tx_[core].inTx;
}

Ppn
BaselineBase::translate(CoreId core, Vpn vpn)
{
    Cycles &now = machine_->clock(core);
    Tlb &tlb = machine_->tlb(core);
    if (TlbEntry *hit = tlb.lookup(vpn))
        return hit->ppn0;
    tlb.countMiss();
    now = machine_->pt().walk(now);
    Ppn ppn = machine_->pt().translate(vpn);
    TlbEntry entry;
    entry.valid = true;
    entry.vpn = vpn;
    entry.ppn0 = ppn;
    tlb.insert(entry);
    return ppn;
}

void
BaselineBase::load(CoreId core, Addr vaddr, void *buf, std::uint64_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    Cycles &now = machine_->clock(core);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        const Ppn ppn = translate(core, pageOf(vaddr));
        const Addr loc =
            lineAddr(ppn, lineIndexInPage(vaddr)) + lineOffset(vaddr);
        now = machine_->caches().read(core, loc, now);
        now += machine_->cfg().opCost;
        if (!redirectLoad(core, lineBase(vaddr), lineOffset(vaddr), out,
                          in_line)) {
            machine_->mem().read(loc, out, in_line);
        }
        machine_->conflicts().recordRead(core, vaddr);
        vaddr += in_line;
        out += in_line;
        size -= in_line;
    }
}

void
BaselineBase::storeRaw(Addr vaddr, const void *buf, std::uint64_t size)
{
    // Identity-style setup store: write through the page table mapping.
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        const Ppn ppn = machine_->pt().translate(pageOf(vaddr));
        machine_->mem().write(
            lineAddr(ppn, lineIndexInPage(vaddr)) + lineOffset(vaddr), in,
            in_line);
        vaddr += in_line;
        in += in_line;
        size -= in_line;
    }
}

void
BaselineBase::loadRaw(Addr vaddr, void *buf, std::uint64_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        const Ppn ppn = machine_->pt().translate(pageOf(vaddr));
        if (!redirectLoad(0, lineBase(vaddr), lineOffset(vaddr), out,
                          in_line)) {
            machine_->mem().read(
                lineAddr(ppn, lineIndexInPage(vaddr)) + lineOffset(vaddr),
                out, in_line);
        }
        vaddr += in_line;
        out += in_line;
        size -= in_line;
    }
}

void
BaselineBase::crash()
{
    machine_->powerFail();
    for (auto &t : tx_)
        t.clear();
    onCrash();
}

void
BaselineBase::noteCommit(CoreId core)
{
    charz_.linesPerTx.sample(tx_[core].lines.size());
    charz_.pagesPerTx.sample(tx_[core].pages.size());
    ++committedTxs_;
}

} // namespace ssp
