/**
 * @file
 * REDO-LOG: a DHTM-style hardware redo-logging baseline (paper section
 * 5.1; Joshi et al., ISCA'18).
 *
 * Semantics: atomic stores are buffered volatile (the L1 holds the
 * speculative version; reads of the write set are redirected to it).
 * Redo records stream to NVRAM *asynchronously* — stores do not stall.
 * A log buffer predicts the final value of each line, so one record per
 * distinct modified line is written.  Commit stalls only until the log
 * (plus commit marker) is durable; the in-place data write-back happens
 * after the commit acknowledgment, overlapping with subsequent
 * execution, which is DHTM's headline optimization.  Recovery replays
 * the redo records of committed transactions.
 */

#ifndef SSP_BASELINES_REDO_LOG_HH
#define SSP_BASELINES_REDO_LOG_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/baseline_base.hh"
#include "baselines/persist_log.hh"

namespace ssp
{

/** The hardware redo-logging design. */
class RedoLogBackend : public BaselineBase
{
  public:
    explicit RedoLogBackend(const SspConfig &cfg);

    const char *name() const override { return "REDO-LOG"; }
    void store(CoreId core, Addr vaddr, const void *buf,
               std::uint64_t size) override;
    void commit(CoreId core) override;
    void abort(CoreId core) override;
    void recover() override;
    std::uint64_t loggingWrites() const override;

    /**
     * Test hook: run only the durability half of commit (log flush +
     * marker), without applying data in place.  Crashing between the two
     * phases exercises the redo-replay recovery path.
     */
    void commitPhase1(CoreId core);

    /** Test hook: the in-place apply half of commit. */
    void commitPhase2(CoreId core);

    PersistLog &log(CoreId core) { return *logs_[core]; }

  protected:
    void onCrash() override;
    bool redirectLoad(CoreId core, Addr line_vaddr, std::uint64_t offset,
                      void *buf, std::uint64_t size) override;

  private:
    using LineImage = std::array<std::uint8_t, kLineSize>;

    void storeLine(CoreId core, Addr vaddr, const void *buf,
                   std::uint64_t size);

    /** Per-core speculative write buffer: line vaddr -> new contents. */
    std::vector<std::unordered_map<Addr, LineImage>> writeBuf_;
    /** Cores that completed phase 1 but not yet phase 2. */
    std::vector<bool> phase1Done_;
    std::vector<std::unique_ptr<PersistLog>> logs_;
};

} // namespace ssp

#endif // SSP_BASELINES_REDO_LOG_HH
