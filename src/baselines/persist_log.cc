#include "baselines/persist_log.hh"

#include "common/logging.hh"

namespace ssp
{

namespace
{

/** Acknowledgment latency when the tail already sits in the persistent
 *  write queue (ADR domain) and no array write is needed. */
constexpr Cycles kWpqAckCycles = 30;

} // namespace

PersistLog::PersistLog(MemoryBus &bus, Addr base_addr,
                       std::uint64_t capacity_bytes, WriteCategory category,
                       bool line_padded)
    : bus_(bus), baseAddr_(base_addr), capacityBytes_(capacity_bytes),
      category_(category), linePadded_(line_padded)
{
    ssp_assert(lineOffset(base_addr) == 0);
    ssp_assert(capacity_bytes >= 4 * kLineSize);
}

Cycles
PersistLog::persistUpTo(std::uint64_t upto, Cycles now, bool partial)
{
    // Array writes happen once per line: the tail line lives in the
    // persistent write queue and combines until full.
    const std::uint64_t last_line = partial
                                        ? (upto + kLineSize - 1) / kLineSize
                                        : upto / kLineSize;
    Cycles done = now;
    bool wrote = false;
    for (std::uint64_t line = countedLines_; line < last_line; ++line) {
        Cycles t =
            bus_.issueWrite(baseAddr_ + line * kLineSize, category_, now);
        ++lineWrites_;
        done = std::max(done, t);
        wrote = true;
    }
    countedLines_ = std::max(countedLines_, last_line);
    persistedBytes_ = std::max(persistedBytes_, upto);
    if (!wrote && partial)
        done = std::max(done, now + kWpqAckCycles);
    return done;
}

Cycles
PersistLog::append(LogRecord rec, Cycles now, bool persist_now)
{
    const std::uint64_t size =
        linePadded_ ? rec.paddedSizeBytes() : rec.sizeBytes();
    if (headBytes_ + size > capacityBytes_) {
        ssp_fatal("persistent log overflow (%llu bytes appended)",
                  static_cast<unsigned long long>(headBytes_));
    }
    records_.push_back(std::move(rec));
    headBytes_ += size;
    recordEnds_.push_back(headBytes_);

    if (persist_now)
        return persistUpTo(headBytes_, now, true);

    // Asynchronous: stream out lines that are now complete; remember
    // their completion so a later flush knows how far along we are.
    const std::uint64_t full = headBytes_ / kLineSize * kLineSize;
    if (full > persistedBytes_)
        backgroundDoneAt_ =
            std::max(backgroundDoneAt_, persistUpTo(full, now, false));
    return now;
}

Cycles
PersistLog::flush(Cycles now)
{
    Cycles done = std::max(now, backgroundDoneAt_);
    if (persistedBytes_ < headBytes_)
        done = std::max(done, persistUpTo(headBytes_, now, true));
    return done;
}

std::vector<LogRecord>
PersistLog::persistedRecords() const
{
    std::vector<LogRecord> out;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (recordEnds_[i] <= persistedBytes_)
            out.push_back(records_[i]);
    }
    return out;
}

LogRecord &
PersistLog::mutableRecord(std::size_t idx)
{
    ssp_assert(idx < records_.size());
    ssp_assert(!isPersisted(idx),
               "updating a log record that already reached NVRAM");
    return records_[idx];
}

void
PersistLog::truncate()
{
    records_.clear();
    recordEnds_.clear();
    headBytes_ = 0;
    persistedBytes_ = 0;
    countedLines_ = 0;
    backgroundDoneAt_ = 0;
}

void
PersistLog::powerFail()
{
    while (!records_.empty() && recordEnds_.back() > persistedBytes_) {
        records_.pop_back();
        recordEnds_.pop_back();
    }
    headBytes_ = records_.empty() ? 0 : recordEnds_.back();
    backgroundDoneAt_ = 0;
}

} // namespace ssp
