#include "baselines/shadow_paging.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace ssp
{

ShadowPagingBackend::ShadowPagingBackend(const SspConfig &cfg)
    : BaselineBase(cfg), shadow_(cfg.numCores),
      pool_(cfg.shadowPoolBase(), cfg.shadowPoolPages)
{
    mapJournal_ = std::make_unique<PersistLog>(
        machine_->bus(), cfg.logBase(), cfg.logBytes(),
        WriteCategory::MetaJournal);
}

Ppn
ShadowPagingBackend::activePpn(CoreId core, Vpn vpn)
{
    auto it = shadow_[core].find(vpn);
    if (it != shadow_[core].end())
        return it->second;
    return translate(core, vpn);
}

void
ShadowPagingBackend::load(CoreId core, Addr vaddr, void *buf,
                          std::uint64_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    Cycles &now = machine_->clock(core);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        const Ppn ppn = activePpn(core, pageOf(vaddr));
        const Addr loc =
            lineAddr(ppn, lineIndexInPage(vaddr)) + lineOffset(vaddr);
        now = machine_->caches().read(core, loc, now);
        now += machine_->cfg().opCost;
        machine_->mem().read(loc, out, in_line);
        machine_->conflicts().recordRead(core, vaddr);
        vaddr += in_line;
        out += in_line;
        size -= in_line;
    }
}

void
ShadowPagingBackend::store(CoreId core, Addr vaddr, const void *buf,
                           std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        storeLine(core, vaddr, in, in_line);
        vaddr += in_line;
        in += in_line;
        size -= in_line;
    }
}

void
ShadowPagingBackend::storeLine(CoreId core, Addr vaddr, const void *buf,
                               std::uint64_t size)
{
    ssp_assert(tx_[core].inTx, "atomic store outside a transaction");
    ssp_assert(fitsInLine(vaddr, size));
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];
    const Vpn vpn = pageOf(vaddr);
    machine_->conflicts().recordWrite(core, vaddr);

    auto it = shadow_[core].find(vpn);
    if (it == shadow_[core].end()) {
        // Page-granularity CoW: copy all 64 lines into a fresh shadow
        // page.  The copies run through the cache on the critical path
        // (they must be read before the transaction can proceed).
        const Ppn src = translate(core, vpn);
        const Ppn dst = pool_.allocate();
        Cycles copied = now;
        for (unsigned li = 0; li < kLinesPerPage; ++li) {
            Cycles t = machine_->caches().read(core, lineAddr(src, li),
                                               now);
            machine_->mem().copyLine(lineAddr(dst, li), lineAddr(src, li));
            machine_->caches().write(core, lineAddr(dst, li), t);
            copied = std::max(copied, t);
        }
        now = copied;
        it = shadow_[core].emplace(vpn, dst).first;
        tx.pages.insert(vpn);
    }

    const Ppn ppn = it->second;
    const Addr loc = lineAddr(ppn, lineIndexInPage(vaddr));
    machine_->mem().write(loc + lineOffset(vaddr), buf, size);
    now = machine_->caches().write(core, loc, now);
    now += machine_->cfg().opCost;
    tx.lines.insert(lineBase(vaddr));
}

void
ShadowPagingBackend::commit(CoreId core)
{
    ssp_assert(tx_[core].inTx, "commit outside a transaction");
    Cycles &now = machine_->clock(core);
    BaselineTxState &tx = tx_[core];

    // Persist every line of every shadow page (the 64x write
    // amplification the paper cites), then the mapping records.
    Cycles flushed = now;
    for (const auto &[vpn, ppn] : shadow_[core]) {
        for (unsigned li = 0; li < kLinesPerPage; ++li) {
            Cycles t = machine_->caches().flushLine(
                core, lineAddr(ppn, li), WriteCategory::PageCopy, now);
            // Even lines that were never cached must reach NVRAM: the
            // copy loop made them dirty, but flush any stragglers too.
            flushed = std::max(flushed, t);
        }
    }

    for (const auto &[vpn, ppn] : shadow_[core]) {
        LogRecord rec;
        rec.kind = LogRecord::Kind::Map;
        rec.tid = tx.tid;
        rec.addr = vpn;
        rec.mapPpn = ppn;
        mapJournal_->append(std::move(rec), flushed, false);
    }
    LogRecord marker;
    marker.kind = LogRecord::Kind::Commit;
    marker.tid = tx.tid;
    mapJournal_->append(std::move(marker), flushed, false);
    now = mapJournal_->flush(flushed);

    // Apply the mapping switches; old pages return to the pool.
    for (const auto &[vpn, ppn] : shadow_[core]) {
        const Ppn old = machine_->pt().translate(vpn);
        machine_->pt().map(vpn, ppn);
        pool_.release(old);
        machine_->tlb(core).evict(vpn); // translation changed
    }
    // Bound the mapping journal (a real system would checkpoint).
    mapJournal_->truncate();

    shadow_[core].clear();
    machine_->conflicts().commitTx(core, now, machine_->minClock());
    noteCommit(core);
    tx.clear();
}

void
ShadowPagingBackend::abort(CoreId core)
{
    ssp_assert(tx_[core].inTx, "abort outside a transaction");
    for (const auto &[vpn, ppn] : shadow_[core]) {
        for (unsigned li = 0; li < kLinesPerPage; ++li)
            machine_->caches().invalidateLine(lineAddr(ppn, li));
        pool_.release(ppn);
    }
    shadow_[core].clear();
    machine_->conflicts().abortTx(core);
    tx_[core].clear();
}

void
ShadowPagingBackend::onCrash()
{
    for (auto &s : shadow_)
        s.clear();
    mapJournal_->powerFail();
    // Shadow pages allocated by in-flight transactions leak back into
    // the pool on recovery (the pool is rebuilt from the page table).
}

void
ShadowPagingBackend::recover()
{
    auto records = mapJournal_->persistedRecords();
    std::unordered_set<TxId> committed;
    for (const auto &rec : records) {
        if (rec.kind == LogRecord::Kind::Commit)
            committed.insert(rec.tid);
    }
    for (const auto &rec : records) {
        if (rec.kind != LogRecord::Kind::Map ||
            !committed.contains(rec.tid)) {
            continue;
        }
        machine_->pt().map(rec.addr, rec.mapPpn);
    }
    mapJournal_->truncate();

    // Rebuild the pool: reserved-range pages plus retired heap pages —
    // everything below the pool end that the page table does not map.
    std::unordered_set<Ppn> mapped;
    machine_->pt().forEachEntry(
        [&](Vpn, Ppn ppn) { mapped.insert(ppn); });
    std::vector<Ppn> free_list;
    const Ppn end = cfg().shadowPoolBase() + cfg().shadowPoolPages;
    for (Ppn ppn = 0; ppn < end; ++ppn) {
        if (!mapped.contains(ppn))
            free_list.push_back(ppn);
    }
    pool_ = FreePagePool::fromList(cfg().shadowPoolBase(),
                                   cfg().shadowPoolPages, free_list);
}

std::uint64_t
ShadowPagingBackend::loggingWrites() const
{
    return machine_->bus().nvramWrites(WriteCategory::MetaJournal) +
           machine_->bus().nvramWrites(WriteCategory::PageCopy);
}

} // namespace ssp
