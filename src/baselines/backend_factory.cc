#include "baselines/backend_factory.hh"

#include "baselines/redo_log.hh"
#include "baselines/shadow_paging.hh"
#include "baselines/undo_log.hh"
#include "common/logging.hh"
#include "core/ssp_system.hh"

namespace ssp
{

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Ssp:
        return "SSP";
      case BackendKind::UndoLog:
        return "UNDO-LOG";
      case BackendKind::RedoLog:
        return "REDO-LOG";
      case BackendKind::Shadow:
        return "SHADOW";
    }
    return "unknown";
}

BackendKind
parseBackendKind(const std::string &name)
{
    if (name == "SSP" || name == "ssp")
        return BackendKind::Ssp;
    if (name == "UNDO-LOG" || name == "undo" || name == "undo-log")
        return BackendKind::UndoLog;
    if (name == "REDO-LOG" || name == "redo" || name == "redo-log")
        return BackendKind::RedoLog;
    if (name == "SHADOW" || name == "shadow")
        return BackendKind::Shadow;
    ssp_fatal("unknown backend '%s'", name.c_str());
}

std::unique_ptr<AtomicityBackend>
makeBackend(BackendKind kind, const SspConfig &cfg)
{
    switch (kind) {
      case BackendKind::Ssp:
        return std::make_unique<SspSystem>(cfg);
      case BackendKind::UndoLog:
        return std::make_unique<UndoLogBackend>(cfg);
      case BackendKind::RedoLog:
        return std::make_unique<RedoLogBackend>(cfg);
      case BackendKind::Shadow:
        return std::make_unique<ShadowPagingBackend>(cfg);
    }
    ssp_panic("unreachable backend kind");
}

std::vector<BackendKind>
paperBackends()
{
    return {BackendKind::UndoLog, BackendKind::RedoLog, BackendKind::Ssp};
}

} // namespace ssp
