/**
 * @file
 * Lightweight statistics counters.
 *
 * Every subsystem owns a StatGroup; the benches and tests read counters by
 * name.  Counters are plain uint64 — the simulator is single-threaded (it
 * *models* multiple cores), so no atomics are needed.
 */

#ifndef SSP_COMMON_STATS_HH
#define SSP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssp
{

/** A named bag of counters with hierarchical dotted names. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p delta to counter @p key (creating it at zero). */
    void
    add(const std::string &key, std::uint64_t delta = 1)
    {
        counters_[key] += delta;
    }

    /** Set counter @p key to @p value. */
    void
    set(const std::string &key, std::uint64_t value)
    {
        counters_[key] = value;
    }

    /** Read counter @p key; absent counters read as zero. */
    std::uint64_t get(const std::string &key) const;

    /** Reset every counter to zero (keeps the keys). */
    void reset();

    const std::string &name() const { return name_; }

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Multi-line "name.key = value" dump. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Running scalar summary (count/sum/min/max) for quantities like
 * write-set sizes, where the paper reports averages and maxima (Table 3).
 */
class StatSummary
{
  public:
    void sample(std::uint64_t v);
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace ssp

#endif // SSP_COMMON_STATS_HH
