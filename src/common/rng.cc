#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace ssp
{

Rng::Rng(std::uint64_t seed)
{
    // SplitMix64 to expand the seed into two non-zero state words.
    auto splitmix = [&seed]() {
        seed += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = seed;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };
    s0_ = splitmix();
    s1_ = splitmix();
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    ssp_assert(bound > 0);
    // Rejection sampling to avoid modulo bias for large bounds.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    ssp_assert(lo <= hi);
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfGenerator::ZipfGenerator(Kind kind, std::uint64_t n, std::uint64_t seed)
    : kind_(kind), n_(n), rng_(seed)
{
    ssp_assert(n > 0);
}

ZipfGenerator
ZipfGenerator::hotspot(std::uint64_t n, double hot_frac, double hot_prob,
                       std::uint64_t seed)
{
    ssp_assert(hot_frac > 0 && hot_frac <= 1.0);
    ssp_assert(hot_prob >= 0 && hot_prob <= 1.0);
    ZipfGenerator g(Kind::Hotspot, n, seed);
    g.hotCount_ = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(n) * hot_frac));
    if (g.hotCount_ == 0)
        g.hotCount_ = 1;
    if (g.hotCount_ > n)
        g.hotCount_ = n;
    g.hotProb_ = hot_prob;
    return g;
}

ZipfGenerator
ZipfGenerator::classic(std::uint64_t n, double theta, std::uint64_t seed)
{
    ssp_assert(theta > 0 && theta < 1.0);
    ZipfGenerator g(Kind::Classic, n, seed);
    g.theta_ = theta;
    double zetan = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    g.zetan_ = zetan;
    g.alpha_ = 1.0 / (1.0 - theta);
    g.eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2 / zetan);
    return g;
}

std::uint64_t
ZipfGenerator::next()
{
    if (kind_ == Kind::Hotspot) {
        if (rng_.nextBool(hotProb_)) {
            // Hot keys are spread over the key space (every 1/hot_frac-th
            // key) so that hotness is not an artifact of allocation order.
            std::uint64_t h = rng_.nextBounded(hotCount_);
            std::uint64_t stride = n_ / hotCount_;
            if (stride == 0)
                stride = 1;
            return (h * stride) % n_;
        }
        return rng_.nextBounded(n_);
    }
    // Gray et al. "Quickly generating billion-record synthetic databases".
    double u = rng_.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

} // namespace ssp
