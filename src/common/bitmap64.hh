/**
 * @file
 * A 64-bit per-page bitmap.
 *
 * SSP represents the state of each cache line in a 4 KiB page with one bit
 * in each of three bitmaps (current / updated / committed, paper section
 * 3.2).  This wrapper keeps the bit-twiddling in one audited place and
 * gives the operations the names the paper uses.
 */

#ifndef SSP_COMMON_BITMAP64_HH
#define SSP_COMMON_BITMAP64_HH

#include <bit>
#include <cstdint>
#include <string>

namespace ssp
{

/**
 * Fixed 64-bit bitmap, bit i describes cache line i of a page.
 *
 * All mutators are simple bitwise operations, mirroring the paper's claim
 * that "atomic updates and transaction commit only involve updating the
 * per-page metadata using simple bitwise operations".
 */
class Bitmap64
{
  public:
    constexpr Bitmap64() = default;
    constexpr explicit Bitmap64(std::uint64_t raw) : bits_(raw) {}

    /** Raw 64-bit value (what gets journaled / stored in a TLB entry). */
    constexpr std::uint64_t raw() const { return bits_; }

    /** Test bit @p idx. @pre idx < 64. */
    constexpr bool
    test(unsigned idx) const
    {
        return (bits_ >> idx) & 1u;
    }

    /** Set bit @p idx to one. */
    constexpr void set(unsigned idx) { bits_ |= (std::uint64_t{1} << idx); }

    /** Clear bit @p idx. */
    constexpr void reset(unsigned idx) { bits_ &= ~(std::uint64_t{1} << idx); }

    /** Invert bit @p idx (the flip-current-bit operation). */
    constexpr void flip(unsigned idx) { bits_ ^= (std::uint64_t{1} << idx); }

    /** Clear the whole bitmap (commit clears the updated bitmap). */
    constexpr void clear() { bits_ = 0; }

    /** Number of one-bits; used to pick the consolidation direction. */
    constexpr unsigned popcount() const { return std::popcount(bits_); }

    /** True when no bit is set. */
    constexpr bool none() const { return bits_ == 0; }

    /** True when any bit is set. */
    constexpr bool any() const { return bits_ != 0; }

    /**
     * Index of the lowest set bit.
     * @pre any() — calling this on an empty bitmap is a programming error.
     */
    constexpr unsigned lowestSet() const { return std::countr_zero(bits_); }

    /** XOR, the commit operation: committed ^= updated. */
    constexpr Bitmap64
    operator^(Bitmap64 other) const
    {
        return Bitmap64(bits_ ^ other.bits_);
    }

    constexpr Bitmap64 &
    operator^=(Bitmap64 other)
    {
        bits_ ^= other.bits_;
        return *this;
    }

    constexpr Bitmap64
    operator&(Bitmap64 other) const
    {
        return Bitmap64(bits_ & other.bits_);
    }

    constexpr Bitmap64
    operator|(Bitmap64 other) const
    {
        return Bitmap64(bits_ | other.bits_);
    }

    constexpr Bitmap64 operator~() const { return Bitmap64(~bits_); }

    constexpr bool operator==(const Bitmap64 &) const = default;

    /** Render as a 64-character 0/1 string, bit 0 first (for diagnostics). */
    std::string toString() const;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace ssp

#endif // SSP_COMMON_BITMAP64_HH
