/**
 * @file
 * Fixed-width bitmaps: the 64-bit per-page line bitmap and the
 * multi-word per-line core bitmap.
 *
 * SSP represents the state of each cache line in a 4 KiB page with one bit
 * in each of three bitmaps (current / updated / committed, paper section
 * 3.2).  This wrapper keeps the bit-twiddling in one audited place and
 * gives the operations the names the paper uses.
 *
 * CoreBitmap is the same idea over cores instead of lines: one bit per
 * core, kMaxCores wide, so sharer sets stay representable past the 64
 * cores a single word holds (the directory coherence model's 128- and
 * 256-core machines).
 */

#ifndef SSP_COMMON_BITMAP64_HH
#define SSP_COMMON_BITMAP64_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ssp
{

/**
 * Fixed 64-bit bitmap, bit i describes cache line i of a page.
 *
 * All mutators are simple bitwise operations, mirroring the paper's claim
 * that "atomic updates and transaction commit only involve updating the
 * per-page metadata using simple bitwise operations".
 */
class Bitmap64
{
  public:
    constexpr Bitmap64() = default;
    constexpr explicit Bitmap64(std::uint64_t raw) : bits_(raw) {}

    /** Raw 64-bit value (what gets journaled / stored in a TLB entry). */
    constexpr std::uint64_t raw() const { return bits_; }

    /** Test bit @p idx. @pre idx < 64. */
    constexpr bool
    test(unsigned idx) const
    {
        return (bits_ >> idx) & 1u;
    }

    /** Set bit @p idx to one. */
    constexpr void set(unsigned idx) { bits_ |= (std::uint64_t{1} << idx); }

    /** Clear bit @p idx. */
    constexpr void reset(unsigned idx) { bits_ &= ~(std::uint64_t{1} << idx); }

    /** Invert bit @p idx (the flip-current-bit operation). */
    constexpr void flip(unsigned idx) { bits_ ^= (std::uint64_t{1} << idx); }

    /** Clear the whole bitmap (commit clears the updated bitmap). */
    constexpr void clear() { bits_ = 0; }

    /** Number of one-bits; used to pick the consolidation direction. */
    constexpr unsigned popcount() const { return std::popcount(bits_); }

    /** True when no bit is set. */
    constexpr bool none() const { return bits_ == 0; }

    /** True when any bit is set. */
    constexpr bool any() const { return bits_ != 0; }

    /**
     * Index of the lowest set bit.
     * @pre any() — calling this on an empty bitmap is a programming error.
     */
    constexpr unsigned lowestSet() const { return std::countr_zero(bits_); }

    /** XOR, the commit operation: committed ^= updated. */
    constexpr Bitmap64
    operator^(Bitmap64 other) const
    {
        return Bitmap64(bits_ ^ other.bits_);
    }

    constexpr Bitmap64 &
    operator^=(Bitmap64 other)
    {
        bits_ ^= other.bits_;
        return *this;
    }

    constexpr Bitmap64
    operator&(Bitmap64 other) const
    {
        return Bitmap64(bits_ & other.bits_);
    }

    constexpr Bitmap64
    operator|(Bitmap64 other) const
    {
        return Bitmap64(bits_ | other.bits_);
    }

    constexpr Bitmap64 operator~() const { return Bitmap64(~bits_); }

    constexpr bool operator==(const Bitmap64 &) const = default;

    /** Render as a 64-character 0/1 string, bit 0 first (for diagnostics). */
    std::string toString() const;

  private:
    std::uint64_t bits_ = 0;
};

/**
 * Fixed kMaxCores-bit bitmap, bit c describes core c.
 *
 * The sharer index stores one of these per cached line and the
 * coherence models consume them as invalidation target sets, so the
 * operations are the set algebra those paths need: single-bit edits,
 * union, per-word iteration in ascending core order, and popcount (a
 * directory charges by sharer count, which is exactly popcount).
 */
class CoreBitmap
{
  public:
    /** 64-bit words backing the bitmap. */
    static constexpr unsigned kWords = kMaxCores / 64;

    constexpr CoreBitmap() = default;

    /** A bitmap whose low 64 bits are @p bits (test shorthand). */
    static constexpr CoreBitmap
    fromMask(std::uint64_t bits)
    {
        CoreBitmap b;
        b.words_[0] = bits;
        return b;
    }

    /** A bitmap with only @p core's bit set. */
    static constexpr CoreBitmap
    ofCore(CoreId core)
    {
        CoreBitmap b;
        b.set(core);
        return b;
    }

    /** Test bit @p core. @pre core < kMaxCores. */
    constexpr bool
    test(CoreId core) const
    {
        return (words_[core / 64] >> (core % 64)) & 1u;
    }

    /** Set bit @p core. */
    constexpr void
    set(CoreId core)
    {
        words_[core / 64] |= std::uint64_t{1} << (core % 64);
    }

    /** Clear bit @p core. */
    constexpr void
    reset(CoreId core)
    {
        words_[core / 64] &= ~(std::uint64_t{1} << (core % 64));
    }

    /** Clear every bit. */
    constexpr void clear() { words_ = {}; }

    /** Number of set bits (the directory's chargeable sharer count). */
    constexpr unsigned
    count() const
    {
        unsigned n = 0;
        for (std::uint64_t w : words_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /** True when no bit is set. */
    constexpr bool
    none() const
    {
        for (std::uint64_t w : words_)
            if (w != 0)
                return false;
        return true;
    }

    /** True when any bit is set. */
    constexpr bool any() const { return !none(); }

    /** Raw word @p i (bits 64i .. 64i+63). */
    constexpr std::uint64_t word(unsigned i) const { return words_[i]; }

    constexpr CoreBitmap &
    operator|=(const CoreBitmap &other)
    {
        for (unsigned i = 0; i < kWords; ++i)
            words_[i] |= other.words_[i];
        return *this;
    }

    constexpr CoreBitmap
    operator|(const CoreBitmap &other) const
    {
        CoreBitmap out = *this;
        out |= other;
        return out;
    }

    constexpr CoreBitmap &
    operator&=(const CoreBitmap &other)
    {
        for (unsigned i = 0; i < kWords; ++i)
            words_[i] &= other.words_[i];
        return *this;
    }

    constexpr CoreBitmap
    operator&(const CoreBitmap &other) const
    {
        CoreBitmap out = *this;
        out &= other;
        return out;
    }

    constexpr bool operator==(const CoreBitmap &) const = default;

    /**
     * Invoke @p fn(core) for every set bit, in ascending core order —
     * the iteration order every charge path depends on for
     * determinism.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (unsigned i = 0; i < kWords; ++i) {
            std::uint64_t w = words_[i];
            while (w != 0) {
                const unsigned bit =
                    static_cast<unsigned>(std::countr_zero(w));
                w &= w - 1;
                fn(static_cast<CoreId>(i * 64 + bit));
            }
        }
    }

    /** Render set cores as "{0, 3, 65}" (for diagnostics). */
    std::string toString() const;

  private:
    std::array<std::uint64_t, kWords> words_{};
};

} // namespace ssp

#endif // SSP_COMMON_BITMAP64_HH
