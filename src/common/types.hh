/**
 * @file
 * Fundamental fixed-width types, address arithmetic and geometry constants
 * shared by every SSP subsystem.
 *
 * The geometry follows the paper (MICRO'19, Table 2 and section 4.3):
 * 4 KiB base pages, 64-byte cache lines, hence 64 lines per page and
 * 64-bit per-page bitmaps.
 */

#ifndef SSP_COMMON_TYPES_HH
#define SSP_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>
#include <cstdlib>

// The tree leans on C++20 throughout (defaulted operator== as in
// common/bitmap64.hh, __VA_OPT__ in common/logging.hh, ...).  Fail fast
// with one clear diagnostic instead of hundreds of cascading errors.
#if !defined(_MSVC_LANG) && defined(__cplusplus) && __cplusplus < 202002L
#error "SSP requires C++20: compile with -std=c++20 or newer"
#elif defined(_MSVC_LANG) && _MSVC_LANG < 202002L
#error "SSP requires C++20: compile with /std:c++20 or newer"
#endif

namespace ssp
{

/** Deleter for calloc-backed arrays (lazily-mapped zero pages). */
struct FreeDeleter
{
    void operator()(void *p) const { std::free(p); }
};

/** A byte address (virtual or physical, context-dependent). */
using Addr = std::uint64_t;

/** A virtual page number. */
using Vpn = std::uint64_t;

/** A physical page number. */
using Ppn = std::uint64_t;

/** Simulated time in core clock cycles. */
using Cycles = std::uint64_t;

/** Identifier of a simulated core. */
using CoreId = std::uint32_t;

/**
 * Largest core count any simulated machine supports: the width of the
 * multi-word per-line sharer bitmap (common/bitmap64.hh CoreBitmap) and
 * of the mesh interconnect's tile space (src/interconnect/).
 */
inline constexpr unsigned kMaxCores = 256;

/** Identifier of a durable transaction, assigned by the memory controller. */
using TxId = std::uint64_t;

/** Slot index inside the SSP cache (the paper's SID). */
using SlotId = std::uint32_t;

/** Core clock frequency used to convert ns to cycles. */
inline constexpr double kCoreGHz = 3.7;

/** Convert nanoseconds to core cycles at kCoreGHz. */
constexpr Cycles
nsToCycles(double ns)
{
    return static_cast<Cycles>(ns * kCoreGHz);
}

/** An invalid physical page number sentinel. */
inline constexpr Ppn kInvalidPpn = ~std::uint64_t{0};

/** An invalid slot sentinel. */
inline constexpr SlotId kInvalidSlot = ~std::uint32_t{0};

/** Base page size in bytes (the paper only supports 4 KiB base pages). */
inline constexpr std::uint64_t kPageSize = 4096;

/** Cache line size in bytes. */
inline constexpr std::uint64_t kLineSize = 64;

/** Number of cache lines per page; equals the per-page bitmap width. */
inline constexpr std::uint64_t kLinesPerPage = kPageSize / kLineSize;

/** log2(kPageSize). */
inline constexpr unsigned kPageShift = 12;

/** log2(kLineSize). */
inline constexpr unsigned kLineShift = 6;

/** Extract the virtual page number from a virtual address. */
constexpr Vpn
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** Byte offset within the page. */
constexpr std::uint64_t
pageOffset(Addr addr)
{
    return addr & (kPageSize - 1);
}

/** Index of the cache line within its page (0..63). */
constexpr unsigned
lineIndexInPage(Addr addr)
{
    return static_cast<unsigned>(pageOffset(addr) >> kLineShift);
}

/** Global line number of the line containing @p addr. */
constexpr std::uint64_t
lineOf(Addr addr)
{
    return addr >> kLineShift;
}

/** Byte offset within the cache line. */
constexpr std::uint64_t
lineOffset(Addr addr)
{
    return addr & (kLineSize - 1);
}

/** Address of the first byte of the line containing @p addr. */
constexpr Addr
lineBase(Addr addr)
{
    return addr & ~(kLineSize - 1);
}

/** Address of the first byte of page @p ppn. */
constexpr Addr
pageBase(std::uint64_t ppn)
{
    return ppn << kPageShift;
}

/** Physical address of line @p line_idx inside physical page @p ppn. */
constexpr Addr
lineAddr(Ppn ppn, unsigned line_idx)
{
    return pageBase(ppn) + (static_cast<Addr>(line_idx) << kLineShift);
}

/** True if [addr, addr+size) stays within one cache line. */
constexpr bool
fitsInLine(Addr addr, std::uint64_t size)
{
    return size != 0 && lineOffset(addr) + size <= kLineSize;
}

/** True if [addr, addr+size) stays within one page. */
constexpr bool
fitsInPage(Addr addr, std::uint64_t size)
{
    return size != 0 && pageOffset(addr) + size <= kPageSize;
}

} // namespace ssp

#endif // SSP_COMMON_TYPES_HH
