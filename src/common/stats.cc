#include "common/stats.hh"

#include <sstream>

namespace ssp
{

std::uint64_t
StatGroup::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << " = " << kv.second << '\n';
    return os.str();
}

void
StatSummary::sample(std::uint64_t v)
{
    ++count_;
    sum_ += v;
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

void
StatSummary::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

double
StatSummary::mean() const
{
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
}

} // namespace ssp
