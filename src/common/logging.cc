#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ssp
{

namespace
{

bool g_verbose = true;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets the test suite exercise panic
    // paths; uncaught it still terminates the process.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
assertFailImpl(const char *file, int line, const char *cond)
{
    std::fprintf(stderr, "panic: assertion '%s' failed (%s:%d)\n", cond,
                 file, line);
    std::fflush(stderr);
    throw std::logic_error(std::string("assertion failed: ") + cond);
}

void
assertFailImpl(const char *file, int line, const char *cond, const char *fmt,
               ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: assertion '%s' failed%s%s (%s:%d)\n", cond,
                 msg.empty() ? "" : ": ", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::logic_error(std::string("assertion failed: ") + cond +
                           (msg.empty() ? "" : (": " + msg)));
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace ssp
