/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is off but the simulation can continue.
 * inform() — status messages.
 */

#ifndef SSP_COMMON_LOGGING_HH
#define SSP_COMMON_LOGGING_HH

namespace ssp
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond);

[[noreturn]] void assertFailImpl(const char *file, int line, const char *cond,
                                 const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace ssp

#define ssp_panic(...) ::ssp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define ssp_fatal(...) ::ssp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define ssp_warn(...) ::ssp::warnImpl(__VA_ARGS__)
#define ssp_inform(...) ::ssp::informImpl(__VA_ARGS__)

/**
 * Assert an internal invariant; compiled into all build types.
 * The optional message must start with a string literal:
 *   ssp_assert(x < n, "x=%u out of range", x);
 *
 * The no-message form dispatches (via __VA_OPT__) to a message-less
 * overload so no zero-length format string is ever materialized —
 * keeping -Wformat-zero-length quiet under -Werror.
 */
#define ssp_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::ssp::assertFailImpl(__FILE__, __LINE__,                        \
                                  #cond __VA_OPT__(, ) __VA_ARGS__);         \
        }                                                                    \
    } while (0)

/**
 * Hot-loop invariant: checked like ssp_assert in builds without NDEBUG
 * (the Debug/ASan CI leg), compiled out — condition unevaluated — in
 * Release, so inner loops (cache tag lookups, functional memory,
 * sharer-index consistency) pay nothing for their asserts where the
 * numbers are measured.  The unevaluated sizeof keeps variables that
 * only the assertion references "used" under -Wall -Werror.
 */
#ifdef NDEBUG
#define ssp_assert_dbg(cond, ...)                                            \
    do {                                                                     \
        (void)sizeof(!(cond));                                               \
    } while (0)
#else
#define ssp_assert_dbg(...) ssp_assert(__VA_ARGS__)
#endif

#endif // SSP_COMMON_LOGGING_HH
