#include "common/bitmap64.hh"

namespace ssp
{

std::string
Bitmap64::toString() const
{
    std::string out(64, '0');
    for (unsigned i = 0; i < 64; ++i) {
        if (test(i))
            out[i] = '1';
    }
    return out;
}

} // namespace ssp
