#include "common/bitmap64.hh"

namespace ssp
{

std::string
Bitmap64::toString() const
{
    std::string out(64, '0');
    for (unsigned i = 0; i < 64; ++i) {
        if (test(i))
            out[i] = '1';
    }
    return out;
}

std::string
CoreBitmap::toString() const
{
    std::string out = "{";
    forEachSet([&](CoreId core) {
        if (out.size() > 1)
            out += ", ";
        out += std::to_string(core);
    });
    out += "}";
    return out;
}

} // namespace ssp
