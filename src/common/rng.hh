/**
 * @file
 * Deterministic random number generation and the key distributions the
 * paper's workloads use (uniform "-Rand" and the 80/15 hotspot "-Zipf").
 */

#ifndef SSP_COMMON_RNG_HH
#define SSP_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace ssp
{

/**
 * xorshift128+ generator: fast, reproducible across platforms, and good
 * enough for workload generation (we are not doing cryptography).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

/**
 * Zipf-like sampler over [0, n).
 *
 * The paper defines its zipfian microbenchmark workloads operationally:
 * "80% of the updates are applied to 15% of the keys".  Hotspot mode
 * reproduces exactly that.  A classical Zipf(theta) sampler is also
 * provided for the ablation benches.
 */
class ZipfGenerator
{
  public:
    /** Hotspot distribution: @p hot_frac of keys receive @p hot_prob of
     *  accesses (paper default: 0.15 / 0.80). */
    static ZipfGenerator hotspot(std::uint64_t n, double hot_frac,
                                 double hot_prob, std::uint64_t seed);

    /** Classical Zipf with exponent @p theta in (0, 1). */
    static ZipfGenerator classic(std::uint64_t n, double theta,
                                 std::uint64_t seed);

    /** Draw the next key in [0, n). */
    std::uint64_t next();

    std::uint64_t n() const { return n_; }

  private:
    enum class Kind { Hotspot, Classic };

    ZipfGenerator(Kind kind, std::uint64_t n, std::uint64_t seed);

    Kind kind_;
    std::uint64_t n_;
    Rng rng_;
    // Hotspot parameters.
    std::uint64_t hotCount_ = 0;
    double hotProb_ = 0;
    // Classic Zipf parameters (Gray et al. rejection-free method).
    double theta_ = 0;
    double alpha_ = 0;
    double zetan_ = 0;
    double eta_ = 0;
};

} // namespace ssp

#endif // SSP_COMMON_RNG_HH
