/**
 * @file
 * Deterministic fault schedules for the cluster fault-injection harness.
 *
 * A FaultPlan is a cycle-scheduled list of machine failures drawn
 * up-front from one RNG stream derived from the cell seed — so a cell's
 * fault sequence is a pure function of its coordinates and replays
 * bit-identically across --jobs, --cell-threads and host machines.
 * Inter-arrival times are integer draws (uniform around the requested
 * mean), never floating-point exponentials, so the schedule cannot
 * drift across libm implementations.
 *
 * Three fault kinds are drawn:
 *  - PowerFail: the machine loses power between two scheduled slots
 *    (durable state survives, everything volatile is lost);
 *  - CoordinatorCrash: the machine dies while coordinating a 2PC
 *    transaction, between collecting votes and persisting the decision
 *    record — the classic blocking window;
 *  - ParticipantCrash: the machine dies as a 2PC participant inside the
 *    prepare window, after validating but before its vote departs.
 * Window kinds degrade to PowerFail when no 2PC can happen (one
 * machine, or a zero cross-shard fraction), so a scheduled fault never
 * silently disappears.
 */

#ifndef SSP_FAULT_FAULT_PLAN_HH
#define SSP_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "shard/network.hh"

namespace ssp::fault
{

/** What an injected machine failure interrupts. */
enum class FaultKind
{
    PowerFail,        ///< between slots; nothing is in flight
    CoordinatorCrash, ///< mid-2PC, votes collected, decision not durable
    ParticipantCrash, ///< mid-2PC, prepared but the vote never departs
};

/** One scheduled failure of one machine. */
struct FaultEvent
{
    Cycles atCycle = 0;   ///< fires once the machine's clock crosses this
    FaultKind kind = FaultKind::PowerFail;
};

/** Knobs of one cell's fault harness. */
struct FaultParams
{
    /** Expected machine failures per million simulated cycles per
     *  machine; 0 schedules nothing. */
    double ratePerMcycle = 0;
    /** Primary/backup replication: synchronous log shipping per commit,
     *  and a failed primary promotes its backup instead of recovering
     *  in place. */
    bool replicate = false;
    /** Seed of the plan stream (derive from the cell seed with a
     *  dedicated ordinal so it is disjoint from key/arrival/route). */
    std::uint64_t seed = 0;
};

/** Seed ordinal of the fault-plan stream (see sweep_runner). */
inline constexpr std::uint64_t kFaultSeedOrdinal = 307;
/** Seed ordinal of the unreliable-network stream. */
inline constexpr std::uint64_t kNetFaultSeedOrdinal = 401;

/** @{ Pricing constants of the recovery paths (cycles at the simulated
 *  core frequency; ~3.7 GHz, so 50k cycles is ~13.5 us). */
/** Crash detection + firmware/OS restart before log scans begin. */
inline constexpr Cycles kRecoveryBaseCycles = 50000;
/** Sequential NVRAM scan of one 4 KiB journal/log page on recovery
 *  (row-buffer-friendly streaming reads). */
inline constexpr Cycles kRecoveryScanCyclesPerPage = 400;
/** Failure-detection timeout before a backup gives up on its primary
 *  (matches the RPC timeout: 4x the one-way latency). */
inline constexpr Cycles kFailureDetectCycles = 20000;
/** Backup promotion bookkeeping once the handshake completes. */
inline constexpr Cycles kPromotionCycles = 10000;
/** One durable decision-record line appended by the coordinator
 *  (an NVRAM write + flush riding the home branch's commit). */
inline constexpr Cycles kDecisionPersistCycles = 740;
/** @} */

/** @{ Wire sizes of the replication and recovery messages. */
inline constexpr std::uint64_t kShipBytes = 512;   ///< per-commit log ship
inline constexpr std::uint64_t kShipAckBytes = 64; ///< backup's sync ack
inline constexpr std::uint64_t kQueryBytes = 64;   ///< decision-log query
/** @} */

/**
 * Cycles a machine is down recovering in place: detection/restart plus
 * a sequential scan of its persistent journal and log areas.
 */
Cycles recoverInPlaceCycles(const SspConfig &cfg);

/**
 * Cycles a replicated shard is unavailable across a failover: the
 * backup detects the silent primary, runs the promotion handshake (two
 * one-way messages priced by @p net's parameters, uncounted — the
 * handshake is control traffic, not workload traffic) and takes over.
 * No log scan: synchronous shipping means the backup is already
 * current.  Strictly below recoverInPlaceCycles for any real config.
 */
Cycles failoverCycles(const shard::NetworkParams &net);

/**
 * Per-machine lazy fault schedule.  Events are drawn machine by machine
 * from one splitmix64-derived stream each, in schedule order; peek() /
 * advance() walk them, and absorbUntil() drops events that fall inside
 * a recovery window (a machine that is already down cannot fail again —
 * this also bounds faults per run, since downtime never compounds).
 */
class FaultPlan
{
  public:
    FaultPlan(const FaultParams &params, unsigned machines);

    /** True if machine @p m has a scheduled event at or before @p now. */
    bool due(unsigned m, Cycles now) const;

    /** The next scheduled event of machine @p m. @pre hasNext(m). */
    const FaultEvent &peek(unsigned m) const;

    /** Consume machine @p m's next event and draw its successor. */
    void advance(unsigned m);

    /** Drop machine @p m's events scheduled at or before @p until
     *  (the machine was down; a dead machine cannot fail). */
    void absorbUntil(unsigned m, Cycles until);

  private:
    struct Stream
    {
        Rng rng{0};
        FaultEvent next{};
    };

    void draw(Stream &s);

    double rate_ = 0;
    Cycles meanInterval_ = 0;
    std::vector<Stream> streams_;
};

} // namespace ssp::fault

#endif // SSP_FAULT_FAULT_PLAN_HH
