#include "fault/fault_plan.hh"

#include "common/logging.hh"

namespace ssp::fault
{

Cycles
recoverInPlaceCycles(const SspConfig &cfg)
{
    return kRecoveryBaseCycles +
           (Cycles{cfg.journalPages} + Cycles{cfg.logPages}) *
               kRecoveryScanCyclesPerPage;
}

Cycles
failoverCycles(const shard::NetworkParams &net)
{
    const Cycles wire =
        (kShipAckBytes + net.bytesPerCycle - 1) / net.bytesPerCycle;
    const Cycles handshake = 2 * (net.rpcLatency + net.serialization + wire);
    return kFailureDetectCycles + handshake + kPromotionCycles;
}

FaultPlan::FaultPlan(const FaultParams &params, unsigned machines)
    : rate_(params.ratePerMcycle)
{
    if (rate_ <= 0)
        return;
    ssp_assert(rate_ <= 1000.0, "fault rate above one per kilocycle");
    meanInterval_ =
        static_cast<Cycles>(1'000'000.0 / rate_);
    ssp_assert(meanInterval_ >= 1, "degenerate fault interval");
    streams_.resize(machines);
    for (unsigned m = 0; m < machines; ++m) {
        // One disjoint stream per machine, mixed from the plan seed the
        // same way cells derive their own seeds — machine order never
        // couples the schedules.
        std::uint64_t z =
            params.seed + 0x9e3779b97f4a7c15ull * (std::uint64_t{m} + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        streams_[m].rng = Rng(z ^ (z >> 31));
        streams_[m].next.atCycle = 0;
        draw(streams_[m]);
    }
}

void
FaultPlan::draw(Stream &s)
{
    // Integer uniform in [1, 2*mean] — mean meanInterval_ + 1/2, and
    // bit-stable everywhere (no transcendental math in the schedule).
    s.next.atCycle += 1 + s.rng.nextBounded(2 * meanInterval_);
    const std::uint64_t k = s.rng.nextBounded(10);
    if (k < 5)
        s.next.kind = FaultKind::PowerFail;
    else if (k < 8)
        s.next.kind = FaultKind::CoordinatorCrash;
    else
        s.next.kind = FaultKind::ParticipantCrash;
}

bool
FaultPlan::due(unsigned m, Cycles now) const
{
    if (streams_.empty())
        return false;
    return streams_[m].next.atCycle <= now;
}

const FaultEvent &
FaultPlan::peek(unsigned m) const
{
    ssp_assert(!streams_.empty(), "peeking an empty fault plan");
    return streams_[m].next;
}

void
FaultPlan::advance(unsigned m)
{
    ssp_assert(!streams_.empty(), "advancing an empty fault plan");
    draw(streams_[m]);
}

void
FaultPlan::absorbUntil(unsigned m, Cycles until)
{
    if (streams_.empty())
        return;
    while (streams_[m].next.atCycle <= until)
        draw(streams_[m]);
}

} // namespace ssp::fault
