#include "fault/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ssp::fault
{

namespace
{

/**
 * Unreliability the fault rate implies: the same environment that
 * crashes machines drops packets, scaled down (a rate-20 cell loses
 * 10% of transmissions) and capped so retransmission always converges
 * quickly against the 16-retry forced delivery.
 */
shard::NetworkFaultParams
netFaultsFor(double rate_per_mcycle)
{
    shard::NetworkFaultParams p;
    p.lossRate = std::min(0.1, rate_per_mcycle / 200.0);
    p.delayRate = p.lossRate;
    return p;
}

} // namespace

FaultInjector::FaultInjector(shard::Cluster &cluster,
                             const FaultParams &params,
                             std::uint64_t net_seed,
                             double cross_fraction)
    : cluster_(cluster), plan_(params, cluster.machines()),
      replicate_(params.replicate), crossFraction_(cross_fraction),
      recoveryCost_(recoverInPlaceCycles(cluster.machine(0).cfg())),
      failoverCost_(failoverCycles(cluster.network().params())),
      voteTimeout_(shard::NetworkFaultParams{}.timeout),
      armed_(cluster.machines()), hadFault_(cluster.machines(), false),
      firstFaultCommits_(cluster.machines(), 0)
{
    if (params.ratePerMcycle > 0) {
        cluster.network().enableFaults(netFaultsFor(params.ratePerMcycle),
                                       net_seed);
    }
    ssp_assert(failoverCost_ < recoveryCost_,
               "failover must beat in-place recovery");
}

Cycles
FaultInjector::sendReliable(unsigned src, unsigned dst,
                            std::uint64_t bytes)
{
    return cluster_.network().sendReliable(src, dst, bytes);
}

Cycles
FaultInjector::persistDecision(unsigned, CoreId)
{
    ++stats_.decisionRecords;
    return kDecisionPersistCycles;
}

Cycles
FaultInjector::shipCommit(unsigned machine, CoreId)
{
    if (!replicate_)
        return 0;
    // The backup of machine m sits at pseudo-id machines+m: same fabric
    // pricing, never a shard peer.  Synchronous shipping — the commit
    // waits for the ack, which is what keeps the backup current enough
    // to promote without a log scan.
    shard::NetworkModel &net = cluster_.network();
    const unsigned backup = cluster_.machines() + machine;
    const Cycles cost = net.messageCost(machine, backup, kShipBytes) +
                        net.messageCost(backup, machine, kShipAckBytes);
    stats_.logShipMessages += 2;
    stats_.logShipCycles += cost;
    return cost;
}

bool
FaultInjector::coordinatorCrashArmed(unsigned home)
{
    return armed_[home].set &&
           armed_[home].kind == FaultKind::CoordinatorCrash;
}

void
FaultInjector::failCoordinator(unsigned home, unsigned peer, CoreId core)
{
    ++stats_.coordinatorCrashes;
    ++stats_.presumedAborts;
    armed_[home].set = false;
    const Cycles t_up = failMachine(home);
    // The participant resolves its in-doubt branch by re-querying the
    // coordinator's decision log once the machine is back — one query
    // plus one reply, instead of blocking on the decision forever.
    Machine &pm = cluster_.machine(peer);
    pm.clock(core) = std::max(pm.clock(core), t_up) +
                     sendReliable(peer, home, kQueryBytes) +
                     sendReliable(home, peer, shard::kDecisionBytes);
}

bool
FaultInjector::participantCrashArmed(unsigned peer)
{
    return armed_[peer].set &&
           armed_[peer].kind == FaultKind::ParticipantCrash;
}

void
FaultInjector::failParticipant(unsigned peer, CoreId)
{
    ++stats_.participantCrashes;
    armed_[peer].set = false;
    failMachine(peer);
}

Cycles
FaultInjector::voteTimeout()
{
    stats_.rpcTimeoutStallCycles += voteTimeout_;
    return voteTimeout_;
}

void
FaultInjector::atSlotStart()
{
    for (unsigned m = 0; m < cluster_.machines(); ++m) {
        Machine &machine = cluster_.machine(m);
        while (plan_.due(m, machine.maxClock())) {
            FaultKind kind = plan_.peek(m).kind;
            // Window kinds need a cross-shard transaction to consume
            // them; degrade to a plain power-fail when none can happen,
            // so a scheduled fault never silently disappears.
            if (cluster_.machines() == 1 || crossFraction_ <= 0)
                kind = FaultKind::PowerFail;
            if (kind == FaultKind::PowerFail) {
                plan_.advance(m);
                failMachine(m);
                continue;
            }
            if (armed_[m].set)
                break; // one pending window fault per machine
            armed_[m].set = true;
            armed_[m].kind = kind;
            plan_.advance(m);
            break;
        }
    }
}

Cycles
FaultInjector::failMachine(unsigned m)
{
    ++stats_.powerFails;
    noteFirstFault(m);
    cluster_.powerFail(m);
    Machine &machine = cluster_.machine(m);
    const Cycles down = replicate_ ? failoverCost_ : recoveryCost_;
    if (replicate_) {
        ++stats_.failovers;
        stats_.failoverStallCycles += down;
    } else {
        ++stats_.recoveries;
        stats_.recoveryStallCycles += down;
    }
    const Cycles t_up = machine.maxClock() + down;
    for (CoreId c = 0; c < machine.cfg().numCores; ++c)
        machine.clock(c) = t_up;
    // A machine that is down cannot fail again: drop events that fall
    // inside the outage, which also stops downtime from compounding.
    plan_.absorbUntil(m, t_up);
    return t_up;
}

void
FaultInjector::noteFirstFault(unsigned m)
{
    if (hadFault_[m])
        return;
    hadFault_[m] = true;
    firstFaultCommits_[m] = cluster_.shard(m).backend->committedTxs();
}

void
FaultInjector::atRunEnd()
{
    for (unsigned m = 0; m < cluster_.machines(); ++m) {
        // The whole point of the harness: after every injected fault,
        // the persistent image still matches the reference model.
        ssp_assert(cluster_.shard(m).workload->verify(),
                   "shard failed functional verification after faults");
        if (hadFault_[m]) {
            stats_.committedDespiteFaults +=
                cluster_.shard(m).backend->committedTxs() -
                firstFaultCommits_[m];
        }
    }
    const shard::NetworkModel &net = cluster_.network();
    stats_.messagesLost = net.messagesLost();
    stats_.rpcRetries = net.rpcRetries();
    stats_.rpcTimeoutStallCycles += net.timeoutStallCycles();
}

} // namespace ssp::fault
