/**
 * @file
 * The cell fault harness: wires one FaultPlan into a running cluster.
 *
 * FaultInjector implements both fault-injection surfaces — the cluster
 * driver's slot hooks (ClusterFaultDriver) and the coordinator's logged
 * 2PC hooks (TxFaultHooks) — from one deterministic plan, so every
 * injected failure, every recovery charge and every replication message
 * is a pure function of the cell seed.  PowerFail events fire at slot
 * boundaries; the two window kinds arm per-machine flags that the next
 * cross-shard transaction touching the machine consumes, which anchors
 * mid-protocol crashes to the transaction order rather than to wall
 * positions that would drift with timing changes.
 *
 * Replication is primary/backup with synchronous log shipping: every
 * commit ships its records to the machine's backup (priced through the
 * NetworkModel as traffic to a pseudo-machine id machines+m) and waits
 * for the ack, and a failed primary is promoted-over — the downtime is
 * failoverCycles(), strictly below the in-place recovery scan, because
 * the backup is already current.
 */

#ifndef SSP_FAULT_FAULT_INJECTOR_HH
#define SSP_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hh"
#include "shard/shard_driver.hh"

namespace ssp::fault
{

/** Fault-harness accounting across one cell run. */
struct FaultStats
{
    std::uint64_t powerFails = 0;         ///< machine failures injected
    std::uint64_t coordinatorCrashes = 0; ///< ...of them, mid-decision
    std::uint64_t participantCrashes = 0; ///< ...of them, mid-prepare
    std::uint64_t recoveries = 0;         ///< in-place recoveries priced
    std::uint64_t failovers = 0;          ///< backup promotions priced
    Cycles recoveryStallCycles = 0;       ///< downtime, in-place
    Cycles failoverStallCycles = 0;       ///< downtime, failover
    std::uint64_t decisionRecords = 0;    ///< durable decisions appended
    std::uint64_t presumedAborts = 0;     ///< blocking-window resolutions
    /** Transactions committed after the cell's first injected fault. */
    std::uint64_t committedDespiteFaults = 0;
    std::uint64_t logShipMessages = 0; ///< replication ships + acks
    Cycles logShipCycles = 0;          ///< commit cycles spent shipping
    std::uint64_t messagesLost = 0;    ///< network drops (sendReliable)
    std::uint64_t rpcRetries = 0;      ///< retransmissions after timeout
    Cycles rpcTimeoutStallCycles = 0;  ///< timeout waits (net + votes)
};

/** One cell's fault harness (see file comment). */
class FaultInjector : public shard::TxFaultHooks,
                      public shard::ClusterFaultDriver
{
  public:
    /**
     * Arm @p cluster with @p params' plan.  @p net_seed seeds the
     * unreliable-network stream (disjoint from the plan stream);
     * @p cross_fraction is the cell's routing fraction, used only to
     * degrade window kinds that could never be consumed.
     */
    FaultInjector(shard::Cluster &cluster, const FaultParams &params,
                  std::uint64_t net_seed, double cross_fraction);

    const FaultStats &stats() const { return stats_; }

    // TxFaultHooks
    Cycles sendReliable(unsigned src, unsigned dst,
                        std::uint64_t bytes) override;
    Cycles persistDecision(unsigned home, CoreId core) override;
    bool coordinatorCrashArmed(unsigned home) override;
    void failCoordinator(unsigned home, unsigned peer,
                         CoreId core) override;
    bool participantCrashArmed(unsigned peer) override;
    void failParticipant(unsigned peer, CoreId core) override;
    Cycles voteTimeout() override;

    // Both interfaces (one override satisfies both bases)
    Cycles shipCommit(unsigned machine, CoreId core) override;

    // ClusterFaultDriver
    shard::TxFaultHooks *txHooks() override { return this; }
    void atSlotStart() override;
    void atRunEnd() override;

  private:
    /** A window fault armed for one machine, pending consumption. */
    struct Armed
    {
        bool set = false;
        FaultKind kind = FaultKind::PowerFail;
    };

    /** Power-fail machine @p m, price its downtime, absorb faults that
     *  fall inside it.  @return the cycle the machine is back up. */
    Cycles failMachine(unsigned m);

    /** Snapshot commit counters at the machine's first fault, so the
     *  committed-despite-faults delta has a defined base. */
    void noteFirstFault(unsigned m);

    shard::Cluster &cluster_;
    FaultPlan plan_;
    bool replicate_ = false;
    double crossFraction_ = 0;
    Cycles recoveryCost_ = 0;
    Cycles failoverCost_ = 0;
    Cycles voteTimeout_ = 0;
    std::vector<Armed> armed_;
    std::vector<bool> hadFault_;
    std::vector<std::uint64_t> firstFaultCommits_;
    FaultStats stats_;
};

} // namespace ssp::fault

#endif // SSP_FAULT_FAULT_INJECTOR_HH
