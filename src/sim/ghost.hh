/**
 * @file
 * Ghost speculation: within-cell host parallelism that is bit-identical
 * to the sequential round schedule at any thread count.
 *
 * The authoritative simulation stays exactly today's serial loop — one
 * host thread executing operations in canonical round order.  Extra
 * host threads ("ghosts") run *ahead* of an atomic authoritative
 * cursor, re-drawing the same RNG stream on a private clone and walking
 * the persistent data structure through side-effect-free functional
 * reads, issuing host-cache prefetches for the memory the authoritative
 * thread is about to touch: PhysMem data lines and the cache-model tag
 * sets those lines map to.  Ghosts mutate no simulated state, so the
 * result of a run is equal to the sequential result *by construction* —
 * a mispredicted ghost walk costs a wasted prefetch, never a wrong
 * metric.
 *
 * Determinism contract:
 *  - Ghosts read PhysMem through relaxed atomics (PhysMem::ghostRead64)
 *    and the page table through PageTable::ghostTranslate; both race
 *    benignly with authoritative stores and are data-race-free under
 *    TSan.
 *  - Ghost RNG clones are claimed and advanced under one mutex in
 *    operation order, so every ghost sees exactly the key the
 *    authoritative thread will draw for that operation.
 *  - A lead window throttles ghosts to stay within a few rounds of the
 *    cursor, keeping the prefetched lines resident when the
 *    authoritative thread arrives.
 */

#ifndef SSP_SIM_GHOST_HH
#define SSP_SIM_GHOST_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace ssp
{

class CacheHierarchy;
class Machine;
class PageTable;
class PhysMem;

/**
 * Side-effect-free view of one machine for ghost threads: virtual-address
 * reads through the committed page-table mapping and prefetch hints for
 * the host cache lines backing simulated data and cache tags.  Every
 * method is safe to call concurrently with the authoritative thread.
 */
class GhostReader
{
  public:
    explicit GhostReader(Machine &machine);

    /**
     * Read the 8-byte word at virtual address @p vaddr through the
     * committed mapping.  Unmapped or misaligned reads return 0; a value
     * racing with an authoritative store may be stale.  Callers treat
     * the result as a *hint* (a pointer to chase, a key to compare) and
     * must bound every walk that consumes it.
     */
    std::uint64_t read64(Addr vaddr) const noexcept;

    /**
     * Prefetch the host cache lines the authoritative thread will touch
     * when it accesses @p vaddr from @p core: the PhysMem data line and
     * the L1/L2/L3 tag sets on @p core's lookup path.
     */
    void prefetch(CoreId core, Addr vaddr) const noexcept;

  private:
    const PageTable &pt_;
    const PhysMem &mem_;
    const CacheHierarchy &caches_;
};

/** One speculated operation: workload-defined argument pair. */
struct GhostPlan
{
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    bool valid = false;
};

/**
 * Workload-specific speculation: replays the workload's per-operation
 * RNG draws on a private clone and walks the data structure with ghost
 * reads.  Created by Workload::makeGhostSpeculator() *after* setup(), so
 * the clone starts from the same RNG state the measured run starts from.
 */
class GhostSpeculator
{
  public:
    virtual ~GhostSpeculator() = default;

    /**
     * Draw the arguments of operation @p op_index from the cloned RNG.
     * Called under the engine's mutex in strictly increasing op order —
     * exactly the order the authoritative thread draws.
     */
    virtual GhostPlan draw(std::uint64_t op_index) = 0;

    /**
     * Walk the structure for @p plan on behalf of @p core, issuing
     * prefetches.  Runs lock-free, concurrently with the authoritative
     * thread; every loop must be bounded (stale pointers may cycle).
     */
    virtual void traverse(const GhostPlan &plan, CoreId core,
                          const GhostReader &reader) = 0;
};

/**
 * Drives cell_threads-1 ghost worker threads ahead of the authoritative
 * round loop.  The driver calls advance(i) before executing operation i;
 * ghosts claim operations in [cursor, cursor + lead) and prefetch them.
 */
class GhostEngine
{
  public:
    /**
     * @param num_threads Ghost worker count (cell threads minus one).
     * @param num_cores Simulated cores: op i runs on core i % num_cores.
     * @param num_txs Total operations in the run (claim cap).
     */
    GhostEngine(Machine &machine, std::unique_ptr<GhostSpeculator> spec,
                unsigned num_threads, unsigned num_cores,
                std::uint64_t num_txs);
    ~GhostEngine();

    GhostEngine(const GhostEngine &) = delete;
    GhostEngine &operator=(const GhostEngine &) = delete;

    /** The authoritative thread is about to execute operation @p op. */
    void
    advance(std::uint64_t op) noexcept
    {
        cursor_.store(op, std::memory_order_release);
    }

    /** Stop and join every ghost thread (idempotent). */
    void stop() noexcept;

    /**
     * True when this host can run ghost threads usefully: at least two
     * hardware threads, or the SSP_FORCE_GHOSTS environment override
     * (used by tests and TSan runs on single-CPU machines).
     */
    static bool hostSupportsGhosts();

  private:
    void workerLoop();

    GhostReader reader_;
    std::unique_ptr<GhostSpeculator> spec_;
    unsigned numCores_;
    std::uint64_t numTxs_;
    std::uint64_t lead_;
    std::mutex drawMutex_;
    std::uint64_t ghostNext_ = 0; ///< next unclaimed op (under drawMutex_)
    std::atomic<std::uint64_t> cursor_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
};

} // namespace ssp

#endif // SSP_SIM_GHOST_HH
