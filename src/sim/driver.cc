#include "sim/driver.hh"

#include <queue>
#include <utility>

#include "common/logging.hh"
#include "core/config.hh"
#include "sim/ghost.hh"

namespace ssp
{

double
RunResult::tps() const
{
    if (cycles == 0)
        return 0;
    const double seconds =
        static_cast<double>(cycles) / (kCoreGHz * 1e9);
    return static_cast<double>(committedTxs) / seconds;
}

double
RunResult::writesPerTx() const
{
    if (committedTxs == 0)
        return 0;
    return static_cast<double>(nvramWrites) /
           static_cast<double>(committedTxs);
}

double
RunResult::imbalance() const
{
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (std::uint64_t busy : coreBusyCycles) {
        total += busy;
        peak = std::max(peak, busy);
    }
    if (total == 0 || coreBusyCycles.empty())
        return 0;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(coreBusyCycles.size());
    return static_cast<double>(peak) / mean;
}

RunBaseline
captureRunBaseline(Experiment &exp)
{
    AtomicityBackend &be = *exp.backend;
    Machine &machine = be.machine();
    MemoryBus &bus = machine.bus();
    const CoherenceModel &coh = machine.coherence();
    RunBaseline base;
    base.clock = machine.maxClock();
    base.commits = be.committedTxs();
    base.nvramWrites = bus.nvramWrites();
    base.loggingWrites = be.loggingWrites();
    base.dataWrites = bus.nvramWrites(WriteCategory::Data) +
                      bus.nvramWrites(WriteCategory::PageCopy);
    base.consolidationWrites =
        bus.nvramWrites(WriteCategory::Consolidation);
    base.checkpointWrites = bus.nvramWrites(WriteCategory::Checkpoint);
    base.coherenceFlips = coh.flipMessages();
    base.coherenceInvalidations = coh.invalidations();
    base.coherenceShootdowns = coh.shootdownsDelivered();
    base.coherenceMessages = coh.messages();
    base.directoryLookups = coh.directoryLookups();
    base.hopTraversalCycles = coh.hopTraversalCycles();
    base.snoopFilterEvictions = coh.snoopFilterEvictions();
    base.backInvalidations = coh.backInvalidations();
    base.conflicts = machine.conflicts().stats();
    return base;
}

void
finishRunMetrics(RunResult &res, Experiment &exp, const RunBaseline &base)
{
    AtomicityBackend &be = *exp.backend;
    Machine &machine = be.machine();
    MemoryBus &bus = machine.bus();
    const CoherenceModel &coh = machine.coherence();

    res.backend = be.name();
    res.workload = exp.workload->name();
    res.committedTxs = be.committedTxs() - base.commits;
    res.cycles = machine.maxClock() - base.clock;
    res.nvramWrites = bus.nvramWrites() - base.nvramWrites;
    res.loggingWrites = be.loggingWrites() - base.loggingWrites;
    res.dataWrites = bus.nvramWrites(WriteCategory::Data) +
                     bus.nvramWrites(WriteCategory::PageCopy) -
                     base.dataWrites;
    res.consolidationWrites =
        bus.nvramWrites(WriteCategory::Consolidation) -
        base.consolidationWrites;
    res.checkpointWrites = bus.nvramWrites(WriteCategory::Checkpoint) -
                           base.checkpointWrites;
    res.journalWrites = res.loggingWrites - res.checkpointWrites;
    res.coherenceFlips = coh.flipMessages() - base.coherenceFlips;
    res.coherenceInvalidations =
        coh.invalidations() - base.coherenceInvalidations;
    res.coherenceShootdowns =
        coh.shootdownsDelivered() - base.coherenceShootdowns;
    res.coherenceMessages = coh.messages() - base.coherenceMessages;
    res.directoryLookups = coh.directoryLookups() - base.directoryLookups;
    res.hopTraversalCycles =
        coh.hopTraversalCycles() - base.hopTraversalCycles;
    res.snoopFilterEvictions =
        coh.snoopFilterEvictions() - base.snoopFilterEvictions;
    res.backInvalidations =
        coh.backInvalidations() - base.backInvalidations;
    const ConflictStats &conflicts = machine.conflicts().stats();
    res.txAborts = conflicts.aborts - base.conflicts.aborts;
    res.txRetries = conflicts.retries - base.conflicts.retries;
    res.conflictsWriteWrite = conflicts.writeWriteConflicts -
                              base.conflicts.writeWriteConflicts;
    res.conflictsReadWrite = conflicts.readWriteConflicts -
                             base.conflicts.readWriteConflicts;
    res.backoffCycles =
        conflicts.backoffCycles - base.conflicts.backoffCycles;

    const TxCharacterization &charz = be.characterization();
    res.avgLinesPerTx = charz.linesPerTx.mean();
    res.avgPagesPerTx = charz.pagesPerTx.mean();
    res.maxPagesPerTx = charz.pagesPerTx.max();
}

RunResult
runExperiment(Experiment &exp, std::uint64_t num_txs, unsigned num_cores,
              ScheduleMode mode, unsigned cell_threads,
              const RunHooks &hooks)
{
    AtomicityBackend &be = *exp.backend;
    Machine &machine = be.machine();
    ssp_assert(num_cores >= 1 && num_cores <= machine.cfg().numCores,
               "run uses more cores than the machine has");

    machine.syncClocks();
    const RunBaseline base = captureRunBaseline(exp);

    RunResult res;
    res.coreBusyCycles.assign(num_cores, 0);
    res.coreTxs.assign(num_cores, 0);

    auto run_one = [&](CoreId core) {
        const Cycles op_start = machine.clock(core);
        exp.workload->runOp(core);
        res.coreBusyCycles[core] += machine.clock(core) - op_start;
        ++res.coreTxs[core];
    };

    if (mode == ScheduleMode::Rounds) {
        // Extra cell threads become ghost speculators: they prefetch
        // host cache lines ahead of this (authoritative) thread but
        // touch no simulated state, so the run below produces the
        // sequential result bit for bit at any thread count.  Without a
        // speculator (or with cell_threads == 1) no engine exists and
        // the loop is exactly the single-threaded path.
        std::unique_ptr<GhostEngine> ghosts;
        if (cell_threads > 1 && GhostEngine::hostSupportsGhosts()) {
            auto spec = exp.workload->makeGhostSpeculator();
            if (spec != nullptr) {
                ghosts = std::make_unique<GhostEngine>(
                    machine, std::move(spec), cell_threads - 1, num_cores,
                    num_txs);
            }
        }
        for (std::uint64_t i = 0; i < num_txs; ++i) {
            const CoreId core = static_cast<CoreId>(i % num_cores);
            if (ghosts != nullptr)
                ghosts->advance(i);
            if (hooks.beforeOp)
                hooks.beforeOp(i);
            run_one(core);
            // Bulk-synchronous rounds: re-align core clocks after each
            // round-robin cycle so shared-resource timing (bus, banks)
            // is not distorted by simulation-order clock skew.
            if (num_cores > 1 && core == num_cores - 1)
                machine.syncClocks();
        }
        if (ghosts != nullptr)
            ghosts->stop();
        // A final partial round (num_txs % num_cores != 0) must not
        // leave core clocks skewed relative to the bulk-synchronous
        // model — the run ends on the same barrier every full round
        // ends on.
        if (num_cores > 1)
            machine.syncClocks();
        for (unsigned c = 0; c < num_cores; ++c) {
            ssp_assert(machine.clock(c) == machine.maxClock(),
                       "core clocks skewed after the final barrier");
        }
    } else {
        // Event-driven: always dispatch the core with the lowest clock
        // (ties to the lowest core id, so the order is deterministic).
        // Heap keys can go stale — peer invalidations and shootdown
        // charges advance *other* cores' clocks mid-op — so a popped
        // entry whose key no longer matches the core's clock is
        // re-pushed with the corrected key instead of dispatched.
        // Clocks only move forward, so the loop terminates.
        using HeapEntry = std::pair<Cycles, CoreId>;
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            ready;
        for (unsigned c = 0; c < num_cores; ++c)
            ready.emplace(machine.clock(c), c);
        for (std::uint64_t i = 0; i < num_txs; ++i) {
            for (;;) {
                const auto [when, core] = ready.top();
                if (when != machine.clock(core)) {
                    ready.pop();
                    ready.emplace(machine.clock(core), core);
                    continue;
                }
                ready.pop();
                if (hooks.beforeOp)
                    hooks.beforeOp(i);
                run_one(core);
                ready.emplace(machine.clock(core), core);
                break;
            }
        }
    }

    finishRunMetrics(res, exp, base);
    return res;
}

} // namespace ssp
