#include "sim/driver.hh"

#include "common/logging.hh"
#include "core/config.hh"

namespace ssp
{

double
RunResult::tps() const
{
    if (cycles == 0)
        return 0;
    const double seconds =
        static_cast<double>(cycles) / (kCoreGHz * 1e9);
    return static_cast<double>(committedTxs) / seconds;
}

double
RunResult::writesPerTx() const
{
    if (committedTxs == 0)
        return 0;
    return static_cast<double>(nvramWrites) /
           static_cast<double>(committedTxs);
}

RunResult
runExperiment(Experiment &exp, std::uint64_t num_txs, unsigned num_cores)
{
    AtomicityBackend &be = *exp.backend;
    Machine &machine = be.machine();
    ssp_assert(num_cores >= 1 && num_cores <= machine.cfg().numCores,
               "run uses more cores than the machine has");

    machine.syncClocks();
    const Cycles start = machine.maxClock();

    for (std::uint64_t i = 0; i < num_txs; ++i) {
        const CoreId core = static_cast<CoreId>(i % num_cores);
        exp.workload->runOp(core);
        // Bulk-synchronous rounds: re-align core clocks after each
        // round-robin cycle so shared-resource timing (bus, banks) is
        // not distorted by simulation-order clock skew.
        if (num_cores > 1 && core == num_cores - 1)
            machine.syncClocks();
    }

    MemoryBus &bus = machine.bus();
    RunResult res;
    res.backend = be.name();
    res.workload = exp.workload->name();
    res.committedTxs = be.committedTxs() - exp.baseCommits;
    res.cycles = machine.maxClock() - start;
    res.nvramWrites = bus.nvramWrites() - exp.baseNvramWrites;
    res.loggingWrites = be.loggingWrites() - exp.baseLoggingWrites;
    res.dataWrites = bus.nvramWrites(WriteCategory::Data) +
                     bus.nvramWrites(WriteCategory::PageCopy) -
                     exp.baseDataWrites;
    res.consolidationWrites =
        bus.nvramWrites(WriteCategory::Consolidation) -
        exp.baseConsolidationWrites;
    res.checkpointWrites = bus.nvramWrites(WriteCategory::Checkpoint) -
                           exp.baseCheckpointWrites;
    res.journalWrites = res.loggingWrites - res.checkpointWrites;

    const TxCharacterization &charz = be.characterization();
    res.avgLinesPerTx = charz.linesPerTx.mean();
    res.avgPagesPerTx = charz.pagesPerTx.mean();
    res.maxPagesPerTx = charz.pagesPerTx.max();
    return res;
}

} // namespace ssp
