#include "sim/driver.hh"

#include "common/logging.hh"
#include "core/config.hh"

namespace ssp
{

double
RunResult::tps() const
{
    if (cycles == 0)
        return 0;
    const double seconds =
        static_cast<double>(cycles) / (kCoreGHz * 1e9);
    return static_cast<double>(committedTxs) / seconds;
}

double
RunResult::writesPerTx() const
{
    if (committedTxs == 0)
        return 0;
    return static_cast<double>(nvramWrites) /
           static_cast<double>(committedTxs);
}

double
RunResult::imbalance() const
{
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (std::uint64_t busy : coreBusyCycles) {
        total += busy;
        peak = std::max(peak, busy);
    }
    if (total == 0 || coreBusyCycles.empty())
        return 0;
    const double mean = static_cast<double>(total) /
                        static_cast<double>(coreBusyCycles.size());
    return static_cast<double>(peak) / mean;
}

RunResult
runExperiment(Experiment &exp, std::uint64_t num_txs, unsigned num_cores)
{
    AtomicityBackend &be = *exp.backend;
    Machine &machine = be.machine();
    ssp_assert(num_cores >= 1 && num_cores <= machine.cfg().numCores,
               "run uses more cores than the machine has");

    machine.syncClocks();
    const Cycles start = machine.maxClock();
    const CoherenceBus &coh = machine.coherence();
    const std::uint64_t base_flips = coh.flipMessages();
    const std::uint64_t base_invals = coh.invalidations();
    const std::uint64_t base_shootdowns = coh.shootdownsDelivered();
    const ConflictStats base_conflicts = machine.conflicts().stats();

    RunResult res;
    res.coreBusyCycles.assign(num_cores, 0);
    res.coreTxs.assign(num_cores, 0);

    for (std::uint64_t i = 0; i < num_txs; ++i) {
        const CoreId core = static_cast<CoreId>(i % num_cores);
        const Cycles op_start = machine.clock(core);
        exp.workload->runOp(core);
        res.coreBusyCycles[core] += machine.clock(core) - op_start;
        ++res.coreTxs[core];
        // Bulk-synchronous rounds: re-align core clocks after each
        // round-robin cycle so shared-resource timing (bus, banks) is
        // not distorted by simulation-order clock skew.
        if (num_cores > 1 && core == num_cores - 1)
            machine.syncClocks();
    }
    // A final partial round (num_txs % num_cores != 0) must not leave
    // core clocks skewed relative to the bulk-synchronous model — the
    // run ends on the same barrier every full round ends on.
    if (num_cores > 1)
        machine.syncClocks();
    for (unsigned c = 0; c < num_cores; ++c) {
        ssp_assert(machine.clock(c) == machine.maxClock(),
                   "core clocks skewed after the final barrier");
    }

    MemoryBus &bus = machine.bus();
    res.backend = be.name();
    res.workload = exp.workload->name();
    res.committedTxs = be.committedTxs() - exp.baseCommits;
    res.cycles = machine.maxClock() - start;
    res.nvramWrites = bus.nvramWrites() - exp.baseNvramWrites;
    res.loggingWrites = be.loggingWrites() - exp.baseLoggingWrites;
    res.dataWrites = bus.nvramWrites(WriteCategory::Data) +
                     bus.nvramWrites(WriteCategory::PageCopy) -
                     exp.baseDataWrites;
    res.consolidationWrites =
        bus.nvramWrites(WriteCategory::Consolidation) -
        exp.baseConsolidationWrites;
    res.checkpointWrites = bus.nvramWrites(WriteCategory::Checkpoint) -
                           exp.baseCheckpointWrites;
    res.journalWrites = res.loggingWrites - res.checkpointWrites;
    res.coherenceFlips = coh.flipMessages() - base_flips;
    res.coherenceInvalidations = coh.invalidations() - base_invals;
    res.coherenceShootdowns = coh.shootdownsDelivered() - base_shootdowns;
    const ConflictStats &conflicts = machine.conflicts().stats();
    res.txAborts = conflicts.aborts - base_conflicts.aborts;
    res.txRetries = conflicts.retries - base_conflicts.retries;
    res.conflictsWriteWrite =
        conflicts.writeWriteConflicts - base_conflicts.writeWriteConflicts;
    res.conflictsReadWrite =
        conflicts.readWriteConflicts - base_conflicts.readWriteConflicts;
    res.backoffCycles =
        conflicts.backoffCycles - base_conflicts.backoffCycles;

    const TxCharacterization &charz = be.characterization();
    res.avgLinesPerTx = charz.linesPerTx.mean();
    res.avgPagesPerTx = charz.pagesPerTx.mean();
    res.maxPagesPerTx = charz.pagesPerTx.max();
    return res;
}

} // namespace ssp
