#include "sim/report.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace ssp
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    ssp_assert(row.size() == header_.size(), "row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtNormalized(double v, double base, int digits)
{
    if (base == 0)
        return "n/a";
    return fmtDouble(v / base, digits);
}

std::string
banner(const std::string &title)
{
    std::string line(title.size() + 4, '=');
    return line + "\n= " + title + " =\n" + line + "\n";
}

// ---- Json: construction and accessors --------------------------------------

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

Json
Json::number(double v)
{
    ssp_assert(std::isfinite(v), "JSON numbers must be finite");
    Json j;
    j.kind_ = Kind::Number;
    j.num_ = v;
    return j;
}

Json
Json::number(std::uint64_t v)
{
    // Doubles hold integers exactly up to 2^53; simulator counters stay
    // far below that, but refuse silently lossy conversions.
    ssp_assert(v <= (std::uint64_t{1} << 53),
               "integer too large for a JSON number");
    return number(static_cast<double>(v));
}

Json
Json::str(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.str_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        ssp_fatal("JSON value is not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (kind_ != Kind::Number)
        ssp_fatal("JSON value is not a number");
    return num_;
}

std::uint64_t
Json::asUint() const
{
    double v = asDouble();
    if (v < 0 || v != std::floor(v))
        ssp_fatal("JSON number %g is not an unsigned integer", v);
    return static_cast<std::uint64_t>(v);
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::String)
        ssp_fatal("JSON value is not a string");
    return str_;
}

void
Json::push(Json v)
{
    ssp_assert(kind_ == Kind::Array, "push() on a non-array");
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    ssp_fatal("size() on a non-container JSON value");
}

const Json &
Json::at(std::size_t i) const
{
    ssp_assert(kind_ == Kind::Array, "at() on a non-array");
    ssp_assert(i < arr_.size(), "JSON array index out of range");
    return arr_[i];
}

void
Json::set(const std::string &key, Json v)
{
    ssp_assert(kind_ == Kind::Object, "set() on a non-object");
    for (auto &member : obj_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string &key) const
{
    ssp_assert(kind_ == Kind::Object, "has() on a non-object");
    for (const auto &member : obj_) {
        if (member.first == key)
            return true;
    }
    return false;
}

const Json &
Json::operator[](const std::string &key) const
{
    ssp_assert(kind_ == Kind::Object, "operator[] on a non-object");
    for (const auto &member : obj_) {
        if (member.first == key)
            return member.second;
    }
    ssp_fatal("JSON object has no member '%s'", key.c_str());
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    ssp_assert(kind_ == Kind::Object, "members() on a non-object");
    return obj_;
}

// ---- Json: serialization ---------------------------------------------------

std::string
jsonNumberToString(double v)
{
    // std::to_chars emits the shortest decimal form that parses back to
    // exactly v, and — unlike the printf family — is locale-independent
    // by definition, so emit -> parse -> emit is a fixed point under any
    // LC_NUMERIC.
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    ssp_assert(res.ec == std::errc(), "double did not fit a 64-char buf");
    return std::string(buf, res.ptr);
}

namespace
{

void
escapeJsonString(const std::string &s, std::ostringstream &os)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    // Recursive lambda via explicit self-parameter.
    auto emit = [&](const Json &j, int depth, auto &&self) -> void {
        const std::string pad(static_cast<std::size_t>(indent) *
                                  (static_cast<std::size_t>(depth) + 1),
                              ' ');
        const std::string close_pad(
            static_cast<std::size_t>(indent) *
                static_cast<std::size_t>(depth),
            ' ');
        const char *nl = indent > 0 ? "\n" : "";
        switch (j.kind_) {
          case Kind::Null:
            os << "null";
            break;
          case Kind::Bool:
            os << (j.bool_ ? "true" : "false");
            break;
          case Kind::Number:
            os << jsonNumberToString(j.num_);
            break;
          case Kind::String:
            escapeJsonString(j.str_, os);
            break;
          case Kind::Array:
            if (j.arr_.empty()) {
                os << "[]";
                break;
            }
            os << '[' << nl;
            for (std::size_t i = 0; i < j.arr_.size(); ++i) {
                os << pad;
                self(j.arr_[i], depth + 1, self);
                if (i + 1 < j.arr_.size())
                    os << ',';
                os << nl;
            }
            os << close_pad << ']';
            break;
          case Kind::Object:
            if (j.obj_.empty()) {
                os << "{}";
                break;
            }
            os << '{' << nl;
            for (std::size_t i = 0; i < j.obj_.size(); ++i) {
                os << pad;
                escapeJsonString(j.obj_[i].first, os);
                os << (indent > 0 ? ": " : ":");
                self(j.obj_[i].second, depth + 1, self);
                if (i + 1 < j.obj_.size())
                    os << ',';
                os << nl;
            }
            os << close_pad << '}';
            break;
        }
    };
    emit(*this, 0, emit);
    return os.str();
}

// ---- Json: parsing ---------------------------------------------------------

namespace
{

/** Recursive-descent JSON parser over a complete in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json j = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return j;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        ssp_fatal("JSON parse error at offset %zu: %s", pos_, what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string::traits_type::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json::str(parseString());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Json::boolean(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Json::boolean(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Json{};
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json j = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return j;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            j.set(key, parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json j = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return j;
        }
        while (true) {
            j.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return j;
        }
    }

    std::string
    parseString()
    {
        if (peek() != '"')
            fail("expected string");
        ++pos_;
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (reports are ASCII;
                // surrogate pairs are not supported).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        // Scan the token by the JSON grammar first so strtod's laxer
        // forms (hex, inf, nan, leading '+') are rejected.
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        std::size_t digits = 0;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
            ++digits;
        }
        if (digits == 0) {
            pos_ = start;
            fail("expected a value");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        double v = std::strtod(text_.c_str() + start, nullptr);
        if (!std::isfinite(v)) {
            pos_ = start;
            fail("number out of double range");
        }
        return Json::number(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

} // namespace ssp
