#include "sim/report.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace ssp
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    ssp_assert(row.size() == header_.size(), "row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtNormalized(double v, double base, int digits)
{
    if (base == 0)
        return "n/a";
    return fmtDouble(v / base, digits);
}

std::string
banner(const std::string &title)
{
    std::string line(title.size() + 4, '=');
    return line + "\n= " + title + " =\n" + line + "\n";
}

} // namespace ssp
