/**
 * @file
 * Builds a complete experiment: a backend (one of the four designs), an
 * allocator over its persistent heap, and a workload — then runs the
 * setup phase and zeroes the measurement baseline.
 */

#ifndef SSP_SIM_SYSTEM_BUILDER_HH
#define SSP_SIM_SYSTEM_BUILDER_HH

#include <memory>

#include "baselines/backend_factory.hh"
#include "core/config.hh"
#include "workloads/workload_factory.hh"

namespace ssp
{

/** One ready-to-run experiment instance. */
struct Experiment
{
    std::unique_ptr<AtomicityBackend> backend;
    std::unique_ptr<PersistAlloc> alloc;
    std::unique_ptr<Workload> workload;

    /** Measurement baselines captured after setup. */
    Cycles baseCycles = 0;
    std::uint64_t baseNvramWrites = 0;
    std::uint64_t baseLoggingWrites = 0;
    std::uint64_t baseDataWrites = 0;
    std::uint64_t baseConsolidationWrites = 0;
    std::uint64_t baseCheckpointWrites = 0;
    std::uint64_t baseCommits = 0;
};

/**
 * Construct backend + allocator + workload, run Workload::setup(), and
 * capture the measurement baseline.
 */
Experiment buildExperiment(BackendKind backend_kind,
                           WorkloadKind workload_kind, const SspConfig &cfg,
                           const WorkloadScale &scale);

} // namespace ssp

#endif // SSP_SIM_SYSTEM_BUILDER_HH
