#include "sim/ghost.hh"

#include <algorithm>
#include <cstdlib>

#include "core/machine.hh"

namespace ssp
{

GhostReader::GhostReader(Machine &machine)
    : pt_(machine.pt()), mem_(machine.mem()), caches_(machine.caches())
{
}

std::uint64_t
GhostReader::read64(Addr vaddr) const noexcept
{
    const Ppn ppn = pt_.ghostTranslate(pageOf(vaddr));
    if (ppn == kInvalidPpn)
        return 0;
    return mem_.ghostRead64(pageBase(ppn) + pageOffset(vaddr));
}

void
GhostReader::prefetch(CoreId core, Addr vaddr) const noexcept
{
    const Ppn ppn = pt_.ghostTranslate(pageOf(vaddr));
    if (ppn == kInvalidPpn)
        return;
    const Addr paddr = pageBase(ppn) + pageOffset(vaddr);
    mem_.ghostPrefetchLine(paddr);
    caches_.prefetchTags(core, paddr);
}

GhostEngine::GhostEngine(Machine &machine,
                         std::unique_ptr<GhostSpeculator> spec,
                         unsigned num_threads, unsigned num_cores,
                         std::uint64_t num_txs)
    : reader_(machine), spec_(std::move(spec)), numCores_(num_cores),
      numTxs_(num_txs),
      lead_(std::max<std::uint64_t>(64, 2 * std::uint64_t{num_cores}))
{
    threads_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

GhostEngine::~GhostEngine()
{
    stop();
}

void
GhostEngine::stop() noexcept
{
    stop_.store(true, std::memory_order_release);
    for (auto &t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
}

bool
GhostEngine::hostSupportsGhosts()
{
    return std::thread::hardware_concurrency() >= 2 ||
           std::getenv("SSP_FORCE_GHOSTS") != nullptr;
}

void
GhostEngine::workerLoop()
{
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    while (!stop_.load(std::memory_order_acquire)) {
        std::uint64_t op = kNone;
        GhostPlan plan;
        {
            std::lock_guard<std::mutex> guard(drawMutex_);
            if (ghostNext_ >= numTxs_)
                return; // every operation has been speculated
            // Claim + draw in one critical section: claim order is draw
            // order, so the clone replays the authoritative RNG stream
            // even with several ghosts racing to claim.
            if (ghostNext_ <
                cursor_.load(std::memory_order_acquire) + lead_) {
                op = ghostNext_++;
                plan = spec_->draw(op);
            }
        }
        if (op == kNone) {
            // Too far ahead: let the authoritative thread catch up
            // (prefetching further out would evict its working set).
            std::this_thread::yield();
            continue;
        }
        // Stale claims (authoritative thread already past) skip the
        // walk: the draw alone kept the RNG clone in sync.
        if (plan.valid && op >= cursor_.load(std::memory_order_acquire))
            spec_->traverse(plan, static_cast<CoreId>(op % numCores_),
                            reader_);
    }
}

} // namespace ssp
