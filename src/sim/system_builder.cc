#include "sim/system_builder.hh"

#include "common/logging.hh"

namespace ssp
{

Experiment
buildExperiment(BackendKind backend_kind, WorkloadKind workload_kind,
                const SspConfig &cfg, const WorkloadScale &scale)
{
    Experiment exp;
    exp.backend = makeBackend(backend_kind, cfg);
    // Workloads allocate from the start of the persistent heap.
    exp.alloc = std::make_unique<PersistAlloc>(
        kPageSize, // keep page 0 unused as a null guard
        cfg.heapPages * kPageSize);
    exp.workload =
        makeWorkload(workload_kind, *exp.backend, *exp.alloc, scale);
    exp.workload->setup();

    MemoryBus &bus = exp.backend->machine().bus();
    exp.baseCycles = exp.backend->machine().maxClock();
    exp.baseNvramWrites = bus.nvramWrites();
    exp.baseLoggingWrites = exp.backend->loggingWrites();
    exp.baseDataWrites = bus.nvramWrites(WriteCategory::Data) +
                         bus.nvramWrites(WriteCategory::PageCopy);
    exp.baseConsolidationWrites =
        bus.nvramWrites(WriteCategory::Consolidation);
    exp.baseCheckpointWrites = bus.nvramWrites(WriteCategory::Checkpoint);
    exp.baseCommits = exp.backend->committedTxs();
    return exp;
}

} // namespace ssp
