/**
 * @file
 * Runs a workload against a backend for N transactions across C
 * simulated cores (locking at the data-structure level serializes
 * conflicting work, as the paper assumes), and collects the metrics the
 * figures plot.
 *
 * Two core schedulers are provided.  ScheduleMode::Rounds is the
 * original bulk-synchronous model: cores take transactions round-robin
 * and re-align their clocks on a barrier after every round, so the five
 * checked-in closed-loop grids stay byte-identical.
 * ScheduleMode::EventDriven dispatches whichever core's clock is lowest
 * (a min-heap of (next-free-cycle, core), ties broken by core id) with
 * no barriers — the scheduler the open-loop request server (src/serve/)
 * is built on.
 */

#ifndef SSP_SIM_DRIVER_HH
#define SSP_SIM_DRIVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/conflict_manager.hh"
#include "sim/system_builder.hh"

namespace ssp
{

/** Metrics for one measured run (deltas over the post-setup baseline). */
struct RunResult
{
    /** Owned strings: results outlive the backend/workload objects the
     *  names came from (e.g. sweep cells whose experiment is torn down
     *  before the report is emitted). */
    std::string backend;
    std::string workload;
    std::uint64_t committedTxs = 0;
    Cycles cycles = 0;

    std::uint64_t nvramWrites = 0;   ///< all categories
    std::uint64_t loggingWrites = 0; ///< log/journal/checkpoint only
    std::uint64_t dataWrites = 0;
    std::uint64_t consolidationWrites = 0;
    std::uint64_t checkpointWrites = 0;
    std::uint64_t journalWrites = 0;

    double avgLinesPerTx = 0;
    double avgPagesPerTx = 0;
    std::uint64_t maxPagesPerTx = 0;

    /** Per-core cycles spent executing operations (index = core). */
    std::vector<std::uint64_t> coreBusyCycles;
    /** Per-core operation counts (index = core). */
    std::vector<std::uint64_t> coreTxs;

    /** Coherence traffic during the run (deltas over setup). */
    std::uint64_t coherenceFlips = 0;         ///< flip-current-bit sends
    std::uint64_t coherenceInvalidations = 0; ///< MESI write invalidations
    std::uint64_t coherenceShootdowns = 0;    ///< flip-broadcast drops
    std::uint64_t coherenceMessages = 0;      ///< interconnect messages

    /** @{ Directory-interconnect traffic (src/interconnect/); zero
     *  under the broadcast model, which has no mesh, no directory and
     *  no snoop filter. */
    std::uint64_t directoryLookups = 0;
    std::uint64_t hopTraversalCycles = 0;   ///< hop-weighted link cycles
    std::uint64_t snoopFilterEvictions = 0; ///< capacity-forced evictions
    std::uint64_t backInvalidations = 0;    ///< sharer copies dropped
    /** @} */

    /** Conflict handling during the run (deltas over setup); always
     *  zero on a single core, where no transaction windows overlap. */
    std::uint64_t txAborts = 0;  ///< commit validations that failed
    std::uint64_t txRetries = 0; ///< re-executions after an abort
    std::uint64_t conflictsWriteWrite = 0;
    std::uint64_t conflictsReadWrite = 0;
    std::uint64_t backoffCycles = 0; ///< total backoff stall charged

    /** @{ Open-loop request-serving metrics (src/serve/); zero on
     *  closed-loop runs, where no request ever waits in a queue.
     *  Latency is counted from arrival cycle to commit-ack cycle and
     *  the percentiles are exact-rank over the merged per-core
     *  histograms. */
    std::uint64_t p50Cycles = 0;
    std::uint64_t p99Cycles = 0;
    std::uint64_t p999Cycles = 0;
    double meanQueueDepth = 0;       ///< time-averaged waiting requests
    std::uint64_t rejectedTxs = 0;   ///< shed by admission control
    double offeredLoad = 0;          ///< factor of closed-loop capacity
    /** @} */

    /** @{ Fault-epoch tail latency (src/serve/ under injected faults):
     *  completions inside a window around each injected crash are
     *  binned separately, conditioning the tail on the fault.  All zero
     *  when no fault fired. */
    std::uint64_t faultEpochs = 0;    ///< injected crash windows
    std::uint64_t faultEpochTxs = 0;  ///< completions inside them
    std::uint64_t p99FaultEpochCycles = 0;
    /** @} */

    /** Transactions per second at the simulated core frequency. */
    double tps() const;

    /** NVRAM writes per committed transaction. */
    double writesPerTx() const;

    /**
     * Load imbalance: max over cores of busy cycles divided by the mean
     * (1.0 = perfectly balanced); 0 when no busy time was recorded.
     */
    double imbalance() const;
};

/** How the driver interleaves the simulated cores. */
enum class ScheduleMode
{
    /** Round-robin with a clock barrier per round (the original
     *  bulk-synchronous model; checked-in grids depend on it). */
    Rounds,
    /** Dispatch the core with the lowest clock next; no barriers. */
    EventDriven,
};

/**
 * Snapshot of every counter a run's metrics are deltas over, taken at
 * measurement start.  Shared by the closed-loop driver here and the
 * open-loop request server (src/serve/), so both fill RunResult through
 * the same arithmetic.
 */
struct RunBaseline
{
    Cycles clock = 0;
    std::uint64_t commits = 0;
    std::uint64_t nvramWrites = 0;
    std::uint64_t loggingWrites = 0;
    std::uint64_t dataWrites = 0;
    std::uint64_t consolidationWrites = 0;
    std::uint64_t checkpointWrites = 0;
    std::uint64_t coherenceFlips = 0;
    std::uint64_t coherenceInvalidations = 0;
    std::uint64_t coherenceShootdowns = 0;
    std::uint64_t coherenceMessages = 0;
    std::uint64_t directoryLookups = 0;
    std::uint64_t hopTraversalCycles = 0;
    std::uint64_t snoopFilterEvictions = 0;
    std::uint64_t backInvalidations = 0;
    ConflictStats conflicts{};
};

/** Snapshot the current counter values of @p exp's machine/backend. */
RunBaseline captureRunBaseline(Experiment &exp);

/** Fill @p res's delta metrics from the current counters vs @p base. */
void finishRunMetrics(RunResult &res, Experiment &exp,
                      const RunBaseline &base);

/**
 * Driver instrumentation points.  beforeOp, when set, runs immediately
 * before each dispatched operation with the operation's slot index —
 * the hook the fault harness uses to fire scheduled crashes at
 * deterministic positions in the dispatch order (never mid-operation,
 * so the injection is independent of host threading).
 */
struct RunHooks
{
    std::function<void(std::uint64_t op_index)> beforeOp;
};

/**
 * Run @p num_txs operations on @p exp, interleaving @p num_cores cores
 * under @p mode.  Core clocks are synchronized at the start; wall time
 * is max core time.
 *
 * @p cell_threads is the host-thread budget for this one cell.  With
 * more than one, ScheduleMode::Rounds keeps the authoritative execution
 * on the calling thread — in exactly today's order — and uses the extra
 * threads as ghost speculators (sim/ghost.hh) that prefetch ahead of
 * it.  Results are therefore bit-identical at any thread count; 1 is
 * today's path with zero additional code executed.  Event-driven mode
 * and workloads without a speculator ignore the extra threads.
 */
RunResult runExperiment(Experiment &exp, std::uint64_t num_txs,
                        unsigned num_cores,
                        ScheduleMode mode = ScheduleMode::Rounds,
                        unsigned cell_threads = 1,
                        const RunHooks &hooks = {});

} // namespace ssp

#endif // SSP_SIM_DRIVER_HH
