/**
 * @file
 * Report output for the benches: plain-text tables (fixed-width columns,
 * a header, and normalized-value helpers matching the paper's
 * "normalized to UNDO-LOG" presentation) and a small JSON value type
 * used to emit/parse the machine-readable BENCH_*.json sweep reports.
 */

#ifndef SSP_SIM_REPORT_HH
#define SSP_SIM_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ssp
{

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
std::string fmtDouble(double v, int digits = 2);

/** Format "v (normalized to base)" as the ratio v/base. */
std::string fmtNormalized(double v, double base, int digits = 2);

/** Section banner used by the benches. */
std::string banner(const std::string &title);

/**
 * A minimal JSON document: null / bool / number / string / array /
 * object, with insertion-ordered object keys so emitted reports are
 * byte-stable.  Numbers render with the shortest decimal form that
 * round-trips through a double, so dump() -> parse() -> dump() is the
 * identity — the property the sweep determinism tests rely on.
 *
 * Malformed input to parse() and type-mismatched accessors raise
 * ssp_fatal (a thrown std::runtime_error).
 */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Default-constructs null. */
    Json() = default;

    static Json boolean(bool v);
    static Json number(double v);
    static Json number(std::uint64_t v);
    static Json str(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** @{ Typed accessors; fatal when the kind does not match. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;
    /** @} */

    /** Array: append an element. @pre array. */
    void push(Json v);

    /** Number of array elements or object members. */
    std::size_t size() const;

    /** Array element access. @pre array and @p i in range. */
    const Json &at(std::size_t i) const;

    /** Object: set (insert or overwrite) a member. @pre object. */
    void set(const std::string &key, Json v);

    /** Object: true if the member exists. @pre object. */
    bool has(const std::string &key) const;

    /** Object member access; fatal when missing. @pre object. */
    const Json &operator[](const std::string &key) const;

    /** Object members in insertion order. @pre object. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Serialize. @p indent 0 emits one compact line; > 0 pretty-prints
     * with that many spaces per nesting level.
     */
    std::string dump(int indent = 0) const;

    /** Parse a complete JSON document; fatal on malformed input. */
    static Json parse(const std::string &text);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Render a double with the shortest form that round-trips exactly. */
std::string jsonNumberToString(double v);

} // namespace ssp

#endif // SSP_SIM_REPORT_HH
