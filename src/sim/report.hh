/**
 * @file
 * Plain-text table formatting for the benches: fixed-width columns, a
 * header, and normalized-value helpers matching the paper's "normalized
 * to UNDO-LOG" presentation.
 */

#ifndef SSP_SIM_REPORT_HH
#define SSP_SIM_REPORT_HH

#include <string>
#include <vector>

namespace ssp
{

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits decimals. */
std::string fmtDouble(double v, int digits = 2);

/** Format "v (normalized to base)" as the ratio v/base. */
std::string fmtNormalized(double v, double base, int digits = 2);

/** Section banner used by the benches. */
std::string banner(const std::string &title);

} // namespace ssp

#endif // SSP_SIM_REPORT_HH
