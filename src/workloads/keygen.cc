#include "workloads/keygen.hh"

#include "common/logging.hh"

namespace ssp
{

KeyDist
parseKeyDist(const std::string &name)
{
    if (name == "rand" || name == "Rand" || name == "uniform")
        return KeyDist::Uniform;
    if (name == "zipf" || name == "Zipf")
        return KeyDist::Zipf;
    ssp_fatal("unknown key distribution '%s'", name.c_str());
}

KeyGenerator::KeyGenerator(KeyDist dist, std::uint64_t key_space,
                           std::uint64_t seed)
    : dist_(dist), keySpace_(key_space), uniform_(seed)
{
    ssp_assert(key_space > 0);
    if (dist == KeyDist::Zipf) {
        // Paper section 5.1: 80% of updates go to 15% of the keys.
        zipf_ = std::make_unique<ZipfGenerator>(
            ZipfGenerator::hotspot(key_space, 0.15, 0.80, seed ^ 0x5bd1));
    }
}

KeyGenerator::KeyGenerator(const KeyGenerator &other)
    : dist_(other.dist_), keySpace_(other.keySpace_),
      uniform_(other.uniform_),
      zipf_(other.zipf_ ? std::make_unique<ZipfGenerator>(*other.zipf_)
                        : nullptr)
{
}

std::uint64_t
KeyGenerator::next()
{
    if (dist_ == KeyDist::Zipf)
        return zipf_->next();
    return uniform_.nextBounded(keySpace_);
}

} // namespace ssp
