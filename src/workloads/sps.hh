/**
 * @file
 * SPS: swap random pairs of elements in a persistent array (paper
 * Table 3: 2 lines / 2 pages per transaction).  The classic WHISPER/
 * NV-heaps microbenchmark with minimal locality.
 */

#ifndef SSP_WORKLOADS_SPS_HH
#define SSP_WORKLOADS_SPS_HH

#include <vector>

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace ssp
{

/** The array-swap microbenchmark. */
class SpsWorkload : public Workload
{
  public:
    /**
     * @param num_elements Array length (8-byte integers).
     */
    SpsWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                std::uint64_t num_elements, std::uint64_t seed);

    const char *name() const override { return "SPS"; }
    void setup() override;
    void runOp(CoreId core) override;
    bool verify() override;
    std::unique_ptr<GhostSpeculator> makeGhostSpeculator() const override;

  private:
    Addr elemAddr(std::uint64_t idx) const;

    std::uint64_t numElements_;
    Rng rng_;
    Addr base_ = 0;
    std::vector<std::uint64_t> reference_;
};

} // namespace ssp

#endif // SSP_WORKLOADS_SPS_HH
