/**
 * @file
 * Factory for the paper's nine evaluated workloads (Table 3).
 */

#ifndef SSP_WORKLOADS_WORKLOAD_FACTORY_HH
#define SSP_WORKLOADS_WORKLOAD_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace ssp
{

/** The evaluated workloads, in Table 3 order. */
enum class WorkloadKind
{
    BTreeRand,
    RbTreeRand,
    HashRand,
    Sps,
    BTreeZipf,
    RbTreeZipf,
    HashZipf,
    Memcached,
    Vacation,
};

/** Scale knobs shared across workloads (sized for simulation speed). */
struct WorkloadScale
{
    std::uint64_t keySpace = 4096;    ///< microbenchmark key space
    std::uint64_t spsElements = 65536;///< SPS array length
    std::uint64_t seed = 42;
    /**
     * Per-core key partitioning for the keyed microbenchmarks: core c
     * draws from its own keySpace/keyShards shard, so cores never touch
     * the same keys (the "partitioned" scaling scenario).  1 keeps the
     * full key space shared across cores.
     */
    unsigned keyShards = 1;
};

/** Printable workload name as in the paper. */
const char *workloadKindName(WorkloadKind kind);

/** Parse a Table 3 name ("BTree-Rand", ...). */
WorkloadKind parseWorkloadKind(const std::string &name);

/** The seven microbenchmarks of Figures 5-7, in plot order. */
std::vector<WorkloadKind> microbenchmarks();

/** The two real workloads of Tables 4-5. */
std::vector<WorkloadKind> realWorkloads();

/** Build a workload bound to @p backend. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind,
                                       AtomicityBackend &backend,
                                       PersistAlloc &alloc,
                                       const WorkloadScale &scale);

} // namespace ssp

#endif // SSP_WORKLOADS_WORKLOAD_FACTORY_HH
