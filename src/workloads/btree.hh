/**
 * @file
 * Persistent B+-tree microbenchmark (paper Table 3: BTree-Rand averages
 * 10 modified lines across 6 pages; the tree's fat nodes give it the
 * spatial locality that lets SSP "nearly eliminate the logging writes"
 * on this workload, section 5.2).
 *
 * Layout: fixed 256-byte nodes (4 cache lines).
 *   header (line 0): is_leaf, count, next-leaf (leaves only)
 *   keys   (line 1): up to 8 keys
 *   slots  (lines 2-3): 8 values (leaf) or 9 children (inner)
 * Deletes remove from the leaf without rebalancing (underfull leaves are
 * tolerated, as in most PM B+-tree implementations); inserts split
 * bottom-up.
 */

#ifndef SSP_WORKLOADS_BTREE_HH
#define SSP_WORKLOADS_BTREE_HH

#include <map>
#include <vector>

#include "workloads/keygen.hh"
#include "workloads/workload.hh"

namespace ssp
{

/** The B+-tree insert/delete microbenchmark. */
class BTreeWorkload : public Workload
{
  public:
    BTreeWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                  std::uint64_t key_space, KeyDist dist, std::uint64_t seed);

    const char *name() const override
    {
        return dist_ == KeyDist::Zipf ? "BTree-Zipf" : "BTree-Rand";
    }
    void setup() override;
    void runOp(CoreId core) override;
    bool verify() override;
    std::unique_ptr<GhostSpeculator> makeGhostSpeculator() const override;

    std::uint64_t size() const { return reference_.size(); }

    /** One insert-or-delete transaction for @p key (test hook). */
    void upsertOrDelete(CoreId core, std::uint64_t key);

    /** Timed point lookup. */
    bool lookup(CoreId core, std::uint64_t key, std::uint64_t *value);

    /** Timed range scan from @p key, up to @p limit pairs. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    scan(CoreId core, std::uint64_t key, unsigned limit);

  private:
    static constexpr unsigned kFanout = 32;  ///< max keys per node
    static constexpr std::uint64_t kNodeSize = 768;

    // Field offsets within a node (keys and slots line-aligned, as a
    // PM-aware B+-tree lays them out to bound flush counts).
    static constexpr std::uint64_t kIsLeafOff = 0;
    static constexpr std::uint64_t kCountOff = 8;
    static constexpr std::uint64_t kNextOff = 16;
    static constexpr std::uint64_t kKeysOff = 64;
    static constexpr std::uint64_t kSlotsOff = 384;

    Addr keyAddr(Addr n, unsigned i) const { return n + kKeysOff + 8 * i; }
    Addr slotAddr(Addr n, unsigned i) const
    {
        return n + kSlotsOff + 8 * i;
    }

    bool isLeaf(CoreId c, Addr n) { return heap_.load64(c, n) != 0; }
    unsigned
    count(CoreId c, Addr n)
    {
        return static_cast<unsigned>(heap_.load64(c, n + kCountOff));
    }

    Addr newNode(CoreId c, bool leaf);

    /** Descend to the leaf for @p key, recording the path. */
    Addr findLeaf(CoreId c, std::uint64_t key, std::vector<Addr> *path);

    /** Insert (key, slot) into a non-full node at sorted position. */
    void insertInNode(CoreId c, Addr n, std::uint64_t key,
                      std::uint64_t slot, bool leaf);

    /** Split @p n, returning {separator key, new right sibling}. */
    std::pair<std::uint64_t, Addr> splitNode(CoreId c, Addr n);

    void insertKey(CoreId c, std::uint64_t key, std::uint64_t value);
    bool deleteKey(CoreId c, std::uint64_t key);

    Addr root(CoreId c) { return heap_.load64(c, rootAddr_); }

    KeyGenerator keys_;
    KeyDist dist_;
    Addr rootAddr_ = 0;
    std::map<std::uint64_t, std::uint64_t> reference_;
    std::uint64_t opCounter_ = 0;
};

} // namespace ssp

#endif // SSP_WORKLOADS_BTREE_HH
