/**
 * @file
 * Persistent red-black tree microbenchmark (paper Table 3: RBTree-Rand
 * averages 12 modified lines across 3 pages per transaction — rotations
 * and recoloring touch many nodes, which is what makes this workload
 * logging-heavy).
 *
 * Node layout (40 bytes): key, value, left, right, parent-and-color
 * (color in bit 0 of the parent word, as pointers are 8-byte aligned).
 * Each operation searches for a key and deletes it if found, inserts it
 * otherwise, inside one durable transaction.
 */

#ifndef SSP_WORKLOADS_RBTREE_HH
#define SSP_WORKLOADS_RBTREE_HH

#include <map>

#include "workloads/keygen.hh"
#include "workloads/workload.hh"

namespace ssp
{

/** The red-black tree insert/delete microbenchmark. */
class RbTreeWorkload : public Workload
{
  public:
    RbTreeWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                   std::uint64_t key_space, KeyDist dist,
                   std::uint64_t seed);

    const char *name() const override
    {
        return dist_ == KeyDist::Zipf ? "RBTree-Zipf" : "RBTree-Rand";
    }
    void setup() override;
    void runOp(CoreId core) override;
    bool verify() override;
    std::unique_ptr<GhostSpeculator> makeGhostSpeculator() const override;

    std::uint64_t size() const { return reference_.size(); }

    /** One insert-or-delete transaction for @p key (test hook). */
    void upsertOrDelete(CoreId core, std::uint64_t key);

    /**
     * Structural check: valid BST order, no red node with a red child,
     * equal black height on every path.
     */
    bool invariantsHold();

  private:
    // 40 bytes of fields, padded to one cache line (PM idiom).
    static constexpr std::uint64_t kNodeSize = 64;

    // -- typed field access over the backend -----------------------------
    std::uint64_t key(CoreId c, Addr n) { return heap_.load64(c, n); }
    std::uint64_t val(CoreId c, Addr n) { return heap_.load64(c, n + 8); }
    Addr left(CoreId c, Addr n) { return heap_.load64(c, n + 16); }
    Addr right(CoreId c, Addr n) { return heap_.load64(c, n + 24); }
    Addr parent(CoreId c, Addr n)
    {
        return heap_.load64(c, n + 32) & ~std::uint64_t{1};
    }
    bool isRed(CoreId c, Addr n)
    {
        return n != 0 && (heap_.load64(c, n + 32) & 1) != 0;
    }

    void setKey(CoreId c, Addr n, std::uint64_t v)
    {
        heap_.store64(c, n, v);
    }
    void setVal(CoreId c, Addr n, std::uint64_t v)
    {
        heap_.store64(c, n + 8, v);
    }
    void setLeft(CoreId c, Addr n, Addr v) { heap_.store64(c, n + 16, v); }
    void setRight(CoreId c, Addr n, Addr v) { heap_.store64(c, n + 24, v); }
    void
    setParentAndColor(CoreId c, Addr n, Addr p, bool red)
    {
        heap_.store64(c, n + 32, p | (red ? 1 : 0));
    }
    void
    setParent(CoreId c, Addr n, Addr p)
    {
        setParentAndColor(c, n, p, isRed(c, n));
    }
    void
    setColor(CoreId c, Addr n, bool red)
    {
        setParentAndColor(c, n, parent(c, n), red);
    }

    Addr root(CoreId c) { return heap_.load64(c, rootAddr_); }
    void setRoot(CoreId c, Addr n) { heap_.store64(c, rootAddr_, n); }

    // -- tree operations (all inside the caller's transaction) -----------
    void rotateLeft(CoreId c, Addr x);
    void rotateRight(CoreId c, Addr x);
    void insertFixup(CoreId c, Addr z);
    void transplant(CoreId c, Addr u, Addr v);
    void deleteNode(CoreId c, Addr z);
    void deleteFixup(CoreId c, Addr x, Addr x_parent);
    Addr minimum(CoreId c, Addr n);

    // -- verification helpers (untimed raw reads) -------------------------
    Addr rawLeft(Addr n) { return heap_.raw64(n + 16); }
    Addr rawRight(Addr n) { return heap_.raw64(n + 24); }
    bool rawRed(Addr n)
    {
        return n != 0 && (heap_.raw64(n + 32) & 1) != 0;
    }
    int checkSubtree(Addr n, std::uint64_t lo, std::uint64_t hi, bool *ok);

    KeyGenerator keys_;
    KeyDist dist_;
    Addr rootAddr_ = 0;
    std::map<std::uint64_t, std::uint64_t> reference_;
    std::uint64_t opCounter_ = 0;
};

} // namespace ssp

#endif // SSP_WORKLOADS_RBTREE_HH
