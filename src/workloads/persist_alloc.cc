#include "workloads/persist_alloc.hh"

#include "common/logging.hh"

namespace ssp
{

PersistAlloc::PersistAlloc(Addr base, Addr end)
    : base_(base), end_(end), cursor_(base)
{
    ssp_assert(base < end);
}

Addr
PersistAlloc::allocate(std::uint64_t size, std::uint64_t align)
{
    ssp_assert(size > 0);
    ssp_assert((align & (align - 1)) == 0, "alignment must be a power of 2");

    auto &list = freeLists_[size];
    if (!list.empty()) {
        Addr addr = list.back();
        list.pop_back();
        return addr;
    }

    Addr addr = (cursor_ + align - 1) & ~(align - 1);
    // Keep sub-line objects within one line and sub-page objects within
    // one page.
    if (size <= kLineSize && lineOf(addr) != lineOf(addr + size - 1))
        addr = lineBase(addr) + kLineSize;
    else if (size <= kPageSize && pageOf(addr) != pageOf(addr + size - 1))
        addr = pageBase(pageOf(addr) + 1);

    if (addr + size > end_) {
        ssp_fatal("persistent heap exhausted (%llu bytes used)",
                  static_cast<unsigned long long>(bytesUsed()));
    }
    cursor_ = addr + size;
    return addr;
}

void
PersistAlloc::free(Addr addr, std::uint64_t size)
{
    freeLists_[size].push_back(addr);
}

} // namespace ssp
