/**
 * @file
 * Memcached-like persistent key/value cache (paper section 5.1: driven
 * by a memslap-style generator, four clients, 90% SET; Table 3 reports
 * 3 lines / 2 pages average and up to 35 pages per transaction).
 *
 * The store is a chained hash index over slab-allocated items carrying
 * inline values, plus a persistent LRU list.  SET inserts or replaces an
 * item and splices the LRU; when the item budget is exceeded the tail
 * items are evicted inside the same transaction — evicting a cold chain
 * is what produces the large maximum page counts the paper reports.
 * GET is read-only (10%).
 */

#ifndef SSP_WORKLOADS_KVSTORE_HH
#define SSP_WORKLOADS_KVSTORE_HH

#include <unordered_map>

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace ssp
{

/** Configuration of the KV cache. */
struct KvStoreParams
{
    std::uint64_t buckets = 4096;   ///< hash buckets (power of two)
    std::uint64_t keySpace = 20000; ///< memslap key space
    std::uint64_t capacity = 8192;  ///< max resident items before eviction
    std::uint64_t valueBytes = 96;  ///< inline value payload
    double setFraction = 0.9;       ///< SET share (memslap 90% SET)
};

/** The memcached-like workload. */
class KvStoreWorkload : public Workload
{
  public:
    KvStoreWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                    const KvStoreParams &params, std::uint64_t seed);

    const char *name() const override { return "Memcached"; }
    void setup() override;
    void runOp(CoreId core) override;
    bool verify() override;

    std::uint64_t residentItems() const { return reference_.size(); }
    std::uint64_t evictions() const { return evictions_; }

    /** One SET transaction (test hook). */
    void set(CoreId core, std::uint64_t key);

    /** Timed GET; returns true when resident. */
    bool get(CoreId core, std::uint64_t key);

  private:
    // Item layout: key(8) value-seq(8) next(8) lru_prev(8) lru_next(8)
    // then valueBytes of payload.
    static constexpr std::uint64_t kKeyOff = 0;
    static constexpr std::uint64_t kSeqOff = 8;
    static constexpr std::uint64_t kNextOff = 16;
    static constexpr std::uint64_t kPrevLruOff = 24;
    static constexpr std::uint64_t kNextLruOff = 32;
    static constexpr std::uint64_t kValueOff = 40;

    std::uint64_t itemSize() const { return kValueOff + params_.valueBytes; }
    Addr bucketAddr(std::uint64_t key) const;
    std::uint64_t bucketOf(std::uint64_t key) const;

    /** Find the item for @p key; 0 when absent. */
    Addr findItem(CoreId core, std::uint64_t key, Addr *prev_link);

    /** Unlink from hash chain + LRU (inside the caller's tx). */
    void unlinkItem(CoreId core, Addr item, Addr prev_link);

    /** LRU helpers (inside the caller's tx). */
    void lruPushFront(CoreId core, Addr item);
    void lruUnlink(CoreId core, Addr item);

    KvStoreParams params_;
    Rng rng_;
    Addr table_ = 0;
    Addr lruHeadAddr_ = 0;
    Addr lruTailAddr_ = 0;
    /** key -> expected value seq (host-side model). */
    std::unordered_map<std::uint64_t, std::uint64_t> reference_;
    std::uint64_t seq_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace ssp

#endif // SSP_WORKLOADS_KVSTORE_HH
