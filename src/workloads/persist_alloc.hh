/**
 * @file
 * Persistent-heap allocator for the workloads.
 *
 * A bump allocator with size-class free lists over the persistent heap
 * region.  Allocation metadata is kept volatile: the paper's workloads
 * (like the WHISPER suite they derive from) persist object *contents*
 * through the failure-atomicity mechanism under test, while allocator
 * state is rebuilt on restart; the crash tests therefore verify data
 * content, not allocator bookkeeping.
 */

#ifndef SSP_WORKLOADS_PERSIST_ALLOC_HH
#define SSP_WORKLOADS_PERSIST_ALLOC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace ssp
{

/** Bump allocator with per-size free lists. */
class PersistAlloc
{
  public:
    /** Manage [base, end) of the persistent virtual address space. */
    PersistAlloc(Addr base, Addr end);

    /**
     * Allocate @p size bytes aligned to @p align (power of two).
     * Allocations never straddle a cache line unless larger than one,
     * and never straddle a page unless larger than one — keeping object
     * fields inside single lines like a PM-aware allocator would.
     */
    Addr allocate(std::uint64_t size, std::uint64_t align = 8);

    /** Return a block to the size-class free list. */
    void free(Addr addr, std::uint64_t size);

    /** Bytes handed out (high-water mark accounting). */
    std::uint64_t bytesUsed() const { return cursor_ - base_; }

    Addr base() const { return base_; }
    Addr end() const { return end_; }

  private:
    Addr base_;
    Addr end_;
    Addr cursor_;
    std::map<std::uint64_t, std::vector<Addr>> freeLists_;
};

} // namespace ssp

#endif // SSP_WORKLOADS_PERSIST_ALLOC_HH
