#include "workloads/hashtable.hh"

#include "common/logging.hh"
#include "sim/ghost.hh"

namespace ssp
{

namespace
{

/** Node field offsets. */
constexpr std::uint64_t kKeyOff = 0;
constexpr std::uint64_t kValOff = 8;
constexpr std::uint64_t kNextOff = 16;

/** Fibonacci hash; good spread for sequential keys. */
std::uint64_t
hashKey(std::uint64_t key)
{
    return (key * 0x9e3779b97f4a7c15ull) >> 17;
}

/** Replays the key stream and prefetches the bucket chain walk. */
class HashGhost final : public GhostSpeculator
{
  public:
    HashGhost(const KeyGenerator &keys, unsigned key_shards,
              std::uint64_t buckets, Addr table)
        : keys_(keys), keyShards_(key_shards), buckets_(buckets),
          table_(table)
    {
    }

    GhostPlan
    draw(std::uint64_t) override
    {
        GhostPlan plan;
        plan.arg0 = keys_.next();
        plan.valid = true;
        return plan;
    }

    void
    traverse(const GhostPlan &plan, CoreId core,
             const GhostReader &reader) override
    {
        std::uint64_t key = plan.arg0;
        if (keyShards_ > 1) {
            const std::uint64_t shard = keys_.keySpace() / keyShards_;
            key = key % shard + (core % keyShards_) * shard;
        }
        const Addr head =
            table_ + (hashKey(key) & (buckets_ - 1)) * sizeof(std::uint64_t);
        reader.prefetch(core, head);
        Addr node = reader.read64(head);
        // Bounded chain walk: a pointer read mid-update may be stale, so
        // cap the hops rather than trust the chain to terminate.
        for (unsigned hop = 0; hop < 64 && node != 0; ++hop) {
            reader.prefetch(core, node);
            if (reader.read64(node + kKeyOff) == key)
                break;
            node = reader.read64(node + kNextOff);
        }
    }

  private:
    KeyGenerator keys_;
    unsigned keyShards_;
    std::uint64_t buckets_;
    Addr table_;
};

} // namespace

std::unique_ptr<GhostSpeculator>
HashWorkload::makeGhostSpeculator() const
{
    if (table_ == 0)
        return nullptr; // setup() has not run
    return std::make_unique<HashGhost>(keys_, keyShards_, buckets_, table_);
}

HashWorkload::HashWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                           std::uint64_t buckets, std::uint64_t key_space,
                           KeyDist dist, std::uint64_t seed)
    : Workload(be, alloc), buckets_(buckets),
      keys_(dist, key_space, seed), dist_(dist)
{
    ssp_assert((buckets & (buckets - 1)) == 0,
               "bucket count must be a power of two");
}

std::uint64_t
HashWorkload::bucketOf(std::uint64_t key) const
{
    return hashKey(key) & (buckets_ - 1);
}

Addr
HashWorkload::bucketAddr(std::uint64_t key) const
{
    return table_ + bucketOf(key) * sizeof(std::uint64_t);
}

void
HashWorkload::setup()
{
    table_ = alloc_.allocate(buckets_ * sizeof(std::uint64_t), kLineSize);
    const std::uint64_t zero = 0;
    for (std::uint64_t b = 0; b < buckets_; ++b) {
        backend().storeRaw(table_ + b * sizeof(std::uint64_t), &zero,
                           sizeof(zero));
    }
    // Pre-populate half of the key space through regular transactions so
    // the measured phase sees a steady-state mix of inserts and deletes.
    const std::uint64_t prefill = keys_.keySpace() / 2;
    for (std::uint64_t i = 0; i < prefill; ++i)
        upsertOrDelete(0, keys_.next());
}

bool
HashWorkload::lookup(CoreId core, std::uint64_t key, std::uint64_t *value)
{
    Addr node = heap_.load64(core, bucketAddr(key));
    while (node != 0) {
        if (heap_.load64(core, node + kKeyOff) == key) {
            if (value != nullptr)
                *value = heap_.load64(core, node + kValOff);
            return true;
        }
        node = heap_.load64(core, node + kNextOff);
    }
    return false;
}

void
HashWorkload::upsertOrDelete(CoreId core, std::uint64_t key)
{
    Addr victim = 0;
    std::uint64_t value = 0;
    runTx(core, [&] {
        victim = 0;

        // Search the chain, remembering the predecessor link.
        Addr prev_link = bucketAddr(key);
        Addr node = heap_.load64(core, prev_link);
        while (node != 0 && heap_.load64(core, node + kKeyOff) != key) {
            prev_link = node + kNextOff;
            node = heap_.load64(core, node + kNextOff);
        }

        if (node != 0) {
            // Found: delete by unlinking.
            const Addr next = heap_.load64(core, node + kNextOff);
            heap_.store64(core, prev_link, next);
            victim = node;
        } else {
            // Absent: insert at the head of the bucket.
            value = key * 3 + 1 + opCounter_;
            const Addr fresh = alloc_.allocate(kNodeSize, kLineSize);
            const Addr head = heap_.load64(core, bucketAddr(key));
            heap_.store64(core, fresh + kKeyOff, key);
            heap_.store64(core, fresh + kValOff, value);
            heap_.store64(core, fresh + kNextOff, head);
            heap_.store64(core, bucketAddr(key), fresh);
        }
    });
    if (victim != 0) {
        alloc_.free(victim, kNodeSize);
        reference_.erase(key);
    } else {
        reference_[key] = value;
    }
    ++opCounter_;
}

void
HashWorkload::runOp(CoreId core)
{
    upsertOrDelete(core, shardKey(core, keys_.next(), keys_.keySpace()));
}

bool
HashWorkload::verify()
{
    // Every reference key must be present with the right value, and the
    // chains must contain no extras.
    std::uint64_t found = 0;
    for (std::uint64_t b = 0; b < buckets_; ++b) {
        Addr node = heap_.raw64(table_ + b * sizeof(std::uint64_t));
        while (node != 0) {
            const std::uint64_t key = heap_.raw64(node + kKeyOff);
            const std::uint64_t val = heap_.raw64(node + kValOff);
            auto it = reference_.find(key);
            if (it == reference_.end() || it->second != val)
                return false;
            if (bucketOf(key) != b)
                return false;
            ++found;
            node = heap_.raw64(node + kNextOff);
        }
    }
    return found == reference_.size();
}

} // namespace ssp
