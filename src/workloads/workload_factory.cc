#include "workloads/workload_factory.hh"

#include "common/logging.hh"
#include "workloads/btree.hh"
#include "workloads/hashtable.hh"
#include "workloads/kvstore.hh"
#include "workloads/rbtree.hh"
#include "workloads/sps.hh"
#include "workloads/vacation.hh"

namespace ssp
{

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::BTreeRand:
        return "BTree-Rand";
      case WorkloadKind::RbTreeRand:
        return "RBTree-Rand";
      case WorkloadKind::HashRand:
        return "Hash-Rand";
      case WorkloadKind::Sps:
        return "SPS";
      case WorkloadKind::BTreeZipf:
        return "BTree-Zipf";
      case WorkloadKind::RbTreeZipf:
        return "RBTree-Zipf";
      case WorkloadKind::HashZipf:
        return "Hash-Zipf";
      case WorkloadKind::Memcached:
        return "Memcached";
      case WorkloadKind::Vacation:
        return "Vacation";
    }
    return "unknown";
}

WorkloadKind
parseWorkloadKind(const std::string &name)
{
    const std::vector<WorkloadKind> all = {
        WorkloadKind::BTreeRand, WorkloadKind::RbTreeRand,
        WorkloadKind::HashRand,  WorkloadKind::Sps,
        WorkloadKind::BTreeZipf, WorkloadKind::RbTreeZipf,
        WorkloadKind::HashZipf,  WorkloadKind::Memcached,
        WorkloadKind::Vacation};
    for (WorkloadKind kind : all) {
        if (name == workloadKindName(kind))
            return kind;
    }
    ssp_fatal("unknown workload '%s'", name.c_str());
}

std::vector<WorkloadKind>
microbenchmarks()
{
    return {WorkloadKind::BTreeRand, WorkloadKind::RbTreeRand,
            WorkloadKind::HashRand,  WorkloadKind::Sps,
            WorkloadKind::BTreeZipf, WorkloadKind::RbTreeZipf,
            WorkloadKind::HashZipf};
}

std::vector<WorkloadKind>
realWorkloads()
{
    return {WorkloadKind::Memcached, WorkloadKind::Vacation};
}

namespace
{

std::unique_ptr<Workload>
makeWorkloadImpl(WorkloadKind kind, AtomicityBackend &backend,
                 PersistAlloc &alloc, const WorkloadScale &scale)
{
    switch (kind) {
      case WorkloadKind::BTreeRand:
        return std::make_unique<BTreeWorkload>(
            backend, alloc, scale.keySpace, KeyDist::Uniform, scale.seed);
      case WorkloadKind::BTreeZipf:
        return std::make_unique<BTreeWorkload>(
            backend, alloc, scale.keySpace, KeyDist::Zipf, scale.seed);
      case WorkloadKind::RbTreeRand:
        return std::make_unique<RbTreeWorkload>(
            backend, alloc, scale.keySpace, KeyDist::Uniform, scale.seed);
      case WorkloadKind::RbTreeZipf:
        return std::make_unique<RbTreeWorkload>(
            backend, alloc, scale.keySpace, KeyDist::Zipf, scale.seed);
      case WorkloadKind::HashRand:
        return std::make_unique<HashWorkload>(backend, alloc, 1024,
                                              scale.keySpace,
                                              KeyDist::Uniform, scale.seed);
      case WorkloadKind::HashZipf:
        return std::make_unique<HashWorkload>(backend, alloc, 1024,
                                              scale.keySpace, KeyDist::Zipf,
                                              scale.seed);
      case WorkloadKind::Sps:
        return std::make_unique<SpsWorkload>(backend, alloc,
                                             scale.spsElements, scale.seed);
      case WorkloadKind::Memcached: {
        KvStoreParams params;
        return std::make_unique<KvStoreWorkload>(backend, alloc, params,
                                                 scale.seed);
      }
      case WorkloadKind::Vacation: {
        VacationParams params;
        return std::make_unique<VacationWorkload>(backend, alloc, params,
                                                  scale.seed);
      }
    }
    ssp_panic("unreachable workload kind");
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind, AtomicityBackend &backend,
             PersistAlloc &alloc, const WorkloadScale &scale)
{
    std::unique_ptr<Workload> w =
        makeWorkloadImpl(kind, backend, alloc, scale);
    // Sharding applies after construction so setup() (which prefills on
    // core 0 across the whole key space) is not affected by it; only
    // runOp() maps keys into the acting core's shard.
    w->setKeyShards(scale.keyShards);
    return w;
}

} // namespace ssp
