/**
 * @file
 * Typed accessors over an AtomicityBackend: the thin layer the
 * persistent data structures use to read and write 64-bit fields and
 * byte ranges at persistent virtual addresses, inside or outside
 * failure-atomic sections.
 */

#ifndef SSP_WORKLOADS_TX_HEAP_HH
#define SSP_WORKLOADS_TX_HEAP_HH

#include <cstdint>

#include "core/backend.hh"

namespace ssp
{

/** Convenience wrapper; stateless besides the backend reference. */
class TxHeap
{
  public:
    explicit TxHeap(AtomicityBackend &be) : be_(be) {}

    /** Timed 64-bit load. */
    std::uint64_t
    load64(CoreId core, Addr addr)
    {
        std::uint64_t v = 0;
        be_.load(core, addr, &v, sizeof(v));
        return v;
    }

    /** Timed failure-atomic 64-bit store (must be inside a tx). */
    void
    store64(CoreId core, Addr addr, std::uint64_t v)
    {
        be_.store(core, addr, &v, sizeof(v));
    }

    /** Timed byte-range load. */
    void
    loadBytes(CoreId core, Addr addr, void *buf, std::uint64_t size)
    {
        be_.load(core, addr, buf, size);
    }

    /** Timed failure-atomic byte-range store. */
    void
    storeBytes(CoreId core, Addr addr, const void *buf, std::uint64_t size)
    {
        be_.store(core, addr, buf, size);
    }

    /** Untimed functional read (verification only). */
    std::uint64_t
    raw64(Addr addr)
    {
        std::uint64_t v = 0;
        be_.loadRaw(addr, &v, sizeof(v));
        return v;
    }

    AtomicityBackend &backend() { return be_; }

  private:
    AtomicityBackend &be_;
};

} // namespace ssp

#endif // SSP_WORKLOADS_TX_HEAP_HH
