#include "workloads/rbtree.hh"

#include "common/logging.hh"
#include "sim/ghost.hh"

namespace ssp
{

namespace
{

/** Replays the key stream and prefetches the BST descent to the key. */
class RbTreeGhost final : public GhostSpeculator
{
  public:
    RbTreeGhost(const KeyGenerator &keys, unsigned key_shards,
                Addr root_addr)
        : keys_(keys), keyShards_(key_shards), rootAddr_(root_addr)
    {
    }

    GhostPlan
    draw(std::uint64_t) override
    {
        GhostPlan plan;
        plan.arg0 = keys_.next();
        plan.valid = true;
        return plan;
    }

    void
    traverse(const GhostPlan &plan, CoreId core,
             const GhostReader &reader) override
    {
        std::uint64_t key = plan.arg0;
        if (keyShards_ > 1) {
            const std::uint64_t shard = keys_.keySpace() / keyShards_;
            key = key % shard + (core % keyShards_) * shard;
        }
        reader.prefetch(core, rootAddr_);
        Addr n = reader.read64(rootAddr_);
        // Nodes are {key, val, left(+16), right(+24), parent|color};
        // bounded depth guards against stale pointers mid-rotation.
        for (unsigned depth = 0; depth < 64 && n != 0; ++depth) {
            reader.prefetch(core, n);
            const std::uint64_t k = reader.read64(n);
            if (k == key)
                break;
            n = reader.read64(n + (key < k ? 16 : 24));
        }
    }

  private:
    KeyGenerator keys_;
    unsigned keyShards_;
    Addr rootAddr_;
};

} // namespace

std::unique_ptr<GhostSpeculator>
RbTreeWorkload::makeGhostSpeculator() const
{
    if (rootAddr_ == 0)
        return nullptr; // setup() has not run
    return std::make_unique<RbTreeGhost>(keys_, keyShards_, rootAddr_);
}

RbTreeWorkload::RbTreeWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                               std::uint64_t key_space, KeyDist dist,
                               std::uint64_t seed)
    : Workload(be, alloc), keys_(dist, key_space, seed), dist_(dist)
{
}

void
RbTreeWorkload::setup()
{
    rootAddr_ = alloc_.allocate(sizeof(std::uint64_t), 8);
    const std::uint64_t zero = 0;
    backend().storeRaw(rootAddr_, &zero, sizeof(zero));
    const std::uint64_t prefill = keys_.keySpace() / 2;
    for (std::uint64_t i = 0; i < prefill; ++i)
        upsertOrDelete(0, keys_.next());
}

void
RbTreeWorkload::rotateLeft(CoreId c, Addr x)
{
    const Addr y = right(c, x);
    const Addr yl = left(c, y);
    setRight(c, x, yl);
    if (yl != 0)
        setParent(c, yl, x);
    const Addr xp = parent(c, x);
    setParentAndColor(c, y, xp, isRed(c, y));
    if (xp == 0)
        setRoot(c, y);
    else if (left(c, xp) == x)
        setLeft(c, xp, y);
    else
        setRight(c, xp, y);
    setLeft(c, y, x);
    setParentAndColor(c, x, y, isRed(c, x));
}

void
RbTreeWorkload::rotateRight(CoreId c, Addr x)
{
    const Addr y = left(c, x);
    const Addr yr = right(c, y);
    setLeft(c, x, yr);
    if (yr != 0)
        setParent(c, yr, x);
    const Addr xp = parent(c, x);
    setParentAndColor(c, y, xp, isRed(c, y));
    if (xp == 0)
        setRoot(c, y);
    else if (right(c, xp) == x)
        setRight(c, xp, y);
    else
        setLeft(c, xp, y);
    setRight(c, y, x);
    setParentAndColor(c, x, y, isRed(c, x));
}

void
RbTreeWorkload::insertFixup(CoreId c, Addr z)
{
    while (isRed(c, parent(c, z))) {
        Addr p = parent(c, z);
        Addr g = parent(c, p);
        if (p == left(c, g)) {
            Addr u = right(c, g);
            if (isRed(c, u)) {
                setColor(c, p, false);
                setColor(c, u, false);
                setColor(c, g, true);
                z = g;
            } else {
                if (z == right(c, p)) {
                    z = p;
                    rotateLeft(c, z);
                    p = parent(c, z);
                    g = parent(c, p);
                }
                setColor(c, p, false);
                setColor(c, g, true);
                rotateRight(c, g);
            }
        } else {
            Addr u = left(c, g);
            if (isRed(c, u)) {
                setColor(c, p, false);
                setColor(c, u, false);
                setColor(c, g, true);
                z = g;
            } else {
                if (z == left(c, p)) {
                    z = p;
                    rotateRight(c, z);
                    p = parent(c, z);
                    g = parent(c, p);
                }
                setColor(c, p, false);
                setColor(c, g, true);
                rotateLeft(c, g);
            }
        }
    }
    setColor(c, root(c), false);
}

void
RbTreeWorkload::transplant(CoreId c, Addr u, Addr v)
{
    const Addr up = parent(c, u);
    if (up == 0)
        setRoot(c, v);
    else if (u == left(c, up))
        setLeft(c, up, v);
    else
        setRight(c, up, v);
    if (v != 0)
        setParent(c, v, up);
}

Addr
RbTreeWorkload::minimum(CoreId c, Addr n)
{
    while (left(c, n) != 0)
        n = left(c, n);
    return n;
}

void
RbTreeWorkload::deleteNode(CoreId c, Addr z)
{
    Addr x = 0;
    Addr x_parent = 0;
    bool y_was_black;

    if (left(c, z) == 0) {
        x = right(c, z);
        x_parent = parent(c, z);
        y_was_black = !isRed(c, z);
        transplant(c, z, x);
    } else if (right(c, z) == 0) {
        x = left(c, z);
        x_parent = parent(c, z);
        y_was_black = !isRed(c, z);
        transplant(c, z, x);
    } else {
        const Addr y = minimum(c, right(c, z));
        y_was_black = !isRed(c, y);
        x = right(c, y);
        if (parent(c, y) == z) {
            x_parent = y;
        } else {
            x_parent = parent(c, y);
            transplant(c, y, x);
            setRight(c, y, right(c, z));
            setParent(c, right(c, y), y);
        }
        transplant(c, z, y);
        setLeft(c, y, left(c, z));
        setParent(c, left(c, y), y);
        setColor(c, y, isRed(c, z));
    }
    if (y_was_black)
        deleteFixup(c, x, x_parent);
}

void
RbTreeWorkload::deleteFixup(CoreId c, Addr x, Addr x_parent)
{
    while (x != root(c) && !isRed(c, x)) {
        if (x_parent == 0)
            break;
        if (x == left(c, x_parent)) {
            Addr w = right(c, x_parent);
            if (isRed(c, w)) {
                setColor(c, w, false);
                setColor(c, x_parent, true);
                rotateLeft(c, x_parent);
                w = right(c, x_parent);
            }
            if (!isRed(c, left(c, w)) && !isRed(c, right(c, w))) {
                setColor(c, w, true);
                x = x_parent;
                x_parent = parent(c, x);
            } else {
                if (!isRed(c, right(c, w))) {
                    setColor(c, left(c, w), false);
                    setColor(c, w, true);
                    rotateRight(c, w);
                    w = right(c, x_parent);
                }
                setColor(c, w, isRed(c, x_parent));
                setColor(c, x_parent, false);
                if (right(c, w) != 0)
                    setColor(c, right(c, w), false);
                rotateLeft(c, x_parent);
                x = root(c);
                x_parent = 0;
            }
        } else {
            Addr w = left(c, x_parent);
            if (isRed(c, w)) {
                setColor(c, w, false);
                setColor(c, x_parent, true);
                rotateRight(c, x_parent);
                w = left(c, x_parent);
            }
            if (!isRed(c, right(c, w)) && !isRed(c, left(c, w))) {
                setColor(c, w, true);
                x = x_parent;
                x_parent = parent(c, x);
            } else {
                if (!isRed(c, left(c, w))) {
                    setColor(c, right(c, w), false);
                    setColor(c, w, true);
                    rotateLeft(c, w);
                    w = left(c, x_parent);
                }
                setColor(c, w, isRed(c, x_parent));
                setColor(c, x_parent, false);
                if (left(c, w) != 0)
                    setColor(c, left(c, w), false);
                rotateRight(c, x_parent);
                x = root(c);
                x_parent = 0;
            }
        }
    }
    if (x != 0)
        setColor(c, x, false);
}

void
RbTreeWorkload::upsertOrDelete(CoreId c, std::uint64_t k)
{
    Addr victim = 0;
    std::uint64_t v = 0;
    runTx(c, [&] {
        victim = 0;

        // Search.
        Addr node = root(c);
        Addr last = 0;
        while (node != 0) {
            last = node;
            const std::uint64_t nk = key(c, node);
            if (nk == k)
                break;
            node = k < nk ? left(c, node) : right(c, node);
        }

        if (node != 0) {
            deleteNode(c, node);
            victim = node;
        } else {
            v = k * 7 + 3 + opCounter_;
            const Addr fresh = alloc_.allocate(kNodeSize, kLineSize);
            setKey(c, fresh, k);
            setVal(c, fresh, v);
            setLeft(c, fresh, 0);
            setRight(c, fresh, 0);
            setParentAndColor(c, fresh, last, true);
            if (last == 0)
                setRoot(c, fresh);
            else if (k < key(c, last))
                setLeft(c, last, fresh);
            else
                setRight(c, last, fresh);
            insertFixup(c, fresh);
        }
    });
    if (victim != 0) {
        alloc_.free(victim, kNodeSize);
        reference_.erase(k);
    } else {
        reference_[k] = v;
    }
    ++opCounter_;
}

void
RbTreeWorkload::runOp(CoreId core)
{
    upsertOrDelete(core, shardKey(core, keys_.next(), keys_.keySpace()));
}

int
RbTreeWorkload::checkSubtree(Addr n, std::uint64_t lo, std::uint64_t hi,
                             bool *ok)
{
    if (n == 0)
        return 1; // nil nodes are black
    const std::uint64_t k = heap_.raw64(n);
    if (k < lo || k > hi)
        *ok = false;
    if (rawRed(n) && (rawRed(rawLeft(n)) || rawRed(rawRight(n))))
        *ok = false;
    const int bl = checkSubtree(rawLeft(n), lo, k == 0 ? 0 : k - 1, ok);
    const int br = checkSubtree(rawRight(n), k + 1, hi, ok);
    if (bl != br)
        *ok = false;
    return bl + (rawRed(n) ? 0 : 1);
}

bool
RbTreeWorkload::invariantsHold()
{
    const Addr r = heap_.raw64(rootAddr_);
    if (r == 0)
        return reference_.empty();
    if (rawRed(r))
        return false;
    bool ok = true;
    checkSubtree(r, 0, ~std::uint64_t{0}, &ok);
    return ok;
}

bool
RbTreeWorkload::verify()
{
    // In-order traversal must match the reference map exactly.
    if (!invariantsHold())
        return false;
    std::uint64_t count = 0;
    // Iterative traversal using an explicit stack of addresses.
    std::vector<Addr> stack;
    Addr cur = heap_.raw64(rootAddr_);
    auto it = reference_.begin();
    while (cur != 0 || !stack.empty()) {
        while (cur != 0) {
            stack.push_back(cur);
            cur = rawLeft(cur);
        }
        cur = stack.back();
        stack.pop_back();
        if (it == reference_.end())
            return false;
        if (heap_.raw64(cur) != it->first ||
            heap_.raw64(cur + 8) != it->second) {
            return false;
        }
        ++it;
        ++count;
        cur = rawRight(cur);
    }
    return count == reference_.size();
}

} // namespace ssp
