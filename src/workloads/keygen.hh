/**
 * @file
 * Key-distribution generators for the microbenchmarks.
 *
 * The paper's "-Rand" workloads draw keys uniformly; "-Zipf" workloads
 * apply 80% of updates to 15% of the keys (section 5.1).
 */

#ifndef SSP_WORKLOADS_KEYGEN_HH
#define SSP_WORKLOADS_KEYGEN_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"

namespace ssp
{

/** Key access pattern. */
enum class KeyDist
{
    Uniform, ///< "-Rand"
    Zipf,    ///< "-Zipf" (80/15 hotspot, per the paper's definition)
};

/** Parse "rand"/"zipf". */
KeyDist parseKeyDist(const std::string &name);

/** Draws keys from [0, key_space) under a distribution. */
class KeyGenerator
{
  public:
    KeyGenerator(KeyDist dist, std::uint64_t key_space, std::uint64_t seed);

    /**
     * Deep copy, including the Zipf state: a clone replays exactly the
     * key stream the original will draw (ghost speculation relies on
     * this).
     */
    KeyGenerator(const KeyGenerator &other);
    KeyGenerator &operator=(const KeyGenerator &) = delete;

    /** Next key. */
    std::uint64_t next();

    std::uint64_t keySpace() const { return keySpace_; }
    KeyDist dist() const { return dist_; }

  private:
    KeyDist dist_;
    std::uint64_t keySpace_;
    Rng uniform_;
    std::unique_ptr<ZipfGenerator> zipf_;
};

} // namespace ssp

#endif // SSP_WORKLOADS_KEYGEN_HH
