#include "workloads/vacation.hh"

#include "common/logging.hh"

namespace ssp
{

namespace
{

std::uint64_t
hashId(std::uint64_t id)
{
    return (id * 0xc6a4a7935bd1e995ull) >> 13;
}

/** Model key combining table and tuple id. */
std::uint64_t
modelKey(unsigned table, std::uint64_t id)
{
    return (static_cast<std::uint64_t>(table) << 56) | id;
}

} // namespace

VacationWorkload::VacationWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                                   const VacationParams &params,
                                   std::uint64_t seed)
    : Workload(be, alloc), params_(params), rng_(seed)
{
    ssp_assert((params.buckets & (params.buckets - 1)) == 0,
               "bucket count must be a power of two");
}

Addr
VacationWorkload::tableBucket(unsigned table, std::uint64_t id) const
{
    return tables_[table] +
           (hashId(id) & (params_.buckets - 1)) * sizeof(std::uint64_t);
}

Addr
VacationWorkload::custBucket(std::uint64_t id) const
{
    return custTable_ +
           (hashId(id) & (params_.buckets - 1)) * sizeof(std::uint64_t);
}

void
VacationWorkload::setup()
{
    const std::uint64_t zero = 0;
    for (unsigned t = 0; t < 3; ++t) {
        tables_[t] = alloc_.allocate(
            params_.buckets * sizeof(std::uint64_t), kLineSize);
        for (std::uint64_t b = 0; b < params_.buckets; ++b) {
            backend().storeRaw(tables_[t] + b * sizeof(std::uint64_t),
                               &zero, sizeof(zero));
        }
    }
    custTable_ = alloc_.allocate(params_.buckets * sizeof(std::uint64_t),
                                 kLineSize);
    for (std::uint64_t b = 0; b < params_.buckets; ++b) {
        backend().storeRaw(custTable_ + b * sizeof(std::uint64_t), &zero,
                           sizeof(zero));
    }

    // Populate resource tuples and customers with raw stores (the
    // initial database image, not transactional work).
    for (unsigned t = 0; t < 3; ++t) {
        for (std::uint64_t id = 0; id < params_.relations; ++id) {
            const Addr rec = alloc_.allocate(kResSize, 8);
            const std::uint64_t price = 100 + (hashId(id ^ t) % 400);
            const std::uint64_t total = 50 + (hashId(id + t) % 50);
            const Addr head_addr = tableBucket(t, id);
            std::uint64_t head = 0;
            backend().loadRaw(head_addr, &head, sizeof(head));
            backend().storeRaw(rec + 0, &id, 8);
            backend().storeRaw(rec + 8, &price, 8);
            backend().storeRaw(rec + 16, &total, 8);
            backend().storeRaw(rec + 24, &total, 8); // free == total
            backend().storeRaw(rec + 32, &head, 8);
            backend().storeRaw(head_addr, &rec, 8);
            freeModel_[modelKey(t, id)] = total;
        }
    }
    for (std::uint64_t id = 0; id < params_.customers; ++id) {
        const Addr rec = alloc_.allocate(kCustSize, 8);
        const std::uint64_t zero64 = 0;
        const Addr head_addr = custBucket(id);
        std::uint64_t head = 0;
        backend().loadRaw(head_addr, &head, sizeof(head));
        backend().storeRaw(rec + 0, &id, 8);
        backend().storeRaw(rec + 8, &zero64, 8);  // bill
        backend().storeRaw(rec + 16, &zero64, 8); // reservation list
        backend().storeRaw(rec + 24, &head, 8);
        backend().storeRaw(head_addr, &rec, 8);
        billModel_[id] = 0;
    }
}

Addr
VacationWorkload::findResource(CoreId c, unsigned table, std::uint64_t id)
{
    Addr rec = heap_.load64(c, tableBucket(table, id));
    while (rec != 0 && heap_.load64(c, rec + 0) != id)
        rec = heap_.load64(c, rec + 32);
    return rec;
}

Addr
VacationWorkload::findCustomer(CoreId c, std::uint64_t id)
{
    Addr rec = heap_.load64(c, custBucket(id));
    while (rec != 0 && heap_.load64(c, rec + 0) != id)
        rec = heap_.load64(c, rec + 24);
    return rec;
}

void
VacationWorkload::runOp(CoreId core)
{
    // All RNG draws happen before the transaction so an aborted
    // attempt replays the identical query mix (same draw order and
    // count as the original interleaved form).
    const std::uint64_t cust_id = rng_.nextBounded(params_.customers);
    struct Query
    {
        unsigned table;
        std::uint64_t id;
    };
    std::vector<Query> queries(params_.queriesPerTx);
    for (Query &q : queries) {
        q.table = static_cast<unsigned>(rng_.nextBounded(3));
        q.id = rng_.nextBounded(params_.relations);
    }

    Addr best = 0;
    std::uint64_t best_price = 0;
    unsigned best_table = 0;
    std::uint64_t best_id = 0;

    runTx(core, [&] {
        const Addr cust = findCustomer(core, cust_id);
        ssp_assert(cust != 0, "customer disappeared");

        // Query phase: examine several resources, remember the
        // cheapest available one (reads only — the bulk of the
        // transaction).
        best = 0;
        best_price = ~std::uint64_t{0};
        for (const Query &q : queries) {
            const Addr rec = findResource(core, q.table, q.id);
            if (rec == 0)
                continue;
            const std::uint64_t price = heap_.load64(core, rec + 8);
            const std::uint64_t free_seats = heap_.load64(core, rec + 24);
            if (free_seats > 0 && price < best_price) {
                best = rec;
                best_price = price;
                best_table = q.table;
                best_id = q.id;
            }
        }

        // Nothing available: read-only transaction.
        if (best == 0)
            return;

        // Update phase: take a seat, append a reservation record, bill.
        const std::uint64_t free_seats = heap_.load64(core, best + 24);
        heap_.store64(core, best + 24, free_seats - 1);

        const Addr rsv = alloc_.allocate(kRsvSize, 8);
        const Addr rsv_head = heap_.load64(core, cust + 16);
        heap_.store64(core, rsv + 0, best);
        heap_.store64(core, rsv + 8, best_price);
        heap_.store64(core, rsv + 16, rsv_head);
        heap_.store64(core, cust + 16, rsv);

        const std::uint64_t bill = heap_.load64(core, cust + 8);
        heap_.store64(core, cust + 8, bill + best_price);
    });

    if (best == 0)
        return;
    freeModel_[modelKey(best_table, best_id)] -= 1;
    billModel_[cust_id] += best_price;
    ++reservations_;
}

bool
VacationWorkload::verify()
{
    // Resource availability must match the model.
    for (unsigned t = 0; t < 3; ++t) {
        for (std::uint64_t b = 0; b < params_.buckets; ++b) {
            Addr rec =
                heap_.raw64(tables_[t] + b * sizeof(std::uint64_t));
            while (rec != 0) {
                const std::uint64_t id = heap_.raw64(rec + 0);
                if (heap_.raw64(rec + 24) != freeModel_[modelKey(t, id)])
                    return false;
                rec = heap_.raw64(rec + 32);
            }
        }
    }
    // Customer bills must match, and each reservation chain must sum to
    // the bill.
    for (std::uint64_t b = 0; b < params_.buckets; ++b) {
        Addr rec = heap_.raw64(custTable_ + b * sizeof(std::uint64_t));
        while (rec != 0) {
            const std::uint64_t id = heap_.raw64(rec + 0);
            const std::uint64_t bill = heap_.raw64(rec + 8);
            if (bill != billModel_[id])
                return false;
            std::uint64_t sum = 0;
            Addr rsv = heap_.raw64(rec + 16);
            while (rsv != 0) {
                sum += heap_.raw64(rsv + 8);
                rsv = heap_.raw64(rsv + 16);
            }
            if (sum != bill)
                return false;
            rec = heap_.raw64(rec + 24);
        }
    }
    return true;
}

} // namespace ssp
