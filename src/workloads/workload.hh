/**
 * @file
 * The workload interface the driver and benches run against.
 *
 * Each workload wraps a persistent data structure built over an
 * AtomicityBackend; one operation is one durable transaction (the
 * paper's microbenchmarks wrap each insert/delete/swap in a transaction,
 * section 5.1).  Workloads keep a host-side reference model so their
 * contents can be verified functionally after a run or after a crash.
 */

#ifndef SSP_WORKLOADS_WORKLOAD_HH
#define SSP_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/backend.hh"
#include "sim/ghost.hh"
#include "workloads/persist_alloc.hh"
#include "workloads/tx_heap.hh"

namespace ssp
{

class Workload;

/**
 * Commit-control hook for distributed transactions (src/shard/).  When
 * installed, runTx executes begin + body once and then hands the commit
 * decision to the hook instead of running the local
 * validate/commit-or-retry loop: the hook must either commit the open
 * transaction (possibly after cross-shard coordination) or abort it
 * through the backend and throw, so the exception unwinds out of runOp
 * before any host-side reference model is touched.  Without a hook the
 * single-machine path is untouched.
 */
class TxControlHook
{
  public:
    virtual ~TxControlHook() = default;

    /** @p w's transaction on @p core has executed its body and is open
     *  (begun, unvalidated).  Commit it or abort-and-throw. */
    virtual void onExecuted(Workload &w, CoreId core) = 0;
};

/** One benchmark workload bound to a backend. */
class Workload
{
  public:
    Workload(AtomicityBackend &be, PersistAlloc &alloc)
        : heap_(be), alloc_(alloc)
    {
    }
    virtual ~Workload() = default;

    /** Workload name as printed in the paper's figures. */
    virtual const char *name() const = 0;

    /**
     * Populate the initial state (runs as ordinary transactions on
     * core 0; the driver resets measurement counters afterwards).
     */
    virtual void setup() = 0;

    /** Execute one operation == one durable transaction on @p core. */
    virtual void runOp(CoreId core) = 0;

    /**
     * Functional self-check against the reference model (untimed reads).
     * @return true when the persistent image matches.
     */
    virtual bool verify() = 0;

    AtomicityBackend &backend() { return heap_.backend(); }

    /**
     * Clone this workload's per-operation RNG state into a ghost
     * speculator (see sim/ghost.hh).  Must be called after setup() so
     * the clone starts where the measured run starts.  The default —
     * no speculator — simply disables ghost threads for the cell.
     */
    virtual std::unique_ptr<GhostSpeculator>
    makeGhostSpeculator() const
    {
        return nullptr;
    }

    /**
     * Partition the key space per core (the "scale" grid's partitioned
     * scenario); 1 = shared.  Workloads without keys ignore it.
     */
    void setKeyShards(unsigned shards) { keyShards_ = shards; }
    unsigned keyShards() const { return keyShards_; }

    /**
     * Install (or clear, with nullptr) the distributed commit-control
     * hook; not owned.  See TxControlHook.
     */
    void setTxControl(TxControlHook *hook) { txControl_ = hook; }
    TxControlHook *txControl() const { return txControl_; }

  protected:
    /**
     * Run one durable operation under concurrent conflict handling:
     * begin, execute @p body, validate against peer commits that landed
     * inside the transaction's window, and commit — or, on a conflict,
     * roll back through the backend's abort machinery, charge the abort
     * penalty plus exponential backoff, and re-execute.
     *
     * @p body must be re-executable: all persistent state is restored
     * by the abort path, so host-side effects (reference-model updates,
     * RNG draws) belong before or after runTx, never inside the body.
     * Allocations made by an aborted attempt leak address space only —
     * the allocator is volatile host metadata (see PersistAlloc).
     *
     * With one core (or detection disabled) validation always passes
     * and this is exactly the old begin/body/commit sequence.
     */
    template <typename BodyFn>
    void
    runTx(CoreId core, BodyFn &&body)
    {
        AtomicityBackend &be = backend();
        if (txControl_ != nullptr) {
            // Distributed commit control: execute once and delegate the
            // commit decision.  The hook either commits here or aborts
            // through the backend and throws past this frame — so an
            // aborted attempt never returns, and the caller's post-runTx
            // reference-model update never happens for it.
            be.begin(core);
            body();
            txControl_->onExecuted(*this, core);
            return;
        }
        Machine &m = be.machine();
        ConflictManager &cm = m.conflicts();
        for (unsigned attempt = 1;; ++attempt) {
            be.begin(core);
            body();
            if (cm.validate(core, m.clock(core))) {
                be.commit(core);
                return;
            }
            be.abort(core);
            m.clock(core) += cm.retryPenalty(core, attempt);
            // Each retry begins after its abort point, so any logged
            // peer commit can defeat it at most once.
            ssp_assert(attempt < 1000, "conflict retry livelock");
        }
    }

    /**
     * Map a drawn key into @p core's shard of [0, key_space).  Identity
     * when sharding is off, so single-core streams are untouched.
     */
    std::uint64_t
    shardKey(CoreId core, std::uint64_t key, std::uint64_t key_space) const
    {
        if (keyShards_ <= 1)
            return key;
        const std::uint64_t shard = key_space / keyShards_;
        ssp_assert(shard > 0,
                   "more key shards than keys: shrink keyShards or grow "
                   "the key space");
        return key % shard + (core % keyShards_) * shard;
    }

    TxHeap heap_;
    PersistAlloc &alloc_;
    unsigned keyShards_ = 1;
    TxControlHook *txControl_ = nullptr;
};

} // namespace ssp

#endif // SSP_WORKLOADS_WORKLOAD_HH
