#include "workloads/btree.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/ghost.hh"

namespace ssp
{

namespace
{

/**
 * Replays the key stream and prefetches the root-to-leaf descent: each
 * node's header, key lines, and the child slot the search takes.
 * Mirrors BTreeWorkload's node layout (field offsets passed in), but
 * every pointer it chases is a ghost read — bounded depth and clamped
 * counts guard against stale mid-update values.
 */
class BTreeGhost final : public GhostSpeculator
{
  public:
    struct Layout
    {
        Addr rootAddr;
        std::uint64_t countOff;
        std::uint64_t keysOff;
        std::uint64_t slotsOff;
        unsigned fanout;
    };

    BTreeGhost(const KeyGenerator &keys, unsigned key_shards,
               const Layout &layout)
        : keys_(keys), keyShards_(key_shards), layout_(layout)
    {
    }

    GhostPlan
    draw(std::uint64_t) override
    {
        GhostPlan plan;
        plan.arg0 = keys_.next();
        plan.valid = true;
        return plan;
    }

    void
    traverse(const GhostPlan &plan, CoreId core,
             const GhostReader &reader) override
    {
        std::uint64_t key = plan.arg0;
        if (keyShards_ > 1) {
            const std::uint64_t shard = keys_.keySpace() / keyShards_;
            key = key % shard + (core % keyShards_) * shard;
        }
        reader.prefetch(core, layout_.rootAddr);
        Addr n = reader.read64(layout_.rootAddr);
        for (unsigned depth = 0; depth < 16 && n != 0; ++depth) {
            reader.prefetch(core, n); // header: is_leaf, count
            for (std::uint64_t off = layout_.keysOff;
                 off < layout_.slotsOff; off += kLineSize) {
                reader.prefetch(core, n + off);
            }
            const bool leaf = reader.read64(n) != 0;
            std::uint64_t count = reader.read64(n + layout_.countOff);
            count = std::min<std::uint64_t>(count, layout_.fanout);
            unsigned i = 0;
            while (i < count &&
                   key >= reader.read64(n + layout_.keysOff + 8 * i)) {
                ++i;
            }
            reader.prefetch(core, n + layout_.slotsOff + 8 * i);
            if (leaf)
                break;
            n = reader.read64(n + layout_.slotsOff + 8 * i);
        }
    }

  private:
    KeyGenerator keys_;
    unsigned keyShards_;
    Layout layout_;
};

} // namespace

std::unique_ptr<GhostSpeculator>
BTreeWorkload::makeGhostSpeculator() const
{
    if (rootAddr_ == 0)
        return nullptr; // setup() has not run
    BTreeGhost::Layout layout;
    layout.rootAddr = rootAddr_;
    layout.countOff = kCountOff;
    layout.keysOff = kKeysOff;
    layout.slotsOff = kSlotsOff;
    layout.fanout = kFanout;
    return std::make_unique<BTreeGhost>(keys_, keyShards_, layout);
}

BTreeWorkload::BTreeWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                             std::uint64_t key_space, KeyDist dist,
                             std::uint64_t seed)
    : Workload(be, alloc), keys_(dist, key_space, seed), dist_(dist)
{
}

Addr
BTreeWorkload::newNode(CoreId c, bool leaf)
{
    const Addr n = alloc_.allocate(kNodeSize, kLineSize);
    heap_.store64(c, n + kIsLeafOff, leaf ? 1 : 0);
    heap_.store64(c, n + kCountOff, 0);
    heap_.store64(c, n + kNextOff, 0);
    return n;
}

void
BTreeWorkload::setup()
{
    rootAddr_ = alloc_.allocate(sizeof(std::uint64_t), 8);
    const std::uint64_t zero = 0;
    backend().storeRaw(rootAddr_, &zero, sizeof(zero));

    // Create an empty root leaf inside a transaction.
    AtomicityBackend &be = backend();
    be.begin(0);
    const Addr leaf = newNode(0, true);
    heap_.store64(0, rootAddr_, leaf);
    be.commit(0);

    const std::uint64_t prefill = keys_.keySpace() / 2;
    for (std::uint64_t i = 0; i < prefill; ++i)
        upsertOrDelete(0, keys_.next());
}

Addr
BTreeWorkload::findLeaf(CoreId c, std::uint64_t key,
                        std::vector<Addr> *path)
{
    Addr n = root(c);
    while (!isLeaf(c, n)) {
        if (path != nullptr)
            path->push_back(n);
        const unsigned cnt = count(c, n);
        unsigned i = 0;
        while (i < cnt && key >= heap_.load64(c, keyAddr(n, i)))
            ++i;
        n = heap_.load64(c, slotAddr(n, i));
    }
    return n;
}

void
BTreeWorkload::insertInNode(CoreId c, Addr n, std::uint64_t key,
                            std::uint64_t slot, bool leaf)
{
    const unsigned cnt = count(c, n);
    ssp_assert(cnt < kFanout, "insert into a full node");
    unsigned pos = 0;
    while (pos < cnt && heap_.load64(c, keyAddr(n, pos)) < key)
        ++pos;
    // Shift keys and slots right.  In an inner node, slot i+1 belongs to
    // key i, so child pointers shift in the +1 range.
    for (unsigned i = cnt; i > pos; --i) {
        heap_.store64(c, keyAddr(n, i),
                      heap_.load64(c, keyAddr(n, i - 1)));
        const unsigned s = leaf ? i : i + 1;
        heap_.store64(c, slotAddr(n, s),
                      heap_.load64(c, slotAddr(n, s - 1)));
    }
    heap_.store64(c, keyAddr(n, pos), key);
    heap_.store64(c, slotAddr(n, leaf ? pos : pos + 1), slot);
    heap_.store64(c, n + kCountOff, cnt + 1);
}

std::pair<std::uint64_t, Addr>
BTreeWorkload::splitNode(CoreId c, Addr n)
{
    const bool leaf = isLeaf(c, n);
    const unsigned cnt = count(c, n);
    ssp_assert(cnt == kFanout, "splitting a non-full node");
    const unsigned half = kFanout / 2;

    const Addr rhs = newNode(c, leaf);
    std::uint64_t separator;

    if (leaf) {
        // Right half moves; separator is the first right key (copied up).
        for (unsigned i = half; i < cnt; ++i) {
            heap_.store64(c, keyAddr(rhs, i - half),
                          heap_.load64(c, keyAddr(n, i)));
            heap_.store64(c, slotAddr(rhs, i - half),
                          heap_.load64(c, slotAddr(n, i)));
        }
        heap_.store64(c, rhs + kCountOff, cnt - half);
        heap_.store64(c, n + kCountOff, half);
        separator = heap_.load64(c, keyAddr(rhs, 0));
        // Leaf chain.
        heap_.store64(c, rhs + kNextOff, heap_.load64(c, n + kNextOff));
        heap_.store64(c, n + kNextOff, rhs);
    } else {
        // Middle key moves up; right half of keys and children move.
        separator = heap_.load64(c, keyAddr(n, half));
        for (unsigned i = half + 1; i < cnt; ++i) {
            heap_.store64(c, keyAddr(rhs, i - half - 1),
                          heap_.load64(c, keyAddr(n, i)));
        }
        for (unsigned i = half + 1; i <= cnt; ++i) {
            heap_.store64(c, slotAddr(rhs, i - half - 1),
                          heap_.load64(c, slotAddr(n, i)));
        }
        heap_.store64(c, rhs + kCountOff, cnt - half - 1);
        heap_.store64(c, n + kCountOff, half);
    }
    return {separator, rhs};
}

void
BTreeWorkload::insertKey(CoreId c, std::uint64_t key, std::uint64_t value)
{
    std::vector<Addr> path;
    Addr leaf = findLeaf(c, key, &path);

    if (count(c, leaf) == kFanout) {
        // Split bottom-up along the recorded path.
        auto [sep, rhs] = splitNode(c, leaf);
        Addr child_rhs = rhs;
        std::uint64_t up_key = sep;
        bool placed = false;
        while (!placed) {
            if (path.empty()) {
                // New root.
                const Addr nr = newNode(c, false);
                heap_.store64(c, keyAddr(nr, 0), up_key);
                heap_.store64(c, slotAddr(nr, 0),
                              heap_.load64(c, rootAddr_));
                heap_.store64(c, slotAddr(nr, 1), child_rhs);
                heap_.store64(c, nr + kCountOff, 1);
                heap_.store64(c, rootAddr_, nr);
                placed = true;
            } else {
                const Addr parent = path.back();
                path.pop_back();
                if (count(c, parent) < kFanout) {
                    insertInNode(c, parent, up_key, child_rhs, false);
                    placed = true;
                } else {
                    auto [psep, prhs] = splitNode(c, parent);
                    // Route the pending separator into the proper half.
                    if (up_key < psep) {
                        insertInNode(c, parent, up_key, child_rhs, false);
                    } else {
                        insertInNode(c, prhs, up_key, child_rhs, false);
                    }
                    up_key = psep;
                    child_rhs = prhs;
                }
            }
        }
        // Descend again into the correct leaf.
        leaf = findLeaf(c, key, nullptr);
    }
    insertInNode(c, leaf, key, value, true);
}

bool
BTreeWorkload::deleteKey(CoreId c, std::uint64_t key)
{
    const Addr leaf = findLeaf(c, key, nullptr);
    const unsigned cnt = count(c, leaf);
    for (unsigned i = 0; i < cnt; ++i) {
        if (heap_.load64(c, keyAddr(leaf, i)) == key) {
            for (unsigned j = i + 1; j < cnt; ++j) {
                heap_.store64(c, keyAddr(leaf, j - 1),
                              heap_.load64(c, keyAddr(leaf, j)));
                heap_.store64(c, slotAddr(leaf, j - 1),
                              heap_.load64(c, slotAddr(leaf, j)));
            }
            heap_.store64(c, leaf + kCountOff, cnt - 1);
            return true;
        }
    }
    return false;
}

bool
BTreeWorkload::lookup(CoreId c, std::uint64_t key, std::uint64_t *value)
{
    const Addr leaf = findLeaf(c, key, nullptr);
    const unsigned cnt = count(c, leaf);
    for (unsigned i = 0; i < cnt; ++i) {
        if (heap_.load64(c, keyAddr(leaf, i)) == key) {
            if (value != nullptr)
                *value = heap_.load64(c, slotAddr(leaf, i));
            return true;
        }
    }
    return false;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
BTreeWorkload::scan(CoreId c, std::uint64_t key, unsigned limit)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    Addr leaf = findLeaf(c, key, nullptr);
    while (leaf != 0 && out.size() < limit) {
        const unsigned cnt = count(c, leaf);
        for (unsigned i = 0; i < cnt && out.size() < limit; ++i) {
            const std::uint64_t k = heap_.load64(c, keyAddr(leaf, i));
            if (k >= key)
                out.emplace_back(k, heap_.load64(c, slotAddr(leaf, i)));
        }
        leaf = heap_.load64(c, leaf + kNextOff);
    }
    return out;
}

void
BTreeWorkload::upsertOrDelete(CoreId c, std::uint64_t key)
{
    bool deleted = false;
    std::uint64_t v = 0;
    runTx(c, [&] {
        deleted = deleteKey(c, key);
        if (!deleted) {
            v = key * 5 + 11 + opCounter_;
            insertKey(c, key, v);
        }
    });
    if (deleted)
        reference_.erase(key);
    else
        reference_[key] = v;
    ++opCounter_;
}

void
BTreeWorkload::runOp(CoreId core)
{
    upsertOrDelete(core, shardKey(core, keys_.next(), keys_.keySpace()));
}

bool
BTreeWorkload::verify()
{
    // Walk the leaf chain from the leftmost leaf and compare the pair
    // sequence with the reference map.
    Addr n = heap_.raw64(rootAddr_);
    if (n == 0)
        return reference_.empty();
    while (heap_.raw64(n + kIsLeafOff) == 0)
        n = heap_.raw64(slotAddr(n, 0));

    auto it = reference_.begin();
    std::uint64_t found = 0;
    while (n != 0) {
        const auto cnt =
            static_cast<unsigned>(heap_.raw64(n + kCountOff));
        std::uint64_t prev = 0;
        for (unsigned i = 0; i < cnt; ++i) {
            const std::uint64_t k = heap_.raw64(keyAddr(n, i));
            if (i > 0 && k <= prev)
                return false; // unsorted leaf
            prev = k;
            if (it == reference_.end())
                return false;
            if (it->first != k || it->second != heap_.raw64(slotAddr(n, i)))
                return false;
            ++it;
            ++found;
        }
        n = heap_.raw64(n + kNextOff);
    }
    return found == reference_.size();
}

} // namespace ssp
