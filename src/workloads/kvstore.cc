#include "workloads/kvstore.hh"

#include <cstring>

#include "common/logging.hh"

namespace ssp
{

namespace
{

std::uint64_t
hashKey(std::uint64_t key)
{
    return (key * 0xff51afd7ed558ccdull) >> 15;
}

} // namespace

KvStoreWorkload::KvStoreWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                                 const KvStoreParams &params,
                                 std::uint64_t seed)
    : Workload(be, alloc), params_(params), rng_(seed)
{
    ssp_assert((params.buckets & (params.buckets - 1)) == 0,
               "bucket count must be a power of two");
    ssp_assert(params.capacity >= 2);
}

std::uint64_t
KvStoreWorkload::bucketOf(std::uint64_t key) const
{
    return hashKey(key) & (params_.buckets - 1);
}

Addr
KvStoreWorkload::bucketAddr(std::uint64_t key) const
{
    return table_ + bucketOf(key) * sizeof(std::uint64_t);
}

void
KvStoreWorkload::setup()
{
    table_ =
        alloc_.allocate(params_.buckets * sizeof(std::uint64_t), kLineSize);
    lruHeadAddr_ = alloc_.allocate(sizeof(std::uint64_t), 8);
    lruTailAddr_ = alloc_.allocate(sizeof(std::uint64_t), 8);
    const std::uint64_t zero = 0;
    for (std::uint64_t b = 0; b < params_.buckets; ++b) {
        backend().storeRaw(table_ + b * sizeof(std::uint64_t), &zero,
                           sizeof(zero));
    }
    backend().storeRaw(lruHeadAddr_, &zero, sizeof(zero));
    backend().storeRaw(lruTailAddr_, &zero, sizeof(zero));

    // Warm the cache to roughly half capacity.
    for (std::uint64_t i = 0; i < params_.capacity / 2; ++i)
        set(0, rng_.nextBounded(params_.keySpace));
}

Addr
KvStoreWorkload::findItem(CoreId core, std::uint64_t key, Addr *prev_link)
{
    Addr link = bucketAddr(key);
    Addr item = heap_.load64(core, link);
    while (item != 0 && heap_.load64(core, item + kKeyOff) != key) {
        link = item + kNextOff;
        item = heap_.load64(core, item + kNextOff);
    }
    if (prev_link != nullptr)
        *prev_link = link;
    return item;
}

void
KvStoreWorkload::lruPushFront(CoreId core, Addr item)
{
    const Addr head = heap_.load64(core, lruHeadAddr_);
    heap_.store64(core, item + kPrevLruOff, 0);
    heap_.store64(core, item + kNextLruOff, head);
    if (head != 0)
        heap_.store64(core, head + kPrevLruOff, item);
    heap_.store64(core, lruHeadAddr_, item);
    if (heap_.load64(core, lruTailAddr_) == 0)
        heap_.store64(core, lruTailAddr_, item);
}

void
KvStoreWorkload::lruUnlink(CoreId core, Addr item)
{
    const Addr prev = heap_.load64(core, item + kPrevLruOff);
    const Addr next = heap_.load64(core, item + kNextLruOff);
    if (prev != 0)
        heap_.store64(core, prev + kNextLruOff, next);
    else
        heap_.store64(core, lruHeadAddr_, next);
    if (next != 0)
        heap_.store64(core, next + kPrevLruOff, prev);
    else
        heap_.store64(core, lruTailAddr_, prev);
}

void
KvStoreWorkload::unlinkItem(CoreId core, Addr item, Addr prev_link)
{
    heap_.store64(core, prev_link, heap_.load64(core, item + kNextOff));
    lruUnlink(core, item);
}

void
KvStoreWorkload::set(CoreId core, std::uint64_t key)
{
    // The stamp this SET publishes; host state (seq_, reference_) is
    // only updated after the transaction survives validation, so an
    // aborted attempt replays with identical values.
    const std::uint64_t stamp = seq_ + 1;
    bool replaced = false;
    std::vector<std::pair<Addr, std::uint64_t>> freed; ///< {item, key}

    runTx(core, [&] {
        replaced = false;
        freed.clear();

        Addr prev_link = 0;
        Addr item = findItem(core, key, &prev_link);
        if (item != 0) {
            // Replace in place: bump the sequence stamp and rewrite
            // the payload; move to the LRU front.
            heap_.store64(core, item + kSeqOff, stamp);
            std::vector<std::uint8_t> payload(
                params_.valueBytes, static_cast<std::uint8_t>(stamp));
            heap_.storeBytes(core, item + kValueOff, payload.data(),
                             payload.size());
            lruUnlink(core, item);
            lruPushFront(core, item);
            replaced = true;
            return;
        }

        // Insert a fresh item.
        const Addr fresh = alloc_.allocate(itemSize(), kLineSize);
        heap_.store64(core, fresh + kKeyOff, key);
        heap_.store64(core, fresh + kSeqOff, stamp);
        std::vector<std::uint8_t> payload(
            params_.valueBytes, static_cast<std::uint8_t>(stamp));
        heap_.storeBytes(core, fresh + kValueOff, payload.data(),
                         payload.size());
        const Addr head = heap_.load64(core, bucketAddr(key));
        heap_.store64(core, fresh + kNextOff, head);
        heap_.store64(core, bucketAddr(key), fresh);
        lruPushFront(core, fresh);

        // Evict from the LRU tail when over budget (still the same
        // durable transaction — memcached SET is one atomic
        // operation).  reference_ does not yet include this insert.
        std::uint64_t resident = reference_.size() + 1;
        while (resident > params_.capacity) {
            const Addr victim = heap_.load64(core, lruTailAddr_);
            ssp_assert(victim != 0, "LRU empty while over capacity");
            const std::uint64_t vkey =
                heap_.load64(core, victim + kKeyOff);
            Addr vprev_link = 0;
            const Addr found = findItem(core, vkey, &vprev_link);
            ssp_assert(found == victim, "LRU tail not in its hash chain");
            unlinkItem(core, victim, vprev_link);
            freed.emplace_back(victim, vkey);
            --resident;
        }
    });

    seq_ = stamp;
    reference_[key] = stamp;
    if (replaced)
        return;
    evictions_ += freed.size();
    for (auto [addr, k] : freed) {
        reference_.erase(k);
        alloc_.free(addr, itemSize());
    }
}

bool
KvStoreWorkload::get(CoreId core, std::uint64_t key)
{
    Addr item = findItem(core, key, nullptr);
    if (item == 0)
        return false;
    // Read the payload (timed).
    std::vector<std::uint8_t> payload(params_.valueBytes);
    heap_.loadBytes(core, item + kValueOff, payload.data(), payload.size());
    return true;
}

void
KvStoreWorkload::runOp(CoreId core)
{
    const std::uint64_t key = rng_.nextBounded(params_.keySpace);
    if (rng_.nextBool(params_.setFraction))
        set(core, key);
    else
        get(core, key);
}

bool
KvStoreWorkload::verify()
{
    // Every reference key must be resident with the right stamp.
    std::uint64_t found = 0;
    for (std::uint64_t b = 0; b < params_.buckets; ++b) {
        Addr item = heap_.raw64(table_ + b * sizeof(std::uint64_t));
        while (item != 0) {
            const std::uint64_t key = heap_.raw64(item + kKeyOff);
            const std::uint64_t stamp = heap_.raw64(item + kSeqOff);
            auto it = reference_.find(key);
            if (it == reference_.end() || it->second != stamp)
                return false;
            std::uint8_t byte = 0;
            backend().loadRaw(item + kValueOff, &byte, 1);
            if (byte != static_cast<std::uint8_t>(stamp))
                return false;
            ++found;
            item = heap_.raw64(item + kNextOff);
        }
    }
    return found == reference_.size();
}

} // namespace ssp
