#include "workloads/sps.hh"

#include "common/logging.hh"
#include "sim/ghost.hh"

namespace ssp
{

namespace
{

/** Replays SPS's two uniform draws and prefetches both elements. */
class SpsGhost final : public GhostSpeculator
{
  public:
    SpsGhost(std::uint64_t num_elements, Addr base, const Rng &rng)
        : numElements_(num_elements), base_(base), rng_(rng)
    {
    }

    GhostPlan
    draw(std::uint64_t) override
    {
        GhostPlan plan;
        plan.arg0 = rng_.nextBounded(numElements_);
        plan.arg1 = rng_.nextBounded(numElements_);
        if (plan.arg0 == plan.arg1)
            plan.arg1 = (plan.arg1 + 1) % numElements_;
        plan.valid = true;
        return plan;
    }

    void
    traverse(const GhostPlan &plan, CoreId core,
             const GhostReader &reader) override
    {
        reader.prefetch(core, base_ + plan.arg0 * sizeof(std::uint64_t));
        reader.prefetch(core, base_ + plan.arg1 * sizeof(std::uint64_t));
    }

  private:
    std::uint64_t numElements_;
    Addr base_;
    Rng rng_;
};

} // namespace

std::unique_ptr<GhostSpeculator>
SpsWorkload::makeGhostSpeculator() const
{
    if (base_ == 0)
        return nullptr; // setup() has not run
    return std::make_unique<SpsGhost>(numElements_, base_, rng_);
}

SpsWorkload::SpsWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                         std::uint64_t num_elements, std::uint64_t seed)
    : Workload(be, alloc), numElements_(num_elements), rng_(seed)
{
    ssp_assert(num_elements >= 2);
}

Addr
SpsWorkload::elemAddr(std::uint64_t idx) const
{
    return base_ + idx * sizeof(std::uint64_t);
}

void
SpsWorkload::setup()
{
    base_ = alloc_.allocate(numElements_ * sizeof(std::uint64_t),
                            kLineSize);
    reference_.resize(numElements_);
    for (std::uint64_t i = 0; i < numElements_; ++i) {
        reference_[i] = i;
        std::uint64_t v = i;
        backend().storeRaw(elemAddr(i), &v, sizeof(v));
    }
}

void
SpsWorkload::runOp(CoreId core)
{
    const std::uint64_t a = rng_.nextBounded(numElements_);
    std::uint64_t b = rng_.nextBounded(numElements_);
    if (a == b)
        b = (b + 1) % numElements_;

    runTx(core, [&] {
        const std::uint64_t va = heap_.load64(core, elemAddr(a));
        const std::uint64_t vb = heap_.load64(core, elemAddr(b));
        heap_.store64(core, elemAddr(a), vb);
        heap_.store64(core, elemAddr(b), va);
    });

    std::swap(reference_[a], reference_[b]);
}

bool
SpsWorkload::verify()
{
    for (std::uint64_t i = 0; i < numElements_; ++i) {
        if (heap_.raw64(elemAddr(i)) != reference_[i])
            return false;
    }
    return true;
}

} // namespace ssp
