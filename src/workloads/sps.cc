#include "workloads/sps.hh"

#include "common/logging.hh"

namespace ssp
{

SpsWorkload::SpsWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                         std::uint64_t num_elements, std::uint64_t seed)
    : Workload(be, alloc), numElements_(num_elements), rng_(seed)
{
    ssp_assert(num_elements >= 2);
}

Addr
SpsWorkload::elemAddr(std::uint64_t idx) const
{
    return base_ + idx * sizeof(std::uint64_t);
}

void
SpsWorkload::setup()
{
    base_ = alloc_.allocate(numElements_ * sizeof(std::uint64_t),
                            kLineSize);
    reference_.resize(numElements_);
    for (std::uint64_t i = 0; i < numElements_; ++i) {
        reference_[i] = i;
        std::uint64_t v = i;
        backend().storeRaw(elemAddr(i), &v, sizeof(v));
    }
}

void
SpsWorkload::runOp(CoreId core)
{
    const std::uint64_t a = rng_.nextBounded(numElements_);
    std::uint64_t b = rng_.nextBounded(numElements_);
    if (a == b)
        b = (b + 1) % numElements_;

    runTx(core, [&] {
        const std::uint64_t va = heap_.load64(core, elemAddr(a));
        const std::uint64_t vb = heap_.load64(core, elemAddr(b));
        heap_.store64(core, elemAddr(a), vb);
        heap_.store64(core, elemAddr(b), va);
    });

    std::swap(reference_[a], reference_[b]);
}

bool
SpsWorkload::verify()
{
    for (std::uint64_t i = 0; i < numElements_; ++i) {
        if (heap_.raw64(elemAddr(i)) != reference_[i])
            return false;
    }
    return true;
}

} // namespace ssp
