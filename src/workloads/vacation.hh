/**
 * @file
 * Vacation-like OLTP emulation (paper section 5.1: the STAMP travel
 * reservation system, four clients; Table 3 reports 4 lines / 3 pages
 * average, 9 pages max per transaction).
 *
 * The system keeps three resource tables (cars, flights, rooms) and a
 * customer table, all persistent chained hashtables of fixed-layout
 * records.  One transaction emulates a reservation: look up a customer,
 * query a handful of resources for price/availability (reads), pick one,
 * decrement its availability, append a reservation record to the
 * customer's list, and update the customer's total bill — mirroring the
 * read-mostly-then-few-updates shape of the original benchmark, where
 * volatile execution (table traversal) dominates over persistence work.
 */

#ifndef SSP_WORKLOADS_VACATION_HH
#define SSP_WORKLOADS_VACATION_HH

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "workloads/workload.hh"

namespace ssp
{

/** Configuration of the reservation system. */
struct VacationParams
{
    std::uint64_t relations = 4096;  ///< tuples per resource table
    std::uint64_t customers = 2048;  ///< customer count
    unsigned queriesPerTx = 6;       ///< resources examined per tx
    std::uint64_t buckets = 1024;    ///< hash buckets per table
};

/** The Vacation-like OLTP workload. */
class VacationWorkload : public Workload
{
  public:
    VacationWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                     const VacationParams &params, std::uint64_t seed);

    const char *name() const override { return "Vacation"; }
    void setup() override;
    void runOp(CoreId core) override;
    bool verify() override;

    std::uint64_t reservationsMade() const { return reservations_; }

  private:
    // Resource record: id(8) price(8) total(8) free(8) next(8) = 40 B.
    static constexpr std::uint64_t kResSize = 40;
    // Customer record: id(8) bill(8) res_head(8) next(8) = 32 B.
    static constexpr std::uint64_t kCustSize = 32;
    // Reservation node: resource_addr(8) price(8) next(8) = 24 B.
    static constexpr std::uint64_t kRsvSize = 24;

    enum Table { Cars = 0, Flights = 1, Rooms = 2 };

    Addr tableBucket(unsigned table, std::uint64_t id) const;
    Addr custBucket(std::uint64_t id) const;
    Addr findResource(CoreId c, unsigned table, std::uint64_t id);
    Addr findCustomer(CoreId c, std::uint64_t id);

    VacationParams params_;
    Rng rng_;
    Addr tables_[3] = {0, 0, 0};
    Addr custTable_ = 0;
    std::uint64_t reservations_ = 0;

    /** Host-side model: free seats per (table, id) and bills. */
    std::unordered_map<std::uint64_t, std::uint64_t> freeModel_;
    std::unordered_map<std::uint64_t, std::uint64_t> billModel_;
};

} // namespace ssp

#endif // SSP_WORKLOADS_VACATION_HH
