/**
 * @file
 * Persistent chained hashtable microbenchmark (paper Table 3:
 * 3 lines / 3 pages average per transaction).
 *
 * Layout: a bucket array of 8-byte head pointers plus chained nodes
 * {key, value, next}.  Each operation searches for a key and then either
 * deletes it (found) or inserts it (absent), wrapped in one durable
 * transaction — exactly the paper's microbenchmark protocol.
 */

#ifndef SSP_WORKLOADS_HASHTABLE_HH
#define SSP_WORKLOADS_HASHTABLE_HH

#include <unordered_map>

#include "workloads/keygen.hh"
#include "workloads/workload.hh"

namespace ssp
{

/** The hashtable insert/delete microbenchmark. */
class HashWorkload : public Workload
{
  public:
    /**
     * @param buckets Bucket count (power of two).
     * @param key_space Keys are drawn from [0, key_space).
     * @param dist Uniform ("-Rand") or hotspot ("-Zipf").
     */
    HashWorkload(AtomicityBackend &be, PersistAlloc &alloc,
                 std::uint64_t buckets, std::uint64_t key_space,
                 KeyDist dist, std::uint64_t seed);

    const char *name() const override
    {
        return dist_ == KeyDist::Zipf ? "Hash-Zipf" : "Hash-Rand";
    }
    void setup() override;
    void runOp(CoreId core) override;
    bool verify() override;
    std::unique_ptr<GhostSpeculator> makeGhostSpeculator() const override;

    std::uint64_t size() const { return reference_.size(); }

    /** Timed lookup (used by examples); returns true when found. */
    bool lookup(CoreId core, std::uint64_t key, std::uint64_t *value);

    /** One insert-or-delete transaction for @p key (test hook). */
    void upsertOrDelete(CoreId core, std::uint64_t key);

  private:
    // key, value, next; padded to one cache line (PM idiom).
    static constexpr std::uint64_t kNodeSize = 64;

    Addr bucketAddr(std::uint64_t key) const;
    std::uint64_t bucketOf(std::uint64_t key) const;

    std::uint64_t buckets_;
    KeyGenerator keys_;
    KeyDist dist_;
    Addr table_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> reference_;
    std::uint64_t opCounter_ = 0;
};

} // namespace ssp

#endif // SSP_WORKLOADS_HASHTABLE_HH
