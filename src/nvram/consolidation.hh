/**
 * @file
 * Page consolidation (paper sections 3.4 and 4.1.2).
 *
 * When a virtual page's TLB reference count drops to zero the page is
 * inactive; its committed lines are scattered across P0 and P1 and must
 * be merged into one physical page so the other can be reused.  The
 * consolidator counts the committed bitmap to find the minority side,
 * copies only those lines, journals the resulting mapping change (new
 * PPN0, committed bitmap all-zero) and updates the page table.
 *
 * Consolidation is the only place SSP writes data twice, and it runs off
 * the critical path: an OS background thread drains a queue.  The model
 * charges the copies to NVRAM bandwidth (they occupy banks) but no core
 * stalls on them; a core that re-requests a page mid-consolidation waits
 * for the completion time recorded against the slot.
 */

#ifndef SSP_NVRAM_CONSOLIDATION_HH
#define SSP_NVRAM_CONSOLIDATION_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_bus.hh"
#include "nvram/free_pages.hh"
#include "nvram/journal.hh"
#include "nvram/ssp_cache.hh"
#include "vm/page_table.hh"

namespace ssp
{

/** Outcome of one consolidation, for stats and tests. */
struct ConsolidationResult
{
    SlotId sid = kInvalidSlot;
    /** Lines physically copied (the minority side). */
    unsigned linesCopied = 0;
    /** True when the roles of P0 and P1 were swapped. */
    bool swapped = false;
    /** Completion time of the copy + journal write. */
    Cycles doneAt = 0;
};

/** The background consolidator. */
class Consolidator
{
  public:
    /**
     * @param sub_page_lines Lines per tracking bit (section 4.3).
     */
    Consolidator(SspCache &cache, MetadataJournal &journal, PageTable &pt,
                 MemoryBus &bus, FreePagePool &pool,
                 unsigned sub_page_lines = 1);

    /**
     * Consolidate slot @p sid now (the eager policy the paper
     * implements).  @pre the slot's TLB and core reference counts are 0.
     */
    ConsolidationResult consolidate(SlotId sid, Cycles now);

    std::uint64_t consolidations() const { return consolidations_; }
    const StatSummary &copiedLines() const { return copiedLines_; }

  private:
    SspCache &cache_;
    MetadataJournal &journal_;
    PageTable &pt_;
    MemoryBus &bus_;
    FreePagePool &pool_;
    unsigned subPageLines_;
    std::uint64_t consolidations_ = 0;
    StatSummary copiedLines_;
};

} // namespace ssp

#endif // SSP_NVRAM_CONSOLIDATION_HH
