#include "nvram/mem_controller.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace ssp
{

MemController::MemController(const MemControllerParams &params,
                             MemoryBus &bus, PageTable &pt)
    : params_(params), bus_(bus), pt_(pt),
      cache_(params.sspCacheSlots, params.latency),
      journal_(bus, params.journalBase, params.journalBytes,
               params.checkpointThresholdBytes),
      pool_(params.shadowPoolBase, params.shadowPoolPages),
      consolidator_(cache_, journal_, pt_, bus, pool_,
                    params.subPageLines),
      consolidateDoneAt_(params.sspCacheSlots, 0)
{
    if (params_.persistentCacheBytes == 0) {
        params_.persistentCacheBase = params_.journalBase;
        params_.persistentCacheBytes =
            std::max<std::uint64_t>(params_.journalBytes, kLineSize);
    }
}

MetadataFetchResult
MemController::fetchEntry(Vpn vpn, Ppn ppn0, Cycles now)
{
    MetadataFetchResult res;
    SlotId sid = cache_.findSlot(vpn);
    if (sid != kInvalidSlot && pendingSet_.contains(sid)) {
        // The page became active again before the background thread got
        // to it: cancel the pending consolidation (the lazy policy's
        // batching win).
        pendingSet_.erase(sid);
        std::erase(pending_, sid);
        ++canceledConsolidations_;
    }
    if (sid == kInvalidSlot) {
        if (params_.lazyConsolidation &&
            pool_.available() < params_.lazyLowWatermark) {
            drainPending(now, false);
        }
        SspCacheEntry displaced;
        sid = cache_.allocateSlot(vpn, &displaced);
        if (displaced.valid) {
            // Journal the eviction.  The page must not hold other data
            // until the record (and the consolidation records before
            // it) are durable — it sits in quarantine until the journal
            // watermark passes, so no forced flush is needed here.
            JournalRecord free_rec;
            free_rec.kind = JournalKind::Free;
            free_rec.tid = 0;
            free_rec.sid = sid;
            free_rec.vpn = displaced.vpn;
            free_rec.ppn0 = displaced.ppn0;
            free_rec.ppn1 = displaced.ppn1;
            journal_.append(free_rec, now);
            quarantine_.emplace_back(displaced.ppn1,
                                     journal_.appendedBytes());
        }
        if (sid >= consolidateDoneAt_.size())
            consolidateDoneAt_.resize(sid + 1, 0);
        reclaimQuarantine(now);
        SspCacheEntry &e = cache_.entry(sid);
        e.ppn0 = ppn0;
        e.ppn1 = pool_.allocate();
        e.committed = Bitmap64{};
        e.current = Bitmap64{};
    } else {
        // An existing entry is authoritative; the page table may lag a
        // consolidation's mapping change, but fetch always returns the
        // slot's view.
    }
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid);
    e.tlbRefCount++;
    res.sid = sid;
    res.ppn0 = e.ppn0;
    res.ppn1 = e.ppn1;
    // A page whose consolidation copies are still draining is served
    // "with minimal delay" (section 4.1.2): the metadata switch is
    // instantaneous and in-flight lines are served from the controller's
    // buffers, so the fill does not wait for the array writes.
    res.doneAt = cache_.access(sid, now);
    return res;
}

void
MemController::tlbDeref(SlotId sid, Cycles now)
{
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid, "tlbDeref on invalid slot");
    ssp_assert(e.tlbRefCount > 0, "tlbRefCount underflow");
    e.tlbRefCount--;
    if (e.tlbRefCount == 0)
        maybeConsolidate(sid, now);
}

void
MemController::maybeConsolidate(SlotId sid, Cycles now)
{
    SspCacheEntry &e = cache_.entry(sid);
    // A page written by an in-flight transaction (non-zero core
    // reference count) is not eligible (section 4.2).
    if (e.coreRefCount != 0 || e.tlbRefCount != 0)
        return;
    if (params_.lazyConsolidation) {
        // Defer: queue the page; it is consolidated only when the pool
        // runs low — and canceled for free if it becomes active first.
        if (pendingSet_.insert(sid).second)
            pending_.push_back(sid);
        if (pool_.available() < params_.lazyLowWatermark)
            drainPending(now, false);
        return;
    }
    consolidateNow(sid, now);
}

void
MemController::consolidateNow(SlotId sid, Cycles now)
{
    auto res = consolidator_.consolidate(sid, now);
    consolidateDoneAt_[sid] = res.doneAt;
    if (params_.wearRotatePeriod != 0 &&
        consolidator_.consolidations() % params_.wearRotatePeriod == 0) {
        // Swap the now-idle shadow page for a fresh pool page.  The
        // mapping change is journaled like a consolidation so recovery
        // sees a consistent PPN1.
        SspCacheEntry &e = cache_.entry(sid);
        const Ppn fresh = pool_.exchange(e.ppn1);
        if (fresh != e.ppn1) {
            e.ppn1 = fresh;
            ++wearRotations_;
            JournalRecord rec;
            rec.kind = JournalKind::Consolidate;
            rec.tid = 0;
            rec.sid = sid;
            rec.vpn = e.vpn;
            rec.ppn0 = e.ppn0;
            rec.ppn1 = e.ppn1;
            rec.committed = e.committed;
            journal_.append(rec, now);
        }
    }
}

void
MemController::reclaimQuarantine(Cycles now)
{
    auto ripe = [this](const std::pair<Ppn, std::uint64_t> &q) {
        return q.second <= journal_.persistedBytes();
    };
    if (pool_.available() == 0 && !quarantine_.empty() &&
        !ripe(quarantine_.front())) {
        // Rare: the pool is dry and the oldest quarantined page's Free
        // record has not streamed out yet — force the flush.
        journal_.flush(now);
    }
    while (!quarantine_.empty() && ripe(quarantine_.front())) {
        pool_.release(quarantine_.front().first);
        quarantine_.pop_front();
    }
}

void
MemController::drainPending(Cycles now, bool all)
{
    while (!pending_.empty() &&
           (all || pool_.available() < params_.lazyLowWatermark)) {
        SlotId sid = pending_.front();
        pending_.pop_front();
        pendingSet_.erase(sid);
        SspCacheEntry &e = cache_.entry(sid);
        if (!e.valid || e.tlbRefCount != 0 || e.coreRefCount != 0) {
            // Became active (or died) while queued: nothing to do.
            ++canceledConsolidations_;
            continue;
        }
        if (e.committed.none()) {
            ++canceledConsolidations_;
            continue; // already consolidated
        }
        consolidateNow(sid, now);
    }
}

void
MemController::coreRef(SlotId sid)
{
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid);
    e.coreRefCount++;
}

void
MemController::coreDeref(SlotId sid)
{
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid);
    ssp_assert(e.coreRefCount > 0, "coreRefCount underflow");
    e.coreRefCount--;
    if (e.coreRefCount == 0 && e.tlbRefCount == 0)
        maybeConsolidate(sid, 0);
}

void
MemController::flipCurrent(SlotId sid, unsigned line_idx)
{
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid);
    ssp_assert(line_idx < kLinesPerPage);
    e.current.flip(line_idx);
}

Cycles
MemController::metadataUpdate(TxId tid, SlotId sid, Bitmap64 updated,
                              Cycles now)
{
    ++metadataUpdates_;
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid);

    JournalRecord rec;
    rec.kind = JournalKind::Update;
    rec.tid = tid;
    rec.sid = sid;
    rec.vpn = e.vpn;
    rec.ppn0 = e.ppn0;
    rec.ppn1 = e.ppn1;
    rec.committed = e.committed ^ updated;
    journal_.append(rec, now);

    // Apply to the transient entry.  This is safe before the commit
    // marker persists because checkpoints only run at commit boundaries,
    // and recovery replays from persistent state + committed journal
    // records only.
    e.committed ^= updated;
    return cache_.access(sid, now);
}

Cycles
MemController::commitTx(TxId tid, Cycles now)
{
    JournalRecord rec;
    rec.kind = JournalKind::Commit;
    rec.tid = tid;
    journal_.append(rec, now);
    Cycles done = journal_.flush(now);
    if (journal_.needsCheckpoint())
        checkpoint(done);
    return done;
}

Cycles
MemController::accessSlot(SlotId sid, Cycles now)
{
    return cache_.access(sid, now);
}

void
MemController::checkpoint(Cycles now)
{
    ++checkpoints_;
    // Capture the final state of every slot the journal touched.
    std::unordered_set<SlotId> touched;
    for (const auto &rec : journal_.allRecords()) {
        if (rec.kind != JournalKind::Commit)
            touched.insert(rec.sid);
    }
    for (SlotId sid : touched) {
        const SspCacheEntry &e = cache_.entry(sid);
        PersistentSlot &p = cache_.persistentSlot(sid);
        if (!e.valid) {
            p.valid = false;
            continue;
        }
        p.valid = true;
        p.vpn = e.vpn;
        p.ppn0 = e.ppn0;
        p.ppn1 = e.ppn1;
        p.committed = e.committed;
        // One persistent-slot line write per captured entry; the
        // checkpointing thread runs in the background, so this only
        // bills bandwidth — it occupies no bank, channel, or bus slot.
        // Each slot still addresses its own line of the persistent-
        // cache area (rather than one shared line) so the traffic maps
        // onto the real bank/channel layout if checkpointing is ever
        // made contending.
        const Addr slot_line =
            params_.persistentCacheBase +
            (static_cast<Addr>(sid) * kLineSize) %
                params_.persistentCacheBytes;
        bus_.issueWrite(slot_line, WriteCategory::Checkpoint, now, true);
    }
    journal_.truncate();
    // The checkpoint made every journal record durable, so all
    // quarantined shadow pages are safe to reuse.
    while (!quarantine_.empty()) {
        pool_.release(quarantine_.front().first);
        quarantine_.pop_front();
    }
}

void
MemController::powerFail()
{
    cache_.powerFail();
    journal_.powerFail();
    consolidateDoneAt_.assign(consolidateDoneAt_.size(), 0);
    pending_.clear();
    pendingSet_.clear();
    quarantine_.clear();
}

void
MemController::recover()
{
    // 1. Reload transient entries from the persistent cache.
    for (SlotId sid = 0;
         sid < static_cast<SlotId>(cache_.persistentSlots().size());
         ++sid) {
        if (cache_.persistentSlots()[sid].valid)
            cache_.reloadFromPersistent(sid);
    }

    // 2. Replay the journal: first find committed TIDs, then apply
    // records in order, skipping updates of uncommitted transactions.
    auto records = journal_.persistedRecords();
    std::unordered_set<TxId> committed_tids;
    for (const auto &rec : records) {
        if (rec.kind == JournalKind::Commit)
            committed_tids.insert(rec.tid);
    }
    for (const auto &rec : records) {
        if (rec.kind == JournalKind::Commit)
            continue;
        if (rec.kind == JournalKind::Update &&
            !committed_tids.contains(rec.tid)) {
            continue; // aborted / in-flight transaction: skip
        }
        if (rec.kind == JournalKind::Free) {
            // The slot left the SSP cache before the crash; its shadow
            // page belongs to whoever the later records assign it to.
            SlotId freed = cache_.findSlot(rec.vpn);
            if (freed != kInvalidSlot) {
                cache_.persistentSlot(freed).valid = false;
                cache_.freeSlot(freed);
            }
            continue;
        }
        SlotId sid = cache_.findSlot(rec.vpn);
        if (sid == kInvalidSlot) {
            // The slot never made it into a checkpoint; the journal
            // record is its only durable trace.
            sid = cache_.allocateSlot(rec.vpn);
            if (sid >= consolidateDoneAt_.size())
                consolidateDoneAt_.resize(sid + 1, 0);
        }
        SspCacheEntry &e = cache_.entry(sid);
        e.ppn0 = rec.ppn0;
        e.ppn1 = rec.ppn1;
        e.committed = rec.committed;
        e.current = rec.committed;
        e.tlbRefCount = 0;
        e.coreRefCount = 0;
        e.consolidating = false;
    }

    // 3. current := committed is enforced by reload/replay above.
    //    Fix the OS page table for every live slot and account the
    //    shadow pages still owned by slots.
    std::unordered_set<Ppn> owned;
    for (SlotId sid : cache_.validSlots()) {
        const SspCacheEntry &e = cache_.entry(sid);
        pt_.map(e.vpn, e.ppn0);
        owned.insert(e.ppn0);
        owned.insert(e.ppn1);
    }

    // 4. Rebuild the pool.  Consolidation swaps migrate pages between
    //    heap duty and shadow duty, so the free set is every page below
    //    the end of the reserved range that is neither page-table-mapped
    //    nor owned by a live slot.
    std::unordered_set<Ppn> used = owned;
    pt_.forEachEntry([&](Vpn, Ppn ppn) { used.insert(ppn); });
    std::vector<Ppn> free_list;
    const Ppn universe_end = params_.shadowPoolBase + params_.shadowPoolPages;
    for (Ppn ppn = 0; ppn < universe_end; ++ppn) {
        if (!used.contains(ppn))
            free_list.push_back(ppn);
    }
    pool_ = FreePagePool::fromList(params_.shadowPoolBase,
                                   params_.shadowPoolPages, free_list);

    // 5. Checkpoint immediately so the persistent cache reflects the
    //    recovered state and the journal restarts empty.
    //    (Recovery-time writes are not part of any measured run.)
    std::unordered_set<SlotId> live;
    for (SlotId sid : cache_.validSlots()) {
        const SspCacheEntry &e = cache_.entry(sid);
        PersistentSlot &p = cache_.persistentSlot(sid);
        p.valid = true;
        p.vpn = e.vpn;
        p.ppn0 = e.ppn0;
        p.ppn1 = e.ppn1;
        p.committed = e.committed;
        live.insert(sid);
    }
    for (SlotId sid = 0;
         sid < static_cast<SlotId>(cache_.persistentSlots().size());
         ++sid) {
        if (!live.contains(sid))
            cache_.persistentSlot(sid).valid = false;
    }
    journal_.truncate();
}

} // namespace ssp
