/**
 * @file
 * The metadata journal (paper section 3.3 / 4.1.2).
 *
 * A multi-page transaction updates several per-page committed bitmaps;
 * those updates must become durable atomically.  SSP journals each
 * intended SSP-cache update as a small record — a redo log *for metadata
 * only*.  A record carries the transaction ID (TID), the SSP-cache slot
 * being modified (SID), the new physical page numbers, and the new
 * committed bitmap; the paper quotes ~128 bits of journaled metadata per
 * modified page versus a full 64-byte line per modified *cache line* for
 * data journaling.
 *
 * Records accumulate in a small controller-side log buffer and are
 * written back to NVRAM at cache-line granularity when the buffer fills
 * or a commit forces a flush.  A transaction is durable exactly when its
 * commit marker is contained in a fully-persisted line.  Checkpointing
 * (section 4.1.2) applies persisted records to the persistent SSP cache
 * and truncates the journal.
 *
 * Crash model: everything up to persistedBytes() survives a power
 * failure; the rest of the buffer is lost.
 */

#ifndef SSP_NVRAM_JOURNAL_HH
#define SSP_NVRAM_JOURNAL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bitmap64.hh"
#include "common/types.hh"
#include "mem/memory_bus.hh"

namespace ssp
{

/** What a journal record describes. */
enum class JournalKind : std::uint8_t
{
    /** A transaction's intended update to one SSP cache slot. */
    Update,
    /** Transaction commit marker; makes the TID's updates durable. */
    Commit,
    /** A page-consolidation mapping change (self-committing). */
    Consolidate,
    /** A slot eviction: the page's SSP metadata left the cache and its
     *  shadow page returned to the pool (self-committing).  Without
     *  this record, recovery could resurrect a stale slot whose shadow
     *  page has since been handed to another page. */
    Free,
};

/** One metadata-journal record. */
struct JournalRecord
{
    JournalKind kind = JournalKind::Update;
    TxId tid = 0;
    SlotId sid = kInvalidSlot;
    Vpn vpn = 0;
    Ppn ppn0 = kInvalidPpn;
    Ppn ppn1 = kInvalidPpn;
    Bitmap64 committed;

    /** Serialized size in bytes (per-kind; commit markers are 8 bytes). */
    std::uint64_t sizeBytes() const;
};

/**
 * The journal: an append-only record stream with a persistence watermark.
 *
 * Functionally the records are kept structured (the simulator never needs
 * the raw encoding), but sizes and line-granular write-back behave
 * byte-accurately so the NVRAM write counts in Figure 6/7 are faithful.
 */
class MetadataJournal
{
  public:
    /**
     * @param bus Memory bus used to issue journal write-backs.
     * @param base_addr NVRAM byte address of the journal area.
     * @param capacity_bytes Size of the journal area.
     * @param checkpoint_threshold Persisted bytes that trigger a
     *        checkpoint request (bounds recovery time).
     */
    MetadataJournal(MemoryBus &bus, Addr base_addr,
                    std::uint64_t capacity_bytes,
                    std::uint64_t checkpoint_threshold);

    /** Append a record to the log buffer (volatile until flushed).
     *  Full log-buffer lines are streamed to NVRAM as they fill. */
    void append(const JournalRecord &rec, Cycles now);

    /**
     * Persist the buffer up to and including the last appended record.
     * @return Completion time of the last line write (commit stall).
     */
    Cycles flush(Cycles now);

    /** True when a checkpoint should run (journal grew past threshold). */
    bool needsCheckpoint() const;

    /**
     * Records that survive a crash right now: every record fully
     * contained in a persisted line, in append order.
     */
    std::vector<JournalRecord> persistedRecords() const;

    /** All records including unpersisted ones (for checkpointing). */
    const std::deque<JournalRecord> &allRecords() const { return records_; }

    /**
     * Truncate after a checkpoint: drop every record and reset the head
     * to the start of the journal area (the checkpoint already captured
     * their effects).
     */
    void truncate();

    /** Simulated power failure: unpersisted tail is lost. */
    void powerFail();

    std::uint64_t appendedBytes() const { return headBytes_; }
    std::uint64_t persistedBytes() const { return persistedBytes_; }
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t lineWrites() const { return lineWrites_; }

  private:
    /** Persist whole lines up to byte offset @p upto. */
    Cycles persistUpTo(std::uint64_t upto, Cycles now, bool force_partial);

    MemoryBus &bus_;
    Addr baseAddr_;
    std::uint64_t capacityBytes_;
    std::uint64_t checkpointThreshold_;

    std::deque<JournalRecord> records_;
    std::vector<std::uint64_t> recordEnds_; // byte offset after record i
    std::uint64_t headBytes_ = 0;           // append cursor
    std::uint64_t persistedBytes_ = 0;      // durable watermark
    /** Next line index not yet written to the NVRAM array: the tail
     *  line write-combines in the controller's persistent write queue
     *  (ADR domain), so each journal line hits the array exactly once. */
    std::uint64_t countedLines_ = 0;
    /** Completion time of background-streamed journal lines. */
    Cycles streamDoneAt_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t lineWrites_ = 0;
};

} // namespace ssp

#endif // SSP_NVRAM_JOURNAL_HH
