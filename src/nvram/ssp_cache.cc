#include "nvram/ssp_cache.hh"

#include "common/logging.hh"

namespace ssp
{

SspCache::SspCache(unsigned num_slots, const SspCacheLatencyParams &latency)
    : latency_(latency)
{
    ssp_assert(num_slots > 0);
    slots_.resize(num_slots);
    persistent_.resize(num_slots);
    freeSlots_.reserve(num_slots);
    for (unsigned i = 0; i < num_slots; ++i)
        freeSlots_.push_back(num_slots - 1 - i); // allocate low slots first
}

SlotId
SspCache::findSlot(Vpn vpn) const
{
    auto it = byVpn_.find(vpn);
    return it == byVpn_.end() ? kInvalidSlot : it->second;
}

SlotId
SspCache::allocateSlot(Vpn vpn, SspCacheEntry *evicted)
{
    ssp_assert(findSlot(vpn) == kInvalidSlot, "vpn already has a slot");
    if (freeSlots_.empty()) {
        // Evict a consolidated (committed bitmap zero), unreferenced,
        // quiescent entry — the paper's replacement rule.
        for (SlotId sid = 0; sid < slots_.size(); ++sid) {
            SspCacheEntry &e = slots_[sid];
            if (e.valid && e.committed.none() && e.tlbRefCount == 0 &&
                e.coreRefCount == 0 && !e.consolidating) {
                if (evicted != nullptr)
                    *evicted = e;
                byVpn_.erase(e.vpn);
                persistent_[sid].valid = false;
                e = SspCacheEntry{};
                freeSlots_.push_back(sid);
                auto hot = hotIndex_.find(sid);
                if (hot != hotIndex_.end()) {
                    hotLru_.erase(hot->second);
                    hotIndex_.erase(hot);
                }
                break;
            }
        }
    }
    if (freeSlots_.empty()) {
        // "If under rare conditions the cache entries we reserve are not
        // enough, we can resize the SSP cache" — grow by one slot.
        slots_.emplace_back();
        persistent_.emplace_back();
        freeSlots_.push_back(static_cast<SlotId>(slots_.size() - 1));
    }
    SlotId sid = freeSlots_.back();
    freeSlots_.pop_back();
    SspCacheEntry &e = slots_[sid];
    e = SspCacheEntry{};
    e.valid = true;
    e.vpn = vpn;
    byVpn_[vpn] = sid;
    return sid;
}

void
SspCache::freeSlot(SlotId sid)
{
    SspCacheEntry &e = entry(sid);
    ssp_assert(e.valid);
    ssp_assert(e.tlbRefCount == 0 && e.coreRefCount == 0,
               "freeing a referenced slot");
    byVpn_.erase(e.vpn);
    e = SspCacheEntry{};
    persistent_[sid].valid = false;
    auto it = hotIndex_.find(sid);
    if (it != hotIndex_.end()) {
        hotLru_.erase(it->second);
        hotIndex_.erase(it);
    }
    freeSlots_.push_back(sid);
}

SspCacheEntry &
SspCache::entry(SlotId sid)
{
    ssp_assert(sid < slots_.size(), "slot id %u out of range", sid);
    return slots_[sid];
}

const SspCacheEntry &
SspCache::entry(SlotId sid) const
{
    ssp_assert(sid < slots_.size(), "slot id %u out of range", sid);
    return slots_[sid];
}

void
SspCache::touchHot(SlotId sid)
{
    auto it = hotIndex_.find(sid);
    if (it != hotIndex_.end()) {
        hotLru_.erase(it->second);
    } else if (hotLru_.size() >= latency_.l3ResidentEntries) {
        SlotId cold = hotLru_.back();
        hotLru_.pop_back();
        hotIndex_.erase(cold);
    }
    hotLru_.push_front(sid);
    hotIndex_[sid] = hotLru_.begin();
}

Cycles
SspCache::access(SlotId sid, Cycles now)
{
    if (latency_.fixedLatency != 0) {
        touchHot(sid);
        return now + latency_.fixedLatency;
    }
    const bool hit = hotIndex_.contains(sid);
    touchHot(sid);
    if (hit) {
        ++hotHits_;
        return now + latency_.hitLatency;
    }
    ++hotMisses_;
    return now + latency_.missLatency;
}

std::uint64_t
SspCache::validEntries() const
{
    std::uint64_t n = 0;
    for (const auto &e : slots_)
        n += e.valid ? 1 : 0;
    return n;
}

std::vector<SlotId>
SspCache::validSlots() const
{
    std::vector<SlotId> out;
    for (SlotId sid = 0; sid < slots_.size(); ++sid) {
        if (slots_[sid].valid)
            out.push_back(sid);
    }
    return out;
}

PersistentSlot &
SspCache::persistentSlot(SlotId sid)
{
    ssp_assert(sid < persistent_.size());
    return persistent_[sid];
}

void
SspCache::powerFail()
{
    for (auto &e : slots_)
        e = SspCacheEntry{};
    byVpn_.clear();
    freeSlots_.clear();
    for (unsigned i = 0; i < slots_.size(); ++i)
        freeSlots_.push_back(static_cast<SlotId>(slots_.size() - 1 - i));
    hotLru_.clear();
    hotIndex_.clear();
}

void
SspCache::reloadFromPersistent(SlotId sid)
{
    const PersistentSlot &p = persistent_[sid];
    ssp_assert(p.valid, "reloading an invalid persistent slot");
    // The slot must currently be free.
    SspCacheEntry &e = slots_[sid];
    ssp_assert(!e.valid, "reload over a live transient entry");
    e.valid = true;
    e.vpn = p.vpn;
    e.ppn0 = p.ppn0;
    e.ppn1 = p.ppn1;
    e.committed = p.committed;
    e.current = p.committed; // section 4.4: current := committed
    e.tlbRefCount = 0;
    e.coreRefCount = 0;
    e.consolidating = false;
    byVpn_[p.vpn] = sid;
    std::erase(freeSlots_, sid);
}

} // namespace ssp
