/**
 * @file
 * The SSP cache: centralized per-page metadata storage in the memory
 * controller (paper section 4.1.2).
 *
 * An entry describes one actively-updated virtual page: the original and
 * second physical page numbers (PPN0/PPN1), the durable committed bitmap,
 * the volatile current bitmap, a TLB reference count (how many TLBs cache
 * the translation — the consolidation trigger) and a core reference count
 * (cores with in-flight transactional writes to the page — a
 * consolidation/eviction blocker, section 4.2).
 *
 * The cache is split (section 4.2, "SSP Cache Organization"):
 *  - the transient half (DRAM / a reserved L3 partition) serves requests;
 *  - the persistent half (NVRAM) holds only the durable fields and is
 *    written by checkpointing, read only during recovery.
 *
 * Access latency is modeled after the paper's method: a small L3
 * partition caches hot entries; a hit costs the L3 latency, a miss the
 * DRAM latency.  Figure 9's sweep replaces this with a fixed latency.
 */

#ifndef SSP_NVRAM_SSP_CACHE_HH
#define SSP_NVRAM_SSP_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/bitmap64.hh"
#include "common/types.hh"

namespace ssp
{

/** Volatile (transient) SSP cache entry. */
struct SspCacheEntry
{
    bool valid = false;
    Vpn vpn = 0;
    Ppn ppn0 = kInvalidPpn;
    Ppn ppn1 = kInvalidPpn;
    /** Durable state: which page (0=P0, 1=P1) holds each committed line. */
    Bitmap64 committed;
    /** Volatile: which page holds the *newest* version of each line. */
    Bitmap64 current;
    /** TLBs currently caching this translation. */
    std::uint32_t tlbRefCount = 0;
    /** Cores with un-committed transactional writes to this page. */
    std::uint32_t coreRefCount = 0;
    /** Entry is queued for / undergoing consolidation. */
    bool consolidating = false;
};

/** Durable image of a slot (what checkpoints write, recovery reads). */
struct PersistentSlot
{
    bool valid = false;
    Vpn vpn = 0;
    Ppn ppn0 = kInvalidPpn;
    Ppn ppn1 = kInvalidPpn;
    Bitmap64 committed;
};

/** Latency configuration for SSP-cache accesses. */
struct SspCacheLatencyParams
{
    /** Entries that fit in the reserved L3 partition (~1K in the paper). */
    unsigned l3ResidentEntries = 1024;
    /** Latency when the entry is L3-resident (Table 2 L3: 27 cycles). */
    Cycles hitLatency = 27;
    /** Latency when it must come from DRAM (paper: 185 cycles). */
    Cycles missLatency = 185;
    /** When non-zero, every access costs exactly this (Figure 9 sweep). */
    Cycles fixedLatency = 0;
};

/**
 * The SSP cache proper: slot storage, vpn index, LRU hot-set latency
 * model, and the persistent half.
 */
class SspCache
{
  public:
    /**
     * @param num_slots Capacity (paper: cores x TLB entries + overflow).
     * @param latency Latency model parameters.
     */
    SspCache(unsigned num_slots, const SspCacheLatencyParams &latency);

    /** Look up the slot for @p vpn; kInvalidSlot if absent. */
    SlotId findSlot(Vpn vpn) const;

    /**
     * Allocate a slot for @p vpn, evicting a consolidated, unreferenced
     * entry if the cache is full (growing as a last resort, as the paper
     * allows).  The entry is default-initialized; the caller fills it.
     *
     * @param evicted When non-null, receives the entry displaced to make
     *        room (so the controller can recycle its shadow page).
     */
    SlotId allocateSlot(Vpn vpn, SspCacheEntry *evicted = nullptr);

    /** Free a slot (after eviction of a consolidated page). */
    void freeSlot(SlotId sid);

    SspCacheEntry &entry(SlotId sid);
    const SspCacheEntry &entry(SlotId sid) const;

    /**
     * Timed access to a slot's metadata: models the L3-partition hot set.
     * @return completion time.
     */
    Cycles access(SlotId sid, Cycles now);

    unsigned numSlots() const
    {
        return static_cast<unsigned>(slots_.size());
    }
    std::uint64_t validEntries() const;
    std::uint64_t hotHits() const { return hotHits_; }
    std::uint64_t hotMisses() const { return hotMisses_; }

    /** Iterate valid slot ids (for recovery / invariant checks). */
    std::vector<SlotId> validSlots() const;

    // ---- persistent half ------------------------------------------------

    /** Durable image of slot @p sid (written by checkpointing). */
    PersistentSlot &persistentSlot(SlotId sid);
    const std::vector<PersistentSlot> &persistentSlots() const
    {
        return persistent_;
    }

    /** Simulated power failure: all transient entries disappear. */
    void powerFail();

    /** Recovery: reload a transient entry from its persistent image. */
    void reloadFromPersistent(SlotId sid);

  private:
    void touchHot(SlotId sid);

    SspCacheLatencyParams latency_;
    std::vector<SspCacheEntry> slots_;
    std::vector<PersistentSlot> persistent_;
    std::unordered_map<Vpn, SlotId> byVpn_;
    std::vector<SlotId> freeSlots_;

    // LRU hot set modeling the reserved L3 partition.
    std::list<SlotId> hotLru_;
    std::unordered_map<SlotId, std::list<SlotId>::iterator> hotIndex_;
    std::uint64_t hotHits_ = 0;
    std::uint64_t hotMisses_ = 0;
};

} // namespace ssp

#endif // SSP_NVRAM_SSP_CACHE_HH
