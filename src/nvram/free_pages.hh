/**
 * @file
 * Free-space management for the memory controller.
 *
 * At system initialization the OS reserves a contiguous range of NVRAM
 * physical pages and hands the base to the controller (paper section
 * 4.1.2, "Free Space Management").  The controller associates each SSP
 * cache slot with an extra physical page drawn from this pool; when a
 * consolidation swaps a page's roles, the slot's extra page is exchanged
 * for the retired original.  To mitigate uneven wear the pool supports
 * rotating a slot's page for a fresh one.
 */

#ifndef SSP_NVRAM_FREE_PAGES_HH
#define SSP_NVRAM_FREE_PAGES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ssp
{

/** Pool of reserved NVRAM physical pages. */
class FreePagePool
{
  public:
    /**
     * @param base_ppn First reserved physical page.
     * @param num_pages Number of reserved pages.
     */
    FreePagePool(Ppn base_ppn, std::uint64_t num_pages);

    /**
     * Recovery factory: a pool with capacity @p num_pages whose free
     * list is exactly @p free_list.  Consolidation swaps migrate pages
     * between heap duty and shadow duty, so after a crash the free set
     * is recomputed (all pages neither page-table-mapped nor owned by a
     * live SSP cache slot) rather than derived from the reserved range.
     */
    static FreePagePool fromList(Ppn base_ppn, std::uint64_t num_pages,
                                 const std::vector<Ppn> &free_list);

    /** Take one page from the pool. Fatal when exhausted. */
    Ppn allocate();

    /** Return a page to the pool. */
    void release(Ppn ppn);

    /**
     * Wear rotation: return @p ppn and take a different page, preferring
     * the least-recently-released one.
     */
    Ppn exchange(Ppn ppn);

    std::uint64_t available() const { return free_.size(); }
    std::uint64_t capacity() const { return capacity_; }

    /** True if @p ppn lies inside the reserved range. */
    bool
    inRange(Ppn ppn) const
    {
        return ppn >= basePpn_ && ppn < basePpn_ + capacity_;
    }

  private:
    Ppn basePpn_;
    std::uint64_t capacity_;
    std::vector<Ppn> free_; // FIFO via index rotation
    std::uint64_t head_ = 0;
};

} // namespace ssp

#endif // SSP_NVRAM_FREE_PAGES_HH
