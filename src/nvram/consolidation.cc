#include "nvram/consolidation.hh"

#include "common/logging.hh"

namespace ssp
{

Consolidator::Consolidator(SspCache &cache, MetadataJournal &journal,
                           PageTable &pt, MemoryBus &bus, FreePagePool &pool,
                           unsigned sub_page_lines)
    : cache_(cache), journal_(journal), pt_(pt), bus_(bus), pool_(pool),
      subPageLines_(sub_page_lines)
{
}

ConsolidationResult
Consolidator::consolidate(SlotId sid, Cycles now)
{
    SspCacheEntry &e = cache_.entry(sid);
    ssp_assert(e.valid, "consolidating an invalid slot");
    ssp_assert(e.tlbRefCount == 0, "consolidating a TLB-referenced page");
    ssp_assert(e.coreRefCount == 0, "consolidating a page with an "
                                    "in-flight transaction");
    // Quiescent pages must have current == committed: every transaction
    // that flipped current bits either committed (committed caught up) or
    // aborted (current flipped back).
    ssp_assert(e.current == e.committed,
               "inactive page has divergent current/committed bitmaps");

    ConsolidationResult res;
    res.sid = sid;
    e.consolidating = true;

    PhysMem &mem = bus_.mem();
    const unsigned num_bits =
        static_cast<unsigned>(kLinesPerPage / subPageLines_);
    const unsigned in_p1 = e.committed.popcount();
    Cycles done = now;

    if (in_p1 == 0) {
        // Everything already lives in P0 — pure metadata refresh, no
        // copies and nothing to journal (durable state is unchanged).
        e.consolidating = false;
        res.doneAt = now;
        ++consolidations_;
        copiedLines_.sample(0);
        return res;
    }

    const bool keep_p1 = in_p1 > num_bits / 2;
    if (!keep_p1) {
        // Minority lives in P1: copy those sub-pages into P0.
        for (unsigned bit = 0; bit < num_bits; ++bit) {
            if (!e.committed.test(bit))
                continue;
            for (unsigned g = bit * subPageLines_;
                 g < (bit + 1) * subPageLines_; ++g) {
                mem.copyLine(lineAddr(e.ppn0, g), lineAddr(e.ppn1, g));
                Cycles t = bus_.issueWrite(lineAddr(e.ppn0, g),
                                           WriteCategory::Consolidation,
                                           now, true);
                done = std::max(done, t);
                ++res.linesCopied;
            }
        }
    } else {
        // Minority lives in P0: copy those sub-pages into P1, then swap
        // the page roles so the consolidated page becomes the new P0.
        for (unsigned bit = 0; bit < num_bits; ++bit) {
            if (e.committed.test(bit))
                continue;
            for (unsigned g = bit * subPageLines_;
                 g < (bit + 1) * subPageLines_; ++g) {
                mem.copyLine(lineAddr(e.ppn1, g), lineAddr(e.ppn0, g));
                Cycles t = bus_.issueWrite(lineAddr(e.ppn1, g),
                                           WriteCategory::Consolidation,
                                           now, true);
                done = std::max(done, t);
                ++res.linesCopied;
            }
        }
        std::swap(e.ppn0, e.ppn1);
        res.swapped = true;
    }

    // Durable switch: journal the new mapping + cleared committed
    // bitmap.  The record may persist lazily: until it does, recovery
    // simply sees the old state, which the copies above left fully
    // intact (they only overwrote non-committed lines).  The controller
    // forces a flush before the freed shadow page can be reused.
    e.committed = Bitmap64{};
    e.current = Bitmap64{};
    JournalRecord rec;
    rec.kind = JournalKind::Consolidate;
    rec.tid = 0;
    rec.sid = sid;
    rec.vpn = e.vpn;
    rec.ppn0 = e.ppn0;
    rec.ppn1 = e.ppn1;
    rec.committed = e.committed;
    journal_.append(rec, done);

    // OS page-table update (reads after this walk straight to P0).
    pt_.map(e.vpn, e.ppn0);

    e.consolidating = false;
    res.doneAt = done;
    ++consolidations_;
    copiedLines_.sample(res.linesCopied);
    return res;
}

} // namespace ssp
