#include "nvram/free_pages.hh"

#include "common/logging.hh"

namespace ssp
{

FreePagePool::FreePagePool(Ppn base_ppn, std::uint64_t num_pages)
    : basePpn_(base_ppn), capacity_(num_pages)
{
    ssp_assert(num_pages > 0);
    free_.reserve(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i)
        free_.push_back(base_ppn + i);
}

FreePagePool
FreePagePool::fromList(Ppn base_ppn, std::uint64_t num_pages,
                       const std::vector<Ppn> &free_list)
{
    FreePagePool pool(base_ppn, num_pages);
    pool.free_ = free_list;
    return pool;
}

Ppn
FreePagePool::allocate()
{
    if (free_.empty()) {
        ssp_fatal("free page pool exhausted (capacity %llu); "
                  "increase SspConfig::shadowPoolPages",
                  static_cast<unsigned long long>(capacity_));
    }
    Ppn ppn = free_.back();
    free_.pop_back();
    return ppn;
}

void
FreePagePool::release(Ppn ppn)
{
    free_.push_back(ppn);
}

Ppn
FreePagePool::exchange(Ppn ppn)
{
    if (free_.empty())
        return ppn; // nothing to rotate with
    // Take from the front (least recently released) for wear leveling.
    head_ %= free_.size();
    Ppn fresh = free_[head_];
    free_[head_] = ppn;
    ++head_;
    return fresh;
}

} // namespace ssp
