#include "nvram/journal.hh"

#include "common/logging.hh"

namespace ssp
{

std::uint64_t
JournalRecord::sizeBytes() const
{
    switch (kind) {
      case JournalKind::Commit:
        // TID + kind tag, padded to 8 bytes.
        return 8;
      case JournalKind::Update:
      case JournalKind::Consolidate:
      case JournalKind::Free:
        // kind+SID (8) + TID (8) + VPN/PPN0/PPN1 packed (16) +
        // committed bitmap (8) = 40 bytes.
        return 40;
    }
    return 40;
}

MetadataJournal::MetadataJournal(MemoryBus &bus, Addr base_addr,
                                 std::uint64_t capacity_bytes,
                                 std::uint64_t checkpoint_threshold)
    : bus_(bus), baseAddr_(base_addr), capacityBytes_(capacity_bytes),
      checkpointThreshold_(checkpoint_threshold)
{
    ssp_assert(capacity_bytes >= 4 * kLineSize);
    ssp_assert(checkpoint_threshold <= capacity_bytes,
               "checkpoint threshold beyond journal capacity");
    ssp_assert(lineOffset(base_addr) == 0);
}

void
MetadataJournal::append(const JournalRecord &rec, Cycles now)
{
    if (headBytes_ + rec.sizeBytes() > capacityBytes_) {
        // The checkpointing thread normally keeps us far from the end;
        // running out means the threshold is mis-configured.
        ssp_fatal("metadata journal overflow (%llu bytes); lower the "
                  "checkpoint threshold",
                  static_cast<unsigned long long>(headBytes_));
    }
    records_.push_back(rec);
    headBytes_ += rec.sizeBytes();
    recordEnds_.push_back(headBytes_);

    // Stream out lines that are now full; nobody stalls on these.
    const std::uint64_t full_lines = headBytes_ / kLineSize * kLineSize;
    if (full_lines > persistedBytes_)
        persistUpTo(full_lines, now, false);
}

Cycles
MetadataJournal::persistUpTo(std::uint64_t upto, Cycles now,
                             bool force_partial)
{
    // Array writes happen once per journal line: the tail line combines
    // in the controller's write buffer until it fills.  Lines completed
    // during appends stream out in the background; only a forced flush
    // (a commit's durability point) is a foreground write the core
    // stalls on — and it must also cover any still-streaming lines.
    const std::uint64_t last_line =
        force_partial ? (upto + kLineSize - 1) / kLineSize
                      : upto / kLineSize;
    Cycles done = now;
    bool wrote = false;
    for (std::uint64_t line = countedLines_; line < last_line; ++line) {
        Cycles t = bus_.issueWrite(baseAddr_ + line * kLineSize,
                                   WriteCategory::MetaJournal, now,
                                   !force_partial);
        ++lineWrites_;
        done = std::max(done, t);
        wrote = true;
    }
    countedLines_ = std::max(countedLines_, last_line);
    persistedBytes_ =
        std::max(persistedBytes_, force_partial
                                      ? upto
                                      : (upto / kLineSize) * kLineSize);
    if (force_partial) {
        // A durability flush waits for in-flight streamed lines too.
        done = std::max(done, streamDoneAt_);
        if (!wrote)
            done = std::max(done, now + 30);
    } else {
        streamDoneAt_ = std::max(streamDoneAt_, done);
        done = now; // streaming: nobody stalls now
    }
    return done;
}

Cycles
MetadataJournal::flush(Cycles now)
{
    ++flushes_;
    if (persistedBytes_ >= headBytes_)
        return now;
    return persistUpTo(headBytes_, now, true);
}

bool
MetadataJournal::needsCheckpoint() const
{
    return headBytes_ >= checkpointThreshold_;
}

std::vector<JournalRecord>
MetadataJournal::persistedRecords() const
{
    std::vector<JournalRecord> out;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (recordEnds_[i] <= persistedBytes_)
            out.push_back(records_[i]);
    }
    return out;
}

void
MetadataJournal::truncate()
{
    records_.clear();
    recordEnds_.clear();
    headBytes_ = 0;
    persistedBytes_ = 0;
    countedLines_ = 0;
    streamDoneAt_ = 0;
}

void
MetadataJournal::powerFail()
{
    // Drop records that never became durable.
    while (!records_.empty() && recordEnds_.back() > persistedBytes_) {
        records_.pop_back();
        recordEnds_.pop_back();
    }
    headBytes_ = records_.empty() ? 0 : recordEnds_.back();
    // NOTE: persistedBytes_ stays — it is the durable watermark.
}

} // namespace ssp
