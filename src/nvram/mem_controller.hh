/**
 * @file
 * The SSP-extended memory controller (paper section 4.1.2).
 *
 * The controller provides centralized storage for SSP metadata (the SSP
 * cache), performs metadata journaling and checkpointing, manages the
 * reserved page pool, and triggers page consolidation when a page's TLB
 * reference count drops to zero.  Cores interact with it through three
 * operations: fetching a page's metadata on a TLB miss, broadcasting
 * flip-current-bit on first transactional writes, and issuing metadata
 * update instructions at commit.
 */

#ifndef SSP_NVRAM_MEM_CONTROLLER_HH
#define SSP_NVRAM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/memory_bus.hh"
#include "nvram/consolidation.hh"
#include "nvram/free_pages.hh"
#include "nvram/journal.hh"
#include "nvram/ssp_cache.hh"
#include "vm/page_table.hh"

namespace ssp
{

/** Configuration of the controller. */
struct MemControllerParams
{
    /** SSP cache slots (cores x TLB entries + overprovisioning). */
    unsigned sspCacheSlots = 4 * 64 + 64;
    /** First physical page of the reserved shadow-page pool. */
    Ppn shadowPoolBase = 0;
    /** Number of reserved shadow pages. */
    std::uint64_t shadowPoolPages = 1024;
    /** NVRAM byte address of the metadata journal. */
    Addr journalBase = 0;
    /** Journal area size in bytes. */
    std::uint64_t journalBytes = 1 << 20;
    /**
     * NVRAM area holding the persistent SSP-cache slot lines that
     * checkpoints write.  Must not overlap the journal proper, or
     * checkpoint traffic would alias journal-append lines on the
     * bank/channel layout.  persistentCacheBytes == 0 falls back to
     * overlaying the journal area (direct-constructed unit tests).
     */
    Addr persistentCacheBase = 0;
    std::uint64_t persistentCacheBytes = 0;
    /** Checkpoint when the journal holds this many bytes. */
    std::uint64_t checkpointThresholdBytes = 256 * 1024;
    /** Latency model of the SSP cache. */
    SspCacheLatencyParams latency;
    /** Lines per tracking bit (section 4.3 sub-pages). */
    unsigned subPageLines = 1;
    /** Defer consolidation until the pool runs low (future-work policy;
     *  the paper's implementation is eager). */
    bool lazyConsolidation = false;
    /** Lazy policy: drain when the pool has fewer free pages. */
    std::uint64_t lazyLowWatermark = 64;
    /** Wear leveling: rotate a slot's shadow page every N
     *  consolidations; 0 disables. */
    std::uint64_t wearRotatePeriod = 0;
};

/** Result of a metadata fetch on a TLB miss. */
struct MetadataFetchResult
{
    SlotId sid = kInvalidSlot;
    Ppn ppn0 = kInvalidPpn;
    Ppn ppn1 = kInvalidPpn;
    Cycles doneAt = 0;
};

/** The memory controller. */
class MemController
{
  public:
    MemController(const MemControllerParams &params, MemoryBus &bus,
                  PageTable &pt);

    /**
     * TLB-fill path: after the page walk produced @p ppn0, fetch (or
     * create) the SSP metadata for @p vpn and take a TLB reference.
     * A page mid-consolidation delays the response until the copy
     * completes (section 4.1.2).
     */
    MetadataFetchResult fetchEntry(Vpn vpn, Ppn ppn0, Cycles now);

    /** A TLB evicted the translation: drop the reference; on zero, the
     *  page is inactive and is consolidated eagerly. */
    void tlbDeref(SlotId sid, Cycles now);

    /** First transactional write to a page by a core in this tx. */
    void coreRef(SlotId sid);

    /** The page's metadata update (or abort) arrived from that core. */
    void coreDeref(SlotId sid);

    /** flip-current-bit for one line of a page. */
    void flipCurrent(SlotId sid, unsigned line_idx);

    /**
     * Metadata update instruction (commit step 2): journal and apply
     * committed ^= updated for one page.
     * @return completion time (journal append is buffered; the cost here
     *         is the SSP-cache access).
     */
    Cycles metadataUpdate(TxId tid, SlotId sid, Bitmap64 updated,
                          Cycles now);

    /**
     * Append the commit marker and force the journal to NVRAM; the
     * transaction is durable when this returns.  May trigger a
     * checkpoint afterwards (off the critical path).
     */
    Cycles commitTx(TxId tid, Cycles now);

    /** Allocate a fresh transaction ID. */
    TxId beginTx() { return nextTid_++; }

    /** Timed read of a slot's metadata (SSP-cache latency model). */
    Cycles accessSlot(SlotId sid, Cycles now);

    /**
     * Checkpoint now: capture the final durable state of every slot the
     * journal touched into the persistent SSP cache, then truncate.
     */
    void checkpoint(Cycles now);

    /** Simulated power failure (volatile halves vanish). */
    void powerFail();

    /**
     * Recovery (paper section 4.4): rebuild the transient SSP cache from
     * the persistent cache, replay the journal skipping uncommitted
     * transactions, reset current := committed, fix the page table and
     * rebuild the free pool.
     */
    void recover();

    SspCache &cache() { return cache_; }
    MetadataJournal &journal() { return journal_; }
    Consolidator &consolidator() { return consolidator_; }
    FreePagePool &pool() { return pool_; }

    std::uint64_t checkpoints() const { return checkpoints_; }
    std::uint64_t metadataUpdates() const { return metadataUpdates_; }
    /** Lazy policy: consolidations canceled because the page became
     *  active again before the background thread reached it. */
    std::uint64_t canceledConsolidations() const
    {
        return canceledConsolidations_;
    }
    /** Pages currently awaiting lazy consolidation. */
    std::size_t pendingConsolidations() const { return pending_.size(); }
    /** Shadow pages rotated for wear leveling. */
    std::uint64_t wearRotations() const { return wearRotations_; }

  private:
    /** Consolidate an inactive slot, or queue it (lazy policy). */
    void maybeConsolidate(SlotId sid, Cycles now);

    /** Run one consolidation now, with wear rotation when due. */
    void consolidateNow(SlotId sid, Cycles now);

    /** Lazy policy: drain pending consolidations while the pool is low
     *  (or fully, when @p all is set). */
    void drainPending(Cycles now, bool all);

    /** Move quarantined pages whose Free records are durable into the
     *  pool; force a journal flush only when the pool is empty. */
    void reclaimQuarantine(Cycles now);

    MemControllerParams params_;
    MemoryBus &bus_;
    PageTable &pt_;
    SspCache cache_;
    MetadataJournal journal_;
    FreePagePool pool_;
    Consolidator consolidator_;
    TxId nextTid_ = 1;
    std::uint64_t checkpoints_ = 0;
    std::uint64_t metadataUpdates_ = 0;
    std::uint64_t canceledConsolidations_ = 0;
    std::uint64_t wearRotations_ = 0;
    /**
     * Shadow pages released by slot evictions, quarantined until the
     * journal watermark covers their Free record (so recovery can never
     * resurrect a stale owner after the page holds new data).  Pairs of
     * (page, journal byte offset that must be durable).
     */
    std::deque<std::pair<Ppn, std::uint64_t>> quarantine_;

    /** Lazy-consolidation FIFO of inactive slots. */
    std::deque<SlotId> pending_;
    /** Slots currently queued (for O(1) membership/cancellation). */
    std::unordered_set<SlotId> pendingSet_;
    /** Per-slot completion time of an in-flight consolidation. */
    std::vector<Cycles> consolidateDoneAt_;
};

} // namespace ssp

#endif // SSP_NVRAM_MEM_CONTROLLER_HH
