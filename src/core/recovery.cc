#include "core/recovery.hh"

#include <sstream>
#include <unordered_set>

#include "core/ssp_system.hh"

namespace ssp
{

namespace
{

void
violate(RecoveryReport &report, const std::string &msg)
{
    report.ok = false;
    report.violations.push_back(msg);
}

} // namespace

RecoveryReport
verifyRecoveredState(SspSystem &sys)
{
    RecoveryReport report;
    MemController &mc = sys.controller();
    SspCache &cache = mc.cache();

    std::unordered_set<Ppn> owned;
    std::uint64_t valid_slots = 0;
    for (SlotId sid : cache.validSlots()) {
        ++valid_slots;
        const SspCacheEntry &e = cache.entry(sid);
        std::ostringstream tag;
        tag << "slot " << sid << " (vpn " << std::hex << e.vpn << std::dec
            << "): ";

        if (!(e.current == e.committed))
            violate(report, tag.str() + "current != committed");
        if (e.tlbRefCount != 0)
            violate(report, tag.str() + "non-zero TLB refcount");
        if (e.coreRefCount != 0)
            violate(report, tag.str() + "non-zero core refcount");
        if (e.consolidating)
            violate(report, tag.str() + "marked consolidating");
        if (e.ppn0 == kInvalidPpn || e.ppn1 == kInvalidPpn)
            violate(report, tag.str() + "invalid physical page number");

        if (!sys.machine().pt().isMapped(e.vpn)) {
            violate(report, tag.str() + "vpn not in page table");
        } else if (sys.machine().pt().translate(e.vpn) != e.ppn0) {
            violate(report, tag.str() + "page table does not map to ppn0");
        }

        for (Ppn p : {e.ppn0, e.ppn1}) {
            if (!owned.insert(p).second)
                violate(report, tag.str() + "physical page owned twice");
        }
    }

    if (mc.journal().appendedBytes() != 0)
        violate(report, "journal not truncated after recovery");

    // Every valid slot owns exactly one shadow-duty page (its PPN1), so
    // free pool + valid slots must equal the reserved pool size.
    const std::uint64_t pool_pages = mc.pool().available();
    if (pool_pages + valid_slots != mc.pool().capacity()) {
        std::ostringstream os;
        os << "shadow page accounting mismatch: " << pool_pages
           << " free + " << valid_slots << " slot-owned != "
           << mc.pool().capacity() << " reserved";
        violate(report, os.str());
    }

    return report;
}

} // namespace ssp
