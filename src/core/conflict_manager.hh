/**
 * @file
 * Commit-time conflict detection for overlapping transactions.
 *
 * The driver interleaves cores in bulk-synchronous rounds: every core's
 * transaction of a round begins at the round barrier, so in simulated
 * time the transactions overlap even though the simulator executes them
 * one after another.  The ConflictManager supplies the concurrency
 * semantics for that overlap: each in-flight transaction records its
 * read and write sets at cache-line granularity (virtual line
 * addresses, stable across SSP's CoW flips and the baselines' shadow
 * mappings — the same lines the hierarchy tags with the TX bit), and a
 * transaction validates at commit against every peer commit whose
 * completion time falls inside its own [begin, commit] window.
 *
 * The default policy is first-committer-wins: the earlier commit (in
 * simulated time; simulation order breaks ties) stands, and the
 * validating transaction aborts on any read-write or write-write
 * overlap, rolls back through its backend's abort machinery, and
 * re-executes after an exponential backoff.  The lazy-validation mode
 * only validates the read set — write-write overlaps are resolved by
 * commit order, as in lazy-versioning HTM designs where buffered
 * writes are published atomically at commit.
 *
 * Every retry begins after the abort point, so a given logged commit
 * can conflict with a transaction at most once: the retry count per
 * operation is bounded by the number of overlapping peer commits, and
 * the simulation cannot livelock.  With one core (or detection
 * disabled) every call is a no-op, keeping single-core timing
 * bit-identical to the serialized model.
 */

#ifndef SSP_CORE_CONFLICT_MANAGER_HH
#define SSP_CORE_CONFLICT_MANAGER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/line_set.hh"

namespace ssp
{

/** When a transaction checks for conflicts (see file comment). */
enum class ConflictValidation
{
    FirstCommitterWins, ///< validate read + write sets at commit
    Lazy,               ///< validate the read set only
};

/** Conflict-handling knobs (part of SspConfig). */
struct ConflictParams
{
    /** Detect conflicts at all; single-core machines never do. */
    bool enabled = true;
    ConflictValidation validation = ConflictValidation::FirstCommitterWins;
    /** Abort cost: pipeline flush + rollback handler dispatch. */
    Cycles abortPenalty = 40;
    /** First-retry backoff; doubles per consecutive abort. */
    Cycles backoffBase = 64;
    /** Cap on the backoff doublings (base << cap is the ceiling). */
    unsigned backoffCapDoublings = 6;
};

/** Aggregate conflict accounting for one machine. */
struct ConflictStats
{
    std::uint64_t aborts = 0;  ///< commit validations that failed
    std::uint64_t retries = 0; ///< re-executions (== aborts today)
    std::uint64_t writeWriteConflicts = 0;
    std::uint64_t readWriteConflicts = 0;
    Cycles backoffCycles = 0; ///< total backoff charged to core clocks
};

/** Per-machine conflict detector (one per Machine, all backends). */
class ConflictManager
{
  public:
    ConflictManager(unsigned num_cores, const ConflictParams &params);

    /** True when conflicts are both requested and possible (> 1 core). */
    bool enabled() const { return enabled_; }

    /** A transaction opened on @p core at simulated time @p now. */
    void beginTx(CoreId core, Cycles now);

    /** Record a transactional load of the line containing @p vaddr. */
    void recordRead(CoreId core, Addr vaddr);

    /** Record a transactional store to the line containing @p vaddr. */
    void recordWrite(CoreId core, Addr vaddr);

    /**
     * Commit-time validation at simulated time @p now: false when a
     * peer commit inside this transaction's window conflicts under the
     * configured mode — the caller must abort, charge retryPenalty()
     * and re-execute.  On success the transaction's commit point is
     * fixed at @p now — the moment it wins first-committer arbitration
     * and becomes irrevocable — so its published record is stamped
     * here, not at the (possibly much later) durability ack: a design
     * with a long commit flush must not hide its conflicts behind it.
     */
    bool validate(CoreId core, Cycles now);

    /**
     * Publish @p core's write set to the commit log and close the
     * transaction.  The record is stamped at the commit point fixed by
     * the last successful validate(); transactions committed without
     * one (the single-core model, direct backend drivers) are stamped
     * at @p now, the ack time.  @p min_core_clock (the minimum clock
     * over all cores) prunes log entries no future window can reach.
     */
    void commitTx(CoreId core, Cycles now, Cycles min_core_clock);

    /** Drop @p core's in-flight sets (abort path; idempotent). */
    void abortTx(CoreId core);

    /**
     * Account one abort + re-execution and return the cycles to charge
     * the core: abort penalty plus exponential backoff for the
     * @p attempt-th consecutive failure (1-based).
     */
    Cycles retryPenalty(CoreId core, unsigned attempt);

    /** Power failure: in-flight volatile state disappears. */
    void reset();

    const ConflictStats &stats() const { return stats_; }
    const ConflictParams &params() const { return params_; }

    /**
     * @{ 2PC prepare introspection (src/shard/): a transaction whose
     * last validate() succeeded is *prepared* — its commit point is
     * fixed at preparedAt() and commitTx will stamp the published
     * record there.  The shard coordinator reads these to anchor the
     * prepare-vote timestamp; with conflict detection disabled (one
     * core) validate() never fixes a point and prepared() stays false.
     */
    bool prepared(CoreId core) const { return tx_[core].validated; }
    Cycles preparedAt(CoreId core) const { return tx_[core].validatedAt; }
    /** @} */

    /** Introspection (tests): in-flight set sizes and log depth. */
    bool inTx(CoreId core) const { return tx_[core].active; }
    std::size_t readSetSize(CoreId core) const
    {
        return tx_[core].reads.size();
    }
    std::size_t writeSetSize(CoreId core) const
    {
        return tx_[core].writes.size();
    }
    std::size_t logSize() const { return log_.size(); }

  private:
    /** One in-flight transaction's footprint. */
    struct TxState
    {
        bool active = false;
        Cycles beginCycle = 0;
        /** Commit point fixed by the last successful validate(). */
        bool validated = false;
        Cycles validatedAt = 0;
        /** Line-aligned vaddrs; LineSet keeps the hot record/validate
         *  path allocation- and hash-free for Table 3-sized sets. */
        LineSet reads;
        LineSet writes;
    };

    /** One committed transaction's published write set. */
    struct CommitRecord
    {
        CoreId core = 0;
        Cycles commitCycle = 0;
        LineSet writes;
    };

    /**
     * One published write of one line, entered into the per-line
     * posting index at commit.  `seq` is the record's global position
     * in commit-log order: validation must report the *earliest*
     * logged record that conflicts (and classify write-write before
     * read-write within it), exactly as the record-by-record scan it
     * replaces did.
     */
    struct Posting
    {
        Cycles commitCycle = 0;
        std::uint64_t seq = 0;
        CoreId core = 0;
    };

    ConflictParams params_;
    bool enabled_;
    std::vector<TxState> tx_;
    std::deque<CommitRecord> log_;
    /**
     * Inverted index over log_: line address -> postings of every
     * published write of that line, sorted by commit point so a
     * validation window is a binary-searched range.  validate looks up
     * only the validating transaction's own footprint instead of
     * scanning every record's write set — with bulk-synchronous rounds
     * the log holds O(cores x sections-per-op) records, so the scan
     * was the quadratic term that dominated 64-core cells.
     *
     * Postings of pruned records linger until the index resets: they
     * are harmless because any future validation window starts at or
     * above the prune floor, so the window test rejects them — the
     * exact filter the record scan applied.  The index resets whenever
     * the log drains, which the round barrier guarantees once per
     * round.
     */
    std::unordered_map<Addr, std::vector<Posting>> postings_;
    /**
     * 4096-bit Bloom filter over postings_'s keys (one bit per line,
     * set on publish, zeroed when the index resets).  Validation
     * probes the footprint lines here first: a clear bit proves the
     * line has no postings, so the common cold line costs one bit test
     * instead of a hash lookup.  False positives just fall through to
     * the map; the result is exact either way.
     */
    std::array<std::uint64_t, 64> postingBloom_{};
    /** Log-order sequence number of the next published record. */
    std::uint64_t nextSeq_ = 0;
    ConflictStats stats_;

    /** Bloom bit position for @p line (splitmix-style spread). */
    static std::pair<unsigned, std::uint64_t>
    bloomBit(Addr line)
    {
        std::uint64_t h = line * 0x9e3779b97f4a7c15ull;
        h >>= 52; // top 12 bits index 4096 positions
        return {static_cast<unsigned>(h >> 6),
                std::uint64_t{1} << (h & 63)};
    }
};

} // namespace ssp

#endif // SSP_CORE_CONFLICT_MANAGER_HH
