/**
 * @file
 * Commit-time conflict detection for overlapping transactions.
 *
 * The driver interleaves cores in bulk-synchronous rounds: every core's
 * transaction of a round begins at the round barrier, so in simulated
 * time the transactions overlap even though the simulator executes them
 * one after another.  The ConflictManager supplies the concurrency
 * semantics for that overlap: each in-flight transaction records its
 * read and write sets at cache-line granularity (virtual line
 * addresses, stable across SSP's CoW flips and the baselines' shadow
 * mappings — the same lines the hierarchy tags with the TX bit), and a
 * transaction validates at commit against every peer commit whose
 * completion time falls inside its own [begin, commit] window.
 *
 * The default policy is first-committer-wins: the earlier commit (in
 * simulated time; simulation order breaks ties) stands, and the
 * validating transaction aborts on any read-write or write-write
 * overlap, rolls back through its backend's abort machinery, and
 * re-executes after an exponential backoff.  The lazy-validation mode
 * only validates the read set — write-write overlaps are resolved by
 * commit order, as in lazy-versioning HTM designs where buffered
 * writes are published atomically at commit.
 *
 * Every retry begins after the abort point, so a given logged commit
 * can conflict with a transaction at most once: the retry count per
 * operation is bounded by the number of overlapping peer commits, and
 * the simulation cannot livelock.  With one core (or detection
 * disabled) every call is a no-op, keeping single-core timing
 * bit-identical to the serialized model.
 */

#ifndef SSP_CORE_CONFLICT_MANAGER_HH
#define SSP_CORE_CONFLICT_MANAGER_HH

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace ssp
{

/** When a transaction checks for conflicts (see file comment). */
enum class ConflictValidation
{
    FirstCommitterWins, ///< validate read + write sets at commit
    Lazy,               ///< validate the read set only
};

/** Conflict-handling knobs (part of SspConfig). */
struct ConflictParams
{
    /** Detect conflicts at all; single-core machines never do. */
    bool enabled = true;
    ConflictValidation validation = ConflictValidation::FirstCommitterWins;
    /** Abort cost: pipeline flush + rollback handler dispatch. */
    Cycles abortPenalty = 40;
    /** First-retry backoff; doubles per consecutive abort. */
    Cycles backoffBase = 64;
    /** Cap on the backoff doublings (base << cap is the ceiling). */
    unsigned backoffCapDoublings = 6;
};

/** Aggregate conflict accounting for one machine. */
struct ConflictStats
{
    std::uint64_t aborts = 0;  ///< commit validations that failed
    std::uint64_t retries = 0; ///< re-executions (== aborts today)
    std::uint64_t writeWriteConflicts = 0;
    std::uint64_t readWriteConflicts = 0;
    Cycles backoffCycles = 0; ///< total backoff charged to core clocks
};

/** Per-machine conflict detector (one per Machine, all backends). */
class ConflictManager
{
  public:
    ConflictManager(unsigned num_cores, const ConflictParams &params);

    /** True when conflicts are both requested and possible (> 1 core). */
    bool enabled() const { return enabled_; }

    /** A transaction opened on @p core at simulated time @p now. */
    void beginTx(CoreId core, Cycles now);

    /** Record a transactional load of the line containing @p vaddr. */
    void recordRead(CoreId core, Addr vaddr);

    /** Record a transactional store to the line containing @p vaddr. */
    void recordWrite(CoreId core, Addr vaddr);

    /**
     * Commit-time validation at simulated time @p now: false when a
     * peer commit inside this transaction's window conflicts under the
     * configured mode — the caller must abort, charge retryPenalty()
     * and re-execute.  On success the transaction's commit point is
     * fixed at @p now — the moment it wins first-committer arbitration
     * and becomes irrevocable — so its published record is stamped
     * here, not at the (possibly much later) durability ack: a design
     * with a long commit flush must not hide its conflicts behind it.
     */
    bool validate(CoreId core, Cycles now);

    /**
     * Publish @p core's write set to the commit log and close the
     * transaction.  The record is stamped at the commit point fixed by
     * the last successful validate(); transactions committed without
     * one (the single-core model, direct backend drivers) are stamped
     * at @p now, the ack time.  @p min_core_clock (the minimum clock
     * over all cores) prunes log entries no future window can reach.
     */
    void commitTx(CoreId core, Cycles now, Cycles min_core_clock);

    /** Drop @p core's in-flight sets (abort path; idempotent). */
    void abortTx(CoreId core);

    /**
     * Account one abort + re-execution and return the cycles to charge
     * the core: abort penalty plus exponential backoff for the
     * @p attempt-th consecutive failure (1-based).
     */
    Cycles retryPenalty(CoreId core, unsigned attempt);

    /** Power failure: in-flight volatile state disappears. */
    void reset();

    const ConflictStats &stats() const { return stats_; }
    const ConflictParams &params() const { return params_; }

    /** Introspection (tests): in-flight set sizes and log depth. */
    bool inTx(CoreId core) const { return tx_[core].active; }
    std::size_t readSetSize(CoreId core) const
    {
        return tx_[core].reads.size();
    }
    std::size_t writeSetSize(CoreId core) const
    {
        return tx_[core].writes.size();
    }
    std::size_t logSize() const { return log_.size(); }

  private:
    /** One in-flight transaction's footprint. */
    struct TxState
    {
        bool active = false;
        Cycles beginCycle = 0;
        /** Commit point fixed by the last successful validate(). */
        bool validated = false;
        Cycles validatedAt = 0;
        std::unordered_set<Addr> reads;  ///< line-aligned vaddrs
        std::unordered_set<Addr> writes; ///< line-aligned vaddrs
    };

    /** One committed transaction's published write set. */
    struct CommitRecord
    {
        CoreId core = 0;
        Cycles commitCycle = 0;
        std::unordered_set<Addr> writes;
    };

    ConflictParams params_;
    bool enabled_;
    std::vector<TxState> tx_;
    std::deque<CommitRecord> log_;
    ConflictStats stats_;
};

} // namespace ssp

#endif // SSP_CORE_CONFLICT_MANAGER_HH
