/**
 * @file
 * SspSystem: the public entry point of the library.
 *
 * Owns the machine, the memory controller and one SSP engine per core,
 * and implements the AtomicityBackend interface used by workloads,
 * tests and benches.  This is the paper's full design: shadow sub-paging
 * with metadata journaling and page consolidation.
 */

#ifndef SSP_CORE_SSP_SYSTEM_HH
#define SSP_CORE_SSP_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/backend.hh"
#include "core/config.hh"
#include "core/machine.hh"
#include "core/ssp_engine.hh"
#include "nvram/mem_controller.hh"

namespace ssp
{

/** The complete SSP design. */
class SspSystem : public AtomicityBackend
{
  public:
    explicit SspSystem(const SspConfig &cfg);

    /** Map a persistent virtual page (identity-mapped heap setup). */
    void mapHeapPage(Vpn vpn, Ppn ppn);

    // AtomicityBackend ----------------------------------------------------
    const char *name() const override { return "SSP"; }
    void begin(CoreId core) override;
    void commit(CoreId core) override;
    void abort(CoreId core) override;
    bool inTx(CoreId core) const override;
    void load(CoreId core, Addr vaddr, void *buf,
              std::uint64_t size) override;
    void store(CoreId core, Addr vaddr, const void *buf,
               std::uint64_t size) override;
    void storeRaw(Addr vaddr, const void *buf, std::uint64_t size) override;
    void loadRaw(Addr vaddr, void *buf, std::uint64_t size) override;
    void crash() override;
    void recover() override;
    Machine &machine() override { return *machine_; }
    std::uint64_t loggingWrites() const override;
    std::uint64_t committedTxs() const override;
    const TxCharacterization &characterization() const override
    {
        return charz_;
    }

    // SSP-specific accessors ----------------------------------------------
    MemController &controller() { return *mc_; }
    SspEngine &engine(CoreId core) { return *engines_[core]; }
    const SspConfig &cfg() const { return machine_->cfg(); }

    /**
     * Debug/test hook: the physical location currently holding the
     * *committed* version of @p vaddr, per the durable metadata.
     */
    Addr committedLocation(Addr vaddr);

  private:
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<MemController> mc_;
    std::vector<std::unique_ptr<SspEngine>> engines_;
    TxCharacterization charz_;
};

} // namespace ssp

#endif // SSP_CORE_SSP_SYSTEM_HH
