/**
 * @file
 * Full configuration of the simulated machine (paper Table 2) and of the
 * SSP mechanism, plus the physical-address-space layout.
 *
 * Default latencies assume a 3.7 GHz core: 50 ns = 185 cycles,
 * 200 ns = 740 cycles.
 */

#ifndef SSP_CORE_CONFIG_HH
#define SSP_CORE_CONFIG_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "core/conflict_manager.hh"
#include "mem/device_presets.hh"
#include "mem/mem_system.hh"
#include "mem/timing_model.hh"
#include "nvram/ssp_cache.hh"

namespace ssp
{

// kCoreGHz / nsToCycles live in common/types.hh so the mem layer's
// device presets can use them without depending on core/.

/** Everything configurable about the simulated system. */
struct SspConfig
{
    // ---- machine ------------------------------------------------------
    unsigned numCores = 1;
    unsigned tlbEntries = 64;      ///< Table 2: 64 DTLB entries
    unsigned writeSetEntries = 64; ///< section 4.2/4.3 write-set buffer
    Cycles pageWalkCycles = 60;    ///< mostly-cached radix walk
    Cycles broadcastLatency = 16;  ///< flip-current-bit bus traversal
    Cycles opCost = 2;             ///< non-memory work per simulated op

    HierarchyParams caches{};

    /**
     * Concurrent-transaction conflict handling (detection mode, abort
     * penalty, retry backoff).  Only effective with numCores > 1; the
     * single-core model has no overlapping windows by construction.
     */
    ConflictParams conflicts{};

    /**
     * Coherence interconnect model: the default flat broadcast bus
     * (every event costs broadcastLatency regardless of sharer count)
     * or the 2D-mesh home-node directory (hop-scaled multicast to the
     * actual sharers, capacity-limited snoop filter).  See
     * cache/coherence.hh and interconnect/directory.hh.
     */
    CoherenceParams coherence{};

    MemTimingParams dram = dramDevicePreset();
    MemTimingParams nvram = nvramDevicePreset(NvramDevice::PaperPcm);

    /** Parallel channels per technology; 1 is the paper's channel pair. */
    unsigned dramChannels = 1;
    unsigned nvramChannels = 1;
    /** Unit of the round-robin address interleave across channels. */
    InterleaveGranularity interleaveGranularity =
        InterleaveGranularity::Line;

    /**
     * Figure 8 sweep: when > 0, NVRAM read and write latency are both
     * set to multiplier x DRAM latency (the paper's x-axis is "NVRAM
     * latency in multiples of DRAM latency").
     */
    double nvramLatencyMultiplier = 0;

    // ---- persistent-heap layout (physical pages) -----------------------
    std::uint64_t heapPages = 1 << 16;      ///< 256 MiB persistent heap
    std::uint64_t shadowPoolPages = 2048;   ///< reserved for P1 pages
    std::uint64_t journalPages = 512;       ///< metadata journal area
    std::uint64_t logPages = 8192;          ///< undo/redo log area
    std::uint64_t dramPages = 4096;         ///< volatile region

    // ---- SSP specifics --------------------------------------------------
    /** SSP cache slots; 0 means "cores x TLB entries + overprovision". */
    unsigned sspCacheSlots = 0;
    /** Overprovisioning factor O (section 4.1.2). */
    unsigned sspCacheOverprovision = 64;
    std::uint64_t checkpointThresholdBytes = 64 * 1024;
    SspCacheLatencyParams sspCacheLatency{};

    /**
     * Sub-page tracking granularity in cache lines (section 4.3): 1 =
     * 64-byte lines (64-bit bitmaps, the paper's base design); 4 =
     * 256-byte sub-pages matching Optane's preferred persistence
     * granularity, shrinking the bitmaps to 16 bits at the cost of
     * 4-line copy-on-write and flush units.  Must divide 64.
     */
    unsigned subPageLines = 1;

    /** When a page becomes inactive: consolidate immediately (the
     *  paper's implementation) or defer until memory pressure (the
     *  lazy policy the paper leaves as future work). */
    enum class ConsolidationPolicy { Eager, Lazy };
    ConsolidationPolicy consolidationPolicy = ConsolidationPolicy::Eager;
    /** Lazy policy: drain the pending queue when the shadow pool drops
     *  below this many free pages. */
    std::uint64_t lazyLowWatermark = 64;

    /** Exchange a slot's shadow page with a fresh pool page every N
     *  consolidations (wear leveling, section 4.1.2); 0 disables. */
    std::uint64_t wearRotatePeriod = 0;

    // ---- derived layout -------------------------------------------------
    std::uint64_t
    nvramPages() const
    {
        return heapPages + shadowPoolPages + journalPages + logPages;
    }
    Ppn shadowPoolBase() const { return heapPages; }
    Addr
    journalBase() const
    {
        return pageBase(heapPages + shadowPoolPages);
    }
    std::uint64_t journalBytes() const { return journalPages * kPageSize; }
    Addr
    logBase() const
    {
        return pageBase(heapPages + shadowPoolPages + journalPages);
    }
    std::uint64_t logBytes() const { return logPages * kPageSize; }

    unsigned
    effectiveSspSlots() const
    {
        if (sspCacheSlots != 0)
            return sspCacheSlots;
        return numCores * tlbEntries + sspCacheOverprovision;
    }

    /** NVRAM timing after applying the Figure 8 multiplier. */
    MemTimingParams
    effectiveNvram() const
    {
        MemTimingParams p = nvram;
        if (nvramLatencyMultiplier > 0) {
            Cycles lat = static_cast<Cycles>(
                static_cast<double>(dram.readLatency) *
                nvramLatencyMultiplier);
            p.readLatency = lat;
            p.writeLatency = lat;
        }
        return p;
    }

    /** Replace the NVRAM timing with a named device preset. */
    void
    applyNvramDevice(NvramDevice device)
    {
        nvram = nvramDevicePreset(device);
    }

    /** The full memory-system description the Machine builds from. */
    MemSystemParams
    memSystem() const
    {
        MemSystemParams p;
        p.dram = dram;
        p.nvram = effectiveNvram();
        p.dramChannels = dramChannels;
        p.nvramChannels = nvramChannels;
        p.interleave = interleaveGranularity;
        return p;
    }
};

} // namespace ssp

#endif // SSP_CORE_CONFIG_HH
