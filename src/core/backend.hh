/**
 * @file
 * The failure-atomicity backend interface.
 *
 * Each evaluated design — SSP, hardware undo logging (UNDO-LOG), DHTM-
 * style hardware redo logging (REDO-LOG) and conventional shadow paging
 * (the ablation) — implements this interface on top of the shared
 * Machine substrate, so workloads and benches are design-agnostic.
 *
 * The interface mirrors the paper's programming model (section 3.1):
 * ATOMIC_BEGIN / ATOMIC_STORE / ATOMIC_END, plus loads, a raw
 * (non-failure-atomic) store for heap initialization, and crash/recover
 * hooks for the fault-injection tests.
 */

#ifndef SSP_CORE_BACKEND_HH
#define SSP_CORE_BACKEND_HH

#include <cstdint>
#include <stdexcept>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/machine.hh"

namespace ssp
{

/**
 * Thrown when a transaction exceeds the bounded hardware resources
 * (write-set buffer).  The paper's fall-back path transfers control to a
 * software handler; the simulator surfaces it so callers can size
 * workloads or invoke their own fallback.
 */
class TxOverflow : public std::runtime_error
{
  public:
    explicit TxOverflow(const char *what) : std::runtime_error(what) {}
};

/** Per-transaction write-set statistics (paper Table 3). */
struct TxCharacterization
{
    StatSummary linesPerTx;
    StatSummary pagesPerTx;
};

/** A failure-atomicity design under test. */
class AtomicityBackend
{
  public:
    virtual ~AtomicityBackend() = default;

    /** Design name for reports ("SSP", "UNDO-LOG", ...). */
    virtual const char *name() const = 0;

    /** ATOMIC_BEGIN: start a failure-atomic section on @p core. */
    virtual void begin(CoreId core) = 0;

    /**
     * ATOMIC_END: make every store of the section durable, all or
     * nothing.  When this returns, the transaction is acknowledged.
     */
    virtual void commit(CoreId core) = 0;

    /** Roll back the ongoing section. */
    virtual void abort(CoreId core) = 0;

    /** True while a failure-atomic section is open on @p core. */
    virtual bool inTx(CoreId core) const = 0;

    /** Timed load of @p size bytes at persistent virtual address. */
    virtual void load(CoreId core, Addr vaddr, void *buf,
                      std::uint64_t size) = 0;

    /** ATOMIC_STORE: timed failure-atomic store; must be inside a tx. */
    virtual void store(CoreId core, Addr vaddr, const void *buf,
                       std::uint64_t size) = 0;

    /**
     * Non-failure-atomic initialization store (untimed, used to build
     * the initial heap image before measurement; the image is treated
     * as the first committed state).
     */
    virtual void storeRaw(Addr vaddr, const void *buf,
                          std::uint64_t size) = 0;

    /** Untimed functional read (verification paths). */
    virtual void loadRaw(Addr vaddr, void *buf, std::uint64_t size) = 0;

    /** Simulated power failure: all volatile state disappears. */
    virtual void crash() = 0;

    /** Post-crash recovery; afterwards committed data is readable. */
    virtual void recover() = 0;

    /** The underlying machine (clock, bus counters, ...). */
    virtual Machine &machine() = 0;

    /**
     * NVRAM line writes attributable to the consistency mechanism
     * (Figure 6's "logging writes": log/journal/checkpoint traffic).
     */
    virtual std::uint64_t loggingWrites() const = 0;

    /** Committed transactions so far. */
    virtual std::uint64_t committedTxs() const = 0;

    /** Write-set characterization of committed transactions. */
    virtual const TxCharacterization &characterization() const = 0;
};

} // namespace ssp

#endif // SSP_CORE_BACKEND_HH
