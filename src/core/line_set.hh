/**
 * @file
 * A sorted set of cache-line addresses with small inline capacity.
 *
 * The ConflictManager records every transactional load and store into a
 * per-transaction read/write set, which makes set insertion and
 * intersection the innermost loop of every multi-core cell.  Table 3
 * characterizes transaction footprints as a handful of lines, so a
 * hash set pays allocation, hashing and pointer-chasing for sets that
 * almost always fit in a cache line or two.
 *
 * LineSet stores the lines sorted and unique in a fixed inline array,
 * spilling to a heap vector only when a transaction outgrows it
 * (Memcached/Vacation-style footprints).  Membership is binary search,
 * insertion is a memmove, and intersection is a linear merge gated by
 * a free min/max range overlap test — all sequential memory, no
 * hashing.  Iteration order is the address order, deterministic by
 * construction.
 */

#ifndef SSP_CORE_LINE_SET_HH
#define SSP_CORE_LINE_SET_HH

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ssp
{

/** Sorted-unique set of line addresses (see file doc). */
class LineSet
{
  public:
    /** Inline capacity: covers the Table 3 microbenchmark footprints. */
    static constexpr std::size_t kInlineCapacity = 16;

    LineSet() = default;
    LineSet(const LineSet &) = default;
    LineSet &operator=(const LineSet &) = default;
    /** Moves leave the source empty (a usable, not just destructible,
     *  state: the manager recycles per-core sets across transactions). */
    LineSet(LineSet &&other) noexcept { *this = std::move(other); }
    LineSet &
    operator=(LineSet &&other) noexcept
    {
        if (this != &other) {
            size_ = other.size_;
            inline_ = other.inline_;
            spill_ = std::move(other.spill_);
            other.size_ = 0;
            other.spill_.clear();
        }
        return *this;
    }

    /** Insert @p line; returns true when it was not already present. */
    bool
    insert(Addr line)
    {
        Addr *base = data();
        Addr *end = base + size_;
        Addr *pos = std::lower_bound(base, end, line);
        if (pos != end && *pos == line)
            return false;
        const std::size_t at = static_cast<std::size_t>(pos - base);
        if (size_ < kInlineCapacity) {
            std::memmove(pos + 1, pos,
                         (size_ - at) * sizeof(Addr));
            *pos = line;
        } else {
            if (size_ == kInlineCapacity && spill_.empty()) {
                // First spill: move the inline contents to the heap.
                spill_.assign(inline_.begin(), inline_.end());
            }
            spill_.insert(spill_.begin() + static_cast<std::ptrdiff_t>(at),
                          line);
        }
        ++size_;
        return true;
    }

    /** True when @p line is in the set. */
    bool
    contains(Addr line) const
    {
        const Addr *base = data();
        return std::binary_search(base, base + size_, line);
    }

    /** Drop every element (spill capacity is retained). */
    void
    clear()
    {
        size_ = 0;
        spill_.clear();
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** @{ Sorted iteration. */
    const Addr *begin() const { return data(); }
    const Addr *end() const { return data() + size_; }
    /** @} */

    /**
     * True when the two sets share at least one line.  A min/max range
     * test rejects the common disjoint-footprint case before the merge
     * scan runs; the result is exactly set intersection either way.
     */
    friend bool
    intersects(const LineSet &a, const LineSet &b)
    {
        if (a.empty() || b.empty())
            return false;
        const Addr *pa = a.begin(), *ea = a.end();
        const Addr *pb = b.begin(), *eb = b.end();
        if (ea[-1] < *pb || eb[-1] < *pa)
            return false;
        while (pa != ea && pb != eb) {
            if (*pa < *pb)
                ++pa;
            else if (*pb < *pa)
                ++pb;
            else
                return true;
        }
        return false;
    }

  private:
    const Addr *
    data() const
    {
        return size_ <= kInlineCapacity ? inline_.data() : spill_.data();
    }
    Addr *
    data()
    {
        return size_ <= kInlineCapacity ? inline_.data() : spill_.data();
    }

    std::size_t size_ = 0;
    std::array<Addr, kInlineCapacity> inline_{};
    /** Holds *all* elements once size_ exceeds the inline capacity. */
    std::vector<Addr> spill_;
};

} // namespace ssp

#endif // SSP_CORE_LINE_SET_HH
