#include "core/conflict_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ssp
{

ConflictManager::ConflictManager(unsigned num_cores,
                                 const ConflictParams &params)
    : params_(params), enabled_(params.enabled && num_cores > 1),
      tx_(num_cores)
{
}

void
ConflictManager::beginTx(CoreId core, Cycles now)
{
    if (!enabled_)
        return;
    TxState &tx = tx_[core];
    ssp_assert(!tx.active, "conflict tracking already open on this core");
    tx.active = true;
    tx.beginCycle = now;
    tx.validated = false;
    tx.reads.clear();
    tx.writes.clear();
}

void
ConflictManager::recordRead(CoreId core, Addr vaddr)
{
    if (!enabled_ || !tx_[core].active)
        return;
    tx_[core].reads.insert(lineBase(vaddr));
}

void
ConflictManager::recordWrite(CoreId core, Addr vaddr)
{
    if (!enabled_ || !tx_[core].active)
        return;
    tx_[core].writes.insert(lineBase(vaddr));
}

bool
ConflictManager::validate(CoreId core, Cycles now)
{
    if (!enabled_)
        return true;
    TxState &tx = tx_[core];
    ssp_assert(tx.active, "commit validation without an open transaction");

    // Only peer commits inside this transaction's (begin, now] window
    // conflict: a record at or before the begin point was visible when
    // the transaction started, and one stamped after `now` belongs to
    // a transaction this (earlier) committer should have beaten.  The
    // latter case is the one-sided approximation of sequential
    // round-robin simulation: the later-stamped peer has already
    // committed irrevocably in simulation order, so neither side
    // aborts, and symmetric contention undercounts conflicts where the
    // earlier-simulated core had the longer transaction.  Detecting it
    // here would punish the rightful winner; a two-pass round
    // (speculate, order by commit point, re-run losers) is the
    // faithful fix.
    //
    // The check itself runs over the inverted index: for each line of
    // the transaction's footprint, find that line's in-window postings
    // and keep the earliest (lowest-seq) record among them — exactly
    // the record the old front-to-back scan over log_ would have
    // stopped at.  Postings of already-pruned records fail the window
    // test (their commit point is at or below the prune floor, which
    // no live begin point is under), so they are filtered, not
    // consulted.
    std::uint64_t best_ww = ~std::uint64_t{0};
    std::uint64_t best_rw = ~std::uint64_t{0};
    auto cycle_less = [](Cycles c, const Posting &p) {
        return c < p.commitCycle;
    };
    auto earliest_hit = [&](Addr line, std::uint64_t &best) {
        const auto [word, bit] = bloomBit(line);
        if ((postingBloom_[word] & bit) == 0)
            return; // proven absent: no record wrote this line
        auto it = postings_.find(line);
        if (it == postings_.end())
            return;
        // The list is cycle-sorted, so the (begin, now] window is a
        // binary-searched range — empty for the common conflict-free
        // line, without walking a single out-of-window posting.
        const std::vector<Posting> &vec = it->second;
        auto lo = std::upper_bound(vec.begin(), vec.end(),
                                   tx.beginCycle, cycle_less);
        auto hi = std::upper_bound(lo, vec.end(), now, cycle_less);
        for (; lo != hi; ++lo) {
            if (lo->core != core)
                best = std::min(best, lo->seq);
        }
    };
    if (!postings_.empty()) {
        if (params_.validation == ConflictValidation::FirstCommitterWins) {
            for (Addr line : tx.writes)
                earliest_hit(line, best_ww);
        }
        for (Addr line : tx.reads)
            earliest_hit(line, best_rw);
    }
    if (best_ww != ~std::uint64_t{0} || best_rw != ~std::uint64_t{0}) {
        // Within one record the scan tested write-write before
        // read-write, so a tie classifies as write-write.
        if (best_ww <= best_rw)
            ++stats_.writeWriteConflicts;
        else
            ++stats_.readWriteConflicts;
        return false;
    }
    tx.validated = true;
    tx.validatedAt = now;
    return true;
}

void
ConflictManager::commitTx(CoreId core, Cycles now, Cycles min_core_clock)
{
    if (!enabled_)
        return;
    TxState &tx = tx_[core];
    ssp_assert(tx.active, "conflict-tracking commit without a begin");

    CommitRecord rec;
    rec.core = core;
    rec.commitCycle = tx.validated ? tx.validatedAt : now;
    rec.writes = std::move(tx.writes);
    tx.active = false;
    tx.validated = false;
    tx.reads.clear();
    tx.writes.clear();

    // Prune: a future transaction on any core begins no earlier than
    // that core's current clock, and an already-open one no earlier
    // than its begin point — records at or below both floors can never
    // fall inside a validation window again.
    Cycles floor = min_core_clock;
    for (const TxState &t : tx_) {
        if (t.active)
            floor = std::min(floor, t.beginCycle);
    }
    while (!log_.empty() && log_.front().commitCycle <= floor)
        log_.pop_front();
    // The log drains completely at every round boundary (the barrier
    // advances the floor past the previous round's commit points), so
    // this is where the posting index resets instead of growing
    // without bound.  clear() keeps the bucket array, so the per-round
    // rebuild does not re-pay rehashing.
    if (log_.empty()) {
        postings_.clear();
        postingBloom_.fill(0);
    }

    // Publish.  A record already at or below the floor is unreachable
    // by any future window; the pre-index code path reached the same
    // end state by pushing it and immediately pruning it.
    if (!rec.writes.empty() &&
        !(log_.empty() && rec.commitCycle <= floor)) {
        const std::uint64_t seq = nextSeq_++;
        for (Addr line : rec.writes) {
            std::vector<Posting> &vec = postings_[line];
            // Keep each line's postings sorted by commit point so
            // validation can binary-search its window.  Commit points
            // interleave across cores mid-round, so this is a real
            // sorted insert, not an append.
            auto at = std::upper_bound(
                vec.begin(), vec.end(), rec.commitCycle,
                [](Cycles c, const Posting &p) {
                    return c < p.commitCycle;
                });
            vec.insert(at, Posting{rec.commitCycle, seq, rec.core});
            const auto [word, bit] = bloomBit(line);
            postingBloom_[word] |= bit;
        }
        log_.push_back(std::move(rec));
    }
}

void
ConflictManager::abortTx(CoreId core)
{
    if (!enabled_)
        return;
    TxState &tx = tx_[core];
    tx.active = false;
    tx.validated = false;
    tx.reads.clear();
    tx.writes.clear();
}

Cycles
ConflictManager::retryPenalty(CoreId core, unsigned attempt)
{
    ssp_assert(enabled_, "retry penalty without conflict detection");
    ssp_assert(attempt >= 1);
    (void)core;
    const unsigned doublings =
        std::min(attempt - 1, params_.backoffCapDoublings);
    const Cycles backoff = params_.backoffBase << doublings;
    ++stats_.aborts;
    ++stats_.retries;
    stats_.backoffCycles += backoff;
    return params_.abortPenalty + backoff;
}

void
ConflictManager::reset()
{
    for (auto &tx : tx_) {
        tx.active = false;
        tx.validated = false;
        tx.reads.clear();
        tx.writes.clear();
    }
    log_.clear();
    postings_.clear();
    postingBloom_.fill(0);
}

} // namespace ssp
