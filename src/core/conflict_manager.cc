#include "core/conflict_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ssp
{

namespace
{

/** True when any line of @p lines appears in @p set. */
bool
intersects(const std::unordered_set<Addr> &lines,
           const std::unordered_set<Addr> &set)
{
    // Probe the smaller side against the larger one.
    if (lines.size() > set.size())
        return intersects(set, lines);
    return std::any_of(lines.begin(), lines.end(), [&](Addr a) {
        return set.contains(a);
    });
}

} // namespace

ConflictManager::ConflictManager(unsigned num_cores,
                                 const ConflictParams &params)
    : params_(params), enabled_(params.enabled && num_cores > 1),
      tx_(num_cores)
{
}

void
ConflictManager::beginTx(CoreId core, Cycles now)
{
    if (!enabled_)
        return;
    TxState &tx = tx_[core];
    ssp_assert(!tx.active, "conflict tracking already open on this core");
    tx.active = true;
    tx.beginCycle = now;
    tx.validated = false;
    tx.reads.clear();
    tx.writes.clear();
}

void
ConflictManager::recordRead(CoreId core, Addr vaddr)
{
    if (!enabled_ || !tx_[core].active)
        return;
    tx_[core].reads.insert(lineBase(vaddr));
}

void
ConflictManager::recordWrite(CoreId core, Addr vaddr)
{
    if (!enabled_ || !tx_[core].active)
        return;
    tx_[core].writes.insert(lineBase(vaddr));
}

bool
ConflictManager::validate(CoreId core, Cycles now)
{
    if (!enabled_)
        return true;
    TxState &tx = tx_[core];
    ssp_assert(tx.active, "commit validation without an open transaction");

    for (const CommitRecord &rec : log_) {
        // Only peer commits inside this transaction's (begin, now]
        // window conflict: a record at or before the begin point was
        // visible when the transaction started, and one stamped after
        // `now` belongs to a transaction this (earlier) committer
        // should have beaten.  The latter case is the one-sided
        // approximation of sequential round-robin simulation: the
        // later-stamped peer has already committed irrevocably in
        // simulation order, so neither side aborts, and symmetric
        // contention undercounts conflicts where the earlier-simulated
        // core had the longer transaction.  Detecting it here would
        // punish the rightful winner; a two-pass round (speculate,
        // order by commit point, re-run losers) is the faithful fix.
        if (rec.core == core || rec.commitCycle <= tx.beginCycle ||
            rec.commitCycle > now) {
            continue;
        }
        if (params_.validation == ConflictValidation::FirstCommitterWins &&
            intersects(tx.writes, rec.writes)) {
            ++stats_.writeWriteConflicts;
            return false;
        }
        if (intersects(tx.reads, rec.writes)) {
            ++stats_.readWriteConflicts;
            return false;
        }
    }
    tx.validated = true;
    tx.validatedAt = now;
    return true;
}

void
ConflictManager::commitTx(CoreId core, Cycles now, Cycles min_core_clock)
{
    if (!enabled_)
        return;
    TxState &tx = tx_[core];
    ssp_assert(tx.active, "conflict-tracking commit without a begin");

    if (!tx.writes.empty()) {
        CommitRecord rec;
        rec.core = core;
        rec.commitCycle = tx.validated ? tx.validatedAt : now;
        rec.writes = std::move(tx.writes);
        log_.push_back(std::move(rec));
    }
    tx.active = false;
    tx.validated = false;
    tx.reads.clear();
    tx.writes.clear();

    // Prune: a future transaction on any core begins no earlier than
    // that core's current clock, and an already-open one no earlier
    // than its begin point — records at or below both floors can never
    // fall inside a validation window again.
    Cycles floor = min_core_clock;
    for (const TxState &t : tx_) {
        if (t.active)
            floor = std::min(floor, t.beginCycle);
    }
    while (!log_.empty() && log_.front().commitCycle <= floor)
        log_.pop_front();
}

void
ConflictManager::abortTx(CoreId core)
{
    if (!enabled_)
        return;
    TxState &tx = tx_[core];
    tx.active = false;
    tx.validated = false;
    tx.reads.clear();
    tx.writes.clear();
}

Cycles
ConflictManager::retryPenalty(CoreId core, unsigned attempt)
{
    ssp_assert(enabled_, "retry penalty without conflict detection");
    ssp_assert(attempt >= 1);
    (void)core;
    const unsigned doublings =
        std::min(attempt - 1, params_.backoffCapDoublings);
    const Cycles backoff = params_.backoffBase << doublings;
    ++stats_.aborts;
    ++stats_.retries;
    stats_.backoffCycles += backoff;
    return params_.abortPenalty + backoff;
}

void
ConflictManager::reset()
{
    for (auto &tx : tx_) {
        tx.active = false;
        tx.validated = false;
        tx.reads.clear();
        tx.writes.clear();
    }
    log_.clear();
}

} // namespace ssp
