/**
 * @file
 * The simulated machine substrate shared by SSP and the baseline
 * designs: physical memory, the memory bus, the cache hierarchy, the
 * page table, the coherence bus, per-core TLBs and per-core clocks.
 */

#ifndef SSP_CORE_MACHINE_HH
#define SSP_CORE_MACHINE_HH

#include <bit>
#include <vector>

#include "cache/coherence.hh"
#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/conflict_manager.hh"
#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace ssp
{

/** One simulated machine. */
class Machine
{
  public:
    explicit Machine(const SspConfig &cfg)
        : cfg_(cfg), mem_(cfg.nvramPages(), cfg.dramPages),
          bus_(mem_, cfg.memSystem()),
          caches_(cfg.numCores, cfg.caches, bus_),
          pt_(cfg.pageWalkCycles, cfg.heapPages),
          coherence_(cfg.numCores, cfg.broadcastLatency),
          conflicts_(cfg.numCores, cfg.conflicts),
          clocks_(cfg.numCores, 0)
    {
        // The hierarchy's write path invalidates peer copies through the
        // coherence bus (MESI-style); standalone hierarchies time in
        // isolation.
        caches_.attachCoherence(&coherence_);
        for (unsigned i = 0; i < cfg.numCores; ++i)
            tlbs_.emplace_back(cfg.tlbEntries);
        // Identity-map the persistent heap up front.  Consolidation may
        // later retarget individual mappings; recovery relies on every
        // heap page having a page-table entry.
        for (std::uint64_t vpn = 0; vpn < cfg.heapPages; ++vpn)
            pt_.map(vpn, vpn);
    }

    const SspConfig &cfg() const { return cfg_; }
    PhysMem &mem() { return mem_; }
    MemoryBus &bus() { return bus_; }
    CacheHierarchy &caches() { return caches_; }
    PageTable &pt() { return pt_; }
    CoherenceBus &coherence() { return coherence_; }
    ConflictManager &conflicts() { return conflicts_; }
    const ConflictManager &conflicts() const { return conflicts_; }
    Tlb &tlb(CoreId core) { return tlbs_[core]; }

    Cycles &clock(CoreId core) { return clocks_[core]; }
    Cycles clock(CoreId core) const { return clocks_[core]; }

    /** Maximum core clock — wall-clock time of the simulated run. */
    Cycles
    maxClock() const
    {
        Cycles m = 0;
        for (Cycles c : clocks_)
            m = std::max(m, c);
        return m;
    }

    /** Minimum core clock — floor of any future transaction's begin. */
    Cycles
    minClock() const
    {
        Cycles m = clocks_[0];
        for (Cycles c : clocks_)
            m = std::min(m, c);
        return m;
    }

    /** Synchronize every core clock to the maximum (barrier). */
    void
    syncClocks()
    {
        Cycles m = maxClock();
        for (auto &c : clocks_)
            c = m;
    }

    /**
     * Charge the receiver side of a flip-current-bit shootdown: every
     * peer in @p peer_mask (bit c = core c, as returned by
     * CacheHierarchy::invalidateLineRemote) had a stale copy of the
     * remapped-away line dropped from its private caches and pays one
     * bus traversal to process the message.
     */
    void
    chargeShootdown(CoreId sender, std::uint64_t peer_mask)
    {
        std::uint64_t rest = peer_mask & ~(std::uint64_t{1} << sender);
        while (rest != 0) {
            const unsigned c = static_cast<unsigned>(std::countr_zero(rest));
            rest &= rest - 1;
            clocks_[c] += cfg_.broadcastLatency;
            coherence_.deliverShootdown(c);
        }
    }

    /** Volatile state lost on power failure (caches, TLBs, DRAM). */
    void
    powerFail()
    {
        caches_.invalidateAll();
        for (auto &tlb : tlbs_)
            tlb.flushAll();
        mem_.powerFail();
        bus_.resetTiming();
        conflicts_.reset();
    }

  private:
    SspConfig cfg_;
    PhysMem mem_;
    MemoryBus bus_;
    CacheHierarchy caches_;
    PageTable pt_;
    CoherenceBus coherence_;
    ConflictManager conflicts_;
    std::vector<Tlb> tlbs_;
    std::vector<Cycles> clocks_;
};

} // namespace ssp

#endif // SSP_CORE_MACHINE_HH
