/**
 * @file
 * The simulated machine substrate shared by SSP and the baseline
 * designs: physical memory, the memory bus, the cache hierarchy, the
 * page table, the coherence model, per-core TLBs and per-core clocks.
 */

#ifndef SSP_CORE_MACHINE_HH
#define SSP_CORE_MACHINE_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/coherence.hh"
#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/conflict_manager.hh"
#include "mem/memory_bus.hh"
#include "mem/phys_mem.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace ssp
{

/** One simulated machine. */
class Machine
{
  public:
    explicit Machine(const SspConfig &cfg)
        : cfg_(cfg), mem_(cfg.nvramPages(), cfg.dramPages),
          bus_(mem_, cfg.memSystem()),
          // Directory mode needs the sharer index (its directory state
          // and snoop-filter feed) at every core count, not just past
          // the perf cutover.
          caches_(cfg.numCores, cfg.caches, bus_,
                  cfg.coherence.mode == CoherenceMode::Directory),
          pt_(cfg.pageWalkCycles, cfg.heapPages),
          coherence_(makeCoherenceModel(cfg.numCores, cfg.broadcastLatency,
                                        cfg.coherence)),
          conflicts_(cfg.numCores, cfg.conflicts),
          clocks_(cfg.numCores, 0)
    {
        // The hierarchy's write path invalidates peer copies through the
        // coherence model (MESI-style); standalone hierarchies time in
        // isolation.  The directory model's snoop filter is wired to the
        // sharer index inside attachCoherence, and its forced filter
        // evictions drop live copies through backInvalidateLine.
        caches_.attachCoherence(coherence_.get());
        coherence_->attachBackInvalidator([this](Addr line, Cycles now) {
            return caches_.backInvalidateLine(line, now);
        });
        for (unsigned i = 0; i < cfg.numCores; ++i)
            tlbs_.emplace_back(cfg.tlbEntries);
        // Identity-map the persistent heap up front.  Consolidation may
        // later retarget individual mappings; recovery relies on every
        // heap page having a page-table entry.
        for (std::uint64_t vpn = 0; vpn < cfg.heapPages; ++vpn)
            pt_.map(vpn, vpn);
    }

    const SspConfig &cfg() const { return cfg_; }
    PhysMem &mem() { return mem_; }
    MemoryBus &bus() { return bus_; }
    CacheHierarchy &caches() { return caches_; }
    PageTable &pt() { return pt_; }
    CoherenceModel &coherence() { return *coherence_; }
    const CoherenceModel &coherence() const { return *coherence_; }
    ConflictManager &conflicts() { return conflicts_; }
    const ConflictManager &conflicts() const { return conflicts_; }
    Tlb &tlb(CoreId core) { return tlbs_[core]; }

    Cycles &clock(CoreId core) { return clocks_[core]; }
    Cycles clock(CoreId core) const { return clocks_[core]; }

    /** Maximum core clock — wall-clock time of the simulated run. */
    Cycles
    maxClock() const
    {
        Cycles m = 0;
        for (Cycles c : clocks_)
            m = std::max(m, c);
        return m;
    }

    /** Minimum core clock — floor of any future transaction's begin. */
    Cycles
    minClock() const
    {
        Cycles m = clocks_[0];
        for (Cycles c : clocks_)
            m = std::min(m, c);
        return m;
    }

    /** Synchronize every core clock to the maximum (barrier). */
    void
    syncClocks()
    {
        Cycles m = maxClock();
        for (auto &c : clocks_)
            c = m;
    }

    /**
     * Charge the receiver side of a flip-current-bit shootdown: every
     * peer in @p peer_mask (as returned by
     * CacheHierarchy::invalidateLineRemote) had a stale copy of the
     * remapped-away line dropped from its private caches and pays the
     * model's receiver cost (a flat bus traversal under broadcast, the
     * trip from @p line's home tile under the mesh directory) to
     * process the message.
     */
    void
    chargeShootdown(CoreId sender, Addr line, const CoreBitmap &peer_mask)
    {
        peer_mask.forEachSet([&](CoreId c) {
            if (c == sender)
                return;
            clocks_[c] += coherence_->shootdownReceiverCost(c, line);
            coherence_->deliverShootdown(c);
        });
    }

    /** Volatile state lost on power failure (caches, TLBs, DRAM). */
    void
    powerFail()
    {
        caches_.invalidateAll();
        coherence_->powerFail();
        for (auto &tlb : tlbs_)
            tlb.flushAll();
        mem_.powerFail();
        bus_.resetTiming();
        conflicts_.reset();
    }

  private:
    SspConfig cfg_;
    PhysMem mem_;
    MemoryBus bus_;
    CacheHierarchy caches_;
    PageTable pt_;
    std::unique_ptr<CoherenceModel> coherence_;
    ConflictManager conflicts_;
    std::vector<Tlb> tlbs_;
    std::vector<Cycles> clocks_;
};

} // namespace ssp

#endif // SSP_CORE_MACHINE_HH
