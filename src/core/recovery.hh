/**
 * @file
 * Post-recovery invariant checking (paper section 4.4).
 *
 * After SspSystem::recover() the system must satisfy a set of structural
 * invariants; verifyRecoveredState() checks them all and reports every
 * violation.  The crash-injection tests call it after each simulated
 * power failure.
 */

#ifndef SSP_CORE_RECOVERY_HH
#define SSP_CORE_RECOVERY_HH

#include <string>
#include <vector>

namespace ssp
{

class SspSystem;

/** Outcome of a recovery verification pass. */
struct RecoveryReport
{
    bool ok = true;
    std::vector<std::string> violations;
};

/**
 * Check the post-recovery invariants:
 *  - every valid SSP-cache entry has current == committed;
 *  - all reference counts are zero;
 *  - the page table maps every active page to its PPN0;
 *  - no shadow page is owned by two slots or by a slot and the pool;
 *  - the journal is empty (recovery checkpoints).
 */
RecoveryReport verifyRecoveredState(SspSystem &sys);

} // namespace ssp

#endif // SSP_CORE_RECOVERY_HH
