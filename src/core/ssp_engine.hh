/**
 * @file
 * The per-core SSP engine: address translation through the extended TLB,
 * the atomic-update path of Figure 4, and the commit/abort sequences of
 * sections 3.2 and 4.1.1.
 */

#ifndef SSP_CORE_SSP_ENGINE_HH
#define SSP_CORE_SSP_ENGINE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/machine.hh"
#include "core/write_set.hh"
#include "nvram/mem_controller.hh"

namespace ssp
{

/** Per-core translation result. */
struct Translation
{
    SlotId slot = kInvalidSlot;
    Ppn ppn0 = kInvalidPpn;
    Ppn ppn1 = kInvalidPpn;
};

/** Statistics one engine accumulates. */
struct EngineStats
{
    std::uint64_t loads = 0;
    std::uint64_t atomicStores = 0;
    std::uint64_t firstWrites = 0; ///< line-level CoW + flip events
    std::uint64_t tlbMisses = 0;   ///< persistent-heap TLB misses
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t overflows = 0;
    /** Cycle breakdown (where this core's time goes). */
    Cycles loadCycles = 0;
    Cycles storeCycles = 0;
    Cycles commitCycles = 0;
};

/**
 * One core's SSP frontend.
 *
 * The engine owns the core's write-set buffer and drives the shared
 * machine (caches, TLB) and memory controller.  All operations advance
 * the core's clock in the Machine.
 */
class SspEngine
{
  public:
    SspEngine(CoreId core, Machine &machine, MemController &mc);

    /** ATOMIC_BEGIN (full memory barrier; assigns the TID). */
    void begin();

    /** ATOMIC_STORE of @p size bytes; splits across lines/pages. */
    void atomicStore(Addr vaddr, const void *buf, std::uint64_t size);

    /** Timed load; sees the transaction's own speculative writes. */
    void load(Addr vaddr, void *buf, std::uint64_t size);

    /** ATOMIC_END: flush write set, journal metadata, ack. */
    void commit();

    /** Roll back the ongoing transaction. */
    void abort();

    bool inTx() const { return inTx_; }
    const WriteSetBuffer &writeSet() const { return writeSet_; }
    const EngineStats &stats() const { return stats_; }

    /** Drop transient per-core state after a power failure. */
    void reset();

  private:
    /** Translate @p vpn, filling the TLB on a miss. */
    Translation translate(Vpn vpn);

    /** Atomic store confined to one cache line. */
    void atomicStoreLine(Addr vaddr, const void *buf, std::uint64_t size);

    /** Tracking-bit index for line @p li (sub-page granularity). */
    unsigned bitOf(unsigned li) const { return li / subPageLines_; }

    /** Physical line address of line @p li per the current bitmap. */
    Addr currentLineAddr(const SspCacheEntry &e, const Translation &tr,
                         unsigned li) const;

    CoreId core_;
    Machine &machine_;
    MemController &mc_;
    WriteSetBuffer writeSet_;
    /** Commit-time scratch: write-set line addresses handed to the
     *  hierarchy's batched flush.  Member so the allocation amortizes
     *  across transactions. */
    std::vector<Addr> flushBatch_;
    unsigned subPageLines_;
    bool inTx_ = false;
    TxId tid_ = 0;
    EngineStats stats_;
};

} // namespace ssp

#endif // SSP_CORE_SSP_ENGINE_HH
