#include "core/write_set.hh"

#include "common/logging.hh"

namespace ssp
{

WriteSetBuffer::WriteSetBuffer(unsigned capacity) : capacity_(capacity)
{
    ssp_assert(capacity > 0);
    entries_.reserve(capacity);
}

WriteSetEntry *
WriteSetBuffer::find(Vpn vpn)
{
    for (auto &e : entries_) {
        if (e.vpn == vpn)
            return &e;
    }
    return nullptr;
}

WriteSetEntry *
WriteSetBuffer::insert(Vpn vpn, SlotId slot)
{
    ssp_assert(find(vpn) == nullptr, "duplicate write-set entry");
    if (entries_.size() >= capacity_)
        return nullptr; // transaction overflow -> fall-back path
    entries_.push_back(WriteSetEntry{vpn, slot, Bitmap64{}});
    return &entries_.back();
}

unsigned
WriteSetBuffer::totalLines() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.updated.popcount();
    return n;
}

void
WriteSetBuffer::clear()
{
    entries_.clear();
}

} // namespace ssp
