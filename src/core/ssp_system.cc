#include "core/ssp_system.hh"

#include "common/logging.hh"

namespace ssp
{

SspSystem::SspSystem(const SspConfig &cfg)
{
    machine_ = std::make_unique<Machine>(cfg);

    MemControllerParams mcp;
    mcp.sspCacheSlots = cfg.effectiveSspSlots();
    mcp.shadowPoolBase = cfg.shadowPoolBase();
    mcp.shadowPoolPages = cfg.shadowPoolPages;
    mcp.journalBase = cfg.journalBase();
    mcp.checkpointThresholdBytes = cfg.checkpointThresholdBytes;
    // Carve the persistent SSP-cache slot lines off the top of the
    // journal region so checkpoint writes never alias journal-append
    // lines on the bank/channel layout.
    const std::uint64_t pcache_bytes =
        std::uint64_t{cfg.effectiveSspSlots()} * kLineSize;
    if (cfg.journalBytes() <= pcache_bytes +
                                  2 * cfg.checkpointThresholdBytes) {
        ssp_fatal("journal area (%llu bytes) too small for %u persistent "
                  "slot lines plus journal headroom; raise journalPages",
                  static_cast<unsigned long long>(cfg.journalBytes()),
                  cfg.effectiveSspSlots());
    }
    mcp.journalBytes = cfg.journalBytes() - pcache_bytes;
    mcp.persistentCacheBase = cfg.journalBase() + mcp.journalBytes;
    mcp.persistentCacheBytes = pcache_bytes;
    mcp.latency = cfg.sspCacheLatency;
    mcp.subPageLines = cfg.subPageLines;
    mcp.lazyConsolidation =
        cfg.consolidationPolicy == SspConfig::ConsolidationPolicy::Lazy;
    mcp.lazyLowWatermark = cfg.lazyLowWatermark;
    mcp.wearRotatePeriod = cfg.wearRotatePeriod;
    if (cfg.shadowPoolPages < mcp.sspCacheSlots) {
        ssp_fatal("shadow pool (%llu pages) smaller than the SSP cache "
                  "(%u slots); every slot needs an extra page",
                  static_cast<unsigned long long>(cfg.shadowPoolPages),
                  mcp.sspCacheSlots);
    }
    mc_ = std::make_unique<MemController>(mcp, machine_->bus(),
                                          machine_->pt());

    for (CoreId c = 0; c < cfg.numCores; ++c)
        engines_.push_back(std::make_unique<SspEngine>(c, *machine_, *mc_));
}

void
SspSystem::mapHeapPage(Vpn vpn, Ppn ppn)
{
    ssp_assert(ppn < machine_->cfg().heapPages,
               "heap page outside the heap region");
    machine_->pt().map(vpn, ppn);
}

void
SspSystem::begin(CoreId core)
{
    engines_[core]->begin();
}

void
SspSystem::commit(CoreId core)
{
    SspEngine &eng = *engines_[core];
    charz_.linesPerTx.sample(eng.writeSet().totalLines());
    charz_.pagesPerTx.sample(eng.writeSet().size());
    eng.commit();
}

void
SspSystem::abort(CoreId core)
{
    engines_[core]->abort();
}

bool
SspSystem::inTx(CoreId core) const
{
    return engines_[core]->inTx();
}

void
SspSystem::load(CoreId core, Addr vaddr, void *buf, std::uint64_t size)
{
    engines_[core]->load(vaddr, buf, size);
}

void
SspSystem::store(CoreId core, Addr vaddr, const void *buf,
                 std::uint64_t size)
{
    engines_[core]->atomicStore(vaddr, buf, size);
}

void
SspSystem::storeRaw(Addr vaddr, const void *buf, std::uint64_t size)
{
    // Initialization path: write directly to the committed location.
    auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        const Vpn vpn = pageOf(vaddr);
        const unsigned li = lineIndexInPage(vaddr);
        const unsigned bit = li / machine_->cfg().subPageLines;
        Ppn ppn;
        SlotId sid = mc_->cache().findSlot(vpn);
        if (sid != kInvalidSlot) {
            const SspCacheEntry &e = mc_->cache().entry(sid);
            ppn = e.committed.test(bit) ? e.ppn1 : e.ppn0;
            ssp_assert(e.current == e.committed,
                       "storeRaw during an open transaction");
        } else {
            ppn = machine_->pt().translate(vpn);
        }
        machine_->mem().write(lineAddr(ppn, li) + lineOffset(vaddr), in,
                              in_line);
        vaddr += in_line;
        in += in_line;
        size -= in_line;
    }
}

void
SspSystem::loadRaw(Addr vaddr, void *buf, std::uint64_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        const Vpn vpn = pageOf(vaddr);
        const unsigned li = lineIndexInPage(vaddr);
        const unsigned bit = li / machine_->cfg().subPageLines;
        Ppn ppn;
        SlotId sid = mc_->cache().findSlot(vpn);
        if (sid != kInvalidSlot) {
            const SspCacheEntry &e = mc_->cache().entry(sid);
            ppn = e.current.test(bit) ? e.ppn1 : e.ppn0;
        } else {
            ppn = machine_->pt().translate(vpn);
        }
        machine_->mem().read(lineAddr(ppn, li) + lineOffset(vaddr), out,
                             in_line);
        vaddr += in_line;
        out += in_line;
        size -= in_line;
    }
}

Addr
SspSystem::committedLocation(Addr vaddr)
{
    const Vpn vpn = pageOf(vaddr);
    const unsigned li = lineIndexInPage(vaddr);
    const unsigned bit = li / machine_->cfg().subPageLines;
    SlotId sid = mc_->cache().findSlot(vpn);
    Ppn ppn;
    if (sid != kInvalidSlot) {
        const SspCacheEntry &e = mc_->cache().entry(sid);
        ppn = e.committed.test(bit) ? e.ppn1 : e.ppn0;
    } else {
        ppn = machine_->pt().translate(vpn);
    }
    return lineAddr(ppn, li) + lineOffset(vaddr);
}

void
SspSystem::crash()
{
    // Volatile state disappears: caches, TLBs, DRAM, the transient SSP
    // cache, per-core write sets, the unpersisted journal tail.
    machine_->powerFail();
    mc_->powerFail();
    for (auto &eng : engines_)
        eng->reset();
}

void
SspSystem::recover()
{
    mc_->recover();
}

std::uint64_t
SspSystem::loggingWrites() const
{
    return machine_->bus().nvramWrites(WriteCategory::MetaJournal) +
           machine_->bus().nvramWrites(WriteCategory::Checkpoint);
}

std::uint64_t
SspSystem::committedTxs() const
{
    std::uint64_t n = 0;
    for (const auto &eng : engines_)
        n += eng->stats().commits;
    return n;
}

} // namespace ssp
