#include "core/ssp_engine.hh"

#include "core/backend.hh"

#include "common/logging.hh"

namespace ssp
{

SspEngine::SspEngine(CoreId core, Machine &machine, MemController &mc)
    : core_(core), machine_(machine), mc_(mc),
      writeSet_(machine.cfg().writeSetEntries),
      subPageLines_(machine.cfg().subPageLines)
{
    ssp_assert(subPageLines_ > 0 && kLinesPerPage % subPageLines_ == 0,
               "sub-page granularity must divide the page");
}

void
SspEngine::begin()
{
    ssp_assert(!inTx_, "nested failure-atomic sections are not supported");
    inTx_ = true;
    tid_ = mc_.beginTx();
    // ATOMIC_BEGIN acts as a full memory barrier.
    machine_.clock(core_) += machine_.cfg().opCost;
    machine_.conflicts().beginTx(core_, machine_.clock(core_));
}

Translation
SspEngine::translate(Vpn vpn)
{
    Cycles &now = machine_.clock(core_);
    Tlb &tlb = machine_.tlb(core_);

    if (TlbEntry *hit = tlb.lookup(vpn))
        return Translation{hit->slot, hit->ppn0, hit->ppn1};

    // TLB miss: page walk, then fetch the SSP metadata (using the walked
    // PPN0 as index), then fill the TLB.
    tlb.countMiss();
    ++stats_.tlbMisses;
    now = machine_.pt().walk(now);
    Ppn walked = machine_.pt().translate(vpn);
    MetadataFetchResult fetched = mc_.fetchEntry(vpn, walked, now);
    now = fetched.doneAt;

    TlbEntry entry;
    entry.valid = true;
    entry.vpn = vpn;
    entry.ppn0 = fetched.ppn0;
    entry.ppn1 = fetched.ppn1;
    entry.slot = fetched.sid;
    if (auto displaced = tlb.insert(entry)) {
        if (displaced->slot != kInvalidSlot)
            mc_.tlbDeref(displaced->slot, now);
    }
    return Translation{fetched.sid, fetched.ppn0, fetched.ppn1};
}

Addr
SspEngine::currentLineAddr(const SspCacheEntry &e, const Translation &tr,
                           unsigned li) const
{
    const Ppn ppn = e.current.test(bitOf(li)) ? tr.ppn1 : tr.ppn0;
    return lineAddr(ppn, li);
}

void
SspEngine::load(Addr vaddr, void *buf, std::uint64_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    Cycles &now = machine_.clock(core_);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        Translation tr = translate(pageOf(vaddr));
        const SspCacheEntry &e = mc_.cache().entry(tr.slot);
        const unsigned li = lineIndexInPage(vaddr);
        const Addr loc = currentLineAddr(e, tr, li);
        const Cycles t0 = now;
        now = machine_.caches().read(core_, loc, now);
        now += machine_.cfg().opCost;
        stats_.loadCycles += now - t0;
        machine_.mem().read(loc + lineOffset(vaddr), out, in_line);
        machine_.conflicts().recordRead(core_, vaddr);
        ++stats_.loads;
        vaddr += in_line;
        out += in_line;
        size -= in_line;
    }
}

void
SspEngine::atomicStore(Addr vaddr, const void *buf, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        const std::uint64_t in_line =
            std::min<std::uint64_t>(size, kLineSize - lineOffset(vaddr));
        atomicStoreLine(vaddr, in, in_line);
        vaddr += in_line;
        in += in_line;
        size -= in_line;
    }
}

void
SspEngine::atomicStoreLine(Addr vaddr, const void *buf, std::uint64_t size)
{
    ssp_assert(inTx_, "ATOMIC_STORE outside a failure-atomic section");
    ssp_assert(fitsInLine(vaddr, size));

    Cycles &now = machine_.clock(core_);
    const Cycles store_t0 = now;
    const Vpn vpn = pageOf(vaddr);
    const unsigned li = lineIndexInPage(vaddr);
    machine_.conflicts().recordWrite(core_, vaddr);

    Translation tr = translate(vpn);
    SspCacheEntry &e = mc_.cache().entry(tr.slot);

    WriteSetEntry *ws = writeSet_.find(vpn);
    const bool first_touch_of_page = (ws == nullptr);
    if (first_touch_of_page) {
        ws = writeSet_.insert(vpn, tr.slot);
        if (ws == nullptr) {
            ++stats_.overflows;
            // Bounded hardware is exhausted: the paper aborts and takes
            // the software fall-back.  Roll back and report.
            abort();
            throw TxOverflow("write-set buffer overflow");
        }
        mc_.coreRef(tr.slot);
    }

    const unsigned bit = bitOf(li);
    if (!ws->updated.test(bit)) {
        // First transactional write to this sub-page (Figure 4):
        //  1) check the current bit, 2) fetch the committed copy into the
        //  cache, 3) re-tag it to the "other" page (line-level CoW without
        //  a data copy in NVRAM), 4) apply the store, 5) flip the current
        //  bit and broadcast.  At sub-page granularity > 1 line, every
        //  line of the sub-page is copied and re-tagged together.
        ++stats_.firstWrites;
        const bool cur = e.current.test(bit);
        ssp_assert(cur == e.committed.test(bit),
                   "line not in write set but current != committed");
        const Ppn old_ppn = cur ? tr.ppn1 : tr.ppn0;
        const Ppn new_ppn = cur ? tr.ppn0 : tr.ppn1;
        // All lines of the sub-page live in old_ppn's page, so every
        // coherence event below shares one home tile under the mesh
        // directory; the flip itself is priced at the sub-page's first
        // line.
        const Addr flip_loc = lineAddr(old_ppn, bit * subPageLines_);
        CoreBitmap peer_mask;
        for (unsigned g = bit * subPageLines_;
             g < (bit + 1) * subPageLines_; ++g) {
            const Addr old_loc = lineAddr(old_ppn, g);
            const Addr new_loc = lineAddr(new_ppn, g);
            now = machine_.caches().read(core_, old_loc, now); // fetch
            machine_.mem().copyLine(new_loc, old_loc); // in-cache CoW
            machine_.caches().remapLine(core_, old_loc, new_loc, now);
            // Peer copies of the remapped-away line are stale: they tag
            // a physical location whose committed data just moved.  The
            // flip broadcast shoots them down so they can never be
            // written back to — or re-read at — the old PPN.
            peer_mask |=
                machine_.caches().invalidateLineRemote(core_, old_loc);
            // The copies must be dirty so commit writes the whole
            // sub-page to its new location.
            machine_.caches().write(core_, new_loc, now);
            machine_.caches().setTxBit(core_, new_loc, true);
        }
        mc_.flipCurrent(tr.slot, bit);
        now = machine_.coherence().flipCurrentBit(core_, flip_loc,
                                                  peer_mask, now);
        machine_.chargeShootdown(core_, flip_loc, peer_mask);
        ws->updated.set(bit);
    }

    const Addr loc = currentLineAddr(e, tr, li);
    machine_.mem().write(loc + lineOffset(vaddr), buf, size);
    now = machine_.caches().write(core_, loc, now);
    now += machine_.cfg().opCost;
    stats_.storeCycles += now - store_t0;
    ++stats_.atomicStores;
}

void
SspEngine::commit()
{
    ssp_assert(inTx_, "commit outside a failure-atomic section");
    Cycles &now = machine_.clock(core_);
    const Cycles commit_t0 = now;

    // Step 1 — data persistence: clwb every write-set line.  All flushes
    // issue at 'now'; the stall is the slowest completion (bank-level
    // parallelism).  Gather the locations first, then hand the whole
    // write set to the hierarchy in one batched call: the bus sees the
    // same write-backs in the same order as a per-line loop would issue.
    flushBatch_.clear();
    for (const auto &ws : writeSet_.entries()) {
        Translation tr{ws.slot, mc_.cache().entry(ws.slot).ppn0,
                       mc_.cache().entry(ws.slot).ppn1};
        const SspCacheEntry &e = mc_.cache().entry(ws.slot);
        for (unsigned li = 0; li < kLinesPerPage; ++li) {
            if (!ws.updated.test(bitOf(li)))
                continue;
            flushBatch_.push_back(currentLineAddr(e, tr, li));
        }
    }
    const Cycles flushed = machine_.caches().flushLines(
        core_, flushBatch_.data(), flushBatch_.size(), WriteCategory::Data,
        now);
    for (const Addr loc : flushBatch_)
        machine_.caches().setTxBit(core_, loc, false);

    // Step 2 — metadata updates: one metadata-update instruction per
    // modified page, ordered after data persistence.
    Cycles meta = flushed;
    for (const auto &ws : writeSet_.entries())
        meta = std::max(meta, mc_.metadataUpdate(tid_, ws.slot, ws.updated,
                                                 flushed));

    // Step 3 — commit marker + journal flush; the ack point.
    now = mc_.commitTx(tid_, meta);

    // Release per-page core references (the metadata update clears them
    // in hardware; we do it after the full commit sequence).
    for (const auto &ws : writeSet_.entries())
        mc_.coreDeref(ws.slot);

    stats_.commitCycles += now - commit_t0;
    ++stats_.commits;
    machine_.conflicts().commitTx(core_, now, machine_.minClock());
    writeSet_.clear();
    inTx_ = false;
}

void
SspEngine::abort()
{
    ssp_assert(inTx_, "abort outside a failure-atomic section");
    Cycles &now = machine_.clock(core_);

    for (const auto &ws : writeSet_.entries()) {
        SspCacheEntry &e = mc_.cache().entry(ws.slot);
        for (unsigned bit = 0; bit < kLinesPerPage / subPageLines_;
             ++bit) {
            if (!ws.updated.test(bit))
                continue;
            // Discard the speculative lines and flip the current bit
            // back to the committed side.
            const Ppn spec_ppn = e.current.test(bit) ? e.ppn1 : e.ppn0;
            for (unsigned g = bit * subPageLines_;
                 g < (bit + 1) * subPageLines_; ++g) {
                machine_.caches().invalidateLine(lineAddr(spec_ppn, g));
            }
            mc_.flipCurrent(ws.slot, bit);
            now = machine_.coherence().flipCurrentBit(
                core_, lineAddr(spec_ppn, bit * subPageLines_),
                CoreBitmap{}, now);
        }
        mc_.coreDeref(ws.slot);
    }
    ++stats_.aborts;
    machine_.conflicts().abortTx(core_);
    writeSet_.clear();
    inTx_ = false;
}

void
SspEngine::reset()
{
    machine_.conflicts().abortTx(core_);
    writeSet_.clear();
    inTx_ = false;
}

} // namespace ssp
