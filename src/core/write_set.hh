/**
 * @file
 * The write-set buffer (paper section 4.2).
 *
 * Storing the updated bitmap in the TLB would lose the write set when a
 * burst of non-transactional accesses evicts an in-transaction entry, so
 * SSP keeps the updated bitmaps in a small dedicated buffer: one entry
 * per page written by the ongoing transaction, each a 36-bit tag plus a
 * 64-bit bitmap (section 4.3 costs it at 800 bytes for 64 entries).
 */

#ifndef SSP_CORE_WRITE_SET_HH
#define SSP_CORE_WRITE_SET_HH

#include <cstdint>
#include <vector>

#include "common/bitmap64.hh"
#include "common/types.hh"

namespace ssp
{

/** One write-set buffer entry: a page touched by the ongoing tx. */
struct WriteSetEntry
{
    Vpn vpn = 0;
    SlotId slot = kInvalidSlot;
    Bitmap64 updated;
};

/** Bounded per-core write-set buffer. */
class WriteSetBuffer
{
  public:
    explicit WriteSetBuffer(unsigned capacity);

    /** Find the entry for @p vpn; nullptr when the page is untouched. */
    WriteSetEntry *find(Vpn vpn);

    /**
     * Add an entry for @p vpn.
     * @throws TxOverflow (via the caller) — returns nullptr when full;
     *         the engine translates that into the fall-back path.
     */
    WriteSetEntry *insert(Vpn vpn, SlotId slot);

    /** Entries of the ongoing transaction. */
    const std::vector<WriteSetEntry> &entries() const { return entries_; }

    /** Total lines marked updated across all entries. */
    unsigned totalLines() const;

    bool empty() const { return entries_.empty(); }
    unsigned size() const { return static_cast<unsigned>(entries_.size()); }
    unsigned capacity() const { return capacity_; }

    /** Commit/abort: forget everything. */
    void clear();

  private:
    unsigned capacity_;
    std::vector<WriteSetEntry> entries_;
};

} // namespace ssp

#endif // SSP_CORE_WRITE_SET_HH
