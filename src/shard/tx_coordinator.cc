#include "shard/tx_coordinator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ssp::shard
{

namespace
{

/** Installs a commit-control hook for one runOp; always uninstalls. */
class HookScope
{
  public:
    HookScope(Workload &w, TxControlHook &hook) : w_(w)
    {
        ssp_assert(w.txControl() == nullptr,
                   "nested commit-control hooks on one workload");
        w_.setTxControl(&hook);
    }
    ~HookScope() { w_.setTxControl(nullptr); }
    HookScope(const HookScope &) = delete;
    HookScope &operator=(const HookScope &) = delete;

  private:
    Workload &w_;
};

} // namespace

/**
 * Participant side of the prepare phase: validate against the shard's
 * own ConflictManager and persist inside the prepare window, or vote no
 * by aborting and throwing.  One-shot — a participant never retries
 * locally, because the coordinator holds its own branch open (and its
 * commit point fixed) for the whole prepare round; generating an honest
 * global abort beats stretching the prepare window with local loops.
 */
class ParticipantHook : public TxControlHook
{
  public:
    ParticipantHook(TxCoordinator &coord, unsigned peer)
        : coord_(coord), peer_(peer)
    {
    }

    void
    onExecuted(Workload &w, CoreId core) override
    {
        AtomicityBackend &be = w.backend();
        Machine &m = be.machine();
        if (!m.conflicts().validate(core, m.clock(core))) {
            be.abort(core);
            throw ShardTxAbort();
        }
        // Prepared: the backend commit here is the durable prepare
        // record, stamped at the commit point validate() just fixed —
        // a power failure from now on recovers to this outcome.
        be.commit(core);
        if (coord_.preparedHook_)
            coord_.preparedHook_(peer_);
    }

  private:
    TxCoordinator &coord_;
    unsigned peer_;
};

/**
 * Coordinator side: runs the full 2PC exchange from inside the home
 * operation's open transaction (see the header's phase walkthrough).
 */
class CoordinatorHook : public TxControlHook
{
  public:
    CoordinatorHook(TxCoordinator &coord, unsigned home, unsigned peer)
        : coord_(coord), home_(home), peer_(peer)
    {
    }

    void
    onExecuted(Workload &w, CoreId core) override
    {
        Cluster &cluster = coord_.cluster_;
        NetworkModel &net = cluster.network();
        AtomicityBackend &hbe = w.backend();
        Machine &hm = hbe.machine();

        // Phase 1a: home arbitration.  A coordinator that cannot commit
        // locally aborts before spending any network round.
        if (!hm.conflicts().validate(core, hm.clock(core))) {
            hbe.abort(core);
            throw ShardTxAbort();
        }

        // Phase 1b: PREPARE fans out at the home commit point just
        // fixed; the participant cannot start before the request lands.
        const Cycles t_send = hm.clock(core);
        ssp_assert(!hm.conflicts().enabled() ||
                       hm.conflicts().preparedAt(core) == t_send,
                   "prepare sent away from the fixed commit point");
        Machine &pm = cluster.machine(peer_);
        pm.clock(core) = std::max(
            pm.clock(core),
            t_send + net.messageCost(home_, peer_, kPrepareBytes));
        ++coord_.stats_.prepareRoundTrips;

        // Phase 2: the participant executes, validates and persists (or
        // votes no).  Its runOp returning means its branch committed
        // and its reference model updated; a no-vote unwinds past it.
        Experiment &pexp = cluster.shard(peer_);
        ParticipantHook participant(coord_, peer_);
        HookScope scope(*pexp.workload, participant);
        try {
            pexp.workload->runOp(core);
        } catch (const ShardTxAbort &) {
            // Presumed abort: the no-vote travels back, the coordinator
            // rolls back its own branch, and no decision message is
            // owed to an aborted participant.
            hm.clock(core) = std::max(
                hm.clock(core),
                pm.clock(core) + net.messageCost(peer_, home_,
                                                 kVoteBytes));
            hbe.abort(core);
            throw;
        }

        // Phase 3: the commit vote travels back while the coordinator
        // persists its own branch; the decision lands at whichever
        // finishes last.
        const Cycles t_vote =
            pm.clock(core) + net.messageCost(peer_, home_, kVoteBytes);
        hbe.commit(core);
        const Cycles t_local = hm.clock(core);
        const Cycles t_decide = std::max(t_local, t_vote);
        coord_.stats_.coordinatorStallCycles += t_decide - t_local;
        hm.clock(core) = t_decide;

        // COMMIT fans back; the participant is released once it lands.
        pm.clock(core) = std::max(
            pm.clock(core),
            t_decide + net.messageCost(home_, peer_, kDecisionBytes));
    }

  private:
    TxCoordinator &coord_;
    unsigned home_;
    unsigned peer_;
};

/**
 * @{ Logged 2PC mode (fault harness installed via setFaultHooks).
 *
 * The reliable-mode protocol above makes the participant's backend
 * commit the durable prepare record — safe on a perfect network, but
 * un-abortable once a coordinator crash forces presumed abort.  The
 * logged mode therefore moves the commit point: the participant's
 * prepare stays *volatile* (its branch is held open through the hook),
 * and the coordinator's backend commit plus a durable decision record
 * form the single commit point.  The two crash windows the FaultPlan
 * arms are exactly the ones this shape keeps consistent:
 *
 *  - ParticipantCrash (validated, vote never departs): nothing durable
 *    anywhere; the coordinator times out and presumes abort.
 *  - CoordinatorCrash (votes in, decision not yet durable): nothing
 *    durable anywhere; the participant drops its open branch, the
 *    coordinator recovers, and the participant re-queries the decision
 *    log (a priced round trip) instead of blocking.
 *
 * After the decision record persists, both branches commit in-frame, so
 * a decision can never be half-applied.
 */

/** Shared per-attempt state between the logged 2PC hooks. */
struct LoggedTxState
{
    bool homeCommitted = false;
    bool homeCrashed = false;
};

/**
 * Participant lost inside the prepare window: its vote never departs.
 * Internal — always converted to ShardTxAbort before leaving the
 * coordinator, after the vote timeout is charged.
 */
struct ParticipantLost
{
};

/** Participant side of the logged prepare phase (volatile prepare). */
class LoggedParticipantHook : public TxControlHook
{
  public:
    LoggedParticipantHook(TxCoordinator &coord, AtomicityBackend &hbe,
                          unsigned home, unsigned peer,
                          LoggedTxState &state)
        : coord_(coord), hbe_(hbe), home_(home), peer_(peer),
          state_(state)
    {
    }

    void
    onExecuted(Workload &w, CoreId core) override
    {
        TxFaultHooks &fh = *coord_.faultHooks_;
        AtomicityBackend &pbe = w.backend();
        Machine &pm = pbe.machine();
        if (!pm.conflicts().validate(core, pm.clock(core))) {
            pbe.abort(core);
            throw ShardTxAbort();
        }
        // Validated, commit point fixed — but the prepare is volatile:
        // the branch stays open until the decision, and nothing durable
        // exists on this shard yet.
        if (coord_.preparedHook_)
            coord_.preparedHook_(peer_);
        if (fh.participantCrashArmed(peer_)) {
            // The vote never departs: the machine dies, and the power
            // failure itself discards the open branch.
            fh.failParticipant(peer_, core);
            throw ParticipantLost();
        }
        const Cycles t_vote =
            pm.clock(core) + fh.sendReliable(peer_, home_, kVoteBytes);
        if (fh.coordinatorCrashArmed(home_)) {
            // The classic blocking window: the vote is in, the decision
            // record is not durable.  Presumed abort — drop the open
            // branch; the hook power-fails the coordinator, prices its
            // recovery, and prices this shard's decision-log query.
            state_.homeCrashed = true;
            pbe.abort(core);
            fh.failCoordinator(home_, peer_, core);
            throw ShardTxAbort();
        }
        // Decision: the home backend commit plus the durable decision
        // record form the single commit point, both on the home machine.
        Machine &hm = hbe_.machine();
        hbe_.commit(core);
        const Cycles t_local = hm.clock(core);
        const Cycles t_decide = std::max(t_local, t_vote);
        coord_.stats_.coordinatorStallCycles += t_decide - t_local;
        hm.clock(core) = t_decide + fh.persistDecision(home_, core);
        hm.clock(core) += fh.shipCommit(home_, core);
        state_.homeCommitted = true;
        // COMMIT fans back; the participant commits durably on receipt
        // (stamped at its prepare point) and ships its own records.
        pm.clock(core) = std::max(
            pm.clock(core),
            hm.clock(core) +
                fh.sendReliable(home_, peer_, kDecisionBytes));
        pbe.commit(core);
        pm.clock(core) += fh.shipCommit(peer_, core);
    }

  private:
    TxCoordinator &coord_;
    AtomicityBackend &hbe_;
    unsigned home_;
    unsigned peer_;
    LoggedTxState &state_;
};

/** Coordinator side of the logged mode. */
class LoggedCoordinatorHook : public TxControlHook
{
  public:
    LoggedCoordinatorHook(TxCoordinator &coord, unsigned home,
                          unsigned peer)
        : coord_(coord), home_(home), peer_(peer)
    {
    }

    void
    onExecuted(Workload &w, CoreId core) override
    {
        Cluster &cluster = coord_.cluster_;
        TxFaultHooks &fh = *coord_.faultHooks_;
        AtomicityBackend &hbe = w.backend();
        Machine &hm = hbe.machine();

        if (!hm.conflicts().validate(core, hm.clock(core))) {
            hbe.abort(core);
            throw ShardTxAbort();
        }

        const Cycles t_send = hm.clock(core);
        ssp_assert(!hm.conflicts().enabled() ||
                       hm.conflicts().preparedAt(core) == t_send,
                   "prepare sent away from the fixed commit point");
        Machine &pm = cluster.machine(peer_);
        pm.clock(core) = std::max(
            pm.clock(core),
            t_send + fh.sendReliable(home_, peer_, kPrepareBytes));
        ++coord_.stats_.prepareRoundTrips;

        Experiment &pexp = cluster.shard(peer_);
        LoggedTxState state;
        LoggedParticipantHook participant(coord_, hbe, home_, peer_,
                                          state);
        HookScope scope(*pexp.workload, participant);
        try {
            pexp.workload->runOp(core);
        } catch (const ParticipantLost &) {
            // Silent participant: wait out the vote timeout, presume
            // abort, roll back the home branch.
            hm.clock(core) += fh.voteTimeout();
            hbe.abort(core);
            throw ShardTxAbort();
        } catch (const ShardTxAbort &) {
            if (state.homeCrashed) {
                // The home machine failed and recovered inside the
                // window; its open branch died with it — nothing left
                // to abort here.
                throw;
            }
            // Participant voted no: price the no-vote, roll back.
            hm.clock(core) = std::max(
                hm.clock(core),
                pm.clock(core) +
                    fh.sendReliable(peer_, home_, kVoteBytes));
            hbe.abort(core);
            throw;
        }
        ssp_assert(state.homeCommitted,
                   "logged 2PC returned without a durable decision");
    }

  private:
    TxCoordinator &coord_;
    unsigned home_;
    unsigned peer_;
};

/** @} */

void
TxCoordinator::runSingleShard(unsigned home, CoreId core)
{
    cluster_.shard(home).workload->runOp(core);
    ++stats_.singleShardTxs;
}

void
TxCoordinator::tryCrossShard(unsigned home, unsigned peer, CoreId core)
{
    ssp_assert(home != peer, "cross-shard transaction with itself");
    ssp_assert(home < cluster_.machines() && peer < cluster_.machines(),
               "cross-shard transaction outside the cluster");
    Workload &hw = *cluster_.shard(home).workload;
    if (faultHooks_ != nullptr) {
        LoggedCoordinatorHook coordinator(*this, home, peer);
        HookScope scope(hw, coordinator);
        hw.runOp(core);
    } else {
        CoordinatorHook coordinator(*this, home, peer);
        HookScope scope(hw, coordinator);
        hw.runOp(core);
    }
    ++stats_.crossShardTxs;
}

void
TxCoordinator::runCrossShard(unsigned home, unsigned peer, CoreId core)
{
    Machine &hm = cluster_.machine(home);
    for (unsigned attempt = 1;; ++attempt) {
        try {
            tryCrossShard(home, peer, core);
            return;
        } catch (const ShardTxAbort &) {
            ++stats_.crossShardAborts;
            // Charged like a local conflict abort: penalty plus capped
            // exponential backoff on the coordinator core.  The retry
            // is a fresh client request (new draws), so a hot footprint
            // cannot pin one operation forever.
            hm.clock(core) +=
                hm.conflicts().retryPenalty(core, attempt);
            ssp_assert(attempt < 1000, "cross-shard retry livelock");
        }
    }
}

} // namespace ssp::shard
