/**
 * @file
 * Two-phase commit for cross-shard transactions.
 *
 * A cross-shard transaction is one client operation executed as a pair
 * of shard-local transactions — one on the coordinator's home shard,
 * one on a participant shard — committed atomically:
 *
 *   1. The home operation executes and validates against the home
 *      shard's ConflictManager (first-committer-wins, exactly the
 *      single-machine arbitration).  A home conflict aborts before any
 *      network round is spent.
 *   2. PREPARE fans out to the participant.  The participant executes
 *      its operation, validates against its own ConflictManager, and —
 *      on success — persists through its backend *inside the prepare
 *      window*: the backend commit is the durable prepare record, so a
 *      power failure after the vote recovers to the validated outcome.
 *      A participant conflict votes no; both branches roll back
 *      (presumed abort — no decision message is needed).
 *   3. The commit vote travels back while the coordinator persists its
 *      own branch; the decision lands at whichever finishes last (the
 *      difference is the coordinator stall), and the COMMIT decision
 *      fans back to the participant.
 *
 * Aborts are surfaced by throwing ShardTxAbort through both shards'
 * runOp frames after their backends rolled back — so neither workload's
 * host-side reference model sees the aborted attempt, and the retry is
 * a fresh client request.  Single-shard transactions never enter this
 * file's machinery: runSingleShard is a plain runOp with no hook
 * installed, cycle-identical to the single-machine path.
 *
 * Modeling note: the participant's prepare record is modeled as its
 * full backend commit (redo/undo/SSP publication), which is what makes
 * prepared state durable.  Coordinator failure between prepare and
 * decision — the classic 2PC blocking window — is observable via
 * setPreparedHook but an explicit coordinator-recovery log is future
 * work (see README).
 */

#ifndef SSP_SHARD_TX_COORDINATOR_HH
#define SSP_SHARD_TX_COORDINATOR_HH

#include <cstdint>
#include <exception>
#include <functional>

#include "shard/cluster.hh"
#include "workloads/workload.hh"

namespace ssp::shard
{

/**
 * Global abort of a cross-shard transaction: thrown after every open
 * branch rolled back through its backend, unwinding both runOp frames
 * before any reference model is updated.
 */
class ShardTxAbort : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "cross-shard transaction aborted";
    }
};

/** 2PC accounting across one cluster run. */
struct ShardTxStats
{
    std::uint64_t singleShardTxs = 0;   ///< fast-path commits
    std::uint64_t crossShardTxs = 0;    ///< 2PC commits
    std::uint64_t prepareRoundTrips = 0;///< prepare/vote rounds completed
    std::uint64_t crossShardAborts = 0; ///< global aborts (any shard)
    Cycles coordinatorStallCycles = 0;  ///< decision waits on the vote
};

/** Drives single- and cross-shard transactions over a Cluster. */
class TxCoordinator
{
  public:
    explicit TxCoordinator(Cluster &cluster) : cluster_(cluster) {}

    /**
     * Single-shard fast path: one plain runOp on @p home — no hook, no
     * network, no 2PC state; cycle-identical to the single-machine
     * driver dispatching the same operation.
     */
    void runSingleShard(unsigned home, CoreId core);

    /**
     * One cross-shard attempt: home operation on @p home, participant
     * operation on @p peer, committed via 2PC.  Throws ShardTxAbort on
     * a global abort (all branches already rolled back).
     */
    void tryCrossShard(unsigned home, unsigned peer, CoreId core);

    /**
     * Cross-shard transaction with retries: attempts until one commits,
     * charging the home core the conflict manager's abort penalty and
     * exponential backoff per failed attempt.  Each retry is a fresh
     * client request (new draws), so progress does not depend on the
     * conflicting footprint staying fixed.
     */
    void runCrossShard(unsigned home, unsigned peer, CoreId core);

    const ShardTxStats &stats() const { return stats_; }

    /**
     * Fault-injection hook (tests): invoked with the participant's
     * shard index immediately after its prepare record persisted,
     * before the vote returns — the window where a participant power
     * failure must recover to the validated outcome.
     */
    void
    setPreparedHook(std::function<void(unsigned peer)> hook)
    {
        preparedHook_ = std::move(hook);
    }

  private:
    friend class CoordinatorHook;
    friend class ParticipantHook;

    Cluster &cluster_;
    ShardTxStats stats_;
    std::function<void(unsigned peer)> preparedHook_;
};

} // namespace ssp::shard

#endif // SSP_SHARD_TX_COORDINATOR_HH
