/**
 * @file
 * Two-phase commit for cross-shard transactions.
 *
 * A cross-shard transaction is one client operation executed as a pair
 * of shard-local transactions — one on the coordinator's home shard,
 * one on a participant shard — committed atomically:
 *
 *   1. The home operation executes and validates against the home
 *      shard's ConflictManager (first-committer-wins, exactly the
 *      single-machine arbitration).  A home conflict aborts before any
 *      network round is spent.
 *   2. PREPARE fans out to the participant.  The participant executes
 *      its operation, validates against its own ConflictManager, and —
 *      on success — persists through its backend *inside the prepare
 *      window*: the backend commit is the durable prepare record, so a
 *      power failure after the vote recovers to the validated outcome.
 *      A participant conflict votes no; both branches roll back
 *      (presumed abort — no decision message is needed).
 *   3. The commit vote travels back while the coordinator persists its
 *      own branch; the decision lands at whichever finishes last (the
 *      difference is the coordinator stall), and the COMMIT decision
 *      fans back to the participant.
 *
 * Aborts are surfaced by throwing ShardTxAbort through both shards'
 * runOp frames after their backends rolled back — so neither workload's
 * host-side reference model sees the aborted attempt, and the retry is
 * a fresh client request.  Single-shard transactions never enter this
 * file's machinery: runSingleShard is a plain runOp with no hook
 * installed, cycle-identical to the single-machine path.
 *
 * Modeling note: in the default (reliable) mode the participant's
 * prepare record is modeled as its full backend commit (redo/undo/SSP
 * publication), which is what makes prepared state durable.  With fault
 * hooks installed (setFaultHooks) the protocol switches to the *logged*
 * mode: the participant's prepare stays volatile, the coordinator's own
 * backend commit plus a durable decision record (persistDecision) form
 * the single commit point, and messages travel over the unreliable
 * sendReliable path.  A coordinator crash between collecting votes and
 * persisting the decision — the classic 2PC blocking window — then
 * resolves by presumed abort: nothing is durable anywhere, the
 * participant drops its open branch, and on recovery it re-queries the
 * coordinator's decision log (a priced round trip) instead of blocking.
 */

#ifndef SSP_SHARD_TX_COORDINATOR_HH
#define SSP_SHARD_TX_COORDINATOR_HH

#include <cstdint>
#include <exception>
#include <functional>

#include "shard/cluster.hh"
#include "workloads/workload.hh"

namespace ssp::shard
{

/**
 * Global abort of a cross-shard transaction: thrown after every open
 * branch rolled back through its backend, unwinding both runOp frames
 * before any reference model is updated.
 */
class ShardTxAbort : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "cross-shard transaction aborted";
    }
};

/**
 * Fault-injection surface of the logged 2PC mode.  One implementation
 * (fault::FaultInjector) owns the cell's FaultPlan and the recovery
 * pricing; the coordinator only asks *whether* a window fault is armed
 * and delegates the machine failure itself.  All hooks are invoked
 * deterministically from the transaction's own execution order.
 */
class TxFaultHooks
{
  public:
    virtual ~TxFaultHooks() = default;

    /** Price one 2PC message over the unreliable network. */
    virtual Cycles sendReliable(unsigned src, unsigned dst,
                                std::uint64_t bytes) = 0;

    /** Cycles to append + flush the durable decision record on
     *  machine @p home's coordinator log. */
    virtual Cycles persistDecision(unsigned home, CoreId core) = 0;

    /** Cycles to synchronously ship one commit's log records to the
     *  backup of @p machine (0 when replication is off). */
    virtual Cycles shipCommit(unsigned machine, CoreId core) = 0;

    /** True if a CoordinatorCrash is armed for machine @p home. */
    virtual bool coordinatorCrashArmed(unsigned home) = 0;

    /** Fail the coordinator @p home inside the blocking window: power
     *  the machine down, price its recovery, and price @p peer's
     *  post-recovery decision-log query round trip. */
    virtual void failCoordinator(unsigned home, unsigned peer,
                                 CoreId core) = 0;

    /** True if a ParticipantCrash is armed for machine @p peer. */
    virtual bool participantCrashArmed(unsigned peer) = 0;

    /** Fail the participant @p peer before its vote departs. */
    virtual void failParticipant(unsigned peer, CoreId core) = 0;

    /** Cycles the coordinator waits before presuming a silent
     *  participant dead (the vote timeout). */
    virtual Cycles voteTimeout() = 0;
};

/** 2PC accounting across one cluster run. */
struct ShardTxStats
{
    std::uint64_t singleShardTxs = 0;   ///< fast-path commits
    std::uint64_t crossShardTxs = 0;    ///< 2PC commits
    std::uint64_t prepareRoundTrips = 0;///< prepare/vote rounds completed
    std::uint64_t crossShardAborts = 0; ///< global aborts (any shard)
    Cycles coordinatorStallCycles = 0;  ///< decision waits on the vote
};

/** Drives single- and cross-shard transactions over a Cluster. */
class TxCoordinator
{
  public:
    explicit TxCoordinator(Cluster &cluster) : cluster_(cluster) {}

    /**
     * Single-shard fast path: one plain runOp on @p home — no hook, no
     * network, no 2PC state; cycle-identical to the single-machine
     * driver dispatching the same operation.
     */
    void runSingleShard(unsigned home, CoreId core);

    /**
     * One cross-shard attempt: home operation on @p home, participant
     * operation on @p peer, committed via 2PC.  Throws ShardTxAbort on
     * a global abort (all branches already rolled back).
     */
    void tryCrossShard(unsigned home, unsigned peer, CoreId core);

    /**
     * Cross-shard transaction with retries: attempts until one commits,
     * charging the home core the conflict manager's abort penalty and
     * exponential backoff per failed attempt.  Each retry is a fresh
     * client request (new draws), so progress does not depend on the
     * conflicting footprint staying fixed.
     */
    void runCrossShard(unsigned home, unsigned peer, CoreId core);

    const ShardTxStats &stats() const { return stats_; }

    /**
     * Fault-injection hook (tests): invoked with the participant's
     * shard index immediately after its prepare record persisted,
     * before the vote returns — the window where a participant power
     * failure must recover to the validated outcome.
     */
    void
    setPreparedHook(std::function<void(unsigned peer)> hook)
    {
        preparedHook_ = std::move(hook);
    }

    /**
     * Switch cross-shard transactions to the logged fault mode (null
     * restores the default reliable protocol).  Installed by the fault
     * harness only — every non-fault cell runs with this unset, on the
     * byte-identical PR 9 code path.
     */
    void setFaultHooks(TxFaultHooks *hooks) { faultHooks_ = hooks; }

  private:
    friend class CoordinatorHook;
    friend class ParticipantHook;
    friend class LoggedCoordinatorHook;
    friend class LoggedParticipantHook;

    Cluster &cluster_;
    ShardTxStats stats_;
    std::function<void(unsigned peer)> preparedHook_;
    TxFaultHooks *faultHooks_ = nullptr;
};

} // namespace ssp::shard

#endif // SSP_SHARD_TX_COORDINATOR_HH
