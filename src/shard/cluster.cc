#include "shard/cluster.hh"

#include "common/logging.hh"

namespace ssp::shard
{

namespace
{

/** splitmix64 finalizer (same mixer the sweep seed derivation uses). */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Ordinal base separating shard workload streams from the sweep
 * machinery's other derived streams (cell ordinals are small, the
 * arrival stream uses 101 and the routing stream 211).
 */
constexpr std::uint64_t kShardSeedOrdinalBase = 7000;

} // namespace

std::uint64_t
Cluster::shardSeed(std::uint64_t base_seed, unsigned machine)
{
    if (machine == 0)
        return base_seed;
    return mix64(base_seed + 0x9e3779b97f4a7c15ull *
                                 (kShardSeedOrdinalBase + machine));
}

Cluster::Cluster(BackendKind backend_kind, WorkloadKind workload_kind,
                 const SspConfig &cfg, const WorkloadScale &scale,
                 unsigned machines, const NetworkParams &net)
    : net_(net)
{
    ssp_assert(machines >= 1, "a cluster needs at least one machine");
    shards_.reserve(machines);
    for (unsigned m = 0; m < machines; ++m) {
        WorkloadScale shard_scale = scale;
        shard_scale.seed = shardSeed(scale.seed, m);
        shards_.push_back(buildExperiment(backend_kind, workload_kind,
                                          cfg, shard_scale));
    }
}

unsigned
Cluster::shardOf(std::uint64_t key) const
{
    return static_cast<unsigned>(mix64(key) % shards_.size());
}

void
Cluster::powerFail(unsigned m)
{
    ssp_assert(m < shards_.size(), "powerFail on a machine outside the "
                                   "cluster");
    shards_[m].backend->crash();
    shards_[m].backend->recover();
}

} // namespace ssp::shard
