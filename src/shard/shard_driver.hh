/**
 * @file
 * The cluster driver: runs every shard's workload in bulk-synchronous
 * rounds (the per-machine generalization of the single-machine Rounds
 * scheduler) with a deterministic routing stream deciding, per
 * coordinator slot, whether the operation stays single-shard or becomes
 * a cross-shard 2PC transaction against a drawn peer shard.
 *
 * A 1-machine cluster delegates wholesale to runExperiment — literally
 * the same code path — so machines=1 results are cycle-identical to the
 * single-machine model by construction, not by reimplementation.
 */

#ifndef SSP_SHARD_SHARD_DRIVER_HH
#define SSP_SHARD_SHARD_DRIVER_HH

#include <cstdint>
#include <vector>

#include "shard/cluster.hh"
#include "shard/tx_coordinator.hh"
#include "sim/driver.hh"

namespace ssp::shard
{

/** Metrics of one cluster run. */
struct ShardRunResult
{
    /**
     * Cluster-wide rollup: counters are sums across shards, cycles is
     * the slowest shard's wall clock, per-core vectors sum the same
     * core index across machines, and the write-set averages are
     * per-shard means (max of maxima).
     */
    RunResult aggregate;
    /** Per-shard deltas, index = shard. */
    std::vector<RunResult> shards;
    /** 2PC accounting; all zero for a 1-machine cluster. */
    ShardTxStats tx;
    /** Cross-machine messages priced by the NetworkModel. */
    std::uint64_t networkMessages = 0;
    /** Cycles those messages charged to core clocks. */
    Cycles networkCycles = 0;
};

/**
 * Fault-harness surface of the cluster driver.  One implementation
 * (fault::FaultInjector) owns the cell's FaultPlan; the driver only
 * gives it deterministic injection points: the top of every coordinator
 * slot (where scheduled power-fails fire and window faults arm), the
 * log-ship charge after every single-shard commit, and the end of the
 * run (verification + delta accounting).
 */
class ClusterFaultDriver
{
  public:
    virtual ~ClusterFaultDriver() = default;

    /** The TxFaultHooks to install on the coordinator. */
    virtual TxFaultHooks *txHooks() = 0;

    /** Called at the top of every coordinator slot, before any
     *  operation of the slot runs. */
    virtual void atSlotStart() = 0;

    /** Cycles to ship one single-shard commit's log records to
     *  @p machine's backup (0 when replication is off). */
    virtual Cycles shipCommit(unsigned machine, CoreId core) = 0;

    /** Called after the final barrier, before metrics are cut. */
    virtual void atRunEnd() = 0;
};

/**
 * Run @p txs_per_shard coordinator operations per shard across
 * @p num_cores cores per machine.  Each slot becomes a cross-shard
 * transaction with probability @p cross_shard_fraction (peer drawn
 * uniformly from the other shards); the routing stream is seeded by
 * @p route_seed, independent of every workload stream.  With one
 * machine the call is exactly runExperiment on shard 0.
 *
 * @p faults, when non-null, arms the fault harness: scheduled machine
 * failures fire at slot boundaries, 2PC runs in the logged mode, and
 * commits are log-shipped when replication is on.  A 1-machine cluster
 * with faults armed runs the general loop (so failures can fire), not
 * the runExperiment delegate.
 */
ShardRunResult runClusterExperiment(Cluster &cluster,
                                    std::uint64_t txs_per_shard,
                                    unsigned num_cores,
                                    double cross_shard_fraction,
                                    std::uint64_t route_seed,
                                    ClusterFaultDriver *faults = nullptr);

} // namespace ssp::shard

#endif // SSP_SHARD_SHARD_DRIVER_HH
