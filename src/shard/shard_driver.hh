/**
 * @file
 * The cluster driver: runs every shard's workload in bulk-synchronous
 * rounds (the per-machine generalization of the single-machine Rounds
 * scheduler) with a deterministic routing stream deciding, per
 * coordinator slot, whether the operation stays single-shard or becomes
 * a cross-shard 2PC transaction against a drawn peer shard.
 *
 * A 1-machine cluster delegates wholesale to runExperiment — literally
 * the same code path — so machines=1 results are cycle-identical to the
 * single-machine model by construction, not by reimplementation.
 */

#ifndef SSP_SHARD_SHARD_DRIVER_HH
#define SSP_SHARD_SHARD_DRIVER_HH

#include <cstdint>
#include <vector>

#include "shard/cluster.hh"
#include "shard/tx_coordinator.hh"
#include "sim/driver.hh"

namespace ssp::shard
{

/** Metrics of one cluster run. */
struct ShardRunResult
{
    /**
     * Cluster-wide rollup: counters are sums across shards, cycles is
     * the slowest shard's wall clock, per-core vectors sum the same
     * core index across machines, and the write-set averages are
     * per-shard means (max of maxima).
     */
    RunResult aggregate;
    /** Per-shard deltas, index = shard. */
    std::vector<RunResult> shards;
    /** 2PC accounting; all zero for a 1-machine cluster. */
    ShardTxStats tx;
    /** Cross-machine messages priced by the NetworkModel. */
    std::uint64_t networkMessages = 0;
    /** Cycles those messages charged to core clocks. */
    Cycles networkCycles = 0;
};

/**
 * Run @p txs_per_shard coordinator operations per shard across
 * @p num_cores cores per machine.  Each slot becomes a cross-shard
 * transaction with probability @p cross_shard_fraction (peer drawn
 * uniformly from the other shards); the routing stream is seeded by
 * @p route_seed, independent of every workload stream.  With one
 * machine the call is exactly runExperiment on shard 0.
 */
ShardRunResult runClusterExperiment(Cluster &cluster,
                                    std::uint64_t txs_per_shard,
                                    unsigned num_cores,
                                    double cross_shard_fraction,
                                    std::uint64_t route_seed);

} // namespace ssp::shard

#endif // SSP_SHARD_SHARD_DRIVER_HH
