/**
 * @file
 * Deterministic network cost model for the sharded cluster.
 *
 * Every cross-machine message is priced as one RPC: a fixed network
 * round-half latency (propagation + switching + kernel/NIC handoff),
 * a serialization charge (marshalling the request into wire format),
 * and a bandwidth term proportional to the payload.  Same-machine
 * messages are free and uncounted — a coordinator talking to a local
 * participant is a function call, which is what makes the single-shard
 * fast path cycle-identical to the single-machine model.
 */

#ifndef SSP_SHARD_NETWORK_HH
#define SSP_SHARD_NETWORK_HH

#include <cstdint>

#include "common/types.hh"

namespace ssp::shard
{

/** Cost knobs of the cluster interconnect (datacenter-class defaults). */
struct NetworkParams
{
    /**
     * One-way message latency in core cycles.  ~2.3 us at the simulated
     * core frequency — a kernel-bypass RPC fabric, not loopback.
     */
    Cycles rpcLatency = 5000;
    /** Serialization/deserialization CPU cost per message. */
    Cycles serialization = 200;
    /** Wire bandwidth as payload bytes moved per core cycle. */
    std::uint64_t bytesPerCycle = 16;
};

/** Wire sizes of the 2PC messages (header + footprint summary). */
inline constexpr std::uint64_t kPrepareBytes = 256;
inline constexpr std::uint64_t kVoteBytes = 64;
inline constexpr std::uint64_t kDecisionBytes = 64;

/**
 * Prices messages between machines and accounts the traffic.  Purely
 * deterministic: cost depends only on (src == dst, payload size).
 */
class NetworkModel
{
  public:
    explicit NetworkModel(const NetworkParams &params = {})
        : params_(params)
    {
    }

    /**
     * Cycles one message of @p bytes payload takes from machine @p src
     * to machine @p dst.  Same-machine messages cost nothing and are
     * not counted.
     */
    Cycles
    messageCost(unsigned src, unsigned dst, std::uint64_t bytes)
    {
        if (src == dst)
            return 0;
        const Cycles wire =
            (bytes + params_.bytesPerCycle - 1) / params_.bytesPerCycle;
        const Cycles cost = params_.rpcLatency + params_.serialization +
                            wire;
        ++messages_;
        cycles_ += cost;
        return cost;
    }

    const NetworkParams &params() const { return params_; }

    /** Cross-machine messages priced so far. */
    std::uint64_t messages() const { return messages_; }

    /** Total cycles charged for those messages. */
    Cycles cyclesCharged() const { return cycles_; }

  private:
    NetworkParams params_;
    std::uint64_t messages_ = 0;
    Cycles cycles_ = 0;
};

} // namespace ssp::shard

#endif // SSP_SHARD_NETWORK_HH
