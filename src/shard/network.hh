/**
 * @file
 * Deterministic network cost model for the sharded cluster.
 *
 * Every cross-machine message is priced as one RPC: a fixed network
 * round-half latency (propagation + switching + kernel/NIC handoff),
 * a serialization charge (marshalling the request into wire format),
 * and a bandwidth term proportional to the payload.  Same-machine
 * messages are free and uncounted — a coordinator talking to a local
 * participant is a function call, which is what makes the single-shard
 * fast path cycle-identical to the single-machine model.
 */

#ifndef SSP_SHARD_NETWORK_HH
#define SSP_SHARD_NETWORK_HH

#include <algorithm>
#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"

namespace ssp::shard
{

/** Cost knobs of the cluster interconnect (datacenter-class defaults). */
struct NetworkParams
{
    /**
     * One-way message latency in core cycles.  ~2.3 us at the simulated
     * core frequency — a kernel-bypass RPC fabric, not loopback.
     */
    Cycles rpcLatency = 5000;
    /** Serialization/deserialization CPU cost per message. */
    Cycles serialization = 200;
    /** Wire bandwidth as payload bytes moved per core cycle. */
    std::uint64_t bytesPerCycle = 16;
};

/** Wire sizes of the 2PC messages (header + footprint summary). */
inline constexpr std::uint64_t kPrepareBytes = 256;
inline constexpr std::uint64_t kVoteBytes = 64;
inline constexpr std::uint64_t kDecisionBytes = 64;

/**
 * Unreliability knobs for the fault harness.  All zero (the default)
 * means every message is delivered exactly once at messageCost — the
 * reliable fabric every non-fault grid prices.
 */
struct NetworkFaultParams
{
    /** Per-transmission drop probability. */
    double lossRate = 0;
    /** Per-delivery probability of an extra queueing delay. */
    double delayRate = 0;
    /** Extra delay bound: delayed messages add a uniform draw from
     *  [1, maxExtraDelay] cycles on top of messageCost. */
    Cycles maxExtraDelay = 2500;
    /** Sender timeout before the first resend (4x the one-way
     *  latency); backoff doubles it per retry, capped at 8x. */
    Cycles timeout = 20000;
    /** Forced delivery after this many drops of one message — the
     *  model's way of saying retransmission eventually wins. */
    unsigned maxRetries = 16;
};

/**
 * Prices messages between machines and accounts the traffic.  Purely
 * deterministic: cost depends only on (src == dst, payload size) — and,
 * in fault mode, on the position in the cell's private fault stream,
 * which is itself a pure function of the cell seed.
 */
class NetworkModel
{
  public:
    explicit NetworkModel(const NetworkParams &params = {})
        : params_(params)
    {
    }

    /**
     * Arm the unreliable-network mode: sendReliable() starts drawing
     * loss/delay from a stream seeded by @p seed.  Never called on
     * non-fault cells, so their draws (none) and costs are untouched.
     */
    void
    enableFaults(const NetworkFaultParams &faults, std::uint64_t seed)
    {
        faults_ = faults;
        faultRng_ = Rng(seed);
        faultsEnabled_ = faults.lossRate > 0 || faults.delayRate > 0;
    }

    /**
     * Cycles one message of @p bytes payload takes from machine @p src
     * to machine @p dst.  Same-machine messages cost nothing and are
     * not counted.
     */
    Cycles
    messageCost(unsigned src, unsigned dst, std::uint64_t bytes)
    {
        if (src == dst)
            return 0;
        const Cycles wire =
            (bytes + params_.bytesPerCycle - 1) / params_.bytesPerCycle;
        const Cycles cost = params_.rpcLatency + params_.serialization +
                            wire;
        ++messages_;
        cycles_ += cost;
        return cost;
    }

    /**
     * Cycles until one message of @p bytes payload is *acknowledged as
     * delivered* from @p src to @p dst under the armed fault model:
     * each transmission may be dropped (the sender times out with
     * capped exponential backoff and resends) or delayed.  With faults
     * disabled — or at loss/delay rate 0 — this is exactly
     * messageCost(), with no RNG draws, so non-fault cells are
     * byte-identical by construction.
     */
    Cycles
    sendReliable(unsigned src, unsigned dst, std::uint64_t bytes)
    {
        if (src == dst)
            return 0;
        if (!faultsEnabled_)
            return messageCost(src, dst, bytes);
        Cycles total = 0;
        for (unsigned attempt = 0;; ++attempt) {
            const double u = faultRng_.nextDouble();
            if (u < faults_.lossRate && attempt < faults_.maxRetries) {
                // Dropped: the sender waits out its timeout (doubled
                // per retry, capped at 8x) and retransmits.
                const Cycles wait = faults_.timeout
                                    << std::min(attempt, 3u);
                total += wait;
                timeoutStall_ += wait;
                ++lost_;
                ++retries_;
                continue;
            }
            total += messageCost(src, dst, bytes);
            if (u >= faults_.lossRate &&
                u < faults_.lossRate + faults_.delayRate &&
                faults_.maxExtraDelay > 0) {
                total += 1 + faultRng_.nextBounded(faults_.maxExtraDelay);
            }
            return total;
        }
    }

    const NetworkParams &params() const { return params_; }

    /** Cross-machine messages priced so far. */
    std::uint64_t messages() const { return messages_; }

    /** Total cycles charged for those messages. */
    Cycles cyclesCharged() const { return cycles_; }

    /** Transmissions dropped by the armed fault model. */
    std::uint64_t messagesLost() const { return lost_; }

    /** Retransmissions after a sender timeout. */
    std::uint64_t rpcRetries() const { return retries_; }

    /** Total sender cycles spent waiting out timeouts. */
    Cycles timeoutStallCycles() const { return timeoutStall_; }

  private:
    NetworkParams params_;
    std::uint64_t messages_ = 0;
    Cycles cycles_ = 0;
    bool faultsEnabled_ = false;
    NetworkFaultParams faults_{};
    Rng faultRng_{0};
    std::uint64_t lost_ = 0;
    std::uint64_t retries_ = 0;
    Cycles timeoutStall_ = 0;
};

} // namespace ssp::shard

#endif // SSP_SHARD_NETWORK_HH
