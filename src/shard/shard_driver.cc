#include "shard/shard_driver.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ssp::shard
{

namespace
{

/** Roll the per-shard results into the cluster-wide aggregate. */
RunResult
aggregateShards(const std::vector<RunResult> &shards, unsigned num_cores)
{
    RunResult agg;
    agg.backend = shards[0].backend;
    agg.workload = shards[0].workload;
    agg.coreBusyCycles.assign(num_cores, 0);
    agg.coreTxs.assign(num_cores, 0);
    for (const RunResult &s : shards) {
        agg.committedTxs += s.committedTxs;
        agg.cycles = std::max(agg.cycles, s.cycles);
        agg.nvramWrites += s.nvramWrites;
        agg.loggingWrites += s.loggingWrites;
        agg.dataWrites += s.dataWrites;
        agg.consolidationWrites += s.consolidationWrites;
        agg.checkpointWrites += s.checkpointWrites;
        agg.journalWrites += s.journalWrites;
        agg.coherenceFlips += s.coherenceFlips;
        agg.coherenceInvalidations += s.coherenceInvalidations;
        agg.coherenceShootdowns += s.coherenceShootdowns;
        agg.coherenceMessages += s.coherenceMessages;
        agg.directoryLookups += s.directoryLookups;
        agg.hopTraversalCycles += s.hopTraversalCycles;
        agg.snoopFilterEvictions += s.snoopFilterEvictions;
        agg.backInvalidations += s.backInvalidations;
        agg.txAborts += s.txAborts;
        agg.txRetries += s.txRetries;
        agg.conflictsWriteWrite += s.conflictsWriteWrite;
        agg.conflictsReadWrite += s.conflictsReadWrite;
        agg.backoffCycles += s.backoffCycles;
        agg.avgLinesPerTx += s.avgLinesPerTx;
        agg.avgPagesPerTx += s.avgPagesPerTx;
        agg.maxPagesPerTx = std::max(agg.maxPagesPerTx, s.maxPagesPerTx);
        for (unsigned c = 0; c < num_cores; ++c) {
            agg.coreBusyCycles[c] += s.coreBusyCycles[c];
            agg.coreTxs[c] += s.coreTxs[c];
        }
    }
    agg.avgLinesPerTx /= static_cast<double>(shards.size());
    agg.avgPagesPerTx /= static_cast<double>(shards.size());
    return agg;
}

} // namespace

ShardRunResult
runClusterExperiment(Cluster &cluster, std::uint64_t txs_per_shard,
                     unsigned num_cores, double cross_shard_fraction,
                     std::uint64_t route_seed, ClusterFaultDriver *faults)
{
    ShardRunResult res;
    const unsigned machines = cluster.machines();
    if (machines == 1 && faults == nullptr) {
        // The 1-machine cluster IS the single-machine model: same
        // driver, same barriers, same clocks — cycle-identical by
        // construction.  No 2PC state exists to report.
        res.shards.push_back(
            runExperiment(cluster.shard(0), txs_per_shard, num_cores));
        res.aggregate = res.shards[0];
        return res;
    }

    for (unsigned m = 0; m < machines; ++m) {
        Machine &machine = cluster.machine(m);
        ssp_assert(num_cores >= 1 &&
                       num_cores <= machine.cfg().numCores,
                   "cluster run uses more cores than a machine has");
        machine.syncClocks();
    }
    std::vector<RunBaseline> base;
    base.reserve(machines);
    for (unsigned m = 0; m < machines; ++m)
        base.push_back(captureRunBaseline(cluster.shard(m)));

    std::vector<std::vector<std::uint64_t>> busy(
        machines, std::vector<std::uint64_t>(num_cores, 0));
    std::vector<std::vector<std::uint64_t>> ops(
        machines, std::vector<std::uint64_t>(num_cores, 0));

    TxCoordinator coord(cluster);
    if (faults != nullptr)
        coord.setFaultHooks(faults->txHooks());
    Rng route(route_seed);
    for (std::uint64_t i = 0; i < txs_per_shard; ++i) {
        const CoreId core = static_cast<CoreId>(i % num_cores);
        // Scheduled faults fire between slots: a machine whose clock
        // crossed its next fault cycle power-fails here, and window
        // faults (coordinator/participant crash) arm for the slot.
        if (faults != nullptr)
            faults->atSlotStart();
        for (unsigned m = 0; m < machines; ++m) {
            const bool cross = machines > 1 && cross_shard_fraction > 0 &&
                               route.nextBool(cross_shard_fraction);
            const Cycles home_start = cluster.machine(m).clock(core);
            if (!cross) {
                coord.runSingleShard(m, core);
                // Replication ships every commit synchronously; the
                // committing core waits for the backup's ack.
                if (faults != nullptr) {
                    cluster.machine(m).clock(core) +=
                        faults->shipCommit(m, core);
                }
            } else {
                // The client's next request touches a key owned by one
                // of the other shards, uniform under the hash
                // partition.
                const unsigned peer =
                    (m + 1 +
                     static_cast<unsigned>(route.nextBounded(
                         machines - 1))) %
                    machines;
                const Cycles peer_start =
                    cluster.machine(peer).clock(core);
                coord.runCrossShard(m, peer, core);
                busy[peer][core] +=
                    cluster.machine(peer).clock(core) - peer_start;
                ++ops[peer][core];
            }
            busy[m][core] +=
                cluster.machine(m).clock(core) - home_start;
            ++ops[m][core];
        }
        // Bulk-synchronous rounds, per machine: re-align each machine's
        // core clocks after every round-robin cycle, exactly as the
        // single-machine Rounds scheduler does.  Machines never share a
        // barrier — clusters have no global clock; cross-machine waits
        // are priced explicitly by the network model.
        if (num_cores > 1 && core == num_cores - 1) {
            for (unsigned m = 0; m < machines; ++m)
                cluster.machine(m).syncClocks();
        }
    }
    for (unsigned m = 0; m < machines; ++m) {
        // Final (possibly partial) round ends on the same barrier every
        // full round ends on.
        if (num_cores > 1)
            cluster.machine(m).syncClocks();
    }
    if (faults != nullptr)
        faults->atRunEnd();

    res.shards.resize(machines);
    for (unsigned m = 0; m < machines; ++m) {
        RunResult &r = res.shards[m];
        r.coreBusyCycles = std::move(busy[m]);
        r.coreTxs = std::move(ops[m]);
        finishRunMetrics(r, cluster.shard(m), base[m]);
    }
    res.aggregate = aggregateShards(res.shards, num_cores);
    res.tx = coord.stats();
    res.networkMessages = cluster.network().messages();
    res.networkCycles = cluster.network().cyclesCharged();
    return res;
}

} // namespace ssp::shard
