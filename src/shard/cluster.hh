/**
 * @file
 * A cluster of independent Machine instances with a hash-partitioned
 * keyspace — the multi-machine scale axis on top of the single-machine
 * simulator.
 *
 * Each shard is a complete Experiment (machine + backend + allocator +
 * workload) with its own deterministic workload stream: shard 0 keeps
 * the cell's seed unchanged, so a 1-machine cluster replays the
 * single-machine cell bit for bit, and every further shard derives its
 * seed from the cell seed and its shard index.  Shards share nothing
 * but the NetworkModel; cross-shard atomicity is layered on by the
 * TxCoordinator (tx_coordinator.hh).
 */

#ifndef SSP_SHARD_CLUSTER_HH
#define SSP_SHARD_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "shard/network.hh"
#include "sim/system_builder.hh"

namespace ssp::shard
{

/** M independent machines with hash-partitioned key ownership. */
class Cluster
{
  public:
    /**
     * Build @p machines shards, each a full Experiment of
     * (@p backend_kind, @p workload_kind) on its own copy of @p cfg.
     * @p scale seeds shard 0 verbatim; shard m > 0 runs with
     * shardSeed(scale.seed, m) so no two shards replay the same stream.
     */
    Cluster(BackendKind backend_kind, WorkloadKind workload_kind,
            const SspConfig &cfg, const WorkloadScale &scale,
            unsigned machines, const NetworkParams &net = {});

    unsigned machines() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    Experiment &shard(unsigned m) { return shards_[m]; }
    const Experiment &shard(unsigned m) const { return shards_[m]; }

    Machine &machine(unsigned m) { return shards_[m].backend->machine(); }

    NetworkModel &network() { return net_; }
    const NetworkModel &network() const { return net_; }

    /** Home machine of @p key under the hash partition. */
    unsigned shardOf(std::uint64_t key) const;

    /**
     * Power-fail shard @p m: its machine loses all volatile state and
     * its backend runs recovery, while every peer shard keeps serving
     * untouched.  Committed (and 2PC-prepared, which on a participant
     * is durably persisted) state survives; anything in flight on the
     * failed shard is lost.
     */
    void powerFail(unsigned m);

    /**
     * Deterministic per-shard seed: shard 0 keeps @p base_seed (the
     * 1-machine identity), shard m derives a splitmix64-mixed stream
     * disjoint from the sweep machinery's cell/arrival/route ordinals.
     */
    static std::uint64_t shardSeed(std::uint64_t base_seed,
                                   unsigned machine);

  private:
    std::vector<Experiment> shards_;
    NetworkModel net_;
};

} // namespace ssp::shard

#endif // SSP_SHARD_CLUSTER_HH
