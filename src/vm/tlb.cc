#include "vm/tlb.hh"

#include "common/logging.hh"

namespace ssp
{

Tlb::Tlb(unsigned num_entries) : capacity_(num_entries)
{
    ssp_assert(num_entries > 0);
    entries_.resize(num_entries);
}

TlbEntry *
Tlb::lookup(Vpn vpn)
{
    // One-entry lookup cache: accesses cluster on a page (a structure
    // node spans a few lines), so most lookups re-translate the last
    // vpn.  entries_ never reallocates, so the index stays valid; the
    // slot's contents are re-checked, so eviction/flush need no hook.
    TlbEntry &last = entries_[lastIdx_];
    if (last.valid && last.vpn == vpn) {
        last.lru = ++lruClock_;
        ++hits_;
        return &last;
    }
    for (auto &entry : entries_) {
        if (entry.valid && entry.vpn == vpn) {
            entry.lru = ++lruClock_;
            ++hits_;
            lastIdx_ = static_cast<unsigned>(&entry - entries_.data());
            return &entry;
        }
    }
    return nullptr;
}

std::optional<TlbEntry>
Tlb::insert(const TlbEntry &entry)
{
    ssp_assert(entry.valid, "inserting invalid TLB entry");
    // Reuse an invalid slot if one exists.
    TlbEntry *victim = nullptr;
    for (auto &slot : entries_) {
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (victim == nullptr || slot.lru < victim->lru)
            victim = &slot;
    }
    std::optional<TlbEntry> displaced;
    if (victim->valid) {
        ++evictions_;
        displaced = *victim;
    }
    *victim = entry;
    victim->lru = ++lruClock_;
    return displaced;
}

std::optional<TlbEntry>
Tlb::evict(Vpn vpn)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.vpn == vpn) {
            TlbEntry out = entry;
            entry.valid = false;
            return out;
        }
    }
    return std::nullopt;
}

std::vector<TlbEntry>
Tlb::validEntries() const
{
    std::vector<TlbEntry> out;
    // One allocation, sized by the worst case: flush paths call this
    // on every transaction commit, and repeated push_back growth was
    // avoidable churn in the crash tests.
    out.reserve(capacity_);
    for (const auto &entry : entries_) {
        if (entry.valid)
            out.push_back(entry);
    }
    return out;
}

void
Tlb::flushAll()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace ssp
