/**
 * @file
 * The extended data TLB.
 *
 * Paper section 4.1.1: each TLB entry is widened to also cache the second
 * physical page number (PPN1) and the per-page current bitmap fetched
 * from the memory controller's SSP cache.  The updated bitmap lives in a
 * separate write-set buffer (section 4.2), so a burst of non-transactional
 * accesses can evict in-transaction pages from the TLB without losing the
 * write set.
 *
 * The simulator keeps the *authoritative* current bitmap inside the SSP
 * cache entry (all TLBs and the controller see one value, kept coherent
 * in hardware by the flip-current-bit broadcast, section 4.1.1); the TLB
 * entry carries the slot reference.  The TLB's job here is reach/timing:
 * hits are free, misses cost a page walk plus an SSP-cache fetch, and
 * evictions decrement the controller's TLB reference count, which is the
 * trigger for page consolidation.
 */

#ifndef SSP_VM_TLB_HH
#define SSP_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitmap64.hh"
#include "common/types.hh"

namespace ssp
{

/** One extended TLB entry. */
struct TlbEntry
{
    bool valid = false;
    Vpn vpn = 0;
    /** Original physical page. */
    Ppn ppn0 = kInvalidPpn;
    /** Second (shadow) physical page; kInvalidPpn for non-SSP backends. */
    Ppn ppn1 = kInvalidPpn;
    /** SSP cache slot this entry references; kInvalidSlot for non-SSP. */
    SlotId slot = kInvalidSlot;
    /** LRU timestamp. */
    std::uint64_t lru = 0;
};

/**
 * Fully-associative, true-LRU TLB (64 entries in Table 2).
 *
 * The caller (the engine) performs the fill on a miss and passes the
 * fetched metadata to insert(); insert() reports the displaced victim so
 * the controller's TLB reference count can be maintained.
 */
class Tlb
{
  public:
    explicit Tlb(unsigned num_entries);

    /** Look up @p vpn; updates LRU on hit. */
    TlbEntry *lookup(Vpn vpn);

    /**
     * Insert a new translation, evicting the LRU entry if full.
     * @return The displaced valid entry, if any.
     */
    std::optional<TlbEntry> insert(const TlbEntry &entry);

    /**
     * Remove @p vpn from the TLB (shootdown), returning the entry if it
     * was present.
     */
    std::optional<TlbEntry> evict(Vpn vpn);

    /** All valid entries, in no particular order (for flush paths). */
    std::vector<TlbEntry> validEntries() const;

    /** Drop everything (power failure / full shootdown). */
    void flushAll();

    unsigned capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Record a miss (the engine calls this when lookup() fails). */
    void countMiss() { ++misses_; }

  private:
    unsigned capacity_;
    std::vector<TlbEntry> entries_;
    /** Slot of the most recent hit (lookup cache; always re-checked). */
    unsigned lastIdx_ = 0;
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace ssp

#endif // SSP_VM_TLB_HH
