#include "vm/page_table.hh"

#include "common/logging.hh"

namespace ssp
{

void
PageTable::map(Vpn vpn, Ppn ppn)
{
    map_[vpn] = ppn;
}

bool
PageTable::unmap(Vpn vpn)
{
    return map_.erase(vpn) > 0;
}

bool
PageTable::isMapped(Vpn vpn) const
{
    return map_.contains(vpn);
}

Ppn
PageTable::translate(Vpn vpn) const
{
    auto it = map_.find(vpn);
    ssp_assert(it != map_.end(), "translate of unmapped vpn %llx",
               static_cast<unsigned long long>(vpn));
    return it->second;
}

} // namespace ssp
