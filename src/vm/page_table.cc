#include "vm/page_table.hh"

#include "common/logging.hh"

namespace ssp
{

PageTable::PageTable(Cycles walk_cycles, std::uint64_t dense_pages)
    : walkCycles_(walk_cycles), densePages_(dense_pages)
{
    if (densePages_ > 0) {
        dense_.reset(static_cast<std::uint64_t *>(
            std::calloc(densePages_, sizeof(std::uint64_t))));
        ssp_assert(dense_ != nullptr);
    }
}

void
PageTable::map(Vpn vpn, Ppn ppn)
{
    ssp_assert(ppn != kInvalidPpn);
    if (vpn < densePages_) {
        if (relaxedLoad(dense_[vpn]) == 0)
            ++size_;
        relaxedStore(dense_[vpn], ppn + 1);
        return;
    }
    size_ += overflow_.contains(vpn) ? 0 : 1;
    overflow_[vpn] = ppn;
}

bool
PageTable::unmap(Vpn vpn)
{
    if (vpn < densePages_) {
        if (relaxedLoad(dense_[vpn]) == 0)
            return false;
        relaxedStore(dense_[vpn], 0);
        --size_;
        return true;
    }
    if (overflow_.erase(vpn) == 0)
        return false;
    --size_;
    return true;
}

bool
PageTable::isMapped(Vpn vpn) const
{
    if (vpn < densePages_)
        return relaxedLoad(dense_[vpn]) != 0;
    return overflow_.contains(vpn);
}

Ppn
PageTable::translate(Vpn vpn) const
{
    if (vpn < densePages_) {
        const std::uint64_t e = relaxedLoad(dense_[vpn]);
        ssp_assert(e != 0, "translate of unmapped vpn %llx",
                   static_cast<unsigned long long>(vpn));
        return e - 1;
    }
    auto it = overflow_.find(vpn);
    ssp_assert(it != overflow_.end(), "translate of unmapped vpn %llx",
               static_cast<unsigned long long>(vpn));
    return it->second;
}

} // namespace ssp
