/**
 * @file
 * Virtual-to-physical mapping table.
 *
 * Models the OS page table for the persistent heap.  The table itself is
 * durably stored (in NVRAM) as in any persistent-memory system; SSP's
 * page consolidation updates a mapping when it migrates a page's valid
 * data into what used to be the shadow page (paper section 3.4).  Crash
 * consistency of those updates comes from the metadata journal: recovery
 * re-derives the mapping of every *active* page from the SSP cache, so
 * the page-table update itself does not need to be ordered.
 *
 * Storage is a flat, calloc-backed dense array over the first
 * @p dense_pages VPNs (entries store ppn+1, so the all-zero reset state
 * means "unmapped") with an unordered_map spilling any VPN beyond it.
 * The machine sizes the dense range to cover the identity-mapped
 * persistent heap, so every hot-path translation is one array load.
 * Dense entries are read and written through relaxed atomics: ghost
 * speculation threads (src/sim/ghost.*) translate ahead of the
 * authoritative core with ghostTranslate(), racing benignly with map()
 * — a stale or torn-window translation only mis-targets a prefetch
 * hint, never simulated state.
 */

#ifndef SSP_VM_PAGE_TABLE_HH
#define SSP_VM_PAGE_TABLE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace ssp
{

/** VPN -> PPN mapping with page-walk timing. */
class PageTable
{
  public:
    /**
     * @param walk_cycles Cost of a page-table walk in core cycles.
     *        A radix walk is mostly cached; Table 2-class machines see
     *        on the order of tens of cycles.
     * @param dense_pages VPNs [0, dense_pages) live in the flat array;
     *        anything above spills to the overflow map (0 = everything
     *        spills, the standalone-test configuration).
     */
    explicit PageTable(Cycles walk_cycles, std::uint64_t dense_pages = 0);

    /** Install or replace a mapping. */
    void map(Vpn vpn, Ppn ppn);

    /** Remove a mapping; returns true if it existed. */
    bool unmap(Vpn vpn);

    /** True if @p vpn is mapped. */
    bool isMapped(Vpn vpn) const;

    /** Translate; fails (panics) on unmapped pages — the simulated
     *  workloads never touch unmapped persistent memory. */
    Ppn translate(Vpn vpn) const;

    /**
     * Lock-free translation for ghost speculation threads: returns the
     * mapped PPN, or kInvalidPpn when @p vpn is unmapped or outside the
     * dense range.  Never consults the overflow map (not thread-safe)
     * and never panics — a failed ghost translation just skips a
     * prefetch.
     */
    Ppn
    ghostTranslate(Vpn vpn) const noexcept
    {
        if (vpn >= densePages_)
            return kInvalidPpn;
        const std::uint64_t e = relaxedLoad(dense_[vpn]);
        return e == 0 ? kInvalidPpn : e - 1;
    }

    /** Timed page walk. @return completion time. */
    Cycles
    walk(Cycles now) const
    {
        return now + walkCycles_;
    }

    std::uint64_t size() const { return size_; }

    /**
     * Visit every (vpn, ppn) mapping.  The table is persistent — it
     * survives powerFail() untouched — and recovery walks it through
     * here to rebuild free-page pools.  Quiescent use only (no
     * concurrent map/unmap).
     */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (Vpn vpn = 0; vpn < densePages_; ++vpn) {
            const std::uint64_t e = relaxedLoad(dense_[vpn]);
            if (e != 0)
                fn(vpn, static_cast<Ppn>(e - 1));
        }
        for (const auto &kv : overflow_)
            fn(kv.first, kv.second);
    }

  private:
    /** Relaxed atomic load of a dense entry (ghosts race with map()). */
    static std::uint64_t
    relaxedLoad(const std::uint64_t &word) noexcept
    {
        return std::atomic_ref<std::uint64_t>(
                   const_cast<std::uint64_t &>(word))
            .load(std::memory_order_relaxed);
    }

    static void
    relaxedStore(std::uint64_t &word, std::uint64_t value) noexcept
    {
        std::atomic_ref<std::uint64_t>(word).store(
            value, std::memory_order_relaxed);
    }

    Cycles walkCycles_;
    std::uint64_t densePages_;
    /** densePages_ entries of ppn+1 (0 = unmapped); calloc'd so the
     *  untouched tail of a big heap costs address space only. */
    std::unique_ptr<std::uint64_t[], FreeDeleter> dense_;
    std::unordered_map<Vpn, Ppn> overflow_;
    std::uint64_t size_ = 0;
};

} // namespace ssp

#endif // SSP_VM_PAGE_TABLE_HH
