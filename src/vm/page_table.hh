/**
 * @file
 * Virtual-to-physical mapping table.
 *
 * Models the OS page table for the persistent heap.  The table itself is
 * durably stored (in NVRAM) as in any persistent-memory system; SSP's
 * page consolidation updates a mapping when it migrates a page's valid
 * data into what used to be the shadow page (paper section 3.4).  Crash
 * consistency of those updates comes from the metadata journal: recovery
 * re-derives the mapping of every *active* page from the SSP cache, so
 * the page-table update itself does not need to be ordered.
 */

#ifndef SSP_VM_PAGE_TABLE_HH
#define SSP_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace ssp
{

/** VPN -> PPN mapping with page-walk timing. */
class PageTable
{
  public:
    /**
     * @param walk_cycles Cost of a page-table walk in core cycles.
     *        A radix walk is mostly cached; Table 2-class machines see
     *        on the order of tens of cycles.
     */
    explicit PageTable(Cycles walk_cycles) : walkCycles_(walk_cycles) {}

    /** Install or replace a mapping. */
    void map(Vpn vpn, Ppn ppn);

    /** Remove a mapping; returns true if it existed. */
    bool unmap(Vpn vpn);

    /** True if @p vpn is mapped. */
    bool isMapped(Vpn vpn) const;

    /** Translate; fails (panics) on unmapped pages — the simulated
     *  workloads never touch unmapped persistent memory. */
    Ppn translate(Vpn vpn) const;

    /** Timed page walk. @return completion time. */
    Cycles
    walk(Cycles now) const
    {
        return now + walkCycles_;
    }

    std::uint64_t size() const { return map_.size(); }

    /** The table is persistent: it survives powerFail() untouched. */
    const std::unordered_map<Vpn, Ppn> &entries() const { return map_; }

  private:
    Cycles walkCycles_;
    std::unordered_map<Vpn, Ppn> map_;
};

} // namespace ssp

#endif // SSP_VM_PAGE_TABLE_HH
