#include "sweep/sweep_grid.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace ssp::sweep
{

ConflictMode
parseConflictMode(const std::string &name)
{
    if (name == "fcw")
        return ConflictMode::FirstCommitterWins;
    if (name == "lazy")
        return ConflictMode::Lazy;
    if (name == "off")
        return ConflictMode::Off;
    ssp_fatal("unknown conflict mode '%s' (expected fcw, lazy or off)",
              name.c_str());
}

const char *
conflictModeName(ConflictMode mode)
{
    switch (mode) {
      case ConflictMode::FirstCommitterWins:
        return "fcw";
      case ConflictMode::Lazy:
        return "lazy";
      case ConflictMode::Off:
        return "off";
    }
    ssp_panic("unreachable conflict mode");
}

const char *
coherenceModeName(CoherenceMode mode)
{
    switch (mode) {
      case CoherenceMode::Broadcast:
        return "broadcast";
      case CoherenceMode::Directory:
        return "directory";
    }
    ssp_panic("unreachable coherence mode");
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

std::vector<unsigned>
parseCountList(const std::string &flag, const std::string &list,
               unsigned max_value)
{
    std::vector<unsigned> out;
    for (const std::string &item : splitCommas(list)) {
        unsigned long v = 0;
        try {
            std::size_t used = 0;
            v = std::stoul(item, &used);
            if (used != item.size())
                v = 0; // trailing junk ("4x") is invalid too
        } catch (const std::exception &) {
            v = 0;
        }
        if (v == 0 || v > max_value) {
            ssp_fatal("%s values must be integers in [1, %u], got '%s'",
                      flag.c_str(), max_value, item.c_str());
        }
        out.push_back(static_cast<unsigned>(v));
    }
    if (out.empty())
        ssp_fatal("%s: empty count list", flag.c_str());
    return out;
}

unsigned
parseCellThreads(const std::string &value)
{
    unsigned long v = 0;
    try {
        std::size_t used = 0;
        v = std::stoul(value, &used);
        if (used != value.size())
            v = 0; // trailing junk ("4x") is invalid too
    } catch (const std::exception &) {
        v = 0;
    }
    if (v == 0 || v > 64) {
        ssp_fatal("--cell-threads must be an integer in [1, 64], got '%s'",
                  value.c_str());
    }
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    // SSP_FORCE_GHOSTS (tests, TSan) overrides the cap: determinism is
    // guaranteed at any thread count, so oversubscribing only costs
    // host time.
    if (v > hw && std::getenv("SSP_FORCE_GHOSTS") == nullptr) {
        std::fprintf(stderr,
                     "sweep: --cell-threads %lu exceeds the %u hardware "
                     "thread(s); capping\n",
                     v, hw);
        v = hw;
    }
    return static_cast<unsigned>(v);
}

std::vector<double>
parseLoadList(const std::string &flag, const std::string &list)
{
    std::vector<double> out;
    for (const std::string &item : splitCommas(list)) {
        double v = 0;
        try {
            std::size_t used = 0;
            v = std::stod(item, &used);
            if (used != item.size())
                v = 0; // trailing junk ("0.6x") is invalid too
        } catch (const std::exception &) {
            v = 0;
        }
        if (!(v > 0) || v > 10) {
            ssp_fatal("%s values must be decimals in (0, 10], got '%s'",
                      flag.c_str(), item.c_str());
        }
        out.push_back(v);
    }
    if (out.empty())
        ssp_fatal("%s: empty load list", flag.c_str());
    return out;
}

std::vector<double>
parseFaultRateList(const std::string &flag, const std::string &list)
{
    std::vector<double> out;
    for (const std::string &item : splitCommas(list)) {
        double v = -1;
        try {
            std::size_t used = 0;
            v = std::stod(item, &used);
            if (used != item.size())
                v = -1; // trailing junk ("5x") is invalid too
        } catch (const std::exception &) {
            v = -1;
        }
        if (v < 0 || v > 1000) {
            ssp_fatal("%s values must be decimals in [0, 1000], got '%s'",
                      flag.c_str(), item.c_str());
        }
        out.push_back(v);
    }
    if (out.empty())
        ssp_fatal("%s: empty fault-rate list", flag.c_str());
    return out;
}

std::vector<bool>
parseReplicateModes(const std::string &value)
{
    if (value == "off")
        return {false};
    if (value == "on")
        return {true};
    if (value == "both")
        return {false, true};
    ssp_fatal("--replicate must be 'off', 'on' or 'both', got '%s'",
              value.c_str());
}

SspConfig
paperConfig(unsigned cores)
{
    SspConfig cfg;
    cfg.numCores = cores;
    cfg.heapPages = 1 << 15; // 128 MiB persistent heap
    cfg.logPages = 8192;
    // Paper section 5.1: 0.3% of the 12 MiB L3 caches about 1K SSP
    // cache entries.
    cfg.sspCacheSlots = 1024;
    cfg.shadowPoolPages = cfg.sspCacheSlots + 1024;
    return cfg;
}

WorkloadScale
paperScale()
{
    WorkloadScale scale;
    // Deep enough trees that per-transaction write sets approach the
    // paper's Table 3 characterization.
    scale.keySpace = 32768;
    scale.spsElements = 1 << 16;
    scale.seed = 42;
    return scale;
}

SspConfig
SweepCell::config() const
{
    SspConfig cfg = base;
    cfg.numCores = cores;
    cfg.nvramLatencyMultiplier = nvramLatencyMultiplier;
    if (sspCacheFixedLatency != 0)
        cfg.sspCacheLatency.fixedLatency = sspCacheFixedLatency;
    if (nvramDevice != NvramDevice::PaperPcm)
        cfg.applyNvramDevice(nvramDevice);
    if (nvramChannels != 1)
        cfg.nvramChannels = nvramChannels;
    if (conflictMode == ConflictMode::Off)
        cfg.conflicts.enabled = false;
    else if (conflictMode == ConflictMode::Lazy)
        cfg.conflicts.validation = ConflictValidation::Lazy;
    cfg.coherence.mode = coherenceMode;
    return cfg;
}

std::string
SweepCell::label() const
{
    std::string out = figure + "/" + backendKindName(backend) + "/" +
                      workloadKindName(workload) + "/c" +
                      std::to_string(cores);
    if (nvramLatencyMultiplier > 0)
        out += "/nvram-x" + std::to_string(
                   static_cast<unsigned>(nvramLatencyMultiplier));
    if (sspCacheFixedLatency != 0)
        out += "/sspcache-" + std::to_string(sspCacheFixedLatency);
    if (nvramChannels != 1)
        out += "/ch" + std::to_string(nvramChannels);
    if (nvramDevice != NvramDevice::PaperPcm)
        out += std::string("/") + nvramDeviceName(nvramDevice);
    if (keyShards > 1)
        out += "/p" + std::to_string(keyShards);
    if (conflictMode != ConflictMode::FirstCommitterWins)
        out += std::string("/cc-") + conflictModeName(conflictMode);
    if (coherenceMode == CoherenceMode::Directory)
        out += "/dir";
    // Cluster coordinates: every shard-grid cell names its machine
    // count (m1 included, so the fast-path cells are self-describing);
    // the cross-shard fraction exists only where 2PC is possible, in
    // percent for byte-stable labels ("x10").
    if (figure == "shard" || figure == "fault" || machines > 1)
        out += "/m" + std::to_string(machines);
    if (machines > 1)
        out += "/x" + std::to_string(
                   std::lround(crossShardFraction * 100));
    // Fault coordinates, in tenths ("f50" = rate 5.0) for byte-stable
    // labels; every fault-grid cell names its rate (f0 included) so the
    // zero-fault baseline points are self-describing.
    if (figure == "fault" || faultRate > 0)
        out += "/f" + std::to_string(std::lround(faultRate * 10));
    if (replicate)
        out += "/rep";
    if (offeredLoad > 0) {
        // Loads are encoded in percent ("load120") — integers keep the
        // label byte-stable regardless of float-formatting locale.
        out += std::string("/") + serve::arrivalKindName(arrival) +
               "/load" +
               std::to_string(std::lround(offeredLoad * 100));
    }
    return out;
}

std::uint64_t
deriveCellSeed(std::uint64_t base_seed, std::uint64_t ordinal)
{
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (ordinal + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<std::string>
knownFigures()
{
    // (Trailing comma: one name per line keeps this list append-only
    // in diffs as grids accumulate.)
    return {
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "table3",
        "table45",
        "chan",
        "scale",
        "scale64",
        "scale256",
        "queue",
        "shard",
        "fault",
        "smoke",
    };
}

namespace
{

/** Small machine for the CI smoke grid (mirrors the test config). */
SspConfig
smokeConfig()
{
    SspConfig cfg;
    cfg.numCores = 1;
    cfg.heapPages = 512;
    cfg.shadowPoolPages = 600;
    cfg.journalPages = 64;
    cfg.logPages = 512;
    cfg.dramPages = 64;
    cfg.checkpointThresholdBytes = 16 * 1024;
    return cfg;
}

/**
 * The "big" machine: a 64-core-class server the 16-64-core scale64
 * grid runs on.  Everything the core count stresses is sized up from
 * the paper's Table 2 desktop part: a 96 MiB shared L3 (with the
 * longer lookup of a larger NUCA array), an SSP cache provisioned for
 * 64 cores x 64 TLB entries with slack, a journal/log area that fits
 * the larger slot array's persistent lines, and a deeper shadow pool.
 * The configuration is identical at every core count so the scaling
 * axis measures cores, not machine-size side effects.
 */
SspConfig
bigConfig(unsigned cores)
{
    SspConfig cfg;
    cfg.numCores = cores;
    cfg.heapPages = 1 << 15; // 128 MiB persistent heap
    cfg.logPages = 16384;    // 64 MiB undo/redo log area
    cfg.journalPages = 1024; // fits the 8K-slot journal + headroom
    cfg.sspCacheSlots = 8192;
    cfg.shadowPoolPages = cfg.sspCacheSlots + 2048;
    cfg.dramPages = 8192;
    cfg.caches.l3 = CacheParams{"l3", 96 * 1024 * 1024, 16, 42};
    return cfg;
}

/**
 * The mesh machine: the 256-core-class part the scale256 grid runs on.
 * Scaled up from bigConfig the same way bigConfig scales the desktop
 * part: an SSP cache provisioned for 256 cores x 64 TLB entries with
 * slack, a journal that fits the larger slot array, and a deeper
 * shadow pool.  The configuration is identical at every core count and
 * under both coherence models, so those axes measure the interconnect,
 * not machine-size side effects.
 */
SspConfig
meshConfig(unsigned cores)
{
    SspConfig cfg;
    cfg.numCores = cores;
    cfg.heapPages = 1 << 15; // 128 MiB persistent heap
    // 256 MiB log area: 256 staggered per-core undo/redo regions need
    // per_core > numCores * rowBufferBytes, i.e. > 128 MiB total.
    cfg.logPages = 65536;
    cfg.journalPages = 2048; // fits the 16K-slot journal + headroom
    cfg.sspCacheSlots = 16384;
    cfg.shadowPoolPages = cfg.sspCacheSlots + 4096;
    cfg.dramPages = 8192;
    cfg.caches.l3 = CacheParams{"l3", 96 * 1024 * 1024, 16, 42};
    return cfg;
}

/** Workloads in Table 3 (paper) order, for the table3 grid. */
std::vector<WorkloadKind>
table3Order()
{
    return {WorkloadKind::RbTreeRand, WorkloadKind::BTreeRand,
            WorkloadKind::HashRand,   WorkloadKind::Sps,
            WorkloadKind::RbTreeZipf, WorkloadKind::BTreeZipf,
            WorkloadKind::HashZipf,   WorkloadKind::Memcached,
            WorkloadKind::Vacation};
}

/** Channel counts the chan grid sweeps by default. */
std::vector<unsigned>
defaultChannelList()
{
    return {1, 2, 4, 8};
}

/** Core counts the scale grid sweeps by default. */
std::vector<unsigned>
defaultCoreList()
{
    return {1, 2, 4, 8};
}

/** Core counts the scale64 grid sweeps by default. */
std::vector<unsigned>
defaultBigCoreList()
{
    return {1, 2, 4, 8, 16, 32, 64};
}

/** Core counts the scale256 grid sweeps by default: the scale64 axis
 *  decimated to keep the doubled (broadcast x directory) grid
 *  affordable, extended past it to the mesh machine's full 256. */
std::vector<unsigned>
defaultMeshCoreList()
{
    return {1, 4, 16, 64, 128, 256};
}

/** Core counts the queue grid sweeps by default. */
std::vector<unsigned>
defaultQueueCoreList()
{
    return {4, 16};
}

/** Offered-load factors the queue grid sweeps by default: comfortable,
 *  moderate, near-saturation and past-saturation. */
std::vector<double>
defaultLoadList()
{
    return {0.3, 0.6, 0.9, 1.2};
}

/** Cluster sizes the shard grid sweeps by default. */
std::vector<unsigned>
defaultMachineList()
{
    return {1, 2, 4, 8};
}

/** Cluster sizes the fault grid sweeps by default (smaller than the
 *  shard grid: every fault axis doubles the cell count). */
std::vector<unsigned>
defaultFaultMachineList()
{
    return {1, 2, 4};
}

/** Fault rates (failures per Mcycle per machine) the fault grid sweeps
 *  by default: the armed-but-quiet baseline, a rare-failure regime and
 *  a torture regime (roughly one failure per 50 kcycles per machine). */
std::vector<double>
defaultFaultRateList()
{
    return {0, 5, 20};
}

/** Cross-shard fractions the shard grid sweeps: partitionable, lightly
 *  entangled, and heavily entangled transactions (a fixed axis — the
 *  fraction is a workload property, not a deployment knob). */
std::vector<double>
shardCrossFractions()
{
    return {0, 0.1, 0.5};
}

/** Cores each shard-grid machine runs: the scale grid's 4-core point,
 *  so the 1-machine cells replay the checked-in scale c4 cells. */
constexpr unsigned kShardCores = 4;

/** The three paper designs every scaling grid compares. */
std::vector<BackendKind>
scaleBackends()
{
    return {BackendKind::Ssp, BackendKind::UndoLog, BackendKind::RedoLog};
}

/** Workloads whose keyed operations the scaling grids partition into
 *  per-core shards (the no-sharing scenario). */
bool
partitionedWorkload(WorkloadKind w)
{
    return w == WorkloadKind::BTreeRand || w == WorkloadKind::HashRand;
}

/** Workloads of the queue grid: one point per sharing scenario —
 *  shared-uniform (SPS), Zipf-contended (BTree) and partitioned
 *  (Hash-Rand, per-core key shards). */
std::vector<WorkloadKind>
queueWorkloads()
{
    return {WorkloadKind::Sps, WorkloadKind::BTreeZipf,
            WorkloadKind::HashRand};
}

/** Workloads of the shard grid (the queue grid's three scenarios).
 *  Expressed as a membership test because the shard grid walks the full
 *  scale plane to pin seed ordinals (see the generator). */
bool
shardWorkload(WorkloadKind w)
{
    return w == WorkloadKind::Sps || w == WorkloadKind::BTreeZipf ||
           w == WorkloadKind::HashRand;
}

/** Workloads of the scale grid: shared-uniform (SPS), partitioned
 *  (-Rand, per-core key shards) and Zipf-contended (shared hotspot)
 *  scenarios.  SPS first so the (SPS, SSP) seed ordinal is 0 — the
 *  same stream as the smoke grid's only cell; RbTree-Zipf was appended
 *  (not inserted) when conflict handling landed, so every older cell
 *  keeps its pinned seed ordinal and replays its original stream. */
std::vector<WorkloadKind>
scaleWorkloads()
{
    return {WorkloadKind::Sps,       WorkloadKind::BTreeRand,
            WorkloadKind::HashRand,  WorkloadKind::BTreeZipf,
            WorkloadKind::HashZipf,  WorkloadKind::RbTreeZipf};
}

/**
 * Emit one cell per (workload, backend) with the seed ordinal pinned to
 * the pair's position in the plane — the pinning idiom every axis-sweep
 * grid (chan, scale, scale64, queue) shares: cells that differ only in
 * the swept axis value replay the identical operation stream, so the
 * axis measures machine effects, not reseeded noise.  @p customize
 * fills each cell's axis-specific knobs (machine config, cores,
 * channels, load, sharding) before it is emitted.
 */
template <typename CustomizeFn, typename EmitFn>
void
emitSeedPinnedPlane(const std::vector<WorkloadKind> &workloads,
                    const std::vector<BackendKind> &backends,
                    std::uint64_t txs, CustomizeFn &&customize,
                    EmitFn &&emit)
{
    std::int64_t seed_ordinal = 0;
    for (WorkloadKind w : workloads) {
        for (BackendKind b : backends) {
            SweepCell cell;
            cell.backend = b;
            cell.workload = w;
            cell.seedOrdinal = seed_ordinal++;
            cell.txs = txs;
            customize(cell);
            emit(std::move(cell));
        }
    }
}

/** Generates the unfiltered grid for one figure via emit(). */
template <typename EmitFn>
void
generateCells(const std::string &figure, std::uint64_t txs,
              const SweepGridOptions &opts, EmitFn &&emit)
{
    if (figure == "fig5") {
        // Throughput, (a) one thread and (b) four threads.
        for (unsigned cores : {1u, 4u}) {
            for (WorkloadKind w : microbenchmarks()) {
                for (BackendKind b : paperBackends()) {
                    SweepCell cell;
                    cell.backend = b;
                    cell.workload = w;
                    cell.cores = cores;
                    cell.base = paperConfig(cores);
                    cell.txs = txs;
                    emit(std::move(cell));
                }
            }
        }
    } else if (figure == "fig6" || figure == "fig7") {
        // Logging writes (fig6) / total NVRAM writes + breakdown (fig7):
        // the same single-threaded microbenchmark runs; the report
        // carries every write category, so the grids coincide.
        for (WorkloadKind w : microbenchmarks()) {
            for (BackendKind b : paperBackends()) {
                SweepCell cell;
                cell.backend = b;
                cell.workload = w;
                cell.base = paperConfig(1);
                cell.txs = txs;
                emit(std::move(cell));
            }
        }
    } else if (figure == "fig8") {
        // NVRAM-latency sensitivity for RBTree-Rand (8a), BTree-Rand (8b).
        for (WorkloadKind w :
             {WorkloadKind::RbTreeRand, WorkloadKind::BTreeRand}) {
            for (double mult : {1.0, 3.0, 5.0, 7.0, 9.0}) {
                for (BackendKind b : paperBackends()) {
                    SweepCell cell;
                    cell.backend = b;
                    cell.workload = w;
                    cell.base = paperConfig(1);
                    cell.nvramLatencyMultiplier = mult;
                    cell.txs = txs;
                    emit(std::move(cell));
                }
            }
        }
    } else if (figure == "fig9") {
        // SSP-cache latency sensitivity: one latency-independent
        // REDO-LOG baseline per workload, then SSP across the sweep.
        for (WorkloadKind w : microbenchmarks()) {
            SweepCell cell;
            cell.backend = BackendKind::RedoLog;
            cell.workload = w;
            cell.base = paperConfig(1);
            cell.txs = txs;
            emit(std::move(cell));
        }
        for (Cycles lat : {20u, 60u, 100u, 140u, 180u}) {
            for (WorkloadKind w : microbenchmarks()) {
                SweepCell cell;
                cell.backend = BackendKind::Ssp;
                cell.workload = w;
                cell.base = paperConfig(1);
                cell.sspCacheFixedLatency = lat;
                cell.txs = txs;
                emit(std::move(cell));
            }
        }
    } else if (figure == "table3") {
        // Write-set characterization: SSP across all nine workloads.
        for (WorkloadKind w : table3Order()) {
            SweepCell cell;
            cell.backend = BackendKind::Ssp;
            cell.workload = w;
            cell.base = paperConfig(1);
            cell.txs = txs;
            emit(std::move(cell));
        }
    } else if (figure == "table45") {
        // Real workloads, four clients.
        for (WorkloadKind w : realWorkloads()) {
            for (BackendKind b : paperBackends()) {
                SweepCell cell;
                cell.backend = b;
                cell.workload = w;
                cell.cores = 4;
                cell.base = paperConfig(4);
                cell.txs = txs;
                emit(std::move(cell));
            }
        }
    } else if (figure == "chan") {
        // Channel scaling: every design x microbenchmark across the
        // NVRAM channel counts.  Page-granular interleaving keeps each
        // page's row locality inside one channel; the seed ordinal is
        // pinned per (workload, backend) so every channel count replays
        // the identical operation stream.
        const std::vector<unsigned> channel_list =
            opts.channels.empty() ? defaultChannelList() : opts.channels;
        for (unsigned channels : channel_list) {
            emitSeedPinnedPlane(
                microbenchmarks(), paperBackends(), txs,
                [&](SweepCell &cell) {
                    cell.base = paperConfig(1);
                    cell.base.interleaveGranularity =
                        InterleaveGranularity::Page;
                    cell.nvramChannels = channels;
                },
                emit);
        }
    } else if (figure == "scale") {
        // Core scaling on the smoke machine: every paper design across
        // core counts and three sharing scenarios — shared-uniform
        // (SPS), partitioned (-Rand workloads confine each core to its
        // own key shard) and Zipf-contended (shared 80/15 hotspot).
        // Seed ordinals are pinned per (workload, backend) so every
        // core count replays the identical key stream, and SSP comes
        // first so the (SPS, SSP, 1 core) cell is stream-identical to
        // the smoke cell — scripts/check.sh diffs the two to catch
        // single-core timing regressions.
        const std::vector<unsigned> core_list =
            opts.coreCounts.empty() ? defaultCoreList() : opts.coreCounts;
        for (unsigned cores : core_list) {
            emitSeedPinnedPlane(
                scaleWorkloads(), scaleBackends(), txs,
                [&](SweepCell &cell) {
                    cell.cores = cores;
                    cell.base = smokeConfig();
                    if (partitionedWorkload(cell.workload) && cores > 1)
                        cell.keyShards = cores;
                },
                emit);
        }
    } else if (figure == "scale64") {
        // Core scaling on the big machine: the same designs and
        // sharing scenarios as the scale grid, but on a 64-core-class
        // server configuration and with the full paper workload scale,
        // across cores up to 64.  Seed ordinals are pinned per
        // (workload, backend), so every core count replays the
        // identical key stream — the scaling curves measure coherence,
        // contention and conflict effects on the same work.
        const std::vector<unsigned> core_list =
            opts.coreCounts.empty() ? defaultBigCoreList()
                                    : opts.coreCounts;
        for (unsigned cores : core_list) {
            emitSeedPinnedPlane(
                scaleWorkloads(), scaleBackends(), txs,
                [&](SweepCell &cell) {
                    cell.cores = cores;
                    cell.base = bigConfig(cores);
                    if (partitionedWorkload(cell.workload) && cores > 1)
                        cell.keyShards = cores;
                },
                emit);
        }
    } else if (figure == "scale256") {
        // Interconnect scaling on the mesh machine: the three paper
        // designs x three sharing scenarios (shared-uniform SPS,
        // Zipf-contended BTree, partitioned Hash-Rand), each cell run
        // once under the flat broadcast bus and once under the 2D-mesh
        // home-node directory, across cores up to 256.  Seed ordinals
        // are pinned per (workload, backend), so the two coherence
        // models — and every core count — replay the identical
        // operation stream: any traffic or cycle difference is the
        // interconnect, not reseeded noise.
        const std::vector<unsigned> core_list =
            opts.coreCounts.empty() ? defaultMeshCoreList()
                                    : opts.coreCounts;
        for (unsigned cores : core_list) {
            for (CoherenceMode mode :
                 {CoherenceMode::Broadcast, CoherenceMode::Directory}) {
                emitSeedPinnedPlane(
                    queueWorkloads(), scaleBackends(), txs,
                    [&](SweepCell &cell) {
                        cell.cores = cores;
                        cell.base = meshConfig(cores);
                        cell.coherenceMode = mode;
                        if (partitionedWorkload(cell.workload) &&
                            cores > 1) {
                            cell.keyShards = cores;
                        }
                    },
                    emit);
            }
        }
    } else if (figure == "queue") {
        // Open-loop tail latency on the big machine: the three paper
        // designs x three sharing scenarios under open-loop arrivals at
        // offered loads from comfortable (0.3x measured closed-loop
        // capacity) to past saturation (1.2x), at 4 and 16 cores.  Seed
        // ordinals are pinned per (workload, backend), so every
        // (cores, load) point replays the identical key stream — the
        // load axis measures queueing delay, not reseeded noise.
        const std::vector<unsigned> core_list =
            opts.coreCounts.empty() ? defaultQueueCoreList()
                                    : opts.coreCounts;
        const std::vector<double> load_list =
            opts.loads.empty() ? defaultLoadList() : opts.loads;
        for (unsigned cores : core_list) {
            for (double load : load_list) {
                emitSeedPinnedPlane(
                    queueWorkloads(), scaleBackends(), txs,
                    [&](SweepCell &cell) {
                        cell.cores = cores;
                        cell.base = bigConfig(cores);
                        cell.offeredLoad = load;
                        cell.arrival = opts.arrival;
                        if (partitionedWorkload(cell.workload) &&
                            cores > 1) {
                            cell.keyShards = cores;
                        }
                    },
                    emit);
            }
        }
    } else if (figure == "shard") {
        // Multi-machine scaling on the smoke machine: the three paper
        // designs x three sharing scenarios across cluster sizes and
        // cross-shard fractions, 4 cores per machine.  Seed ordinals
        // are pinned to the (workload, backend) position in the *scale*
        // plane — not this grid's own — so every machine count and
        // fraction replays the scale grid's exact streams, and the
        // 1-machine cells are cycle-identical to the checked-in
        // BENCH_scale.json c4 cells (scripts/check.sh diffs the two).
        const std::vector<unsigned> machine_list =
            opts.machines.empty() ? defaultMachineList() : opts.machines;
        for (unsigned machines : machine_list) {
            for (double frac : shardCrossFractions()) {
                // One machine has no peers: only the frac=0 fast-path
                // point exists.
                if (machines == 1 && frac > 0)
                    continue;
                std::int64_t plane_ordinal = 0;
                for (WorkloadKind w : scaleWorkloads()) {
                    for (BackendKind b : scaleBackends()) {
                        const std::int64_t seed_ordinal =
                            plane_ordinal++;
                        if (!shardWorkload(w))
                            continue;
                        SweepCell cell;
                        cell.backend = b;
                        cell.workload = w;
                        cell.seedOrdinal = seed_ordinal;
                        cell.txs = txs;
                        cell.cores = kShardCores;
                        cell.base = smokeConfig();
                        cell.machines = machines;
                        cell.crossShardFraction = frac;
                        if (partitionedWorkload(w))
                            cell.keyShards = kShardCores;
                        emit(std::move(cell));
                    }
                }
            }
        }
    } else if (figure == "fault") {
        // Fault-injection grid on the smoke machine: the shard grid's
        // designs x sharing scenarios across cluster sizes, fault rates
        // and replication modes, 4 cores per machine, cross-shard
        // fraction 0.1 wherever 2PC is possible.  Seed ordinals are
        // pinned to the scale plane exactly like the shard grid, so the
        // rate-0 non-replicated cells replay the matching shard-grid
        // cells bit for bit (scripts/check.sh diffs the two) and every
        // fault axis perturbs the identical operation stream.
        const std::vector<unsigned> machine_list =
            opts.machines.empty() ? defaultFaultMachineList()
                                  : opts.machines;
        const std::vector<double> rate_list =
            opts.faultRates.empty() ? defaultFaultRateList()
                                    : opts.faultRates;
        const std::vector<bool> rep_list =
            opts.replicateModes.empty() ? std::vector<bool>{false, true}
                                        : opts.replicateModes;
        for (unsigned machines : machine_list) {
            for (double rate : rate_list) {
                for (bool rep : rep_list) {
                    std::int64_t plane_ordinal = 0;
                    for (WorkloadKind w : scaleWorkloads()) {
                        for (BackendKind b : scaleBackends()) {
                            const std::int64_t seed_ordinal =
                                plane_ordinal++;
                            if (!shardWorkload(w))
                                continue;
                            SweepCell cell;
                            cell.backend = b;
                            cell.workload = w;
                            cell.seedOrdinal = seed_ordinal;
                            cell.txs = txs;
                            cell.cores = kShardCores;
                            cell.base = smokeConfig();
                            cell.machines = machines;
                            cell.crossShardFraction =
                                machines > 1 ? 0.1 : 0;
                            cell.faultRate = rate;
                            cell.replicate = rep;
                            if (partitionedWorkload(w))
                                cell.keyShards = kShardCores;
                            emit(std::move(cell));
                        }
                    }
                }
            }
        }
    } else if (figure == "smoke") {
        // One tiny CI cell proving the whole pipeline end to end.
        SweepCell cell;
        cell.backend = BackendKind::Ssp;
        cell.workload = WorkloadKind::Sps;
        cell.base = smokeConfig();
        cell.txs = txs;
        emit(std::move(cell));
    } else {
        // List the known grids so a typo is a one-round-trip fix.
        std::string known;
        for (const std::string &name : knownFigures()) {
            if (!known.empty())
                known += ", ";
            known += name;
        }
        ssp_fatal("unknown sweep figure '%s' (known grids: %s)",
                  figure.c_str(), known.c_str());
    }
}

template <typename T>
bool
keepKind(const std::vector<T> &filter, T kind)
{
    return filter.empty() ||
           std::find(filter.begin(), filter.end(), kind) != filter.end();
}

} // namespace

std::vector<SweepCell>
buildFigureGrid(const std::string &figure, const SweepGridOptions &opts)
{
    std::uint64_t txs = opts.txs != 0 ? opts.txs : kDefaultTxs;
    // The scale grid shares the smoke machine and transaction budget so
    // its single-core cells stay directly comparable to the smoke cell;
    // the shard grid shares both so its 1-machine cells stay
    // cycle-identical to the scale grid's 4-core cells.
    if (opts.txs == 0 && (figure == "smoke" || figure == "scale" ||
                          figure == "shard" || figure == "fault")) {
        txs = 400;
    }
    // The scale64 grid runs the full paper workload scale; 2000
    // transactions per cell keeps the 126-cell grid affordable while
    // leaving each multi-core cell long enough to time meaningfully.
    if (opts.txs == 0 && figure == "scale64")
        txs = 2000;
    // The queue grid serves 2000 open-loop requests per cell — enough
    // samples for an exact-rank p999 while keeping the 72-cell grid
    // (plus per-cell calibration) affordable.
    if (opts.txs == 0 && figure == "queue")
        txs = 2000;
    // The scale256 grid doubles every cell (broadcast x directory);
    // 1000 transactions keep the 108-cell grid affordable while the
    // contended cells still generate thousands of coherence events.
    if (opts.txs == 0 && figure == "scale256")
        txs = 1000;

    // Only the chan grid sweeps channel counts; failing beats silently
    // handing back 1-channel cells labeled as a channel experiment.
    if (!opts.channels.empty() && figure != "chan") {
        ssp_fatal("the channels option only applies to the 'chan' grid, "
                  "not '%s'",
                  figure.c_str());
    }
    // Likewise, only the core-scaling grids sweep core counts...
    if (!opts.coreCounts.empty() && figure != "scale" &&
        figure != "scale64" && figure != "scale256" &&
        figure != "queue") {
        ssp_fatal("the cores option only applies to the 'scale', "
                  "'scale64', 'scale256' and 'queue' grids, not '%s'",
                  figure.c_str());
    }
    // Validate the requested core counts against the figure's machine
    // preset up front: a clean one-line diagnostic here beats a Machine
    // assert deep inside a sweep worker.  The scale/scale64/queue
    // machines are provisioned (SSP cache, journal, shadow pool) for at
    // most 64 cores; only the scale256 mesh machine goes to kMaxCores.
    {
        const unsigned figure_max = figure == "scale256" ? kMaxCores : 64;
        for (unsigned cores : opts.coreCounts) {
            if (cores > figure_max) {
                ssp_fatal("--cores %u exceeds the '%s' machine's %u-core "
                          "provisioning%s",
                          cores, figure.c_str(), figure_max,
                          figure_max < kMaxCores
                              ? " (use --figure scale256 for larger "
                                "machines)"
                              : "");
            }
        }
    }
    // ... and only the open-loop queue grid sweeps offered loads ...
    if (!opts.loads.empty() && figure != "queue") {
        ssp_fatal("the loads option only applies to the 'queue' grid, "
                  "not '%s'",
                  figure.c_str());
    }
    // ... and only the cluster grids sweep cluster sizes ...
    if (!opts.machines.empty() && figure != "shard" &&
        figure != "fault") {
        ssp_fatal("the machines option only applies to the 'shard' and "
                  "'fault' grids, not '%s'",
                  figure.c_str());
    }
    // ... and only the fault grid sweeps fault rates and replication.
    if (!opts.faultRates.empty() && figure != "fault") {
        ssp_fatal("the fault-rate option only applies to the 'fault' "
                  "grid, not '%s'",
                  figure.c_str());
    }
    if (!opts.replicateModes.empty() && figure != "fault") {
        ssp_fatal("the replicate option only applies to the 'fault' "
                  "grid, not '%s'",
                  figure.c_str());
    }
    // Per-cell key sharding is a grid decision (the scale grid's
    // partitioned scenario); failing beats silently dropping a
    // caller-supplied value.
    if (opts.scale.keyShards != 1) {
        ssp_fatal("WorkloadScale.keyShards is set per cell by the grid; "
                  "it cannot be passed through SweepGridOptions");
    }

    std::vector<SweepCell> cells;
    std::uint64_t ordinal = 0;
    generateCells(figure, txs, opts, [&](SweepCell cell) {
        cell.figure = figure;
        cell.scale = opts.scale;
        cell.scale.keyShards = cell.keyShards;
        cell.nvramDevice = opts.nvramDevice;
        cell.conflictMode = opts.conflictMode;
        if (figure == "smoke" || figure == "scale" ||
            figure == "shard" || figure == "fault") {
            // Keep the cells proportionate to their tiny machine (and
            // the scale/shard/fault grids' streams identical to the
            // smoke cell's plane).
            cell.scale.keySpace = std::min<std::uint64_t>(
                cell.scale.keySpace, 1024);
            cell.scale.spsElements = std::min<std::uint64_t>(
                cell.scale.spsElements, 4096);
        }
        // Seeds are assigned by unfiltered ordinal so a cell's stream
        // is stable no matter which backend/workload filters apply; a
        // grid may pin the ordinal instead (chan: identical streams
        // across channel counts).
        const std::uint64_t seed_ordinal =
            cell.seedOrdinal >= 0
                ? static_cast<std::uint64_t>(cell.seedOrdinal)
                : ordinal;
        ++ordinal;
        cell.scale.seed = deriveCellSeed(opts.scale.seed, seed_ordinal);
        if (keepKind(opts.backends, cell.backend) &&
            keepKind(opts.workloads, cell.workload)) {
            cells.push_back(std::move(cell));
        }
    });
    return cells;
}

} // namespace ssp::sweep
