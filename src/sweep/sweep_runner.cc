#include "sweep/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "serve/server.hh"
#include "sim/system_builder.hh"

namespace ssp::sweep
{

namespace
{

/** Ordinal separating a cell's arrival stream from its key stream. */
constexpr std::uint64_t kArrivalSeedOrdinal = 101;

/** Ordinal separating a shard cell's routing stream from its keys. */
constexpr std::uint64_t kRouteSeedOrdinal = 211;

CellResult
runOneCell(const SweepCell &cell, unsigned cell_threads)
{
    CellResult res;
    res.cell = cell;
    const auto host_start = std::chrono::steady_clock::now();
    try {
        // Fault-armed cells always go through the cluster driver, even
        // with one machine, so scheduled failures have slot boundaries
        // to fire at.  Unarmed cells keep their historical paths.
        const bool faulty = cell.faultRate > 0 || cell.replicate;
        if (cell.machines > 1 || faulty) {
            // Cluster cell: each machine gets its own Experiment (own
            // seed stream, see Cluster::shardSeed) and the routing
            // stream deciding which slots go cross-shard draws from a
            // third, independent stream.  Ghost speculation is a
            // single-machine Rounds feature, so cluster cells ignore
            // the cell-thread budget.
            shard::Cluster cluster(cell.backend, cell.workload,
                                   cell.config(), cell.scale,
                                   cell.machines);
            std::unique_ptr<fault::FaultInjector> inj;
            if (faulty) {
                fault::FaultParams fp;
                fp.ratePerMcycle = cell.faultRate;
                fp.replicate = cell.replicate;
                fp.seed = deriveCellSeed(cell.scale.seed,
                                         fault::kFaultSeedOrdinal);
                inj = std::make_unique<fault::FaultInjector>(
                    cluster, fp,
                    deriveCellSeed(cell.scale.seed,
                                   fault::kNetFaultSeedOrdinal),
                    cell.crossShardFraction);
            }
            shard::ShardRunResult sr = shard::runClusterExperiment(
                cluster, cell.txs, cell.cores, cell.crossShardFraction,
                deriveCellSeed(cell.scale.seed, kRouteSeedOrdinal),
                inj.get());
            res.run = std::move(sr.aggregate);
            res.shardRuns = std::move(sr.shards);
            res.shardTx = sr.tx;
            res.networkMessages = sr.networkMessages;
            res.networkCycles = sr.networkCycles;
            if (inj != nullptr)
                res.faultStats = inj->stats();
            res.ok = true;
            res.hostMillis =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - host_start)
                    .count();
            return res;
        }
        Experiment exp = buildExperiment(cell.backend, cell.workload,
                                         cell.config(), cell.scale);
        if (cell.offeredLoad > 0) {
            // Open-loop cell: txs counts generated requests, and the
            // arrival process draws from its own stream so the key
            // stream stays identical to the closed-loop cells'.
            // Ghost speculation is Rounds-only, so serve cells ignore
            // the cell-thread budget.
            serve::ServeParams params;
            params.arrival = cell.arrival;
            params.offeredLoad = cell.offeredLoad;
            params.seed =
                deriveCellSeed(cell.scale.seed, kArrivalSeedOrdinal);
            res.run = serve::runServeExperiment(exp, cell.txs,
                                                cell.cores, params);
        } else {
            res.run = runExperiment(exp, cell.txs, cell.cores,
                                    ScheduleMode::Rounds, cell_threads);
        }
        res.ok = true;
    } catch (const std::exception &e) {
        res.error = e.what();
    }
    res.hostMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - host_start)
            .count();
    return res;
}

} // namespace

std::vector<CellResult>
runSweep(const std::vector<SweepCell> &cells, unsigned jobs,
         const CellCallback &on_cell, unsigned cell_threads)
{
    std::vector<CellResult> results(cells.size());
    if (cells.empty())
        return results;

    jobs = std::max(1u, jobs);
    cell_threads = std::max(1u, cell_threads);
    if (cell_threads > 1) {
        // One global host-thread budget: each worker drives
        // cell_threads host threads (itself + ghosts), so the worker
        // count shrinks to keep jobs * cell_threads within the
        // hardware.  cell_threads == 1 keeps the historical unclamped
        // --jobs semantics.
        const unsigned hw = std::max(1u,
                                     std::thread::hardware_concurrency());
        jobs = std::max(1u, std::min(jobs, hw / cell_threads));
    }
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, cells.size()));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex cb_mutex;

    auto worker = [&]() {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            results[i] = runOneCell(cells[i], cell_threads);
            const std::size_t finished = done.fetch_add(1) + 1;
            if (on_cell) {
                std::lock_guard<std::mutex> lock(cb_mutex);
                on_cell(results[i], finished, cells.size());
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return results;
}

Json
sweepReport(const std::string &figure,
            const std::vector<CellResult> &results, bool include_host_time)
{
    Json doc = Json::object();
    doc.set("schema", Json::str("ssp-bench-report-v1"));
    doc.set("figure", Json::str(figure));
    doc.set("cell_count", Json::number(
        static_cast<std::uint64_t>(results.size())));
    if (include_host_time) {
        double total_ms = 0;
        for (const CellResult &r : results)
            total_ms += r.hostMillis;
        doc.set("host_ms_total", Json::number(total_ms));
    }

    Json cells = Json::array();
    for (const CellResult &r : results) {
        Json c = Json::object();
        c.set("label", Json::str(r.cell.label()));
        c.set("backend", Json::str(backendKindName(r.cell.backend)));
        c.set("workload", Json::str(workloadKindName(r.cell.workload)));
        c.set("cores", Json::number(std::uint64_t{r.cell.cores}));
        c.set("txs", Json::number(r.cell.txs));
        c.set("nvram_latency_multiplier",
              Json::number(r.cell.nvramLatencyMultiplier));
        c.set("ssp_cache_fixed_latency",
              Json::number(r.cell.sspCacheFixedLatency));
        // Channel/device coordinates are emitted only where they can
        // deviate from the paper machine, so the pre-refactor reports
        // (fig5..fig9, table*, smoke) stay byte-identical.
        if (r.cell.figure == "chan" || r.cell.nvramChannels != 1)
            c.set("nvram_channels",
                  Json::number(std::uint64_t{r.cell.nvramChannels}));
        if (r.cell.nvramDevice != NvramDevice::PaperPcm)
            c.set("nvram_device",
                  Json::str(nvramDeviceName(r.cell.nvramDevice)));
        if (r.cell.keyShards > 1)
            c.set("key_shards",
                  Json::number(std::uint64_t{r.cell.keyShards}));
        if (r.cell.conflictMode != ConflictMode::FirstCommitterWins)
            c.set("conflict_mode",
                  Json::str(conflictModeName(r.cell.conflictMode)));
        // Open-loop coordinates exist only on serve cells, so every
        // closed-loop report stays byte-identical.
        if (r.cell.offeredLoad > 0)
            c.set("arrival",
                  Json::str(serve::arrivalKindName(r.cell.arrival)));
        // The coherence coordinate exists on every scale256 cell (the
        // grid's axis, constant-schema like its metrics) and on any
        // future directory-mode cell; legacy broadcast reports carry
        // no coordinate and stay byte-identical.
        if (r.cell.figure == "scale256" ||
            r.cell.coherenceMode != CoherenceMode::Broadcast) {
            c.set("coherence",
                  Json::str(coherenceModeName(r.cell.coherenceMode)));
        }
        // The machines coordinate exists on every shard cell (the
        // grid's axis, constant-schema) and on any future multi-machine
        // cell; the cross-shard fraction only where 2PC can happen, so
        // the 1-machine cells' entries mirror the scale grid's shape.
        if (r.cell.figure == "shard" || r.cell.figure == "fault" ||
            r.cell.machines > 1)
            c.set("machines",
                  Json::number(std::uint64_t{r.cell.machines}));
        if (r.cell.machines > 1)
            c.set("cross_shard_pct",
                  Json::number(static_cast<std::uint64_t>(std::lround(
                      r.cell.crossShardFraction * 100))));
        // Fault coordinates exist on every fault-grid cell (the grid's
        // axes, constant-schema) and on any future fault-armed cell;
        // rates are emitted in integer tenths, like the label, so the
        // document never depends on float formatting.
        if (r.cell.figure == "fault" || r.cell.faultRate > 0 ||
            r.cell.replicate) {
            c.set("fault_rate_tenths",
                  Json::number(static_cast<std::uint64_t>(
                      std::lround(r.cell.faultRate * 10))));
            c.set("replicated", Json::boolean(r.cell.replicate));
        }
        // Seeds span the full 64-bit range, past the 2^53 integers a
        // JSON number can hold exactly — emit them as hex strings.
        char seed_hex[32];
        std::snprintf(seed_hex, sizeof(seed_hex), "0x%016llx",
                      static_cast<unsigned long long>(r.cell.scale.seed));
        c.set("seed", Json::str(seed_hex));
        c.set("ok", Json::boolean(r.ok));
        // Host time is opt-in: it varies run to run, so it must never
        // leak into the byte-stable default reports.
        if (include_host_time)
            c.set("host_ms", Json::number(r.hostMillis));
        if (!r.ok) {
            c.set("error", Json::str(r.error));
            cells.push(std::move(c));
            continue;
        }

        Json m = Json::object();
        m.set("committed_txs", Json::number(r.run.committedTxs));
        m.set("cycles", Json::number(r.run.cycles));
        m.set("tps", Json::number(r.run.tps()));
        m.set("writes_per_tx", Json::number(r.run.writesPerTx()));
        m.set("avg_cycles_per_tx",
              Json::number(r.run.committedTxs > 0
                               ? static_cast<double>(r.run.cycles) /
                                     static_cast<double>(
                                         r.run.committedTxs)
                               : 0.0));
        m.set("nvram_writes", Json::number(r.run.nvramWrites));
        m.set("logging_writes", Json::number(r.run.loggingWrites));
        m.set("data_writes", Json::number(r.run.dataWrites));
        m.set("consolidation_writes",
              Json::number(r.run.consolidationWrites));
        m.set("checkpoint_writes", Json::number(r.run.checkpointWrites));
        m.set("journal_writes", Json::number(r.run.journalWrites));
        m.set("avg_lines_per_tx", Json::number(r.run.avgLinesPerTx));
        m.set("avg_pages_per_tx", Json::number(r.run.avgPagesPerTx));
        m.set("max_pages_per_tx", Json::number(r.run.maxPagesPerTx));
        // Multi-core-only metrics are gated on the core count so every
        // single-core report stays byte-identical to the 1-core model.
        // The scale64/scale256 grids opt in at every core count: their
        // reports are new, and a constant schema across the core axis
        // is what the scaling analysis scripts want.
        if (r.cell.cores > 1 || r.cell.figure == "scale64" ||
            r.cell.figure == "scale256") {
            Json busy = Json::array();
            for (std::uint64_t v : r.run.coreBusyCycles)
                busy.push(Json::number(v));
            m.set("core_busy_cycles", std::move(busy));
            Json per_core_txs = Json::array();
            for (std::uint64_t v : r.run.coreTxs)
                per_core_txs.push(Json::number(v));
            m.set("core_txs", std::move(per_core_txs));
            m.set("imbalance", Json::number(r.run.imbalance()));
            m.set("coherence_flips", Json::number(r.run.coherenceFlips));
            m.set("coherence_invalidations",
                  Json::number(r.run.coherenceInvalidations));
            m.set("coherence_shootdowns",
                  Json::number(r.run.coherenceShootdowns));
            // Interconnect traffic: the message count exists under both
            // models on scale256 cells (it is the broadcast-vs-directory
            // comparison axis); the directory-only counters exist iff
            // the cell ran the directory model, and are absent from
            // every broadcast or legacy report.
            if (r.cell.figure == "scale256" ||
                r.cell.coherenceMode != CoherenceMode::Broadcast) {
                m.set("coherence_messages",
                      Json::number(r.run.coherenceMessages));
            }
            if (r.cell.coherenceMode == CoherenceMode::Directory) {
                m.set("directory_lookups",
                      Json::number(r.run.directoryLookups));
                m.set("hop_traversal_cycles",
                      Json::number(r.run.hopTraversalCycles));
                m.set("snoop_filter_evictions",
                      Json::number(r.run.snoopFilterEvictions));
                m.set("back_invalidations",
                      Json::number(r.run.backInvalidations));
            }
            m.set("tx_aborts", Json::number(r.run.txAborts));
            m.set("tx_retries", Json::number(r.run.txRetries));
            m.set("conflicts_write_write",
                  Json::number(r.run.conflictsWriteWrite));
            m.set("conflicts_read_write",
                  Json::number(r.run.conflictsReadWrite));
            m.set("backoff_cycles", Json::number(r.run.backoffCycles));
        }
        // 2PC and network metrics exist only where a network exists:
        // multi-machine cells.  1-machine shard cells keep the exact
        // single-machine metrics schema so scripts/check.sh can diff
        // them byte for byte against the scale grid's cells.
        if (r.cell.machines > 1) {
            m.set("single_shard_txs",
                  Json::number(r.shardTx.singleShardTxs));
            m.set("cross_shard_txs",
                  Json::number(r.shardTx.crossShardTxs));
            m.set("prepare_round_trips",
                  Json::number(r.shardTx.prepareRoundTrips));
            m.set("cross_shard_aborts",
                  Json::number(r.shardTx.crossShardAborts));
            m.set("coordinator_stall_cycles",
                  Json::number(r.shardTx.coordinatorStallCycles));
            m.set("network_messages", Json::number(r.networkMessages));
            m.set("network_cycles", Json::number(r.networkCycles));
            Json shard_cycles = Json::array();
            for (const RunResult &s : r.shardRuns)
                shard_cycles.push(Json::number(s.cycles));
            m.set("shard_cycles", std::move(shard_cycles));
            Json shard_txs = Json::array();
            for (const RunResult &s : r.shardRuns)
                shard_txs.push(Json::number(s.committedTxs));
            m.set("shard_committed_txs", std::move(shard_txs));
        }
        // Fault-harness metrics exist iff the cell could inject faults
        // (rate > 0): a zero-rate cell ran the byte-identical reliable
        // model and must not grow schema.  Replication metrics exist
        // iff replication was on — including at rate 0, where shipping
        // still prices every commit.
        if (r.cell.faultRate > 0) {
            m.set("injected_power_fails",
                  Json::number(r.faultStats.powerFails));
            m.set("coordinator_crashes",
                  Json::number(r.faultStats.coordinatorCrashes));
            m.set("participant_crashes",
                  Json::number(r.faultStats.participantCrashes));
            m.set("recoveries", Json::number(r.faultStats.recoveries));
            m.set("failovers", Json::number(r.faultStats.failovers));
            m.set("recovery_stall_cycles",
                  Json::number(r.faultStats.recoveryStallCycles));
            m.set("failover_stall_cycles",
                  Json::number(r.faultStats.failoverStallCycles));
            m.set("presumed_aborts",
                  Json::number(r.faultStats.presumedAborts));
            m.set("decision_records",
                  Json::number(r.faultStats.decisionRecords));
            m.set("messages_lost",
                  Json::number(r.faultStats.messagesLost));
            m.set("rpc_retries", Json::number(r.faultStats.rpcRetries));
            m.set("rpc_timeout_stall_cycles",
                  Json::number(r.faultStats.rpcTimeoutStallCycles));
            m.set("committed_despite_faults",
                  Json::number(r.faultStats.committedDespiteFaults));
        }
        if (r.cell.replicate) {
            m.set("log_ship_messages",
                  Json::number(r.faultStats.logShipMessages));
            m.set("log_ship_cycles",
                  Json::number(r.faultStats.logShipCycles));
        }
        // Tail-latency metrics exist only on open-loop serve cells —
        // a closed-loop run has no queues, so no request ever waits.
        if (r.cell.offeredLoad > 0) {
            m.set("p50_cycles", Json::number(r.run.p50Cycles));
            m.set("p99_cycles", Json::number(r.run.p99Cycles));
            m.set("p999_cycles", Json::number(r.run.p999Cycles));
            m.set("mean_queue_depth",
                  Json::number(r.run.meanQueueDepth));
            m.set("rejected_txs", Json::number(r.run.rejectedTxs));
            m.set("offered_load", Json::number(r.run.offeredLoad));
        }
        c.set("metrics", std::move(m));
        cells.push(std::move(c));
    }
    doc.set("cells", std::move(cells));
    return doc;
}

} // namespace ssp::sweep
