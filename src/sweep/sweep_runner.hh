/**
 * @file
 * Multi-threaded sweep execution: runs every cell of a sweep grid on a
 * worker pool and serializes the results as a machine-readable JSON
 * report (the BENCH_*.json perf-trajectory format).
 *
 * Results are written into a slot per cell, so the output order — and
 * therefore the emitted JSON — is byte-identical for any worker count.
 */

#ifndef SSP_SWEEP_SWEEP_RUNNER_HH
#define SSP_SWEEP_SWEEP_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "shard/shard_driver.hh"
#include "sim/driver.hh"
#include "sim/report.hh"
#include "sweep/sweep_grid.hh"

namespace ssp::sweep
{

/** Outcome of one executed cell. */
struct CellResult
{
    SweepCell cell;
    RunResult run{};
    bool ok = false;
    std::string error; ///< exception text when !ok
    /** Per-shard deltas; non-empty only on machines > 1 cells. */
    std::vector<RunResult> shardRuns;
    /** 2PC accounting; all zero unless machines > 1. */
    shard::ShardTxStats shardTx{};
    /** Cross-machine messages priced by the shard NetworkModel. */
    std::uint64_t networkMessages = 0;
    /** Cycles those messages charged to core clocks. */
    Cycles networkCycles = 0;
    /** Fault-harness accounting; all zero unless the cell armed it
     *  (fault rate > 0 or replication on). */
    fault::FaultStats faultStats{};
    /**
     * Host wall-clock time this cell took to build and run, in
     * milliseconds.  Always measured (one steady_clock pair per cell);
     * only serialized when the report asks for it, so the checked-in
     * BENCH_*.json files stay byte-stable run to run.
     */
    double hostMillis = 0;
};

/** Invoked after each cell completes: (result, done count, total). */
using CellCallback =
    std::function<void(const CellResult &, std::size_t, std::size_t)>;

/**
 * Execute @p cells on @p jobs worker threads (clamped to >= 1).  Each
 * cell builds its own machine and workload and runs to completion
 * independently; a throwing cell is captured as !ok instead of taking
 * the sweep down.  The callback, when set, is serialized by a mutex.
 *
 * @p cell_threads is the per-cell host-thread budget (ghost
 * speculation; see sim/ghost.hh).  Results are bit-identical at any
 * value.  jobs and cell_threads share one global budget: with
 * cell_threads > 1 the worker count is clamped so that
 * jobs * cell_threads stays within the host's hardware threads.
 */
std::vector<CellResult> runSweep(const std::vector<SweepCell> &cells,
                                 unsigned jobs,
                                 const CellCallback &on_cell = {},
                                 unsigned cell_threads = 1);

/**
 * Serialize sweep results as the BENCH_*.json report document:
 * schema/figure metadata plus one entry per cell with the cell's
 * coordinates and the measured metrics.
 *
 * With @p include_host_time set, every cell carries its measured
 * "host_ms" and the document gains a "host_ms_total" — the
 * perf-trajectory data scripts/perf_compare.py consumes.  The default
 * leaves host times out so checked-in reports are byte-identical
 * across runs and machines.
 */
Json sweepReport(const std::string &figure,
                 const std::vector<CellResult> &results,
                 bool include_host_time = false);

} // namespace ssp::sweep

#endif // SSP_SWEEP_SWEEP_RUNNER_HH
