/**
 * @file
 * Sweep grids: the declarative description of every figure/table in the
 * evaluation as a list of independent (backend, workload, configuration)
 * cells.  A grid is what the parallel sweep runner executes and what
 * the BENCH_*.json reports serialize.
 *
 * Every cell carries its own RNG seed, derived deterministically from
 * the base seed and the cell's ordinal in the full (unfiltered) grid —
 * so each cell is one self-contained deterministic stream whose result
 * depends neither on worker scheduling nor on which other cells were
 * filtered in or out.
 */

#ifndef SSP_SWEEP_SWEEP_GRID_HH
#define SSP_SWEEP_SWEEP_GRID_HH

#include <string>
#include <vector>

#include "baselines/backend_factory.hh"
#include "core/config.hh"
#include "serve/arrival.hh"
#include "workloads/workload_factory.hh"

namespace ssp::sweep
{

/**
 * Conflict handling applied to every cell of a grid: the default
 * first-committer-wins validation, the lazy read-set-only mode, or no
 * detection at all (the pre-conflict serialized timing model).
 */
enum class ConflictMode
{
    FirstCommitterWins,
    Lazy,
    Off,
};

/** Parse "fcw" / "lazy" / "off"; fatal on anything else. */
ConflictMode parseConflictMode(const std::string &name);

/** Printable conflict-mode name (the parse inverse). */
const char *conflictModeName(ConflictMode mode);

/** Printable coherence-model name ("broadcast" / "directory"). */
const char *coherenceModeName(CoherenceMode mode);

/** The Table 2 machine used by all figure benches (see bench_common). */
SspConfig paperConfig(unsigned cores = 1);

/** The workload scale used by all figure benches. */
WorkloadScale paperScale();

/** Transactions measured per cell unless the grid overrides it. */
inline constexpr std::uint64_t kDefaultTxs = 4000;

/** One independently runnable point of a figure/table grid. */
struct SweepCell
{
    std::string figure;    ///< grid this cell belongs to ("fig5", ...)
    BackendKind backend = BackendKind::Ssp;
    WorkloadKind workload = WorkloadKind::BTreeRand;
    unsigned cores = 1;    ///< simulated cores driving transactions
    std::uint64_t txs = kDefaultTxs;

    /** Figure 8 knob; 0 keeps the paper-default NVRAM timing. */
    double nvramLatencyMultiplier = 0;
    /** Figure 9 knob; 0 keeps the modeled SSP-cache latency. */
    Cycles sspCacheFixedLatency = 0;
    /** chan-grid knob: parallel NVRAM channels (1 = paper machine). */
    unsigned nvramChannels = 1;
    /** NVRAM technology preset; PaperPcm is the paper's Table 2 device. */
    NvramDevice nvramDevice = NvramDevice::PaperPcm;
    /** scale-grid knob: per-core key shards (1 = shared key space). */
    unsigned keyShards = 1;
    /** Conflict handling; non-default modes tag the label and report. */
    ConflictMode conflictMode = ConflictMode::FirstCommitterWins;
    /** queue-grid knob: offered load as a factor of measured closed-loop
     *  capacity; 0 = closed loop (every non-queue grid). */
    double offeredLoad = 0;
    /** queue-grid knob: the open-loop arrival process. */
    serve::ArrivalKind arrival = serve::ArrivalKind::Poisson;
    /** scale256-grid knob: the coherence interconnect model.  Broadcast
     *  is the flat bus every other grid (and the paper machine) uses;
     *  Directory prices the same events on the 2D-mesh home-node
     *  directory (src/interconnect/). */
    CoherenceMode coherenceMode = CoherenceMode::Broadcast;
    /** shard-grid knob: machines in the simulated cluster.  1 runs the
     *  single-machine driver verbatim (src/shard/ is never entered). */
    unsigned machines = 1;
    /** shard-grid knob: probability a coordinator slot becomes a
     *  cross-shard 2PC transaction; only meaningful with machines > 1. */
    double crossShardFraction = 0;
    /** fault-grid knob: expected machine failures per million simulated
     *  cycles per machine; 0 = no fault harness (every other grid). */
    double faultRate = 0;
    /** fault-grid knob: primary/backup replication with synchronous log
     *  shipping and failover instead of in-place recovery. */
    bool replicate = false;

    /**
     * Seed-derivation ordinal override; -1 derives from the cell's
     * position in the unfiltered grid.  The chan grid pins it to the
     * (workload, backend) position so cells differing only in channel
     * count replay the identical operation stream — channel scaling is
     * then measured on the same work, not on reseeded noise.
     */
    std::int64_t seedOrdinal = -1;

    /** Per-cell workload scale; seed is the cell's private RNG stream. */
    WorkloadScale scale{};

    /** Machine configuration the grid bases this cell on. */
    SspConfig base{};

    /** Materialize the full config (base + the cell's knobs). */
    SspConfig config() const;

    /** Compact human-readable cell id for logs ("fig5/SSP/SPS/c4"). */
    std::string label() const;
};

/** Knobs shared by all grid builders. */
struct SweepGridOptions
{
    /** Designs to include; empty means the figure's default set. */
    std::vector<BackendKind> backends{};
    /** Workloads to include; empty means the figure's default set. */
    std::vector<WorkloadKind> workloads{};
    /** Transactions per cell; 0 means the figure default. */
    std::uint64_t txs = 0;
    /** Base workload scale (per-cell seeds are derived from its seed). */
    WorkloadScale scale = paperScale();
    /** chan grid: NVRAM channel counts to sweep; empty = {1, 2, 4, 8}.
     *  Unlike the backend/workload filters this changes the grid shape,
     *  so per-cell seeds follow the requested list. */
    std::vector<unsigned> channels{};
    /** scale/scale64/queue grids: core counts to sweep; empty = the
     *  grid default.  Seeds are pinned per (workload, backend), so the
     *  list's shape does not change any cell's stream. */
    std::vector<unsigned> coreCounts{};
    /** queue grid: offered-load factors to sweep; empty =
     *  {0.3, 0.6, 0.9, 1.2}.  Seeds are pinned per (workload, backend),
     *  so the list's shape does not change any cell's stream. */
    std::vector<double> loads{};
    /** queue grid: arrival process applied to every cell. */
    serve::ArrivalKind arrival = serve::ArrivalKind::Poisson;
    /** shard/fault grids: cluster sizes to sweep; empty = the grid
     *  default ({1, 2, 4, 8} for shard, {1, 2, 4} for fault).  Seeds
     *  are pinned per (workload, backend) to the scale grid's plane, so
     *  machine counts (and the 1-machine cells vs the checked-in scale
     *  cells) replay the identical operation stream. */
    std::vector<unsigned> machines{};
    /** fault grid: fault rates (failures per Mcycle per machine) to
     *  sweep; empty = {0, 5, 20}.  0 is a valid point — the harness is
     *  armed but schedules nothing, pinning the zero-fault baseline. */
    std::vector<double> faultRates{};
    /** fault grid: replication modes to sweep; empty = {off, on}. */
    std::vector<bool> replicateModes{};
    /** NVRAM device preset applied to every cell of the grid. */
    NvramDevice nvramDevice = NvramDevice::PaperPcm;
    /** Conflict handling applied to every cell of the grid. */
    ConflictMode conflictMode = ConflictMode::FirstCommitterWins;
};

/** Grid names understood by buildFigureGrid, in presentation order. */
std::vector<std::string> knownFigures();

/**
 * Build the cell grid reproducing @p figure ("fig5".."fig9", "table3",
 * "table45", the channel-scaling "chan" grid, the core-scaling "scale",
 * "scale64" and "scale256" grids, the open-loop tail-latency "queue"
 * grid, or the tiny CI "smoke" grid), then apply the option filters.
 * Fatal on unknown figure names (the message lists the known grids)
 * and on core counts beyond what the figure's machine preset supports
 * — failing up front beats a Machine assert deep inside a worker.
 */
std::vector<SweepCell> buildFigureGrid(const std::string &figure,
                                       const SweepGridOptions &opts = {});

/** splitmix64 finalizer used to derive per-cell seeds. */
std::uint64_t deriveCellSeed(std::uint64_t base_seed, std::uint64_t ordinal);

/** Split a comma-separated list, dropping empty items. */
std::vector<std::string> splitCommas(const std::string &list);

/**
 * Parse a comma-separated count list for @p flag ("--cores",
 * "--channels"): every item must be an integer in [1, @p max_value],
 * and the list must be non-empty — an empty or invalid list is fatal,
 * never a silent fall-back to the grid default.  --cores passes
 * kMaxCores (the per-figure ceiling is enforced by buildFigureGrid);
 * --channels keeps the historical 64.
 */
std::vector<unsigned> parseCountList(const std::string &flag,
                                     const std::string &list,
                                     unsigned max_value = 64);

/**
 * Parse the --cell-threads value: one integer in [1, 64].  Values above
 * the host's hardware concurrency are capped to it (with a warning on
 * stderr) — asking for more host threads than the machine has is a
 * budget overshoot, not an error.  Anything non-numeric, zero, or
 * above 64 is fatal, exactly like parseCountList.
 */
unsigned parseCellThreads(const std::string &value);

/**
 * Parse a comma-separated offered-load list for @p flag ("--load"):
 * every item must be a decimal in (0, 10], and the list must be
 * non-empty — an empty or invalid list is fatal, never a silent
 * fall-back to the grid default.
 */
std::vector<double> parseLoadList(const std::string &flag,
                                  const std::string &list);

/**
 * Parse a comma-separated fault-rate list for --fault-rate: every item
 * must be a decimal in [0, 1000] (failures per Mcycle per machine; 0
 * is the armed-but-quiet baseline point), and the list must be
 * non-empty — an empty or invalid list is fatal.
 */
std::vector<double> parseFaultRateList(const std::string &flag,
                                       const std::string &list);

/** Parse the --replicate value: "off" = {false}, "on" = {true},
 *  "both" = {false, true}; fatal on anything else. */
std::vector<bool> parseReplicateModes(const std::string &value);

} // namespace ssp::sweep

#endif // SSP_SWEEP_SWEEP_GRID_HH
