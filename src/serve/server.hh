/**
 * @file
 * Open-loop request-server frontend over the closed-loop experiment
 * machinery.
 *
 * Where runExperiment() hands each core its next transaction the
 * instant the previous one commits (closed loop — queueing delay can
 * never exist), runServeExperiment() generates request arrivals from an
 * independent arrival process, parks them in bounded per-core FIFO
 * queues, and serves them event-driven in global arrival/completion
 * order.  Per-request latency is measured from the arrival cycle to the
 * commit-ack cycle, captured into per-core log-scale histograms, and
 * reported as exact-rank p50/p99/p999 — the metrics a serving system
 * under SLO is actually judged by.
 *
 * Offered load is specified as a factor of the machine's *measured*
 * closed-loop capacity: a short closed-loop calibration phase runs
 * first (event-driven, same core count), and the arrival rate is set to
 * load x calibrated throughput.  Load 1.2 therefore always means "20%
 * past what this backend/workload/core-count can sustain", regardless
 * of how fast the cell happens to be.
 *
 * Admission control: a request arriving at a full queue is shed and
 * counted (rejected_txs) instead of growing the queue without bound —
 * above saturation an open-loop system must either shed or diverge.
 */

#ifndef SSP_SERVE_SERVER_HH
#define SSP_SERVE_SERVER_HH

#include <vector>

#include "serve/arrival.hh"
#include "sim/driver.hh"

namespace ssp::serve
{

/** Configuration of one open-loop serving run. */
struct ServeParams
{
    ArrivalKind arrival = ArrivalKind::Poisson;
    /** Arrival rate as a factor of measured closed-loop capacity. */
    double offeredLoad = 0.6;
    /** Per-core queue bound; arrivals beyond it are shed. */
    unsigned queueDepth = 64;
    /** Closed-loop transactions used to measure capacity; 0 derives
     *  max(200, num_requests / 5). */
    std::uint64_t calibrationTxs = 0;
    /** Seed of the arrival process RNG stream (independent of the
     *  workload's key stream). */
    std::uint64_t seed = 1;
    /**
     * Fault epochs: offsets (cycles after the measured phase starts,
     * ascending) at which the machine power-fails mid-serving.  Each
     * fault crashes + recovers the backend and stalls every core for
     * faultStallCycles; completions inside the window
     * [fault, fault + 2 * faultStallCycles] are binned separately, so
     * the tail latency is reported conditioned on the fault
     * (RunResult::p99FaultEpochCycles).  Empty = no faults, the
     * byte-identical default.
     */
    std::vector<Cycles> faultAt{};
    /** Downtime charged per injected serve fault. */
    Cycles faultStallCycles = 300000;
};

/**
 * Serve @p num_requests open-loop requests on @p num_cores cores.
 * Requests are balanced round-robin across the per-core queues at
 * arrival time.  The returned metrics are deltas over the
 * post-calibration state; committedTxs counts acknowledged requests and
 * rejectedTxs the shed ones (they sum to the generated arrivals).
 */
RunResult runServeExperiment(Experiment &exp, std::uint64_t num_requests,
                             unsigned num_cores, const ServeParams &params);

} // namespace ssp::serve

#endif // SSP_SERVE_SERVER_HH
