#include "serve/latency_histogram.hh"

#include <bit>

#include "common/logging.hh"

namespace ssp::serve
{

unsigned
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < (std::uint64_t{1} << kUnitBits))
        return static_cast<unsigned>(value);
    // The octave is the position of the leading bit; the next
    // kSubBucketBits bits select the linear sub-bucket within it.
    const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(value));
    const unsigned sub = static_cast<unsigned>(
        (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
    return (1u << kUnitBits) + (msb - kUnitBits) * kSubBuckets + sub;
}

std::uint64_t
LatencyHistogram::bucketLowerBound(unsigned index)
{
    ssp_assert(index < kBucketCount, "histogram bucket out of range");
    if (index < (1u << kUnitBits))
        return index;
    const unsigned rel = index - (1u << kUnitBits);
    const unsigned msb = kUnitBits + rel / kSubBuckets;
    const std::uint64_t sub = rel % kSubBuckets;
    return (std::uint64_t{1} << msb) + (sub << (msb - kSubBucketBits));
}

void
LatencyHistogram::record(std::uint64_t value)
{
    ++counts_[bucketIndex(value)];
    ++total_;
    if (value > max_)
        max_ = value;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (unsigned i = 0; i < kBucketCount; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    if (other.max_ > max_)
        max_ = other.max_;
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (total_ == 0)
        return 0;
    if (q > 1.0)
        q = 1.0;
    // Exact rank: the ceil(q * N)-th smallest sample, at least the 1st.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_));
    if (static_cast<double>(rank) < q * static_cast<double>(total_))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBucketCount; ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return bucketLowerBound(i);
    }
    ssp_panic("histogram rank %llu beyond total %llu",
              static_cast<unsigned long long>(rank),
              static_cast<unsigned long long>(total_));
}

} // namespace ssp::serve
