/**
 * @file
 * Open-loop arrival processes for the request-server frontend.
 *
 * An arrival process generates the absolute cycle at which each request
 * reaches the machine, independently of how fast the machine serves them
 * — the defining property of an open-loop load generator, and the reason
 * queueing delay (and therefore tail latency) becomes visible at all.
 *
 * Three processes are modeled, all deterministic per-seed like every
 * other RNG stream in the simulator:
 *   - Poisson: memoryless exponential inter-arrivals at a fixed rate.
 *   - Bursty (MMPP-2): a two-state Markov-modulated Poisson process
 *     alternating between a burst state (0.6x the mean interval) and a
 *     lull state (3x); with equal expected state durations the long-run
 *     rate equals the configured mean exactly.
 *   - Diurnal: a Poisson process whose instantaneous rate ramps
 *     sinusoidally (+/-50%) over a period of 1000 mean intervals,
 *     modeling a slow day/night traffic swing within one run.
 */

#ifndef SSP_SERVE_ARRIVAL_HH
#define SSP_SERVE_ARRIVAL_HH

#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace ssp::serve
{

/** The modeled arrival processes. */
enum class ArrivalKind
{
    Poisson,
    Bursty,
    Diurnal,
};

/** Parse "poisson" / "bursty" / "diurnal"; fatal on anything else. */
ArrivalKind parseArrivalKind(const std::string &name);

/** Printable arrival-process name (the parse inverse). */
const char *arrivalKindName(ArrivalKind kind);

/** Deterministic generator of monotone absolute arrival cycles. */
class ArrivalProcess
{
  public:
    /**
     * @p mean_interval_cycles is the long-run mean inter-arrival time;
     * the offered load in requests/cycle is its reciprocal.
     */
    ArrivalProcess(ArrivalKind kind, double mean_interval_cycles,
                   std::uint64_t seed);

    /** Absolute cycle of the next arrival (non-decreasing). */
    Cycles next();

    ArrivalKind kind() const { return kind_; }

  private:
    /** Draw one inter-arrival interval in cycles. */
    double interval();

    /** Exponential draw with mean @p mean. */
    double exponential(double mean);

    ArrivalKind kind_;
    double meanInterval_;
    Rng rng_;
    double now_ = 0;
    // Bursty (MMPP-2) state: in-burst flag and the absolute switch time.
    bool inBurst_ = true;
    double nextSwitch_ = 0;
};

} // namespace ssp::serve

#endif // SSP_SERVE_ARRIVAL_HH
