#include "serve/server.hh"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "serve/latency_histogram.hh"

namespace ssp::serve
{

RunResult
runServeExperiment(Experiment &exp, std::uint64_t num_requests,
                   unsigned num_cores, const ServeParams &params)
{
    AtomicityBackend &be = *exp.backend;
    Machine &machine = be.machine();
    ssp_assert(num_requests > 0, "serve run needs at least one request");
    ssp_assert(num_cores >= 1 && num_cores <= machine.cfg().numCores,
               "serve run uses more cores than the machine has");
    ssp_assert(params.offeredLoad > 0, "offered load must be positive");
    ssp_assert(params.queueDepth > 0, "queue depth must be positive");

    // Calibrate: measure closed-loop capacity (cycles per transaction at
    // this core count) so the offered load can be expressed as a factor
    // of what the cell can actually sustain.  The calibration phase also
    // warms caches/TLBs, like the setup phase does for closed-loop runs.
    std::uint64_t calib_txs = params.calibrationTxs;
    if (calib_txs == 0)
        calib_txs = std::max<std::uint64_t>(200, num_requests / 5);
    const RunResult calib =
        runExperiment(exp, calib_txs, num_cores, ScheduleMode::EventDriven);
    ssp_assert(calib.committedTxs > 0 && calib.cycles > 0,
               "calibration phase measured no throughput");
    const double mean_interval =
        static_cast<double>(calib.cycles) /
        (static_cast<double>(calib.committedTxs) * params.offeredLoad);

    // Measured phase starts from a barrier, like every closed-loop run.
    machine.syncClocks();
    const RunBaseline base = captureRunBaseline(exp);
    const Cycles serve_start = machine.maxClock();

    RunResult res;
    res.coreBusyCycles.assign(num_cores, 0);
    res.coreTxs.assign(num_cores, 0);

    ArrivalProcess arrivals(params.arrival, mean_interval, params.seed);
    // Per-core FIFO of the arrival cycles of waiting requests.
    std::vector<std::deque<Cycles>> queues(num_cores);
    std::vector<LatencyHistogram> hists(num_cores);

    std::uint64_t delivered = 0; ///< arrivals handed to a queue (or shed)
    std::uint64_t rejected = 0;
    std::uint64_t waiting = 0; ///< requests queued but not yet in service
    Cycles next_arrival = serve_start + arrivals.next();

    // Time-weighted queue-depth integral, advanced at every event (an
    // arrival delivery or a dispatch start).  Event times are monotone:
    // arrivals are non-decreasing, and a dispatch is only taken when no
    // earlier arrival is pending.
    Cycles last_event = serve_start;
    double depth_area = 0;
    auto advance_to = [&](Cycles now) {
        ssp_assert(now >= last_event, "serve events ran backwards");
        depth_area += static_cast<double>(waiting) *
                      static_cast<double>(now - last_event);
        last_event = now;
    };

    auto run_one = [&](CoreId core) {
        const Cycles op_start = machine.clock(core);
        exp.workload->runOp(core);
        res.coreBusyCycles[core] += machine.clock(core) - op_start;
        ++res.coreTxs[core];
    };

    // Injected fault epochs: each scheduled fault crashes + recovers
    // the backend the moment simulated time would cross its offset, and
    // completions inside the window around it are binned separately.
    for (std::size_t i = 1; i < params.faultAt.size(); ++i) {
        ssp_assert(params.faultAt[i - 1] < params.faultAt[i],
                   "serve fault offsets must be ascending");
    }
    std::size_t next_fault = 0;
    std::vector<std::pair<Cycles, Cycles>> epochs;
    LatencyHistogram epoch_hist;

    while (delivered < num_requests || waiting > 0) {
        // The earliest possible dispatch: among cores with waiting
        // requests, the lowest start cycle (ties to the lowest core id).
        bool have_dispatch = false;
        unsigned best_core = 0;
        Cycles best_start = 0;
        for (unsigned c = 0; c < num_cores; ++c) {
            if (queues[c].empty())
                continue;
            const Cycles start =
                std::max(machine.clock(c), queues[c].front());
            if (!have_dispatch || start < best_start) {
                have_dispatch = true;
                best_core = c;
                best_start = start;
            }
        }

        if (next_fault < params.faultAt.size()) {
            const Cycles t_fault =
                serve_start + params.faultAt[next_fault];
            const bool arrival_next =
                delivered < num_requests &&
                (!have_dispatch || next_arrival <= best_start);
            const Cycles t_next =
                arrival_next ? next_arrival : best_start;
            if (t_fault <= t_next) {
                // Power failure mid-serving: volatile state is lost,
                // recovery replays the durable image, and every core
                // stalls for the outage.  Queued requests are host-side
                // client state and survive to be served late.
                advance_to(t_fault);
                be.crash();
                be.recover();
                for (unsigned c = 0; c < num_cores; ++c) {
                    machine.clock(c) =
                        std::max(machine.clock(c), t_fault) +
                        params.faultStallCycles;
                }
                epochs.emplace_back(
                    t_fault, t_fault + 2 * params.faultStallCycles);
                ++next_fault;
                continue;
            }
        }

        if (delivered < num_requests &&
            (!have_dispatch || next_arrival <= best_start)) {
            // Deliver the next arrival to its queue (round-robin across
            // cores), shedding it if the queue is at its bound.
            advance_to(next_arrival);
            const unsigned core =
                static_cast<unsigned>(delivered % num_cores);
            if (queues[core].size() >= params.queueDepth) {
                ++rejected;
            } else {
                queues[core].push_back(next_arrival);
                ++waiting;
            }
            ++delivered;
            if (delivered < num_requests)
                next_arrival = serve_start + arrivals.next();
            continue;
        }

        // Dispatch: the request leaves the queue at its start cycle; an
        // idle core fast-forwards to the arrival it was waiting for.
        advance_to(best_start);
        const Cycles arrived = queues[best_core].front();
        queues[best_core].pop_front();
        --waiting;
        machine.clock(best_core) =
            std::max(machine.clock(best_core), arrived);
        run_one(best_core);
        const Cycles done = machine.clock(best_core);
        hists[best_core].record(done - arrived);
        for (const auto &[from, to] : epochs) {
            if (done >= from && done <= to) {
                epoch_hist.record(done - arrived);
                break;
            }
        }
    }

    finishRunMetrics(res, exp, base);

    LatencyHistogram merged;
    for (const LatencyHistogram &h : hists)
        merged.merge(h);
    ssp_assert(merged.count() + rejected == num_requests,
               "serve run lost requests");
    res.p50Cycles = merged.percentile(0.50);
    res.p99Cycles = merged.percentile(0.99);
    res.p999Cycles = merged.percentile(0.999);
    res.rejectedTxs = rejected;
    res.offeredLoad = params.offeredLoad;
    res.faultEpochs = static_cast<std::uint64_t>(epochs.size());
    res.faultEpochTxs = epoch_hist.count();
    res.p99FaultEpochCycles =
        epoch_hist.count() > 0 ? epoch_hist.percentile(0.99) : 0;
    const Cycles elapsed = machine.maxClock() - serve_start;
    res.meanQueueDepth =
        elapsed == 0 ? 0 : depth_area / static_cast<double>(elapsed);
    return res;
}

} // namespace ssp::serve
