/**
 * @file
 * Fixed-bucket log-scale latency histogram with exact-rank percentiles.
 *
 * Per-request commit latencies span many orders of magnitude once a
 * serving system is pushed toward saturation, so recording them into a
 * fixed array of log-spaced buckets keeps the capture O(1) per request
 * and the memory constant regardless of run length.  The layout is the
 * HDR-histogram log-linear scheme: values below 2^kUnitBits land in
 * unit-width buckets (recorded exactly), and every power-of-two octave
 * above that is split into 2^kSubBucketBits linear sub-buckets, so the
 * quantization error is bounded by 1/2^kSubBucketBits (~3.1%) of the
 * value everywhere.
 *
 * percentile() implements the exact-rank definition: p(q) is the value
 * of the ceil(q * N)-th smallest recorded sample (1-based), reported as
 * the lower bound of the bucket that sample landed in — exact whenever
 * the sample was below 2^kUnitBits.
 */

#ifndef SSP_SERVE_LATENCY_HISTOGRAM_HH
#define SSP_SERVE_LATENCY_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace ssp::serve
{

/** Log-linear histogram over unsigned 64-bit values (latency cycles). */
class LatencyHistogram
{
  public:
    /** Values below 2^kUnitBits are recorded exactly (unit buckets). */
    static constexpr unsigned kUnitBits = 6;
    /** Linear sub-buckets per octave above the unit range. */
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Octaves kUnitBits..63, each split into kSubBuckets buckets. */
    static constexpr unsigned kBucketCount =
        (1u << kUnitBits) + (64 - kUnitBits) * kSubBuckets;

    LatencyHistogram() : counts_(kBucketCount, 0) {}

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Fold @p other into this histogram (per-core merge). */
    void merge(const LatencyHistogram &other);

    /** Total recorded samples. */
    std::uint64_t count() const { return total_; }

    /**
     * Exact-rank percentile: the bucket lower bound of the
     * ceil(q * count)-th smallest sample (1-based; q clamped to (0, 1]).
     * 0 when the histogram is empty.
     */
    std::uint64_t percentile(double q) const;

    /** Largest recorded sample (tracked exactly). 0 when empty. */
    std::uint64_t maxValue() const { return max_; }

    /** Bucket index a value lands in. */
    static unsigned bucketIndex(std::uint64_t value);

    /** Smallest value mapping to bucket @p index. */
    static std::uint64_t bucketLowerBound(unsigned index);

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace ssp::serve

#endif // SSP_SERVE_LATENCY_HISTOGRAM_HH
