#include "serve/arrival.hh"

#include <cmath>

#include "common/logging.hh"

namespace ssp::serve
{

namespace
{

// Bursty (MMPP-2) shape: burst/lull interval multipliers whose rates
// average to exactly 1/mean under equal expected state durations
// ((1/0.6 + 1/3) / 2 == 1), and the mean state duration in cycles
// expressed in mean inter-arrival times.
constexpr double kBurstIntervalFactor = 0.6;
constexpr double kLullIntervalFactor = 3.0;
constexpr double kStateMeanIntervals = 200.0;

// Diurnal shape: sinusoidal rate swing amplitude and period (in mean
// inter-arrival times) — a run of ~2000 requests sees about two full
// day/night cycles.
constexpr double kDiurnalAmplitude = 0.5;
constexpr double kDiurnalPeriodIntervals = 1000.0;

} // namespace

ArrivalKind
parseArrivalKind(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    if (name == "diurnal")
        return ArrivalKind::Diurnal;
    ssp_fatal("unknown arrival process '%s' (expected poisson, bursty or "
              "diurnal)",
              name.c_str());
}

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    ssp_panic("unreachable arrival kind");
}

ArrivalProcess::ArrivalProcess(ArrivalKind kind,
                               double mean_interval_cycles,
                               std::uint64_t seed)
    : kind_(kind), meanInterval_(mean_interval_cycles), rng_(seed)
{
    ssp_assert(mean_interval_cycles > 0,
               "arrival mean interval must be positive");
    if (kind_ == ArrivalKind::Bursty) {
        nextSwitch_ =
            exponential(kStateMeanIntervals * meanInterval_);
    }
}

double
ArrivalProcess::exponential(double mean)
{
    // Inverse-CDF draw; 1 - u stays in (0, 1] so log() is finite.
    return -std::log(1.0 - rng_.nextDouble()) * mean;
}

double
ArrivalProcess::interval()
{
    switch (kind_) {
      case ArrivalKind::Poisson:
        return exponential(meanInterval_);
      case ArrivalKind::Bursty:
        if (now_ >= nextSwitch_) {
            inBurst_ = !inBurst_;
            nextSwitch_ =
                now_ + exponential(kStateMeanIntervals * meanInterval_);
        }
        return exponential(meanInterval_ * (inBurst_
                                                ? kBurstIntervalFactor
                                                : kLullIntervalFactor));
      case ArrivalKind::Diurnal: {
        const double phase =
            now_ / (kDiurnalPeriodIntervals * meanInterval_);
        const double rate_scale =
            1.0 + kDiurnalAmplitude *
                      std::sin(2.0 * 3.141592653589793 * phase);
        return exponential(meanInterval_ / rate_scale);
      }
    }
    ssp_panic("unreachable arrival kind");
}

Cycles
ArrivalProcess::next()
{
    now_ += interval();
    return static_cast<Cycles>(now_);
}

} // namespace ssp::serve
