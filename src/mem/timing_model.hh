/**
 * @file
 * Bank/row-buffer timing model for one memory technology (DRAM or NVRAM).
 *
 * This is the DRAMSim2-style substrate the paper's evaluation runs on
 * (Table 2): per-bank row buffers, distinct read/write access latencies,
 * and bank-level parallelism.  The model is deliberately first-order —
 * a request to a busy bank queues behind it; a row-buffer hit pays a
 * reduced latency; a miss pays the full device latency.
 */

#ifndef SSP_MEM_TIMING_MODEL_HH
#define SSP_MEM_TIMING_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ssp
{

/** Static timing parameters of one memory technology. */
struct MemTimingParams
{
    /** Human-readable name used in stats ("dram", "nvram").  An owned
     *  string: configs built dynamically (device presets, sweeps) must
     *  not leave dangling pointers behind. */
    std::string name = "mem";
    /** Number of banks on the (single) channel. */
    unsigned banks = 32;
    /** Row-buffer size in bytes. */
    std::uint64_t rowBufferBytes = 2048;
    /** Array read latency on a row miss, in core cycles. */
    Cycles readLatency = 185;
    /** Array write latency on a row miss, in core cycles. */
    Cycles writeLatency = 740;
    /** Fraction of the miss latency paid on a read row-buffer hit. */
    double rowHitFraction = 0.4;
    /**
     * Fraction of the miss latency paid on a write row-buffer hit.
     * DRAM writes benefit like reads (0.4); NVRAM cell programming
     * dominates writes, so the row buffer gives no discount (1.0).
     */
    double writeHitFraction = 1.0;

    /** Derived: latency of a row-buffer hit for reads. */
    Cycles readHitLatency() const;
    /** Derived: latency of a row-buffer hit for writes. */
    Cycles writeHitLatency() const;
};

/**
 * Timing state for one memory channel.
 *
 * Each access returns its completion time given the issue time; the model
 * tracks per-bank availability and open rows.  Background traffic (page
 * consolidation, checkpointing, post-commit write-back) occupies banks —
 * so it steals bandwidth from the critical path — but callers choose not
 * to stall on its completion, which is exactly how the paper moves those
 * writes off the critical path.
 */
class MemTimingModel
{
  public:
    explicit MemTimingModel(const MemTimingParams &params);

    /**
     * Issue a line-sized access.
     *
     * @param addr Physical byte address (used for bank/row mapping).
     * @param is_write True for writes.
     * @param now Issue time in core cycles.
     * @param background Background writes (consolidation, checkpointing,
     *        post-commit write-back, cache evictions) occupy banks but
     *        do not enter the ordered foreground write queue, so nothing
     *        on the critical path waits behind them.
     * @return Completion time in core cycles (>= now).
     */
    Cycles access(Addr addr, bool is_write, Cycles now,
                  bool background = false);

    /** Row-buffer hit count (reads + writes). */
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    const MemTimingParams &params() const { return params_; }

    /** Forget all bank state (used across simulated power cycles). */
    void reset();

  private:
    struct Bank
    {
        Cycles freeAt = 0;
        std::uint64_t openRow = ~std::uint64_t{0};
    };

    /** Data-bus burst occupancy per foreground write (core cycles). */
    static constexpr Cycles kWriteBurstCycles = 24;

    /**
     * Next free data-bus slot for foreground writes.  Independent
     * flushes issued before one fence drain bank-parallel but still
     * share the channel — redundant critical-path write traffic costs
     * bus slots, which is the effect the paper attacks.  Background
     * writes (consolidation, checkpoints, post-commit write-back) use
     * idle slots and are not modeled as contending.
     */
    Cycles writeBusFreeAt_ = 0;

    unsigned bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    MemTimingParams params_;
    std::vector<Bank> banks_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace ssp

#endif // SSP_MEM_TIMING_MODEL_HH
