/**
 * @file
 * Named memory-device presets.
 *
 * The paper evaluates one operating point (Table 2: DRAM at 50 ns,
 * PCM-like NVRAM at 50/200 ns read/write).  The presets make that point
 * one member of a small family of device regimes — the axis the related
 * microflow/LBM literature sweeps instead of a single configuration —
 * so benches and sweeps can select a technology by name instead of
 * spelling out ad-hoc MemTimingParams literals.
 */

#ifndef SSP_MEM_DEVICE_PRESETS_HH
#define SSP_MEM_DEVICE_PRESETS_HH

#include <string_view>
#include <vector>

#include "mem/timing_model.hh"

namespace ssp
{

/** NVRAM technology presets selectable by name. */
enum class NvramDevice : unsigned
{
    /** The paper's Table 2 device: PCM-like, 50 ns read / 200 ns write,
     *  no row-buffer discount on writes.  The default everywhere. */
    PaperPcm = 0,
    /** STT-MRAM-like: DRAM-class reads, writes only mildly slower. */
    SttMramFast,
    /** Fast-flash-like: slow reads, very slow block programming. */
    FlashSlow,
    /** Control regime: the NVRAM region timed exactly like DRAM. */
    DramOnly,
};

/** CLI/report name of a preset ("paper-pcm", "stt-mram", ...). */
const char *nvramDeviceName(NvramDevice device);

/** Parse a preset name; fatal (throws via ssp_fatal) on unknown names. */
NvramDevice parseNvramDevice(std::string_view name);

/** All presets, in declaration order (for --list style output). */
std::vector<NvramDevice> knownNvramDevices();

/** The Table 2 DRAM channel timing. */
MemTimingParams dramDevicePreset();

/** Timing of one NVRAM technology preset. */
MemTimingParams nvramDevicePreset(NvramDevice device);

} // namespace ssp

#endif // SSP_MEM_DEVICE_PRESETS_HH
