#include "mem/memory_bus.hh"

#include "common/logging.hh"

namespace ssp
{

const char *
writeCategoryName(WriteCategory cat)
{
    switch (cat) {
      case WriteCategory::Data:
        return "data";
      case WriteCategory::UndoLog:
        return "undo-log";
      case WriteCategory::RedoLog:
        return "redo-log";
      case WriteCategory::MetaJournal:
        return "meta-journal";
      case WriteCategory::Consolidation:
        return "consolidation";
      case WriteCategory::Checkpoint:
        return "checkpoint";
      case WriteCategory::PageCopy:
        return "page-copy";
      case WriteCategory::Other:
        return "other";
      default:
        return "invalid";
    }
}

MemoryBus::MemoryBus(PhysMem &mem, const MemSystemParams &params)
    : mem_(mem),
      dram_(params.dram, params.dramChannels, params.interleave),
      nvram_(params.nvram, params.nvramChannels, params.interleave)
{
}

MemoryBus::MemoryBus(PhysMem &mem, const MemTimingParams &dram_params,
                     const MemTimingParams &nvram_params)
    : MemoryBus(mem, MemSystemParams{dram_params, nvram_params, 1, 1,
                                     InterleaveGranularity::Line})
{
}

Cycles
MemoryBus::issueRead(Addr line_addr, Cycles now)
{
    if (mem_.isNvramAddr(line_addr)) {
        ++nvramReads_;
        return nvram_.access(line_addr, false, now);
    }
    ++dramReads_;
    return dram_.access(line_addr, false, now);
}

Cycles
MemoryBus::issueWrite(Addr line_addr, WriteCategory cat, Cycles now,
                      bool background)
{
    if (mem_.isNvramAddr(line_addr)) {
        ++nvramWriteCount_[static_cast<unsigned>(cat)];
        return nvram_.access(line_addr, true, now, background);
    }
    ++dramWrites_;
    return dram_.access(line_addr, true, now, background);
}

std::uint64_t
MemoryBus::nvramWrites() const
{
    std::uint64_t total = 0;
    for (auto c : nvramWriteCount_)
        total += c;
    return total;
}

void
MemoryBus::resetStats()
{
    nvramWriteCount_.fill(0);
    nvramReads_ = 0;
    dramReads_ = 0;
    dramWrites_ = 0;
}

void
MemoryBus::resetTiming()
{
    dram_.reset();
    nvram_.reset();
}

} // namespace ssp
