/**
 * @file
 * The MemSystem layer: channel-level parallelism for one memory
 * technology.
 *
 * The paper's evaluation runs on a single DRAM/NVRAM channel pair; this
 * layer generalizes each side of that pair into a MemChannelGroup that
 * interleaves line addresses across N identically-parameterized channels
 * (MemTimingModel instances).  Interleaving is line- or page-granular:
 * consecutive granules rotate round-robin across channels, and each
 * channel sees a compacted channel-local address space so its bank/row
 * geometry behaves as if the channel owned a contiguous memory of its
 * own.  With one channel the group is bit-identical to the bare timing
 * model — the paper's Figure 5–9 configurations are untouched.
 *
 * The group also arbitrates each channel's command/data bus for
 * foreground reads: concurrent cores queue on the channel instead of
 * timing in isolation.  Foreground writes already serialize on the
 * per-channel write data bus inside MemTimingModel, and a single core's
 * reads are blocking (the next read issues only after the previous
 * completion, and every device read latency exceeds the burst slot), so
 * single-core timing is unchanged.
 */

#ifndef SSP_MEM_MEM_SYSTEM_HH
#define SSP_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/device_presets.hh"
#include "mem/timing_model.hh"

namespace ssp
{

/** Unit of the round-robin address interleave across channels. */
enum class InterleaveGranularity : unsigned
{
    Line = 0, ///< consecutive 64 B lines rotate across channels
    Page,     ///< consecutive 4 KiB pages rotate across channels
};

/** Printable name of an interleave granularity ("line", "page"). */
const char *interleaveGranularityName(InterleaveGranularity granularity);

/** Interleave granule size in bytes. */
constexpr std::uint64_t
interleaveGranuleBytes(InterleaveGranularity granularity)
{
    return granularity == InterleaveGranularity::Page ? kPageSize
                                                      : kLineSize;
}

/**
 * N parallel channels of one memory technology behind a single access
 * interface.
 *
 * Every channel is an independent MemTimingModel (its own banks, row
 * buffers and foreground write bus), so requests to different channels
 * never queue behind each other.  channelOf() picks the channel from
 * the granule index; channelLocalAddr() folds the channel bits out of
 * the address so each channel's bank/row mapping operates on its own
 * dense address space.  Both are the identity for one channel.
 */
class MemChannelGroup
{
  public:
    MemChannelGroup(const MemTimingParams &params, unsigned channels,
                    InterleaveGranularity granularity);

    /**
     * Issue a line-sized access; routes to the owning channel.  Same
     * contract as MemTimingModel::access (background traffic occupies
     * nothing on the critical path).
     * @return Completion time in core cycles (>= now).
     */
    Cycles access(Addr addr, bool is_write, Cycles now,
                  bool background = false);

    /** Channel owning @p addr under the configured interleave. */
    unsigned channelOf(Addr addr) const;

    /** @p addr folded into the owning channel's dense address space. */
    Addr channelLocalAddr(Addr addr) const;

    unsigned channelCount() const
    {
        return static_cast<unsigned>(channels_.size());
    }
    MemTimingModel &channel(unsigned idx) { return channels_[idx]; }
    const MemTimingModel &channel(unsigned idx) const
    {
        return channels_[idx];
    }

    const MemTimingParams &params() const { return params_; }
    InterleaveGranularity granularity() const { return granularity_; }

    // Aggregate traffic stats, summed over channels.
    std::uint64_t rowHits() const;
    std::uint64_t rowMisses() const;
    std::uint64_t reads() const;
    std::uint64_t writes() const;

    /** Forget all bank state (used across simulated power cycles). */
    void reset();

  private:
    /**
     * Command/data-bus burst occupancy per foreground read (core
     * cycles).  Matches MemTimingModel::kWriteBurstCycles and is below
     * every device's row-hit read latency, so a lone core — whose reads
     * are strictly ordered — never observes the bus busy.
     */
    static constexpr Cycles kReadBurstCycles = 24;

    MemTimingParams params_;
    InterleaveGranularity granularity_;
    std::uint64_t granuleBytes_;
    std::vector<MemTimingModel> channels_;
    /** Per-channel busy-until time of the foreground read bus. */
    std::vector<Cycles> readBusFreeAt_;
};

/**
 * Full description of the machine's memory system: one channel group
 * per technology plus the shared interleave granularity.  SspConfig
 * produces this via SspConfig::memSystem(); MemoryBus consumes it.
 */
struct MemSystemParams
{
    MemTimingParams dram{};
    MemTimingParams nvram{};
    unsigned dramChannels = 1;
    unsigned nvramChannels = 1;
    InterleaveGranularity interleave = InterleaveGranularity::Line;
};

} // namespace ssp

#endif // SSP_MEM_MEM_SYSTEM_HH
