#include "mem/mem_system.hh"

#include "common/logging.hh"

namespace ssp
{

const char *
interleaveGranularityName(InterleaveGranularity granularity)
{
    switch (granularity) {
      case InterleaveGranularity::Line:
        return "line";
      case InterleaveGranularity::Page:
        return "page";
      default:
        return "invalid";
    }
}

MemChannelGroup::MemChannelGroup(const MemTimingParams &params,
                                 unsigned channels,
                                 InterleaveGranularity granularity)
    : params_(params), granularity_(granularity),
      granuleBytes_(interleaveGranuleBytes(granularity))
{
    ssp_assert(channels > 0, "a channel group needs at least one channel");
    channels_.reserve(channels);
    for (unsigned c = 0; c < channels; ++c)
        channels_.emplace_back(params);
    readBusFreeAt_.assign(channels, 0);
}

unsigned
MemChannelGroup::channelOf(Addr addr) const
{
    return static_cast<unsigned>((addr / granuleBytes_) %
                                 channels_.size());
}

Addr
MemChannelGroup::channelLocalAddr(Addr addr) const
{
    // Fold the round-robin channel bits out: granule g of the global
    // space becomes granule g/N of its channel, preserving the offset
    // within the granule.  Identity for one channel, so single-channel
    // timing is bit-identical to the bare MemTimingModel.
    const std::uint64_t granule = addr / granuleBytes_;
    return (granule / channels_.size()) * granuleBytes_ +
           addr % granuleBytes_;
}

Cycles
MemChannelGroup::access(Addr addr, bool is_write, Cycles now,
                        bool background)
{
    // Hot path: derive channel and local address from one granule
    // quotient instead of re-dividing in channelOf/channelLocalAddr.
    const std::uint64_t granule = addr / granuleBytes_;
    const std::size_t n = channels_.size();
    const std::size_t idx = granule % n;
    MemTimingModel &ch = channels_[idx];
    const Addr local =
        (granule / n) * granuleBytes_ + addr % granuleBytes_;
    if (background || is_write)
        return ch.access(local, is_write, now, background);
    // Foreground reads arbitrate the channel's command/data bus: each
    // occupies one burst slot, so concurrent cores queue on the channel
    // instead of overlapping for free.  A lone core's reads are
    // blocking and therefore spaced by at least one device latency —
    // the bus is always free again by then, keeping single-core timing
    // bit-identical.
    const Cycles issue = std::max(now, readBusFreeAt_[idx]);
    readBusFreeAt_[idx] = issue + kReadBurstCycles;
    return ch.access(local, false, issue, false);
}

std::uint64_t
MemChannelGroup::rowHits() const
{
    std::uint64_t n = 0;
    for (const MemTimingModel &ch : channels_)
        n += ch.rowHits();
    return n;
}

std::uint64_t
MemChannelGroup::rowMisses() const
{
    std::uint64_t n = 0;
    for (const MemTimingModel &ch : channels_)
        n += ch.rowMisses();
    return n;
}

std::uint64_t
MemChannelGroup::reads() const
{
    std::uint64_t n = 0;
    for (const MemTimingModel &ch : channels_)
        n += ch.reads();
    return n;
}

std::uint64_t
MemChannelGroup::writes() const
{
    std::uint64_t n = 0;
    for (const MemTimingModel &ch : channels_)
        n += ch.writes();
    return n;
}

void
MemChannelGroup::reset()
{
    for (MemTimingModel &ch : channels_)
        ch.reset();
    readBusFreeAt_.assign(channels_.size(), 0);
}

} // namespace ssp
