#include "mem/timing_model.hh"

#include "common/logging.hh"

namespace ssp
{

Cycles
MemTimingParams::readHitLatency() const
{
    return static_cast<Cycles>(static_cast<double>(readLatency) *
                               rowHitFraction);
}

Cycles
MemTimingParams::writeHitLatency() const
{
    return static_cast<Cycles>(static_cast<double>(writeLatency) *
                               writeHitFraction);
}

MemTimingModel::MemTimingModel(const MemTimingParams &params)
    : params_(params), banks_(params.banks)
{
    ssp_assert(params.banks > 0);
    ssp_assert(params.rowBufferBytes >= kLineSize);
}

unsigned
MemTimingModel::bankOf(Addr addr) const
{
    // Interleave consecutive rows across banks.
    return static_cast<unsigned>((addr / params_.rowBufferBytes) %
                                 params_.banks);
}

std::uint64_t
MemTimingModel::rowOf(Addr addr) const
{
    return addr / (params_.rowBufferBytes * params_.banks);
}

Cycles
MemTimingModel::access(Addr addr, bool is_write, Cycles now,
                       bool background)
{
    Bank &bank = banks_[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);

    const bool row_hit = (bank.openRow == row);
    Cycles latency;
    if (row_hit) {
        ++rowHits_;
        latency = is_write ? params_.writeHitLatency()
                           : params_.readHitLatency();
    } else {
        ++rowMisses_;
        latency = is_write ? params_.writeLatency : params_.readLatency;
    }
    if (is_write)
        ++writes_;
    else
        ++reads_;

    Cycles start = std::max(now, bank.freeAt);
    if (background) {
        // Background writes (consolidation, checkpoints, post-commit
        // write-back, evictions) drain opportunistically in idle slots
        // under write-priority scheduling: estimate their completion
        // but do not occupy the bank, so nothing on the critical path
        // ever queues behind them.
        return start + latency;
    }
    // Foreground writes additionally share the channel's data bus: a
    // batch of independent flushes costs bank-parallel array time plus
    // one bus burst slot each.
    if (is_write) {
        start = std::max(start, writeBusFreeAt_);
        writeBusFreeAt_ = start + kWriteBurstCycles;
    }
    const Cycles done = start + latency;
    bank.freeAt = done;
    bank.openRow = row;
    return done;
}

void
MemTimingModel::reset()
{
    for (auto &bank : banks_)
        bank = Bank{};
    writeBusFreeAt_ = 0;
}

} // namespace ssp
