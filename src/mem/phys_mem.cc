#include "mem/phys_mem.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ssp
{

PhysMem::PhysMem(std::uint64_t nvram_pages, std::uint64_t dram_pages)
    : nvramPages_(nvram_pages), dramPages_(dram_pages)
{
    ssp_assert(nvram_pages > 0);
    pages_.resize(totalPages(), nullptr);
}

PhysMem::~PhysMem()
{
    for (std::uint8_t *page : pages_)
        delete[] page;
}

std::uint8_t *
PhysMem::allocPage(Ppn ppn)
{
    // Hard check on the cold path: every first touch of a page funnels
    // through here, so an out-of-range paddr still dies cleanly in
    // Release instead of corrupting the heap — while the hot lookups
    // above keep only the debug-build assert.
    ssp_assert(ppn < totalPages(), "ppn %llx out of range",
               static_cast<unsigned long long>(ppn));
    auto *page = new std::uint8_t[kPageSize];
    std::memset(page, 0, kPageSize);
    // Release store so a ghost's acquire load sees the zeroed page.
    std::atomic_ref<std::uint8_t *>(pages_[ppn])
        .store(page, std::memory_order_release);
    return page;
}

void
PhysMem::readSlow(Addr addr, void *buf, std::uint64_t size) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        std::uint64_t in_page = std::min<std::uint64_t>(
            size, kPageSize - pageOffset(addr));
        const std::uint8_t *page = pageForRead(addr);
        if (page == nullptr)
            std::memset(out, 0, in_page);
        else
            std::memcpy(out, page + pageOffset(addr), in_page);
        addr += in_page;
        out += in_page;
        size -= in_page;
    }
}

void
PhysMem::writeSlow(Addr addr, const void *buf, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        std::uint64_t in_page = std::min<std::uint64_t>(
            size, kPageSize - pageOffset(addr));
        storeBytes(pageFor(addr, true) + pageOffset(addr), in, in_page);
        addr += in_page;
        in += in_page;
        size -= in_page;
    }
}

void
PhysMem::copyLine(Addr dst, Addr src)
{
    std::uint8_t tmp[kLineSize];
    read(src, tmp, kLineSize);
    write(dst, tmp, kLineSize);
}

std::uint64_t
PhysMem::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
PhysMem::write64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

void
PhysMem::powerFail()
{
    for (Ppn ppn = nvramPages_; ppn < totalPages(); ++ppn) {
        delete[] pages_[ppn];
        std::atomic_ref<std::uint8_t *>(pages_[ppn])
            .store(nullptr, std::memory_order_release);
    }
    // The lookup cache may point at a just-released DRAM page.
    lastPpn_ = kInvalidPpn;
    lastPage_ = nullptr;
}

std::unordered_map<Ppn, std::vector<std::uint8_t>>
PhysMem::snapshotNvram() const
{
    // Size the table up front: the crash tests snapshot after every
    // injected failure, and growing a rehashing map page by page was
    // measurable churn there.
    std::uint64_t allocated = 0;
    for (Ppn ppn = 0; ppn < nvramPages_; ++ppn)
        allocated += pagePtr(ppn) != nullptr ? 1 : 0;
    std::unordered_map<Ppn, std::vector<std::uint8_t>> snap;
    snap.reserve(allocated);
    for (Ppn ppn = 0; ppn < nvramPages_; ++ppn) {
        const std::uint8_t *page = pagePtr(ppn);
        if (page == nullptr)
            continue;
        snap.emplace(ppn, std::vector<std::uint8_t>(page, page + kPageSize));
    }
    return snap;
}

std::uint64_t
PhysMem::allocatedPages() const
{
    std::uint64_t n = 0;
    for (Ppn ppn = 0; ppn < totalPages(); ++ppn)
        n += pagePtr(ppn) != nullptr ? 1 : 0;
    return n;
}

} // namespace ssp
