#include "mem/phys_mem.hh"

#include "common/logging.hh"

namespace ssp
{

PhysMem::PhysMem(std::uint64_t nvram_pages, std::uint64_t dram_pages)
    : nvramPages_(nvram_pages), dramPages_(dram_pages)
{
    ssp_assert(nvram_pages > 0);
}

std::uint8_t *
PhysMem::pageFor(Addr addr, bool create)
{
    Ppn ppn = pageOf(addr);
    ssp_assert(ppn < totalPages(), "paddr %llx out of range",
               static_cast<unsigned long long>(addr));
    auto it = pages_.find(ppn);
    if (it != pages_.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto page = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    auto *raw = page.get();
    pages_.emplace(ppn, std::move(page));
    return raw;
}

const std::uint8_t *
PhysMem::pageForRead(Addr addr) const
{
    Ppn ppn = pageOf(addr);
    ssp_assert(ppn < totalPages(), "paddr %llx out of range",
               static_cast<unsigned long long>(addr));
    auto it = pages_.find(ppn);
    return it == pages_.end() ? nullptr : it->second.get();
}

void
PhysMem::read(Addr addr, void *buf, std::uint64_t size) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        std::uint64_t in_page = std::min<std::uint64_t>(
            size, kPageSize - pageOffset(addr));
        const std::uint8_t *page = pageForRead(addr);
        if (page == nullptr)
            std::memset(out, 0, in_page);
        else
            std::memcpy(out, page + pageOffset(addr), in_page);
        addr += in_page;
        out += in_page;
        size -= in_page;
    }
}

void
PhysMem::write(Addr addr, const void *buf, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        std::uint64_t in_page = std::min<std::uint64_t>(
            size, kPageSize - pageOffset(addr));
        std::uint8_t *page = pageFor(addr, true);
        std::memcpy(page + pageOffset(addr), in, in_page);
        addr += in_page;
        in += in_page;
        size -= in_page;
    }
}

void
PhysMem::copyLine(Addr dst, Addr src)
{
    std::uint8_t tmp[kLineSize];
    read(src, tmp, kLineSize);
    write(dst, tmp, kLineSize);
}

std::uint64_t
PhysMem::read64(Addr addr) const
{
    std::uint64_t v = 0;
    read(addr, &v, sizeof(v));
    return v;
}

void
PhysMem::write64(Addr addr, std::uint64_t value)
{
    write(addr, &value, sizeof(value));
}

void
PhysMem::powerFail()
{
    for (auto it = pages_.begin(); it != pages_.end();) {
        if (!isNvramPage(it->first))
            it = pages_.erase(it);
        else
            ++it;
    }
}

std::unordered_map<Ppn, std::vector<std::uint8_t>>
PhysMem::snapshotNvram() const
{
    std::unordered_map<Ppn, std::vector<std::uint8_t>> snap;
    for (const auto &kv : pages_) {
        if (!isNvramPage(kv.first))
            continue;
        snap.emplace(kv.first,
                     std::vector<std::uint8_t>(kv.second.get(),
                                               kv.second.get() + kPageSize));
    }
    return snap;
}

} // namespace ssp
