#include "mem/device_presets.hh"

#include <string>

#include "common/logging.hh"

namespace ssp
{

const char *
nvramDeviceName(NvramDevice device)
{
    switch (device) {
      case NvramDevice::PaperPcm:
        return "paper-pcm";
      case NvramDevice::SttMramFast:
        return "stt-mram";
      case NvramDevice::FlashSlow:
        return "flash";
      case NvramDevice::DramOnly:
        return "dram-only";
      default:
        return "invalid";
    }
}

NvramDevice
parseNvramDevice(std::string_view name)
{
    for (NvramDevice d : knownNvramDevices()) {
        if (name == nvramDeviceName(d))
            return d;
    }
    ssp_fatal("unknown NVRAM device preset '%s' (known: paper-pcm, "
              "stt-mram, flash, dram-only)",
              std::string(name).c_str());
}

std::vector<NvramDevice>
knownNvramDevices()
{
    return {NvramDevice::PaperPcm, NvramDevice::SttMramFast,
            NvramDevice::FlashSlow, NvramDevice::DramOnly};
}

MemTimingParams
dramDevicePreset()
{
    // Table 2: 64 banks, 1 KiB row buffers, 50 ns symmetric access,
    // writes enjoy the same row-buffer discount as reads.
    return MemTimingParams{"dram", 64, 1024, nsToCycles(50),
                           nsToCycles(50), 0.4, 0.4};
}

MemTimingParams
nvramDevicePreset(NvramDevice device)
{
    switch (device) {
      case NvramDevice::PaperPcm:
        // Table 2: 50 ns reads, 200 ns writes; cell programming
        // dominates writes, so the row buffer gives no write discount.
        return MemTimingParams{"nvram", 32, 2048, nsToCycles(50),
                               nsToCycles(200), 0.4, 1.0};
      case NvramDevice::SttMramFast:
        return MemTimingParams{"nvram-stt", 32, 2048, nsToCycles(50),
                               nsToCycles(75), 0.4, 1.0};
      case NvramDevice::FlashSlow:
        return MemTimingParams{"nvram-flash", 16, 4096, nsToCycles(250),
                               nsToCycles(2000), 0.4, 1.0};
      case NvramDevice::DramOnly:
        return MemTimingParams{"nvram-as-dram", 64, 1024, nsToCycles(50),
                               nsToCycles(50), 0.4, 0.4};
      default:
        ssp_fatal("invalid NVRAM device preset %u",
                  static_cast<unsigned>(device));
    }
}

} // namespace ssp
