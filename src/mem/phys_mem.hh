/**
 * @file
 * Functional physical memory backing store.
 *
 * One flat physical address space holds both the NVRAM region (pages
 * [0, nvramPages)) and the DRAM region above it, mirroring the paper's
 * hybrid memory on a single memory bus.  Pages are allocated lazily so an
 * 8 GiB simulated machine does not cost 8 GiB of host memory.
 *
 * Crash semantics: the NVRAM region supports snapshot() / restore() pairs
 * used by the crash-injection tests; the DRAM region is simply cleared on
 * a simulated power failure.
 *
 * Concurrency: ghost speculation threads (src/sim/ghost.*) read page
 * data ahead of the authoritative simulation thread to warm host cache
 * lines.  Their reads are benign by design — a stale value only
 * mis-targets a prefetch — but must be data-race-free for TSan.  The
 * write path therefore stores word-wise through relaxed atomics (on
 * x86-64 this compiles to the same plain stores a memcpy would issue),
 * page pointers publish through release/acquire, and ghosts read with
 * ghostRead64()/ghostPrefetchLine().  The authoritative read path stays
 * memcpy: ghosts never write, so reads race with nothing.
 */

#ifndef SSP_MEM_PHYS_MEM_HH
#define SSP_MEM_PHYS_MEM_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ssp
{

/** Lazily-allocated page-granular physical memory image. */
class PhysMem
{
  public:
    /**
     * @param nvram_pages Number of physical pages in the NVRAM region.
     * @param dram_pages Number of physical pages in the DRAM region,
     *                   starting at physical page nvram_pages.
     */
    PhysMem(std::uint64_t nvram_pages, std::uint64_t dram_pages);
    ~PhysMem();

    PhysMem(const PhysMem &) = delete;
    PhysMem &operator=(const PhysMem &) = delete;

    /**
     * Read @p size bytes at physical address @p addr into @p buf.
     * The page-local case is inlined: every simulated load lands here,
     * and call overhead on it is measurable at 64 cores.
     */
    void
    read(Addr addr, void *buf, std::uint64_t size) const
    {
        if (fitsInPage(addr, size)) {
            const std::uint8_t *page = pageForRead(addr);
            if (page == nullptr)
                std::memset(buf, 0, size);
            else
                std::memcpy(buf, page + pageOffset(addr), size);
            return;
        }
        readSlow(addr, buf, size);
    }

    /** Write @p size bytes from @p buf to physical address @p addr. */
    void
    write(Addr addr, const void *buf, std::uint64_t size)
    {
        if (fitsInPage(addr, size)) {
            storeBytes(pageFor(addr, true) + pageOffset(addr), buf, size);
            return;
        }
        writeSlow(addr, buf, size);
    }

    /** Copy one 64-byte line between physical line addresses. */
    void copyLine(Addr dst, Addr src);

    /** Read a little-endian uint64 at @p addr. */
    std::uint64_t read64(Addr addr) const;

    /** Write a little-endian uint64 at @p addr. */
    void write64(Addr addr, std::uint64_t value);

    /**
     * Lock-free 64-bit read for ghost speculation threads: @p addr must
     * be 8-byte aligned; an unallocated page reads as 0.  Relaxed
     * atomic, so it races benignly with authoritative stores — the
     * value steers only prefetch traversal, never simulated state.
     */
    std::uint64_t
    ghostRead64(Addr addr) const noexcept
    {
        const Ppn ppn = pageOf(addr);
        if (ppn >= totalPages() || (addr & 7) != 0)
            return 0;
        const std::uint8_t *page =
            std::atomic_ref<std::uint8_t *>(
                const_cast<std::uint8_t *&>(pages_[ppn]))
                .load(std::memory_order_acquire);
        if (page == nullptr)
            return 0;
        const auto *word = reinterpret_cast<const std::uint64_t *>(
            page + pageOffset(addr));
        return std::atomic_ref<std::uint64_t>(
                   const_cast<std::uint64_t &>(*word))
            .load(std::memory_order_relaxed);
    }

    /**
     * Prefetch hint for the host cache line backing @p addr; safe from
     * ghost threads (no data is read, and an unallocated page is a
     * no-op).
     */
    void
    ghostPrefetchLine(Addr addr) const noexcept
    {
        const Ppn ppn = pageOf(addr);
        if (ppn >= totalPages())
            return;
        const std::uint8_t *page =
            std::atomic_ref<std::uint8_t *>(
                const_cast<std::uint8_t *&>(pages_[ppn]))
                .load(std::memory_order_acquire);
        if (page != nullptr)
            __builtin_prefetch(page + pageOffset(addr), 0, 3);
    }

    /** True if @p ppn lies in the NVRAM region. */
    bool isNvramPage(Ppn ppn) const { return ppn < nvramPages_; }

    /** True if physical address @p addr lies in the NVRAM region. */
    bool isNvramAddr(Addr addr) const { return isNvramPage(pageOf(addr)); }

    std::uint64_t nvramPages() const { return nvramPages_; }
    std::uint64_t dramPages() const { return dramPages_; }
    std::uint64_t totalPages() const { return nvramPages_ + dramPages_; }

    /**
     * Simulated power failure: the DRAM region loses its contents.
     * The NVRAM region is untouched.
     */
    void powerFail();

    /** Deep copy of the NVRAM region (for the crash-test oracle). */
    std::unordered_map<Ppn, std::vector<std::uint8_t>> snapshotNvram() const;

    /** Pages currently backed by host memory (for tests). */
    std::uint64_t allocatedPages() const;

  private:
    void readSlow(Addr addr, void *buf, std::uint64_t size) const;
    void writeSlow(Addr addr, const void *buf, std::uint64_t size);
    std::uint8_t *allocPage(Ppn ppn);

    /**
     * Store @p size bytes to page memory through relaxed atomics so
     * concurrent ghost reads are race-free.  Aligned 8-byte words go
     * word-wise (the common case: every store64 and line copy), ragged
     * head/tail bytes go byte-wise.
     */
    static void
    storeBytes(std::uint8_t *dst, const void *src, std::uint64_t size)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        // Ragged head up to 8-byte alignment.
        while (size > 0 && (reinterpret_cast<std::uintptr_t>(dst) & 7) != 0) {
            std::atomic_ref<std::uint8_t>(*dst).store(
                *in, std::memory_order_relaxed);
            ++dst;
            ++in;
            --size;
        }
        while (size >= 8) {
            std::uint64_t word;
            std::memcpy(&word, in, 8);
            std::atomic_ref<std::uint64_t>(
                *reinterpret_cast<std::uint64_t *>(dst))
                .store(word, std::memory_order_relaxed);
            dst += 8;
            in += 8;
            size -= 8;
        }
        while (size > 0) {
            std::atomic_ref<std::uint8_t>(*dst).store(
                *in, std::memory_order_relaxed);
            ++dst;
            ++in;
            --size;
        }
    }

    /** Plain pointer load of @p ppn's backing page (authoritative
     *  thread only; ghosts use the acquire loads above). */
    std::uint8_t *
    pagePtr(Ppn ppn) const
    {
        return std::atomic_ref<std::uint8_t *>(
                   const_cast<std::uint8_t *&>(pages_[ppn]))
            .load(std::memory_order_relaxed);
    }

    /** Backing page for @p addr, allocating on demand when @p create. */
    std::uint8_t *
    pageFor(Addr addr, bool create)
    {
        const Ppn ppn = pageOf(addr);
        if (ppn == lastPpn_)
            return lastPage_;
        ssp_assert_dbg(ppn < totalPages(), "paddr %llx out of range",
                       static_cast<unsigned long long>(addr));
        std::uint8_t *page = pagePtr(ppn);
        if (page == nullptr) {
            if (!create)
                return nullptr;
            page = allocPage(ppn);
        }
        lastPpn_ = ppn;
        lastPage_ = page;
        return page;
    }

    /** Backing page for @p addr, or null when never written. */
    const std::uint8_t *
    pageForRead(Addr addr) const
    {
        const Ppn ppn = pageOf(addr);
        if (ppn == lastPpn_)
            return lastPage_;
        ssp_assert_dbg(ppn < totalPages(), "paddr %llx out of range",
                       static_cast<unsigned long long>(addr));
        std::uint8_t *page = pagePtr(ppn);
        if (page != nullptr) {
            // Only present pages are cached: a later write may
            // allocate this ppn, and a stale "absent" entry would
            // then hide it.
            lastPpn_ = ppn;
            lastPage_ = page;
        }
        return page;
    }

    std::uint64_t nvramPages_;
    std::uint64_t dramPages_;
    /**
     * Flat ppn-indexed table of lazily-allocated pages; null entries
     * read as zero.  Every functional byte of the simulation goes
     * through here, so the lookup must be an array index, not a hash.
     * Raw pointers (freed in the destructor) so ghost threads can load
     * entries through std::atomic_ref; allocPage publishes with a
     * release store.
     */
    std::vector<std::uint8_t *> pages_;
    /** One-entry lookup cache: consecutive accesses hit one page.
     *  Authoritative-thread state only — ghosts never touch it. */
    mutable Ppn lastPpn_ = kInvalidPpn;
    mutable std::uint8_t *lastPage_ = nullptr;
};

} // namespace ssp

#endif // SSP_MEM_PHYS_MEM_HH
