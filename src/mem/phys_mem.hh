/**
 * @file
 * Functional physical memory backing store.
 *
 * One flat physical address space holds both the NVRAM region (pages
 * [0, nvramPages)) and the DRAM region above it, mirroring the paper's
 * hybrid memory on a single memory bus.  Pages are allocated lazily so an
 * 8 GiB simulated machine does not cost 8 GiB of host memory.
 *
 * Crash semantics: the NVRAM region supports snapshot() / restore() pairs
 * used by the crash-injection tests; the DRAM region is simply cleared on
 * a simulated power failure.
 */

#ifndef SSP_MEM_PHYS_MEM_HH
#define SSP_MEM_PHYS_MEM_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ssp
{

/** Lazily-allocated page-granular physical memory image. */
class PhysMem
{
  public:
    /**
     * @param nvram_pages Number of physical pages in the NVRAM region.
     * @param dram_pages Number of physical pages in the DRAM region,
     *                   starting at physical page nvram_pages.
     */
    PhysMem(std::uint64_t nvram_pages, std::uint64_t dram_pages);

    /**
     * Read @p size bytes at physical address @p addr into @p buf.
     * The page-local case is inlined: every simulated load lands here,
     * and call overhead on it is measurable at 64 cores.
     */
    void
    read(Addr addr, void *buf, std::uint64_t size) const
    {
        if (fitsInPage(addr, size)) {
            const std::uint8_t *page = pageForRead(addr);
            if (page == nullptr)
                std::memset(buf, 0, size);
            else
                std::memcpy(buf, page + pageOffset(addr), size);
            return;
        }
        readSlow(addr, buf, size);
    }

    /** Write @p size bytes from @p buf to physical address @p addr. */
    void
    write(Addr addr, const void *buf, std::uint64_t size)
    {
        if (fitsInPage(addr, size)) {
            std::memcpy(pageFor(addr, true) + pageOffset(addr), buf, size);
            return;
        }
        writeSlow(addr, buf, size);
    }

    /** Copy one 64-byte line between physical line addresses. */
    void copyLine(Addr dst, Addr src);

    /** Read a little-endian uint64 at @p addr. */
    std::uint64_t read64(Addr addr) const;

    /** Write a little-endian uint64 at @p addr. */
    void write64(Addr addr, std::uint64_t value);

    /** True if @p ppn lies in the NVRAM region. */
    bool isNvramPage(Ppn ppn) const { return ppn < nvramPages_; }

    /** True if physical address @p addr lies in the NVRAM region. */
    bool isNvramAddr(Addr addr) const { return isNvramPage(pageOf(addr)); }

    std::uint64_t nvramPages() const { return nvramPages_; }
    std::uint64_t dramPages() const { return dramPages_; }
    std::uint64_t totalPages() const { return nvramPages_ + dramPages_; }

    /**
     * Simulated power failure: the DRAM region loses its contents.
     * The NVRAM region is untouched.
     */
    void powerFail();

    /** Deep copy of the NVRAM region (for the crash-test oracle). */
    std::unordered_map<Ppn, std::vector<std::uint8_t>> snapshotNvram() const;

    /** Pages currently backed by host memory (for tests). */
    std::uint64_t allocatedPages() const;

  private:
    void readSlow(Addr addr, void *buf, std::uint64_t size) const;
    void writeSlow(Addr addr, const void *buf, std::uint64_t size);
    std::uint8_t *allocPage(Ppn ppn);

    /** Backing page for @p addr, allocating on demand when @p create. */
    std::uint8_t *
    pageFor(Addr addr, bool create)
    {
        const Ppn ppn = pageOf(addr);
        if (ppn == lastPpn_)
            return lastPage_;
        ssp_assert_dbg(ppn < totalPages(), "paddr %llx out of range",
                       static_cast<unsigned long long>(addr));
        std::uint8_t *page = pages_[ppn].get();
        if (page == nullptr) {
            if (!create)
                return nullptr;
            page = allocPage(ppn);
        }
        lastPpn_ = ppn;
        lastPage_ = page;
        return page;
    }

    /** Backing page for @p addr, or null when never written. */
    const std::uint8_t *
    pageForRead(Addr addr) const
    {
        const Ppn ppn = pageOf(addr);
        if (ppn == lastPpn_)
            return lastPage_;
        ssp_assert_dbg(ppn < totalPages(), "paddr %llx out of range",
                       static_cast<unsigned long long>(addr));
        std::uint8_t *page = pages_[ppn].get();
        if (page != nullptr) {
            // Only present pages are cached: a later write may
            // allocate this ppn, and a stale "absent" entry would
            // then hide it.
            lastPpn_ = ppn;
            lastPage_ = page;
        }
        return page;
    }

    std::uint64_t nvramPages_;
    std::uint64_t dramPages_;
    /**
     * Flat ppn-indexed table of lazily-allocated pages; null entries
     * read as zero.  Every functional byte of the simulation goes
     * through here, so the lookup must be an array index, not a hash.
     * Eight bytes per simulated page keeps even multi-GiB machines at
     * a few MiB of table.
     */
    std::vector<std::unique_ptr<std::uint8_t[]>> pages_;
    /** One-entry lookup cache: consecutive accesses hit one page. */
    mutable Ppn lastPpn_ = kInvalidPpn;
    mutable std::uint8_t *lastPage_ = nullptr;
};

} // namespace ssp

#endif // SSP_MEM_PHYS_MEM_HH
