/**
 * @file
 * Functional physical memory backing store.
 *
 * One flat physical address space holds both the NVRAM region (pages
 * [0, nvramPages)) and the DRAM region above it, mirroring the paper's
 * hybrid memory on a single memory bus.  Pages are allocated lazily so an
 * 8 GiB simulated machine does not cost 8 GiB of host memory.
 *
 * Crash semantics: the NVRAM region supports snapshot() / restore() pairs
 * used by the crash-injection tests; the DRAM region is simply cleared on
 * a simulated power failure.
 */

#ifndef SSP_MEM_PHYS_MEM_HH
#define SSP_MEM_PHYS_MEM_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ssp
{

/** Lazily-allocated page-granular physical memory image. */
class PhysMem
{
  public:
    /**
     * @param nvram_pages Number of physical pages in the NVRAM region.
     * @param dram_pages Number of physical pages in the DRAM region,
     *                   starting at physical page nvram_pages.
     */
    PhysMem(std::uint64_t nvram_pages, std::uint64_t dram_pages);

    /** Read @p size bytes at physical address @p addr into @p buf. */
    void read(Addr addr, void *buf, std::uint64_t size) const;

    /** Write @p size bytes from @p buf to physical address @p addr. */
    void write(Addr addr, const void *buf, std::uint64_t size);

    /** Copy one 64-byte line between physical line addresses. */
    void copyLine(Addr dst, Addr src);

    /** Read a little-endian uint64 at @p addr. */
    std::uint64_t read64(Addr addr) const;

    /** Write a little-endian uint64 at @p addr. */
    void write64(Addr addr, std::uint64_t value);

    /** True if @p ppn lies in the NVRAM region. */
    bool isNvramPage(Ppn ppn) const { return ppn < nvramPages_; }

    /** True if physical address @p addr lies in the NVRAM region. */
    bool isNvramAddr(Addr addr) const { return isNvramPage(pageOf(addr)); }

    std::uint64_t nvramPages() const { return nvramPages_; }
    std::uint64_t dramPages() const { return dramPages_; }
    std::uint64_t totalPages() const { return nvramPages_ + dramPages_; }

    /**
     * Simulated power failure: the DRAM region loses its contents.
     * The NVRAM region is untouched.
     */
    void powerFail();

    /** Deep copy of the NVRAM region (for the crash-test oracle). */
    std::unordered_map<Ppn, std::vector<std::uint8_t>> snapshotNvram() const;

  private:
    std::uint8_t *pageFor(Addr addr, bool create);
    const std::uint8_t *pageForRead(Addr addr) const;

    std::uint64_t nvramPages_;
    std::uint64_t dramPages_;
    // ppn -> page bytes; absent pages read as zero.
    std::unordered_map<Ppn, std::unique_ptr<std::uint8_t[]>> pages_;
};

} // namespace ssp

#endif // SSP_MEM_PHYS_MEM_HH
