/**
 * @file
 * Memory bus: routes line-granular requests to the DRAM or NVRAM channel
 * group and accounts NVRAM write traffic by category.
 *
 * The write categories are exactly the series the paper's Figure 6 and
 * Figure 7 plot: transactional data writes, log writes (undo/redo),
 * metadata-journal writes, page-consolidation copies, checkpoint writes,
 * and (for the conventional-shadow-paging ablation) whole-page CoW copies.
 * The accounting is independent of the channel layout — a request is
 * categorized before the channel group picks the channel that times it.
 */

#ifndef SSP_MEM_MEMORY_BUS_HH
#define SSP_MEM_MEMORY_BUS_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"
#include "mem/timing_model.hh"

namespace ssp
{

/** Why an NVRAM line was written; drives the Figure 6/7 accounting. */
enum class WriteCategory : unsigned
{
    Data = 0,        ///< committed transactional data (clwb / write-back)
    UndoLog,         ///< undo-log entries (baseline)
    RedoLog,         ///< redo-log entries (baseline)
    MetaJournal,     ///< SSP metadata-journal appends
    Consolidation,   ///< SSP page-consolidation copies
    Checkpoint,      ///< SSP persistent-SSP-cache checkpoint writes
    PageCopy,        ///< conventional shadow-paging page CoW (ablation)
    Other,           ///< anything else (allocator metadata, etc.)
    NumCategories
};

/** Printable name of a write category. */
const char *writeCategoryName(WriteCategory cat);

/**
 * The memory system of the simulated machine: one channel group per
 * technology (DRAM, NVRAM), each with N interleaved channels.
 *
 * All timing flows through issueRead()/issueWrite(); the caller decides
 * whether to stall on the returned completion time (critical path) or to
 * ignore it (background traffic that only occupies banks).
 */
class MemoryBus
{
  public:
    MemoryBus(PhysMem &mem, const MemSystemParams &params);

    /** Single-channel convenience form (the paper's channel pair). */
    MemoryBus(PhysMem &mem, const MemTimingParams &dram_params,
              const MemTimingParams &nvram_params);

    /** Issue a line read; returns completion time. */
    Cycles issueRead(Addr line_addr, Cycles now);

    /**
     * Issue a line write; returns completion time.  NVRAM writes are
     * accounted under @p cat; DRAM writes are only counted in bulk.
     * @param background True for writes nothing on the critical path
     *        stalls behind (consolidation, checkpoints, post-commit
     *        write-back, cache evictions).
     */
    Cycles issueWrite(Addr line_addr, WriteCategory cat, Cycles now,
                      bool background = false);

    /** Total NVRAM line writes across all categories. */
    std::uint64_t nvramWrites() const;

    /** NVRAM line writes in category @p cat. */
    std::uint64_t
    nvramWrites(WriteCategory cat) const
    {
        return nvramWriteCount_[static_cast<unsigned>(cat)];
    }

    std::uint64_t nvramReads() const { return nvramReads_; }
    std::uint64_t dramReads() const { return dramReads_; }
    std::uint64_t dramWrites() const { return dramWrites_; }

    MemChannelGroup &dramGroup() { return dram_; }
    MemChannelGroup &nvramGroup() { return nvram_; }
    const MemChannelGroup &dramGroup() const { return dram_; }
    const MemChannelGroup &nvramGroup() const { return nvram_; }
    PhysMem &mem() { return mem_; }

    /** Zero all traffic counters (timing state is kept). */
    void resetStats();

    /** Forget bank state across a simulated power cycle. */
    void resetTiming();

  private:
    PhysMem &mem_;
    MemChannelGroup dram_;
    MemChannelGroup nvram_;
    std::array<std::uint64_t,
               static_cast<unsigned>(WriteCategory::NumCategories)>
        nvramWriteCount_{};
    std::uint64_t nvramReads_ = 0;
    std::uint64_t dramReads_ = 0;
    std::uint64_t dramWrites_ = 0;
};

} // namespace ssp

#endif // SSP_MEM_MEMORY_BUS_HH
