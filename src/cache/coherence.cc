#include "cache/coherence.hh"

#include "interconnect/directory.hh"

namespace ssp
{

std::unique_ptr<CoherenceModel>
makeCoherenceModel(unsigned num_cores, Cycles broadcast_latency,
                   const CoherenceParams &params)
{
    if (params.mode == CoherenceMode::Directory)
        return std::make_unique<DirectoryCoherence>(num_cores, params);
    return std::make_unique<BroadcastCoherence>(num_cores,
                                                broadcast_latency);
}

} // namespace ssp
