// CoherenceBus is header-only; this translation unit exists so the build
// has a home for future directory-protocol extensions.
#include "cache/coherence.hh"
