/**
 * @file
 * Coherence broadcast bus.
 *
 * SSP extends the cache-coherence network with a flip-current-bit message
 * (paper section 4.1.1): when a core writes a cache line for the first
 * time inside a transaction, the new current bit must become visible to
 * every other core's extended TLB and to the memory controller.  The
 * simulator shares the authoritative current bitmap through the SSP-cache
 * entry, so the functional effect is immediate; this bus models the cost
 * — one broadcast per first-write — and counts the messages.
 */

#ifndef SSP_CACHE_COHERENCE_HH
#define SSP_CACHE_COHERENCE_HH

#include <cstdint>

#include "common/types.hh"

namespace ssp
{

/** Broadcast-message cost model and counters. */
class CoherenceBus
{
  public:
    /**
     * @param num_cores Number of cores on the bus.
     * @param broadcast_latency Cycles a broadcast adds to the sender
     *        (piggy-backed on invalidations, so this is small).
     */
    CoherenceBus(unsigned num_cores, Cycles broadcast_latency)
        : numCores_(num_cores), broadcastLatency_(broadcast_latency)
    {
    }

    /**
     * Broadcast a flip-current-bit message for one cache line.
     * @return Completion time for the sending core.
     */
    Cycles
    flipCurrentBit(CoreId /* sender */, Cycles now)
    {
        ++flipMessages_;
        // With a single core there is nobody to notify; the paper's
        // mechanism piggybacks on invalidations, costing the sender the
        // bus traversal only when other cores exist.
        if (numCores_ <= 1)
            return now;
        return now + broadcastLatency_;
    }

    /** Count an ordinary invalidation (used by the stats only). */
    Cycles
    invalidate(CoreId /* sender */, Cycles now)
    {
        ++invalidations_;
        if (numCores_ <= 1)
            return now;
        return now + broadcastLatency_;
    }

    std::uint64_t flipMessages() const { return flipMessages_; }
    std::uint64_t invalidations() const { return invalidations_; }
    unsigned numCores() const { return numCores_; }

  private:
    unsigned numCores_;
    Cycles broadcastLatency_;
    std::uint64_t flipMessages_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace ssp

#endif // SSP_CACHE_COHERENCE_HH
