/**
 * @file
 * Coherence broadcast bus.
 *
 * SSP extends the cache-coherence network with a flip-current-bit message
 * (paper section 4.1.1): when a core writes a cache line for the first
 * time inside a transaction, the new current bit must become visible to
 * every other core's extended TLB and to the memory controller.  The
 * simulator shares the authoritative current bitmap through the SSP-cache
 * entry, so the functional effect is immediate; this bus models the cost
 * — one broadcast per first-write, plus the shootdown of peer-cached
 * copies of the remapped-away line — and counts the messages per core.
 *
 * Ordinary MESI-style invalidations ride the same network: a store that
 * hits a line cached by another core invalidates the peer copies (see
 * CacheHierarchy::write), costing the sender one bus traversal.
 */

#ifndef SSP_CACHE_COHERENCE_HH
#define SSP_CACHE_COHERENCE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ssp
{

/** Broadcast-message cost model and per-core counters. */
class CoherenceBus
{
  public:
    /**
     * @param num_cores Number of cores on the bus.
     * @param broadcast_latency Cycles a broadcast adds to the sender
     *        (piggy-backed on invalidations, so this is small).
     */
    CoherenceBus(unsigned num_cores, Cycles broadcast_latency)
        : numCores_(num_cores), broadcastLatency_(broadcast_latency),
          flipsSent_(num_cores, 0), invalidationsSent_(num_cores, 0),
          messagesReceived_(num_cores, 0)
    {
    }

    /**
     * Broadcast a flip-current-bit message for one sub-page.
     * @return Completion time for the sending core.
     */
    Cycles
    flipCurrentBit(CoreId sender, Cycles now)
    {
        ++flipMessages_;
        ++flipsSent_[sender];
        // With a single core there is nobody to notify; the paper's
        // mechanism piggybacks on invalidations, costing the sender the
        // bus traversal only when other cores exist.
        if (numCores_ <= 1)
            return now;
        return now + broadcastLatency_;
    }

    /**
     * An ordinary cross-core invalidation: a store hit a line that one
     * or more peers had cached.
     * @return Completion time for the sending core.
     */
    Cycles
    invalidate(CoreId sender, Cycles now)
    {
        ++invalidations_;
        ++invalidationsSent_[sender];
        if (numCores_ <= 1)
            return now;
        return now + broadcastLatency_;
    }

    /**
     * Account a flip-broadcast shootdown landing at @p receiver: a peer
     * copy of a remapped-away line was dropped.  The receiver-side
     * cycle charge is applied by Machine, which owns the core clocks.
     */
    void
    deliverShootdown(CoreId receiver)
    {
        ++messagesReceived_[receiver];
        ++shootdownsDelivered_;
    }

    /**
     * Account an ordinary write invalidation landing at @p receiver.
     * Receivers absorb these in the cache controller; no clock charge.
     */
    void
    deliverInvalidation(CoreId receiver)
    {
        ++messagesReceived_[receiver];
        ++invalidationsDelivered_;
    }

    std::uint64_t flipMessages() const { return flipMessages_; }
    std::uint64_t invalidations() const { return invalidations_; }
    /** Flip-broadcast shootdowns that found and dropped a peer copy. */
    std::uint64_t shootdownsDelivered() const { return shootdownsDelivered_; }
    /** Write invalidations that found and dropped a peer copy. */
    std::uint64_t
    invalidationsDelivered() const
    {
        return invalidationsDelivered_;
    }
    std::uint64_t flipsSent(CoreId core) const { return flipsSent_[core]; }
    std::uint64_t
    invalidationsSent(CoreId core) const
    {
        return invalidationsSent_[core];
    }
    std::uint64_t
    messagesReceived(CoreId core) const
    {
        return messagesReceived_[core];
    }
    unsigned numCores() const { return numCores_; }
    Cycles broadcastLatency() const { return broadcastLatency_; }

  private:
    unsigned numCores_;
    Cycles broadcastLatency_;
    std::uint64_t flipMessages_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t shootdownsDelivered_ = 0;
    std::uint64_t invalidationsDelivered_ = 0;
    std::vector<std::uint64_t> flipsSent_;
    std::vector<std::uint64_t> invalidationsSent_;
    std::vector<std::uint64_t> messagesReceived_;
};

} // namespace ssp

#endif // SSP_CACHE_COHERENCE_HH
