/**
 * @file
 * Coherence cost models.
 *
 * SSP extends the cache-coherence network with a flip-current-bit message
 * (paper section 4.1.1): when a core writes a cache line for the first
 * time inside a transaction, the new current bit must become visible to
 * every other core's extended TLB and to the memory controller.  The
 * simulator shares the authoritative current bitmap through the SSP-cache
 * entry, so the functional effect is immediate; the coherence model
 * prices the traffic — one send per first-write, plus the shootdown of
 * peer-cached copies of the remapped-away line — and counts the messages
 * per core.  Ordinary MESI-style invalidations ride the same network: a
 * store that hits a line cached by another core invalidates the peer
 * copies (see CacheHierarchy::write), costing the sender one traversal.
 *
 * Two implementations exist behind the CoherenceModel interface:
 *
 *  - BroadcastCoherence (default): the historical flat-cost snooping
 *    bus — every event costs the sender one fixed broadcastLatency and
 *    reaches all numCores-1 peers, regardless of how many actually
 *    share the line.  All checked-in BENCH grids are priced by it.
 *  - DirectoryCoherence (src/interconnect/): a home-node directory on
 *    a 2D mesh, where cost scales with Manhattan hop distance and the
 *    actual sharer count, bounded by a capacity-limited snoop filter.
 */

#ifndef SSP_CACHE_COHERENCE_HH
#define SSP_CACHE_COHERENCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bitmap64.hh"
#include "common/types.hh"

namespace ssp
{

class SharerListener;

/** Which coherence cost model prices the machine's traffic. */
enum class CoherenceMode
{
    Broadcast, ///< flat-cost snooping bus (the historical model)
    Directory, ///< home-node directory on a 2D mesh
};

/** Knobs of the directory/mesh model (ignored in Broadcast mode). */
struct CoherenceParams
{
    CoherenceMode mode = CoherenceMode::Broadcast;

    /** Mesh dimensions; 0 = derive a square-ish power-of-two grid
     *  from the core count (16x16 at 256 cores). */
    unsigned meshWidth = 0;
    unsigned meshHeight = 0;

    /** Cycles one message takes per mesh hop (link + router). */
    Cycles hopCycles = 3;

    /** Cycles one home-node directory lookup takes (SRAM tag array). */
    Cycles directoryLookupCycles = 12;

    /**
     * Snoop-filter capacity per home tile in tracked lines; evicting a
     * live entry forces back-invalidation of its sharer copies (the
     * inclusion property directories enforce).  0 = unbounded.
     */
    unsigned snoopFilterEntries = 4096;
};

/**
 * Interface every coherence cost model implements, plus the message
 * counters all models share.  The hierarchy and the engines call the
 * virtual cost hooks on every coherence event; Machine owns the model
 * and applies the receiver-side cycle charges it prices.
 */
class CoherenceModel
{
  public:
    /**
     * A line's live private copies are dropped on behalf of the model
     * (snoop-filter back-invalidation): the hierarchy drops every
     * sharer copy of the line — writing back dirty data — and returns
     * the bitmap of cores that held one.
     */
    using BackInvalidateFn = std::function<CoreBitmap(Addr line, Cycles now)>;

    explicit CoherenceModel(unsigned num_cores)
        : numCores_(num_cores), flipsSent_(num_cores, 0),
          invalidationsSent_(num_cores, 0), messagesReceived_(num_cores, 0)
    {
    }

    virtual ~CoherenceModel() = default;

    /**
     * Price a flip-current-bit send for the sub-page holding @p line,
     * whose dropped peer copies are @p peers (possibly empty — the
     * flip must reach the extended TLBs even when nobody cached the
     * lines).
     * @return Completion time for the sending core.
     */
    virtual Cycles flipCurrentBit(CoreId sender, Addr line,
                                  const CoreBitmap &peers, Cycles now) = 0;

    /**
     * Price an ordinary cross-core invalidation: a store hit @p line
     * while the peers in @p peers had it cached.  Only called when
     * @p peers is non-empty.
     * @return Completion time for the sending core.
     */
    virtual Cycles invalidate(CoreId sender, Addr line,
                              const CoreBitmap &peers, Cycles now) = 0;

    /**
     * Receiver-side cycle charge for processing a flip-broadcast
     * shootdown of @p line at @p receiver (applied by Machine, which
     * owns the core clocks).
     */
    virtual Cycles shootdownReceiverCost(CoreId receiver,
                                         Addr line) const = 0;

    /** The sharer-index observer this model needs, if any (the
     *  directory's snoop filter); nullptr for broadcast. */
    virtual SharerListener *sharerListener() { return nullptr; }

    /** Install the hierarchy's back-invalidation callback (no-op for
     *  models without a snoop filter). */
    virtual void attachBackInvalidator(BackInvalidateFn) {}

    /** True when the model queues deferred maintenance work that the
     *  hierarchy must drain after each timed access. */
    virtual bool needsMaintenance() const { return false; }

    /** Process deferred maintenance (snoop-filter back-invalidations)
     *  at a point where no cache access is mid-flight. */
    virtual void drainMaintenance(Cycles) {}

    /** Volatile model state lost on power failure (filters, queues);
     *  counters are measurement state and survive. */
    virtual void powerFail() {}

    /**
     * Account a flip-broadcast shootdown landing at @p receiver: a peer
     * copy of a remapped-away line was dropped.  The receiver-side
     * cycle charge is applied by Machine, which owns the core clocks.
     */
    void
    deliverShootdown(CoreId receiver)
    {
        ++messagesReceived_[receiver];
        ++shootdownsDelivered_;
    }

    /**
     * Account an ordinary write invalidation landing at @p receiver.
     * Receivers absorb these in the cache controller; no clock charge.
     */
    void
    deliverInvalidation(CoreId receiver)
    {
        ++messagesReceived_[receiver];
        ++invalidationsDelivered_;
    }

    std::uint64_t flipMessages() const { return flipMessages_; }
    std::uint64_t invalidations() const { return invalidations_; }
    /** Flip-broadcast shootdowns that found and dropped a peer copy. */
    std::uint64_t shootdownsDelivered() const { return shootdownsDelivered_; }
    /** Write invalidations that found and dropped a peer copy. */
    std::uint64_t
    invalidationsDelivered() const
    {
        return invalidationsDelivered_;
    }
    std::uint64_t flipsSent(CoreId core) const { return flipsSent_[core]; }
    std::uint64_t
    invalidationsSent(CoreId core) const
    {
        return invalidationsSent_[core];
    }
    std::uint64_t
    messagesReceived(CoreId core) const
    {
        return messagesReceived_[core];
    }
    /**
     * Total interconnect messages the model priced: per event, a
     * broadcast reaches every peer while a directory multicasts to the
     * home node and the actual sharers — the traffic the scale256 grid
     * compares across modes.
     */
    std::uint64_t messages() const { return messages_; }
    unsigned numCores() const { return numCores_; }

    /** @{ Directory-only counters; zero for models without one. */
    virtual std::uint64_t directoryLookups() const { return 0; }
    virtual std::uint64_t hopTraversalCycles() const { return 0; }
    virtual std::uint64_t snoopFilterEvictions() const { return 0; }
    virtual std::uint64_t backInvalidations() const { return 0; }
    /** @} */

  protected:
    /** Count one flip-current-bit send from @p sender. */
    void
    countFlip(CoreId sender)
    {
        ++flipMessages_;
        ++flipsSent_[sender];
    }

    /** Count one write-invalidation send from @p sender. */
    void
    countInvalidation(CoreId sender)
    {
        ++invalidations_;
        ++invalidationsSent_[sender];
    }

    /** Count @p n priced interconnect messages. */
    void countMessages(std::uint64_t n) { messages_ += n; }

  private:
    unsigned numCores_;
    std::uint64_t flipMessages_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t shootdownsDelivered_ = 0;
    std::uint64_t invalidationsDelivered_ = 0;
    std::uint64_t messages_ = 0;
    std::vector<std::uint64_t> flipsSent_;
    std::vector<std::uint64_t> invalidationsSent_;
    std::vector<std::uint64_t> messagesReceived_;
};

/**
 * The historical flat-cost snooping bus: every event costs the sender
 * one fixed broadcast latency and reaches all numCores-1 peers,
 * independent of the actual sharer set.  The default model; all six
 * original checked-in BENCH grids are priced by it, byte for byte.
 */
class BroadcastCoherence final : public CoherenceModel
{
  public:
    /**
     * @param num_cores Number of cores on the bus.
     * @param broadcast_latency Cycles a broadcast adds to the sender
     *        (piggy-backed on invalidations, so this is small).
     */
    BroadcastCoherence(unsigned num_cores, Cycles broadcast_latency)
        : CoherenceModel(num_cores), broadcastLatency_(broadcast_latency)
    {
    }

    Cycles
    flipCurrentBit(CoreId sender, Addr, const CoreBitmap &,
                   Cycles now) override
    {
        countFlip(sender);
        // With a single core there is nobody to notify; the paper's
        // mechanism piggybacks on invalidations, costing the sender the
        // bus traversal only when other cores exist.
        if (numCores() <= 1)
            return now;
        countMessages(numCores() - 1);
        return now + broadcastLatency_;
    }

    Cycles
    invalidate(CoreId sender, Addr, const CoreBitmap &,
               Cycles now) override
    {
        countInvalidation(sender);
        if (numCores() <= 1)
            return now;
        countMessages(numCores() - 1);
        return now + broadcastLatency_;
    }

    Cycles
    shootdownReceiverCost(CoreId, Addr) const override
    {
        return broadcastLatency_;
    }

    Cycles broadcastLatency() const { return broadcastLatency_; }

  private:
    Cycles broadcastLatency_;
};

/**
 * Build the coherence model @p params selects: the flat BroadcastCoherence
 * bus (priced by @p broadcast_latency) or the mesh DirectoryCoherence
 * model from src/interconnect/.
 */
std::unique_ptr<CoherenceModel>
makeCoherenceModel(unsigned num_cores, Cycles broadcast_latency,
                   const CoherenceParams &params);

} // namespace ssp

#endif // SSP_CACHE_COHERENCE_HH
