/**
 * @file
 * Line-granular sharer index for the cache hierarchy.
 *
 * Maps a physical line address to a 64-bit presence mask over cores:
 * bit c is set exactly when core c holds the line in its private L1 or
 * L2.  The index is maintained by the caches themselves (every tag
 * insert/evict/invalidate notifies it), so peer-visible operations —
 * MESI write invalidation, the SSP flip-current-bit shootdown, the
 * abort-path line drop — probe only the cores that actually hold a
 * copy instead of walking every core's L1+L2 tag arrays.
 *
 * The index is exact, not conservative: an out-of-sync bit would not
 * just cost time, it would change which peers are charged coherence
 * traffic.  tests/test_multicore.cc cross-checks the mask against
 * brute-force tag probes after randomized access/invalidate/remap/
 * power-failure sequences.
 *
 * This per-line mask is also the natural substrate for a directory /
 * snoop-filter *cost* model (ROADMAP): a directory charges by sharer
 * count, which is popcount of exactly this mask.
 */

#ifndef SSP_CACHE_SHARER_INDEX_HH
#define SSP_CACHE_SHARER_INDEX_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace ssp
{

/** Tracks which cores' private caches hold each line (see file doc). */
class SharerIndex
{
  public:
    /** Private cache levels feeding the index. */
    static constexpr unsigned kL1 = 0;
    static constexpr unsigned kL2 = 1;

    /** Core @p core's level-@p level cache gained @p line. */
    void
    add(CoreId core, unsigned level, Addr line)
    {
        Masks &m = map_[line];
        (level == kL1 ? m.l1 : m.l2) |= bit(core);
    }

    /** Core @p core's level-@p level cache dropped @p line. */
    void
    remove(CoreId core, unsigned level, Addr line)
    {
        auto it = map_.find(line);
        if (it == map_.end())
            return;
        Masks &m = it->second;
        (level == kL1 ? m.l1 : m.l2) &= ~bit(core);
        if ((m.l1 | m.l2) == 0)
            map_.erase(it);
    }

    /** Mask of cores holding @p line in L1 or L2 (bit c = core c). */
    std::uint64_t
    sharers(Addr line) const
    {
        auto it = map_.find(line);
        return it == map_.end() ? 0 : (it->second.l1 | it->second.l2);
    }

    /** Drop every mapping (bulk alternative to per-line remove). */
    void clear() { map_.clear(); }

    /** Number of lines with at least one private-cache copy. */
    std::size_t trackedLines() const { return map_.size(); }

  private:
    struct Masks
    {
        std::uint64_t l1 = 0;
        std::uint64_t l2 = 0;
    };

    static std::uint64_t bit(CoreId core) { return std::uint64_t{1} << core; }

    std::unordered_map<Addr, Masks> map_;
};

} // namespace ssp

#endif // SSP_CACHE_SHARER_INDEX_HH
