/**
 * @file
 * Line-granular sharer index for the cache hierarchy.
 *
 * Maps a physical line address to a kMaxCores-bit presence bitmap over
 * cores: bit c is set exactly when core c holds the line in its private
 * L1 or L2.  The index is maintained by the caches themselves (every
 * tag insert/evict/invalidate notifies it), so peer-visible operations
 * — MESI write invalidation, the SSP flip-current-bit shootdown, the
 * abort-path line drop — probe only the cores that actually hold a
 * copy instead of walking every core's L1+L2 tag arrays.
 *
 * The index is exact, not conservative: an out-of-sync bit would not
 * just cost time, it would change which peers are charged coherence
 * traffic.  tests/test_multicore.cc cross-checks the mask against
 * brute-force tag probes after randomized access/invalidate/remap/
 * power-failure sequences.
 *
 * This per-line bitmap is also the directory coherence model's sharer
 * vector (src/interconnect/): a directory charges by sharer count,
 * which is popcount of exactly this bitmap.  The optional listener
 * hook feeds the directory's capacity-limited snoop filter — it fires
 * on every private-cache fill and on the drop of a line's last private
 * copy, so the filter can mirror which lines it must track.
 */

#ifndef SSP_CACHE_SHARER_INDEX_HH
#define SSP_CACHE_SHARER_INDEX_HH

#include <cstdint>
#include <unordered_map>

#include "common/bitmap64.hh"
#include "common/types.hh"

namespace ssp
{

/**
 * Observer of sharer-index transitions (the directory snoop filter).
 * Callbacks run inside cache fill/evict paths, so implementations must
 * not touch cache state re-entrantly — defer any invalidation work to
 * a maintenance drain (see CoherenceModel::drainMaintenance).
 */
class SharerListener
{
  public:
    virtual ~SharerListener() = default;

    /** A private cache gained a copy of @p line (fires on every fill). */
    virtual void lineCached(Addr line) = 0;

    /** The last private-cache copy of @p line was dropped. */
    virtual void lineUncached(Addr line) = 0;
};

/** Tracks which cores' private caches hold each line (see file doc). */
class SharerIndex
{
  public:
    /** Private cache levels feeding the index. */
    static constexpr unsigned kL1 = 0;
    static constexpr unsigned kL2 = 1;

    /** Attach the transition observer (the directory snoop filter). */
    void attachListener(SharerListener *listener) { listener_ = listener; }

    /** Core @p core's level-@p level cache gained @p line. */
    void
    add(CoreId core, unsigned level, Addr line)
    {
        Masks &m = map_[line];
        (level == kL1 ? m.l1 : m.l2).set(core);
        if (listener_ != nullptr)
            listener_->lineCached(line);
    }

    /** Core @p core's level-@p level cache dropped @p line. */
    void
    remove(CoreId core, unsigned level, Addr line)
    {
        auto it = map_.find(line);
        if (it == map_.end())
            return;
        Masks &m = it->second;
        (level == kL1 ? m.l1 : m.l2).reset(core);
        if ((m.l1 | m.l2).none()) {
            map_.erase(it);
            if (listener_ != nullptr)
                listener_->lineUncached(line);
        }
    }

    /** Bitmap of cores holding @p line in L1 or L2 (bit c = core c). */
    CoreBitmap
    sharers(Addr line) const
    {
        auto it = map_.find(line);
        return it == map_.end() ? CoreBitmap{}
                                : (it->second.l1 | it->second.l2);
    }

    /** Drop every mapping (bulk alternative to per-line remove). */
    void clear() { map_.clear(); }

    /** Number of lines with at least one private-cache copy. */
    std::size_t trackedLines() const { return map_.size(); }

  private:
    struct Masks
    {
        CoreBitmap l1;
        CoreBitmap l2;
    };

    std::unordered_map<Addr, Masks> map_;
    SharerListener *listener_ = nullptr;
};

} // namespace ssp

#endif // SSP_CACHE_SHARER_INDEX_HH
