/**
 * @file
 * One level of set-associative, write-back, write-allocate cache.
 *
 * The simulator keeps functional data in PhysMem, so caches are tag+state
 * arrays only: they decide hit/miss, track dirtiness for write-back
 * accounting, and carry the two SSP extensions from the paper:
 *
 *  - a per-line TX bit marking lines speculatively written by the current
 *    transaction (section 3.5), and
 *  - tag remapping: on the first transactional write to a line, the cached
 *    copy is re-tagged to the "other" physical page instead of performing
 *    a copy-on-write (section 3.2, Figure 4 step 3).
 */

#ifndef SSP_CACHE_CACHE_HH
#define SSP_CACHE_CACHE_HH

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/types.hh"

namespace ssp
{

class SharerIndex;

/** Geometry and latency of one cache level. */
struct CacheParams
{
    /** Owned: params objects outlive whatever buffer named them (the
     *  same dangling-pointer class MemTimingParams::name fixed). */
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    /** Lookup latency in core cycles (Table 2: 4 / 6 / 27). */
    Cycles latency = 4;
};

/** Result of a cache lookup/allocation. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty victim was evicted and must be handled by the caller. */
    bool writeback = false;
    /** Line address of the dirty victim (valid when writeback). */
    Addr victimAddr = 0;
    /** TX bit of the dirty victim. */
    bool victimTx = false;
};

/**
 * Tag/state array for one cache level.  True-LRU replacement within the
 * set; victims are reported to the caller, which models the next level.
 *
 * Storage is structure-of-arrays: one packed tag word per line (the
 * 64-byte-aligned line address with the valid/dirty/TX flags packed into
 * the low bits) plus a separate LRU-stamp array.  A whole 8-way set's
 * tags then sit in a single host cache line, so the way scan every
 * access performs touches one line instead of striding across fat
 * structs — the hot loop of the whole simulator at 64 cores.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Register this cache as core @p core's level-@p level private
     * cache in the hierarchy's sharer index.  Every later tag
     * insertion/eviction/invalidation notifies the index, keeping its
     * per-line presence masks exact.  Attached by CacheHierarchy to
     * private L1/L2 caches of multi-core machines only; a detached
     * cache (single core, the shared L3, standalone tests) pays no
     * bookkeeping.
     */
    void
    attachSharerIndex(SharerIndex *index, CoreId core, unsigned level)
    {
        sharers_ = index;
        shareCore_ = core;
        shareLevel_ = level;
    }

    /**
     * Look up @p line_addr, allocating it on a miss.
     *
     * @param line_addr 64-byte-aligned physical address.
     * @param is_write Marks the line dirty on a write.
     * @return hit/miss and any dirty victim.
     */
    CacheAccessResult access(Addr line_addr, bool is_write);

    /** Look up without allocating; returns true on hit. */
    bool probe(Addr line_addr) const;

    /** True if present and dirty. */
    bool isDirty(Addr line_addr) const;

    /** Clear the dirty bit (after an explicit clwb write-back). */
    void cleanLine(Addr line_addr);

    /** Mark/clear the TX bit on a present line. */
    void setTxBit(Addr line_addr, bool tx);

    /** TX bit of a present line; false if absent. */
    bool txBit(Addr line_addr) const;

    /** Drop a line (no write-back); returns true if it was present. */
    bool invalidate(Addr line_addr);

    /**
     * SSP tag remap: move the state of @p old_addr to @p new_addr.
     * @return true if the old line was present (and thus moved).
     *
     * The dirty bit travels with the line.  The destination must not
     * collide with a live different line in the same slot — if the new
     * tag's set has no free way, the caller receives the victim exactly
     * as in access().
     */
    CacheAccessResult remap(Addr old_addr, Addr new_addr);

    /**
     * Insert a line (used for fills from lower levels / victims from
     * upper levels), returning any dirty victim.
     */
    CacheAccessResult insert(Addr line_addr, bool dirty, bool tx);

    /** Drop everything (simulated power failure). */
    void invalidateAll();

    /**
     * Prefetch hint for @p line_addr's set (the tag words and LRU
     * stamps a later lookup will scan).  Issued by ghost speculation
     * threads ahead of the authoritative core; __builtin_prefetch is a
     * pure hint — no tag state is read or written, so a concurrent
     * authoritative mutation of the set is not a data race.
     */
    void
    prefetchSet(Addr line_addr) const
    {
        const std::uint64_t base = setOf(line_addr) * params_.ways;
        __builtin_prefetch(&tags_[base], 0, 3);
        __builtin_prefetch(&lru_[base], 0, 3);
    }

    Cycles latency() const { return params_.latency; }
    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Number of currently valid lines (for tests). */
    std::uint64_t validLines() const;

  private:
    /**
     * Packed tag word: the 64-byte-aligned line address ORed with the
     * state flags in the low bits.  All-zero is the invalid/reset
     * state, so the backing array can be calloc'd: a big L3's tag
     * array then costs address space, not a touched page per set,
     * until lines actually land in it.
     */
    static constexpr std::uint64_t kValidBit = 1;
    static constexpr std::uint64_t kDirtyBit = 2;
    static constexpr std::uint64_t kTxFlagBit = 4;
    static constexpr std::uint64_t kFlagsMask = kLineSize - 1;
    static constexpr std::uint64_t kTagMask = ~kFlagsMask;
    /** "No such line" sentinel index. */
    static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};

    std::uint64_t setOf(Addr line_addr) const;
    /** Index of @p line_addr's slot, or kNoLine when absent. */
    std::uint64_t findIdx(Addr line_addr) const;
    /** Victim slot in @p set: first invalid way, else lowest LRU. */
    std::uint64_t victimIn(std::uint64_t set) const;
    void touch(std::uint64_t idx);
    void notifyAdd(Addr line_addr);
    void notifyRemove(Addr line_addr);
    /** Allocate @p line_addr (known absent) over the set's victim. */
    CacheAccessResult fillVictim(Addr line_addr, bool dirty, bool tx);

    SharerIndex *sharers_ = nullptr;
    CoreId shareCore_ = 0;
    unsigned shareLevel_ = 0;
    CacheParams params_;
    std::uint64_t numSets_;
    std::uint64_t numLines_;
    /** numLines_ packed tag words, set-major; calloc'd (see above). */
    std::unique_ptr<std::uint64_t[], FreeDeleter> tags_;
    /** numLines_ LRU stamps, parallel to tags_; calloc'd. */
    std::unique_ptr<std::uint64_t[], FreeDeleter> lru_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace ssp

#endif // SSP_CACHE_CACHE_HH
