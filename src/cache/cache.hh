/**
 * @file
 * One level of set-associative, write-back, write-allocate cache.
 *
 * The simulator keeps functional data in PhysMem, so caches are tag+state
 * arrays only: they decide hit/miss, track dirtiness for write-back
 * accounting, and carry the two SSP extensions from the paper:
 *
 *  - a per-line TX bit marking lines speculatively written by the current
 *    transaction (section 3.5), and
 *  - tag remapping: on the first transactional write to a line, the cached
 *    copy is re-tagged to the "other" physical page instead of performing
 *    a copy-on-write (section 3.2, Figure 4 step 3).
 */

#ifndef SSP_CACHE_CACHE_HH
#define SSP_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ssp
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    const char *name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    /** Lookup latency in core cycles (Table 2: 4 / 6 / 27). */
    Cycles latency = 4;
};

/** Result of a cache lookup/allocation. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty victim was evicted and must be handled by the caller. */
    bool writeback = false;
    /** Line address of the dirty victim (valid when writeback). */
    Addr victimAddr = 0;
    /** TX bit of the dirty victim. */
    bool victimTx = false;
};

/**
 * Tag/state array for one cache level.  True-LRU replacement within the
 * set; victims are reported to the caller, which models the next level.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p line_addr, allocating it on a miss.
     *
     * @param line_addr 64-byte-aligned physical address.
     * @param is_write Marks the line dirty on a write.
     * @return hit/miss and any dirty victim.
     */
    CacheAccessResult access(Addr line_addr, bool is_write);

    /** Look up without allocating; returns true on hit. */
    bool probe(Addr line_addr) const;

    /** True if present and dirty. */
    bool isDirty(Addr line_addr) const;

    /** Clear the dirty bit (after an explicit clwb write-back). */
    void cleanLine(Addr line_addr);

    /** Mark/clear the TX bit on a present line. */
    void setTxBit(Addr line_addr, bool tx);

    /** TX bit of a present line; false if absent. */
    bool txBit(Addr line_addr) const;

    /** Drop a line (no write-back); returns true if it was present. */
    bool invalidate(Addr line_addr);

    /**
     * SSP tag remap: move the state of @p old_addr to @p new_addr.
     * @return true if the old line was present (and thus moved).
     *
     * The dirty bit travels with the line.  The destination must not
     * collide with a live different line in the same slot — if the new
     * tag's set has no free way, the caller receives the victim exactly
     * as in access().
     */
    CacheAccessResult remap(Addr old_addr, Addr new_addr);

    /**
     * Insert a line (used for fills from lower levels / victims from
     * upper levels), returning any dirty victim.
     */
    CacheAccessResult insert(Addr line_addr, bool dirty, bool tx);

    /** Drop everything (simulated power failure). */
    void invalidateAll();

    Cycles latency() const { return params_.latency; }
    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Number of currently valid lines (for tests). */
    std::uint64_t validLines() const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool tx = false;
        std::uint64_t lru = 0;
    };

    std::uint64_t setOf(Addr line_addr) const;
    Line *find(Addr line_addr);
    const Line *find(Addr line_addr) const;
    Line &victimIn(std::uint64_t set);
    void touch(Line &line);

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; // numSets_ * ways, set-major
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace ssp

#endif // SSP_CACHE_CACHE_HH
