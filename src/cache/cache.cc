#include "cache/cache.hh"

#include "cache/sharer_index.hh"
#include "common/logging.hh"

namespace ssp
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    ssp_assert(params.ways > 0);
    const std::uint64_t num_lines = params.sizeBytes / kLineSize;
    ssp_assert(num_lines % params.ways == 0,
               "cache size must be a multiple of ways*line");
    numSets_ = num_lines / params.ways;
    ssp_assert(numSets_ > 0);
    numLines_ = num_lines;
    // calloc: all-zero Lines are valid==false, and the OS hands back
    // lazily-mapped zero pages — a 96 MiB L3's tag array costs nothing
    // until its sets are actually filled (every sweep cell builds a
    // fresh machine, so eager zeroing was measurable per-cell setup).
    lines_.reset(static_cast<Line *>(
        std::calloc(num_lines, sizeof(Line))));
    ssp_assert(lines_ != nullptr);
}

std::uint64_t
Cache::setOf(Addr line_addr) const
{
    return (line_addr >> kLineShift) % numSets_;
}

Cache::Line *
Cache::find(Addr line_addr)
{
    const std::uint64_t set = setOf(line_addr);
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = lines_[set * params_.ways + w];
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr line_addr) const
{
    return const_cast<Cache *>(this)->find(line_addr);
}

Cache::Line &
Cache::victimIn(std::uint64_t set)
{
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = lines_[set * params_.ways + w];
        if (!line.valid)
            return line;
        if (victim == nullptr || line.lru < victim->lru)
            victim = &line;
    }
    return *victim;
}

void
Cache::touch(Line &line)
{
    line.lru = ++lruClock_;
}

void
Cache::notifyAdd(Addr line_addr)
{
    if (sharers_ != nullptr)
        sharers_->add(shareCore_, shareLevel_, line_addr);
}

void
Cache::notifyRemove(Addr line_addr)
{
    if (sharers_ != nullptr)
        sharers_->remove(shareCore_, shareLevel_, line_addr);
}

CacheAccessResult
Cache::access(Addr line_addr, bool is_write)
{
    ssp_assert_dbg(lineOffset(line_addr) == 0, "unaligned line address");
    CacheAccessResult res;
    if (Line *line = find(line_addr)) {
        ++hits_;
        res.hit = true;
        if (is_write)
            line->dirty = true;
        touch(*line);
        return res;
    }
    ++misses_;
    // find() just proved the line absent; go straight to the victim.
    res = fillVictim(line_addr, is_write, false);
    res.hit = false;
    return res;
}

CacheAccessResult
Cache::insert(Addr line_addr, bool dirty, bool tx)
{
    CacheAccessResult res;
    if (Line *line = find(line_addr)) {
        // Merging an insert into a present line keeps the stickier state.
        line->dirty = line->dirty || dirty;
        line->tx = line->tx || tx;
        touch(*line);
        return res;
    }
    return fillVictim(line_addr, dirty, tx);
}

CacheAccessResult
Cache::fillVictim(Addr line_addr, bool dirty, bool tx)
{
    CacheAccessResult res;
    Line &victim = victimIn(setOf(line_addr));
    if (victim.valid && victim.dirty) {
        ++evictions_;
        res.writeback = true;
        res.victimAddr = victim.tag;
        res.victimTx = victim.tx;
    } else if (victim.valid) {
        ++evictions_;
    }
    if (victim.valid)
        notifyRemove(victim.tag);
    notifyAdd(line_addr);
    victim.tag = line_addr;
    victim.valid = true;
    victim.dirty = dirty;
    victim.tx = tx;
    touch(victim);
    return res;
}

bool
Cache::probe(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

bool
Cache::isDirty(Addr line_addr) const
{
    const Line *line = find(line_addr);
    return line != nullptr && line->dirty;
}

void
Cache::cleanLine(Addr line_addr)
{
    if (Line *line = find(line_addr))
        line->dirty = false;
}

void
Cache::setTxBit(Addr line_addr, bool tx)
{
    if (Line *line = find(line_addr))
        line->tx = tx;
}

bool
Cache::txBit(Addr line_addr) const
{
    const Line *line = find(line_addr);
    return line != nullptr && line->tx;
}

bool
Cache::invalidate(Addr line_addr)
{
    if (Line *line = find(line_addr)) {
        notifyRemove(line_addr);
        line->valid = false;
        line->dirty = false;
        line->tx = false;
        return true;
    }
    return false;
}

CacheAccessResult
Cache::remap(Addr old_addr, Addr new_addr)
{
    CacheAccessResult res;
    Line *old_line = find(old_addr);
    if (old_line == nullptr)
        return res;
    const bool dirty = old_line->dirty;
    const bool tx = old_line->tx;
    notifyRemove(old_addr);
    old_line->valid = false;
    old_line->dirty = false;
    old_line->tx = false;
    res = insert(new_addr, dirty, tx);
    res.hit = true; // signals "old line was present and moved"
    return res;
}

void
Cache::invalidateAll()
{
    for (std::uint64_t i = 0; i < numLines_; ++i) {
        Line &line = lines_[i];
        // Write only slots that were ever filled: invalid slots are
        // behaviorally inert whatever their bytes say (every reader
        // gates on `valid`), and skipping the store keeps the
        // calloc-backed array's untouched pages unmapped across
        // simulated power failures.
        if (!line.valid)
            continue;
        notifyRemove(line.tag);
        line = Line{};
    }
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < numLines_; ++i)
        n += lines_[i].valid ? 1 : 0;
    return n;
}

} // namespace ssp
