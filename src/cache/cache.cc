#include "cache/cache.hh"

#include "cache/sharer_index.hh"
#include "common/logging.hh"

namespace ssp
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    ssp_assert(params.ways > 0);
    const std::uint64_t num_lines = params.sizeBytes / kLineSize;
    ssp_assert(num_lines % params.ways == 0,
               "cache size must be a multiple of ways*line");
    numSets_ = num_lines / params.ways;
    ssp_assert(numSets_ > 0);
    numLines_ = num_lines;
    // calloc: all-zero tag words are valid==false, and the OS hands back
    // lazily-mapped zero pages — a 96 MiB L3's tag array costs nothing
    // until its sets are actually filled (every sweep cell builds a
    // fresh machine, so eager zeroing was measurable per-cell setup).
    tags_.reset(static_cast<std::uint64_t *>(
        std::calloc(num_lines, sizeof(std::uint64_t))));
    lru_.reset(static_cast<std::uint64_t *>(
        std::calloc(num_lines, sizeof(std::uint64_t))));
    ssp_assert(tags_ != nullptr && lru_ != nullptr);
}

std::uint64_t
Cache::setOf(Addr line_addr) const
{
    return (line_addr >> kLineShift) % numSets_;
}

std::uint64_t
Cache::findIdx(Addr line_addr) const
{
    const std::uint64_t base = setOf(line_addr) * params_.ways;
    // One compare per way: tag equality and the valid bit test fold
    // into a single masked comparison against addr|valid.
    const std::uint64_t want = line_addr | kValidBit;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if ((tags_[base + w] & (kTagMask | kValidBit)) == want)
            return base + w;
    }
    return kNoLine;
}

std::uint64_t
Cache::victimIn(std::uint64_t set) const
{
    const std::uint64_t base = set * params_.ways;
    std::uint64_t victim = kNoLine;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if ((tags_[base + w] & kValidBit) == 0)
            return base + w;
        if (victim == kNoLine || lru_[base + w] < lru_[victim])
            victim = base + w;
    }
    return victim;
}

void
Cache::touch(std::uint64_t idx)
{
    lru_[idx] = ++lruClock_;
}

void
Cache::notifyAdd(Addr line_addr)
{
    if (sharers_ != nullptr)
        sharers_->add(shareCore_, shareLevel_, line_addr);
}

void
Cache::notifyRemove(Addr line_addr)
{
    if (sharers_ != nullptr)
        sharers_->remove(shareCore_, shareLevel_, line_addr);
}

CacheAccessResult
Cache::access(Addr line_addr, bool is_write)
{
    ssp_assert_dbg(lineOffset(line_addr) == 0, "unaligned line address");
    CacheAccessResult res;
    const std::uint64_t idx = findIdx(line_addr);
    if (idx != kNoLine) {
        ++hits_;
        res.hit = true;
        if (is_write)
            tags_[idx] |= kDirtyBit;
        touch(idx);
        return res;
    }
    ++misses_;
    // findIdx() just proved the line absent; go straight to the victim.
    res = fillVictim(line_addr, is_write, false);
    res.hit = false;
    return res;
}

CacheAccessResult
Cache::insert(Addr line_addr, bool dirty, bool tx)
{
    CacheAccessResult res;
    const std::uint64_t idx = findIdx(line_addr);
    if (idx != kNoLine) {
        // Merging an insert into a present line keeps the stickier state.
        tags_[idx] |= (dirty ? kDirtyBit : 0) | (tx ? kTxFlagBit : 0);
        touch(idx);
        return res;
    }
    return fillVictim(line_addr, dirty, tx);
}

CacheAccessResult
Cache::fillVictim(Addr line_addr, bool dirty, bool tx)
{
    CacheAccessResult res;
    const std::uint64_t idx = victimIn(setOf(line_addr));
    const std::uint64_t old = tags_[idx];
    if ((old & kValidBit) != 0) {
        ++evictions_;
        if ((old & kDirtyBit) != 0) {
            res.writeback = true;
            res.victimAddr = old & kTagMask;
            res.victimTx = (old & kTxFlagBit) != 0;
        }
        notifyRemove(old & kTagMask);
    }
    notifyAdd(line_addr);
    tags_[idx] = line_addr | kValidBit | (dirty ? kDirtyBit : 0) |
                 (tx ? kTxFlagBit : 0);
    touch(idx);
    return res;
}

bool
Cache::probe(Addr line_addr) const
{
    return findIdx(line_addr) != kNoLine;
}

bool
Cache::isDirty(Addr line_addr) const
{
    const std::uint64_t idx = findIdx(line_addr);
    return idx != kNoLine && (tags_[idx] & kDirtyBit) != 0;
}

void
Cache::cleanLine(Addr line_addr)
{
    const std::uint64_t idx = findIdx(line_addr);
    if (idx != kNoLine)
        tags_[idx] &= ~kDirtyBit;
}

void
Cache::setTxBit(Addr line_addr, bool tx)
{
    const std::uint64_t idx = findIdx(line_addr);
    if (idx != kNoLine) {
        if (tx)
            tags_[idx] |= kTxFlagBit;
        else
            tags_[idx] &= ~kTxFlagBit;
    }
}

bool
Cache::txBit(Addr line_addr) const
{
    const std::uint64_t idx = findIdx(line_addr);
    return idx != kNoLine && (tags_[idx] & kTxFlagBit) != 0;
}

bool
Cache::invalidate(Addr line_addr)
{
    const std::uint64_t idx = findIdx(line_addr);
    if (idx != kNoLine) {
        notifyRemove(line_addr);
        tags_[idx] &= kTagMask;
        return true;
    }
    return false;
}

CacheAccessResult
Cache::remap(Addr old_addr, Addr new_addr)
{
    CacheAccessResult res;
    const std::uint64_t idx = findIdx(old_addr);
    if (idx == kNoLine)
        return res;
    const bool dirty = (tags_[idx] & kDirtyBit) != 0;
    const bool tx = (tags_[idx] & kTxFlagBit) != 0;
    notifyRemove(old_addr);
    tags_[idx] &= kTagMask;
    res = insert(new_addr, dirty, tx);
    res.hit = true; // signals "old line was present and moved"
    return res;
}

void
Cache::invalidateAll()
{
    for (std::uint64_t i = 0; i < numLines_; ++i) {
        // Write only slots that were ever filled: invalid slots are
        // behaviorally inert whatever their bytes say (every reader
        // gates on the valid bit), and skipping the store keeps the
        // calloc-backed arrays' untouched pages unmapped across
        // simulated power failures.
        if ((tags_[i] & kValidBit) == 0)
            continue;
        notifyRemove(tags_[i] & kTagMask);
        tags_[i] = 0;
        lru_[i] = 0;
    }
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < numLines_; ++i)
        n += (tags_[i] & kValidBit) != 0 ? 1 : 0;
    return n;
}

} // namespace ssp
