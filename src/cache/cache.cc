#include "cache/cache.hh"

#include "common/logging.hh"

namespace ssp
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    ssp_assert(params.ways > 0);
    const std::uint64_t num_lines = params.sizeBytes / kLineSize;
    ssp_assert(num_lines % params.ways == 0,
               "cache size must be a multiple of ways*line");
    numSets_ = num_lines / params.ways;
    ssp_assert(numSets_ > 0);
    lines_.resize(num_lines);
}

std::uint64_t
Cache::setOf(Addr line_addr) const
{
    return (line_addr >> kLineShift) % numSets_;
}

Cache::Line *
Cache::find(Addr line_addr)
{
    const std::uint64_t set = setOf(line_addr);
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = lines_[set * params_.ways + w];
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr line_addr) const
{
    return const_cast<Cache *>(this)->find(line_addr);
}

Cache::Line &
Cache::victimIn(std::uint64_t set)
{
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = lines_[set * params_.ways + w];
        if (!line.valid)
            return line;
        if (victim == nullptr || line.lru < victim->lru)
            victim = &line;
    }
    return *victim;
}

void
Cache::touch(Line &line)
{
    line.lru = ++lruClock_;
}

CacheAccessResult
Cache::access(Addr line_addr, bool is_write)
{
    ssp_assert(lineOffset(line_addr) == 0, "unaligned line address");
    CacheAccessResult res;
    if (Line *line = find(line_addr)) {
        ++hits_;
        res.hit = true;
        if (is_write)
            line->dirty = true;
        touch(*line);
        return res;
    }
    ++misses_;
    res = insert(line_addr, is_write, false);
    res.hit = false;
    return res;
}

CacheAccessResult
Cache::insert(Addr line_addr, bool dirty, bool tx)
{
    CacheAccessResult res;
    if (Line *line = find(line_addr)) {
        // Merging an insert into a present line keeps the stickier state.
        line->dirty = line->dirty || dirty;
        line->tx = line->tx || tx;
        touch(*line);
        return res;
    }
    Line &victim = victimIn(setOf(line_addr));
    if (victim.valid && victim.dirty) {
        ++evictions_;
        res.writeback = true;
        res.victimAddr = victim.tag;
        res.victimTx = victim.tx;
    } else if (victim.valid) {
        ++evictions_;
    }
    victim.tag = line_addr;
    victim.valid = true;
    victim.dirty = dirty;
    victim.tx = tx;
    touch(victim);
    return res;
}

bool
Cache::probe(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

bool
Cache::isDirty(Addr line_addr) const
{
    const Line *line = find(line_addr);
    return line != nullptr && line->dirty;
}

void
Cache::cleanLine(Addr line_addr)
{
    if (Line *line = find(line_addr))
        line->dirty = false;
}

void
Cache::setTxBit(Addr line_addr, bool tx)
{
    if (Line *line = find(line_addr))
        line->tx = tx;
}

bool
Cache::txBit(Addr line_addr) const
{
    const Line *line = find(line_addr);
    return line != nullptr && line->tx;
}

bool
Cache::invalidate(Addr line_addr)
{
    if (Line *line = find(line_addr)) {
        line->valid = false;
        line->dirty = false;
        line->tx = false;
        return true;
    }
    return false;
}

CacheAccessResult
Cache::remap(Addr old_addr, Addr new_addr)
{
    CacheAccessResult res;
    Line *old_line = find(old_addr);
    if (old_line == nullptr)
        return res;
    const bool dirty = old_line->dirty;
    const bool tx = old_line->tx;
    old_line->valid = false;
    old_line->dirty = false;
    old_line->tx = false;
    res = insert(new_addr, dirty, tx);
    res.hit = true; // signals "old line was present and moved"
    return res;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line{};
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace ssp
