#include "cache/hierarchy.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace ssp
{

CacheHierarchy::CacheHierarchy(unsigned num_cores,
                               const HierarchyParams &params, MemoryBus &bus,
                               bool force_sharer_index)
    : params_(params), bus_(bus)
{
    ssp_assert(num_cores > 0);
    ssp_assert(num_cores <= kMaxCores,
               "sharer bitmaps hold at most %u cores", kMaxCores);
    indexed_ = force_sharer_index || num_cores >= kSharerIndexMinCores;
    for (unsigned i = 0; i < num_cores; ++i) {
        l1s_.push_back(std::make_unique<Cache>(params.l1));
        l2s_.push_back(std::make_unique<Cache>(params.l2));
        // Small machines never consult the index; skip the bookkeeping
        // entirely so their fills stay hash-free.
        if (indexed_) {
            l1s_.back()->attachSharerIndex(&sharers_, i, SharerIndex::kL1);
            l2s_.back()->attachSharerIndex(&sharers_, i, SharerIndex::kL2);
        }
    }
    l3_ = std::make_unique<Cache>(params.l3);
}

void
CacheHierarchy::attachCoherence(CoherenceModel *model)
{
    coherence_ = model;
    maintenance_ = nullptr;
    if (model == nullptr)
        return;
    if (SharerListener *listener = model->sharerListener()) {
        ssp_assert(indexed_,
                   "a coherence model with a sharer listener needs the "
                   "sharer index (force_sharer_index)");
        sharers_.attachListener(listener);
    }
    if (model->needsMaintenance())
        maintenance_ = model;
}

void
CacheHierarchy::handleVictim(CoreId core, unsigned level,
                             const CacheAccessResult &res, Cycles now)
{
    if (!res.writeback)
        return;
    if (level == 0) {
        // L1 victim falls into L2.
        auto r2 = l2s_[core]->insert(res.victimAddr, true, res.victimTx);
        handleVictim(core, 1, r2, now);
    } else if (level == 1) {
        // L2 victim falls into L3.
        auto r3 = l3_->insert(res.victimAddr, true, res.victimTx);
        handleVictim(core, 2, r3, now);
    } else {
        // L3 victim goes to memory.  Background bandwidth: occupies a
        // bank but nobody stalls on it.  The victim's TX bit picks the
        // Figure 6/7 category: a speculative (pre-commit) line is not
        // committed transactional data — if its transaction aborts the
        // write was wasted — so it must not inflate the Data series.
        const WriteCategory cat =
            res.victimTx ? WriteCategory::Other : WriteCategory::Data;
        bus_.issueWrite(res.victimAddr, cat, now, true);
    }
}

Cycles
CacheHierarchy::read(CoreId core, Addr addr, Cycles now)
{
    const Cycles done = readImpl(core, addr, now);
    if (maintenance_ != nullptr)
        maintenance_->drainMaintenance(done);
    return done;
}

Cycles
CacheHierarchy::readImpl(CoreId core, Addr addr, Cycles now)
{
    const Addr line = lineBase(addr);
    Cache &l1 = *l1s_[core];
    Cache &l2 = *l2s_[core];

    auto r1 = l1.access(line, false);
    Cycles done = now + l1.latency();
    handleVictim(core, 0, r1, now);
    if (r1.hit)
        return done;

    auto r2 = l2.access(line, false);
    done += l2.latency();
    handleVictim(core, 1, r2, now);
    if (r2.hit)
        return done;

    auto r3 = l3_->access(line, false);
    done += l3_->latency();
    handleVictim(core, 2, r3, now);
    if (r3.hit)
        return done;

    return bus_.issueRead(line, done);
}

Cycles
CacheHierarchy::write(CoreId core, Addr addr, Cycles now)
{
    const Cycles done = writeImpl(core, addr, now);
    if (maintenance_ != nullptr)
        maintenance_->drainMaintenance(done);
    return done;
}

Cycles
CacheHierarchy::writeImpl(CoreId core, Addr addr, Cycles now)
{
    const Addr line = lineBase(addr);
    Cache &l1 = *l1s_[core];
    Cache &l2 = *l2s_[core];

    auto r1 = l1.access(line, true);
    Cycles done = now + l1.latency();
    handleVictim(core, 0, r1, now);
    if (r1.hit)
        return invalidatePeersOnWrite(core, line, done);

    // Write-allocate: fetch through the lower levels.
    auto r2 = l2.access(line, false);
    done += l2.latency();
    handleVictim(core, 1, r2, now);
    if (r2.hit)
        return invalidatePeersOnWrite(core, line, done);

    auto r3 = l3_->access(line, false);
    done += l3_->latency();
    handleVictim(core, 2, r3, now);
    if (r3.hit)
        return invalidatePeersOnWrite(core, line, done);

    return invalidatePeersOnWrite(core, line, bus_.issueRead(line, done));
}

Cycles
CacheHierarchy::invalidatePeersOnWrite(CoreId core, Addr line, Cycles done)
{
    if (coherence_ == nullptr || numCores() <= 1)
        return done;
    // Peer copies are clean (only the lock holder dirties a page
    // mid-transaction and commit cleans its lines), so dropping
    // without write-back loses nothing.
    if (!indexed_) {
        // Small machine: brute-force probe of every peer's L1+L2.
        CoreBitmap peers;
        for (CoreId c = 0; c < numCores(); ++c) {
            if (c == core)
                continue;
            const bool in_l1 = l1s_[c]->invalidate(line);
            const bool in_l2 = l2s_[c]->invalidate(line);
            if (in_l1 || in_l2) {
                peers.set(c);
                coherence_->deliverInvalidation(c);
            }
        }
        return peers.any()
                   ? coherence_->invalidate(core, line, peers, done)
                   : done;
    }
    // The sharer index gives the exact peer set, so only actual holders
    // are probed — the same peers the full tag scan used to find, hence
    // the same messages and the same charged cycles.
    CoreBitmap peers = sharers_.sharers(line);
    peers.reset(core);
    if (peers.none())
        return done;
    peers.forEachSet([&](CoreId c) {
        const bool in_l1 = l1s_[c]->invalidate(line);
        const bool in_l2 = l2s_[c]->invalidate(line);
        ssp_assert_dbg(in_l1 || in_l2, "sharer index out of sync");
        coherence_->deliverInvalidation(c);
    });
    return coherence_->invalidate(core, line, peers, done);
}

Cycles
CacheHierarchy::flushLine(CoreId core, Addr addr, WriteCategory cat,
                          Cycles now, bool background)
{
    const Addr line = lineBase(addr);
    bool dirty = false;
    if (l1s_[core]->isDirty(line)) {
        l1s_[core]->cleanLine(line);
        dirty = true;
    }
    if (l2s_[core]->isDirty(line)) {
        l2s_[core]->cleanLine(line);
        dirty = true;
    }
    if (l3_->isDirty(line)) {
        l3_->cleanLine(line);
        dirty = true;
    }
    // A line dirty in a *different* core's private caches belongs to that
    // core's ongoing transaction; locking at the workload level prevents
    // cross-core flushes of speculative data.
    if (!dirty)
        return now;
    return bus_.issueWrite(line, cat, now, background);
}

Cycles
CacheHierarchy::flushLines(CoreId core, const Addr *lines, std::size_t count,
                           WriteCategory cat, Cycles now)
{
    Cycles done = now;
    for (std::size_t i = 0; i < count; ++i)
        done = std::max(done, flushLine(core, lines[i], cat, now));
    return done;
}

void
CacheHierarchy::invalidateLine(Addr addr)
{
    const Addr line = lineBase(addr);
    if (indexed_) {
        sharers_.sharers(line).forEachSet([&](CoreId c) {
            l1s_[c]->invalidate(line);
            l2s_[c]->invalidate(line);
        });
    } else {
        for (auto &l1 : l1s_)
            l1->invalidate(line);
        for (auto &l2 : l2s_)
            l2->invalidate(line);
    }
    l3_->invalidate(line);
}

CoreBitmap
CacheHierarchy::invalidateLineRemote(CoreId sender, Addr addr)
{
    if (numCores() <= 1)
        return CoreBitmap{};
    const Addr line = lineBase(addr);
    if (!indexed_) {
        CoreBitmap peers;
        for (CoreId c = 0; c < numCores(); ++c) {
            if (c == sender)
                continue;
            const bool in_l1 = l1s_[c]->invalidate(line);
            const bool in_l2 = l2s_[c]->invalidate(line);
            if (in_l1 || in_l2)
                peers.set(c);
        }
        return peers;
    }
    CoreBitmap peers = sharers_.sharers(line);
    peers.reset(sender);
    peers.forEachSet([&](CoreId c) {
        const bool in_l1 = l1s_[c]->invalidate(line);
        const bool in_l2 = l2s_[c]->invalidate(line);
        ssp_assert_dbg(in_l1 || in_l2, "sharer index out of sync");
    });
    return peers;
}

CoreBitmap
CacheHierarchy::backInvalidateLine(Addr addr, Cycles now)
{
    const Addr line = lineBase(addr);
    ssp_assert_dbg(indexed_,
                   "back-invalidation needs the sharer index");
    const CoreBitmap dropped = sharers_.sharers(line);
    dropped.forEachSet([&](CoreId c) {
        // A dirty private copy falls into the shared L3 like a normal
        // victim (displacing an L3 victim to memory if needed); clean
        // copies just vanish.  Only one core can hold the line dirty —
        // it is the lock holder's speculative or just-written data.
        const bool dirty =
            l1s_[c]->isDirty(line) || l2s_[c]->isDirty(line);
        const bool tx = l1s_[c]->txBit(line);
        l1s_[c]->invalidate(line);
        l2s_[c]->invalidate(line);
        if (dirty) {
            auto r3 = l3_->insert(line, true, tx);
            handleVictim(c, 2, r3, now);
        }
    });
    return dropped;
}

void
CacheHierarchy::remapLine(CoreId core, Addr old_addr, Addr new_addr,
                          Cycles now)
{
    const Addr old_line = lineBase(old_addr);
    const Addr new_line = lineBase(new_addr);
    auto r1 = l1s_[core]->remap(old_line, new_line);
    handleVictim(core, 0, r1, now);
    auto r2 = l2s_[core]->remap(old_line, new_line);
    handleVictim(core, 1, r2, now);
    auto r3 = l3_->remap(old_line, new_line);
    handleVictim(core, 2, r3, now);
    if (maintenance_ != nullptr)
        maintenance_->drainMaintenance(now);
    // Copies of the committed line in other cores' private caches are
    // now tagged with a remapped-away address; the caller shoots them
    // down via invalidateLineRemote() as part of the flip-current-bit
    // broadcast.
}

void
CacheHierarchy::setTxBit(CoreId core, Addr addr, bool tx)
{
    l1s_[core]->setTxBit(lineBase(addr), tx);
}

bool
CacheHierarchy::txBitSet(CoreId core, Addr addr) const
{
    return l1s_[core]->txBit(lineBase(addr));
}

bool
CacheHierarchy::isCached(CoreId core, Addr addr) const
{
    const Addr line = lineBase(addr);
    return l1s_[core]->probe(line) || l2s_[core]->probe(line) ||
           l3_->probe(line);
}

bool
CacheHierarchy::isDirty(CoreId core, Addr addr) const
{
    const Addr line = lineBase(addr);
    return l1s_[core]->isDirty(line) || l2s_[core]->isDirty(line) ||
           l3_->isDirty(line);
}

void
CacheHierarchy::invalidateAll()
{
    for (auto &l1 : l1s_)
        l1->invalidateAll();
    for (auto &l2 : l2s_)
        l2->invalidateAll();
    l3_->invalidateAll();
    ssp_assert_dbg(!indexed_ || sharers_.trackedLines() == 0,
                   "sharer index must drain with the caches");
}

} // namespace ssp
