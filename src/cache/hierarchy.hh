/**
 * @file
 * Three-level cache hierarchy: private L1D and L2 per core, shared L3,
 * backed by the memory bus (Table 2 geometry).
 *
 * Functional data lives in PhysMem; the hierarchy provides timing, dirty
 * tracking, write-back accounting, and the SSP line-remap operation
 * applied at every level where the line is present.
 */

#ifndef SSP_CACHE_HIERARCHY_HH
#define SSP_CACHE_HIERARCHY_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/coherence.hh"
#include "cache/sharer_index.hh"
#include "common/types.hh"
#include "mem/memory_bus.hh"

namespace ssp
{

/** Geometry of the full hierarchy. */
struct HierarchyParams
{
    CacheParams l1{"l1d", 32 * 1024, 8, 4};
    CacheParams l2{"l2", 256 * 1024, 8, 6};
    CacheParams l3{"l3", 12 * 1024 * 1024, 16, 27};
};

/**
 * The cache hierarchy of the simulated machine.
 *
 * All addresses are physical line addresses.  The model is exclusive-ish
 * and simple: fills allocate in every level on the path; dirty victims
 * fall one level down; dirty L3 victims are written back to memory as
 * WriteCategory::Data (logs and journals never pass through the caches —
 * hardware logging designs stream them past the hierarchy).
 */
class CacheHierarchy
{
  public:
    /**
     * @param force_sharer_index Maintain the sharer index even below
     *        kSharerIndexMinCores — the directory coherence model's
     *        snoop filter is fed by it, so directory-mode machines
     *        need it at every core count.
     */
    CacheHierarchy(unsigned num_cores, const HierarchyParams &params,
                   MemoryBus &bus, bool force_sharer_index = false);

    /**
     * Attach the coherence model (done by Machine after construction).
     * With a model attached, write() invalidates peer-cached copies and
     * charges the sender one coherence event when any existed; without
     * one the hierarchy times every access in isolation (standalone
     * tests).  A model with a sharer listener (the directory snoop
     * filter) is wired into the sharer index here, and its deferred
     * maintenance is drained after every timed access.
     */
    void attachCoherence(CoherenceModel *model);

    /** Timed read of the line containing @p addr. */
    Cycles read(CoreId core, Addr addr, Cycles now);

    /** Timed write (write-allocate) of the line containing @p addr. */
    Cycles write(CoreId core, Addr addr, Cycles now);

    /**
     * clwb semantics: if the line is dirty anywhere in the hierarchy,
     * write it back to memory (category @p cat) and clean it; the line
     * stays cached.  Returns the completion time of the write-back (or
     * @p now when nothing was dirty).
     */
    Cycles flushLine(CoreId core, Addr addr, WriteCategory cat, Cycles now,
                     bool background = false);

    /**
     * Batched clwb: flush every line in @p lines, in order, all issued
     * at @p now, returning the latest completion.  Cycle-equivalent to
     * looping flushLine() — the bus sees the same write-backs in the
     * same arbitration order — but gives commit one call per write set
     * and a single loop the branch predictor learns.
     */
    Cycles flushLines(CoreId core, const Addr *lines, std::size_t count,
                      WriteCategory cat, Cycles now);

    /**
     * Host-cache prefetch hint for the tag sets @p addr maps to on
     * @p core's lookup path (L1, L2, L3).  Reads no simulated state —
     * safe from ghost speculation threads at any time.
     */
    void
    prefetchTags(CoreId core, Addr addr) const
    {
        const Addr line = lineBase(addr);
        l1s_[core]->prefetchSet(line);
        l2s_[core]->prefetchSet(line);
        l3_->prefetchSet(line);
    }

    /** Drop a line everywhere without write-back (SSP abort path). */
    void invalidateLine(Addr addr);

    /**
     * Flip-current-bit shootdown: drop the line from every core's
     * private caches *except* @p sender's.  Used when an SSP CoW remap
     * moves the committed copy of a line to the "other" physical page —
     * peer copies tagged with the remapped-away address are stale and
     * must never be written back to the old location.  Copies are
     * dropped without write-back: only the lock-holding core can have a
     * dirty copy of a page inside a transaction, and commit cleans it,
     * so peer copies are clean by construction.
     *
     * @return Bitmap of peer cores that held a copy (bit c = core c);
     *         the caller charges receiver cost and counts the messages.
     */
    CoreBitmap invalidateLineRemote(CoreId sender, Addr addr);

    /**
     * Snoop-filter back-invalidation: drop every private-cache copy of
     * @p addr's line.  A dirty copy falls into the shared L3 first (as
     * a normal dirty victim would), so no write is lost — dropping a
     * dirty pre-commit line outright would corrupt the durability
     * accounting its commit-time flush depends on.  Called by the
     * directory coherence model's maintenance drain, never mid-access.
     *
     * @return Bitmap of cores that held a copy.
     */
    CoreBitmap backInvalidateLine(Addr addr, Cycles now);

    /**
     * SSP first-transactional-write remap: move the cached copy of
     * @p old_addr (committed location) so it tags @p new_addr (the
     * "other" physical page).  If the old copy is not cached, the caller
     * has already paid for the fill.  Dirty victims displaced by the
     * re-tagged line are handled as normal write-backs.
     */
    void remapLine(CoreId core, Addr old_addr, Addr new_addr, Cycles now);

    /** Mark or clear the TX bit in the L1 copy. */
    void setTxBit(CoreId core, Addr addr, bool tx);

    /**
     * True when the L1 copy of @p addr carries the TX bit — i.e. the
     * line is speculative state of @p core's open transaction.  The
     * ConflictManager's per-transaction write set is the virtual-line
     * view of exactly these physical lines (see tests/test_conflicts).
     */
    bool txBitSet(CoreId core, Addr addr) const;

    /** True if the line is present in any level. */
    bool isCached(CoreId core, Addr addr) const;

    /** True if the line is dirty in any level. */
    bool isDirty(CoreId core, Addr addr) const;

    /** Simulated power failure: all volatile cache state disappears. */
    void invalidateAll();

    Cache &l1(CoreId core) { return *l1s_[core]; }
    Cache &l2(CoreId core) { return *l2s_[core]; }
    Cache &l3() { return *l3_; }
    unsigned numCores() const { return static_cast<unsigned>(l1s_.size()); }

    /**
     * Smallest core count whose hierarchy maintains the sharer index:
     * below this, brute-force peer probes touch so few tag arrays that
     * the index's per-fill bookkeeping costs more than it saves.  The
     * cutover is invisible in simulated time — both paths find exactly
     * the same peer set (tests/test_multicore.cc checks the index
     * against brute-force probes).
     */
    static constexpr unsigned kSharerIndexMinCores = 5;

    /** True when this hierarchy maintains the sharer index. */
    bool sharerIndexed() const { return indexed_; }

    /**
     * The line-granular sharer index over all private L1/L2 caches.
     * Peer-directed operations iterate its masks instead of probing
     * every core's tag arrays; only maintained (and only meaningful)
     * when sharerIndexed().
     */
    const SharerIndex &sharerIndex() const { return sharers_; }

  private:
    /** Handle a dirty victim evicted from level @p level (0=L1, 1=L2). */
    void handleVictim(CoreId core, unsigned level,
                      const CacheAccessResult &res, Cycles now);

    /**
     * MESI-style write invalidation: drop peer copies of @p line and,
     * when any existed, charge the sender one coherence event on top
     * of @p done.  No-op without an attached model or peers.
     */
    Cycles invalidatePeersOnWrite(CoreId core, Addr line, Cycles done);

    /** read() body; the public wrapper drains coherence maintenance. */
    Cycles readImpl(CoreId core, Addr addr, Cycles now);

    /** write() body; the public wrapper drains coherence maintenance. */
    Cycles writeImpl(CoreId core, Addr addr, Cycles now);

    HierarchyParams params_;
    MemoryBus &bus_;
    CoherenceModel *coherence_ = nullptr;
    /** Set iff coherence_ queues deferred maintenance (the directory
     *  snoop filter); broadcast machines pay one null check only. */
    CoherenceModel *maintenance_ = nullptr;
    bool indexed_ = false;
    SharerIndex sharers_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<Cache>> l2s_;
    std::unique_ptr<Cache> l3_;
};

} // namespace ssp

#endif // SSP_CACHE_HIERARCHY_HH
