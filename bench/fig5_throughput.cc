/**
 * @file
 * Figure 5 reproduction: transactional throughput of the seven
 * microbenchmarks under UNDO-LOG, REDO-LOG and SSP, normalized to
 * UNDO-LOG — (a) one thread, (b) four threads.
 */

#include <cmath>

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

namespace
{

void
runFigure(unsigned cores, const char *label)
{
    SspConfig cfg = paperConfig(cores);
    printHeader(std::string("Figure 5") + label +
                    ": TPS normalized to UNDO-LOG (" +
                    std::to_string(cores) + " thread(s), higher is better)",
                cfg);

    TextTable table({"workload", "UNDO-LOG", "REDO-LOG", "SSP",
                     "SSP/UNDO", "SSP/REDO"});
    double geo_undo = 1.0, geo_redo = 1.0;
    unsigned n = 0;
    for (WorkloadKind w : microbenchmarks()) {
        double tps[3] = {0, 0, 0};
        unsigned i = 0;
        for (BackendKind b : paperBackends())
            tps[i++] = runCell(b, w, cfg, kMeasuredTxs, cores).tps();
        const double base = tps[0];
        table.addRow({workloadKindName(w), fmtDouble(tps[0] / base),
                      fmtDouble(tps[1] / base), fmtDouble(tps[2] / base),
                      fmtDouble(tps[2] / tps[0]),
                      fmtDouble(tps[2] / tps[1])});
        geo_undo *= tps[2] / tps[0];
        geo_redo *= tps[2] / tps[1];
        ++n;
    }
    table.addRow({"geomean", "1.00", "-", "-",
                  fmtDouble(std::pow(geo_undo, 1.0 / n)),
                  fmtDouble(std::pow(geo_redo, 1.0 / n))});
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    runFigure(1, "a");
    printPaperNote("Fig 5a: SSP outperforms UNDO-LOG by 1.9x and REDO-LOG "
                   "by 1.3x on average (single thread)");
    runFigure(4, "b");
    printPaperNote("Fig 5b: SSP outperforms UNDO-LOG by 2.4x and REDO-LOG "
                   "by 1.4x on average (four threads)");
    return 0;
}
