/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot primitives:
 * bitmap operations, cache lookups, TLB lookups, journal appends, and
 * full SSP transactions.  These gate simulator performance, not the
 * paper's results — they exist so regressions in the substrate are
 * visible.
 */

#include <benchmark/benchmark.h>

#include "common/bitmap64.hh"
#include "common/logging.hh"
#include "core/ssp_system.hh"
#include "vm/tlb.hh"

using namespace ssp;

namespace
{

void
BM_BitmapCommitXor(benchmark::State &state)
{
    Bitmap64 committed(0x5a5a5a5a5a5a5a5aull);
    Bitmap64 updated(0x0f0f0f0f0f0f0f0full);
    for (auto _ : state) {
        committed ^= updated;
        benchmark::DoNotOptimize(committed);
    }
}
BENCHMARK(BM_BitmapCommitXor);

void
BM_BitmapPopcount(benchmark::State &state)
{
    Bitmap64 b(0x123456789abcdefull);
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.popcount());
    }
}
BENCHMARK(BM_BitmapPopcount);

void
BM_CacheAccessHit(benchmark::State &state)
{
    Cache cache(CacheParams{"l1", 32 * 1024, 8, 4});
    cache.access(0x1000, false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(0x1000, false));
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_TlbLookupHit(benchmark::State &state)
{
    Tlb tlb(64);
    for (Vpn v = 0; v < 64; ++v) {
        TlbEntry e;
        e.valid = true;
        e.vpn = v;
        tlb.insert(e);
    }
    Vpn probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(probe));
        probe = (probe + 1) % 64;
    }
}
BENCHMARK(BM_TlbLookupHit);

void
BM_SspTransaction(benchmark::State &state)
{
    setVerbose(false);
    SspConfig cfg;
    cfg.heapPages = 1024;
    cfg.shadowPoolPages = 1024;
    cfg.logPages = 512;
    SspSystem sys(cfg);
    std::uint64_t v = 0;
    const unsigned lines = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        sys.begin(0);
        for (unsigned i = 0; i < lines; ++i)
            sys.store(0, 0x10000 + i * kLineSize, &v, sizeof(v));
        sys.commit(0);
        ++v;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SspTransaction)->Arg(1)->Arg(4)->Arg(16);

void
BM_SspLoadHit(benchmark::State &state)
{
    setVerbose(false);
    SspConfig cfg;
    cfg.heapPages = 1024;
    cfg.shadowPoolPages = 1024;
    cfg.logPages = 512;
    SspSystem sys(cfg);
    std::uint64_t v = 42;
    sys.begin(0);
    sys.store(0, 0x20000, &v, sizeof(v));
    sys.commit(0);
    for (auto _ : state) {
        std::uint64_t out = 0;
        sys.load(0, 0x20000, &out, sizeof(out));
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SspLoadHit);

} // namespace

BENCHMARK_MAIN();
