/**
 * @file
 * Ablation A2: consolidation traffic vs TLB reach.
 *
 * SSP's eager consolidation policy fires whenever a page falls out of
 * the TLB, so the TLB size directly controls how well redundant writes
 * are batched (sections 3.4 and 5.2: "the number of transactions is
 * much higher than the number of TLB evictions", and zipfian workloads
 * avoid premature consolidation of hot pages).  This bench sweeps the
 * DTLB from 16 to 256 entries and reports consolidation writes per
 * transaction for a random and a zipfian workload.
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig base = paperConfig(1);
    printHeader("Ablation A2: consolidation writes/tx vs TLB entries",
                base);

    TextTable table({"TLB entries", "RBTree-Rand", "RBTree-Zipf",
                     "Hash-Rand", "Hash-Zipf"});
    for (unsigned entries : {16u, 32u, 64u, 128u, 256u}) {
        SspConfig cfg = paperConfig(1);
        cfg.tlbEntries = entries;
        cfg.shadowPoolPages =
            cfg.numCores * entries + cfg.sspCacheOverprovision + 512;
        std::vector<std::string> row{std::to_string(entries)};
        for (WorkloadKind w :
             {WorkloadKind::RbTreeRand, WorkloadKind::RbTreeZipf,
              WorkloadKind::HashRand, WorkloadKind::HashZipf}) {
            RunResult res = runCell(BackendKind::Ssp, w, cfg);
            row.push_back(fmtDouble(
                static_cast<double>(res.consolidationWrites) /
                    static_cast<double>(res.committedTxs),
                2));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    printPaperNote("larger TLBs batch more commits per consolidation; "
                   "zipfian workloads keep hot pages TLB-resident and "
                   "consolidate far less than random ones at equal reach");
    return 0;
}
