/**
 * @file
 * Shared infrastructure for the figure/table reproduction benches:
 * the default Table 2 configuration, run helpers, and printing of
 * paper-expected vs. measured values.
 */

#ifndef SSP_BENCH_BENCH_COMMON_HH
#define SSP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/driver.hh"
#include "sim/report.hh"
#include "sim/system_builder.hh"

namespace ssp::bench
{

/** Transactions measured per cell (after the setup/prefill phase). */
inline constexpr std::uint64_t kMeasuredTxs = 4000;

/** The Table 2 machine, scaled where it only affects memory footprint. */
inline SspConfig
paperConfig(unsigned cores = 1)
{
    SspConfig cfg;
    cfg.numCores = cores;
    cfg.heapPages = 1 << 15; // 128 MiB persistent heap
    cfg.logPages = 8192;
    // Paper section 5.1: 0.3% of the 12 MiB L3 caches about 1K SSP
    // cache entries.
    cfg.sspCacheSlots = 1024;
    cfg.shadowPoolPages = cfg.sspCacheSlots + 1024;
    return cfg;
}

/** The workload scale used by all benches. */
inline WorkloadScale
paperScale()
{
    WorkloadScale scale;
    // Deep enough trees that per-transaction write sets approach the
    // paper's Table 3 characterization.
    scale.keySpace = 32768;
    scale.spsElements = 1 << 16;
    scale.seed = 42;
    return scale;
}

/** Build + run one (backend, workload) cell. */
inline RunResult
runCell(BackendKind backend, WorkloadKind workload, const SspConfig &cfg,
        std::uint64_t txs = kMeasuredTxs, unsigned cores = 1)
{
    auto exp = buildExperiment(backend, workload, cfg, paperScale());
    return runExperiment(exp, txs, cores);
}

/** Print the bench header with the simulated machine parameters. */
inline void
printHeader(const std::string &title, const SspConfig &cfg)
{
    std::printf("%s", banner(title).c_str());
    std::printf("machine: %u core(s), 3.7 GHz | L1 32KiB/L2 256KiB/L3 "
                "12MiB | DTLB %u | NVRAM read/write %llu/%llu cycles | "
                "DRAM %llu/%llu cycles\n\n",
                cfg.numCores, cfg.tlbEntries,
                static_cast<unsigned long long>(
                    cfg.effectiveNvram().readLatency),
                static_cast<unsigned long long>(
                    cfg.effectiveNvram().writeLatency),
                static_cast<unsigned long long>(cfg.dram.readLatency),
                static_cast<unsigned long long>(cfg.dram.writeLatency));
}

/** Paper-reported reference line for side-by-side comparison. */
inline void
printPaperNote(const std::string &note)
{
    std::printf("paper reference: %s\n\n", note.c_str());
}

} // namespace ssp::bench

#endif // SSP_BENCH_BENCH_COMMON_HH
