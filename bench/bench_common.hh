/**
 * @file
 * Shared infrastructure for the figure/table reproduction benches:
 * the default Table 2 configuration, run helpers, and printing of
 * paper-expected vs. measured values.
 */

#ifndef SSP_BENCH_BENCH_COMMON_HH
#define SSP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/driver.hh"
#include "sim/report.hh"
#include "sim/system_builder.hh"
#include "sweep/sweep_grid.hh"

namespace ssp::bench
{

/** Transactions measured per cell (after the setup/prefill phase). */
inline constexpr std::uint64_t kMeasuredTxs = sweep::kDefaultTxs;

/**
 * The Table 2 machine, scaled where it only affects memory footprint.
 * The definition lives with the sweep grids (src/sweep/sweep_grid.hh)
 * so the figure benches and the sweep CLI run identical machines.
 */
inline SspConfig
paperConfig(unsigned cores = 1)
{
    return sweep::paperConfig(cores);
}

/** The workload scale used by all benches. */
inline WorkloadScale
paperScale()
{
    return sweep::paperScale();
}

/** Build + run one (backend, workload) cell. */
inline RunResult
runCell(BackendKind backend, WorkloadKind workload, const SspConfig &cfg,
        std::uint64_t txs = kMeasuredTxs, unsigned cores = 1)
{
    auto exp = buildExperiment(backend, workload, cfg, paperScale());
    return runExperiment(exp, txs, cores);
}

/** Print the bench header with the simulated machine parameters. */
inline void
printHeader(const std::string &title, const SspConfig &cfg)
{
    const MemSystemParams ms = cfg.memSystem();
    std::printf("%s", banner(title).c_str());
    std::printf("machine: %u core(s), 3.7 GHz | L1 32KiB/L2 256KiB/L3 "
                "12MiB | DTLB %u | NVRAM (%s) read/write %llu/%llu "
                "cycles x%u ch | DRAM %llu/%llu cycles x%u ch | %s "
                "interleave\n\n",
                cfg.numCores, cfg.tlbEntries, ms.nvram.name.c_str(),
                static_cast<unsigned long long>(ms.nvram.readLatency),
                static_cast<unsigned long long>(ms.nvram.writeLatency),
                ms.nvramChannels,
                static_cast<unsigned long long>(ms.dram.readLatency),
                static_cast<unsigned long long>(ms.dram.writeLatency),
                ms.dramChannels,
                interleaveGranularityName(ms.interleave));
}

/** Paper-reported reference line for side-by-side comparison. */
inline void
printPaperNote(const std::string &note)
{
    std::printf("paper reference: %s\n\n", note.c_str());
}

} // namespace ssp::bench

#endif // SSP_BENCH_BENCH_COMMON_HH
