/**
 * @file
 * Figure 8 reproduction: sensitivity of transaction throughput to NVRAM
 * latency, swept from 1x to 9x the DRAM latency, for RBTree-Rand (8a)
 * and BTree-Rand (8b).
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

namespace
{

void
sweepNvramLatency(WorkloadKind w, const char *label)
{
    // Built up with += to sidestep a GCC 12 -Wrestrict false positive
    // (PR105651) on `const char * + std::string&&` chains.
    std::string title = "Figure 8";
    title += label;
    title += ": ";
    title += workloadKindName(w);
    title += " TPS (K) vs NVRAM latency multiplier";
    std::printf("%s", banner(title).c_str());
    TextTable table({"latency", "UNDO-LOG", "REDO-LOG", "SSP",
                     "SSP/REDO"});
    for (double mult : {1.0, 3.0, 5.0, 7.0, 9.0}) {
        SspConfig cfg = paperConfig(1);
        cfg.nvramLatencyMultiplier = mult;
        double tps[3] = {0, 0, 0};
        unsigned i = 0;
        for (BackendKind b : paperBackends())
            tps[i++] = runCell(b, w, cfg).tps() / 1000.0;
        std::string lat_label = "x";
        lat_label += fmtDouble(mult, 0);
        table.addRow({lat_label, fmtDouble(tps[0], 1),
                      fmtDouble(tps[1], 1), fmtDouble(tps[2], 1),
                      fmtDouble(tps[2] / tps[1])});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    SspConfig cfg = paperConfig(1);
    printHeader("Figure 8: sensitivity to NVRAM latency "
                "(x-axis: NVRAM latency as a multiple of DRAM latency)",
                cfg);
    sweepNvramLatency(WorkloadKind::RbTreeRand, "a");
    sweepNvramLatency(WorkloadKind::BTreeRand, "b");
    printPaperNote("the SSP/REDO gap widens with NVRAM latency (1.1x -> "
                   "1.8x for BTree); at x1 REDO-LOG can overtake SSP on "
                   "RBTree by ~8% because persistence is nearly free");
    return 0;
}
