/**
 * @file
 * Figure 7 reproduction:
 *   (a) total NVRAM writes normalized to UNDO-LOG (lower is better);
 *   (b) breakdown of SSP's NVRAM writes into data / metadata journaling
 *       / page consolidation / checkpointing.
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig cfg = paperConfig(1);
    printHeader("Figure 7a: total NVRAM writes normalized to UNDO-LOG "
                "(lower is better)",
                cfg);

    TextTable table7a({"workload", "UNDO-LOG", "REDO-LOG", "SSP",
                       "saved vs UNDO", "saved vs REDO"});
    std::vector<RunResult> ssp_runs;
    double sum_saved_undo = 0, sum_saved_redo = 0;
    unsigned n = 0;
    for (WorkloadKind w : microbenchmarks()) {
        double writes[3] = {0, 0, 0};
        RunResult ssp_res;
        unsigned i = 0;
        for (BackendKind b : paperBackends()) {
            RunResult res = runCell(b, w, cfg);
            writes[i] = static_cast<double>(res.nvramWrites);
            if (b == BackendKind::Ssp)
                ssp_res = res;
            ++i;
        }
        ssp_runs.push_back(ssp_res);
        const double base = writes[0];
        const double saved_undo = 1.0 - writes[2] / writes[0];
        const double saved_redo = 1.0 - writes[2] / writes[1];
        table7a.addRow({workloadKindName(w), fmtDouble(writes[0] / base),
                        fmtDouble(writes[1] / base),
                        fmtDouble(writes[2] / base),
                        fmtDouble(saved_undo * 100, 0) + "%",
                        fmtDouble(saved_redo * 100, 0) + "%"});
        sum_saved_undo += saved_undo;
        sum_saved_redo += saved_redo;
        ++n;
    }
    table7a.addRow({"average", "-", "-", "-",
                    fmtDouble(sum_saved_undo / n * 100, 0) + "%",
                    fmtDouble(sum_saved_redo / n * 100, 0) + "%"});
    std::printf("%s\n", table7a.render().c_str());
    printPaperNote("SSP saves 45% vs UNDO-LOG and 28% vs REDO-LOG on "
                   "average; zipfian workloads save more (56%/42%) than "
                   "random ones (43%/23%)");

    std::printf("%s", banner("Figure 7b: breakdown of NVRAM writes for "
                             "SSP (%)")
                          .c_str());
    TextTable table7b({"workload", "data", "journaling", "consolidation",
                       "checkpointing"});
    std::size_t idx = 0;
    for (WorkloadKind w : microbenchmarks()) {
        const RunResult &res = ssp_runs[idx++];
        const double total = static_cast<double>(res.nvramWrites);
        auto pct = [&](std::uint64_t v) {
            return fmtDouble(100.0 * static_cast<double>(v) / total, 1);
        };
        table7b.addRow({workloadKindName(w), pct(res.dataWrites),
                        pct(res.journalWrites),
                        pct(res.consolidationWrites),
                        pct(res.checkpointWrites)});
    }
    std::printf("%s\n", table7b.render().c_str());
    printPaperNote("consolidation writes are below data writes for all "
                   "workloads except SPS, and are negligible under "
                   "zipfian access patterns");
    return 0;
}
