/**
 * @file
 * Figure 9 reproduction: sensitivity of SSP's speedup over REDO-LOG to
 * the access latency of the SSP cache, swept from 20 to 180 cycles for
 * all seven microbenchmarks.
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig base_cfg = paperConfig(1);
    printHeader("Figure 9: SSP speedup over REDO-LOG vs SSP-cache access "
                "latency (cycles)",
                base_cfg);

    // REDO-LOG is latency-independent: measure it once per workload.
    std::vector<double> redo_tps;
    for (WorkloadKind w : microbenchmarks())
        redo_tps.push_back(runCell(BackendKind::RedoLog, w, base_cfg).tps());

    std::vector<std::string> header{"latency"};
    for (WorkloadKind w : microbenchmarks())
        header.push_back(workloadKindName(w));
    TextTable table(std::move(header));

    for (Cycles lat : {20u, 60u, 100u, 140u, 180u}) {
        SspConfig cfg = paperConfig(1);
        cfg.sspCacheLatency.fixedLatency = lat;
        std::vector<std::string> row{std::to_string(lat)};
        std::size_t i = 0;
        for (WorkloadKind w : microbenchmarks()) {
            const double tps = runCell(BackendKind::Ssp, w, cfg).tps();
            row.push_back(fmtDouble(tps / redo_tps[i++]));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    printPaperNote("most workloads degrade only moderately and linearly "
                   "with SSP-cache latency; SPS and Hash-Rand are the most "
                   "sensitive (poor locality -> frequent TLB misses -> "
                   "frequent SSP-cache accesses); zipfian workloads are "
                   "less sensitive than random ones");
    return 0;
}
