/**
 * @file
 * Table 3 reproduction: write-set characterization of every evaluated
 * workload — average modified cache lines per transaction, average
 * modified pages, and the maximum page count (which must stay below the
 * 64-entry write-set buffer for the fall-back path to stay unused).
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig cfg = paperConfig(1);
    printHeader("Table 3: write-set size (avg lines / avg pages / max "
                "pages per transaction)",
                cfg);

    TextTable table({"workload", "avg lines", "avg pages", "max pages",
                     "paper (l/p/max)"});
    const char *paper[] = {"12/3/13", "10/6/21", "3/3/4", "2/2/2",
                           "5/2/6",   "6/4/15",  "3/3/4", "3/2/35",
                           "4/3/9"};
    // Paper order: RBTree-Rand, BTree-Rand, Hash-Rand, SPS, RBTree-Zipf,
    // BTree-Zipf, Hash-Zipf, Memcached, Vacation.
    const WorkloadKind order[] = {
        WorkloadKind::RbTreeRand, WorkloadKind::BTreeRand,
        WorkloadKind::HashRand,   WorkloadKind::Sps,
        WorkloadKind::RbTreeZipf, WorkloadKind::BTreeZipf,
        WorkloadKind::HashZipf,   WorkloadKind::Memcached,
        WorkloadKind::Vacation};

    unsigned i = 0;
    bool fallback_needed = false;
    for (WorkloadKind w : order) {
        RunResult res = runCell(BackendKind::Ssp, w, cfg);
        table.addRow({workloadKindName(w), fmtDouble(res.avgLinesPerTx, 1),
                      fmtDouble(res.avgPagesPerTx, 1),
                      std::to_string(res.maxPagesPerTx), paper[i++]});
        if (res.maxPagesPerTx > 64)
            fallback_needed = true;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("write-set buffer sufficient for all workloads: %s "
                "(paper: none of the evaluated applications requires the "
                "unbounded fall-back path)\n\n",
                fallback_needed ? "NO" : "yes");
    return 0;
}
