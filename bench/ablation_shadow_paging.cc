/**
 * @file
 * Ablation A1: conventional page-granularity shadow paging vs SSP.
 *
 * The paper excludes conventional shadow paging from its figures with an
 * analytic argument ("transactions only touch 2-6 cache lines on
 * average; conventional shadow paging degrades performance by writing up
 * to 64x more cache lines", section 5.1).  This bench measures that
 * claim directly with the SHADOW backend.
 */

#include "bench/bench_common.hh"

using namespace ssp;
using namespace ssp::bench;

int
main()
{
    setVerbose(false);
    SspConfig cfg = paperConfig(1);
    printHeader("Ablation A1: conventional shadow paging (SHADOW) vs SSP",
                cfg);

    TextTable table({"workload", "SHADOW writes/tx", "SSP writes/tx",
                     "amplification", "SHADOW TPS/SSP TPS"});
    for (WorkloadKind w : microbenchmarks()) {
        RunResult shadow = runCell(BackendKind::Shadow, w, cfg);
        RunResult ssp = runCell(BackendKind::Ssp, w, cfg);
        table.addRow({workloadKindName(w),
                      fmtDouble(shadow.writesPerTx(), 1),
                      fmtDouble(ssp.writesPerTx(), 1),
                      fmtDouble(shadow.writesPerTx() / ssp.writesPerTx(),
                                1) +
                          "x",
                      fmtDouble(shadow.tps() / ssp.tps())});
    }
    std::printf("%s\n", table.render().c_str());
    printPaperNote("conventional shadow paging copies whole pages, "
                   "writing up to 64x more cache lines than the 2-6 a "
                   "transaction actually modifies — which is why the "
                   "paper develops cache-line-granular shadow sub-paging "
                   "instead");
    return 0;
}
